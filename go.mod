module policyoracle

go 1.22
