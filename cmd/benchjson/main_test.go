package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: policyoracle
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExtractParallel/workers=1         	      54	  20397347 ns/op	     59910 entries/s	 9876042 B/op	   61559 allocs/op
BenchmarkExtractParallel/workers=2-8       	      56	  21222288 ns/op	     57581 entries/s	 9878816 B/op	   61548 allocs/op
BenchmarkSolverReused-8                    	  152960	      7858 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	policyoracle	7.927s
`

func TestParseBench(t *testing.T) {
	results, machine, err := ParseBench(strings.NewReader(sample), "BenchmarkExtractParallel")
	if err != nil {
		t.Fatal(err)
	}
	if machine != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("machine = %q", machine)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (solver bench must be filtered)", len(results))
	}
	r := results[0]
	if r.Variant != "workers=1" || r.NsPerOp != 20397347 || r.EntriesPerSec != 59910 ||
		r.BytesPerOp != 9876042 || r.AllocsPerOp != 61559 {
		t.Errorf("workers=1 parsed as %+v", r)
	}
	// The -cpu suffix ("-8") must be stripped from the variant name so CI
	// machines with different core counts match the checked-in baseline.
	if results[1].Variant != "workers=2" {
		t.Errorf("variant with -cpu suffix = %q, want workers=2", results[1].Variant)
	}
}

func TestCheckGate(t *testing.T) {
	bf := &File{Trajectory: []Point{
		{Label: "old", Results: []Result{{Variant: "workers=1", EntriesPerSec: 10000}}},
		{Label: "baseline", Results: []Result{
			{Variant: "workers=1", EntriesPerSec: 60000},
			{Variant: "workers=2", EntriesPerSec: 58000},
		}},
	}}
	// Within tolerance: 10% window around the LAST point, not the first.
	ok := []Result{{Variant: "workers=1", EntriesPerSec: 55000}}
	if err := Check(bf, ok, 0.10, 0.25); err != nil {
		t.Errorf("within-tolerance run failed the gate: %v", err)
	}
	// Faster is always fine.
	if err := Check(bf, []Result{{Variant: "workers=1", EntriesPerSec: 90000}}, 0.10, 0.25); err != nil {
		t.Errorf("faster run failed the gate: %v", err)
	}
	// An 11% regression on any variant must fail.
	bad := []Result{
		{Variant: "workers=1", EntriesPerSec: 59000},
		{Variant: "workers=2", EntriesPerSec: 51000},
	}
	if err := Check(bf, bad, 0.10, 0.25); err == nil {
		t.Error("11% regression on workers=2 passed the gate")
	}
	// A run with no matching variants is a config error, not a pass.
	if err := Check(bf, []Result{{Variant: "workers=64", EntriesPerSec: 1}}, 0.10, 0.25); err == nil {
		t.Error("unmatched variants passed the gate")
	}
}

func TestCheckAllocsGate(t *testing.T) {
	bf := &File{Trajectory: []Point{
		{Label: "baseline", Results: []Result{
			{Variant: "workers=1", EntriesPerSec: 60000, AllocsPerOp: 60000},
		}},
	}}
	// Allocation growth inside the 25% window passes.
	ok := []Result{{Variant: "workers=1", EntriesPerSec: 60000, AllocsPerOp: 70000}}
	if err := Check(bf, ok, 0.10, 0.25); err != nil {
		t.Errorf("within-tolerance allocs failed the gate: %v", err)
	}
	// Throughput can stay flat while allocations blow past 25%: the
	// allocation gate must catch it on its own.
	bad := []Result{{Variant: "workers=1", EntriesPerSec: 60000, AllocsPerOp: 80000}}
	err := Check(bf, bad, 0.10, 0.25)
	if err == nil {
		t.Fatal("33% allocs/op growth passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("failure does not name allocs/op: %v", err)
	}
	// Fewer allocations are always fine; tolerance 0 disables the gate.
	if err := Check(bf, []Result{{Variant: "workers=1", EntriesPerSec: 60000, AllocsPerOp: 100}}, 0.10, 0.25); err != nil {
		t.Errorf("reduced allocs failed the gate: %v", err)
	}
	if err := Check(bf, bad, 0.10, 0); err != nil {
		t.Errorf("disabled allocs gate still fired: %v", err)
	}
	// A baseline without allocation data never matches the allocs gate
	// (older trajectory points predate allocs/op recording).
	old := &File{Trajectory: []Point{
		{Label: "old", Results: []Result{{Variant: "workers=1", EntriesPerSec: 60000}}},
	}}
	if err := Check(old, bad, 0.10, 0.25); err != nil {
		t.Errorf("allocs gate fired against a baseline without allocs data: %v", err)
	}
}
