// Command benchjson turns `go test -bench` output into the checked-in
// BENCH_extract.json trajectory and gates CI on it.
//
// Two modes:
//
//	benchjson -in bench.txt -json BENCH_extract.json -label "after X" [-out path]
//	    Parse the benchmark output, append one trajectory point, and
//	    write the updated file (to -out if given, else back to -json).
//
//	benchjson -check -in bench.txt -json BENCH_extract.json [-tolerance 0.10] [-allocs-tolerance 0.25]
//	    Parse the benchmark output and compare each variant against the
//	    matching variant in the LAST trajectory point of the checked-in
//	    file. Exit nonzero if any variant's entries/s regressed by more
//	    than -tolerance (default 10%) or its allocs/op grew by more than
//	    -allocs-tolerance (default 25%; 0 disables the allocation gate).
//
// The parser understands the standard testing package line format —
// name, iteration count, then (value, unit) pairs — plus the custom
// "entries/s" metric reported by BenchmarkExtractParallel. Only
// benchmarks whose name starts with -bench-prefix are recorded, so the
// same input file can carry the solver benchmarks for human eyes
// without polluting the trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result holds one benchmark variant's measured metrics.
type Result struct {
	Variant       string  `json:"variant"`
	NsPerOp       float64 `json:"ns_per_op"`
	EntriesPerSec float64 `json:"entries_per_sec,omitempty"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
}

// Point is one entry in the perf trajectory: a labeled benchmark run.
type Point struct {
	Label   string   `json:"label"`
	Date    string   `json:"date,omitempty"`
	Results []Result `json:"results"`
}

// File is the BENCH_extract.json schema.
type File struct {
	Benchmark   string   `json:"benchmark"`
	Machine     string   `json:"machine,omitempty"`
	Methodology []string `json:"methodology,omitempty"`
	Trajectory  []Point  `json:"trajectory"`
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark output file (default stdin)")
		jsonPath  = flag.String("json", "BENCH_extract.json", "trajectory file")
		out       = flag.String("out", "", "where to write the updated trajectory (default: -json path)")
		label     = flag.String("label", "", "label for the new trajectory point")
		date      = flag.String("date", time.Now().Format("2006-01-02"), "date for the new trajectory point")
		check     = flag.Bool("check", false, "regression-gate mode: compare against the last trajectory point")
		tolerance = flag.Float64("tolerance", 0.10, "allowed fractional entries/s regression in -check mode")
		allocsTol = flag.Float64("allocs-tolerance", 0.25, "allowed fractional allocs/op growth in -check mode (0 disables)")
		prefix    = flag.String("bench-prefix", "BenchmarkExtractParallel", "record only benchmarks with this name prefix")
	)
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = f
	}
	results, machine, err := ParseBench(src, *prefix)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no %s results found in input", *prefix))
	}

	if *check {
		bf, err := load(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := Check(bf, results, *tolerance, *allocsTol); err != nil {
			fatal(err)
		}
		fmt.Printf("benchjson: %d variants within %.0f%% entries/s and %.0f%% allocs/op of %q\n",
			len(results), *tolerance*100, *allocsTol*100, bf.Trajectory[len(bf.Trajectory)-1].Label)
		return
	}

	if *label == "" {
		fatal(fmt.Errorf("-label is required when appending a trajectory point"))
	}
	bf, err := load(*jsonPath)
	if os.IsNotExist(err) {
		bf = &File{Benchmark: *prefix}
	} else if err != nil {
		fatal(err)
	}
	if bf.Machine == "" {
		bf.Machine = machine
	}
	bf.Trajectory = append(bf.Trajectory, Point{Label: *label, Date: *date, Results: results})
	dst := *out
	if dst == "" {
		dst = *jsonPath
	}
	if err := save(dst, bf); err != nil {
		fatal(err)
	}
	fmt.Printf("benchjson: appended %q (%d variants) -> %s\n", *label, len(results), dst)
}

// ParseBench extracts benchmark results whose name begins with prefix,
// along with the "cpu:" banner line if present.
func ParseBench(r io.Reader, prefix string) ([]Result, string, error) {
	var results []Result
	var machine string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			machine = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		variant := name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			variant = name[i+1:]
		}
		// Strip the -cpu suffix testing appends (e.g. "workers=1-8").
		if i := strings.LastIndexByte(variant, '-'); i >= 0 {
			if _, err := strconv.Atoi(variant[i+1:]); err == nil {
				variant = variant[:i]
			}
		}
		res := Result{Variant: variant}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("bad value %q on line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "entries/s":
				res.EntriesPerSec = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		results = append(results, res)
	}
	return results, machine, sc.Err()
}

// Check compares current results against the last trajectory point,
// failing if any matching variant's entries/s dropped more than tol or
// its allocs/op grew more than allocsTol (0 disables the allocation
// gate). Throughput noise and allocation counts regress independently —
// an allocation-heavy change can keep entries/s inside the window while
// tripling GC pressure — so both gates run over the same baseline.
func Check(bf *File, current []Result, tol, allocsTol float64) error {
	if len(bf.Trajectory) == 0 {
		return fmt.Errorf("trajectory file has no points to check against")
	}
	last := bf.Trajectory[len(bf.Trajectory)-1]
	baseline := make(map[string]Result, len(last.Results))
	for _, r := range last.Results {
		baseline[r.Variant] = r
	}
	matched := 0
	var failures []string
	for _, r := range current {
		base, ok := baseline[r.Variant]
		if !ok {
			continue
		}
		if base.EntriesPerSec > 0 && r.EntriesPerSec > 0 {
			matched++
			if r.EntriesPerSec < base.EntriesPerSec*(1-tol) {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f entries/s vs baseline %.0f (-%.1f%%, tolerance %.0f%%)",
					r.Variant, r.EntriesPerSec, base.EntriesPerSec,
					100*(1-r.EntriesPerSec/base.EntriesPerSec), tol*100))
			}
		}
		if allocsTol > 0 && base.AllocsPerOp > 0 && r.AllocsPerOp > 0 {
			matched++
			if r.AllocsPerOp > base.AllocsPerOp*(1+allocsTol) {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f allocs/op vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
					r.Variant, r.AllocsPerOp, base.AllocsPerOp,
					100*(r.AllocsPerOp/base.AllocsPerOp-1), allocsTol*100))
			}
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark variants matched the baseline point %q", last.Label)
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf File
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

func save(path string, bf *File) error {
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
