// Command mjfmt formats MJ source files into the canonical form produced
// by the AST printer (the same form the corpus generator emits). Like
// gofmt, it lists files whose formatting differs, rewrites in place with
// -w, or prints the formatted source of a single file to stdout.
//
// Usage:
//
//	mjfmt [-l] [-w] <file-or-dir>...
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
)

func main() {
	list := flag.Bool("l", false, "list files whose formatting differs")
	write := flag.Bool("w", false, "rewrite files in place")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mjfmt [-l] [-w] <file-or-dir>...")
		os.Exit(2)
	}
	exit := 0
	for _, arg := range flag.Args() {
		if err := process(arg, *list, *write); err != nil {
			fmt.Fprintf(os.Stderr, "mjfmt: %v\n", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func process(path string, list, write bool) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if !info.IsDir() {
		return formatFile(path, list, write)
	}
	return filepath.WalkDir(path, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".mj") {
			return nil
		}
		return formatFile(p, list, write)
	})
}

func formatFile(path string, list, write bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var diags lang.Diagnostics
	f := parser.ParseFile(path, string(src), &diags)
	if diags.HasErrors() {
		return fmt.Errorf("%s: %w", path, diags.Err())
	}
	out := ast.Print(f)
	if out == string(src) {
		return nil
	}
	switch {
	case list:
		fmt.Println(path)
	case write:
		return os.WriteFile(path, []byte(out), 0o644)
	default:
		fmt.Print(out)
	}
	return nil
}
