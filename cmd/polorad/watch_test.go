package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/reconcile"
)

const watchRuntimeMJ = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkRead(String file) { }
  public void checkWrite(String file) { }
}
`

const watchLibV1MJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    sm.checkWrite(key);
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

// watchLibV2MJ drops the write check: the seeded deviation.
const watchLibV2MJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

func buildBinary(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// freeAddr reserves a listen address. The listener is closed just before
// the daemon starts, so a parallel test could steal the port; polorad
// failing to bind shows up immediately as a failed /healthz wait.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

type daemon struct {
	cmd  *exec.Cmd
	logs *bytes.Buffer
}

func startDaemon(t *testing.T, bin, addr, storeDir, driftPath string) *daemon {
	t.Helper()
	d := &daemon{logs: &bytes.Buffer{}}
	d.cmd = exec.Command(bin,
		"-addr", addr, "-store", storeDir,
		"-watch", "-interval", "100ms",
		"-drift-store", driftPath, "-drift-threshold", "1",
		"-parallel", "1")
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("polorad never became healthy:\n%s", d.logs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func putLibrary(t *testing.T, addr, name, lib string) {
	t.Helper()
	putSources(t, addr, name, map[string]string{"rt.mj": watchRuntimeMJ, "lib.mj": lib})
}

func putSources(t *testing.T, addr, name string, sources map[string]string) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"sources": sources})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut,
		"http://"+addr+"/v1/libraries/"+name, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("PUT %s: %d: %s", name, resp.StatusCode, out)
	}
}

func fetchTimeline(t *testing.T, addr string) reconcile.TimelineWire {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire reconcile.TimelineWire
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	return wire
}

func waitTimeline(t *testing.T, addr string, n int, logs *bytes.Buffer) reconcile.TimelineWire {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		wire := fetchTimeline(t, addr)
		if len(wire.Entries) >= n {
			return wire
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline stuck below %d entries\n%s", n, logs)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// assertNoDuplicates fails if any (pair, fpA, fpB) was observed twice —
// the signature of a restart replaying persisted history.
func assertNoDuplicates(t *testing.T, wire reconcile.TimelineWire) {
	t.Helper()
	seen := map[string]int{}
	for i, e := range wire.Entries {
		if e.Seq != i+1 {
			t.Errorf("entry %d has seq %d, want contiguous", i, e.Seq)
		}
		key := e.Pair + "|" + e.FpA + "|" + e.FpB
		if prev, dup := seen[key]; dup {
			t.Errorf("observation %s duplicated at seq %d and %d", key, prev, e.Seq)
		}
		seen[key] = e.Seq
	}
}

// TestWatchKillRestartResumes drives the full continuous-watch story
// through real processes: seeded drift is observed and alerts, SIGKILL
// mid-watch loses nothing, the restarted daemon resumes from the
// persisted timeline without duplicating observations, and the polora
// drift CLI reads the same state.
func TestWatchKillRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	binDir := t.TempDir()
	polorad := buildBinary(t, binDir, "polorad", ".")
	polora := buildBinary(t, binDir, "polora", "policyoracle/cmd/polora")
	stateDir := t.TempDir()
	storeDir := filepath.Join(stateDir, "store")
	driftPath := filepath.Join(stateDir, "drift.json")
	addr := freeAddr(t)

	d := startDaemon(t, polorad, addr, storeDir, driftPath)
	putLibrary(t, addr, "ref", watchLibV1MJ)
	putLibrary(t, addr, "impl", watchLibV2MJ)

	wire := waitTimeline(t, addr, 1, d.logs)
	pair := reconcile.PairKey("ref", "impl")
	e := wire.Entries[0]
	if e.Pair != pair || e.Deviations == 0 || e.Alert != "fired" {
		t.Fatalf("first observation: %+v", e)
	}

	// The reconcile series are live on /metricsz.
	resp, err := http.Get("http://" + addr + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		"polora_reconcile_runs_total",
		"polora_reconcile_duration_seconds_bucket",
		fmt.Sprintf(`polora_drift_deviations{pair=%q} %d`, pair, e.Deviations),
		fmt.Sprintf(`polora_drift_alert{pair=%q} 1`, pair),
	} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("metricsz missing %s", series)
		}
	}

	// SIGKILL mid-watch: enqueue fresh work so the loop is active, then
	// kill without any drain.
	putLibrary(t, addr, "impl", watchLibV2MJ)
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()

	// Restart over the same store and drift file: the persisted entry is
	// still there, and steady state appends no duplicates.
	d2 := startDaemon(t, polorad, addr, storeDir, driftPath)
	wire = waitTimeline(t, addr, 1, d2.logs)
	time.Sleep(500 * time.Millisecond) // several 100ms reconcile intervals
	wire = fetchTimeline(t, addr)
	if len(wire.Entries) != 1 {
		t.Fatalf("restart changed history: %d entries, want 1", len(wire.Entries))
	}
	assertNoDuplicates(t, wire)

	// The fix lands after the restart: the resumed controller observes it,
	// continues the sequence, and clears the alert.
	putLibrary(t, addr, "impl", watchLibV1MJ)
	wire = waitTimeline(t, addr, 2, d2.logs)
	assertNoDuplicates(t, wire)
	last := wire.Entries[len(wire.Entries)-1]
	if last.Deviations != 0 || last.Alert != "cleared" {
		t.Fatalf("post-fix observation: %+v", last)
	}

	// polora drift reads the same state over the wire.
	out, err := exec.Command(polora, "drift", "-addr", "http://"+addr).CombinedOutput()
	if err != nil {
		t.Fatalf("polora drift: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), pair) || !strings.Contains(string(out), "[alert cleared]") {
		t.Errorf("polora drift output:\n%s", out)
	}
	out, err = exec.Command(polora, "drift", "-addr", "http://"+addr, "-pair", "ref~impl").CombinedOutput()
	if err != nil {
		t.Fatalf("polora drift -pair: %v\n%s", err, out)
	}
	for _, want := range []string{"pair " + pair, "deviations  0", "alert       clear"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("polora drift -pair output missing %q:\n%s", want, out)
		}
	}
}

// TestWatchSeededCorpusDrift uploads two corpus-generator implementations
// with known seeded deviations to a watching daemon and asserts the drift
// timeline and /metricsz report them — the CI reconcile e2e.
func TestWatchSeededCorpusDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	polorad := buildBinary(t, t.TempDir(), "polorad", ".")
	stateDir := t.TempDir()
	driftPath := filepath.Join(stateDir, "drift.json")
	addr := freeAddr(t)
	d := startDaemon(t, polorad, addr, filepath.Join(stateDir, "store"), driftPath)

	c := gen.Generate(gen.Small())
	putSources(t, addr, "jdk", c.Sources["jdk"])
	putSources(t, addr, "harmony", c.Sources["harmony"])

	wire := waitTimeline(t, addr, 1, d.logs)
	e := wire.Entries[0]
	if e.Pair != reconcile.PairKey("jdk", "harmony") {
		t.Fatalf("observed pair %q", e.Pair)
	}
	// The generator seeded deviations between every implementation pair;
	// the watch loop must surface a non-trivial number of them (the exact
	// count is the diff oracle's business, asserted in its own suites).
	if e.Deviations < 2 {
		t.Errorf("seeded corpus produced %d deviations, want >= 2 (%d issues seeded)",
			e.Deviations, len(c.Issues))
	}
	if e.Alert != "fired" {
		t.Errorf("alert = %q with threshold 1 and %d deviations", e.Alert, e.Deviations)
	}

	resp, err := http.Get("http://" + addr + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{
		fmt.Sprintf(`polora_drift_deviations{pair=%q} %d`, e.Pair, e.Deviations),
		"polora_reconcile_pairs_total 1",
		"polora_drift_timeline_entries 1",
	} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("metricsz missing %s", series)
		}
	}
}
