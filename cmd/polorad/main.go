// Command polorad is the policy-oracle daemon: a long-lived HTTP service
// over a content-addressed policy store. Clients upload library bundles,
// the daemon extracts their MAY/MUST security policies once per distinct
// bundle, and diff requests between fingerprints are served from cache.
//
// Usage:
//
//	polorad [flags]
//
// Flags:
//
//	-addr addr        listen address (default :8075)
//	-store dir        store directory (default polorad-store)
//	-parallel N       oracle workers per extraction (0 = GOMAXPROCS)
//	-max-inflight N   concurrent extractions across fingerprints (default 2)
//	-cache N          in-memory policy-blob LRU entries (0 disables, default 128)
//	-domains ids      comma-separated check-domain IDs to serve (default:
//	                  every registered domain); requests naming another
//	                  domain fail with the stable unknown_domain code
//	-log-format fmt   structured log output: text or json (default text)
//	-log-level lvl    minimum level: debug, info, warn, error (default info)
//	-pprof            expose net/http/pprof under /debug/pprof/
//	-campaigns        execute coverage-guided campaign shards posted to
//	                  /v1/campaign (the worker side of `polora fuzz
//	                  -remote`); off by default since a shard is
//	                  CPU-minutes driven by a request body
//	-watch            run the reconcile controller: every PUT (and every
//	                  -interval tick) re-diffs all registered library
//	                  pairs and appends drift observations to -drift-store
//	-interval d       full reconcile rescan period (default 30s)
//	-drift-store f    drift-timeline file (default <store>/drift.json)
//	-drift-threshold N fire a pair's drift alert at N deviations (0 = off)
//	-peers addrs      comma-separated replica addresses of the whole tier,
//	                  this node included: on a local miss the store fetches
//	                  the blob from the fingerprint's consistent-hash owner
//	                  (GET /v1/blob/{fp}) before extracting locally
//	-advertise addr   this node's own address within -peers (required with
//	                  -peers; must match one member string exactly)
//	-batch-workers N  concurrent items per /v1/batch request (default 4)
//
// Metrics are always served at GET /metricsz in Prometheus text format;
// DESIGN.md's Observability section documents the series.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests; if the drain deadline passes, remaining request contexts are
// cancelled so in-flight extractions stop instead of running to
// completion against no caller. API and wire formats are documented in
// internal/server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"policyoracle"
	"policyoracle/internal/reconcile"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8075", "listen address")
	storeDir := flag.String("store", "polorad-store", "policy store directory")
	parallel := flag.Int("parallel", 0, "oracle extraction workers per analysis mode (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 2, "concurrent extractions across distinct fingerprints")
	cache := flag.Int("cache", 128, "in-memory policy-blob LRU entries (0 disables the cache)")
	domains := flag.String("domains", "", "comma-separated check-domain IDs to serve (empty = all registered)")
	logFormat := flag.String("log-format", "text", "structured log output: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	campaigns := flag.Bool("campaigns", false, "execute campaign shards posted to /v1/campaign")
	watch := flag.Bool("watch", false, "run the reconcile controller (continuous policy-drift monitoring)")
	interval := flag.Duration("interval", 30*time.Second, "full reconcile rescan period (with -watch)")
	driftStore := flag.String("drift-store", "", "drift-timeline file (default <store>/drift.json)")
	driftThreshold := flag.Int("drift-threshold", 0, "fire a pair's drift alert at this many deviations (0 disables)")
	peers := flag.String("peers", "", "comma-separated replica addresses of the whole tier, including this node (enables the peer store tier)")
	advertise := flag.String("advertise", "", "this node's own address within -peers (required with -peers)")
	batchWorkers := flag.Int("batch-workers", 0, "concurrent items per /v1/batch request (0 = default 4)")
	flag.Parse()
	if *cache == 0 {
		// On the flag, 0 means "no cache"; the store treats 0 as "use the
		// default" and negative as disabled, so translate.
		*cache = -1
	}
	if err := run(config{
		addr:           *addr,
		storeDir:       *storeDir,
		parallel:       *parallel,
		maxInflight:    *maxInflight,
		cache:          *cache,
		domains:        *domains,
		logFormat:      *logFormat,
		logLevel:       *logLevel,
		pprof:          *pprofOn,
		campaigns:      *campaigns,
		watch:          *watch,
		interval:       *interval,
		driftStore:     *driftStore,
		driftThreshold: *driftThreshold,
		peers:          *peers,
		advertise:      *advertise,
		batchWorkers:   *batchWorkers,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "polorad: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr, storeDir        string
	parallel, maxInflight int
	cache                 int
	domains               string
	logFormat, logLevel   string
	pprof                 bool
	campaigns             bool
	watch                 bool
	interval              time.Duration
	driftStore            string
	driftThreshold        int
	peers, advertise      string
	batchWorkers          int
}

// splitTrim splits a comma-separated flag value, trimming whitespace and
// dropping empty entries.
func splitTrim(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func run(cfg config) error {
	level, err := telemetry.ParseLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	// Validate -domains up front: serving an unregistered domain ID would
	// otherwise only surface as unknown_domain on every request.
	var domainIDs []string
	if cfg.domains != "" {
		for _, id := range strings.Split(cfg.domains, ",") {
			id = strings.TrimSpace(id)
			d, err := policyoracle.ResolveDomain(id)
			if err != nil {
				return fmt.Errorf("-domains: %w", err)
			}
			domainIDs = append(domainIDs, d.ID())
		}
	}
	logger, err := telemetry.NewLogger(os.Stderr, cfg.logFormat, level)
	if err != nil {
		return err
	}
	// One registry spans the service, the store, and the extractor, so a
	// single /metricsz scrape sees every layer.
	registry := telemetry.New()
	var backends []store.Backend
	if cfg.peers != "" {
		members := splitTrim(cfg.peers)
		if cfg.advertise == "" {
			return fmt.Errorf("-peers requires -advertise (this node's own address within the peer list)")
		}
		found := false
		for _, m := range members {
			if m == cfg.advertise {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("-advertise %q is not in -peers %q; member strings must match exactly "+
				"(they are the ring identity every replica and client hashes)", cfg.advertise, cfg.peers)
		}
		backends = append(backends, store.NewPeerBackend(store.PeerConfig{
			Members:  members,
			Self:     cfg.advertise,
			Registry: registry,
			Logger:   logger,
		}))
	} else if cfg.advertise != "" {
		return fmt.Errorf("-advertise requires -peers")
	}
	st, err := store.Open(store.Config{
		Dir:          cfg.storeDir,
		CacheEntries: cfg.cache,
		Parallel:     cfg.parallel,
		MaxInflight:  cfg.maxInflight,
		Backends:     backends,
		Registry:     registry,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	var ctrl *reconcile.Controller
	var drift server.DriftProvider
	if cfg.watch {
		path := cfg.driftStore
		if path == "" {
			path = filepath.Join(cfg.storeDir, "drift.json")
		}
		ctrl, err = reconcile.New(reconcile.Config{
			Store:          st,
			Path:           path,
			Interval:       cfg.interval,
			AlertThreshold: cfg.driftThreshold,
			Registry:       registry,
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		drift = ctrl
	}

	// Request contexts derive from baseCtx: cancelling it after a failed
	// drain aborts whatever extractions are still running.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr: cfg.addr,
		Handler: server.New(st, server.Options{
			Registry:     registry,
			Logger:       logger,
			Pprof:        cfg.pprof,
			Drift:        drift,
			Domains:      domainIDs,
			Campaigns:    cfg.campaigns,
			BatchWorkers: cfg.batchWorkers,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The reconcile loop stops with the server; its timeline is persisted
	// on every append, so a kill at any point resumes cleanly.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	watchDone := make(chan struct{})
	if ctrl != nil {
		go func() {
			defer close(watchDone)
			ctrl.Run(watchCtx)
		}()
	} else {
		close(watchDone)
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("polorad: serving", "addr", cfg.addr, "store", cfg.storeDir,
			"max_inflight", cfg.maxInflight, "pprof", cfg.pprof, "watch", cfg.watch,
			"campaigns", cfg.campaigns, "peers", cfg.peers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("polorad: shutting down")
	stopWatch()
	<-watchDone
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("polorad: drain deadline passed, cancelling in-flight work", "err", err)
		cancelBase()
		srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("polorad: stopped")
	return nil
}
