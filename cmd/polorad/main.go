// Command polorad is the policy-oracle daemon: a long-lived HTTP service
// over a content-addressed policy store. Clients upload library bundles,
// the daemon extracts their MAY/MUST security policies once per distinct
// bundle, and diff requests between fingerprints are served from cache.
//
// Usage:
//
//	polorad [flags]
//
// Flags:
//
//	-addr addr        listen address (default :8075)
//	-store dir        store directory (default polorad-store)
//	-parallel N       oracle workers per extraction (0 = GOMAXPROCS)
//	-max-inflight N   concurrent extractions across fingerprints (default 2)
//	-cache N          in-memory policy-blob LRU entries (default 128)
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests. API and wire formats are documented in internal/server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"policyoracle/internal/server"
	"policyoracle/internal/store"
)

func main() {
	addr := flag.String("addr", ":8075", "listen address")
	storeDir := flag.String("store", "polorad-store", "policy store directory")
	parallel := flag.Int("parallel", 0, "oracle extraction workers per analysis mode (0 = GOMAXPROCS)")
	maxInflight := flag.Int("max-inflight", 2, "concurrent extractions across distinct fingerprints")
	cache := flag.Int("cache", 128, "in-memory policy-blob LRU entries")
	flag.Parse()
	if err := run(*addr, *storeDir, *parallel, *maxInflight, *cache); err != nil {
		fmt.Fprintf(os.Stderr, "polorad: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, parallel, maxInflight, cache int) error {
	st, err := store.Open(store.Config{
		Dir:          storeDir,
		CacheEntries: cache,
		Parallel:     parallel,
		MaxInflight:  maxInflight,
	})
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           server.New(st),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("polorad: serving on %s (store %s, max-inflight %d)", addr, storeDir, maxInflight)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("polorad: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
