package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"policyoracle/internal/batch"
	"policyoracle/internal/ring"
)

// startTierDaemon boots one replica of a peered polorad tier: every
// replica gets the same -peers list and advertises its own listen
// address as its ring identity.
func startTierDaemon(t *testing.T, bin, addr, storeDir string, peers []string) *daemon {
	t.Helper()
	d := &daemon{logs: &bytes.Buffer{}}
	d.cmd = exec.Command(bin,
		"-addr", addr, "-store", storeDir,
		"-peers", strings.Join(peers, ","), "-advertise", addr,
		"-parallel", "1")
	d.cmd.Stdout = d.logs
	d.cmd.Stderr = d.logs
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("peered polorad never became healthy:\n%s", d.logs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// uploadFP posts a library through one replica and returns the
// fingerprint the tier will address it by.
func uploadFP(t *testing.T, addr, name string, sources map[string]string) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{"name": name, "sources": sources})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/libraries", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s: %d: %s", name, resp.StatusCode, out)
	}
	var ur struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(out, &ur); err != nil {
		t.Fatal(err)
	}
	return ur.Fingerprint
}

// writeSourceDir materializes a source map for the single-node polora
// CLI, whose reads key sources by relative path just like the upload.
func writeSourceDir(t *testing.T, dir string, sources map[string]string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, content := range sources {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDistributedTierBatchMatchesCLI is the distributed-e2e CI leg: three
// real polorad replicas joined by -peers, uploads through replica 0 only,
// `polora batch` routed across the tier, the owner of a fingerprint
// SIGKILLed, and every payload byte-compared against the single-node
// `polora export` / `polora diff -json` output.
func TestDistributedTierBatchMatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	binDir := t.TempDir()
	polorad := buildBinary(t, binDir, "polorad", ".")
	polora := buildBinary(t, binDir, "polora", "policyoracle/cmd/polora")

	work := t.TempDir()
	refSources := map[string]string{"rt.mj": watchRuntimeMJ, "lib.mj": watchLibV1MJ}
	implSources := map[string]string{"rt.mj": watchRuntimeMJ, "lib.mj": watchLibV2MJ}
	refDir := filepath.Join(work, "ref")
	implDir := filepath.Join(work, "impl")
	writeSourceDir(t, refDir, refSources)
	writeSourceDir(t, implDir, implSources)

	peers := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	daemons := make([]*daemon, len(peers))
	for i, addr := range peers {
		daemons[i] = startTierDaemon(t, polorad, addr,
			filepath.Join(work, fmt.Sprintf("store-%d", i)), peers)
	}

	fpRef := uploadFP(t, peers[0], "ref", refSources)
	fpImpl := uploadFP(t, peers[0], "impl", implSources)

	// `polora fingerprint` addresses the same content identically.
	out, err := exec.Command(polora, "fingerprint", refDir).CombinedOutput()
	if err != nil {
		t.Fatalf("polora fingerprint: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != fpRef {
		t.Fatalf("polora fingerprint = %s, tier addresses %s", got, fpRef)
	}

	// Single-node reference wires.
	refJSON := filepath.Join(work, "ref-export.json")
	implJSON := filepath.Join(work, "impl-export.json")
	for dir, path := range map[string]string{refDir: refJSON, implDir: implJSON} {
		if out, err := exec.Command(polora, "export", dir, path).CombinedOutput(); err != nil {
			t.Fatalf("polora export %s: %v\n%s", dir, err, out)
		}
	}
	wantDiff, err := exec.Command(polora, "diff", "-json", refDir, implDir).Output()
	if err != nil {
		t.Fatalf("polora diff -json: %v", err)
	}
	wantRef, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	wantImpl, err := os.ReadFile(implJSON)
	if err != nil {
		t.Fatal(err)
	}

	items := []batch.Item{
		{Op: batch.OpExtract, Fingerprint: fpRef},
		{Op: batch.OpDiff, A: fpRef, B: fpImpl},
		{Op: batch.OpExtract, Fingerprint: fpImpl},
	}
	itemsPath := filepath.Join(work, "items.json")
	itemsData, err := json.Marshal(batch.Request{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(itemsPath, itemsData, 0o644); err != nil {
		t.Fatal(err)
	}
	wantFiles := map[string][]byte{
		"item-0000.extract.json": wantRef,
		"item-0001.diff.json":    wantDiff,
		"item-0002.extract.json": wantImpl,
	}

	runBatch := func(outDir, remote string) {
		t.Helper()
		cmd := exec.Command(polora, "batch",
			"-remote", remote,
			"-in", itemsPath, "-out", outDir,
			"-retries", "2", "-backoff", "50ms", "-v")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("polora batch: %v\n%s", err, out)
		}
		for name, want := range wantFiles {
			got, err := os.ReadFile(filepath.Join(outDir, name))
			if err != nil {
				t.Fatalf("batch output %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s differs from the single-node wire (%d vs %d bytes)", name, len(got), len(want))
			}
		}
	}
	runBatch(filepath.Join(work, "out-full"), strings.Join(peers, ","))

	// SIGKILL the ring owner of a fingerprint (replica 0 keeps the
	// bundles, so the victim is an owner other than it; every other
	// replica can refetch blobs from replica 0 over /v1/blob). The same
	// batch against the unchanged -remote list must detect the dead
	// member, reroute, and reproduce identical bytes.
	r := ring.New(peers, 0)
	victim := peers[1]
	for _, it := range items {
		if owner := r.Owner(it.RouteKey()); owner != peers[0] {
			victim = owner
			break
		}
	}
	for i, addr := range peers {
		if addr == victim {
			if err := daemons[i].cmd.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			daemons[i].cmd.Wait()
		}
	}
	runBatch(filepath.Join(work, "out-dropout"), strings.Join(peers, ","))

	// Batch-read through a single surviving non-uploader replica: it owns
	// none of the bundles, so every payload it serves crossed the peer
	// tier at some point — and its scrape proves it.
	edge := peers[1]
	if edge == victim {
		edge = peers[2]
	}
	runBatch(filepath.Join(work, "out-edge"), edge)
	resp, err := http.Get("http://" + edge + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("polora_batch_requests_total")) {
		t.Errorf("edge replica metricsz misses polora_batch_requests_total")
	}
	if !bytes.Contains(metrics, []byte(`polora_peer_fetch_total{outcome="hit"}`)) {
		t.Errorf("edge replica served the tier without a single peer-fetch hit")
	}
}
