// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded outcomes).
//
// Usage:
//
//	experiments [flags] table1|table2|table3|broad|baselines|all
//
// Flags:
//
//	-scale small|paper   corpus size (default paper; small for quick runs)
//	-no-handwritten      exclude the hand-written figure classes
//	-table2-scale        corpus scale for table2 only (default small, since
//	                     the no-summaries configuration is deliberately slow)
//	-parallel N          extraction workers per analysis mode (default
//	                     GOMAXPROCS; 1 reproduces the sequential timings)
//	-timings             print a per-phase timing summary (wall and busy
//	                     time, entry points, solves, cache hits per mode)
//	                     after the selected experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"policyoracle/internal/analysis"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/experiments"
	"policyoracle/internal/oracle"
	"policyoracle/internal/telemetry"
)

func main() {
	scale := flag.String("scale", "paper", "corpus scale: small or paper")
	table2Scale := flag.String("table2-scale", "small", "corpus scale for table2: small or paper")
	noHandwritten := flag.Bool("no-handwritten", false, "exclude the hand-written figure classes")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "extraction workers per analysis mode (1 = sequential)")
	timings := flag.Bool("timings", false, "print a per-phase timing summary after the experiments")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] table1|table2|table3|broad|baselines|witness|exceptions|all")
		os.Exit(2)
	}

	params, err := paramsFor(*scale)
	check(err)
	t2params, err := paramsFor(*table2Scale)
	check(err)

	w := experiments.NewWorkload(params, !*noHandwritten)
	w2 := experiments.NewWorkload(t2params, !*noHandwritten)
	w.Parallel = *parallel
	w2.Parallel = *parallel
	var xm *telemetry.ExtractMetrics
	if *timings {
		xm = telemetry.NewExtractMetrics(telemetry.New())
		w.Telemetry = xm
		w2.Telemetry = xm
	}

	run := flag.Arg(0)
	all := run == "all"
	if all || run == "table1" {
		check(runTable1(w))
	}
	if all || run == "table2" {
		check(runTable2(w2))
	}
	if all || run == "table3" {
		check(runTable3(w))
	}
	if all || run == "broad" {
		check(runBroad(w))
	}
	if all || run == "baselines" {
		check(runBaselines(w))
	}
	if all || run == "witness" {
		check(runWitness(w))
	}
	if all || run == "exceptions" {
		check(runExceptions(w))
	}
	switch run {
	case "all", "table1", "table2", "table3", "broad", "baselines", "witness", "exceptions":
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", run)
		os.Exit(2)
	}
	if *timings {
		fmt.Print(xm.Summary())
	}
}

func paramsFor(scale string) (gen.Params, error) {
	switch scale {
	case "small":
		return gen.Small(), nil
	case "paper":
		return gen.PaperScale(), nil
	default:
		return gen.Params{}, fmt.Errorf("unknown scale %q", scale)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func runTable1(w *experiments.Workload) error {
	start := time.Now()
	libs, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		return err
	}
	rows := experiments.Table1(libs)
	fmt.Print(experiments.RenderTable1(rows))
	for _, name := range []string{"jdk", "harmony", "classpath"} {
		l := libs[name]
		fmt.Printf("%s: may analysis %v, must analysis %v\n", name, l.MayTime, l.MustTime)
	}
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runTable2(w *experiments.Workload) error {
	start := time.Now()
	res, err := experiments.Table2(w, []analysis.MemoMode{
		analysis.MemoNone, analysis.MemoPerEntry, analysis.MemoGlobal,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable2(res))
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runTable3(w *experiments.Workload) error {
	start := time.Now()
	res, err := experiments.Table3(w)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderTable3(res))
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runBroad(w *experiments.Workload) error {
	start := time.Now()
	res, err := experiments.Broad(w)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderBroad(res))
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runBaselines(w *experiments.Workload) error {
	start := time.Now()
	res, err := experiments.Baselines(w)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderBaselines(res))
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runWitness(w *experiments.Workload) error {
	start := time.Now()
	res, err := experiments.Witness(w)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderWitness(res))
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func runExceptions(w *experiments.Workload) error {
	start := time.Now()
	res, err := experiments.Exceptions(w)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderExceptions(res))
	fmt.Printf("(total %v)\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}
