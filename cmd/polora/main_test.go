package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the polora binary once per test binary run.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "polora")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building CLI: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCLI(t)
	corpusDir := t.TempDir()

	// corpus: write the bundled implementations.
	out, err := runCLI(t, bin, "corpus", corpusDir)
	if err != nil {
		t.Fatalf("corpus: %v\n%s", err, out)
	}
	for _, lib := range []string{"jdk", "harmony", "classpath"} {
		if !strings.Contains(out, lib) {
			t.Errorf("corpus output missing %s:\n%s", lib, out)
		}
	}

	// diff: the Figure 1 difference must be reported.
	out, err = runCLI(t, bin, "diff",
		filepath.Join(corpusDir, "jdk"), filepath.Join(corpusDir, "harmony"))
	if err != nil {
		t.Fatalf("diff: %v\n%s", err, out)
	}
	for _, want := range []string{"matching entry points", "checkAccept", "DatagramSocket.connect"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// diff -witness: dynamic confirmation lines appear.
	out, err = runCLI(t, bin, "diff", "-witness", "-entry", "DatagramSocket",
		filepath.Join(corpusDir, "jdk"), filepath.Join(corpusDir, "harmony"))
	if err != nil {
		t.Fatalf("diff -witness: %v\n%s", err, out)
	}
	if !strings.Contains(out, "CONFIRMED: harmony does not enforce checkAccept") {
		t.Errorf("witness confirmation missing:\n%s", out)
	}

	// policies: Figure 2-style output for the JDK.
	out, err = runCLI(t, bin, "policies", "-entry", "DatagramSocket.connect",
		filepath.Join(corpusDir, "jdk"))
	if err != nil {
		t.Fatalf("policies: %v\n%s", err, out)
	}
	for _, want := range []string{"MUST check", "MAY", "checkMulticast"} {
		if !strings.Contains(out, want) {
			t.Errorf("policies output missing %q:\n%s", want, out)
		}
	}

	// export / diff-policies: the policy-sharing workflow of the paper's
	// Discussion section.
	policiesFile := filepath.Join(t.TempDir(), "jdk.json")
	out, err = runCLI(t, bin, "export", filepath.Join(corpusDir, "jdk"), policiesFile)
	if err != nil {
		t.Fatalf("export: %v\n%s", err, out)
	}
	out, err = runCLI(t, bin, "diff-policies", policiesFile, filepath.Join(corpusDir, "harmony"))
	if err != nil {
		t.Fatalf("diff-policies: %v\n%s", err, out)
	}
	if !strings.Contains(out, "(shared) vs") || !strings.Contains(out, "checkAccept") {
		t.Errorf("diff-policies output missing content:\n%s", out)
	}

	// diff -json emits a machine-readable report.
	out, err = runCLI(t, bin, "diff", "-json",
		filepath.Join(corpusDir, "jdk"), filepath.Join(corpusDir, "harmony"))
	if err != nil {
		t.Fatalf("diff -json: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"matchingEntries"`) || !strings.Contains(out, `"checkAccept"`) {
		t.Errorf("JSON output missing content:\n%s", out)
	}

	// fingerprint: deterministic content address, sensitive to options.
	fp1, err := runCLI(t, bin, "fingerprint", filepath.Join(corpusDir, "jdk"))
	if err != nil {
		t.Fatalf("fingerprint: %v\n%s", err, fp1)
	}
	if !strings.HasPrefix(fp1, "po1-") {
		t.Errorf("fingerprint output %q lacks po1- prefix", fp1)
	}
	fp2, err := runCLI(t, bin, "fingerprint", filepath.Join(corpusDir, "jdk"))
	if err != nil {
		t.Fatalf("fingerprint: %v\n%s", err, fp2)
	}
	if fp1 != fp2 {
		t.Errorf("fingerprint not deterministic: %q vs %q", fp1, fp2)
	}
	fpBroad, err := runCLI(t, bin, "fingerprint", "-broad", filepath.Join(corpusDir, "jdk"))
	if err != nil {
		t.Fatalf("fingerprint -broad: %v\n%s", err, fpBroad)
	}
	if fpBroad == fp1 {
		t.Error("fingerprint ignores -broad")
	}

	// fuzz: a short metamorphic campaign over one corpus directory must
	// apply rewrites and report zero invariant violations.
	out, err = runCLI(t, bin, "fuzz", "-seed", "11", "-rounds", "4",
		filepath.Join(corpusDir, "jdk"))
	if err != nil {
		t.Fatalf("fuzz: %v\n%s", err, out)
	}
	for _, want := range []string{"4 rounds over", "rewrites applied", "violations 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("fuzz output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("fuzz reported violations:\n%s", out)
	}

	// exceptions: the §8 extension reports the Figure 8 difference.
	out, err = runCLI(t, bin, "exceptions",
		filepath.Join(corpusDir, "jdk"), filepath.Join(corpusDir, "harmony"))
	if err != nil {
		t.Fatalf("exceptions: %v\n%s", err, out)
	}
	if !strings.Contains(out, "UnsupportedEncodingException") {
		t.Errorf("exceptions output missing difference:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCLI(t)
	if out, err := runCLI(t, bin, "diff", "/nonexistent-a", "/nonexistent-b"); err == nil {
		t.Errorf("diff of missing dirs succeeded:\n%s", out)
	}
	if out, err := runCLI(t, bin, "frobnicate"); err == nil {
		t.Errorf("unknown command succeeded:\n%s", out)
	}
	if out, err := runCLI(t, bin, "policies", "-memo", "bogus", t.TempDir()); err == nil {
		t.Errorf("bogus memo mode accepted:\n%s", out)
	}
}
