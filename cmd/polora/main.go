// Command polora is the security policy oracle CLI.
//
// Usage:
//
//	polora policies <dir> [flags]        extract and print security policies
//	polora diff <dirA> <dirB> [flags]    difference two implementations
//	polora exceptions <dirA> <dirB>      difference thrown-exception semantics (§8)
//	polora export <dir> <out.json>       extract and export policies for sharing
//	polora extract <dir> <out.json>      extract to a snapshot; -incremental -prev reuses one
//	polora diff-policies <a.json> <dir>  difference shared policies against local code
//	polora fingerprint <dir> [flags]     print the polorad content address of a library
//	polora corpus <outdir>               write the bundled corpora to disk
//	polora fuzz [dir...] [flags]         run a metamorphic fuzzing campaign
//	polora drift [flags]                 query a polorad -watch daemon's drift timeline
//	polora batch -remote a1,a2 [flags]   run a batch of extract/diff items on a polorad tier
//
// The extract command writes a snapshot: the exported policies plus the
// incremental state (per-method content hashes, per-entry dependency
// sets) that lets a later run re-analyze only what changed. With
// -incremental -prev <snapshot.json> it seeds from a previous snapshot
// and splices every entry point whose dependency set is untouched; the
// output is byte-identical to a from-scratch extraction either way.
//
// The fuzz command runs a coverage-guided metamorphic campaign
// (internal/campaign) over each library: seeded semantics-preserving
// rewrites, scheduled by per-mutator energy that feedback from per-round
// coverage keys boosts, with every invariant violation triaged — the
// mutation trace minimized to a smallest reproducer and deduplicated by
// a stable fingerprint. With no directories it fuzzes the bundled
// corpora — under -domain cryptoapi, a generated crypto-misuse corpus.
// Flags: -seed, -rounds, -mutations (rewrites per round), -workers
// (concurrent shards), -domain, -schedule guided|uniform, -shard-rounds,
// -out (write reproducer bundles), -json (machine-readable report on
// stdout), -remote addr1,addr2 (shard across polorad -campaigns
// workers).
//
// Fuzz exit codes are part of the CLI contract: 0 means every invariant
// held, 1 an operational error, 2 a usage error, and 3 means the
// campaign found invariant violations (the crashers are in the report).
//
// Flags (policies, diff):
//
//	-entry substr   restrict output to entry points containing substr
//	-domain id      check domain to extract under (default: securitymanager)
//	-broad          use broad security-sensitive events (Section 3)
//	-no-icp         disable interprocedural constant propagation
//	-memo mode      summary reuse: global (default), per-entry, none
//	-no-assume-sm   do not fold `getSecurityManager() != null` guards
//	-parallel N     extraction workers per mode (0 = GOMAXPROCS, 1 = sequential)
//	-timings        print a phase-timing summary to stderr after extraction
//
// The bundled corpora let the oracle be tried immediately:
//
//	polora corpus /tmp/corpus
//	polora diff /tmp/corpus/jdk /tmp/corpus/harmony
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle"
	"policyoracle/internal/analysis"
	"policyoracle/internal/campaign"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/diff"
	"policyoracle/internal/exceptions"
	"policyoracle/internal/metamorph"
	internalpolicy "policyoracle/internal/policy"
	"policyoracle/internal/telemetry"
	"policyoracle/internal/witness"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "policies":
		err = cmdPolicies(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "exceptions":
		err = cmdExceptions(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "extract":
		err = cmdExtract(os.Args[2:])
	case "diff-policies":
		err = cmdDiffPolicies(os.Args[2:])
	case "fingerprint":
		err = cmdFingerprint(os.Args[2:])
	case "fuzz":
		err = cmdFuzz(os.Args[2:])
	case "drift":
		err = cmdDrift(os.Args[2:])
	case "batch":
		err = cmdBatch(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "polora: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "polora: %v\n", err)
		if errors.Is(err, errViolations) {
			// Documented fuzz contract: exit 3 distinguishes "the oracle
			// is broken" from operational failures (exit 1), so CI can
			// dispatch without scraping output.
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// errViolations marks a fuzz campaign that completed but found
// metamorphic invariant violations.
var errViolations = errors.New("metamorphic invariant violations")

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  polora policies <dir> [flags]         extract and print security policies
  polora diff <dirA> <dirB> [flags]     difference two implementations
  polora exceptions <dirA> <dirB>       difference thrown-exception semantics (§8)
  polora export <dir> <out.json>        extract and export policies for sharing
  polora extract <dir> <out.json>       extract to a snapshot (-incremental -prev reuses one)
  polora diff-policies <a.json> <dir>   difference shared policies against local code
  polora fingerprint <dir> [flags]      print the polorad content address of a library
  polora corpus <outdir>                write the bundled jdk/harmony/classpath corpora
  polora fuzz [dir...] [flags]          run a metamorphic fuzzing campaign over libraries
  polora drift [flags]                  query a polorad -watch daemon's drift timeline
  polora batch -remote a1,a2 [flags]    run a batch of extract/diff items on a polorad tier
`)
}

type commonFlags struct {
	entry      string
	domain     string
	broad      bool
	noICP      bool
	memo       string
	noAssumeSM bool
	witness    bool
	jsonOut    bool
	guards     bool
	parallel   int
	timings    bool

	metrics *telemetry.ExtractMetrics
}

func (cf *commonFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&cf.entry, "entry", "", "restrict to entry points containing this substring")
	fs.StringVar(&cf.domain, "domain", "", "check domain to extract under (default: "+policyoracle.DefaultDomainID+")")
	fs.BoolVar(&cf.broad, "broad", false, "use broad security-sensitive events")
	fs.BoolVar(&cf.noICP, "no-icp", false, "disable interprocedural constant propagation")
	fs.StringVar(&cf.memo, "memo", "global", "summary reuse: global, per-entry, none")
	fs.BoolVar(&cf.noAssumeSM, "no-assume-sm", false, "do not fold security-manager null guards")
	fs.BoolVar(&cf.witness, "witness", false, "dynamically confirm each difference by interpretation")
	fs.BoolVar(&cf.jsonOut, "json", false, "emit the report as JSON (diff only)")
	fs.BoolVar(&cf.guards, "guards", false, "report the branch conditions guarding each check (policies only)")
	fs.IntVar(&cf.parallel, "parallel", 0, "extraction workers per analysis mode (0 = GOMAXPROCS, 1 = sequential)")
	fs.BoolVar(&cf.timings, "timings", false, "print a phase-timing summary to stderr after extraction")
}

func (cf *commonFlags) options() (policyoracle.Options, error) {
	opts := policyoracle.DefaultOptions()
	// The CLI consumes the domain API through the top-level policyoracle
	// re-exports; importing internal/secmodel directly from cmd/ is
	// deprecated.
	dom, err := policyoracle.ResolveDomain(cf.domain)
	if err != nil {
		return opts, fmt.Errorf("-domain: %w", err)
	}
	opts.Domain = dom
	if cf.broad {
		opts.Events = policyoracle.BroadEvents
	}
	opts.ICP = !cf.noICP
	opts.AssumeSecurityManager = !cf.noAssumeSM
	opts.CollectGuards = cf.guards
	opts.Parallel = cf.parallel
	if cf.timings {
		cf.metrics = telemetry.NewExtractMetrics(telemetry.New())
		opts.Telemetry = cf.metrics
	}
	switch cf.memo {
	case "global":
		opts.Memo = analysis.MemoGlobal
	case "per-entry":
		opts.Memo = analysis.MemoPerEntry
	case "none":
		opts.Memo = analysis.MemoNone
	default:
		return opts, fmt.Errorf("unknown -memo mode %q", cf.memo)
	}
	return opts, nil
}

// printTimings writes the -timings summary to stderr, away from the
// report on stdout, so `polora diff -json -timings` still pipes cleanly.
func (cf *commonFlags) printTimings() {
	if cf.metrics != nil {
		fmt.Fprint(os.Stderr, cf.metrics.Summary())
	}
}

func cmdPolicies(args []string) error {
	fs := flag.NewFlagSet("policies", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("policies: expected one directory, got %d args", fs.NArg())
	}
	dir := fs.Arg(0)
	opts, err := cf.options()
	if err != nil {
		return err
	}
	lib, err := policyoracle.LoadLibraryDir(filepath.Base(dir), dir)
	if err != nil {
		return err
	}
	lib.Extract(opts)
	cf.printTimings()
	fmt.Printf("library %s: %d entry points, %d policies, %d with checks (analysis %v + %v)\n\n",
		lib.Name, len(lib.EntryPoints()), lib.Policies.CountPolicies(),
		lib.Policies.EntriesWithChecks(), lib.MayTime, lib.MustTime)
	for _, sig := range lib.Policies.SortedEntries() {
		if cf.entry != "" && !strings.Contains(sig, cf.entry) {
			continue
		}
		ep := lib.Policies.Entries[sig]
		if !ep.HasChecks() && cf.entry == "" {
			continue // print only checked entries unless filtered explicitly
		}
		fmt.Printf("%s\n", sig)
		for _, ev := range ep.SortedEvents() {
			evp := ep.Events[ev]
			fmt.Printf("  MUST check: %s  Event: %s\n", evp.Must.StringIn(opts.Domain), ev)
			fmt.Printf("  MAY  check: %s  Event: %s\n", evp.May.StringIn(opts.Domain), ev)
			if len(evp.Paths.Sets) > 1 {
				fmt.Printf("  MAY  paths: %s\n", evp.Paths.StringIn(opts.Domain))
			}
		}
		if cf.guards {
			ids := make([]policyoracle.CheckID, 0, len(ep.Guards))
			for id := range ep.Guards {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				for _, g := range ep.GuardsOf(id) {
					if g == "" {
						fmt.Printf("  guard: %s is unconditional on some path\n", opts.Domain.CheckName(id))
					} else {
						fmt.Printf("  guard: %s conditional on branches at %s\n", opts.Domain.CheckName(id), g)
					}
				}
			}
		}
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: expected two directories, got %d args", fs.NArg())
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	var libs [2]*policyoracle.Library
	for i, dir := range []string{fs.Arg(0), fs.Arg(1)} {
		lib, err := policyoracle.LoadLibraryDir(filepath.Base(dir), dir)
		if err != nil {
			return err
		}
		lib.Extract(opts)
		libs[i] = lib
	}
	cf.printTimings()
	rep, err := policyoracle.Diff(libs[0], libs[1])
	if err != nil {
		return err
	}
	if cf.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep.ToJSON())
	}
	fmt.Printf("%s vs %s: %d matching entry points\n", rep.LibA, rep.LibB, rep.MatchingEntries)
	fmt.Printf("%d distinct differences, %d manifestations\n\n", len(rep.Groups), rep.TotalManifestations())
	for _, g := range rep.Groups {
		if cf.entry != "" {
			hit := false
			for _, e := range g.Entries {
				if strings.Contains(e, cf.entry) {
					hit = true
				}
			}
			if !hit {
				continue
			}
		}
		printGroup(g, opts.Domain)
		if cf.witness {
			for _, r := range witness.Confirm(libs[0].Prog.Types, libs[1].Prog.Types, libs[0].Name, libs[1].Name, g) {
				fmt.Printf("  witness: %s\n", r)
			}
			fmt.Println()
		}
	}
	return nil
}

func printGroup(g *policyoracle.Group, dom *policyoracle.Domain) {
	missing := g.MissingIn
	if missing == "" {
		missing = "(both sides differ)"
	}
	fmt.Printf("[%s, %s] checks %s missing in %s — %d manifestation(s)\n",
		g.Case, g.Category, g.DiffChecks.StringIn(dom), missing, g.Manifestations())
	if len(g.RootMethods) > 0 {
		fmt.Printf("  root cause in: %s\n", strings.Join(g.RootMethods, ", "))
	}
	d := g.Diffs[0]
	fmt.Printf("  event %s\n", d.Event)
	fmt.Printf("    %-12s MUST %s MAY %s\n", d.A.Library+":", d.A.Must.StringIn(dom), d.A.May.StringIn(dom))
	fmt.Printf("    %-12s MUST %s MAY %s\n", d.B.Library+":", d.B.Must.StringIn(dom), d.B.May.StringIn(dom))
	for _, e := range g.Entries {
		fmt.Printf("  manifests at %s\n", e)
	}
	fmt.Println()
}

func cmdExceptions(args []string) error {
	fs := flag.NewFlagSet("exceptions", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("exceptions: expected two directories, got %d args", fs.NArg())
	}
	var analyzers [2]*exceptions.Analyzer
	var names [2]string
	for i, dir := range []string{fs.Arg(0), fs.Arg(1)} {
		lib, err := policyoracle.LoadLibraryDir(filepath.Base(dir), dir)
		if err != nil {
			return err
		}
		names[i] = lib.Name
		analyzers[i] = exceptions.New(lib.Prog, lib.Resolver)
	}
	diffs := exceptions.Compare(analyzers[0], analyzers[1])
	fmt.Printf("%s vs %s: %d entry point(s) with differing exception semantics\n",
		names[0], names[1], len(diffs))
	for _, d := range diffs {
		fmt.Printf("  %s\n    %-12s throws %s\n    %-12s throws %s\n",
			d.Entry, names[0]+":", d.A, names[1]+":", d.B)
	}
	return nil
}

// cmdExport implements the paper's policy-sharing use case (Discussion):
// a vendor extracts and publishes policies without publishing code.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("export: expected <dir> <out.json>")
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	lib, err := policyoracle.LoadLibraryDir(filepath.Base(fs.Arg(0)), fs.Arg(0))
	if err != nil {
		return err
	}
	lib.Extract(opts)
	cf.printTimings()
	data, err := lib.Policies.ExportJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(fs.Arg(1), data, 0o644); err != nil {
		return err
	}
	fmt.Printf("exported %d entry-point policies of %s to %s\n",
		len(lib.Policies.Entries), lib.Name, fs.Arg(1))
	return nil
}

// cmdExtract extracts a library into a snapshot — exported policies plus
// the incremental state a later -incremental run seeds from. With
// -incremental it re-analyzes only entry points whose dependency set
// intersects the methods that changed since -prev was written.
func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	name := fs.String("name", "", "library name (default: base name of the directory)")
	incremental := fs.Bool("incremental", false, "seed from a previous snapshot and re-analyze only changed entry points")
	prevPath := fs.String("prev", "", "previous snapshot file (required with -incremental)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("extract: expected <dir> <out.json>")
	}
	dir, outPath := fs.Arg(0), fs.Arg(1)
	opts, err := cf.options()
	if err != nil {
		return err
	}
	// Snapshots persist wire-format policies, which carry no display data,
	// so extractions feeding them never collect it — this also keeps the
	// snapshot's option key matched however the command is flagged.
	opts.CollectPaths, opts.CollectGuards = false, false
	sources, err := policyoracle.ReadSourcesDir(dir)
	if err != nil {
		return err
	}

	var lib *policyoracle.Library
	if *incremental {
		if *prevPath == "" {
			return fmt.Errorf("extract: -incremental requires -prev <snapshot.json>")
		}
		data, err := os.ReadFile(*prevPath)
		if err != nil {
			return err
		}
		prev, err := policyoracle.ImportSnapshot(data)
		if err != nil {
			return err
		}
		if *name != "" && *name != prev.Name {
			return fmt.Errorf("extract: -name %q does not match snapshot library %q", *name, prev.Name)
		}
		var st *policyoracle.IncrementalStats
		lib, st, err = policyoracle.ExtractIncremental(prev, sources, opts)
		if err != nil {
			return err
		}
		cf.printTimings()
		if st.Full {
			fmt.Fprintf(os.Stderr, "extract: snapshot options differ or carry no incremental state; fell back to a full extraction\n")
		}
		fmt.Printf("%s: reused %d, re-analyzed %d of %d entry points; %d methods hashed, %d changed\n",
			lib.Name, st.Reused, st.Reanalyzed, st.Entries, st.HashedMethods, st.ChangedMethods)
	} else {
		if *name == "" {
			*name = filepath.Base(dir)
		}
		lib, err = policyoracle.LoadLibrary(*name, sources)
		if err != nil {
			return err
		}
		lib.Extract(opts)
		cf.printTimings()
		fmt.Printf("%s: extracted %d entry-point policies\n", lib.Name, len(lib.Policies.Entries))
	}
	out, err := lib.ExportSnapshot()
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot %s\n", outPath)
	return nil
}

// cmdDiffPolicies differences imported (shared) policies against a local
// implementation.
func cmdDiffPolicies(args []string) error {
	fs := flag.NewFlagSet("diff-policies", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff-policies: expected <policies.json> <dir>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	shared, err := internalpolicy.ImportJSON(data)
	if err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	lib, err := policyoracle.LoadLibraryDir(filepath.Base(fs.Arg(1)), fs.Arg(1))
	if err != nil {
		return err
	}
	lib.Extract(opts)
	cf.printTimings()
	if shared.Domain != lib.Policies.Domain {
		return fmt.Errorf("%w: %s was exported under -domain %q", policyoracle.ErrDomainMismatch,
			fs.Arg(0), shared.Domain)
	}
	rep := diff.Compare(shared, lib.Policies)
	fmt.Printf("%s (shared) vs %s (local): %d matching entry points\n",
		rep.LibA, rep.LibB, rep.MatchingEntries)
	fmt.Printf("%d distinct differences, %d manifestations\n\n", len(rep.Groups), rep.TotalManifestations())
	for _, g := range rep.Groups {
		printGroup(g, opts.Domain)
	}
	return nil
}

// cmdFingerprint prints the content address a polorad store would assign
// to a library directory — the same oracle.Fingerprint the service
// computes on upload, so clients can predict (and verify) fingerprints
// offline.
func cmdFingerprint(args []string) error {
	fs := flag.NewFlagSet("fingerprint", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	name := fs.String("name", "", "library name (default: base name of the directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("fingerprint: expected one directory, got %d args", fs.NArg())
	}
	dir := fs.Arg(0)
	opts, err := cf.options()
	if err != nil {
		return err
	}
	sources, err := policyoracle.ReadSourcesDir(dir)
	if err != nil {
		return err
	}
	if *name == "" {
		*name = filepath.Base(dir)
	}
	fmt.Println(policyoracle.Fingerprint(*name, sources, opts))
	return nil
}

// fuzzReport is the -json report: one machine-readable object on
// stdout with everything CI consumes — per-library coverage keys,
// crasher fingerprints, and reproducer-bundle paths — so workflow legs
// dispatch on structure and exit codes, never on human text.
type fuzzReport struct {
	Schedule   string             `json:"schedule"`
	Seed       int64              `json:"seed"`
	Rounds     int                `json:"rounds_per_library"`
	Violations int                `json:"violations"`
	Libraries  []*campaign.Result `json:"libraries"`
}

// cmdFuzz runs the coverage-guided campaign from internal/campaign over
// one library per directory argument, or over the bundled corpora when
// none are given. Violations make it return errViolations (exit 3).
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "campaign seed (each shard and round derives its own)")
	rounds := fs.Int("rounds", 100, "mutation rounds per library")
	mutations := fs.Int("mutations", 8, "semantics-preserving rewrites attempted per round")
	workers := fs.Int("workers", 0, "concurrent shards (0 = GOMAXPROCS)")
	domain := fs.String("domain", "", "check domain to fuzz under (default: "+policyoracle.DefaultDomainID+")")
	schedule := fs.String("schedule", "guided", "mutator schedule: guided (coverage feedback) or uniform")
	shardRounds := fs.Int("shard-rounds", 0, "rounds per deterministic feedback shard (0 = default 32)")
	outDir := fs.String("out", "", "write deduped minimized reproducer bundles and summaries under this directory")
	jsonOut := fs.Bool("json", false, "emit one machine-readable JSON report on stdout")
	remote := fs.String("remote", "", "comma-separated polorad -campaigns addresses to shard the campaign across")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var uniform bool
	switch *schedule {
	case "guided":
	case "uniform":
		uniform = true
	default:
		return fmt.Errorf("fuzz: unknown -schedule %q (guided or uniform)", *schedule)
	}
	dom, err := policyoracle.ResolveDomain(*domain)
	if err != nil {
		return err
	}
	opts := policyoracle.DefaultOptions()
	opts.Domain = dom
	type target struct {
		name    string
		sources map[string]string
	}
	var targets []target
	switch {
	case fs.NArg() > 0:
		for _, dir := range fs.Args() {
			sources, err := policyoracle.ReadSourcesDir(dir)
			if err != nil {
				return err
			}
			targets = append(targets, target{filepath.Base(dir), sources})
		}
	case dom.ID() == policyoracle.DefaultDomainID:
		for _, name := range policyoracle.BuiltinCorpora() {
			targets = append(targets, target{name, policyoracle.BuiltinCorpus(name)})
		}
	case dom.ID() == policyoracle.CryptoDomainID:
		// The crypto domain has no hand-written corpus; fuzz the
		// generated one, which carries the seeded misuse population.
		c := gen.Generate(gen.CryptoSmall())
		var names []string
		for name := range c.Sources {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			targets = append(targets, target{name, c.Sources[name]})
		}
	default:
		return fmt.Errorf("fuzz: no bundled corpus for domain %s; pass library directories", dom.ID())
	}
	metrics := telemetry.NewCampaignMetrics(telemetry.New())
	copts := campaign.Options{
		Seed:        *seed,
		Rounds:      *rounds,
		Mutations:   *mutations,
		Workers:     *workers,
		ShardRounds: *shardRounds,
		Uniform:     uniform,
		Oracle:      &opts,
		OutDir:      *outDir,
		Metrics:     metrics,
	}
	report := fuzzReport{Schedule: copts.Schedule(), Seed: *seed, Rounds: *rounds}
	for _, tg := range targets {
		var res *campaign.Result
		var err error
		if *remote != "" {
			res, err = campaign.RunRemote(context.Background(), tg.name, tg.sources, copts,
				strings.Split(*remote, ","))
		} else {
			res, err = campaign.Run(tg.name, tg.sources, copts)
		}
		if err != nil {
			return fmt.Errorf("fuzz %s: %w", tg.name, err)
		}
		report.Libraries = append(report.Libraries, res)
		report.Violations += res.RawViolations
		if !*jsonOut {
			fmt.Printf("%s: %d rounds over %d entry points in %v (%d coverage keys, %d new-coverage rounds)\n",
				res.Library, res.Rounds, res.Entries, res.Elapsed.Round(time.Millisecond),
				len(res.CoverageKeys), res.NewCoverageRounds)
			for _, c := range res.Crashers {
				where := ""
				if c.Bundle != "" {
					where = " bundle=" + c.Bundle
				}
				fmt.Printf("  CRASHER %s [%s] first round %d, seen %d, trace %d step(s), minimized=%v%s\n",
					c.Fingerprint, c.Invariant, c.FirstRound, c.Seen, len(c.Trace), c.Minimized, where)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		applied, attempted := map[string]int{}, map[string]int{}
		rounds := 0
		for _, res := range report.Libraries {
			rounds += res.Rounds
			for m, n := range res.Applied {
				applied[m] += n
			}
			for m, n := range res.Attempted {
				attempted[m] += n
			}
		}
		fmt.Printf("\nrewrites applied (all libraries):\n")
		for _, m := range metamorph.Mutators() {
			fmt.Printf("  %-15s %6d applied / %6d attempted\n", m.Name, applied[m.Name], attempted[m.Name])
		}
		fmt.Printf("rounds %d, violations %d\n", rounds, report.Violations)
	}
	if report.Violations > 0 {
		return fmt.Errorf("%w: %d raw violation(s) across %d unique crasher(s); replay with -seed %d",
			errViolations, report.Violations, countCrashers(report.Libraries), *seed)
	}
	return nil
}

func countCrashers(results []*campaign.Result) int {
	n := 0
	for _, res := range results {
		n += len(res.Crashers)
	}
	return n
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	parallel := fs.Int("parallel", 0, "concurrent file writers (0 = GOMAXPROCS, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("corpus: expected one output directory")
	}
	out := fs.Arg(0)
	type job struct{ path, src string }
	var jobs []job
	for _, name := range policyoracle.BuiltinCorpora() {
		for file, src := range policyoracle.BuiltinCorpus(name) {
			jobs = append(jobs, job{filepath.Join(out, name, filepath.FromSlash(file)), src})
		}
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		jobErr  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				j := jobs[i]
				err := os.MkdirAll(filepath.Dir(j.path), 0o755)
				if err == nil {
					err = os.WriteFile(j.path, []byte(j.src), 0o644)
				}
				if err != nil {
					errOnce.Do(func() { jobErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if jobErr != nil {
		return jobErr
	}
	for _, name := range policyoracle.BuiltinCorpora() {
		fmt.Printf("wrote %s/%s\n", out, name)
	}
	return nil
}
