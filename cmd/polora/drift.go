package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"policyoracle/internal/reconcile"
	"policyoracle/internal/server"
)

// cmdDrift queries a `polorad -watch` daemon's drift timeline — the only
// polora command that talks to the service rather than analyzing
// sources locally. With -json it prints the server's response bytes
// verbatim, so scripts see exactly the GET /v1/drift wire format.
func cmdDrift(args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8075", "polorad base URL")
	pair := fs.String("pair", "", "show one library pair (either name order; e.g. jdk~harmony)")
	limit := fs.Int("limit", 0, "newest timeline entries to fetch (0 = all)")
	jsonOut := fs.Bool("json", false, "print the server response verbatim")
	timeout := fs.Duration("timeout", 30*time.Second, "request timeout")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("drift takes no positional arguments (got %q)", fs.Args())
	}
	client := &http.Client{Timeout: *timeout}

	if *pair != "" {
		a, b, ok := reconcile.SplitPair(*pair)
		if !ok {
			return fmt.Errorf("pair %q is not of the form a~b", *pair)
		}
		body, err := driftGet(client, *addr+"/v1/drift/"+url.PathEscape(reconcile.PairKey(a, b)))
		if err != nil {
			return err
		}
		if *jsonOut {
			os.Stdout.Write(body)
			return nil
		}
		var st reconcile.PairStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("decoding pair status: %w", err)
		}
		printPairStatus(&st)
		return nil
	}

	u := *addr + "/v1/drift"
	if *limit > 0 {
		u += "?limit=" + strconv.Itoa(*limit)
	}
	body, err := driftGet(client, u)
	if err != nil {
		return err
	}
	if *jsonOut {
		os.Stdout.Write(body)
		return nil
	}
	var wire reconcile.TimelineWire
	if err := json.Unmarshal(body, &wire); err != nil {
		return fmt.Errorf("decoding drift timeline: %w", err)
	}
	if len(wire.Entries) == 0 {
		fmt.Println("drift timeline is empty (no reconciled pairs yet)")
		return nil
	}
	for _, e := range wire.Entries {
		line := fmt.Sprintf("#%d %s %s  %s: %d deviation(s), %d manifestation(s)",
			e.Seq, e.ObservedAt.Format(time.RFC3339), e.Pair, shortFps(e), e.Deviations, e.Manifestations)
		if len(e.New) > 0 {
			line += fmt.Sprintf(", %d new", len(e.New))
		}
		if len(e.Resolved) > 0 {
			line += fmt.Sprintf(", %d resolved", len(e.Resolved))
		}
		if e.Alert != "" {
			line += "  [alert " + e.Alert + "]"
		}
		fmt.Println(line)
	}
	return nil
}

func printPairStatus(st *reconcile.PairStatus) {
	fmt.Printf("pair %s (%s vs %s)\n", st.Pair, st.LibA, st.LibB)
	fmt.Printf("  observed    %s\n", st.ObservedAt.Format(time.RFC3339))
	fmt.Printf("  snapshots   %s / %s\n", shortFp(st.FpA), shortFp(st.FpB))
	fmt.Printf("  deviations  %d (%d manifestations) over %d observation(s)\n",
		st.Deviations, st.Manifestations, st.TimelineLen)
	for _, k := range st.New {
		fmt.Printf("  new         %s\n", k)
	}
	for _, k := range st.Resolved {
		fmt.Printf("  resolved    %s\n", k)
	}
	alert := "off"
	if st.AlertThreshold > 0 {
		alert = fmt.Sprintf("clear (threshold %d)", st.AlertThreshold)
		if st.AlertFiring {
			alert = fmt.Sprintf("FIRING (threshold %d)", st.AlertThreshold)
		}
	}
	fmt.Printf("  alert       %s\n", alert)
	fmt.Printf("  diff sha256 %s\n", st.DiffSHA256)
}

func shortFps(e *reconcile.Entry) string {
	return shortFp(e.FpA) + "/" + shortFp(e.FpB)
}

func shortFp(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// driftGet fetches one drift URL, turning the server's error envelope
// into a readable failure (including the hint when -watch is off).
func driftGet(client *http.Client, u string) ([]byte, error) {
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return body, nil
	}
	var er server.ErrorResponse
	if json.Unmarshal(body, &er) == nil && er.Code != "" {
		detail := er.Detail
		if detail == "" {
			detail = er.Message
		}
		return nil, fmt.Errorf("%s: %s (%s)", u, detail, er.Code)
	}
	return nil, fmt.Errorf("%s: HTTP %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
}
