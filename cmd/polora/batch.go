package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"policyoracle/internal/batch"
	"policyoracle/internal/telemetry"
)

// cmdBatch executes a batch of extract/diff items against a sharded
// polorad tier (POST /v1/batch), routing each item to the replica that
// owns its fingerprint on the tier's consistent-hash ring and merging
// the streamed results in input order. Replicas that stop answering are
// retried with exponential backoff, then dropped from the ring and
// their items rerouted.
//
// The item file (-in, default stdin) is either {"items":[...]} or a
// bare JSON array of items:
//
//	[{"op":"extract","fingerprint":"po1-..."},
//	 {"op":"diff","a":"po1-...","b":"po1-..."}]
//
// Each successful item's payload is byte-identical to the single-node
// wire: `polora export` output for extract, `polora diff -json` output
// for diff. With -out the payloads land one file per item
// (item-0003.extract.json); without it they stream to stdout in input
// order.
func cmdBatch(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	remote := fs.String("remote", "", "comma-separated polorad replica addresses (the tier's -peers list)")
	in := fs.String("in", "-", "item file (JSON; - = stdin)")
	outDir := fs.String("out", "", "write each item's payload under this directory instead of stdout")
	workers := fs.Int("workers", 0, "concurrent chunk requests (0 = 4)")
	retries := fs.Int("retries", 0, "per-chunk retry budget before a replica is declared dead (0 = 3)")
	backoff := fs.Duration("backoff", 0, "initial retry backoff, doubled per retry (0 = 200ms)")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-request timeout")
	verbose := fs.Bool("v", false, "log retries and dropouts to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("batch takes no positional arguments (got %q)", fs.Args())
	}
	if *remote == "" {
		return fmt.Errorf("batch: -remote is required (comma-separated replica addresses)")
	}

	items, err := readBatchItems(*in)
	if err != nil {
		return err
	}
	if len(items) == 0 {
		return fmt.Errorf("batch: no items in %s", *in)
	}

	client := &batch.Client{
		Members: strings.Split(*remote, ","),
		Workers: *workers,
		Retries: *retries,
		Backoff: *backoff,
		HTTP:    &http.Client{Timeout: *timeout},
	}
	if *verbose {
		log, err := telemetry.NewLogger(os.Stderr, "text", 0)
		if err != nil {
			return err
		}
		client.Logger = log
	}
	results, err := client.Run(context.Background(), items)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}

	failed := 0
	for _, res := range results {
		if res.Error != nil {
			failed++
			fmt.Fprintf(os.Stderr, "batch: item %d (%s) failed: %s: %s\n",
				res.Index, res.Op, res.Error.Code, res.Error.Detail)
			continue
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			p := filepath.Join(*outDir, fmt.Sprintf("item-%04d.%s.json", res.Index, res.Op))
			if err := os.WriteFile(p, res.Result, 0o644); err != nil {
				return err
			}
		} else {
			os.Stdout.Write(res.Result)
		}
	}
	fmt.Fprintf(os.Stderr, "batch: %d items, %d ok, %d failed\n", len(results), len(results)-failed, failed)
	if failed > 0 {
		return fmt.Errorf("batch: %d of %d items failed", failed, len(results))
	}
	return nil
}

// readBatchItems loads the item list from path ("-" = stdin), accepting
// either the request envelope {"items":[...]} or a bare array.
func readBatchItems(path string) ([]batch.Item, error) {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var items []batch.Item
		if err := json.Unmarshal(data, &items); err != nil {
			return nil, fmt.Errorf("batch: decoding item array: %w", err)
		}
		return items, nil
	}
	var req batch.Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("batch: decoding request: %w", err)
	}
	return req.Items, nil
}
