// Benchmarks regenerating the paper's evaluation, one per table/figure:
//
//   - BenchmarkTable1Extraction  — policy extraction per library (Table 1's
//     workload; the policy counts are printed by cmd/experiments table1)
//   - BenchmarkTable2Memoization — MAY analysis under the three summary
//     modes (Table 2's swept parameter)
//   - BenchmarkTable3Diff        — pairwise policy differencing (Table 3)
//   - BenchmarkBroadEvents       — broad vs narrow event extraction (§3)
//   - BenchmarkBaselineMining    — the code-mining baseline (§2/§7)
//   - BenchmarkFrontend          — MJ parse+build+lower substrate
//
// Absolute times are machine-specific; the reproduced *shape* is the
// memoization ordering none ≫ per-entry ≥ global and the broad-events
// slowdown. cmd/experiments prints the corresponding tables with exact
// counts; EXPERIMENTS.md records paper-vs-measured values.
package policyoracle_test

import (
	"fmt"
	"sync"
	"testing"

	"policyoracle"
	"policyoracle/internal/analysis"
	"policyoracle/internal/baseline/mining"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/experiments"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// benchParams sizes the generated corpus for benchmarking: large enough to
// exercise memoization and differencing, small enough for -bench runs.
func benchParams() gen.Params {
	p := gen.Small()
	p.Classes = 48
	p.MethodsPerClass = 8
	return p
}

var (
	benchOnce sync.Once
	benchWork *experiments.Workload
)

func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() {
		benchWork = experiments.NewWorkload(benchParams(), true)
	})
	return benchWork
}

func loadLib(b *testing.B, w *experiments.Workload, name string) *policyoracle.Library {
	b.Helper()
	l, err := w.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkTable1Extraction measures full MAY+MUST policy extraction for
// one implementation — the per-library cost behind Table 1's policy counts.
func BenchmarkTable1Extraction(b *testing.B) {
	w := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := loadLib(b, w, "jdk")
		l.Extract(oracle.DefaultOptions())
		if l.Policies.CountPolicies() == 0 {
			b.Fatal("no policies extracted")
		}
	}
}

// BenchmarkTable2Memoization sweeps the summary-reuse modes of Table 2.
func BenchmarkTable2Memoization(b *testing.B) {
	w := benchWorkload(b)
	for _, memo := range []analysis.MemoMode{analysis.MemoNone, analysis.MemoPerEntry, analysis.MemoGlobal} {
		b.Run(memo.String(), func(b *testing.B) {
			opts := oracle.DefaultOptions()
			opts.Memo = memo
			opts.Modes = []analysis.Mode{analysis.May}
			opts.CollectPaths = false
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := loadLib(b, w, "harmony")
				l.Extract(opts)
			}
		})
	}
}

// BenchmarkTable3Diff measures pairwise differencing of pre-extracted
// policies — the comparison step of Table 3.
func BenchmarkTable3Diff(b *testing.B) {
	w := benchWorkload(b)
	libs, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := policyoracle.Diff(libs["jdk"], libs["harmony"])
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Groups) == 0 {
			b.Fatal("no differences found")
		}
	}
}

// BenchmarkTable3EndToEnd measures the full pipeline for one pair: load,
// extract both libraries, and difference them.
func BenchmarkTable3EndToEnd(b *testing.B) {
	w := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := loadLib(b, w, "jdk")
		h := loadLib(b, w, "harmony")
		a.Extract(oracle.DefaultOptions())
		h.Extract(oracle.DefaultOptions())
		if _, err := policyoracle.Diff(a, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadEvents measures extraction under the Section 3 broad event
// definition (private-field and parameter accesses as events).
func BenchmarkBroadEvents(b *testing.B) {
	w := benchWorkload(b)
	for _, mode := range []secmodel.EventMode{secmodel.NarrowEvents, secmodel.BroadEvents} {
		b.Run(mode.String(), func(b *testing.B) {
			opts := oracle.DefaultOptions()
			opts.Events = mode
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l := loadLib(b, w, "classpath")
				l.Extract(opts)
			}
		})
	}
}

// BenchmarkExtractParallel measures full MAY+MUST extraction of one
// implementation across worker counts — the workload behind the
// BENCH_extract.json trajectory. The library is loaded once outside the
// timed loop so the numbers describe extraction itself (the frontend has
// its own BenchmarkFrontend); each iteration re-runs the complete
// MAY+MUST analysis and republishes the policies. The entries/s metric
// counts per-mode entry-point analyses per second (2 modes × entry
// points × iterations / wall), the throughput unit the CI regression
// gate tracks.
//
// On a multi-core machine the 4- and 8-worker variants should show the
// near-linear speedup of the entry-point fan-out; on a single core all
// variants converge (the pool degenerates to sequential execution plus
// scheduling overhead).
func BenchmarkExtractParallel(b *testing.B) {
	w := benchWorkload(b)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			l := loadLib(b, w, "jdk")
			entries := len(l.EntryPoints())
			opts := oracle.DefaultOptions()
			opts.Parallel = par
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Extract(opts)
				if l.Policies.CountPolicies() == 0 {
					b.Fatal("no policies extracted")
				}
			}
			b.ReportMetric(float64(2*entries*b.N)/b.Elapsed().Seconds(), "entries/s")
		})
	}
}

// BenchmarkBaselineMining measures the code-mining baseline over one
// implementation's extracted policies.
func BenchmarkBaselineMining(b *testing.B) {
	w := benchWorkload(b)
	l := loadLib(b, w, "harmony")
	l.Extract(oracle.DefaultOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mining.New(l.Policies, mining.DefaultConfig())
		m.FindViolations()
	}
}

// BenchmarkFrontend measures the MJ substrate alone: parse, build the
// class table, and lower to IR.
func BenchmarkFrontend(b *testing.B) {
	w := benchWorkload(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Load("classpath"); err != nil {
			b.Fatal(err)
		}
	}
}
