package witness

import (
	"testing"

	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/oracle"
)

// TestWitnessesSeededDropChecks dynamically confirms the generated
// corpus's dropped-check and privileged-wrap vulnerabilities. WeakenMust
// seeds are intentionally out of reach: the guard condition depends on a
// specific argument value the synthesized inputs do not hit, which is
// exactly why they are MAY/MUST differences rather than outright holes.
func TestWitnessesSeededDropChecks(t *testing.T) {
	c := gen.Generate(gen.Small())
	libs := map[string]*oracle.Library{}
	for name, srcs := range c.Sources {
		l, err := oracle.LoadLibrary(name, srcs)
		if err != nil {
			t.Fatal(err)
		}
		l.Extract(oracle.DefaultOptions())
		libs[name] = l
	}

	confirmed := map[string]bool{}
	pairs := [][2]string{{"jdk", "harmony"}, {"jdk", "classpath"}, {"classpath", "harmony"}}
	for _, pair := range pairs {
		a, b := libs[pair[0]], libs[pair[1]]
		rep := mustDiff(t, a, b)
		for _, g := range rep.Groups {
			for i := range c.Issues {
				is := &c.Issues[i]
				if is.Responsible != pair[0] && is.Responsible != pair[1] {
					continue
				}
				hit := false
				for _, e := range g.Entries {
					if is.MatchesEntry(e) {
						hit = true
					}
				}
				if !hit {
					continue
				}
				for _, r := range Confirm(a.Prog.Types, b.Prog.Types, a.Name, b.Name, g) {
					if r.Confirmed && r.VulnerableLib == is.Responsible {
						confirmed[is.ID] = true
					}
				}
			}
		}
	}
	for _, is := range c.Issues {
		switch is.Kind {
		case gen.DropCheck, gen.PrivWrap:
			if !confirmed[is.ID] {
				t.Errorf("seeded %s issue %s (in %s) not dynamically confirmed",
					is.Kind, is.ID, is.Responsible)
			}
		}
	}
}
