// Package witness dynamically confirms the oracle's reports, playing the
// role of the paper's manual vulnerability confirmation: for a reported
// difference it denies exactly the differing permission, executes the
// manifesting entry point in both implementations under the interpreter,
// and checks that one implementation throws SecurityException while the
// other proceeds to the security-sensitive action.
package witness

import (
	"fmt"

	"policyoracle/internal/diff"
	"policyoracle/internal/interp"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// Result is the dynamic outcome for one (entry, denied check) pair.
type Result struct {
	Entry  string
	Denied secmodel.CheckID
	// Outcomes per implementation, keyed in the same order as the
	// libraries passed to Confirm.
	A, B *interp.Outcome
	// Confirmed reports that exactly one implementation enforced the
	// denied permission.
	Confirmed bool
	// VulnerableLib names the implementation that proceeded without
	// enforcing the permission ("" when unconfirmed).
	VulnerableLib string
}

func (r Result) String() string {
	status := "not confirmed"
	if r.Confirmed {
		status = "CONFIRMED: " + r.VulnerableLib + " does not enforce " + secmodel.CheckName(r.Denied)
	}
	return fmt.Sprintf("%s denying %s: %s", r.Entry, secmodel.CheckName(r.Denied), status)
}

// Confirm executes the manifesting entry points of a difference group in
// both implementations, denying each differing check in turn.
func Confirm(progA, progB *types.Program, libA, libB string, g *diff.Group) []Result {
	var out []Result
	for _, id := range g.DiffChecks.IDs() {
		for _, entry := range g.Entries {
			r := Result{Entry: entry, Denied: id}
			ma := findEntry(progA, entry)
			mb := findEntry(progB, entry)
			if ma == nil || mb == nil {
				out = append(out, r)
				continue
			}
			cfg := interp.DefaultConfig(interp.Deny(id))
			r.A = interp.New(progA, cfg).CallEntry(ma)
			r.B = interp.New(progB, cfg).CallEntry(mb)
			r.Confirmed, r.VulnerableLib = judge(r.A, r.B, libA, libB)
			out = append(out, r)
		}
	}
	return out
}

// judge decides whether the pair of outcomes witnesses a missing
// enforcement: one side throws SecurityException, the other completes (or
// reaches a native action) without it.
func judge(a, b *interp.Outcome, libA, libB string) (bool, string) {
	if a == nil || b == nil || a.Err != nil || b.Err != nil {
		return false, ""
	}
	switch {
	case a.SecurityViolation && !b.SecurityViolation:
		return true, libB
	case b.SecurityViolation && !a.SecurityViolation:
		return true, libA
	}
	return false, ""
}

func findEntry(p *types.Program, sig string) *types.Method {
	for _, m := range p.EntryPoints() {
		if m.Qualified() == sig {
			return m
		}
	}
	return nil
}
