package witness

import (
	"strings"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

func mustDiff(t testing.TB, a, b *oracle.Library) *diff.Report {
	t.Helper()
	rep, err := oracle.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func extract(t testing.TB, name string) *oracle.Library {
	t.Helper()
	l, err := oracle.LoadLibrary(name, corpus.Sources(name))
	if err != nil {
		t.Fatal(err)
	}
	l.Extract(oracle.DefaultOptions())
	return l
}

// TestWitnessesHandwrittenVulnerabilities runs the full loop: diff the
// corpora, then dynamically confirm the vulnerability groups the static
// oracle reported.
func TestWitnessesHandwrittenVulnerabilities(t *testing.T) {
	libs := map[string]*oracle.Library{}
	for _, name := range corpus.Libraries() {
		libs[name] = extract(t, name)
	}
	confirmedIssues := map[string]bool{}
	for _, pair := range corpus.Pairs() {
		a, b := libs[pair[0]], libs[pair[1]]
		rep := mustDiff(t, a, b)
		for _, g := range rep.Groups {
			is := corpus.ClassifyGroup(g, pair, false)
			if is == nil || is.Kind != corpus.Vulnerability {
				continue
			}
			for _, r := range Confirm(a.Prog.Types, b.Prog.Types, a.Name, b.Name, g) {
				if r.Confirmed {
					if r.VulnerableLib != is.Responsible {
						t.Errorf("%s: witness blames %s, ground truth %s (%s)",
							is.ID, r.VulnerableLib, is.Responsible, r)
					} else {
						confirmedIssues[is.ID] = true
					}
				}
			}
		}
	}
	// The dynamically confirmable hand-written vulnerabilities: figure 1
	// (checkAccept), figure 7 (Socket.connect), figure 5 (checkRead on
	// loadLibrary), privileged property check, figure 6 (openConnection).
	for _, want := range []string{
		"fig1-datagram-checkaccept",
		"fig7-socket-connect",
		"fig5-loadlibrary-checkread",
		"privileged-property-check",
		"fig6-openconnection-checkconnect",
	} {
		if !confirmedIssues[want] {
			t.Errorf("vulnerability %s not dynamically confirmed", want)
		}
	}
}

func TestFalsePositivesNotConfirmedAsVulnerabilities(t *testing.T) {
	// The Security.getProperty check-mismatch (checkPermission vs
	// checkSecurityAccess) "confirms" in both directions — each library
	// enforces a different permission — so the witness must blame each
	// side depending on the denied check, never consistently one library.
	jdk, harmony := extract(t, corpus.JDK), extract(t, corpus.Harmony)
	rep := mustDiff(t, jdk, harmony)
	for _, g := range rep.Groups {
		isGetProp := false
		for _, e := range g.Entries {
			if strings.Contains(e, "Security.getProperty") {
				isGetProp = true
			}
		}
		if !isGetProp {
			continue
		}
		blamed := map[string]bool{}
		for _, r := range Confirm(jdk.Prog.Types, harmony.Prog.Types, jdk.Name, harmony.Name, g) {
			if r.Confirmed {
				blamed[r.VulnerableLib] = true
			}
		}
		if len(blamed) == 1 {
			t.Errorf("swapped-check FP consistently blamed %v — would look like a real hole", blamed)
		}
	}
}

func TestConfirmWithMissingEntry(t *testing.T) {
	jdk, harmony := extract(t, corpus.JDK), extract(t, corpus.Harmony)
	g := &diff.Group{
		DiffChecks: policy.Empty.With(mustCheck(t, "checkRead", 1)),
		Entries:    []string{"no.such.Entry.m()"},
	}
	rs := Confirm(jdk.Prog.Types, harmony.Prog.Types, jdk.Name, harmony.Name, g)
	if len(rs) != 1 || rs[0].Confirmed {
		t.Errorf("missing entry should yield an unconfirmed result: %+v", rs)
	}
	if !strings.Contains(rs[0].String(), "not confirmed") {
		t.Errorf("render = %q", rs[0].String())
	}
}

func mustCheck(t *testing.T, name string, arity int) secmodel.CheckID {
	t.Helper()
	id, ok := secmodel.CheckByName(name, arity)
	if !ok {
		t.Fatalf("unknown check %s/%d", name, arity)
	}
	return id
}
