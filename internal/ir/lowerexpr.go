package ir

import (
	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/types"
)

func (lw *lowerer) resolveType(tr ast.TypeRef) types.Type {
	switch tr.Name {
	case "":
		return types.Type{Prim: "void"}
	case "void", "boolean", "int", "long", "char", "byte", "short", "float", "double":
		return types.Type{Prim: tr.Name, Dims: tr.Dims}
	}
	if c := lw.prog.Lookup(tr.Name, lw.class.File); c != nil {
		return types.Type{Class: c, Dims: tr.Dims}
	}
	return types.Type{Named: tr.Name, Dims: tr.Dims}
}

func (lw *lowerer) stringType() types.Type {
	if c := lw.prog.Lookup("String", lw.class.File); c != nil {
		return types.Type{Class: c}
	}
	return types.Type{Named: "String"}
}

// materialize ensures an operand is a Local (needed for receivers and
// field bases), copying constants into a temp.
func (lw *lowerer) materialize(op Operand, t types.Type, at lang.Pos) *Local {
	if l, ok := op.(*Local); ok {
		return l
	}
	tmp := lw.newTmp(t)
	lw.emit(&Assign{instrBase{At: at}, tmp, op})
	return tmp
}

// classQualifier interprets e as a class-name qualifier (e.g. `System` in
// System.exit(...) or `java.lang.System`). It returns the class, or nil
// when e is an ordinary expression.
func (e *lowerer) classQualifierName(x ast.Expr) (string, bool) {
	switch x := x.(type) {
	case *ast.VarRef:
		return x.Name, true
	case *ast.FieldAccess:
		if prefix, ok := e.classQualifierName(x.X); ok {
			return prefix + "." + x.Name, true
		}
	}
	return "", false
}

func (lw *lowerer) classQualifier(x ast.Expr) *types.Class {
	name, ok := lw.classQualifierName(x)
	if !ok {
		return nil
	}
	// A local variable shadows a class name.
	if v, isVar := x.(*ast.VarRef); isVar {
		if lw.lookupLocal(v.Name) != nil || lw.class.FieldOf(v.Name) != nil {
			return nil
		}
	} else if fa, isFA := x.(*ast.FieldAccess); isFA {
		// Inner segments that denote expressions disqualify the chain.
		if lw.classQualifier(fa.X) == nil {
			if _, isRoot := fa.X.(*ast.VarRef); !isRoot {
				return nil
			}
		}
	}
	return lw.prog.Lookup(name, lw.class.File)
}

// lowerExprForEffect lowers e, discarding its value.
func (lw *lowerer) lowerExprForEffect(e ast.Expr) {
	switch e := e.(type) {
	case *ast.CallExpr:
		lw.lowerCall(e, false)
	case *ast.IncDecExpr:
		lw.lowerIncDec(e)
	default:
		lw.lowerExpr(e)
	}
}

func (lw *lowerer) lowerIncDec(e *ast.IncDecExpr) (Operand, types.Type) {
	cur, t := lw.lowerExpr(e.X)
	tmp := lw.newTmp(t)
	op := "+"
	if e.Op == "--" {
		op = "-"
	}
	lw.emit(&Binary{instrBase{At: e.Start}, tmp, op, cur, IntConst(1)})
	lw.store(e.X, tmp, e.Start)
	return tmp, t
}

// lowerExpr lowers e and returns the operand holding its value along with
// the operand's inferred static type.
func (lw *lowerer) lowerExpr(e ast.Expr) (Operand, types.Type) {
	switch e := e.(type) {
	case *ast.Literal:
		switch e.Kind {
		case ast.LitInt, ast.LitChar:
			return IntConst(e.Int), types.Type{Prim: "int"}
		case ast.LitBool:
			return BoolConst(e.Bool), types.Type{Prim: "boolean"}
		case ast.LitString:
			return StringConst(e.Str), lw.stringType()
		case ast.LitNull:
			return NullConst(), types.Type{}
		}
	case *ast.VarRef:
		if e.Name == "this" {
			if lw.fn.This == nil {
				lw.diags.Errorf(e.Start, "this in static method")
				return NullConst(), types.Type{}
			}
			return lw.fn.This, lw.fn.This.Type
		}
		if l := lw.lookupLocal(e.Name); l != nil {
			return l, l.Type
		}
		if f := lw.class.FieldOf(e.Name); f != nil {
			dst := lw.newTmp(f.Type)
			if f.Mods.Has(ast.ModStatic) {
				lw.emit(&FieldLoad{instrBase{At: e.Start}, dst, nil, f, e.Name})
			} else {
				lw.emit(&FieldLoad{instrBase{At: e.Start}, dst, lw.fn.This, f, e.Name})
			}
			return dst, f.Type
		}
		lw.diags.Warnf(e.Start, "unresolved name %s", e.Name)
		return NullConst(), types.Type{}
	case *ast.FieldAccess:
		if cls := lw.classQualifier(e.X); cls != nil {
			f := cls.FieldOf(e.Name)
			var ft types.Type
			if f != nil {
				ft = f.Type
			}
			dst := lw.newTmp(ft)
			lw.emit(&FieldLoad{instrBase{At: e.Start}, dst, nil, f, e.Name})
			return dst, ft
		}
		obj, objT := lw.lowerExpr(e.X)
		objL := lw.materialize(obj, objT, e.Start)
		var f *types.Field
		if objT.Class != nil {
			f = objT.Class.FieldOf(e.Name)
		}
		var ft types.Type
		if f != nil {
			ft = f.Type
		}
		if objT.Dims > 0 && e.Name == "length" {
			ft = types.Type{Prim: "int"}
		}
		dst := lw.newTmp(ft)
		lw.emit(&FieldLoad{instrBase{At: e.Start}, dst, objL, f, e.Name})
		return dst, ft
	case *ast.IndexExpr:
		arr, arrT := lw.lowerExpr(e.X)
		idx, _ := lw.lowerExpr(e.Index)
		elemT := arrT
		if elemT.Dims > 0 {
			elemT.Dims--
		}
		dst := lw.newTmp(elemT)
		lw.emit(&ArrayLoad{instrBase{At: e.Start}, dst, arr, idx})
		return dst, elemT
	case *ast.CallExpr:
		return lw.lowerCall(e, true)
	case *ast.NewExpr:
		return lw.lowerNew(e)
	case *ast.NewArrayExpr:
		t := lw.resolveType(e.Type)
		t.Dims++
		dst := lw.newTmp(t)
		var ln Operand
		if e.Len != nil {
			ln, _ = lw.lowerExpr(e.Len)
		} else {
			ln = IntConst(int64(len(e.Elems)))
		}
		lw.emit(&NewArray{instrBase{At: e.Start}, dst, ln})
		for i, el := range e.Elems {
			v, _ := lw.lowerExpr(el)
			lw.emit(&ArrayStore{instrBase{At: e.Start}, dst, IntConst(int64(i)), v})
		}
		return dst, t
	case *ast.UnaryExpr:
		v, t := lw.lowerExpr(e.X)
		if e.Op == "!" {
			t = types.Type{Prim: "boolean"}
		}
		dst := lw.newTmp(t)
		lw.emit(&Unary{instrBase{At: e.Start}, dst, e.Op, v})
		return dst, t
	case *ast.BinaryExpr:
		return lw.lowerBinary(e)
	case *ast.CondExpr:
		thenB := lw.newBlock()
		elseB := lw.newBlock()
		after := lw.newBlock()
		lw.lowerCondJump(e.Cond, thenB, elseB)
		lw.cur = thenB
		tv, tt := lw.lowerExpr(e.Then)
		dst := lw.newTmp(tt)
		lw.emit(&Assign{instrBase{At: e.Start}, dst, tv})
		lw.jump(after, e.Start)
		lw.cur = elseB
		ev, _ := lw.lowerExpr(e.Else)
		lw.emit(&Assign{instrBase{At: e.Start}, dst, ev})
		lw.jump(after, e.Start)
		lw.cur = after
		return dst, tt
	case *ast.CastExpr:
		v, _ := lw.lowerExpr(e.X)
		to := lw.resolveType(e.Type)
		dst := lw.newTmp(to)
		lw.emit(&Cast{instrBase{At: e.Start}, dst, to, v})
		return dst, to
	case *ast.InstanceOfExpr:
		v, _ := lw.lowerExpr(e.X)
		dst := lw.newTmp(types.Type{Prim: "boolean"})
		lw.emit(&InstanceOf{instrBase{At: e.Start}, dst, v, lw.resolveType(e.Type)})
		return dst, dst.Type
	case *ast.IncDecExpr:
		return lw.lowerIncDec(e)
	}
	lw.diags.Errorf(e.Pos(), "cannot lower expression %T", e)
	return NullConst(), types.Type{}
}

func (lw *lowerer) lowerBinary(e *ast.BinaryExpr) (Operand, types.Type) {
	switch e.Op {
	case "&&", "||":
		// Value position: lower via control flow into a boolean temp.
		dst := lw.newTmp(types.Type{Prim: "boolean"})
		thenB := lw.newBlock()
		elseB := lw.newBlock()
		after := lw.newBlock()
		lw.lowerCondJump(e, thenB, elseB)
		lw.cur = thenB
		lw.emit(&Assign{instrBase{At: e.Start}, dst, BoolConst(true)})
		lw.jump(after, e.Start)
		lw.cur = elseB
		lw.emit(&Assign{instrBase{At: e.Start}, dst, BoolConst(false)})
		lw.jump(after, e.Start)
		lw.cur = after
		return dst, dst.Type
	}
	x, xt := lw.lowerExpr(e.X)
	y, _ := lw.lowerExpr(e.Y)
	var t types.Type
	switch e.Op {
	case "==", "!=", "<", ">", "<=", ">=":
		t = types.Type{Prim: "boolean"}
	case "+":
		if xt.Class != nil && xt.Class.Simple == "String" {
			t = xt // string concatenation
		} else {
			t = types.Type{Prim: "int"}
		}
	default:
		t = types.Type{Prim: "int"}
	}
	dst := lw.newTmp(t)
	lw.emit(&Binary{instrBase{At: e.Start}, dst, e.Op, x, y})
	return dst, t
}

func (lw *lowerer) lowerNew(e *ast.NewExpr) (Operand, types.Type) {
	t := lw.resolveType(e.Type)
	dst := lw.newTmp(t)
	lw.emit(&New{instrBase{At: e.Start}, dst, t.Class, e.Type.Name})
	var args []Operand
	for _, a := range e.Args {
		v, _ := lw.lowerExpr(a)
		args = append(args, v)
	}
	var ctor *types.Method
	if t.Class != nil {
		for _, m := range t.Class.MethodsNamed("<init>") {
			if len(m.Params) == len(args) {
				ctor = m
				break
			}
		}
	}
	if ctor != nil || len(args) > 0 {
		lw.emit(&Call{
			instrBase:  instrBase{At: e.Start},
			Kind:       CallSpecial,
			Recv:       dst,
			StaticType: t.Class,
			Declared:   ctor,
			Name:       "<init>",
			Args:       args,
		})
	}
	return dst, t
}

// lowerCall lowers a method invocation. wantValue controls whether a
// result temp is allocated.
func (lw *lowerer) lowerCall(e *ast.CallExpr, wantValue bool) (Operand, types.Type) {
	var args []Operand
	lowerArgs := func() {
		for _, a := range e.Args {
			v, _ := lw.lowerExpr(a)
			args = append(args, v)
		}
	}

	emit := func(kind CallKind, recv *Local, st *types.Class, decl *types.Method, name string) (Operand, types.Type) {
		var ret types.Type
		if decl != nil {
			ret = decl.Ret
		}
		var dst *Local
		if wantValue {
			dst = lw.newTmp(ret)
		}
		lw.emit(&Call{
			instrBase:  instrBase{At: e.Start},
			Dst:        dst,
			Kind:       kind,
			Recv:       recv,
			StaticType: st,
			Declared:   decl,
			Name:       name,
			Args:       args,
		})
		if dst == nil {
			return NullConst(), ret
		}
		return dst, ret
	}

	// this(...) / super(...) constructor calls.
	if e.Recv == nil && (e.Name == "this" || e.Name == "super") {
		lowerArgs()
		target := lw.class
		if e.Name == "super" {
			target = lw.class.Super
		}
		var ctor *types.Method
		if target != nil {
			for _, m := range target.MethodsNamed("<init>") {
				if len(m.Params) == len(args) {
					ctor = m
					break
				}
			}
		}
		return emit(CallSpecial, lw.fn.This, target, ctor, "<init>")
	}

	// super.m(...)
	if vr, ok := e.Recv.(*ast.VarRef); ok && vr.Name == "super" {
		lowerArgs()
		var decl *types.Method
		if lw.class.Super != nil {
			decl = lw.class.Super.LookupMethod(e.Name, len(args))
		}
		return emit(CallSpecial, lw.fn.This, lw.class.Super, decl, e.Name)
	}

	// Static call via class qualifier: System.exit(...), Class.forName(...).
	if e.Recv != nil {
		if cls := lw.classQualifier(e.Recv); cls != nil {
			lowerArgs()
			decl := cls.LookupMethod(e.Name, len(e.Args))
			kind := CallStatic
			if decl != nil && !decl.IsStatic() {
				// Qualified instance call through a class name is invalid;
				// treat as unresolved virtual.
				decl = nil
			}
			return emit(kind, nil, cls, decl, e.Name)
		}
	}

	// Unqualified call: implicit this or static method of the current class.
	if e.Recv == nil {
		lowerArgs()
		decl := lw.class.LookupMethod(e.Name, len(e.Args))
		if decl != nil && decl.IsStatic() {
			return emit(CallStatic, nil, lw.class, decl, e.Name)
		}
		if lw.fn.This == nil {
			// Static context: unresolved or instance method misuse.
			return emit(CallStatic, nil, lw.class, decl, e.Name)
		}
		return emit(CallVirtual, lw.fn.This, lw.class, decl, e.Name)
	}

	// Ordinary virtual call through an expression receiver.
	recvOp, recvT := lw.lowerExpr(e.Recv)
	recvL := lw.materialize(recvOp, recvT, e.Start)
	lowerArgs()
	var decl *types.Method
	if recvT.Class != nil {
		decl = recvT.Class.LookupMethod(e.Name, len(e.Args))
	}
	return emit(CallVirtual, recvL, recvT.Class, decl, e.Name)
}
