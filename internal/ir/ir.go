// Package ir defines a Jimple-like three-address intermediate representation
// for MJ methods, and the lowering from AST to IR.
//
// Each method body becomes a Func: a list of basic blocks of simple
// instructions, ending in explicit control transfers. The security policy
// analyses (SPDA/ISPA) and constant propagation all operate on this IR,
// mirroring how the paper's implementation operates on Soot's Jimple.
package ir

import (
	"fmt"
	"strings"

	"policyoracle/internal/lang"
	"policyoracle/internal/types"
)

// Program pairs a types.Program with the lowered IR of every method body.
type Program struct {
	Types *types.Program
	Funcs map[*types.Method]*Func
	// NumSites is the number of call sites in the program. Every Call
	// instruction carries a dense Site id in [0, NumSites), assigned in
	// deterministic lowering order, so per-site analysis caches can be flat
	// arrays instead of maps keyed on instruction pointers.
	NumSites int
}

// FuncOf returns the IR for m, or nil when m has no body (native/abstract).
func (p *Program) FuncOf(m *types.Method) *Func { return p.Funcs[m] }

// Func is the IR of one method body.
type Func struct {
	Method *types.Method
	Locals []*Local // Locals[0] == this for instance methods; then params
	Params []*Local // parameter locals in declaration order (excludes this)
	This   *Local   // nil for static methods
	Blocks []*Block // Blocks[0] is the entry block
}

// NumInstrs returns the total instruction count across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Local is an IR register: a source variable, parameter, or temporary.
type Local struct {
	Name  string
	Index int
	Type  types.Type
	IsTmp bool
}

func (l *Local) String() string { return l.Name }

// Block is a basic block. The last instruction is always a control
// transfer (If, Goto, Return, or Throw); other instructions are straight-
// line.
type Block struct {
	Index  int
	Instrs []Instr
	Preds  []*Block
	Succs  []*Block
}

// Term returns the block's terminating instruction, or nil when the block
// is empty (only during construction).
func (b *Block) Term() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return b.Instrs[len(b.Instrs)-1]
}

// ---------------------------------------------------------------------------
// Operands

// Operand is a value usable by an instruction: a Local or a Const.
type Operand interface {
	operand()
	String() string
}

func (*Local) operand() {}

// ConstKind classifies constant operands.
type ConstKind int

// Constant kinds.
const (
	ConstInt ConstKind = iota
	ConstBool
	ConstString
	ConstNull
)

// Const is a constant operand.
type Const struct {
	Kind ConstKind
	Int  int64
	Bool bool
	Str  string
}

func (Const) operand() {}

func (c Const) String() string {
	switch c.Kind {
	case ConstInt:
		return fmt.Sprintf("%d", c.Int)
	case ConstBool:
		return fmt.Sprintf("%t", c.Bool)
	case ConstString:
		return fmt.Sprintf("%q", c.Str)
	case ConstNull:
		return "null"
	}
	return "?"
}

// IntConst returns an integer constant operand.
func IntConst(v int64) Const { return Const{Kind: ConstInt, Int: v} }

// BoolConst returns a boolean constant operand.
func BoolConst(v bool) Const { return Const{Kind: ConstBool, Bool: v} }

// StringConst returns a string constant operand.
func StringConst(s string) Const { return Const{Kind: ConstString, Str: s} }

// NullConst returns the null constant operand.
func NullConst() Const { return Const{Kind: ConstNull} }

// ---------------------------------------------------------------------------
// Instructions

// Instr is implemented by all IR instructions.
type Instr interface {
	Pos() lang.Pos
	String() string
}

type instrBase struct{ At lang.Pos }

func (i instrBase) Pos() lang.Pos { return i.At }

// Assign copies an operand into a local.
type Assign struct {
	instrBase
	Dst *Local
	Src Operand
}

// Binary computes Dst = X Op Y.
type Binary struct {
	instrBase
	Dst *Local
	Op  string
	X   Operand
	Y   Operand
}

// Unary computes Dst = Op X ("!" or "-").
type Unary struct {
	instrBase
	Dst *Local
	Op  string
	X   Operand
}

// FieldLoad reads Dst = Obj.Field (Obj nil for a static load).
type FieldLoad struct {
	instrBase
	Dst   *Local
	Obj   *Local       // nil for static fields
	Field *types.Field // nil when the field did not resolve
	Name  string       // source name, kept for unresolved fields
}

// FieldStore writes Obj.Field = Val (Obj nil for a static store).
type FieldStore struct {
	instrBase
	Obj   *Local
	Field *types.Field
	Name  string
	Val   Operand
}

// ArrayLoad reads Dst = Arr[Idx].
type ArrayLoad struct {
	instrBase
	Dst *Local
	Arr Operand
	Idx Operand
}

// ArrayStore writes Arr[Idx] = Val.
type ArrayStore struct {
	instrBase
	Arr Operand
	Idx Operand
	Val Operand
}

// New allocates an instance: Dst = new Class. The constructor is invoked
// by a separate Call with Kind CallSpecial.
type New struct {
	instrBase
	Dst   *Local
	Class *types.Class
	Name  string // unresolved class name fallback
}

// NewArray allocates an array.
type NewArray struct {
	instrBase
	Dst *Local
	Len Operand // may be nil
}

// Cast narrows/checks: Dst = (Type) X.
type Cast struct {
	instrBase
	Dst *Local
	To  types.Type
	X   Operand
}

// InstanceOf tests: Dst = X instanceof Type.
type InstanceOf struct {
	instrBase
	Dst *Local
	X   Operand
	Of  types.Type
}

// CallKind distinguishes dispatch flavors.
type CallKind int

// Call kinds.
const (
	CallVirtual CallKind = iota // instance call, dynamic dispatch
	CallStatic                  // static method call
	CallSpecial                 // constructor or super call, no dispatch
)

func (k CallKind) String() string {
	switch k {
	case CallVirtual:
		return "virtual"
	case CallStatic:
		return "static"
	case CallSpecial:
		return "special"
	}
	return "?"
}

// Call invokes a method. Recv is nil for static calls. StaticType is the
// declared type of the receiver (or the target class for static calls);
// Declared is the statically resolved method declaration when lookup
// succeeded. Dynamic dispatch targets are computed by the callgraph
// package.
type Call struct {
	instrBase
	Dst        *Local // nil when the result is unused
	Kind       CallKind
	Recv       *Local
	StaticType *types.Class
	Declared   *types.Method
	Name       string
	Args       []Operand
	Site       int // dense program-wide call-site id (see Program.NumSites)
}

// If branches on a boolean operand. Succs[0] is the true edge and
// Succs[1] the false edge of the containing block.
type If struct {
	instrBase
	Cond Operand
}

// Goto transfers to the single successor.
type Goto struct{ instrBase }

// Return exits the method. Val is nil for void returns.
type Return struct {
	instrBase
	Val Operand
}

// Throw raises an exception; control leaves the method (handlers are
// modeled as block successors during lowering).
type Throw struct {
	instrBase
	Val Operand
}

func opStr(o Operand) string {
	if o == nil {
		return "_"
	}
	return o.String()
}

func (i *Assign) String() string { return fmt.Sprintf("%s = %s", i.Dst, opStr(i.Src)) }
func (i *Binary) String() string {
	return fmt.Sprintf("%s = %s %s %s", i.Dst, opStr(i.X), i.Op, opStr(i.Y))
}
func (i *Unary) String() string { return fmt.Sprintf("%s = %s%s", i.Dst, i.Op, opStr(i.X)) }
func (i *FieldLoad) String() string {
	obj := "static"
	if i.Obj != nil {
		obj = i.Obj.String()
	}
	return fmt.Sprintf("%s = %s.%s", i.Dst, obj, i.fieldName())
}
func (i *FieldLoad) fieldName() string {
	if i.Field != nil {
		return i.Field.Name
	}
	return i.Name
}
func (i *FieldStore) String() string {
	obj := "static"
	if i.Obj != nil {
		obj = i.Obj.String()
	}
	name := i.Name
	if i.Field != nil {
		name = i.Field.Name
	}
	return fmt.Sprintf("%s.%s = %s", obj, name, opStr(i.Val))
}
func (i *ArrayLoad) String() string {
	return fmt.Sprintf("%s = %s[%s]", i.Dst, opStr(i.Arr), opStr(i.Idx))
}
func (i *ArrayStore) String() string {
	return fmt.Sprintf("%s[%s] = %s", opStr(i.Arr), opStr(i.Idx), opStr(i.Val))
}
func (i *New) String() string {
	name := i.Name
	if i.Class != nil {
		name = i.Class.Name
	}
	return fmt.Sprintf("%s = new %s", i.Dst, name)
}
func (i *NewArray) String() string { return fmt.Sprintf("%s = newarray[%s]", i.Dst, opStr(i.Len)) }
func (i *Cast) String() string {
	return fmt.Sprintf("%s = (%s) %s", i.Dst, i.To.SimpleName(), opStr(i.X))
}
func (i *InstanceOf) String() string {
	return fmt.Sprintf("%s = %s instanceof %s", i.Dst, opStr(i.X), i.Of.SimpleName())
}
func (i *Call) String() string {
	var sb strings.Builder
	if i.Dst != nil {
		fmt.Fprintf(&sb, "%s = ", i.Dst)
	}
	fmt.Fprintf(&sb, "%s ", i.Kind)
	if i.Recv != nil {
		fmt.Fprintf(&sb, "%s.", i.Recv)
	} else if i.StaticType != nil {
		fmt.Fprintf(&sb, "%s.", i.StaticType.Simple)
	}
	fmt.Fprintf(&sb, "%s(", i.Name)
	for n, a := range i.Args {
		if n > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(opStr(a))
	}
	sb.WriteString(")")
	return sb.String()
}
func (i *If) String() string     { return fmt.Sprintf("if %s", opStr(i.Cond)) }
func (i *Goto) String() string   { return "goto" }
func (i *Return) String() string { return fmt.Sprintf("return %s", opStr(i.Val)) }
func (i *Throw) String() string  { return fmt.Sprintf("throw %s", opStr(i.Val)) }

// Dump renders the function for debugging and golden tests.
func (f *Func) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s\n", f.Method.Qualified())
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	return sb.String()
}
