package ir_test

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/corpus"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

// checkInvariants asserts the structural invariants every lowered function
// must satisfy; the analyses rely on all of them.
func checkInvariants(t *testing.T, f *ir.Func) {
	t.Helper()
	if len(f.Blocks) == 0 {
		t.Errorf("%s: no blocks", f.Method)
		return
	}
	if len(f.Blocks[0].Preds) != 0 {
		t.Errorf("%s: entry block has predecessors", f.Method)
	}
	for i, b := range f.Blocks {
		if b.Index != i {
			t.Errorf("%s: block index %d at position %d", f.Method, b.Index, i)
		}
		if len(b.Instrs) == 0 {
			t.Errorf("%s: empty block b%d", f.Method, b.Index)
			continue
		}
		term := b.Term()
		switch term.(type) {
		case *ir.If:
			if len(b.Succs) != 2 {
				t.Errorf("%s: b%d If with %d successors", f.Method, b.Index, len(b.Succs))
			}
		case *ir.Goto:
			if len(b.Succs) < 1 {
				t.Errorf("%s: b%d Goto with no successor", f.Method, b.Index)
			}
		case *ir.Return, *ir.Throw:
			if len(b.Succs) != 0 {
				t.Errorf("%s: b%d exits with %d successors", f.Method, b.Index, len(b.Succs))
			}
		default:
			t.Errorf("%s: b%d ends in non-terminator %s", f.Method, b.Index, term)
		}
		// No terminator in the middle of a block.
		for _, in := range b.Instrs[:len(b.Instrs)-1] {
			switch in.(type) {
			case *ir.If, *ir.Goto, *ir.Return, *ir.Throw:
				t.Errorf("%s: b%d has mid-block terminator %s", f.Method, b.Index, in)
			}
		}
		// Edge symmetry: succs' preds contain b and vice versa.
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: edge b%d->b%d missing back-link", f.Method, b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: pred b%d of b%d lacks forward edge", f.Method, p.Index, b.Index)
			}
		}
	}
	// All blocks reachable from entry (lowering prunes the rest).
	seen := make([]bool, len(f.Blocks))
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(f.Blocks[0])
	for i, ok := range seen {
		if !ok {
			t.Errorf("%s: unreachable block b%d survived lowering", f.Method, i)
		}
	}
	// Locals are indexed densely and parameters registered.
	for i, l := range f.Locals {
		if l.Index != i {
			t.Errorf("%s: local %s index %d at position %d", f.Method, l.Name, l.Index, i)
		}
	}
	if !f.Method.IsStatic() && f.This == nil {
		t.Errorf("%s: instance method without this", f.Method)
	}
	if len(f.Params) != len(f.Method.Params) {
		t.Errorf("%s: %d param locals for %d params", f.Method, len(f.Params), len(f.Method.Params))
	}
}

func lowerSources(t *testing.T, name string, sources map[string]string) *ir.Program {
	t.Helper()
	var diags lang.Diagnostics
	var files []*ast.File
	for f, src := range sources {
		files = append(files, parser.ParseFile(f, src, &diags))
	}
	tp := types.Build(name, files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("%s: %v", name, diags.Err())
	}
	return p
}

// TestInvariantsOnHandwrittenCorpus lowers all three bundled corpora and
// checks every function.
func TestInvariantsOnHandwrittenCorpus(t *testing.T) {
	for _, name := range corpus.Libraries() {
		p := lowerSources(t, name, corpus.Sources(name))
		n := 0
		for _, f := range p.Funcs {
			checkInvariants(t, f)
			n++
		}
		if n < 50 {
			t.Errorf("%s: only %d functions lowered", name, n)
		}
	}
}

// TestInvariantsOnGeneratedCorpus drives the invariants over thousands of
// generated functions — a property test with the generator as the input
// distribution.
func TestInvariantsOnGeneratedCorpus(t *testing.T) {
	c := gen.Generate(gen.Small())
	for lib, sources := range c.Sources {
		p := lowerSources(t, lib, sources)
		for _, f := range p.Funcs {
			checkInvariants(t, f)
		}
	}
}

// TestInvariantsAcrossSeeds varies the generator seed to broaden the
// sampled program space.
func TestInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(100); seed < 105; seed++ {
		p := gen.Params{
			Seed: seed, Classes: 10, MethodsPerClass: 6, CheckFraction: 0.5,
			MaxDepth: 4, WrapperFanout: 2, DropCheck: 2, WeakenMust: 1,
			SwapCheck: 1, PrivWrap: 1, ExtraCheck: 1, ConstGuards: 2,
			UniquePerLib: 2, PolymorphicNoise: 4,
		}
		c := gen.Generate(p)
		for lib, sources := range c.Sources {
			prog := lowerSources(t, lib, sources)
			for _, f := range prog.Funcs {
				checkInvariants(t, f)
			}
		}
	}
}
