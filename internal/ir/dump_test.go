package ir

import (
	"strings"
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

// TestDumpRendersAllInstructionForms lowers a method touching every
// instruction kind and checks the textual dump, which the debugging
// workflow depends on.
func TestDumpRendersAllInstructionForms(t *testing.T) {
	p := lower(t, `
package p;
class Helper {
  static int util(String s) { return 0; }
}
class C {
  int field;
  static int sfield;
  int[] arr;
  void m(String s, int n, boolean b) {
    int x = n + 1;
    int neg = -x;
    boolean nb = !b;
    field = x;
    sfield = 2;
    int y = field;
    int z = sfield;
    int[] a2 = new int[3];
    a2[0] = x;
    int e = a2[0];
    C other = new C();
    Object o = (Object) other;
    boolean io = o instanceof C;
    int u = Helper.util(s);
    if (b) {
      throw new Exception();
    }
    while (x > 0) {
      x = x - 1;
    }
    return;
  }
}
class Object { }
class Exception { }
`)
	f := funcOf(t, p, "p.C", "m")
	dump := f.Dump()
	for _, want := range []string{
		"func p.C.m(String,int,boolean)",
		"= n + 1",
		"= -",
		"= !",
		"this.field =",
		"static.sfield =",
		"= this.field",
		"= static.sfield",
		"newarray[3]",
		"[0] =",
		"new p.C",
		"(Object)",
		"instanceof C",
		"static Helper.util(s)",
		"if ",
		"goto",
		"throw",
		"return",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if f.NumInstrs() == 0 {
		t.Error("no instructions counted")
	}
}

func TestOperandStrings(t *testing.T) {
	cases := map[string]Operand{
		"42":    IntConst(42),
		"true":  BoolConst(true),
		`"x"`:   StringConst("x"),
		"null":  NullConst(),
		"false": BoolConst(false),
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("operand = %q, want %q", got, want)
		}
	}
}

func TestCallKindStrings(t *testing.T) {
	if CallVirtual.String() != "virtual" || CallStatic.String() != "static" || CallSpecial.String() != "special" {
		t.Error("call kind strings wrong")
	}
}

// TestLoweringDiagnostics: semantic misuse is reported, not silently
// dropped.
func TestLoweringDiagnostics(t *testing.T) {
	cases := []string{
		`package p; class C { static void m() { int x = this.f; } int f; }`,
		`package p; class C { void m() { break; } }`,
		`package p; class C { void m() { continue; } }`,
		`package p; class C { void m() { unknownName = 3; } }`,
		`package p; class C { void m() { int x = unknownName; } }`,
	}
	for _, src := range cases {
		var diags lang.Diagnostics
		files := []*ast.File{parser.ParseFile("t.mj", src, &diags)}
		tp := types.Build("t", files, &diags)
		LowerProgram(tp, &diags)
		if diags.Len() == 0 {
			t.Errorf("no diagnostic for %q", src)
		}
	}
}
