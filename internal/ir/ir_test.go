package ir

import (
	"strings"
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

func lower(t *testing.T, srcs ...string) *Program {
	t.Helper()
	var diags lang.Diagnostics
	var files []*ast.File
	for _, src := range srcs {
		files = append(files, parser.ParseFile("t.mj", src, &diags))
	}
	tp := types.Build("test", files, &diags)
	p := LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	return p
}

func funcOf(t *testing.T, p *Program, class, method string) *Func {
	t.Helper()
	c := p.Types.Classes[class]
	if c == nil {
		t.Fatalf("class %s not found", class)
	}
	for _, m := range c.Methods {
		if m.Name == method || (method == "<init>" && m.IsCtor) {
			f := p.FuncOf(m)
			if f == nil {
				t.Fatalf("no IR for %s", m)
			}
			return f
		}
	}
	t.Fatalf("method %s.%s not found", class, method)
	return nil
}

func TestStraightLine(t *testing.T) {
	p := lower(t, `
package p;
class C {
  int f;
  void m(int a) {
    int x = a + 1;
    f = x;
  }
}`)
	f := funcOf(t, p, "p.C", "m")
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d\n%s", len(f.Blocks), f.Dump())
	}
	if f.This == nil || len(f.Params) != 1 {
		t.Fatalf("locals wrong: this=%v params=%v", f.This, f.Params)
	}
	last := f.Blocks[0].Term()
	if _, ok := last.(*Return); !ok {
		t.Errorf("implicit return missing, last = %s", last)
	}
	dump := f.Dump()
	if !strings.Contains(dump, "this.f =") {
		t.Errorf("field store missing:\n%s", dump)
	}
}

func TestIfElseCFG(t *testing.T) {
	p := lower(t, `
package p;
class C {
  void m(boolean c) {
    if (c) { a(); } else { b(); }
    join();
  }
  void a() { }
  void b() { }
  void join() { }
}`)
	f := funcOf(t, p, "p.C", "m")
	entry := f.Blocks[0]
	ifInstr, ok := entry.Term().(*If)
	if !ok {
		t.Fatalf("entry term = %s", entry.Term())
	}
	_ = ifInstr
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d", len(entry.Succs))
	}
	// Both branches join.
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	if len(thenB.Succs) != 1 || len(elseB.Succs) != 1 || thenB.Succs[0] != elseB.Succs[0] {
		t.Errorf("branches do not join:\n%s", f.Dump())
	}
	join := thenB.Succs[0]
	if len(join.Preds) != 2 {
		t.Errorf("join preds = %d", len(join.Preds))
	}
}

func TestWhileCFG(t *testing.T) {
	p := lower(t, `
package p;
class C {
  void m(int n) {
    int i = 0;
    while (i < n) { i = i + 1; }
    done();
  }
  void done() { }
}`)
	f := funcOf(t, p, "p.C", "m")
	// Find the loop head: a block with an If terminator and 2 preds.
	var head *Block
	for _, b := range f.Blocks {
		if _, ok := b.Term().(*If); ok {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head:\n%s", f.Dump())
	}
	if len(head.Preds) != 2 {
		t.Errorf("loop head preds = %d:\n%s", len(head.Preds), f.Dump())
	}
}

func TestShortCircuitLowering(t *testing.T) {
	p := lower(t, `
package p;
class C {
  void m(Object h, boolean done) {
    if (h != null && !done) { go(); }
  }
  void go() { }
}
class Object { }`)
	f := funcOf(t, p, "p.C", "m")
	// Expect two If terminators (one per condition operand).
	ifs := 0
	for _, b := range f.Blocks {
		if _, ok := b.Term().(*If); ok {
			ifs++
		}
	}
	if ifs != 2 {
		t.Errorf("got %d If blocks, want 2:\n%s", ifs, f.Dump())
	}
}

func TestCallLowering(t *testing.T) {
	p := lower(t, `
package java.lang;
public class SecurityManager {
  public void checkConnect(String host, int port) { }
}
public class String { }
class App {
  SecurityManager sm;
  void m(String host, int port) {
    sm.checkConnect(host, port);
    helper();
    StaticUtil.doit();
  }
  void helper() { }
}
class StaticUtil {
  static void doit() { }
}`)
	f := funcOf(t, p, "java.lang.App", "m")
	var calls []*Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok {
				calls = append(calls, c)
			}
		}
	}
	if len(calls) != 3 {
		t.Fatalf("got %d calls:\n%s", len(calls), f.Dump())
	}
	if calls[0].Name != "checkConnect" || calls[0].Kind != CallVirtual {
		t.Errorf("call 0 = %s", calls[0])
	}
	if calls[0].Declared == nil || calls[0].Declared.Class.Simple != "SecurityManager" {
		t.Errorf("checkConnect declared = %v", calls[0].Declared)
	}
	if calls[1].Name != "helper" || calls[1].Recv == nil {
		t.Errorf("call 1 = %s", calls[1])
	}
	if calls[2].Kind != CallStatic || calls[2].StaticType.Simple != "StaticUtil" {
		t.Errorf("call 2 = %s", calls[2])
	}
	if calls[2].Declared == nil || !calls[2].Declared.IsStatic() {
		t.Errorf("static target = %v", calls[2].Declared)
	}
}

func TestNewAndCtorCall(t *testing.T) {
	p := lower(t, `
package p;
class Lib {
  Lib(int x) { }
  static Lib make() { return new Lib(3); }
}`)
	f := funcOf(t, p, "p.Lib", "make")
	var newI *New
	var ctor *Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *New:
				newI = in
			case *Call:
				ctor = in
			}
		}
	}
	if newI == nil || newI.Class == nil || newI.Class.Simple != "Lib" {
		t.Fatalf("new = %v", newI)
	}
	if ctor == nil || ctor.Kind != CallSpecial || ctor.Declared == nil || !ctor.Declared.IsCtor {
		t.Fatalf("ctor call = %v", ctor)
	}
}

func TestThisCtorDelegation(t *testing.T) {
	p := lower(t, `
package p;
class URL {
  public URL(String spec) { this(null, spec); }
  public URL(Object context, String spec) { }
}
class Object { }
class String { }`)
	c := p.Types.Classes["p.URL"]
	var oneArg *types.Method
	for _, m := range c.Methods {
		if m.IsCtor && len(m.Params) == 1 {
			oneArg = m
		}
	}
	f := p.FuncOf(oneArg)
	var call *Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if cl, ok := in.(*Call); ok {
				call = cl
			}
		}
	}
	if call == nil || call.Kind != CallSpecial || call.Declared == nil || len(call.Declared.Params) != 2 {
		t.Fatalf("delegated ctor = %v\n%s", call, f.Dump())
	}
	if len(call.Args) != 2 {
		t.Errorf("args = %v", call.Args)
	}
	if c0, ok := call.Args[0].(Const); !ok || c0.Kind != ConstNull {
		t.Errorf("first arg should be null constant, got %v", call.Args[0])
	}
}

func TestTernaryLowering(t *testing.T) {
	p := lower(t, `
package p;
class C {
  int m(boolean c) { return c ? f() : g(); }
  int f() { return 1; }
  int g() { return 2; }
}`)
	f := funcOf(t, p, "p.C", "m")
	// The two arms must be in different blocks reached by an If.
	var haveIf bool
	for _, b := range f.Blocks {
		if _, ok := b.Term().(*If); ok {
			haveIf = true
		}
	}
	if !haveIf {
		t.Errorf("ternary did not lower to control flow:\n%s", f.Dump())
	}
}

func TestTryCatchEdges(t *testing.T) {
	p := lower(t, `
package p;
class C {
  void m() {
    before();
    try { risky(); } catch (Exception e) { handle(); } finally { fin(); }
    after();
  }
  void before() { }
  void risky() { }
  void handle() { }
  void fin() { }
  void after() { }
}
class Exception { }`)
	f := funcOf(t, p, "p.C", "m")
	// The pre-try block must have 2 successors: body and handler.
	var pre *Block
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok && c.Name == "before" {
				pre = b
			}
		}
	}
	if pre == nil || len(pre.Succs) != 2 {
		t.Fatalf("pre-try block wrong:\n%s", f.Dump())
	}
	// finally must be on both paths: find the fin() call block; it must have
	// 2 preds (body tail + handler tail).
	var finB *Block
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok && c.Name == "fin" {
				finB = b
			}
		}
	}
	if finB == nil || len(finB.Preds) != 2 {
		t.Fatalf("finally block preds wrong:\n%s", f.Dump())
	}
}

func TestSwitchLowering(t *testing.T) {
	p := lower(t, `
package p;
class C {
  void m(int k) {
    switch (k) {
    case 1: a(); break;
    case 2: b();
    default: c();
    }
    after();
  }
  void a() { }
  void b() { }
  void c() { }
  void after() { }
}`)
	f := funcOf(t, p, "p.C", "m")
	// case 2 falls through into default: the block calling b() must have the
	// block calling c() as successor.
	var bBlock, cBlock *Block
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if call, ok := in.(*Call); ok {
				switch call.Name {
				case "b":
					bBlock = blk
				case "c":
					cBlock = blk
				}
			}
		}
	}
	if bBlock == nil || cBlock == nil {
		t.Fatalf("case blocks missing:\n%s", f.Dump())
	}
	found := false
	for _, s := range bBlock.Succs {
		if s == cBlock {
			found = true
		}
	}
	if !found {
		t.Errorf("fallthrough edge missing:\n%s", f.Dump())
	}
}

func TestBreakContinue(t *testing.T) {
	p := lower(t, `
package p;
class C {
  void m(int n) {
    for (int i = 0; i < n; i++) {
      if (i == 3) { continue; }
      if (i == 5) { break; }
      use(i);
    }
  }
  void use(int i) { }
}`)
	f := funcOf(t, p, "p.C", "m")
	if len(f.Blocks) < 5 {
		t.Errorf("loop CFG too small:\n%s", f.Dump())
	}
}

func TestUnreachableCodePruned(t *testing.T) {
	p := lower(t, `
package p;
class C {
  int m(boolean c) {
    if (c) { return 1; } else { return 2; }
  }
}`)
	f := funcOf(t, p, "p.C", "m")
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			t.Errorf("empty block b%d survived:\n%s", b.Index, f.Dump())
		}
	}
}

func TestStaticFieldAccess(t *testing.T) {
	p := lower(t, `
package p;
class System {
  static SecurityManager security;
  static SecurityManager getSecurityManager() { return security; }
}
class SecurityManager { }`)
	f := funcOf(t, p, "p.System", "getSecurityManager")
	var load *FieldLoad
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if fl, ok := in.(*FieldLoad); ok {
				load = fl
			}
		}
	}
	if load == nil || load.Obj != nil || load.Field == nil {
		t.Fatalf("static load = %v\n%s", load, f.Dump())
	}
}

func TestChainedCallsReceiverTyping(t *testing.T) {
	p := lower(t, `
package p;
class Proxy {
  Addr address() { return null; }
}
class Addr {
  String getHostName() { return null; }
}
class String { }
class App {
  void m(Proxy proxy) {
    proxy.address().getHostName();
  }
}`)
	f := funcOf(t, p, "p.App", "m")
	var calls []*Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok {
				calls = append(calls, c)
			}
		}
	}
	if len(calls) != 2 {
		t.Fatalf("calls = %d\n%s", len(calls), f.Dump())
	}
	if calls[1].Declared == nil || calls[1].Declared.Class.Simple != "Addr" {
		t.Errorf("chained receiver type lost: %v", calls[1].Declared)
	}
}

func TestNativeMethodHasNoIR(t *testing.T) {
	p := lower(t, `
package p;
class C {
  native void n();
}`)
	c := p.Types.Classes["p.C"]
	if got := p.FuncOf(c.Methods[0]); got != nil {
		t.Errorf("native method has IR: %v", got)
	}
}

func TestCastAndInstanceof(t *testing.T) {
	p := lower(t, `
package p;
class A { }
class B extends A {
  void use() { }
}
class App {
  void m(A a) {
    if (a instanceof B) {
      B b = (B) a;
      b.use();
    }
  }
}`)
	f := funcOf(t, p, "p.App", "m")
	dump := f.Dump()
	if !strings.Contains(dump, "instanceof B") {
		t.Errorf("instanceof missing:\n%s", dump)
	}
	if !strings.Contains(dump, "(B)") {
		t.Errorf("cast missing:\n%s", dump)
	}
	// The cast temp must have type B so b.use() resolves.
	var use *Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok && c.Name == "use" {
				use = c
			}
		}
	}
	if use == nil || use.Declared == nil {
		t.Errorf("use() not resolved through cast:\n%s", dump)
	}
}

func TestSynchronizedBody(t *testing.T) {
	p := lower(t, `
package p;
class C {
  Object lock;
  void m() {
    synchronized (lock) {
      inner();
    }
  }
  void inner() { }
}
class Object { }`)
	f := funcOf(t, p, "p.C", "m")
	var found bool
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*Call); ok && c.Name == "inner" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("synchronized body lost:\n%s", f.Dump())
	}
}
