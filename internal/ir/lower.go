package ir

import (
	"fmt"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/types"
)

// LowerProgram lowers every method body in tp to IR.
func LowerProgram(tp *types.Program, diags *lang.Diagnostics) *Program {
	p := &Program{Types: tp, Funcs: make(map[*types.Method]*Func)}
	for _, m := range tp.AllMethods() {
		if m.Decl == nil || m.Decl.Body == nil {
			continue
		}
		f := lowerMethod(tp, m, diags)
		p.Funcs[m] = f
		// Intern call sites: AllMethods order is deterministic, so site
		// ids are stable for identical sources.
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				if c, ok := instr.(*Call); ok {
					c.Site = p.NumSites
					p.NumSites++
				}
			}
		}
	}
	return p
}

// lowerMethod lowers one method body.
func lowerMethod(tp *types.Program, m *types.Method, diags *lang.Diagnostics) *Func {
	lw := &lowerer{
		prog:  tp,
		class: m.Class,
		fn:    &Func{Method: m},
		diags: diags,
	}
	lw.pushScope()
	if !m.IsStatic() {
		lw.fn.This = lw.newNamedLocal("this", types.Type{Class: m.Class})
	}
	for i, pt := range m.Params {
		l := lw.newNamedLocal(m.ParamNames[i], pt)
		lw.fn.Params = append(lw.fn.Params, l)
	}
	entry := lw.newBlock()
	lw.cur = entry
	lw.lowerBlock(m.Decl.Body)
	// Implicit return at the end of a void method.
	if lw.cur != nil && !isTerm(lw.cur.Term()) {
		lw.emit(&Return{instrBase: instrBase{At: m.Decl.Start}})
	}
	lw.popScope()
	lw.finish()
	return lw.fn
}

func isTerm(in Instr) bool {
	switch in.(type) {
	case *If, *Goto, *Return, *Throw:
		return true
	}
	return false
}

type loopCtx struct {
	breakTo    *Block
	continueTo *Block
}

type lowerer struct {
	prog   *types.Program
	class  *types.Class
	fn     *Func
	cur    *Block // nil when the current position is unreachable
	scopes []map[string]*Local
	loops  []loopCtx
	diags  *lang.Diagnostics
	ntmp   int
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*Local{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookupLocal(name string) *Local {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if l, ok := lw.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (lw *lowerer) newNamedLocal(name string, t types.Type) *Local {
	l := &Local{Name: name, Index: len(lw.fn.Locals), Type: t}
	lw.fn.Locals = append(lw.fn.Locals, l)
	lw.scopes[len(lw.scopes)-1][name] = l
	return l
}

func (lw *lowerer) newTmp(t types.Type) *Local {
	lw.ntmp++
	l := &Local{Name: fmt.Sprintf("t%d", lw.ntmp), Index: len(lw.fn.Locals), Type: t, IsTmp: true}
	lw.fn.Locals = append(lw.fn.Locals, l)
	return l
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{Index: len(lw.fn.Blocks)}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

// emit appends an instruction to the current block. If the current
// position is unreachable, a dangling block is created so lowering can
// continue; unreachable blocks are pruned by finish.
func (lw *lowerer) emit(in Instr) {
	if lw.cur == nil {
		lw.cur = lw.newBlock()
	}
	lw.cur.Instrs = append(lw.cur.Instrs, in)
}

// jump terminates the current block with a goto to target.
func (lw *lowerer) jump(target *Block, at lang.Pos) {
	if lw.cur == nil {
		return
	}
	lw.emit(&Goto{instrBase{At: at}})
	lw.cur.Succs = append(lw.cur.Succs, target)
	lw.cur = nil
}

// branch terminates the current block with a conditional branch.
func (lw *lowerer) branch(cond Operand, then, els *Block, at lang.Pos) {
	if lw.cur == nil {
		return
	}
	lw.emit(&If{instrBase: instrBase{At: at}, Cond: cond})
	lw.cur.Succs = append(lw.cur.Succs, then, els)
	lw.cur = nil
}

// finish prunes unreachable blocks, renumbers, and computes predecessors.
func (lw *lowerer) finish() {
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	if len(lw.fn.Blocks) > 0 {
		walk(lw.fn.Blocks[0])
	}
	var kept []*Block
	for _, b := range lw.fn.Blocks {
		if reach[b] {
			b.Index = len(kept)
			kept = append(kept, b)
		}
	}
	lw.fn.Blocks = kept
	for _, b := range kept {
		b.Preds = nil
	}
	for _, b := range kept {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) lowerBlock(b *ast.Block) {
	lw.pushScope()
	for _, s := range b.Stmts {
		lw.lowerStmt(s)
	}
	lw.popScope()
}

func (lw *lowerer) lowerStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		lw.lowerBlock(s)
	case *ast.LocalVarDecl:
		t := lw.resolveType(s.Type)
		l := lw.newNamedLocal(s.Name, t)
		if s.Init != nil {
			v, _ := lw.lowerExpr(s.Init)
			lw.emit(&Assign{instrBase{At: s.Start}, l, v})
		}
	case *ast.ExprStmt:
		lw.lowerExprForEffect(s.X)
	case *ast.AssignStmt:
		lw.lowerAssign(s)
	case *ast.IfStmt:
		lw.lowerIf(s)
	case *ast.WhileStmt:
		lw.lowerWhile(s)
	case *ast.DoWhileStmt:
		lw.lowerDoWhile(s)
	case *ast.ForStmt:
		lw.lowerFor(s)
	case *ast.ReturnStmt:
		var v Operand
		if s.Value != nil {
			v, _ = lw.lowerExpr(s.Value)
		}
		lw.emit(&Return{instrBase{At: s.Start}, v})
		lw.cur = nil
	case *ast.ThrowStmt:
		v, _ := lw.lowerExpr(s.Value)
		lw.emit(&Throw{instrBase{At: s.Start}, v})
		lw.cur = nil
	case *ast.BreakStmt:
		if len(lw.loops) == 0 {
			lw.diags.Errorf(s.Start, "break outside loop or switch")
			return
		}
		lw.jump(lw.loops[len(lw.loops)-1].breakTo, s.Start)
	case *ast.ContinueStmt:
		target := lw.innermostContinue()
		if target == nil {
			lw.diags.Errorf(s.Start, "continue outside loop")
			return
		}
		lw.jump(target, s.Start)
	case *ast.SyncStmt:
		// Monitor operations have no policy effect; lower the lock
		// expression for effect and the body inline.
		lw.lowerExprForEffect(s.Lock)
		lw.lowerBlock(s.Body)
	case *ast.TryStmt:
		lw.lowerTry(s)
	case *ast.SwitchStmt:
		lw.lowerSwitch(s)
	default:
		lw.diags.Errorf(s.Pos(), "cannot lower statement %T", s)
	}
}

func (lw *lowerer) innermostContinue() *Block {
	for i := len(lw.loops) - 1; i >= 0; i-- {
		if lw.loops[i].continueTo != nil {
			return lw.loops[i].continueTo
		}
	}
	return nil
}

func (lw *lowerer) lowerIf(s *ast.IfStmt) {
	thenB := lw.newBlock()
	var elseB *Block
	after := lw.newBlock()
	if s.Else != nil {
		elseB = lw.newBlock()
	} else {
		elseB = after
	}
	lw.lowerCondJump(s.Cond, thenB, elseB)
	lw.cur = thenB
	lw.lowerStmt(s.Then)
	lw.jump(after, s.Start)
	if s.Else != nil {
		lw.cur = elseB
		lw.lowerStmt(s.Else)
		lw.jump(after, s.Start)
	}
	lw.cur = after
}

func (lw *lowerer) lowerWhile(s *ast.WhileStmt) {
	head := lw.newBlock()
	body := lw.newBlock()
	after := lw.newBlock()
	lw.jump(head, s.Start)
	lw.cur = head
	lw.lowerCondJump(s.Cond, body, after)
	lw.loops = append(lw.loops, loopCtx{breakTo: after, continueTo: head})
	lw.cur = body
	lw.lowerStmt(s.Body)
	lw.jump(head, s.Start)
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = after
}

func (lw *lowerer) lowerDoWhile(s *ast.DoWhileStmt) {
	body := lw.newBlock()
	head := lw.newBlock()
	after := lw.newBlock()
	lw.jump(body, s.Start)
	lw.loops = append(lw.loops, loopCtx{breakTo: after, continueTo: head})
	lw.cur = body
	lw.lowerStmt(s.Body)
	lw.jump(head, s.Start)
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = head
	lw.lowerCondJump(s.Cond, body, after)
	lw.cur = after
}

func (lw *lowerer) lowerFor(s *ast.ForStmt) {
	lw.pushScope()
	if s.Init != nil {
		lw.lowerStmt(s.Init)
	}
	head := lw.newBlock()
	body := lw.newBlock()
	post := lw.newBlock()
	after := lw.newBlock()
	lw.jump(head, s.Start)
	lw.cur = head
	if s.Cond != nil {
		lw.lowerCondJump(s.Cond, body, after)
	} else {
		lw.jump(body, s.Start)
	}
	lw.loops = append(lw.loops, loopCtx{breakTo: after, continueTo: post})
	lw.cur = body
	lw.lowerStmt(s.Body)
	lw.jump(post, s.Start)
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = post
	if s.Post != nil {
		lw.lowerStmt(s.Post)
	}
	lw.jump(head, s.Start)
	lw.cur = after
	lw.popScope()
}

// lowerTry models exceptional flow conservatively: each catch handler is
// reachable from the state at try entry (an exception may be thrown before
// any statement of the body executes), so MUST facts established inside
// the body do not leak into handlers. finally code executes after the body
// and after each handler.
func (lw *lowerer) lowerTry(s *ast.TryStmt) {
	bodyB := lw.newBlock()
	after := lw.newBlock()
	var catchBlocks []*Block
	for range s.Catches {
		catchBlocks = append(catchBlocks, lw.newBlock())
	}
	// Pre-try block branches to body and to each handler.
	if lw.cur == nil {
		lw.cur = lw.newBlock()
	}
	lw.emit(&Goto{instrBase{At: s.Start}})
	lw.cur.Succs = append(lw.cur.Succs, bodyB)
	lw.cur.Succs = append(lw.cur.Succs, catchBlocks...)
	lw.cur = bodyB
	lw.lowerBlock(s.Body)
	joinAt := after
	var finB *Block
	if s.Finally != nil {
		finB = lw.newBlock()
		joinAt = finB
	}
	lw.jump(joinAt, s.Start)
	for i, cc := range s.Catches {
		lw.cur = catchBlocks[i]
		lw.pushScope()
		lw.newNamedLocal(cc.Name, lw.resolveType(cc.Type))
		lw.lowerBlock(cc.Body)
		lw.popScope()
		lw.jump(joinAt, cc.Start)
	}
	if finB != nil {
		lw.cur = finB
		lw.lowerBlock(s.Finally)
		lw.jump(after, s.Start)
	}
	lw.cur = after
}

func (lw *lowerer) lowerSwitch(s *ast.SwitchStmt) {
	tag, _ := lw.lowerExpr(s.Tag)
	tagLocal := lw.materialize(tag, types.Type{Prim: "int"}, s.Start)
	after := lw.newBlock()

	// One statement block per case, linked for fallthrough.
	stmtBlocks := make([]*Block, len(s.Cases))
	for i := range s.Cases {
		stmtBlocks[i] = lw.newBlock()
	}
	defaultIdx := -1
	for i, c := range s.Cases {
		if c.IsDefault {
			defaultIdx = i
		}
	}

	// Comparison chain.
	for i, c := range s.Cases {
		if c.IsDefault {
			continue
		}
		v, _ := lw.lowerExpr(c.Value)
		cmp := lw.newTmp(types.Type{Prim: "boolean"})
		lw.emit(&Binary{instrBase{At: c.Start}, cmp, "==", tagLocal, v})
		next := lw.newBlock()
		lw.branch(cmp, stmtBlocks[i], next, c.Start)
		lw.cur = next
	}
	if defaultIdx >= 0 {
		lw.jump(stmtBlocks[defaultIdx], s.Start)
	} else {
		lw.jump(after, s.Start)
	}

	lw.loops = append(lw.loops, loopCtx{breakTo: after})
	for i, c := range s.Cases {
		lw.cur = stmtBlocks[i]
		for _, st := range c.Stmts {
			lw.lowerStmt(st)
		}
		if i+1 < len(s.Cases) {
			lw.jump(stmtBlocks[i+1], c.Start) // fallthrough
		} else {
			lw.jump(after, c.Start)
		}
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.cur = after
}

func (lw *lowerer) lowerAssign(s *ast.AssignStmt) {
	var rhs Operand
	if s.Op == "=" {
		rhs, _ = lw.lowerExpr(s.Value)
	} else {
		// Compound assignment: load target, apply op, store back.
		cur, t := lw.lowerExpr(s.Target)
		v, _ := lw.lowerExpr(s.Value)
		tmp := lw.newTmp(t)
		lw.emit(&Binary{instrBase{At: s.Start}, tmp, s.Op[:1], cur, v})
		rhs = tmp
	}
	lw.store(s.Target, rhs, s.Start)
}

// store writes rhs into the lvalue denoted by target.
func (lw *lowerer) store(target ast.Expr, rhs Operand, at lang.Pos) {
	switch t := target.(type) {
	case *ast.VarRef:
		if l := lw.lookupLocal(t.Name); l != nil {
			lw.emit(&Assign{instrBase{At: at}, l, rhs})
			return
		}
		// Implicit this.field or static field of the current class.
		if f := lw.class.FieldOf(t.Name); f != nil {
			if f.Mods.Has(ast.ModStatic) {
				lw.emit(&FieldStore{instrBase{At: at}, nil, f, t.Name, rhs})
			} else {
				lw.emit(&FieldStore{instrBase{At: at}, lw.fn.This, f, t.Name, rhs})
			}
			return
		}
		lw.diags.Warnf(at, "assignment to unresolved name %s", t.Name)
	case *ast.FieldAccess:
		if cls := lw.classQualifier(t.X); cls != nil {
			f := cls.FieldOf(t.Name)
			lw.emit(&FieldStore{instrBase{At: at}, nil, f, t.Name, rhs})
			return
		}
		obj, objT := lw.lowerExpr(t.X)
		objL := lw.materialize(obj, objT, at)
		var f *types.Field
		if objT.Class != nil {
			f = objT.Class.FieldOf(t.Name)
		}
		lw.emit(&FieldStore{instrBase{At: at}, objL, f, t.Name, rhs})
	case *ast.IndexExpr:
		arr, _ := lw.lowerExpr(t.X)
		idx, _ := lw.lowerExpr(t.Index)
		lw.emit(&ArrayStore{instrBase{At: at}, arr, idx, rhs})
	default:
		lw.diags.Errorf(at, "invalid assignment target %T", target)
	}
}

// lowerCondJump lowers a boolean condition with short-circuit control flow.
func (lw *lowerer) lowerCondJump(e ast.Expr, thenB, elseB *Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case "&&":
			mid := lw.newBlock()
			lw.lowerCondJump(e.X, mid, elseB)
			lw.cur = mid
			lw.lowerCondJump(e.Y, thenB, elseB)
			return
		case "||":
			mid := lw.newBlock()
			lw.lowerCondJump(e.X, thenB, mid)
			lw.cur = mid
			lw.lowerCondJump(e.Y, thenB, elseB)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == "!" {
			lw.lowerCondJump(e.X, elseB, thenB)
			return
		}
	}
	v, _ := lw.lowerExpr(e)
	lw.branch(v, thenB, elseB, e.Pos())
}
