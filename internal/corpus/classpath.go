package corpus

// classpathNet: Socket.connect omits all checks (Figure 7(b)); the rest of
// java.net follows the correct JDK policies, with Classpath's own internal
// structure.
const classpathNet = `
package java.net;

import java.lang.*;

public class InetAddress {
  private String hostName;
  public boolean isMulticastAddress() { return isMulticast0(); }
  public String getHostAddress() { return addr0(); }
  public String getHostName() { return hostName; }
  native boolean isMulticast0();
  native String addr0();
}

public class SocketAddress {
  public SocketAddress() { }
}

public class InetSocketAddress extends SocketAddress {
  private InetAddress addr;
  private String hostname;
  private int port;
  public boolean isUnresolved() { return addr == null; }
  public String getHostName() { return hostname; }
  public int getPort() { return port; }
  public InetAddress getAddress() { return addr; }
}

public class DatagramSocketImpl {
  public void connect(InetAddress address, int port) {
    connect0(address, port);
  }
  native void connect0(InetAddress address, int port);
}

// DatagramSocket.connect: Classpath implements the correct Figure 1 policy.
public class DatagramSocket {
  private SecurityManager securityManager;
  private DatagramSocketImpl impl;
  private InetAddress remoteAddress;
  private int remotePort;

  public void connect(InetAddress address, int port) {
    doConnect(address, port);
  }

  public void reconnect(InetAddress address, int port) {
    doConnect(address, port);
  }

  private void doConnect(InetAddress address, int port) {
    if (address.isMulticastAddress()) {
      securityManager.checkMulticast(address);
    } else {
      securityManager.checkConnect(address.getHostAddress(), port);
      securityManager.checkAccept(address.getHostAddress(), port);
    }
    impl.connect(address, port);
    remoteAddress = address;
    remotePort = port;
  }
}

public class SocketImpl {
  public void connect(SocketAddress address, int timeout) {
    socketConnect(address, timeout);
  }
  native void socketConnect(SocketAddress address, int timeout);
}

// Socket.connect is Figure 7(b): Classpath omits the checkConnect that the
// JDK performs before opening a network connection. The method is directly
// accessible to applications, so this is easy to exploit.
public class Socket {
  private SocketImpl impl;

  public void connect(SocketAddress endpoint) {
    connect(endpoint, 0);
  }

  public void connect(SocketAddress endpoint, int timeout) {
    getImpl().connect(endpoint, timeout);
  }

  SocketImpl getImpl() { return impl; }
}

public class Proxy {
  public static int DIRECT = 0;
  private int proxyType;
  private SocketAddress sa;
  public int type() { return proxyType; }
  public SocketAddress address() { return sa; }
}

public class URLConnection {
  public URLConnection() { }
  public Object getContent() { return content0(); }
  native Object content0();
}

public class URLStreamHandler {
  public URLConnection openConnection(URL u, Proxy p) {
    return new URLConnection();
  }
}

// URL: Classpath's one-argument constructor parses the spec directly and
// never touches handler logic — structurally different from the JDK's
// constant-null delegation, which is what makes the JDK/Harmony pattern a
// false positive unless interprocedural constant propagation proves the
// delegated checkPermission dead.
public class URL {
  private URLStreamHandler handler;
  private SecurityManager securityManager;
  private Permission specifyStreamHandlerPermission;
  private String protocol;

  public URL(String spec) {
    protocol = spec;
  }

  public URL(URL context, String spec, URLStreamHandler h) {
    if (h != null) {
      securityManager.checkPermission(specifyStreamHandlerPermission);
      handler = h;
    }
    protocol = spec;
  }

  public URLConnection openConnection(Proxy proxy) {
    if (proxy.type() != Proxy.DIRECT) {
      InetSocketAddress epoint = (InetSocketAddress) proxy.address();
      if (epoint.isUnresolved()) {
        securityManager.checkConnect(epoint.getHostName(), epoint.getPort());
      } else {
        securityManager.checkConnect(
            epoint.getAddress().getHostAddress(), epoint.getPort());
      }
    }
    return handler.openConnection(this, proxy);
  }
}

public class NetworkInterface {
  public boolean getInetAddresses() {
    return isReachable0();
  }
  native boolean isReachable0();
}
`

// classpathRuntime is Figure 5(b): loadLibrary performs both checkLink and
// checkRead before the native load.
const classpathRuntime = `
package java.lang;

import java.security.*;

public class VMRuntime {
  static native int nativeLoad(String filename, Object loader);
}

public class VMStackWalker {
  static Object getCallingClassLoader() { return null; }
}

public class Runtime {
  private SecurityManager securityManager;

  public void loadLibrary(String libname) {
    loadLibraryInternal(libname, VMStackWalker.getCallingClassLoader());
  }

  void loadLibraryInternal(String libname, Object loader) {
    securityManager.checkLink(libname);
    loadLib(libname, loader);
  }

  private int loadLib(String filename, Object loader) {
    securityManager.checkRead(filename);
    return VMRuntime.nativeLoad(filename, loader);
  }
}

public class PropsAccess {
  private SecurityManager securityManager;
  public String getProperty(String key) {
    securityManager.checkPropertyAccess(key);
    return read0(key);
  }
  static native String read0(String key);
}

// StringOps.getBytes: Classpath throws like Harmony — no checkExit.
public class StringOps {
  public byte[] getBytes(String s) {
    return encodeDefault(s);
  }
  private byte[] encodeDefault(String s) {
    return encode0(s);
  }
  static native byte[] encode0(String s);
}
`

const classpathMisc = `
package java.security;

import java.lang.*;

public class Security {
  private static SecurityManager securityManager;
  private static Permission securityPropertyPermission;
  public static String getProperty(String key) {
    securityManager.checkPermission(securityPropertyPermission);
    return getProp0(key);
  }
  static native String getProp0(String key);
}
`

// classpathNio: Classpath loads charset providers dynamically and guards
// the load with checkPermission(new RuntimePermission("charsetProvider")),
// which the JDK and Harmony do not need — the paper's charsetProvider
// interoperability difference (Section 6.3).
const classpathNio = `
package java.nio.charset;

import java.lang.*;

public class Charset {
  private static SecurityManager securityManager;
  public static Charset forName(String name) {
    securityManager.checkPermission(new RuntimePermission("charsetProvider"));
    return loadProvider0(name);
  }
  static native Charset loadProvider0(String name);
  public byte[] encode(String s) {
    return encodeLoop0(s);
  }
  native byte[] encodeLoop0(String s);
}
`

const classpathIO = `
package java.io;

import java.lang.*;

public class FileStream {
  private SecurityManager securityManager;
  public void open(String name) {
    securityManager.checkRead(name);
    open0(name);
  }
  native void open0(String name);
}
`

const classpathUtil = `
package java.util;

import java.lang.*;

// Bag: Classpath implements the correct Figure 3 policy (like the JDK).
public class Bag {
  private Object data1;
  private Object data2;
  private SecurityManager securityManager;

  public Object a(boolean condition, Collector obj) {
    if (condition) {
      securityManager.checkRead("bag");
      obj.add(data1);
      return obj;
    }
    securityManager.checkRead("bag");
    obj.add(data2);
    return obj;
  }
}

public class Collector {
  private int n;
  public Collector() { }
  public void add(Object x) { n = n + 1; }
}

public class Props {
  private SecurityManager securityManager;
  public void list() {
    securityManager.checkPropertyAccess("*");
    list0();
  }
  native void list0();
}
`

// ClasspathSources returns the hand-written classpath implementation.
func ClasspathSources() map[string]string {
	m := RuntimeSources()
	for f, src := range consistentClasses(Classpath) {
		m[f] = src
	}
	m["java/net/net.mj"] = classpathNet
	m["java/lang/rt.mj"] = classpathRuntime
	m["java/security/security.mj"] = classpathMisc
	m["java/nio/charset.mj"] = classpathNio
	m["java/io/io.mj"] = classpathIO
	m["java/util/util.mj"] = classpathUtil
	return m
}
