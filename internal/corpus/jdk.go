package corpus

// jdkNet reproduces the JDK-side code of Figures 1, 4, 6, and 7.
const jdkNet = `
package java.net;

import java.lang.*;

public class InetAddress {
  private String hostName;
  public boolean isMulticastAddress() { return isMulticast0(); }
  public String getHostAddress() { return addr0(); }
  public String getHostName() { return hostName; }
  native boolean isMulticast0();
  native String addr0();
}

public class SocketAddress {
  public SocketAddress() { }
}

public class InetSocketAddress extends SocketAddress {
  private InetAddress addr;
  private String hostname;
  private int port;
  public boolean isUnresolved() { return addr == null; }
  public String getHostName() { return hostname; }
  public int getPort() { return port; }
  public InetAddress getAddress() { return addr; }
}

public class DatagramSocketImpl {
  public void connect(InetAddress address, int port) {
    connect0(address, port);
  }
  native void connect0(InetAddress address, int port);
}

// DatagramSocket.connect is Figure 1(a): the correct, unique policy —
// checkMulticast on the multicast branch, checkConnect AND checkAccept on
// the other.
public class DatagramSocket {
  private SecurityManager securityManager;
  private DatagramSocketImpl impl;
  private InetAddress connectedAddress;
  private int connectedPort;
  private int connectState;
  private boolean oldImpl;

  public void connect(InetAddress address, int port) {
    connectInternal(address, port);
  }

  public void reconnect(InetAddress address, int port) {
    connectInternal(address, port);
  }

  private synchronized void connectInternal(InetAddress address, int port) {
    if (address.isMulticastAddress()) {
      securityManager.checkMulticast(address);
    } else {
      securityManager.checkConnect(address.getHostAddress(), port);
      securityManager.checkAccept(address.getHostAddress(), port);
    }
    if (oldImpl) {
      connectState = 2;
    } else {
      getImpl().connect(address, port);
    }
    connectedAddress = address;
    connectedPort = port;
  }

  DatagramSocketImpl getImpl() { return impl; }
}

public class SocketImpl {
  public void connect(SocketAddress address, int timeout) {
    socketConnect(address, timeout);
  }
  native void socketConnect(SocketAddress address, int timeout);
}

// Socket.connect is Figure 7(a): JDK always calls checkConnect before
// opening the network connection.
public class Socket {
  private SecurityManager securityManager;
  private SocketImpl impl;

  public void connect(SocketAddress endpoint) {
    connect(endpoint, 0);
  }

  public void connect(SocketAddress endpoint, int timeout) {
    InetSocketAddress epoint = (InetSocketAddress) endpoint;
    securityManager.checkConnect(epoint.getHostName(), epoint.getPort());
    impl.connect(endpoint, timeout);
  }
}

public class Proxy {
  public static int DIRECT = 0;
  private int proxyType;
  private SocketAddress sa;
  public int type() { return proxyType; }
  public SocketAddress address() { return sa; }
}

public class URLConnection {
  public URLConnection() { }
  public Object getContent() { return content0(); }
  native Object content0();
}

public class URLStreamHandler {
  public URLConnection openConnection(URL u, Proxy p) {
    return new URLConnection();
  }
}

// URL.openConnection is Figure 6(b): JDK performs checkConnect before
// returning internal API state; the checks differ by proxy resolution.
public class URL {
  private URLStreamHandler handler;
  private SecurityManager securityManager;
  private Permission specifyStreamHandlerPermission;
  private String protocol;

  // Figure 4's pattern: the single-argument constructor delegates with a
  // constant null handler, so the guarded checkPermission below does not
  // apply to it — precision that requires interprocedural constant
  // propagation.
  public URL(String spec) {
    this((URL) null, spec, (URLStreamHandler) null);
  }

  public URL(URL context, String spec, URLStreamHandler h) {
    if (h != null) {
      securityManager.checkPermission(specifyStreamHandlerPermission);
      handler = h;
    }
    protocol = spec;
  }

  public URLConnection openConnection(Proxy proxy) {
    if (proxy.type() != Proxy.DIRECT) {
      InetSocketAddress epoint = (InetSocketAddress) proxy.address();
      if (epoint.isUnresolved()) {
        securityManager.checkConnect(epoint.getHostName(), epoint.getPort());
      } else {
        securityManager.checkConnect(
            epoint.getAddress().getHostAddress(), epoint.getPort());
      }
    }
    return handler.openConnection(this, proxy);
  }
}

// NetworkInterface.getInetAddresses: JDK simply returns the result of the
// native reachability test (the harmony side wraps it in a questionable
// checkConnect — one of the paper's three false positives).
public class NetworkInterface {
  public boolean getInetAddresses() {
    return isReachable0();
  }
  native boolean isReachable0();
}
`

// jdkRuntime reproduces the JDK side of Figure 5 (Runtime.loadLibrary
// missing checkRead) and the privileged-block vulnerability class
// (checks inside doPrivileged are semantic no-ops).
const jdkRuntime = `
package java.lang;

import java.security.*;

public class NativeLibrary {
  private String name;
  public NativeLibrary(Object fromClass, String name) { this.name = name; }
  public void load(String name) {
    nativeLoad0(name);
  }
  native void nativeLoad0(String name);
}

public class ClassLoader {
  static void loadLibrary(Object fromClass, String name, boolean isAbsolute) {
    loadLibrary0(fromClass, name);
  }
  private static boolean loadLibrary0(Object fromClass, String file) {
    NativeLibrary lib = new NativeLibrary(fromClass, file);
    lib.load(file);
    return true;
  }
}

// Figure 5(a): JDK returns from loadLibrary having called only checkLink;
// the checkRead performed by Classpath is missing.
public class Runtime {
  private SecurityManager securityManager;

  public void loadLibrary(String libname) {
    loadLibrary0(getCallerClass(), libname);
  }

  synchronized void loadLibrary0(Object fromClass, String libname) {
    securityManager.checkLink(libname);
    ClassLoader.loadLibrary(fromClass, libname, false);
  }

  static Object getCallerClass() { return null; }
}

// PropsAccess models the privileged-block vulnerability class: JDK wraps
// the permission check inside doPrivileged, where it always succeeds and
// protects nothing.
class PropAction implements PrivilegedAction {
  private String key;
  private SecurityManager securityManager;
  public PropAction(String key) { this.key = key; }
  public Object run() {
    securityManager.checkPropertyAccess(key);
    return PropsAccess.read0(key);
  }
}

public class PropsAccess {
  public String getProperty(String key) {
    Object v = AccessController.doPrivileged(new PropAction(key));
    return (String) v;
  }
  static native String read0(String key);
}

// StringOps.getBytes is Figure 8(a): on a missing default charset JDK
// terminates via System.exit, which requires checkExit permission —
// an interoperability difference with Harmony's exception.
public class StringOps {
  public byte[] getBytes(String s) {
    return StringCoding.encode(s);
  }
}

public class StringCoding {
  static byte[] encode(String s) {
    try {
      return encodeNamed("ISO-8859-1", s);
    } catch (UnsupportedEncodingException x) {
      System.exit(1);
      return null;
    }
  }
  static byte[] encodeNamed(String charset, String s) throws UnsupportedEncodingException {
    return encode0(s);
  }
  static native byte[] encode0(String s);
}
`

// jdkMisc covers the remaining comparison subjects: the security-property
// false positive, the charsetProvider interoperability difference, the
// MUST/MAY interoperability bug, and the Figure 3 broad-events holder.
const jdkMisc = `
package java.security;

import java.lang.*;

public class Security {
  private static SecurityManager securityManager;
  private static Permission securityPropertyPermission;
  public static String getProperty(String key) {
    securityManager.checkPermission(securityPropertyPermission);
    return getProp0(key);
  }
  static native String getProp0(String key);
}
`

const jdkNio = `
package java.nio.charset;

import java.lang.*;

public class Charset {
  public static Charset forName(String name) {
    return lookup0(name);
  }
  static native Charset lookup0(String name);
  public byte[] encode(String s) {
    return encodeLoop0(s);
  }
  native byte[] encodeLoop0(String s);
}
`

const jdkIO = `
package java.io;

import java.lang.*;

// FileStream.open: JDK checks unconditionally — Harmony's conditional
// check makes this the MUST/MAY interoperability difference.
public class FileStream {
  private SecurityManager securityManager;
  public void open(String name) {
    securityManager.checkRead(name);
    open0(name);
  }
  native void open0(String name);
}
`

const jdkUtil = `
package java.util;

import java.lang.*;

// Bag is the first implementation of the paper's Figure 3: checkRead
// guards the read of private data1; with narrow events both
// implementations have identical API-return policies, and only broad
// events expose the difference.
public class Bag {
  private Object data1;
  private Object data2;
  private SecurityManager securityManager;

  public Object a(boolean condition, Collector obj) {
    if (condition) {
      securityManager.checkRead("bag");
      obj.add(data1);
      return obj;
    }
    securityManager.checkRead("bag");
    obj.add(data2);
    return obj;
  }
}

public class Collector {
  private int n;
  public Collector() { }
  public void add(Object x) { n = n + 1; }
}

// Props.list: JDK uses checkPropertyAccess where Harmony uses
// checkPropertiesAccess — a questionable-coding-practice mismatch that is
// one of the paper's three false positives.
public class Props {
  private SecurityManager securityManager;
  public void list() {
    securityManager.checkPropertyAccess("*");
    list0();
  }
  native void list0();
}
`

// JDKSources returns the hand-written jdk implementation.
func JDKSources() map[string]string {
	m := RuntimeSources()
	for f, src := range consistentClasses(JDK) {
		m[f] = src
	}
	m["java/net/net.mj"] = jdkNet
	m["java/lang/rt.mj"] = jdkRuntime
	m["java/security/security.mj"] = jdkMisc
	m["java/nio/charset.mj"] = jdkNio
	m["java/io/io.mj"] = jdkIO
	m["java/util/util.mj"] = jdkUtil
	return m
}
