package gen

import (
	"fmt"

	"policyoracle/internal/diff"
)

// VerifyReport checks one implementation pair's diff report against the
// corpus ground truth and returns every discrepancy found (empty means
// the report is exactly the seeded population):
//
//   - a report group matching no issue seeded for the pair is a spurious
//     difference;
//   - an issue whose deviant is in the pair but which no group matches
//     was missed (with mutated sources: the mutation masked a real bug);
//   - a group touching a seeded false-negative entry means the oracle
//     reported something it must, by design, stay silent about.
//
// This is the generator's verification hook for harnesses that perturb
// the sources and re-diff — the metamorphic fuzzer asserts that seeded
// deviations survive semantics-preserving mutation.
func (c *Corpus) VerifyReport(pair [2]string, rep *diff.Report) []string {
	var problems []string
	found := map[string]bool{}
	for _, g := range rep.Groups {
		matched := false
		for i := range c.Issues {
			is := &c.Issues[i]
			if is.Responsible != pair[0] && is.Responsible != pair[1] {
				continue
			}
			for _, e := range g.Entries {
				if is.MatchesEntry(e) {
					found[is.ID] = true
					matched = true
				}
			}
		}
		for _, e := range g.Entries {
			for i := range c.FalseNegatives {
				if c.FalseNegatives[i].MatchesEntry(e) {
					problems = append(problems, fmt.Sprintf(
						"%v: seeded false negative %s reported at %s",
						pair, c.FalseNegatives[i].ID, e))
				}
			}
		}
		if !matched {
			n := len(g.Entries)
			if n > 3 {
				n = 3
			}
			problems = append(problems, fmt.Sprintf(
				"%v: unseeded difference %s %s at %v",
				pair, g.Case, g.DiffChecks, g.Entries[:n]))
		}
	}
	for i := range c.Issues {
		is := &c.Issues[i]
		if is.Responsible != pair[0] && is.Responsible != pair[1] {
			continue
		}
		if !found[is.ID] {
			problems = append(problems, fmt.Sprintf(
				"%v: seeded issue %s (%s in %s, check %s) not detected",
				pair, is.ID, is.Kind, is.Responsible, is.Check))
		}
	}
	return problems
}

// Pairs returns the implementation pairs of the generated corpus, every
// combination of the three library names.
func (c *Corpus) Pairs() [][2]string {
	var out [][2]string
	for i := 0; i < len(libNames); i++ {
		for j := i + 1; j < len(libNames); j++ {
			out = append(out, [2]string{libNames[i], libNames[j]})
		}
	}
	return out
}
