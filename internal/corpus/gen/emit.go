package gen

import (
	"fmt"
	"strings"
)

// emitLibrary renders the skeleton as MJ source for one implementation.
// The three dialects differ in helper structure and check placement, which
// must not change the extracted policies; only seeded deviations do.
func emitLibrary(spec []*classSpec, lib string, prof *domainProfile) map[string]string {
	files := prof.prelude()
	byPkg := map[string]*strings.Builder{}
	pkgOf := func(pkg string) *strings.Builder {
		sb := byPkg[pkg]
		if sb == nil {
			sb = &strings.Builder{}
			fmt.Fprintf(sb, "package %s;\n\nimport java.lang.*;\nimport java.security.*;\n\n", pkg)
			byPkg[pkg] = sb
			emitUtil(sb, lib)
		}
		return sb
	}
	for _, cs := range spec {
		if cs.uniqueIn != "" && cs.uniqueIn != lib {
			continue
		}
		if cs.poly {
			emitPolyClass(pkgOf(cs.pkg), cs)
			continue
		}
		emitClass(pkgOf(cs.pkg), cs, lib, prof)
	}
	for pkg, sb := range byPkg {
		path := strings.ReplaceAll(pkg, ".", "/") + "/gen.mj"
		files[path] = sb.String()
	}
	return files
}

// emitUtil renders the shared per-package utility whose diamond-shaped
// call chain gives memoization its Table 2 leverage: without summaries the
// chain is re-analyzed 2^depth times per entry point.
func emitUtil(sb *strings.Builder, lib string) {
	const chainDepth = 4
	fmt.Fprintf(sb, "public class Util {\n")
	for i := 0; i < chainDepth; i++ {
		fmt.Fprintf(sb, "  static int chain%d(String a, int b) {\n", i)
		fmt.Fprintf(sb, "    int x = chain%d(a, b);\n", i+1)
		fmt.Fprintf(sb, "    int y = chain%d(a, b);\n", i+1)
		fmt.Fprintf(sb, "    return x + y;\n  }\n")
	}
	fmt.Fprintf(sb, "  static int chain%d(String a, int b) {\n    return util0(a);\n  }\n", chainDepth)
	fmt.Fprintf(sb, "  static native int util0(String a);\n")
	fmt.Fprintf(sb, "}\n\n")
}

// dialect returns implementation-flavor knobs for a library.
type dialect struct {
	helperSuffix string
	// checkPos places checks in the helper chain: 0 = entry method,
	// -1 = deepest helper, 1 = first helper.
	checkPos int
}

func dialectOf(lib string) dialect {
	switch lib {
	case "jdk":
		return dialect{helperSuffix: "Impl", checkPos: 1}
	case "harmony":
		return dialect{helperSuffix: "Internal", checkPos: 2}
	default:
		return dialect{helperSuffix: "Do", checkPos: -1}
	}
}

// emitPolyClass renders one polymorphic-noise class: a private base-typed
// field initialized to one of two allocated subclasses, so every
// `dispatch.op(...)` site has two possible targets and is skipped by the
// analysis — the population behind the resolution-rate statistic.
func emitPolyClass(sb *strings.Builder, cs *classSpec) {
	base := cs.name + "Base"
	fmt.Fprintf(sb, "class %s {\n  int op(String a, int b) { return 0; }\n}\n", base)
	fmt.Fprintf(sb, "class %sSubA extends %s {\n  int op(String a, int b) { return 1; }\n}\n", cs.name, base)
	fmt.Fprintf(sb, "class %sSubB extends %s {\n  int op(String a, int b) { return 2; }\n}\n", cs.name, base)
	fmt.Fprintf(sb, "public class %s {\n", cs.name)
	fmt.Fprintf(sb, "  private %s dispatch;\n", base)
	fmt.Fprintf(sb, "  public %s(int kind) {\n", cs.name)
	fmt.Fprintf(sb, "    if (kind > 0) {\n      dispatch = new %sSubA();\n", cs.name)
	fmt.Fprintf(sb, "    } else {\n      dispatch = new %sSubB();\n    }\n  }\n", cs.name)
	for _, ms := range cs.methods {
		fmt.Fprintf(sb, "  public int %s(String a, int b) {\n    return dispatch.op(a, b);\n  }\n", ms.name)
	}
	fmt.Fprintf(sb, "}\n\n")
}

func emitClass(sb *strings.Builder, cs *classSpec, lib string, prof *domainProfile) {
	fmt.Fprintf(sb, "public class %s {\n", cs.name)
	fmt.Fprintf(sb, "  private %s %s;\n", prof.guardClass, prof.guardField)
	fmt.Fprintf(sb, "  private int state;\n")
	fmt.Fprintf(sb, "  private int cacheSize;\n")
	fmt.Fprintf(sb, "  private int hits;\n")
	fmt.Fprintf(sb, "  private String label;\n")
	var actions []string
	for _, ms := range cs.methods {
		emitMethod(sb, cs, ms, lib, &actions, prof)
	}
	fmt.Fprintf(sb, "}\n\n")
	for _, a := range actions {
		sb.WriteString(a)
	}
}

// checkCall renders one security-check invocation with arity-appropriate
// arguments drawn from the method's (String a, int b) parameters.
func (dp *domainProfile) checkCall(poolIdx int) string {
	c := dp.pool[poolIdx]
	switch {
	case c.Arity == 0:
		return fmt.Sprintf("%s.%s();", dp.guardField, c.Name)
	case c.Arity == 2:
		return fmt.Sprintf("%s.%s(a, b);", dp.guardField, c.Name)
	case c.IntArg:
		return fmt.Sprintf("%s.%s(b);", dp.guardField, c.Name)
	default:
		return fmt.Sprintf("%s.%s(a);", dp.guardField, c.Name)
	}
}

// altCheck returns a different pool index with the swap deterministic.
func (dp *domainProfile) altCheck(idx int) int { return (idx + 1) % len(dp.pool) }

func (dp *domainProfile) extraCheck(idx int) int { return (idx + 3) % len(dp.pool) }

// emitMethod renders one entry method, its helper chain, its native leaf,
// its wrappers, and any deviation for lib.
func emitMethod(sb *strings.Builder, cs *classSpec, ms *methodSpec, lib string, actions *[]string, prof *domainProfile) {
	d := dialectOf(lib)
	dev, deviates := ms.deviation[lib]

	if ms.pattern == pGuard {
		emitGuard(sb, cs, ms, lib, dev, deviates, prof)
		return
	}
	if ms.fn != FNNone {
		emitFalseNegative(sb, ms, lib, prof)
		return
	}

	depth := ms.depth
	pos := d.checkPos
	if pos < 0 || pos > depth {
		pos = depth
	}
	// Entry point.
	fmt.Fprintf(sb, "  public int %s(String a, int b) {\n", ms.name)
	if pos == 0 {
		emitChecks(sb, ms, dev, deviates, prof)
	}
	if depth == 0 {
		emitLeaf(sb, cs, ms, dev == PrivWrap && deviates, actions, prof)
	} else {
		fmt.Fprintf(sb, "    return %s%s1(a, b);\n  }\n", ms.name, d.helperSuffix)
	}
	// Helper chain.
	for h := 1; h <= depth; h++ {
		fmt.Fprintf(sb, "  private int %s%s%d(String a, int b) {\n", ms.name, d.helperSuffix, h)
		if pos == h {
			emitChecks(sb, ms, dev, deviates, prof)
		}
		if h == depth {
			emitLeaf(sb, cs, ms, dev == PrivWrap && deviates, actions, prof)
		} else {
			fmt.Fprintf(sb, "    return %s%s%d(a, b);\n  }\n", ms.name, d.helperSuffix, h+1)
		}
	}
	// Native leaf declaration.
	fmt.Fprintf(sb, "  native int %sN(String a);\n", ms.name)
	// Public wrappers (multi-manifestation root causes).
	for w := 1; w <= ms.wrappers; w++ {
		fmt.Fprintf(sb, "  public int %sWrap%d(String a, int b) {\n    return %s(a, b);\n  }\n",
			ms.name, w, ms.name)
	}
}

// emitChecks renders the pattern's check statements, applying the
// deviation when this library is the deviant.
func emitChecks(sb *strings.Builder, ms *methodSpec, dev IssueKind, deviates bool, prof *domainProfile) {
	if deviates && dev == PrivWrap {
		// Checks move inside the privileged action emitted by emitLeaf.
		return
	}
	checks := ms.checks
	switch ms.pattern {
	case pMustOne, pMustTwo, pPrivInner:
		for i, c := range checks {
			if deviates {
				switch {
				case dev == DropCheck && i == len(checks)-1:
					continue
				case dev == SwapCheck && i == 0:
					c = prof.altCheck(c)
				case dev == WeakenMust && i == 0:
					fmt.Fprintf(sb, "    if (b != 7) {\n      %s\n    }\n", prof.checkCall(c))
					continue
				}
			}
			fmt.Fprintf(sb, "    %s\n", prof.checkCall(c))
		}
		if deviates && dev == ExtraCheck {
			fmt.Fprintf(sb, "    %s\n", prof.checkCall(prof.extraCheck(checks[0])))
		}
	case pMay:
		c0, c1 := checks[0], checks[1]
		if deviates && dev == SwapCheck {
			c0 = prof.altCheck(c0)
		}
		fmt.Fprintf(sb, "    if (b > 0) {\n      %s\n", prof.checkCall(c0))
		fmt.Fprintf(sb, "    } else {\n")
		if !(deviates && dev == DropCheck) {
			fmt.Fprintf(sb, "      %s\n", prof.checkCall(c1))
		}
		if deviates && dev == ExtraCheck {
			fmt.Fprintf(sb, "      %s\n", prof.checkCall(prof.extraCheck(c1)))
		}
		fmt.Fprintf(sb, "    }\n")
		if deviates && dev == WeakenMust {
			// Not applicable to pMay (already MAY); keep policies equal.
			_ = dev
		}
	case pLoop:
		c0 := checks[0]
		if deviates && dev == SwapCheck {
			c0 = prof.altCheck(c0)
		}
		if deviates && dev == DropCheck {
			fmt.Fprintf(sb, "    for (int i = 0; i < b; i++) {\n      state = state + 1;\n    }\n")
		} else {
			fmt.Fprintf(sb, "    for (int i = 0; i < b; i++) {\n      %s\n    }\n", prof.checkCall(c0))
		}
		if deviates && dev == ExtraCheck {
			fmt.Fprintf(sb, "    %s\n", prof.checkCall(prof.extraCheck(c0)))
		}
	}
}

// emitLeaf renders the security-sensitive tail: either a direct native
// call or (for pPrivInner, and for PrivWrap deviations) a doPrivileged
// action wrapping the native call.
func emitLeaf(sb *strings.Builder, cs *classSpec, ms *methodSpec, privWrapped bool, actions *[]string, prof *domainProfile) {
	needAction := ms.pattern == pPrivInner || privWrapped
	if !needAction {
		fmt.Fprintf(sb, "    state = state + 1;\n")
		fmt.Fprintf(sb, "    cacheSize = cacheSize + b;\n")
		fmt.Fprintf(sb, "    hits = hits + state;\n")
		fmt.Fprintf(sb, "    label = a;\n")
		fmt.Fprintf(sb, "    int r = Util.chain0(a, b);\n")
		fmt.Fprintf(sb, "    return r + %sN(a);\n  }\n", ms.name)
		return
	}
	actionName := fmt.Sprintf("%s%sAction", cs.name, strings.Title(ms.name))
	fmt.Fprintf(sb, "    Object r = AccessController.doPrivileged(new %s(a, b));\n", actionName)
	fmt.Fprintf(sb, "    return state;\n  }\n")

	var ab strings.Builder
	fmt.Fprintf(&ab, "class %s implements PrivilegedAction {\n", actionName)
	fmt.Fprintf(&ab, "  private String a;\n  private int b;\n")
	fmt.Fprintf(&ab, "  private %s %s;\n", prof.guardClass, prof.guardField)
	fmt.Fprintf(&ab, "  %s(String a, int b) {\n    this.a = a;\n    this.b = b;\n  }\n", actionName)
	fmt.Fprintf(&ab, "  public Object run() {\n")
	if privWrapped {
		// The deviant library performs its checks here, where they are
		// semantic no-ops.
		for _, c := range ms.checks {
			fmt.Fprintf(&ab, "    %s\n", prof.checkCall(c))
		}
	}
	fmt.Fprintf(&ab, "    int v = %s.%sP0(a);\n    return null;\n  }\n", cs.name, ms.name)
	fmt.Fprintf(&ab, "}\n\n")
	*actions = append(*actions, ab.String())

	// Static native leaf for the action to call.
	fmt.Fprintf(sb, "  static native int %sP0(String a);\n", ms.name)
}

// emitFalseNegative renders the Section 6.4 false-negative populations.
// FNCondDivergence guards the same check with a different, data-dependent
// condition per library: the flat MAY sets agree, so the oracle is silent
// even though the implementations genuinely disagree about when to check.
// FNAllWrongKind omits the check in every library: all policies agree on
// the (wrong) empty policy.
func emitFalseNegative(sb *strings.Builder, ms *methodSpec, lib string, prof *domainProfile) {
	fmt.Fprintf(sb, "  public int %s(String a, int b) {\n", ms.name)
	if ms.fn == FNCondDivergence {
		cond := map[string]string{
			"jdk":       "b > 0",
			"harmony":   "b < 0",
			"classpath": "b == 0",
		}[lib]
		fmt.Fprintf(sb, "    if (%s) {\n      %s\n    }\n", cond, prof.checkCall(ms.checks[0]))
	}
	fmt.Fprintf(sb, "    return %sN(a);\n  }\n", ms.name)
	fmt.Fprintf(sb, "  native int %sN(String a);\n", ms.name)
}

// emitGuard renders the Figure 4 constant-guard twin: a guarded entry plus
// a delegating entry that passes a constant null. Identical across
// libraries; only interprocedural constant propagation keeps the delegate's
// policy empty.
func emitGuard(sb *strings.Builder, cs *classSpec, ms *methodSpec, lib string, dev IssueKind, deviates bool, prof *domainProfile) {
	c0 := ms.checks[0]
	if deviates && dev == SwapCheck {
		c0 = prof.altCheck(c0)
	}
	fmt.Fprintf(sb, "  public int %s(String a, int b, Object handler) {\n", ms.name)
	if !(deviates && dev == DropCheck) {
		fmt.Fprintf(sb, "    if (handler != null) {\n      %s\n    }\n", prof.checkCall(c0))
	}
	if deviates && dev == ExtraCheck {
		fmt.Fprintf(sb, "    %s\n", prof.checkCall(prof.extraCheck(c0)))
	}
	fmt.Fprintf(sb, "    return %sN(a);\n  }\n", ms.name)
	fmt.Fprintf(sb, "  public int %sDefault(String a) {\n", ms.name)
	if lib == ms.guardInlineLib {
		// This dialect's twin skips the handler logic outright (like
		// Classpath's URL(String)); the others delegate with a constant
		// null and need ICP to prove the guarded check dead.
		fmt.Fprintf(sb, "    return %sN(a);\n  }\n", ms.name)
	} else {
		fmt.Fprintf(sb, "    return %s(a, 0, (Object) null);\n  }\n", ms.name)
	}
	fmt.Fprintf(sb, "  native int %sN(String a);\n", ms.name)
	for w := 1; w <= ms.wrappers; w++ {
		fmt.Fprintf(sb, "  public int %sWrap%d(String a, int b, Object handler) {\n    return %s(a, b, handler);\n  }\n",
			ms.name, w, ms.name)
	}
}
