// Package gen deterministically synthesizes paper-scale library
// implementations for the security policy oracle's evaluation harness.
//
// From one seed it derives a shared API skeleton (packages, classes,
// entry-point signatures, check patterns) and materializes it as three
// independent implementations whose internal structure differs (helper
// nesting, naming, check placement) but whose security policies agree —
// except at seeded, ground-truth-labeled inconsistencies of the kinds the
// paper reports: dropped checks, MUST weakened to MAY, swapped checks,
// checks wrapped in privileged blocks, and extra-functionality checks.
// Constant-guard patterns à la Figure 4 are also generated so that
// disabling interprocedural constant propagation produces exactly the
// "false positives eliminated by ICP" population of Table 3.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"policyoracle/internal/corpus"
	"policyoracle/internal/secmodel"
)

// Params sizes the generated corpus.
type Params struct {
	Seed int64
	// Domain selects the check domain the corpus is generated for: the
	// guard class emitted into the runtime prelude, the check pool
	// deviations draw from, and whether privileged-block patterns exist.
	// Empty means the default SecurityManager domain; CryptoDomainID
	// selects the crypto-API misuse domain, whose checks (IV freshness,
	// cipher mode, key size, RNG seeding, ...) guard the native
	// cipher-call leaves the way SecurityManager checks guard JNI calls.
	// Domains without privileged-block semantics force PrivWrap to 0 and
	// fold the pPrivInner pattern onto a plain MUST check.
	Domain string
	// Classes is the number of generated API classes per implementation.
	Classes int
	// MethodsPerClass is the number of public entry methods per class.
	MethodsPerClass int
	// CheckFraction is the fraction of entry methods guarded by checks
	// (the paper's libraries have ~4-5% checking entry points).
	CheckFraction float64
	// MaxDepth is the maximum helper-call nesting under an entry point.
	MaxDepth int
	// WrapperFanout adds up to this many extra public wrappers per checked
	// method, producing multi-manifestation root causes.
	WrapperFanout int

	// Seeded inconsistencies, counted per implementation pair population.
	DropCheck   int // vulnerabilities: one library misses a check
	WeakenMust  int // MUST in others, MAY in one
	SwapCheck   int // different check method used
	PrivWrap    int // check moved inside doPrivileged (semantic no-op)
	ExtraCheck  int // extra-functionality check in one library
	ConstGuards int // Figure 4 patterns (benign; FPs only without ICP)
	// UniquePerLib adds entry points present in only one implementation.
	UniquePerLib int
	// PolymorphicNoise adds entry methods whose virtual call sites have
	// two allocated receiver classes and therefore do not resolve to a
	// unique target — reproducing the paper's ~97% resolution rate (the
	// analysis skips such sites). Identical across implementations.
	PolymorphicNoise int

	// The two seeded FALSE-NEGATIVE populations of Section 6.4 — real
	// semantic differences the oracle cannot detect by design:
	//
	// FNConditionDivergence seeds methods whose MAY check executes under
	// DIFFERENT conditions in each implementation; the flat MAY sets are
	// equal, so comparison case 3a does not fire ("our comparison of may
	// policies does not consider the conditions under which the checks
	// are executed").
	FNConditionDivergence int
	// FNAllWrong seeds methods missing the same check in ALL
	// implementations ("two libraries may both implement the security
	// policy incorrectly and in the same way").
	FNAllWrong int
}

// Small returns parameters for fast unit tests.
func Small() Params {
	return Params{
		Seed: 42, Classes: 24, MethodsPerClass: 6, CheckFraction: 0.25,
		MaxDepth: 3, WrapperFanout: 2,
		DropCheck: 4, WeakenMust: 2, SwapCheck: 2, PrivWrap: 2,
		ExtraCheck: 2, ConstGuards: 3, UniquePerLib: 4, PolymorphicNoise: 6,
		FNConditionDivergence: 2, FNAllWrong: 2,
	}
}

// CryptoSmall returns Small-sized parameters for the crypto-API misuse
// domain: the same skeleton shape, with deviations drawn from the
// CryptoGuard check pool. The seeded kinds read as the classic misuse
// population — a dropped checkIvFresh is a constant/reused IV, a dropped
// checkCipherMode an unvetted ECB mode, a weakened checkKeySize a short
// key, a dropped checkSeeded an unseeded RNG. PrivWrap is zero because
// the crypto domain has no privileged-block semantics.
func CryptoSmall() Params {
	p := Small()
	p.Domain = secmodel.CryptoDomainID
	p.PrivWrap = 0
	return p
}

// PaperScale returns parameters sized to the paper's Table 1 shape:
// thousands of entry points, a few hundred of them checking.
func PaperScale() Params {
	return Params{
		Seed: 2011, Classes: 320, MethodsPerClass: 14, CheckFraction: 0.028,
		MaxDepth: 4, WrapperFanout: 3,
		DropCheck: 12, WeakenMust: 3, SwapCheck: 4, PrivWrap: 4,
		ExtraCheck: 8, ConstGuards: 10, UniquePerLib: 120, PolymorphicNoise: 140,
		FNConditionDivergence: 6, FNAllWrong: 6,
	}
}

// Libraries generated.
var libNames = []string{"jdk", "harmony", "classpath"}

// IssueKind labels a seeded inconsistency.
type IssueKind int

// Seeded inconsistency kinds.
const (
	DropCheck IssueKind = iota
	WeakenMust
	SwapCheck
	PrivWrap
	ExtraCheck
)

func (k IssueKind) String() string {
	switch k {
	case DropCheck:
		return "drop-check"
	case WeakenMust:
		return "weaken-must"
	case SwapCheck:
		return "swap-check"
	case PrivWrap:
		return "priv-wrap"
	case ExtraCheck:
		return "extra-check"
	}
	return "?"
}

// IsVulnerability reports whether the seeded kind is a security
// vulnerability (vs an interoperability difference).
func (k IssueKind) IsVulnerability() bool {
	switch k {
	case DropCheck, PrivWrap, WeakenMust:
		return true
	}
	return false
}

// SeededIssue is the ground truth for one generated inconsistency.
type SeededIssue struct {
	ID          string
	Kind        IssueKind
	Responsible string // the deviating library
	// EntryClass/EntryMethod identify the primary manifesting entry point;
	// wrappers of the same method manifest the same root cause.
	EntryClass  string
	EntryMethod string
	Check       string // check method name involved
	// Manifestations is the number of entry points exposing the issue
	// (the method itself plus its wrappers).
	Manifestations int
}

// MatchesEntry reports whether the qualified entry signature manifests
// this issue: the method itself, its public wrappers, or — for guard
// patterns — its null-delegating Default twin.
func (si *SeededIssue) MatchesEntry(sig string) bool {
	return strings.Contains(sig, si.EntryClass+".") &&
		(strings.Contains(sig, "."+si.EntryMethod+"(") ||
			strings.Contains(sig, "."+si.EntryMethod+"Wrap") ||
			strings.Contains(sig, "."+si.EntryMethod+"Default("))
}

// Corpus is one generated three-implementation workload.
type Corpus struct {
	Params Params
	// Domain is the resolved check-domain ID the corpus was generated
	// for (never empty; the default resolves to DefaultDomainID).
	// Extract the sources under this domain or every seeded check reads
	// as plain code.
	Domain  string
	Sources map[string]map[string]string // lib → file → source
	Issues  []SeededIssue
	// ConstGuardEntries lists entry signatures that are spuriously
	// reported when ICP is disabled (the Table 3 ICP row's ground truth).
	ConstGuardEntries []string
	// FalseNegatives lists the seeded differences the oracle must miss
	// (Section 6.4's two false-negative causes).
	FalseNegatives []SeededFN
}

// poolCheck is one check method of a generation profile's pool.
type poolCheck struct {
	Name  string
	Arity int
	// IntArg renders an arity-1 check's argument as the int parameter b
	// rather than the String a.
	IntArg bool
}

// checkPool is the set of check methods the default-domain generator
// draws from: (name, arity) pairs matching the secmodel table.
var checkPool = []poolCheck{
	{Name: "checkRead", Arity: 1}, {Name: "checkWrite", Arity: 1},
	{Name: "checkConnect", Arity: 2}, {Name: "checkAccept", Arity: 2},
	{Name: "checkLink", Arity: 1}, {Name: "checkExit", Arity: 1, IntArg: true},
	{Name: "checkListen", Arity: 1, IntArg: true}, {Name: "checkDelete", Arity: 1},
	{Name: "checkExec", Arity: 1}, {Name: "checkPropertyAccess", Arity: 1},
	{Name: "checkPermission", Arity: 1}, {Name: "checkMulticast", Arity: 1},
	{Name: "checkSetFactory", Arity: 0}, {Name: "checkCreateClassLoader", Arity: 0},
	{Name: "checkPackageAccess", Arity: 1}, {Name: "checkSecurityAccess", Arity: 1},
}

// cryptoPool is the crypto-domain check pool, matching the secmodel
// crypto table. Length/size checks take the int parameter.
var cryptoPool = []poolCheck{
	{Name: "checkCertChain", Arity: 1},
	{Name: "checkCipherMode", Arity: 1},
	{Name: "checkDigestStrength", Arity: 1},
	{Name: "checkEntropySource", Arity: 0},
	{Name: "checkHostnameVerified", Arity: 2},
	{Name: "checkIvFresh", Arity: 1},
	{Name: "checkIvLength", Arity: 1, IntArg: true},
	{Name: "checkKeyAlgorithm", Arity: 2},
	{Name: "checkKeySize", Arity: 1, IntArg: true},
	{Name: "checkPadding", Arity: 1},
	{Name: "checkSeeded", Arity: 0},
	{Name: "checkTagLength", Arity: 1, IntArg: true},
}

// domainProfile carries the per-domain generation knobs: the guard class
// and field the emitted sources check through, the pool deviations draw
// from, whether the domain has privileged-block semantics (the pPrivInner
// pattern and PrivWrap deviation need them), and the runtime prelude.
type domainProfile struct {
	id         string
	guardClass string
	guardField string
	pool       []poolCheck
	privileged bool
	prelude    func() map[string]string
}

var securityManagerProfile = domainProfile{
	id:         secmodel.DefaultDomainID,
	guardClass: "SecurityManager",
	guardField: "securityManager",
	pool:       checkPool,
	privileged: true,
	prelude:    corpus.RuntimeSources,
}

var cryptoProfile = domainProfile{
	id:         secmodel.CryptoDomainID,
	guardClass: secmodel.CryptoGuardClass,
	guardField: "cryptoGuard",
	pool:       cryptoPool,
	privileged: false,
	prelude:    corpus.CryptoRuntimeSources,
}

// profileOf resolves the generation profile for a Params.Domain value.
// Unknown IDs panic: gen is an internal corpus package, so a domain with
// no generation profile is a programming error, not an input error.
func profileOf(id string) *domainProfile {
	switch id {
	case "", secmodel.DefaultDomainID:
		return &securityManagerProfile
	case secmodel.CryptoDomainID:
		return &cryptoProfile
	}
	panic(fmt.Sprintf("gen: no generation profile for domain %q", id))
}

// patternKind selects an entry-method body template.
type patternKind int

const (
	pPlain     patternKind = iota // no checks, plain native work
	pMustOne                      // one unconditional check
	pMustTwo                      // two unconditional checks
	pMay                          // branch: checkA or checkB (Figure 1 shape)
	pLoop                         // check inside a loop (MAY)
	pGuard                        // parameter-guarded check + null-delegating twin (Figure 4)
	pPrivInner                    // correct: check outside, work inside doPrivileged
)

// methodSpec is one API entry method of the shared skeleton.
type methodSpec struct {
	name     string
	pattern  patternKind
	checks   []int // indexes into checkPool
	depth    int   // helper nesting before the native event
	wrappers int
	// deviations: lib → kind (at most one per method)
	deviation map[string]IssueKind
	devID     string
	// guardInlineLib names the library whose pGuard Default twin inlines
	// the unchecked path instead of delegating with a constant null. The
	// structural divergence is semantically benign, but without ICP the
	// delegating libraries' twins spuriously pick up the guarded check —
	// producing Table 3's "false positives eliminated by ICP".
	guardInlineLib string
	// fn marks a seeded false negative (Section 6.4).
	fn FNKind
}

// FNKind labels a seeded false-negative population.
type FNKind int

// False-negative kinds (Section 6.4).
const (
	FNNone FNKind = iota
	// FNCondDivergence: the same MAY check under different conditions per
	// implementation — flat MAY sets equal, so undetected.
	FNCondDivergence
	// FNAllWrongKind: the same check missing in every implementation.
	FNAllWrongKind
)

func (k FNKind) String() string {
	switch k {
	case FNCondDivergence:
		return "condition-divergence"
	case FNAllWrongKind:
		return "all-wrong"
	}
	return "none"
}

// SeededFN is the ground truth for one seeded false negative: a real
// semantic difference (or shared bug) the oracle must NOT report.
type SeededFN struct {
	ID          string
	Kind        FNKind
	EntryClass  string
	EntryMethod string
	Check       string
}

// MatchesEntry reports whether sig manifests this false negative.
func (fn *SeededFN) MatchesEntry(sig string) bool {
	return strings.Contains(sig, fn.EntryClass+".") &&
		strings.Contains(sig, "."+fn.EntryMethod+"(")
}

type classSpec struct {
	pkg     string
	name    string
	methods []*methodSpec
	// uniqueIn restricts the class to a single library ("" = all).
	uniqueIn string
	// poly marks a polymorphic-noise class (unresolvable virtual sites).
	poly bool
}

// Generate builds the corpus for p. It panics when p.Domain names a
// domain without a generation profile.
func Generate(p Params) *Corpus {
	prof := profileOf(p.Domain)
	if !prof.privileged {
		// No privileged-block semantics: the PrivWrap deviation does not
		// exist in this domain.
		p.PrivWrap = 0
	}
	rng := rand.New(rand.NewSource(p.Seed))
	spec := buildSpec(p, rng, prof)
	c := &Corpus{Params: p, Domain: prof.id, Sources: make(map[string]map[string]string)}
	collectGroundTruth(c, spec, prof)
	for _, lib := range libNames {
		c.Sources[lib] = emitLibrary(spec, lib, prof)
	}
	return c
}

// buildSpec derives the shared skeleton and plants the inconsistencies.
func buildSpec(p Params, rng *rand.Rand, prof *domainProfile) []*classSpec {
	var classes []*classSpec
	var checked []*methodSpec // methods eligible for deviations

	npkg := p.Classes/12 + 1
	for ci := 0; ci < p.Classes; ci++ {
		cs := &classSpec{
			pkg:  fmt.Sprintf("gen.p%02d", ci%npkg),
			name: fmt.Sprintf("Api%03d", ci),
		}
		for mi := 0; mi < p.MethodsPerClass; mi++ {
			ms := &methodSpec{
				name:      fmt.Sprintf("op%d", mi),
				deviation: map[string]IssueKind{},
				depth:     1 + rng.Intn(maxInt(1, p.MaxDepth)),
			}
			if rng.Float64() < p.CheckFraction {
				ms.pattern = patternKind(1 + rng.Intn(6)) // pMustOne..pPrivInner
				if !prof.privileged && ms.pattern == pPrivInner {
					// No privileged blocks in this domain; fold onto a
					// plain MUST check. The rng draw above still happens,
					// so the default-domain stream is unaffected.
					ms.pattern = pMustOne
				}
				switch ms.pattern {
				case pMustTwo, pMay:
					ms.checks = pickChecks(rng, 2, len(prof.pool))
				default:
					ms.checks = pickChecks(rng, 1, len(prof.pool))
				}
				ms.wrappers = rng.Intn(p.WrapperFanout + 1)
				checked = append(checked, ms)
			}
			cs.methods = append(cs.methods, ms)
		}
		classes = append(classes, cs)
	}

	// Polymorphic-noise classes: entries whose virtual call sites have two
	// allocated receiver types and stay unresolved (identical in all
	// implementations, so they add no differences — only resolution misses).
	const polyMethodsPerClass = 8
	for c := 0; c*polyMethodsPerClass < p.PolymorphicNoise; c++ {
		cs := &classSpec{
			pkg:  "gen.poly",
			name: fmt.Sprintf("Poly%02d", c),
			poly: true,
		}
		n := p.PolymorphicNoise - c*polyMethodsPerClass
		if n > polyMethodsPerClass {
			n = polyMethodsPerClass
		}
		for mi := 0; mi < n; mi++ {
			cs.methods = append(cs.methods, &methodSpec{
				name: fmt.Sprintf("poly%d", mi), deviation: map[string]IssueKind{},
			})
		}
		classes = append(classes, cs)
	}

	// Unique-per-library classes: entry points with no counterpart.
	for li, lib := range libNames {
		for u := 0; u < p.UniquePerLib/maxInt(1, len(libNames)); u++ {
			cs := &classSpec{
				pkg:      fmt.Sprintf("gen.unique%d", li),
				name:     fmt.Sprintf("Only%s%02d", strings.Title(lib), u),
				uniqueIn: lib,
			}
			cs.methods = append(cs.methods, &methodSpec{
				name: "solo", pattern: pPlain, depth: 1,
				deviation: map[string]IssueKind{},
			})
			classes = append(classes, cs)
		}
	}

	// Plant deviations on distinct checked methods.
	rng.Shuffle(len(checked), func(i, j int) { checked[i], checked[j] = checked[j], checked[i] })
	idx := 0
	plant := func(kind IssueKind, count int, eligible func(*methodSpec) bool) {
		for n := 0; n < count && idx < len(checked); idx++ {
			ms := checked[idx]
			if !eligible(ms) {
				continue
			}
			lib := libNames[rng.Intn(len(libNames))]
			ms.deviation[lib] = kind
			ms.devID = fmt.Sprintf("%s-%03d", kind, idx)
			n++
		}
	}
	anyChecked := func(ms *methodSpec) bool { return len(ms.checks) > 0 }
	mustPattern := func(ms *methodSpec) bool {
		return ms.pattern == pMustOne || ms.pattern == pMustTwo || ms.pattern == pPrivInner
	}
	plant(DropCheck, p.DropCheck, anyChecked)
	plant(WeakenMust, p.WeakenMust, mustPattern)
	plant(SwapCheck, p.SwapCheck, anyChecked)
	plant(PrivWrap, p.PrivWrap, mustPattern)
	plant(ExtraCheck, p.ExtraCheck, anyChecked)

	// Constant-guard twins: convert the next ConstGuards checked methods to
	// the Figure 4 pattern (identical across libraries, FP-prone sans ICP).
	guards := 0
	for _, ms := range checked {
		if guards >= p.ConstGuards {
			break
		}
		if len(ms.deviation) == 0 && ms.pattern != pGuard {
			ms.pattern = pGuard
			ms.checks = ms.checks[:1]
			ms.guardInlineLib = libNames[guards%len(libNames)]
			guards++
		}
	}

	// Seeded false negatives (Section 6.4): convert further untouched
	// checked methods.
	fnCond, fnAll := 0, 0
	for _, ms := range checked {
		if fnCond >= p.FNConditionDivergence && fnAll >= p.FNAllWrong {
			break
		}
		if len(ms.deviation) != 0 || ms.pattern == pGuard || ms.fn != FNNone {
			continue
		}
		if fnCond < p.FNConditionDivergence {
			ms.fn = FNCondDivergence
			ms.checks = ms.checks[:1]
			fnCond++
			continue
		}
		ms.fn = FNAllWrongKind
		ms.checks = ms.checks[:1]
		fnAll++
	}
	return classes
}

func pickChecks(rng *rand.Rand, n, poolSize int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		c := rng.Intn(poolSize)
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

func collectGroundTruth(c *Corpus, spec []*classSpec, prof *domainProfile) {
	for _, cs := range spec {
		for _, ms := range cs.methods {
			for lib, kind := range ms.deviation {
				c.Issues = append(c.Issues, SeededIssue{
					ID:             ms.devID + "@" + cs.name,
					Kind:           kind,
					Responsible:    lib,
					EntryClass:     cs.name,
					EntryMethod:    ms.name,
					Check:          prof.pool[ms.checks[0]].Name,
					Manifestations: 1 + ms.wrappers,
				})
			}
			if ms.pattern == pGuard {
				// The null-delegating twin entry is the FP site without ICP.
				c.ConstGuardEntries = append(c.ConstGuardEntries,
					fmt.Sprintf("%s.%s.%sDefault(String)", cs.pkg, cs.name, ms.name))
			}
			if ms.fn != FNNone {
				c.FalseNegatives = append(c.FalseNegatives, SeededFN{
					ID:          fmt.Sprintf("fn-%s@%s.%s", ms.fn, cs.name, ms.name),
					Kind:        ms.fn,
					EntryClass:  cs.name,
					EntryMethod: ms.name,
					Check:       prof.pool[ms.checks[0]].Name,
				})
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
