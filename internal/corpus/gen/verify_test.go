package gen

import (
	"testing"

	"policyoracle/internal/oracle"
)

// TestVerifyReportUnmutated pins the verification hook itself: on the
// unmutated corpus the oracle's report must match the seeded ground
// truth exactly, so VerifyReport returns no problems for any pair. The
// metamorphic fuzzer builds on this hook to assert that seeded
// deviations also survive mutation.
func TestVerifyReportUnmutated(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	for _, pair := range c.Pairs() {
		rep := mustDiff(t, libs[pair[0]], libs[pair[1]])
		for _, problem := range c.VerifyReport(pair, rep) {
			t.Error(problem)
		}
	}
}

// TestVerifyReportFlagsTampering makes sure the hook actually fails when
// the report disagrees with the ground truth — a verifier that accepts
// everything would make the survival test vacuous.
func TestVerifyReportFlagsTampering(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	pair := c.Pairs()[0]
	rep := mustDiff(t, libs[pair[0]], libs[pair[1]])
	if len(rep.Groups) == 0 {
		t.Fatal("no difference groups to tamper with")
	}
	// Dropping a real difference must be reported as an undetected issue.
	tampered := *rep
	tampered.Groups = rep.Groups[1:]
	if len(c.VerifyReport(pair, &tampered)) == 0 {
		t.Error("VerifyReport accepted a report with a seeded issue removed")
	}
}
