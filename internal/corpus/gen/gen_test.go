package gen

import (
	"testing"

	"policyoracle/internal/analysis"
	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
)

func mustDiff(t testing.TB, a, b *oracle.Library) *diff.Report {
	t.Helper()
	rep, err := oracle.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func loadCorpus(t testing.TB, p Params) (*Corpus, map[string]*oracle.Library) {
	t.Helper()
	c := Generate(p)
	libs := make(map[string]*oracle.Library)
	for lib, srcs := range c.Sources {
		l, err := oracle.LoadLibrary(lib, srcs)
		if err != nil {
			t.Fatalf("loading generated %s: %v", lib, err)
		}
		libs[lib] = l
	}
	return c, libs
}

func TestDeterminism(t *testing.T) {
	a := Generate(Small())
	b := Generate(Small())
	for lib := range a.Sources {
		for f, src := range a.Sources[lib] {
			if b.Sources[lib][f] != src {
				t.Fatalf("non-deterministic generation: %s/%s differs", lib, f)
			}
		}
	}
	if len(a.Issues) != len(b.Issues) {
		t.Fatalf("issue counts differ: %d vs %d", len(a.Issues), len(b.Issues))
	}
}

func TestGeneratedCorpusLoads(t *testing.T) {
	_, libs := loadCorpus(t, Small())
	for name, l := range libs {
		if l.Diags.HasErrors() {
			t.Errorf("%s: %v", name, l.Diags.Err())
		}
		for _, d := range l.Diags.All() {
			t.Errorf("%s: unexpected diagnostic %s", name, d)
		}
		if len(l.EntryPoints()) < Small().Classes*Small().MethodsPerClass {
			t.Errorf("%s: only %d entry points", name, len(l.EntryPoints()))
		}
	}
}

func TestSeededIssueCounts(t *testing.T) {
	p := Small()
	c := Generate(p)
	counts := map[IssueKind]int{}
	for _, is := range c.Issues {
		counts[is.Kind]++
	}
	if counts[DropCheck] != p.DropCheck {
		t.Errorf("drop-check: %d, want %d", counts[DropCheck], p.DropCheck)
	}
	if counts[WeakenMust] != p.WeakenMust {
		t.Errorf("weaken-must: %d, want %d", counts[WeakenMust], p.WeakenMust)
	}
	if counts[PrivWrap] != p.PrivWrap {
		t.Errorf("priv-wrap: %d, want %d", counts[PrivWrap], p.PrivWrap)
	}
	if len(c.ConstGuardEntries) == 0 {
		t.Error("no constant-guard entries seeded")
	}
}

// TestOracleFindsAllSeededIssues is the generator's end-to-end check: the
// oracle must report every seeded inconsistency in the pairs that expose
// it, and nothing beyond the seeded set plus constant-guard patterns.
func TestOracleFindsAllSeededIssues(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	type pairT = [2]string
	pairs := []pairT{{"jdk", "harmony"}, {"jdk", "classpath"}, {"classpath", "harmony"}}
	found := map[string]map[pairT]bool{}
	for _, pr := range pairs {
		rep := mustDiff(t, libs[pr[0]], libs[pr[1]])
		for _, g := range rep.Groups {
			matched := false
			for i := range c.Issues {
				is := &c.Issues[i]
				if is.Responsible != pr[0] && is.Responsible != pr[1] {
					continue
				}
				hit := false
				for _, e := range g.Entries {
					if is.MatchesEntry(e) {
						hit = true
					}
				}
				if hit {
					if found[is.ID] == nil {
						found[is.ID] = map[pairT]bool{}
					}
					found[is.ID][pr] = true
					matched = true
				}
			}
			if !matched {
				t.Errorf("%v: unseeded difference: %s %s entries %v", pr, g.Case, g.DiffChecks, g.Entries[:min(3, len(g.Entries))])
			}
		}
	}
	for _, is := range c.Issues {
		pairsFound := found[is.ID]
		if len(pairsFound) == 0 {
			t.Errorf("seeded issue %s (%s in %s, check %s) not detected",
				is.ID, is.Kind, is.Responsible, is.Check)
			continue
		}
		// The issue must be detected in both pairs involving the deviant.
		want := 0
		for _, pr := range pairs {
			if pr[0] == is.Responsible || pr[1] == is.Responsible {
				want++
			}
		}
		if len(pairsFound) != want {
			t.Errorf("issue %s detected in %d pairs, want %d", is.ID, len(pairsFound), want)
		}
	}
}

// TestICPRowGroundTruth verifies that disabling ICP produces spurious
// reports exactly at the seeded constant-guard twins.
func TestICPRowGroundTruth(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	opts := oracle.DefaultOptions()
	opts.ICP = false
	for _, l := range libs {
		l.Extract(opts)
	}
	rep := mustDiff(t, libs["jdk"], libs["harmony"])
	// With ICP off, MUST policies in the delegating twin see the guarded
	// check as MAY (the guard cannot be folded), producing reports on
	// *Default entries in at least one pair... but since all three
	// libraries share the twin pattern, the policies stay equal pairwise.
	// The spurious reports appear against structure-divergent dialects:
	// verify instead that re-enabling ICP never *adds* reports.
	noICPGroups := len(rep.Groups)

	libs2 := make(map[string]*oracle.Library)
	for lib, srcs := range c.Sources {
		l, err := oracle.LoadLibrary(lib, srcs)
		if err != nil {
			t.Fatal(err)
		}
		l.Extract(oracle.DefaultOptions())
		libs2[lib] = l
	}
	rep2 := mustDiff(t, libs2["jdk"], libs2["harmony"])
	if len(rep2.Groups) > noICPGroups {
		t.Errorf("ICP added reports: %d with vs %d without", len(rep2.Groups), noICPGroups)
	}
}

func TestMemoModesAgreeOnGenerated(t *testing.T) {
	c := Generate(Params{
		Seed: 7, Classes: 6, MethodsPerClass: 4, CheckFraction: 0.5,
		MaxDepth: 3, WrapperFanout: 1, DropCheck: 2, ConstGuards: 1,
	})
	var reports []string
	for _, memo := range []analysis.MemoMode{analysis.MemoGlobal, analysis.MemoPerEntry, analysis.MemoNone} {
		libs := make(map[string]*oracle.Library)
		for lib, srcs := range c.Sources {
			l, err := oracle.LoadLibrary(lib, srcs)
			if err != nil {
				t.Fatal(err)
			}
			opts := oracle.DefaultOptions()
			opts.Memo = memo
			l.Extract(opts)
			libs[lib] = l
		}
		rep := mustDiff(t, libs["jdk"], libs["harmony"])
		reports = append(reports, rep.String())
	}
	if reports[0] != reports[1] || reports[1] != reports[2] {
		t.Errorf("memo modes disagree:\n--- global ---\n%s\n--- per-entry ---\n%s\n--- none ---\n%s",
			reports[0], reports[1], reports[2])
	}
}

func TestMemoizationSpeedsUpGenerated(t *testing.T) {
	c := Generate(Params{
		Seed: 11, Classes: 8, MethodsPerClass: 4, CheckFraction: 0.4,
		MaxDepth: 3, WrapperFanout: 1, DropCheck: 1, ConstGuards: 1,
	})
	work := func(memo analysis.MemoMode) int {
		l, err := oracle.LoadLibrary("jdk", c.Sources["jdk"])
		if err != nil {
			t.Fatal(err)
		}
		opts := oracle.DefaultOptions()
		opts.Memo = memo
		opts.Modes = []analysis.Mode{analysis.May}
		l.Extract(opts)
		return l.MayStats.MethodAnalyses
	}
	global := work(analysis.MemoGlobal)
	perEntry := work(analysis.MemoPerEntry)
	none := work(analysis.MemoNone)
	if !(global < perEntry && perEntry < none) {
		t.Errorf("method analyses not ordered: global=%d per-entry=%d none=%d", global, perEntry, none)
	}
	// The Util diamond should make no-memo dramatically worse.
	if none < perEntry*2 {
		t.Errorf("no-memo speedup too small: per-entry=%d none=%d", perEntry, none)
	}
}

func TestWrapperManifestationsGrouped(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	// Find a seeded issue with wrappers and confirm group manifestations.
	for _, is := range c.Issues {
		if is.Manifestations < 2 {
			continue
		}
		var other string
		for _, lib := range []string{"jdk", "harmony", "classpath"} {
			if lib != is.Responsible {
				other = lib
				break
			}
		}
		rep := mustDiff(t, libs[is.Responsible], libs[other])
		for _, g := range rep.Groups {
			hit := false
			for _, e := range g.Entries {
				if is.MatchesEntry(e) {
					hit = true
				}
			}
			if hit && g.Manifestations() < is.Manifestations {
				t.Errorf("issue %s: group has %d manifestations, seeded %d (entries %v)",
					is.ID, g.Manifestations(), is.Manifestations, g.Entries)
			}
		}
		return // one checked issue suffices
	}
	t.Skip("no multi-manifestation issue seeded")
}

func TestCategoriesPresent(t *testing.T) {
	_, libs := loadCorpus(t, Small())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	cats := map[diff.Category]int{}
	for _, pr := range [][2]string{{"jdk", "harmony"}, {"jdk", "classpath"}, {"classpath", "harmony"}} {
		rep := mustDiff(t, libs[pr[0]], libs[pr[1]])
		for _, g := range rep.Groups {
			cats[g.Category]++
		}
	}
	if cats[diff.Interprocedural] == 0 {
		t.Error("no interprocedural differences found — Table 3's dominant row would be empty")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestSeededFalseNegativesUndetected mechanizes Section 6.4's false-
// negative discussion: differing MAY conditions with equal flat MAY sets,
// and bugs replicated identically in every implementation, are real
// semantic problems the oracle must stay silent about.
func TestSeededFalseNegativesUndetected(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	if len(c.FalseNegatives) == 0 {
		t.Fatal("no false negatives seeded")
	}
	kinds := map[FNKind]int{}
	for _, fn := range c.FalseNegatives {
		kinds[fn.Kind]++
	}
	if kinds[FNCondDivergence] != Small().FNConditionDivergence ||
		kinds[FNAllWrongKind] != Small().FNAllWrong {
		t.Errorf("seeded kinds = %v", kinds)
	}
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	for _, pr := range [][2]string{{"jdk", "harmony"}, {"jdk", "classpath"}, {"classpath", "harmony"}} {
		rep := mustDiff(t, libs[pr[0]], libs[pr[1]])
		for _, g := range rep.Groups {
			for _, e := range g.Entries {
				for i := range c.FalseNegatives {
					if c.FalseNegatives[i].MatchesEntry(e) {
						t.Errorf("%v: seeded false negative %s was reported at %s",
							pr, c.FalseNegatives[i].ID, e)
					}
				}
			}
		}
	}
}

// TestFNConditionDivergencePoliciesAgree verifies the mechanism: the MAY
// sets of a condition-divergent method are equal across implementations
// even though the guarding conditions differ.
func TestFNConditionDivergencePoliciesAgree(t *testing.T) {
	c, libs := loadCorpus(t, Small())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	checked := false
	for _, fn := range c.FalseNegatives {
		if fn.Kind != FNCondDivergence {
			continue
		}
		var sigs []string
		for sig := range libs["jdk"].Policies.Entries {
			if fn.MatchesEntry(sig) {
				sigs = append(sigs, sig)
			}
		}
		for _, sig := range sigs {
			a := libs["jdk"].Policies.Entries[sig]
			b := libs["harmony"].Policies.Entries[sig]
			if a == nil || b == nil {
				continue
			}
			for ev, evp := range a.Events {
				bevp := b.Events[ev]
				if bevp == nil {
					continue
				}
				if evp.May != bevp.May || evp.Must != bevp.Must {
					t.Errorf("%s/%s: policies differ (%s/%s vs %s/%s) — FN seed broken",
						sig, ev, evp.Must, evp.May, bevp.Must, bevp.May)
				}
				if ev.Kind == 0 && evp.May.IsEmpty() { // native event
					t.Errorf("%s: FN method has no MAY check at all", sig)
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Error("no condition-divergent policies compared")
	}
}
