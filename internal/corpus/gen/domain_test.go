package gen

import (
	"strings"
	"testing"

	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// cryptoOptions is DefaultOptions retargeted at the crypto domain.
func cryptoOptions() oracle.Options {
	opts := oracle.DefaultOptions()
	opts.Domain = secmodel.CryptoAPI()
	return opts
}

// TestDefaultDomainAliases pins that Params.Domain "" and the explicit
// default ID generate byte-identical corpora — the same equivalence the
// rest of the stack (options wire, fingerprints, server requests) keeps.
func TestDefaultDomainAliases(t *testing.T) {
	p := Small()
	a := Generate(p)
	p.Domain = secmodel.DefaultDomainID
	b := Generate(p)
	if a.Domain != b.Domain || a.Domain != secmodel.DefaultDomainID {
		t.Fatalf("resolved domains differ: %q vs %q", a.Domain, b.Domain)
	}
	for lib := range a.Sources {
		for f, src := range a.Sources[lib] {
			if b.Sources[lib][f] != src {
				t.Fatalf("default-domain aliases diverge at %s/%s", lib, f)
			}
		}
	}
}

// TestCryptoCorpusShape checks the crypto corpus carries only deviations
// that exist in the domain: no PrivWrap issues (no privileged blocks),
// every seeded check drawn from the CryptoGuard table, and the sources
// free of SecurityManager checks.
func TestCryptoCorpusShape(t *testing.T) {
	c := Generate(CryptoSmall())
	if c.Domain != secmodel.CryptoDomainID {
		t.Fatalf("corpus domain = %q, want %q", c.Domain, secmodel.CryptoDomainID)
	}
	dom := secmodel.CryptoAPI()
	known := map[string]bool{}
	for _, ck := range dom.Checks() {
		known[ck.Name] = true
	}
	if len(c.Issues) == 0 {
		t.Fatal("no issues seeded in crypto corpus")
	}
	for _, is := range c.Issues {
		if is.Kind == PrivWrap {
			t.Errorf("issue %s: PrivWrap seeded in a domain without privileged blocks", is.ID)
		}
		if !known[is.Check] {
			t.Errorf("issue %s: check %s not in the crypto table", is.ID, is.Check)
		}
	}
	for lib, files := range c.Sources {
		for f, src := range files {
			if strings.HasPrefix(f, "java/") {
				continue // the shared prelude declares SecurityManager and doPrivileged
			}
			if strings.Contains(src, "securityManager.") {
				t.Errorf("%s/%s: SecurityManager check in crypto corpus", lib, f)
			}
			if strings.Contains(src, "doPrivileged") {
				t.Errorf("%s/%s: privileged block in crypto corpus", lib, f)
			}
		}
	}
}

// TestCryptoCorpusLoads mirrors TestGeneratedCorpusLoads for the crypto
// domain: every generated implementation must parse and build cleanly.
func TestCryptoCorpusLoads(t *testing.T) {
	_, libs := loadCorpus(t, CryptoSmall())
	for name, l := range libs {
		if l.Diags.HasErrors() {
			t.Errorf("%s: %v", name, l.Diags.Err())
		}
		for _, d := range l.Diags.All() {
			t.Errorf("%s: unexpected diagnostic %s", name, d)
		}
	}
}

// TestCryptoCorpusVerifyReport is the crypto-domain acceptance check: the
// oracle extracting under the crypto domain must report 100% of the
// seeded misuse deviations (dropped IV-freshness checks, swapped cipher
// modes, weakened key-size MUSTs, ...) with zero false positives, as
// judged by the corpus's own VerifyReport hook.
func TestCryptoCorpusVerifyReport(t *testing.T) {
	c, libs := loadCorpus(t, CryptoSmall())
	opts := cryptoOptions()
	for _, l := range libs {
		l.Extract(opts)
	}
	for _, pair := range c.Pairs() {
		rep := mustDiff(t, libs[pair[0]], libs[pair[1]])
		if rep.Domain != secmodel.CryptoDomainID {
			t.Errorf("%v: report domain = %q, want %q", pair, rep.Domain, secmodel.CryptoDomainID)
		}
		for _, problem := range c.VerifyReport(pair, rep) {
			t.Error(problem)
		}
	}
}

// TestCryptoCorpusInertUnderDefaultDomain extracts the crypto corpus
// under the DEFAULT domain: CryptoGuard calls are plain code there, so
// the libraries' policies must carry no checks at all and the seeded
// misuses must vanish — the domain really is what defines the checks.
func TestCryptoCorpusInertUnderDefaultDomain(t *testing.T) {
	c, libs := loadCorpus(t, CryptoSmall())
	for _, l := range libs {
		l.Extract(oracle.DefaultOptions())
	}
	pair := c.Pairs()[0]
	rep := mustDiff(t, libs[pair[0]], libs[pair[1]])
	for _, g := range rep.Groups {
		for i := range c.Issues {
			is := &c.Issues[i]
			if is.Responsible != pair[0] && is.Responsible != pair[1] {
				continue
			}
			for _, e := range g.Entries {
				if is.MatchesEntry(e) {
					t.Errorf("%v: crypto issue %s reported under the default domain at %s",
						pair, is.ID, e)
				}
			}
		}
	}
}
