// Package corpus provides the MJ workloads for the security policy oracle:
// hand-written classes reproducing every figure of the paper in three
// independent implementation dialects (jdk, harmony, classpath), the
// ground-truth labels for the seeded differences, and (in subpackage gen)
// a deterministic generator of paper-scale libraries.
package corpus

// runtimeSource is the java.lang/java.security prelude that every
// implementation ships its own copy of: Object, String, the full
// 31-check SecurityManager, System, Runtime permissions, and the
// AccessController privileged-block machinery.
const runtimeSource = `
package java.lang;

public class Object {
  public int hashCode() { return 0; }
  public boolean equals(Object other) { return this == other; }
  public String toString() { return null; }
}

public class String {
  private char[] value;
  private int count;
  public int length() { return count; }
  public boolean isEmpty() { return count == 0; }
  public char charAt(int index) { return value[index]; }
}

public class Exception {
  private String message;
  public Exception() { }
  public String getMessage() { return message; }
}

public class RuntimeException extends Exception {
  public RuntimeException() { }
}

public class SecurityException extends RuntimeException {
  public SecurityException() { }
}

public class UnsupportedEncodingException extends Exception {
  public UnsupportedEncodingException() { }
}

public class IOException extends Exception {
  public IOException() { }
}

public class Thread {
  public void interrupt() { }
}

public class ThreadGroup {
  public void interruptGroup() { }
}

public class Permission {
  private String name;
  public Permission(String name) { this.name = name; }
  public String getName() { return name; }
}

public class RuntimePermission extends Permission {
  public RuntimePermission(String name) { super(name); }
}

// SecurityManager declares the 31 security checks of the Java security
// model. Bodies delegate to checkPermission in the real libraries; the
// analysis treats every call to one of these methods as a security check
// and does not descend into it.
public class SecurityManager {
  public void checkAccept(String host, int port) { }
  public void checkAccess(Thread t) { }
  public void checkAccessThreadGroup(ThreadGroup g) { }
  public void checkAwtEventQueueAccess() { }
  public void checkConnect(String host, int port) { }
  public void checkConnect(String host, int port, Object context) { }
  public void checkCreateClassLoader() { }
  public void checkDelete(String file) { }
  public void checkExec(String cmd) { }
  public void checkExit(int status) { }
  public void checkLink(String lib) { }
  public void checkListen(int port) { }
  public void checkMemberAccess(Object clazz, int which) { }
  public void checkMulticast(Object maddr) { }
  public void checkMulticast(Object maddr, int ttl) { }
  public void checkPackageAccess(String pkg) { }
  public void checkPackageDefinition(String pkg) { }
  public void checkPermission(Object perm) { }
  public void checkPermission(Object perm, Object context) { }
  public void checkPrintJobAccess() { }
  public void checkPropertiesAccess() { }
  public void checkPropertyAccess(String key) { }
  public void checkRead(String file) { }
  public void checkReadFD(Object fd) { }
  public void checkRead(String file, Object context) { }
  public void checkSecurityAccess(String target) { }
  public void checkSetFactory() { }
  public void checkSystemClipboardAccess() { }
  public void checkTopLevelWindow(Object window) { }
  public void checkWrite(String file) { }
  public void checkWriteFD(Object fd) { }
}

public class System {
  private static SecurityManager security;
  public static SecurityManager getSecurityManager() { return security; }
  public static void exit(int status) {
    SecurityManager sm = getSecurityManager();
    sm.checkExit(status);
    halt0(status);
  }
  static native void halt0(int status);
}
`

// accessControlSource is the java.security prelude.
const accessControlSource = `
package java.security;

import java.lang.*;

public interface PrivilegedAction {
  Object run();
}

public class AccessController {
  public static Object doPrivileged(PrivilegedAction action) {
    return action.run();
  }
}
`

// RuntimeSources returns the runtime prelude files shared (as per-library
// copies) by every implementation.
func RuntimeSources() map[string]string {
	return map[string]string{
		"java/lang/runtime.mj":           runtimeSource,
		"java/security/accesscontrol.mj": accessControlSource,
	}
}

// cryptoGuardSource declares the crypto-API misuse domain's guard class.
// It mirrors the SecurityManager prelude: every method matching the
// secmodel crypto check table (name + arity) is a security check, bodies
// are opaque to the analysis. The class lives in java.security so the
// generated packages' existing imports resolve it.
const cryptoGuardSource = `
package java.security;

import java.lang.*;

public class CryptoGuard {
  public void checkCertChain(String chain) { }
  public void checkCipherMode(String mode) { }
  public void checkDigestStrength(String algorithm) { }
  public void checkEntropySource() { }
  public void checkHostnameVerified(String host, int port) { }
  public void checkIvFresh(String iv) { }
  public void checkIvLength(int length) { }
  public void checkKeyAlgorithm(String algorithm, int size) { }
  public void checkKeySize(int bits) { }
  public void checkPadding(String padding) { }
  public void checkSeeded() { }
  public void checkTagLength(int bits) { }
}
`

// CryptoRuntimeSources returns the runtime prelude for crypto-domain
// workloads: the shared java.lang/java.security files plus the
// CryptoGuard check class.
func CryptoRuntimeSources() map[string]string {
	files := RuntimeSources()
	files["java/security/cryptoguard.mj"] = cryptoGuardSource
	return files
}
