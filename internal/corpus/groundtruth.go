package corpus

import (
	"strings"

	"policyoracle/internal/diff"
)

// Kind classifies a known difference between the corpus implementations,
// mirroring Section 6.1's categories.
type Kind int

// Difference kinds.
const (
	Vulnerability Kind = iota
	Interoperability
	FalsePositive
)

func (k Kind) String() string {
	switch k {
	case Vulnerability:
		return "vulnerability"
	case Interoperability:
		return "interoperability"
	default:
		return "false-positive"
	}
}

// Issue is one known, labeled difference in the hand-written corpus.
type Issue struct {
	ID string
	Kind
	// Responsible names the implementation at fault (for vulnerabilities)
	// or the implementation whose divergent behavior causes the report.
	Responsible string
	// Pairs lists the library pairs whose comparison exposes the issue.
	Pairs [][2]string
	// MatchEntry is a substring of the manifesting entry-point signatures.
	MatchEntry string
	// MatchCheck names a check that must appear in the difference's check
	// set ("" to match any).
	MatchCheck string
	// BroadOnly marks issues detectable only with broad events (Figure 3).
	BroadOnly bool
	// Figure references the paper figure the issue reproduces.
	Figure string
	Note   string
}

// Matches reports whether group g (from comparing the libraries in pair)
// is this issue.
func (is *Issue) Matches(g *diff.Group, pair [2]string) bool {
	if !is.appliesTo(pair) {
		return false
	}
	found := false
	for _, e := range g.Entries {
		if strings.Contains(e, is.MatchEntry) {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	if is.MatchCheck != "" && !strings.Contains(g.DiffChecks.String(), is.MatchCheck) {
		return false
	}
	return true
}

func (is *Issue) appliesTo(pair [2]string) bool {
	for _, p := range is.Pairs {
		if (p[0] == pair[0] && p[1] == pair[1]) || (p[0] == pair[1] && p[1] == pair[0]) {
			return true
		}
	}
	return false
}

// Library names used by the hand-written corpus.
const (
	JDK       = "jdk"
	Harmony   = "harmony"
	Classpath = "classpath"
)

// Sources returns the hand-written sources for the named library.
func Sources(lib string) map[string]string {
	switch lib {
	case JDK:
		return JDKSources()
	case Harmony:
		return HarmonySources()
	case Classpath:
		return ClasspathSources()
	}
	return nil
}

// Libraries lists the corpus implementations.
func Libraries() []string { return []string{JDK, Harmony, Classpath} }

// Pairs lists the three pairwise comparisons of Table 3.
func Pairs() [][2]string {
	return [][2]string{
		{Classpath, Harmony},
		{JDK, Harmony},
		{JDK, Classpath},
	}
}

// KnownIssues returns the ground truth for the hand-written corpus.
func KnownIssues() []Issue {
	withHarmony := [][2]string{{JDK, Harmony}, {Classpath, Harmony}}
	withJDK := [][2]string{{JDK, Harmony}, {JDK, Classpath}}
	withClasspath := [][2]string{{JDK, Classpath}, {Classpath, Harmony}}
	return []Issue{
		{
			ID: "fig1-datagram-checkaccept", Kind: Vulnerability, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "DatagramSocket.connect", MatchCheck: "checkAccept",
			Figure: "Figure 1", Note: "Harmony misses checkAccept on the non-multicast branch",
		},
		{
			ID: "fig5-loadlibrary-checkread", Kind: Vulnerability, Responsible: JDK,
			Pairs: withJDK, MatchEntry: "Runtime.loadLibrary", MatchCheck: "checkRead",
			Figure: "Figure 5", Note: "JDK misses checkRead before loading a library",
		},
		{
			ID: "privileged-property-check", Kind: Vulnerability, Responsible: JDK,
			Pairs: withJDK, MatchEntry: "PropsAccess.getProperty", MatchCheck: "checkPropertyAccess",
			Figure: "Section 6.2", Note: "JDK's check sits inside doPrivileged and is a semantic no-op",
		},
		{
			ID: "fig6-openconnection-checkconnect", Kind: Vulnerability, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "URL.openConnection", MatchCheck: "checkConnect",
			Figure: "Figure 6", Note: "Harmony returns internal state without checkConnect",
		},
		{
			ID: "fig7-socket-connect", Kind: Vulnerability, Responsible: Classpath,
			Pairs: withClasspath, MatchEntry: "Socket.connect", MatchCheck: "checkConnect",
			Figure: "Figure 7", Note: "Classpath omits all checks in Socket.connect",
		},
		{
			ID: "fig8-getbytes-checkexit", Kind: Interoperability, Responsible: JDK,
			Pairs: withJDK, MatchEntry: "StringOps.getBytes", MatchCheck: "checkExit",
			Figure: "Figure 8", Note: "JDK requires checkExit permission where others throw",
		},
		{
			ID: "charsetprovider-permission", Kind: Interoperability, Responsible: Classpath,
			Pairs: withClasspath, MatchEntry: "charset.Charset.forName", MatchCheck: "checkPermission",
			Figure: "Section 6.3", Note: "Classpath's dynamic provider loading needs an extra permission",
		},
		{
			ID: "mustmay-filestream-open", Kind: Interoperability, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "FileStream.open", MatchCheck: "checkRead",
			Figure: "Section 6.1", Note: "checkRead is MUST in JDK/Classpath but only MAY in Harmony",
		},
		{
			ID: "fp-security-getproperty", Kind: FalsePositive, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "Security.getProperty",
			Figure: "Section 6.4", Note: "checkPermission vs checkSecurityAccess achieve the same goal",
		},
		{
			ID: "fp-netif-reachability", Kind: FalsePositive, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "NetworkInterface.getInetAddresses", MatchCheck: "checkConnect",
			Figure: "Section 6.4", Note: "Harmony misuses checkConnect for a reachability probe",
		},
		{
			ID: "fp-props-list", Kind: FalsePositive, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "Props.list",
			Figure: "Section 6.4", Note: "checkPropertyAccess vs checkPropertiesAccess",
		},
		{
			ID: "fig3-bag-private-read", Kind: Vulnerability, Responsible: Harmony,
			Pairs: withHarmony, MatchEntry: "Bag.a", MatchCheck: "checkRead", BroadOnly: true,
			Figure: "Figure 3", Note: "unprotected private read, visible only with broad events",
		},
	}
}

// ClassifyGroup matches a difference group against the ground truth,
// returning the issue or nil for an unlabeled difference.
func ClassifyGroup(g *diff.Group, pair [2]string, broad bool) *Issue {
	issues := KnownIssues()
	for i := range issues {
		is := &issues[i]
		if is.BroadOnly && !broad {
			continue
		}
		if is.Matches(g, pair) {
			return is
		}
	}
	return nil
}
