package corpus

import (
	"testing"

	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

func mustDiff(t testing.TB, a, b *oracle.Library) *diff.Report {
	t.Helper()
	rep, err := oracle.Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func load(t testing.TB, lib string) *oracle.Library {
	t.Helper()
	l, err := oracle.LoadLibrary(lib, Sources(lib))
	if err != nil {
		t.Fatalf("loading %s: %v", lib, err)
	}
	return l
}

func extractAll(t testing.TB, opts oracle.Options) map[string]*oracle.Library {
	t.Helper()
	libs := make(map[string]*oracle.Library)
	for _, name := range Libraries() {
		l := load(t, name)
		l.Extract(opts)
		libs[name] = l
	}
	return libs
}

func TestCorporaLoadCleanly(t *testing.T) {
	for _, name := range Libraries() {
		l := load(t, name)
		if got := len(l.EntryPoints()); got < 40 {
			t.Errorf("%s: only %d entry points", name, got)
		}
		if l.NCLoC < 200 {
			t.Errorf("%s: only %d NCLoC", name, l.NCLoC)
		}
		// No unresolved-name warnings: the hand-written corpus must be
		// fully resolvable.
		for _, d := range l.Diags.All() {
			t.Errorf("%s: %s", name, d)
		}
	}
}

func TestEntryPointsMatchAcrossLibraries(t *testing.T) {
	libs := map[string]*oracle.Library{}
	for _, name := range Libraries() {
		libs[name] = load(t, name)
	}
	for _, pair := range Pairs() {
		n := oracle.MatchingEntries(libs[pair[0]], libs[pair[1]])
		if n < 40 {
			t.Errorf("%s vs %s: only %d matching entries", pair[0], pair[1], n)
		}
	}
}

// TestAllKnownIssuesDetected runs the full oracle over all three pairs and
// verifies that every narrow-mode ground-truth issue is reported and that
// nothing else is.
func TestAllKnownIssuesDetected(t *testing.T) {
	libs := extractAll(t, oracle.DefaultOptions())
	found := map[string]bool{}
	for _, pair := range Pairs() {
		rep := mustDiff(t, libs[pair[0]], libs[pair[1]])
		for _, g := range rep.Groups {
			is := ClassifyGroup(g, pair, false)
			if is == nil {
				t.Errorf("%s vs %s: unlabeled difference: %s checks %s entries %v",
					pair[0], pair[1], g.Case, g.DiffChecks, g.Entries)
				continue
			}
			found[is.ID] = true
		}
	}
	for _, is := range KnownIssues() {
		if is.BroadOnly {
			if found[is.ID] {
				t.Errorf("broad-only issue %s detected in narrow mode", is.ID)
			}
			continue
		}
		if !found[is.ID] {
			t.Errorf("known issue %s (%s, %s) not detected", is.ID, is.Kind, is.Figure)
		}
	}
}

func TestFigure3RequiresBroadEvents(t *testing.T) {
	opts := oracle.DefaultOptions()
	opts.Events = secmodel.BroadEvents
	libs := extractAll(t, opts)
	pair := [2]string{JDK, Harmony}
	rep := mustDiff(t, libs[JDK], libs[Harmony])
	found := false
	for _, g := range rep.Groups {
		if is := ClassifyGroup(g, pair, true); is != nil && is.ID == "fig3-bag-private-read" {
			found = true
		}
	}
	if !found {
		t.Error("Figure 3 private-read difference not detected with broad events")
	}
}

func TestBroadEventsInflatePolicyCounts(t *testing.T) {
	narrow := extractAll(t, oracle.DefaultOptions())
	opts := oracle.DefaultOptions()
	opts.Events = secmodel.BroadEvents
	broad := extractAll(t, opts)
	for _, name := range Libraries() {
		n := narrow[name].Policies.CountPolicies()
		b := broad[name].Policies.CountPolicies()
		if b <= n {
			t.Errorf("%s: broad events should add policies (narrow=%d broad=%d)", name, n, b)
		}
	}
}

// TestICPEliminatesURLFalsePositive verifies the Figure 4 mechanism at the
// report level: without ICP, URL(String) is spuriously reported against
// Classpath; with ICP it is not.
func TestICPEliminatesURLFalsePositive(t *testing.T) {
	hasURLCtorDiff := func(rep *diff.Report) bool {
		for _, g := range rep.Groups {
			for _, e := range g.Entries {
				if e == "java.net.URL.<init>(String)" {
					return true
				}
			}
		}
		return false
	}

	withICP := extractAll(t, oracle.DefaultOptions())
	repICP := mustDiff(t, withICP[JDK], withICP[Classpath])
	if hasURLCtorDiff(repICP) {
		t.Error("URL(String) reported with ICP on (Figure 4 false positive)")
	}

	opts := oracle.DefaultOptions()
	opts.ICP = false
	noICP := extractAll(t, opts)
	repNo := mustDiff(t, noICP[JDK], noICP[Classpath])
	if !hasURLCtorDiff(repNo) {
		t.Error("URL(String) not reported with ICP off — the ICP row would be empty")
	}
}

func TestMustMayDifferenceCategorized(t *testing.T) {
	libs := extractAll(t, oracle.DefaultOptions())
	rep := mustDiff(t, libs[JDK], libs[Harmony])
	found := false
	for _, g := range rep.Groups {
		for _, e := range g.Entries {
			if e == "java.io.FileStream.open(String)" {
				found = true
				if g.Case != diff.CaseMustMayMismatch {
					t.Errorf("FileStream.open case = %s, want must-may-mismatch", g.Case)
				}
				if g.Category != diff.MustMay {
					t.Errorf("FileStream.open category = %s", g.Category)
				}
			}
		}
	}
	if !found {
		t.Error("FileStream.open difference not reported")
	}
}

func TestRootCauseGrouping(t *testing.T) {
	libs := extractAll(t, oracle.DefaultOptions())
	rep := mustDiff(t, libs[JDK], libs[Harmony])
	// connect and reconnect share the connectInternal/connectCheck root:
	// they must be one group with two manifestations.
	for _, g := range rep.Groups {
		hasConnect, hasReconnect := false, false
		for _, e := range g.Entries {
			if e == "java.net.DatagramSocket.connect(InetAddress,int)" {
				hasConnect = true
			}
			if e == "java.net.DatagramSocket.reconnect(InetAddress,int)" {
				hasReconnect = true
			}
		}
		if hasConnect != hasReconnect {
			t.Errorf("connect/reconnect split across groups: %v", g.Entries)
		}
		if hasConnect && g.Manifestations() != 2 {
			t.Errorf("DatagramSocket group manifestations = %d, want 2", g.Manifestations())
		}
	}
}

func TestFigure2PathPolicies(t *testing.T) {
	libs := extractAll(t, oracle.DefaultOptions())
	ep := libs[JDK].Policies.Entries["java.net.DatagramSocket.connect(InetAddress,int)"]
	if ep == nil {
		t.Fatal("DatagramSocket.connect policy missing")
	}
	ret := ep.Events[secmodel.ReturnEvent()]
	if ret == nil {
		t.Fatal("return event missing")
	}
	if len(ret.Paths.Sets) != 2 {
		t.Errorf("JDK path alternatives = %s, want the two of Figure 2", ret.Paths)
	}
	if !ret.Must.IsEmpty() {
		t.Errorf("JDK must = %s, want {} per Figure 2", ret.Must)
	}
}

func TestSymmetricComparison(t *testing.T) {
	libs := extractAll(t, oracle.DefaultOptions())
	ab := mustDiff(t, libs[JDK], libs[Harmony])
	ba := mustDiff(t, libs[Harmony], libs[JDK])
	if len(ab.Groups) != len(ba.Groups) {
		t.Errorf("asymmetric group counts: %d vs %d", len(ab.Groups), len(ba.Groups))
	}
	if ab.MatchingEntries != ba.MatchingEntries {
		t.Errorf("asymmetric matching entries: %d vs %d", ab.MatchingEntries, ba.MatchingEntries)
	}
}

func TestResolutionRateHigh(t *testing.T) {
	libs := extractAll(t, oracle.DefaultOptions())
	for name, l := range libs {
		rate := l.Resolver.ResolutionRate()
		if rate < 0.9 {
			t.Errorf("%s: resolution rate %.2f, want >= 0.90 (paper: 97%%)", name, rate)
		}
	}
}
