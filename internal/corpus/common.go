package corpus

import "fmt"

// consistentClasses returns library classes whose security policies agree
// across all three implementations — the quiet majority of a real class
// library. Internal structure still varies by dialect (helper naming and
// nesting), exercising the analysis without adding differences. The
// templates cover further check families: checkAccess, checkDelete,
// checkListen, checkExec, checkPropertiesAccess, checkCreateClassLoader,
// and checkSetFactory.
func consistentClasses(dialect string) map[string]string {
	helper := map[string]string{
		JDK:       "Impl",
		Harmony:   "Internal",
		Classpath: "Do",
	}[dialect]

	ioSrc := fmt.Sprintf(`
package java.io;

import java.lang.*;

public class File {
  private SecurityManager securityManager;
  private String path;

  public boolean delete() {
    securityManager.checkDelete(path);
    return delete%[1]s();
  }

  private boolean delete%[1]s() {
    return unlink0(path);
  }

  public String[] list() {
    securityManager.checkRead(path);
    return list0(path);
  }

  public boolean exists() {
    securityManager.checkRead(path);
    return stat0(path);
  }

  native boolean unlink0(String path);
  native String[] list0(String path);
  native boolean stat0(String path);
}

public class FileDescriptorOps {
  private SecurityManager securityManager;
  public void sync(Object fd) {
    securityManager.checkWriteFD(fd);
    sync0(fd);
  }
  native void sync0(Object fd);
}
`, helper)

	langSrc := fmt.Sprintf(`
package java.lang;

public class ThreadOps {
  private SecurityManager securityManager;

  public void interruptThread(Thread t) {
    securityManager.checkAccess(t);
    interrupt0(t);
  }

  public void stopGroup(ThreadGroup g) {
    securityManager.checkAccessThreadGroup(g);
    stop%[1]s(g);
  }

  private void stop%[1]s(ThreadGroup g) {
    stop0(g);
  }

  native void interrupt0(Thread t);
  native void stop0(ThreadGroup g);
}

public class ProcessBuilder {
  private SecurityManager securityManager;
  private String command;

  public Object start() {
    securityManager.checkExec(command);
    return exec%[1]s(command);
  }

  private Object exec%[1]s(String cmd) {
    return exec0(cmd);
  }

  native Object exec0(String cmd);
}

public class ClassLoaderFactory {
  private SecurityManager securityManager;
  public Object newClassLoader() {
    securityManager.checkCreateClassLoader();
    return create0();
  }
  native Object create0();
}
`, helper)

	netSrc := fmt.Sprintf(`
package java.net;

import java.lang.*;

public class ServerSocket {
  private SecurityManager securityManager;
  private int localPort;

  public void bind(int port) {
    securityManager.checkListen(port);
    bind%[1]s(port);
  }

  private void bind%[1]s(int port) {
    localPort = port;
    bind0(port);
  }

  public Object accept() {
    securityManager.checkAccept("client", localPort);
    return accept0();
  }

  native void bind0(int port);
  native Object accept0();
}

public class SocketFactoryRegistry {
  private SecurityManager securityManager;
  public void setSocketFactory(Object factory) {
    securityManager.checkSetFactory();
    install0(factory);
  }
  native void install0(Object factory);
}
`, helper)

	utilSrc := fmt.Sprintf(`
package java.util;

import java.lang.*;

public class SystemProps {
  private SecurityManager securityManager;

  public Object getProperties() {
    securityManager.checkPropertiesAccess();
    return props%[1]s();
  }

  private Object props%[1]s() {
    return props0();
  }

  public String getSystemProperty(String key) {
    securityManager.checkPropertyAccess(key);
    return prop0(key);
  }

  native Object props0();
  native String prop0(String key);
}

public class LocaleOps {
  private SecurityManager securityManager;
  public void setDefaultLocale(String tag) {
    securityManager.checkPropertiesAccess();
    setLocale0(tag);
  }
  native void setLocale0(String tag);
}
`, helper)

	return map[string]string{
		"java/io/common.mj":   ioSrc,
		"java/lang/common.mj": langSrc,
		"java/net/common.mj":  netSrc,
		"java/util/common.mj": utilSrc,
	}
}
