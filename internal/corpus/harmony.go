package corpus

// harmonyNet reproduces the Harmony-side code of Figures 1, 4, and 6.
const harmonyNet = `
package java.net;

import java.lang.*;

public class InetAddress {
  private String hostName;
  public boolean isMulticastAddress() { return isMulticast0(); }
  public String getHostAddress() { return addr0(); }
  public String getHostName() { return hostName; }
  native boolean isMulticast0();
  native String addr0();
}

public class SocketAddress {
  public SocketAddress() { }
}

public class InetSocketAddress extends SocketAddress {
  private InetAddress addr;
  private String hostname;
  private int port;
  public boolean isUnresolved() { return addr == null; }
  public String getHostName() { return hostname; }
  public int getPort() { return port; }
  public InetAddress getAddress() { return addr; }
}

public class DatagramSocketImpl {
  public void connect(InetAddress address, int port) {
    connect0(address, port);
  }
  native void connect0(InetAddress address, int port);
}

// DatagramSocket.connect is Figure 1(b): Harmony's vulnerability — the
// checkAccept call on the non-multicast branch is missing.
public class DatagramSocket {
  private SecurityManager securityManager;
  private DatagramSocketImpl impl;
  private Object lock;
  private InetAddress address;
  private int port;

  public void connect(InetAddress anAddr, int aPort) {
    connectCheck(anAddr, aPort);
  }

  public void reconnect(InetAddress anAddr, int aPort) {
    connectCheck(anAddr, aPort);
  }

  private void connectCheck(InetAddress anAddr, int aPort) {
    synchronized (lock) {
      if (anAddr.isMulticastAddress()) {
        securityManager.checkMulticast(anAddr);
      } else {
        securityManager.checkConnect(anAddr.getHostName(), aPort);
      }
      impl.connect(anAddr, aPort);
      address = anAddr;
      port = aPort;
    }
  }
}

public class SocketImpl {
  public void connect(SocketAddress address, int timeout) {
    socketConnect(address, timeout);
  }
  native void socketConnect(SocketAddress address, int timeout);
}

// Socket.connect: Harmony performs the check (like the JDK).
public class Socket {
  private SecurityManager securityManager;
  private SocketImpl impl;

  public void connect(SocketAddress endpoint) {
    connect(endpoint, 0);
  }

  public void connect(SocketAddress endpoint, int timeout) {
    InetSocketAddress anAddr = (InetSocketAddress) endpoint;
    securityManager.checkConnect(anAddr.getHostName(), anAddr.getPort());
    impl.connect(endpoint, timeout);
  }
}

public class Proxy {
  public static int DIRECT = 0;
  private int proxyType;
  private SocketAddress sa;
  public int type() { return proxyType; }
  public SocketAddress address() { return sa; }
}

public class URLConnection {
  public URLConnection() { }
  public Object getContent() { return content0(); }
  native Object content0();
}

public class URLStreamHandler {
  public URLConnection openConnection(URL u, Proxy p) {
    return new URLConnection();
  }
}

// URL.openConnection is Figure 6(a): Harmony returns internal API state
// without any checks — the vulnerability requires API-return events.
public class URL {
  private URLStreamHandler strmHandler;
  private SecurityManager securityManager;
  private Permission specifyStreamHandlerPermission;
  private String protocol;

  // Figure 4 verbatim: the Harmony constructors whose precise policy needs
  // interprocedural constant propagation.
  public URL(String spec) {
    this((URL) null, spec, (URLStreamHandler) null);
  }

  public URL(URL context, String spec, URLStreamHandler handler) {
    if (handler != null) {
      securityManager.checkPermission(specifyStreamHandlerPermission);
      strmHandler = handler;
    }
    protocol = spec;
  }

  public URLConnection openConnection(Proxy proxy) {
    return strmHandler.openConnection(this, proxy);
  }
}

// NetworkInterface.getInetAddresses: Harmony unnecessarily uses
// checkConnect to test address reachability — a questionable coding
// practice producing one of the paper's three false positives.
public class NetworkInterface {
  private SecurityManager securityManager;
  public boolean getInetAddresses() {
    securityManager.checkConnect("localhost", 0);
    return isReachable0();
  }
  native boolean isReachable0();
}
`

// harmonyRuntime: loadLibrary performs both checkLink and checkRead (the
// correct policy JDK misses), and the property read checks outside any
// privileged block.
const harmonyRuntime = `
package java.lang;

import java.security.*;
import java.nio.charset.Charset;

public class Runtime {
  private SecurityManager securityManager;

  public void loadLibrary(String libname) {
    securityManager.checkLink(libname);
    securityManager.checkRead(libname);
    nativeLoad(libname);
  }

  native void nativeLoad(String filename);
}

public class PropsAccess {
  private SecurityManager securityManager;
  public String getProperty(String key) {
    securityManager.checkPropertyAccess(key);
    return read0(key);
  }
  static native String read0(String key);
}

// StringOps.getBytes is Figure 8(b): Harmony throws an exception where the
// JDK calls System.exit, so no checkExit permission is involved.
public class StringOps {
  private Charset defaultCharsetValue;
  public byte[] getBytes(String s) {
    Charset cs = defaultCharset();
    return cs.encode(s);
  }
  private Charset defaultCharset() {
    if (defaultCharsetValue == null) {
      defaultCharsetValue = Charset.forName("ISO-8859-1");
    }
    return defaultCharsetValue;
  }
}
`

const harmonyMisc = `
package java.security;

import java.lang.*;

// Security.getProperty: Harmony uses checkSecurityAccess where the JDK
// uses checkPermission — both achieve the same goal; the reported
// difference is a false positive (Section 6.4).
public class Security {
  private static SecurityManager securityManager;
  public static String getProperty(String key) {
    securityManager.checkSecurityAccess("getProperty");
    return getProp0(key);
  }
  static native String getProp0(String key);
}
`

const harmonyNio = `
package java.nio.charset;

import java.lang.*;

public class Charset {
  public static Charset forName(String name) {
    Charset cs = lookup0(name);
    if (cs == null) {
      // Figure 8(b): a missing default charset surfaces as an exception,
      // where the JDK terminates via System.exit.
      throw new UnsupportedEncodingException();
    }
    return cs;
  }
  static native Charset lookup0(String name);
  public byte[] encode(String s) {
    return encodeLoop0(s);
  }
  native byte[] encodeLoop0(String s);
}
`

const harmonyIO = `
package java.io;

import java.lang.*;

// FileStream.open: Harmony guards the check on a data-dependent condition,
// turning JDK's MUST policy into a MAY policy — the paper's one MUST/MAY
// interoperability bug.
public class FileStream {
  private SecurityManager securityManager;
  public void open(String name) {
    if (!name.isEmpty()) {
      securityManager.checkRead(name);
    }
    open0(name);
  }
  native void open0(String name);
}
`

const harmonyUtil = `
package java.util;

import java.lang.*;

// Bag is the second implementation of Figure 3: the read of private data1
// happens before its checkRead. Narrow policies are identical to the
// JDK's; only broad events reveal the unprotected read.
public class Bag {
  private Object data1;
  private Object data2;
  private SecurityManager securityManager;

  public Object a(boolean condition, Collector obj) {
    if (condition) {
      obj.add(data1);
      securityManager.checkRead("bag");
      return obj;
    }
    securityManager.checkRead("bag");
    obj.add(data2);
    return obj;
  }
}

public class Collector {
  private int n;
  public Collector() { }
  public void add(Object x) { n = n + 1; }
}

// Props.list: Harmony uses checkPropertiesAccess where the JDK uses
// checkPropertyAccess — a false positive (both protect property state).
public class Props {
  private SecurityManager securityManager;
  public void list() {
    securityManager.checkPropertiesAccess();
    list0();
  }
  native void list0();
}
`

// HarmonySources returns the hand-written harmony implementation.
func HarmonySources() map[string]string {
	m := RuntimeSources()
	for f, src := range consistentClasses(Harmony) {
		m[f] = src
	}
	m["java/net/net.mj"] = harmonyNet
	m["java/lang/rt.mj"] = harmonyRuntime
	m["java/security/security.mj"] = harmonyMisc
	m["java/nio/charset.mj"] = harmonyNio
	m["java/io/io.mj"] = harmonyIO
	m["java/util/util.mj"] = harmonyUtil
	return m
}
