package interp

import (
	"strings"
	"testing"

	"policyoracle/internal/secmodel"
)

// Exercises the remaining interpreter semantics: arrays, do-while,
// continue, compound assignment, string intrinsics, switch without
// default, static state, and interpreter failure modes.

const arraysLib = `
package api;
import java.lang.*;
public class Arr {
  public int sum(int n) {
    int[] xs = new int[] {1, 2, 3};
    int total = 0;
    for (int i = 0; i < xs.length; i++) {
      total += xs[i];
    }
    xs[1] = 10;
    return total + xs[1];
  }
}
`

func TestArrays(t *testing.T) {
	out := run(t, AllowAll(), "api.Arr.sum(int)", arraysLib)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if asInt(out.Result) != 16 { // 1+2+3 + 10
		t.Errorf("result = %v", out.Result)
	}
}

func TestDoWhileAndContinue(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class L {
  public int m() {
    int i = 0;
    int odd = 0;
    do {
      i++;
      if (i % 2 == 0) { continue; }
      odd++;
    } while (i < 6);
    return odd;
  }
}
`
	out := run(t, AllowAll(), "api.L.m()", src)
	if asInt(out.Result) != 3 { // 1, 3, 5
		t.Errorf("result = %v", out.Result)
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class S {
  public int m(int k) {
    int r = 5;
    switch (k + 100) {
    case 1: r = 1; break;
    case 2: r = 2; break;
    }
    return r;
  }
}
`
	out := run(t, AllowAll(), "api.S.m(int)", src)
	if asInt(out.Result) != 5 {
		t.Errorf("result = %v", out.Result)
	}
}

func TestStaticFieldsAndMethods(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Counter {
  private static int count;
  static void bump() { count = count + 1; }
  public int m() {
    Counter.bump();
    bump();
    return count;
  }
}
`
	out := run(t, AllowAll(), "api.Counter.m()", src)
	if asInt(out.Result) != 2 {
		t.Errorf("result = %v", out.Result)
	}
}

func TestStringOps(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Str {
  public int m(String s) {
    String t = "ab" + "cd" + 1 + true + null;
    int h = t.hashCode();
    boolean same = t.equals(t.toString());
    char c = t.charAt(0);
    if (same && c == 'a') {
      return t.length();
    }
    return -1;
  }
}
`
	out := run(t, AllowAll(), "api.Str.m(String)", src)
	if asInt(out.Result) != int64(len("abcd1truenull")) {
		t.Errorf("result = %v", out.Result)
	}
}

func TestTernaryUnaryBitwise(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class E {
  public int m(boolean b) {
    int x = b ? 1 : 2;
    int y = -x;
    int z = (6 & 3) | (1 ^ 1);
    boolean n = !b;
    if (n) { return y + z + x; }
    return 0;
  }
}
`
	out := run(t, AllowAll(), "api.E.m(boolean)", src)
	// b synthesized false: x=2, y=-2, z=2, n=true → -2+2+2 = 2.
	if asInt(out.Result) != 2 {
		t.Errorf("result = %v", out.Result)
	}
}

func TestInstanceofAtRuntime(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class A { }
public class B extends A { }
public class T {
  public boolean m(String s) {
    Object o = new B();
    boolean isA = o instanceof A;
    boolean strIsString = s instanceof String;
    Object p = new A();
    boolean notB = !(p instanceof B);
    return isA && strIsString && notB;
  }
}
class Object { }
`
	out := run(t, AllowAll(), "api.T.m(String)", src)
	if !truthy(out.Result) {
		t.Errorf("result = %v", out.Result)
	}
}

func TestUnresolvedCallFails(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Bad {
  public void m() {
    nonexistent();
  }
}
`
	out := run(t, AllowAll(), "api.Bad.m()", src)
	if out.Err == nil || !strings.Contains(out.Err.Error(), "unresolved") {
		t.Errorf("err = %v", out.Err)
	}
}

func TestCallOnNullFails(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Bad {
  public void m() {
    Object o = null;
    o.hashCode();
  }
}
class Object { public int hashCode() { return 0; } }
`
	p := buildProg(t, map[string]string{"rt.mj": tinyRT, "lib.mj": src})
	cfg := DefaultConfig(AllowAll())
	cfg.SynthesizeObjects = false
	in := New(p, cfg)
	out := in.CallEntry(entryOf(t, p, "api.Bad.m()"))
	if out.Err == nil {
		t.Error("expected failure for call on null")
	}
}

func TestDivisionByZeroLenient(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class D {
  public int m(int n) {
    return (7 / n) + (7 % n);
  }
}
`
	out := run(t, AllowAll(), "api.D.m(int)", src)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if asInt(out.Result) != 0 {
		t.Errorf("result = %v", out.Result)
	}
}

func TestOutcomeHelpers(t *testing.T) {
	out := run(t, AllowAll(), "api.F.work(String,int)", basicLib)
	if len(out.Natives()) != 1 || out.Natives()[0] != "raw0" {
		t.Errorf("natives = %v", out.Natives())
	}
	if out.CalledNative("nonesuch") {
		t.Error("phantom native")
	}
	for _, e := range out.Trace {
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
}

func TestPermissionsModel(t *testing.T) {
	read := checkID(t, "checkRead", 1)
	write := checkID(t, "checkWrite", 1)
	p := Deny(read)
	if p.Permits(read) || !p.Permits(write) {
		t.Error("Deny wrong")
	}
	da := Permissions{DenyAll: true}
	if da.Permits(read) {
		t.Error("DenyAll permits")
	}
	da.Allowed = map[secmodel.CheckID]bool{read: true}
	if !da.Permits(read) || da.Permits(write) {
		t.Error("Allowed override wrong")
	}
}
