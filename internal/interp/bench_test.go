package interp

import (
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/secmodel"
)

// BenchmarkWitnessExecution measures one interpreted entry-point run under
// a denying SecurityManager (the witness harness's inner loop).
func BenchmarkWitnessExecution(b *testing.B) {
	p := buildProg(b, corpus.HarmonySources())
	entry := entryOf(b, p, "java.net.DatagramSocket.connect(InetAddress,int)")
	accept, _ := secmodel.CheckByName("checkAccept", 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New(p, DefaultConfig(Deny(accept)))
		out := in.CallEntry(entry)
		if out.Err != nil {
			b.Fatal(out.Err)
		}
	}
}
