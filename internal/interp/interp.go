// Package interp is a concrete interpreter for MJ used to witness security
// holes dynamically: it executes an API entry point under an installed
// SecurityManager whose permissions the harness controls, records every
// security check and native (JNI) call, and throws SecurityException when
// a check is denied — so a missing check manifests as a sensitive native
// call executing where the correct implementation throws.
//
// The interpreter implements the Java-like semantics the corpus relies on:
// objects with fields, virtual dispatch on runtime classes, constructors,
// exceptions with try/catch/finally, privileged blocks (checks inside
// AccessController.doPrivileged always pass), and short-circuit booleans.
// Native methods are intercepted: they record a trace event and return a
// zero value. To drive library code without a test harness providing real
// collaborators, the interpreter synthesizes objects on demand: reference-
// typed parameters and null reference-typed fields are lazily instantiated
// (SecurityManager-typed fields receive the installed manager). This keeps
// execution on the paths the static analysis reasons about.
package interp

import (
	"fmt"

	"policyoracle/internal/ast"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// Value is an MJ runtime value: *Object, *Array, string, int64, bool, or
// nil (null).
type Value any

// Object is an MJ instance.
type Object struct {
	Class  *types.Class
	Fields map[string]Value
}

func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	if o.Class == nil {
		return "object"
	}
	return o.Class.Simple + "@obj"
}

// Array is an MJ array value.
type Array struct {
	Elems []Value
}

// Permissions decides which security checks pass.
type Permissions struct {
	// DenyAll fails every check except those explicitly allowed.
	DenyAll bool
	// Denied fails the listed checks (ignored under DenyAll).
	Denied map[secmodel.CheckID]bool
	// Allowed overrides DenyAll for specific checks.
	Allowed map[secmodel.CheckID]bool
}

// AllowAll grants every permission.
func AllowAll() Permissions { return Permissions{} }

// Deny denies exactly the given checks.
func Deny(ids ...secmodel.CheckID) Permissions {
	p := Permissions{Denied: make(map[secmodel.CheckID]bool)}
	for _, id := range ids {
		p.Denied[id] = true
	}
	return p
}

// Permits reports whether the check passes.
func (p Permissions) Permits(id secmodel.CheckID) bool {
	if p.DenyAll {
		return p.Allowed[id]
	}
	return !p.Denied[id]
}

// EventKind classifies trace events.
type EventKind int

// Trace event kinds.
const (
	CheckPassed EventKind = iota
	CheckDenied
	CheckPrivileged // a check inside doPrivileged (always passes)
	NativeCalled
)

func (k EventKind) String() string {
	switch k {
	case CheckPassed:
		return "check-passed"
	case CheckDenied:
		return "check-denied"
	case CheckPrivileged:
		return "check-privileged"
	case NativeCalled:
		return "native"
	}
	return "?"
}

// Event is one trace entry.
type Event struct {
	Kind EventKind
	Name string // check name or native method name
}

func (e Event) String() string { return fmt.Sprintf("%s:%s", e.Kind, e.Name) }

// Outcome summarizes one interpreted call.
type Outcome struct {
	// Result is the returned value when the call completed normally.
	Result Value
	// Thrown is the propagated exception object (nil if none).
	Thrown *Object
	// SecurityViolation reports whether Thrown is a SecurityException
	// raised by a denied check.
	SecurityViolation bool
	// Trace lists checks and native calls in execution order.
	Trace []Event
	// Err reports interpreter-level failures (fuel exhausted, unresolved
	// code); the outcome is then meaningless.
	Err error
}

// Natives returns the names of native methods invoked.
func (o *Outcome) Natives() []string {
	var out []string
	for _, e := range o.Trace {
		if e.Kind == NativeCalled {
			out = append(out, e.Name)
		}
	}
	return out
}

// CalledNative reports whether the named native ran.
func (o *Outcome) CalledNative(name string) bool {
	for _, e := range o.Trace {
		if e.Kind == NativeCalled && e.Name == name {
			return true
		}
	}
	return false
}

// Config adjusts interpretation.
type Config struct {
	Permissions Permissions
	// Fuel bounds the number of executed statements (default 100000).
	Fuel int
	// MaxCallDepth bounds activation nesting (default 512), failing fast
	// on runaway recursion before the Go stack grows large.
	MaxCallDepth int
	// SynthesizeObjects lazily instantiates reference parameters and null
	// reference fields so library code runs without a caller-provided
	// object graph (default true; the witness harness depends on it).
	SynthesizeObjects bool
}

// DefaultConfig returns the witness-harness configuration.
func DefaultConfig(perms Permissions) Config {
	return Config{Permissions: perms, Fuel: 100000, SynthesizeObjects: true}
}

// Interp executes MJ methods of one program.
type Interp struct {
	prog    *types.Program
	cfg     Config
	statics map[string]Value // ClassFQN.field
	sm      *Object          // the installed SecurityManager instance
	trace   []Event
	fuel    int
	priv    int // privileged-block nesting depth
	depth   int // activation nesting
}

// New prepares an interpreter.
func New(prog *types.Program, cfg Config) *Interp {
	if cfg.Fuel <= 0 {
		cfg.Fuel = 100000
	}
	if cfg.MaxCallDepth <= 0 {
		cfg.MaxCallDepth = 512
	}
	in := &Interp{prog: prog, cfg: cfg, statics: make(map[string]Value), fuel: cfg.Fuel}
	if smClass := prog.Lookup(secmodel.SecurityManagerClass, nil); smClass != nil {
		in.sm = in.newObject(smClass)
	}
	return in
}

// CallEntry interprets entry with a synthesized receiver and zero/
// synthesized arguments, returning the outcome. The named return is
// load-bearing: the deferred recover must deliver the partially filled
// outcome when MJ code throws.
func (in *Interp) CallEntry(entry *types.Method) (out *Outcome) {
	out = &Outcome{}
	defer func() {
		out.Trace = in.trace
		if r := recover(); r != nil {
			switch r := r.(type) {
			case *mjThrow:
				out.Thrown = r.val
				out.SecurityViolation = r.security
			case fuelExhausted:
				out.Err = fmt.Errorf("interpreter fuel exhausted in %s", entry)
			case interpError:
				out.Err = fmt.Errorf("interpreting %s: %s", entry, string(r))
			default:
				panic(r)
			}
		}
	}()

	var recv Value
	if !entry.IsStatic() {
		recv = in.newObject(entry.Class)
	}
	args := make([]Value, len(entry.Params))
	for i, pt := range entry.Params {
		args[i] = in.synthesizeValue(pt)
	}
	out.Result = in.invoke(entry, recv, args)
	return out
}

// mjThrow carries an MJ exception up the Go stack.
type mjThrow struct {
	val      *Object
	security bool
}

type fuelExhausted struct{}

type interpError string

func (in *Interp) fail(format string, args ...any) {
	panic(interpError(fmt.Sprintf(format, args...)))
}

// newObject allocates a zeroed instance (no constructor run).
func (in *Interp) newObject(c *types.Class) *Object {
	o := &Object{Class: c, Fields: make(map[string]Value)}
	for k := c; k != nil; k = k.Super {
		for _, f := range k.Fields {
			if f.Mods.Has(ast.ModStatic) {
				continue
			}
			o.Fields[f.Name] = in.zeroOf(f.Type)
		}
	}
	return o
}

// zeroOf returns the zero value of a type.
func (in *Interp) zeroOf(t types.Type) Value {
	if t.Dims > 0 {
		return nil
	}
	switch t.Prim {
	case "int", "long", "char", "byte", "short", "float", "double":
		return int64(0)
	case "boolean":
		return false
	case "void":
		return nil
	}
	return nil
}

// synthesizeValue builds an argument for a parameter type.
func (in *Interp) synthesizeValue(t types.Type) Value {
	if t.Dims > 0 {
		return &Array{}
	}
	if t.Prim != "" {
		return in.zeroOf(t)
	}
	if !in.cfg.SynthesizeObjects {
		return nil
	}
	c := t.Class
	if c == nil {
		return nil
	}
	return in.synthesizeOf(c)
}

// synthesizeOf instantiates a class (or a concrete implementor for
// interfaces/abstract classes). SecurityManager-typed values are the
// installed manager; String-typed values are a dummy string.
func (in *Interp) synthesizeOf(c *types.Class) Value {
	if isSecurityManagerClass(c) && in.sm != nil {
		return in.sm
	}
	if c.Simple == "String" {
		return "synth"
	}
	if c.IsInterface || c.Mods.Has(ast.ModAbstract) {
		for _, sub := range c.AllSubtypes() {
			if !sub.IsInterface && !sub.Mods.Has(ast.ModAbstract) {
				return in.syntheticObject(sub)
			}
		}
		return nil
	}
	return in.syntheticObject(c)
}

// syntheticObject allocates an instance whose numeric fields are 1 rather
// than 0: synthesized collaborators should exercise the guarded (non-
// default) paths of library code — a zero proxy type, for example, would
// make every proxy look DIRECT and skip the very checks under test.
// Boolean fields stay false (they typically select legacy fallbacks).
func (in *Interp) syntheticObject(c *types.Class) *Object {
	o := in.newObject(c)
	for name, v := range o.Fields {
		if i, ok := v.(int64); ok && i == 0 {
			o.Fields[name] = int64(1)
		}
	}
	return o
}

// syntheticZero is the synthesized-field default: 1 for ints, zero
// otherwise.
func (in *Interp) syntheticZero(t types.Type) Value {
	v := in.zeroOf(t)
	if i, ok := v.(int64); ok && i == 0 && t.Dims == 0 {
		return int64(1)
	}
	return v
}

func isSecurityManagerClass(c *types.Class) bool {
	for k := c; k != nil; k = k.Super {
		if k.Simple == secmodel.SecurityManagerClass {
			return true
		}
	}
	return false
}

// throwSecurity raises an MJ SecurityException (or a plain Exception when
// the class is absent from the program).
func (in *Interp) throwSecurity() {
	var exc *Object
	if c := in.prog.Lookup("SecurityException", nil); c != nil {
		exc = in.newObject(c)
	} else if c := in.prog.Lookup("Exception", nil); c != nil {
		exc = in.newObject(c)
	} else {
		exc = &Object{Fields: map[string]Value{}}
	}
	panic(&mjThrow{val: exc, security: true})
}
