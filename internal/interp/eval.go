package interp

import (
	"policyoracle/internal/ast"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// frame is one activation record.
type frame struct {
	method *types.Method
	class  *types.Class
	this   Value
	scopes []map[string]Value
}

func (fr *frame) push() { fr.scopes = append(fr.scopes, map[string]Value{}) }
func (fr *frame) pop()  { fr.scopes = fr.scopes[:len(fr.scopes)-1] }

func (fr *frame) lookup(name string) (Value, bool) {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if v, ok := fr.scopes[i][name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (fr *frame) assign(name string, v Value) bool {
	for i := len(fr.scopes) - 1; i >= 0; i-- {
		if _, ok := fr.scopes[i][name]; ok {
			fr.scopes[i][name] = v
			return true
		}
	}
	return false
}

func (fr *frame) declare(name string, v Value) { fr.scopes[len(fr.scopes)-1][name] = v }

// ctrl is the statement-level control disposition.
type ctrl int

const (
	ctrlNormal ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

func (in *Interp) burn() {
	in.fuel--
	if in.fuel <= 0 {
		panic(fuelExhausted{})
	}
}

// invoke executes method m with the given receiver and arguments.
func (in *Interp) invoke(m *types.Method, recv Value, args []Value) Value {
	in.burn()
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > in.cfg.MaxCallDepth {
		in.fail("call depth limit exceeded in %s", m)
	}

	// Security checks are intercepted: they consult the permission set.
	if id, ok := identifyCheckMethod(m); ok {
		name := secmodel.CheckName(id)
		switch {
		case in.priv > 0:
			in.trace = append(in.trace, Event{CheckPrivileged, name})
		case in.cfg.Permissions.Permits(id):
			in.trace = append(in.trace, Event{CheckPassed, name})
		default:
			in.trace = append(in.trace, Event{CheckDenied, name})
			in.throwSecurity()
		}
		return nil
	}
	if m.IsNative() {
		in.trace = append(in.trace, Event{NativeCalled, m.Name})
		return in.zeroOf(m.Ret)
	}
	if m.Decl == nil || m.Decl.Body == nil {
		return in.zeroOf(m.Ret) // abstract reached via lenient dispatch
	}

	if secmodel.IsPrivilegedScope(m) {
		in.priv++
		defer func() { in.priv-- }()
	}

	fr := &frame{method: m, class: m.Class, this: recv}
	fr.push()
	for i, name := range m.ParamNames {
		var v Value
		if i < len(args) {
			v = args[i]
		}
		fr.declare(name, v)
	}
	c, v := in.execBlock(fr, m.Decl.Body)
	if c == ctrlReturn {
		return v
	}
	return nil
}

func identifyCheckMethod(m *types.Method) (secmodel.CheckID, bool) {
	if !isSecurityManagerClass(m.Class) {
		return 0, false
	}
	return secmodel.CheckByName(m.Name, len(m.Params))
}

func (in *Interp) execBlock(fr *frame, b *ast.Block) (ctrl, Value) {
	fr.push()
	defer fr.pop()
	for _, s := range b.Stmts {
		if c, v := in.execStmt(fr, s); c != ctrlNormal {
			return c, v
		}
	}
	return ctrlNormal, nil
}

func (in *Interp) execStmt(fr *frame, s ast.Stmt) (ctrl, Value) {
	in.burn()
	switch s := s.(type) {
	case *ast.Block:
		return in.execBlock(fr, s)
	case *ast.LocalVarDecl:
		var v Value
		if s.Init != nil {
			v = in.eval(fr, s.Init)
		} else {
			v = in.zeroOf(in.resolveType(fr, s.Type))
		}
		fr.declare(s.Name, v)
	case *ast.ExprStmt:
		in.eval(fr, s.X)
	case *ast.AssignStmt:
		in.execAssign(fr, s)
	case *ast.IfStmt:
		if truthy(in.eval(fr, s.Cond)) {
			return in.execStmt(fr, s.Then)
		} else if s.Else != nil {
			return in.execStmt(fr, s.Else)
		}
	case *ast.WhileStmt:
		for truthy(in.eval(fr, s.Cond)) {
			in.burn()
			c, v := in.execStmt(fr, s.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v
			}
		}
	case *ast.DoWhileStmt:
		for {
			in.burn()
			c, v := in.execStmt(fr, s.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v
			}
			if !truthy(in.eval(fr, s.Cond)) {
				break
			}
		}
	case *ast.ForStmt:
		fr.push()
		defer fr.pop()
		if s.Init != nil {
			if c, v := in.execStmt(fr, s.Init); c != ctrlNormal {
				return c, v
			}
		}
		for s.Cond == nil || truthy(in.eval(fr, s.Cond)) {
			in.burn()
			c, v := in.execStmt(fr, s.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c, v
			}
			if s.Post != nil {
				in.execStmt(fr, s.Post)
			}
		}
	case *ast.ReturnStmt:
		var v Value
		if s.Value != nil {
			v = in.eval(fr, s.Value)
		}
		return ctrlReturn, v
	case *ast.ThrowStmt:
		v := in.eval(fr, s.Value)
		obj, _ := v.(*Object)
		if obj == nil {
			in.fail("throw of non-object")
		}
		panic(&mjThrow{val: obj})
	case *ast.BreakStmt:
		return ctrlBreak, nil
	case *ast.ContinueStmt:
		return ctrlContinue, nil
	case *ast.SyncStmt:
		in.eval(fr, s.Lock)
		return in.execBlock(fr, s.Body)
	case *ast.TryStmt:
		return in.execTry(fr, s)
	case *ast.SwitchStmt:
		return in.execSwitch(fr, s)
	default:
		in.fail("cannot execute %T", s)
	}
	return ctrlNormal, nil
}

// execTry implements try/catch/finally with Java semantics (modulo
// abrupt-completion interactions inside finally, which override).
func (in *Interp) execTry(fr *frame, s *ast.TryStmt) (c ctrl, v Value) {
	var rethrow *mjThrow
	c, v = func() (c ctrl, v Value) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			th, ok := r.(*mjThrow)
			if !ok {
				panic(r)
			}
			for _, cc := range s.Catches {
				if in.catches(fr, cc, th.val) {
					fr.push()
					fr.declare(cc.Name, th.val)
					c, v = in.execBlock(fr, cc.Body)
					fr.pop()
					return
				}
			}
			rethrow = th
		}()
		return in.execBlock(fr, s.Body)
	}()
	if s.Finally != nil {
		fc, fv := in.execBlock(fr, s.Finally)
		if fc != ctrlNormal {
			return fc, fv // finally overrides
		}
	}
	if rethrow != nil {
		panic(rethrow)
	}
	return c, v
}

func (in *Interp) catches(fr *frame, cc *ast.CatchClause, exc *Object) bool {
	t := in.resolveType(fr, cc.Type)
	if t.Class == nil {
		return true // unresolved handler type: catch everything (lenient)
	}
	return exc.Class != nil && exc.Class.SubtypeOf(t.Class)
}

func (in *Interp) execSwitch(fr *frame, s *ast.SwitchStmt) (ctrl, Value) {
	tag := in.eval(fr, s.Tag)
	start := -1
	for i, cs := range s.Cases {
		if cs.IsDefault {
			continue
		}
		if valueEquals(tag, in.eval(fr, cs.Value)) {
			start = i
			break
		}
	}
	if start < 0 {
		for i, cs := range s.Cases {
			if cs.IsDefault {
				start = i
				break
			}
		}
	}
	if start < 0 {
		return ctrlNormal, nil
	}
	for i := start; i < len(s.Cases); i++ {
		for _, st := range s.Cases[i].Stmts {
			c, v := in.execStmt(fr, st)
			if c == ctrlBreak {
				return ctrlNormal, nil
			}
			if c != ctrlNormal {
				return c, v
			}
		}
	}
	return ctrlNormal, nil
}

func (in *Interp) execAssign(fr *frame, s *ast.AssignStmt) {
	var rhs Value
	if s.Op == "=" {
		rhs = in.eval(fr, s.Value)
	} else {
		cur := in.eval(fr, s.Target)
		rhs = in.binary(s.Op[:1], cur, in.eval(fr, s.Value))
	}
	in.store(fr, s.Target, rhs)
}

func (in *Interp) store(fr *frame, target ast.Expr, v Value) {
	switch t := target.(type) {
	case *ast.VarRef:
		if fr.assign(t.Name, v) {
			return
		}
		if f := fr.class.FieldOf(t.Name); f != nil {
			if f.Mods.Has(ast.ModStatic) {
				in.statics[f.Qualified()] = v
				return
			}
			obj, _ := fr.this.(*Object)
			if obj == nil {
				in.fail("implicit field store without this")
			}
			obj.Fields[t.Name] = v
			return
		}
		in.fail("store to unresolved name %s", t.Name)
	case *ast.FieldAccess:
		if cls := in.classQualifier(fr, t.X); cls != nil {
			if f := cls.FieldOf(t.Name); f != nil {
				in.statics[f.Qualified()] = v
				return
			}
			in.statics[cls.Name+"."+t.Name] = v
			return
		}
		obj := in.evalObject(fr, t.X)
		obj.Fields[t.Name] = v
	case *ast.IndexExpr:
		arr := in.eval(fr, t.X)
		idx := asInt(in.eval(fr, t.Index))
		a, ok := arr.(*Array)
		if !ok {
			in.fail("index store to non-array")
		}
		for int64(len(a.Elems)) <= idx {
			a.Elems = append(a.Elems, nil) // lenient growth
		}
		a.Elems[idx] = v
	default:
		in.fail("invalid assignment target %T", target)
	}
}

func truthy(v Value) bool {
	b, ok := v.(bool)
	return ok && b
}

func asInt(v Value) int64 {
	if i, ok := v.(int64); ok {
		return i
	}
	return 0
}

func valueEquals(a, b Value) bool { return a == b }
