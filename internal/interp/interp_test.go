package interp

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/corpus"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

func buildProg(t testing.TB, srcs map[string]string) *types.Program {
	t.Helper()
	var diags lang.Diagnostics
	var files []*ast.File
	for name, src := range srcs {
		files = append(files, parser.ParseFile(name, src, &diags))
	}
	p := types.Build("t", files, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	return p
}

func entryOf(t testing.TB, p *types.Program, sig string) *types.Method {
	t.Helper()
	for _, m := range p.EntryPoints() {
		if m.Qualified() == sig {
			return m
		}
	}
	t.Fatalf("entry %s not found", sig)
	return nil
}

func checkID(t testing.TB, name string, arity int) secmodel.CheckID {
	t.Helper()
	id, ok := secmodel.CheckByName(name, arity)
	if !ok {
		t.Fatalf("unknown check %s/%d", name, arity)
	}
	return id
}

const tinyRT = `
package java.lang;
public class Object { }
public class String { }
public class Exception { }
public class RuntimeException extends Exception { }
public class SecurityException extends RuntimeException { }
public class SecurityManager {
  public void checkRead(String f) { }
  public void checkWrite(String f) { }
  public void checkExit(int s) { }
}
`

func run(t testing.TB, perms Permissions, sig string, extra string) *Outcome {
	t.Helper()
	p := buildProg(t, map[string]string{"rt.mj": tinyRT, "lib.mj": extra})
	in := New(p, DefaultConfig(perms))
	return in.CallEntry(entryOf(t, p, sig))
}

const basicLib = `
package api;
import java.lang.*;
public class F {
  private SecurityManager sm;
  public int work(String path, int n) {
    sm.checkRead(path);
    int total = 0;
    for (int i = 0; i < 3; i++) { total = total + i; }
    raw0(path);
    return total;
  }
  native void raw0(String path);
}
`

func TestAllowedCheckRunsNative(t *testing.T) {
	out := run(t, AllowAll(), "api.F.work(String,int)", basicLib)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.Thrown != nil {
		t.Fatalf("unexpected throw: %v", out.Thrown)
	}
	if !out.CalledNative("raw0") {
		t.Errorf("native not called: %v", out.Trace)
	}
	if got := asInt(out.Result); got != 3 { // 0+1+2
		t.Errorf("result = %d", got)
	}
}

func TestDeniedCheckThrowsBeforeNative(t *testing.T) {
	out := run(t, Deny(checkID(t, "checkRead", 1)), "api.F.work(String,int)", basicLib)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !out.SecurityViolation {
		t.Fatalf("no security violation: %+v", out)
	}
	if out.CalledNative("raw0") {
		t.Error("native ran despite denied check")
	}
}

func TestPrivilegedCheckAlwaysPasses(t *testing.T) {
	src := `
package api;
import java.lang.*;
import java.security.*;
public class P {
  public int go(String s) {
    Object r = AccessController.doPrivileged(new ReadAction(s));
    return 1;
  }
}
class ReadAction implements PrivilegedAction {
  private String s;
  private SecurityManager sm;
  ReadAction(String s) { this.s = s; }
  public Object run() {
    sm.checkRead(s);
    P.read0(s);
    return null;
  }
}
`
	rtPlus := tinyRT
	acSrc := `
package java.security;
import java.lang.*;
public interface PrivilegedAction { Object run(); }
public class AccessController {
  public static Object doPrivileged(PrivilegedAction a) { return a.run(); }
}
`
	p := buildProg(t, map[string]string{
		"rt.mj": rtPlus, "ac.mj": acSrc,
		"lib.mj": src + "\n", "nat.mj": `package api; import java.lang.*; public class Nat { }`,
	})
	_ = p
	// read0 must exist on P; rebuild with it included.
	p = buildProg(t, map[string]string{
		"rt.mj": rtPlus, "ac.mj": acSrc,
		"lib.mj": `
package api;
import java.lang.*;
import java.security.*;
public class P {
  public int go(String s) {
    Object r = AccessController.doPrivileged(new ReadAction(s));
    return 1;
  }
  static native void read0(String s);
}
class ReadAction implements PrivilegedAction {
  private String s;
  private SecurityManager sm;
  ReadAction(String s) { this.s = s; }
  public Object run() {
    sm.checkRead(s);
    P.read0(s);
    return null;
  }
}
`})
	in := New(p, DefaultConfig(Deny(checkID(t, "checkRead", 1))))
	out := in.CallEntry(entryOf(t, p, "api.P.go(String)"))
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if out.SecurityViolation {
		t.Error("privileged check was denied")
	}
	if !out.CalledNative("read0") {
		t.Errorf("native not reached: %v", out.Trace)
	}
	foundPriv := false
	for _, e := range out.Trace {
		if e.Kind == CheckPrivileged {
			foundPriv = true
		}
	}
	if !foundPriv {
		t.Errorf("privileged check not traced: %v", out.Trace)
	}
}

func TestTryCatchSemantics(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class T {
  public int m(boolean k) {
    int state = 0;
    try {
      if (k) { throw new RuntimeException(); }
      state = 1;
    } catch (RuntimeException e) {
      state = 2;
    } finally {
      state = state + 10;
    }
    return state;
  }
}
`
	out := run(t, AllowAll(), "api.T.m(boolean)", src)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	// Synthesized boolean arg is false → no throw → 1 + 10.
	if got := asInt(out.Result); got != 11 {
		t.Errorf("result = %d, want 11", got)
	}
}

func TestUncaughtExceptionPropagates(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class T {
  public void m() {
    throw new RuntimeException();
  }
}
`
	out := run(t, AllowAll(), "api.T.m()", src)
	if out.Thrown == nil || out.Thrown.Class.Simple != "RuntimeException" {
		t.Errorf("thrown = %v", out.Thrown)
	}
	if out.SecurityViolation {
		t.Error("plain exception marked as security violation")
	}
}

func TestCatchOfSupertypeCatchesSubtype(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class T {
  public int m() {
    try {
      throw new SecurityException();
    } catch (Exception e) {
      return 7;
    }
  }
}
`
	out := run(t, AllowAll(), "api.T.m()", src)
	if asInt(out.Result) != 7 {
		t.Errorf("result = %v (thrown %v)", out.Result, out.Thrown)
	}
}

func TestVirtualDispatch(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Base {
  public int tag() { return 1; }
}
public class Sub extends Base {
  public int tag() { return 2; }
}
public class App {
  public int m() {
    Base b = new Sub();
    return b.tag();
  }
}
`
	out := run(t, AllowAll(), "api.App.m()", src)
	if asInt(out.Result) != 2 {
		t.Errorf("dispatch result = %v", out.Result)
	}
}

func TestCtorDelegationAndFields(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Pair {
  private int a;
  private int b;
  public Pair(int a) { this(a, 10); }
  public Pair(int a, int b) { this.a = a; this.b = b; }
  public int sum() { return a + b; }
  public static int drive() {
    Pair p = new Pair(5);
    return p.sum();
  }
}
`
	out := run(t, AllowAll(), "api.Pair.drive()", src)
	if asInt(out.Result) != 15 {
		t.Errorf("result = %v", out.Result)
	}
}

func TestInfiniteLoopRunsOutOfFuel(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class L {
  public void spin() {
    while (true) { }
  }
}
`
	p := buildProg(t, map[string]string{"rt.mj": tinyRT, "lib.mj": src})
	cfg := DefaultConfig(AllowAll())
	cfg.Fuel = 1000
	in := New(p, cfg)
	out := in.CallEntry(entryOf(t, p, "api.L.spin()"))
	if out.Err == nil {
		t.Error("expected fuel exhaustion")
	}
}

func TestSwitchExecution(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class S {
  public int pick(int k) {
    int r = 0;
    switch (k + 2) {
    case 1: r = 10; break;
    case 2: r = 20;
    case 3: r = r + 30; break;
    default: r = 99;
    }
    return r;
  }
}
`
	out := run(t, AllowAll(), "api.S.pick(int)", src)
	// Synthesized int arg is 0 → k+2 == 2 → r=20 then fallthrough +30.
	if asInt(out.Result) != 50 {
		t.Errorf("result = %v", out.Result)
	}
}

func TestStringIntrinsics(t *testing.T) {
	src := `
package api;
import java.lang.*;
public class Str {
  public boolean m(String s) {
    String t = s + "!";
    return t.isEmpty();
  }
}
`
	out := run(t, AllowAll(), "api.Str.m(String)", src)
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if truthy(out.Result) {
		t.Error("concatenated string reported empty")
	}
}

// TestFigure1WitnessedDynamically executes the Figure 1 entry points of the
// bundled corpora under a manager that denies checkAccept: Harmony
// performs the network connect anyway (the hole), the JDK throws first.
func TestFigure1WitnessedDynamically(t *testing.T) {
	deny := Deny(checkID(t, "checkAccept", 2))
	const entry = "java.net.DatagramSocket.connect(InetAddress,int)"

	jdkProg := buildProg(t, corpus.JDKSources())
	jdkOut := New(jdkProg, DefaultConfig(deny)).CallEntry(entryOf(t, jdkProg, entry))
	if jdkOut.Err != nil {
		t.Fatal(jdkOut.Err)
	}
	if !jdkOut.SecurityViolation {
		t.Errorf("jdk did not enforce checkAccept: %v", jdkOut.Trace)
	}
	if jdkOut.CalledNative("connect0") {
		t.Error("jdk connected despite denial")
	}

	harmonyProg := buildProg(t, corpus.HarmonySources())
	harmonyOut := New(harmonyProg, DefaultConfig(deny)).CallEntry(entryOf(t, harmonyProg, entry))
	if harmonyOut.Err != nil {
		t.Fatal(harmonyOut.Err)
	}
	if harmonyOut.SecurityViolation {
		t.Error("harmony unexpectedly enforced checkAccept")
	}
	if !harmonyOut.CalledNative("connect0") {
		t.Errorf("harmony did not reach the native connect: %v", harmonyOut.Trace)
	}
}
