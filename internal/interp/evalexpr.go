package interp

import (
	"policyoracle/internal/ast"
	"policyoracle/internal/types"
)

func (in *Interp) resolveType(fr *frame, tr ast.TypeRef) types.Type {
	switch tr.Name {
	case "":
		return types.Type{Prim: "void"}
	case "void", "boolean", "int", "long", "char", "byte", "short", "float", "double":
		return types.Type{Prim: tr.Name, Dims: tr.Dims}
	}
	if c := in.prog.Lookup(tr.Name, fr.class.File); c != nil {
		return types.Type{Class: c, Dims: tr.Dims}
	}
	return types.Type{Named: tr.Name, Dims: tr.Dims}
}

// classQualifier mirrors the lowering's rule for interpreting an
// expression as a class-name prefix.
func (in *Interp) classQualifier(fr *frame, x ast.Expr) *types.Class {
	name, ok := qualifierName(x)
	if !ok {
		return nil
	}
	if v, isVar := x.(*ast.VarRef); isVar {
		if _, shadowed := fr.lookup(v.Name); shadowed {
			return nil
		}
		if fr.class.FieldOf(v.Name) != nil {
			return nil
		}
	}
	return in.prog.Lookup(name, fr.class.File)
}

func qualifierName(x ast.Expr) (string, bool) {
	switch x := x.(type) {
	case *ast.VarRef:
		return x.Name, true
	case *ast.FieldAccess:
		if p, ok := qualifierName(x.X); ok {
			return p + "." + x.Name, true
		}
	}
	return "", false
}

// evalObject evaluates e and requires an object, synthesizing through null
// when configured.
func (in *Interp) evalObject(fr *frame, e ast.Expr) *Object {
	v := in.eval(fr, e)
	if obj, ok := v.(*Object); ok {
		return obj
	}
	in.fail("expected object, got %v", v)
	return nil
}

// fieldValue reads a field, lazily synthesizing null reference values so
// library code can run without a caller-provided object graph.
func (in *Interp) fieldValue(owner *Object, f *types.Field, name string) Value {
	key := name
	var cur Value
	var ok bool
	if f != nil && f.Mods.Has(ast.ModStatic) {
		key = f.Qualified()
		cur, ok = in.statics[key]
	} else if owner != nil {
		cur, ok = owner.Fields[name]
	}
	if ok && cur != nil {
		return cur
	}
	if f == nil {
		return nil
	}
	if cur == nil && in.cfg.SynthesizeObjects && f.Type.Class != nil && f.Type.Dims == 0 {
		v := in.synthesizeOf(f.Type.Class)
		if f.Mods.Has(ast.ModStatic) {
			in.statics[key] = v
		} else if owner != nil {
			owner.Fields[name] = v
		}
		return v
	}
	if !ok {
		return in.zeroOf(f.Type)
	}
	return cur
}

func (in *Interp) eval(fr *frame, e ast.Expr) Value {
	in.burn()
	switch e := e.(type) {
	case *ast.Literal:
		switch e.Kind {
		case ast.LitInt, ast.LitChar:
			return e.Int
		case ast.LitBool:
			return e.Bool
		case ast.LitString:
			return e.Str
		case ast.LitNull:
			return nil
		}
	case *ast.VarRef:
		if e.Name == "this" {
			return fr.this
		}
		if v, ok := fr.lookup(e.Name); ok {
			return v
		}
		if f := fr.class.FieldOf(e.Name); f != nil {
			if f.Mods.Has(ast.ModStatic) {
				return in.fieldValue(nil, f, e.Name)
			}
			obj, _ := fr.this.(*Object)
			return in.fieldValue(obj, f, e.Name)
		}
		in.fail("unresolved name %s", e.Name)
	case *ast.FieldAccess:
		if cls := in.classQualifier(fr, e.X); cls != nil {
			return in.fieldValue(nil, cls.FieldOf(e.Name), e.Name)
		}
		v := in.eval(fr, e.X)
		switch v := v.(type) {
		case *Object:
			var f *types.Field
			if v.Class != nil {
				f = v.Class.FieldOf(e.Name)
			}
			return in.fieldValue(v, f, e.Name)
		case *Array:
			if e.Name == "length" {
				return int64(len(v.Elems))
			}
		case nil:
			in.fail("field %s of null", e.Name)
		}
		in.fail("field %s of non-object", e.Name)
	case *ast.IndexExpr:
		arr, _ := in.eval(fr, e.X).(*Array)
		idx := asInt(in.eval(fr, e.Index))
		if arr == nil || idx < 0 || idx >= int64(len(arr.Elems)) {
			return nil // lenient out-of-bounds read
		}
		return arr.Elems[idx]
	case *ast.CallExpr:
		return in.evalCall(fr, e)
	case *ast.NewExpr:
		return in.evalNew(fr, e)
	case *ast.NewArrayExpr:
		n := int64(len(e.Elems))
		if e.Len != nil {
			n = asInt(in.eval(fr, e.Len))
		}
		if n < 0 || n > 1<<16 {
			n = 0
		}
		a := &Array{Elems: make([]Value, n)}
		for i, el := range e.Elems {
			a.Elems[i] = in.eval(fr, el)
		}
		return a
	case *ast.UnaryExpr:
		v := in.eval(fr, e.X)
		switch e.Op {
		case "!":
			return !truthy(v)
		case "-":
			return -asInt(v)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case "&&":
			return truthy(in.eval(fr, e.X)) && truthy(in.eval(fr, e.Y))
		case "||":
			return truthy(in.eval(fr, e.X)) || truthy(in.eval(fr, e.Y))
		}
		return in.binary(e.Op, in.eval(fr, e.X), in.eval(fr, e.Y))
	case *ast.CondExpr:
		if truthy(in.eval(fr, e.Cond)) {
			return in.eval(fr, e.Then)
		}
		return in.eval(fr, e.Else)
	case *ast.CastExpr:
		v := in.eval(fr, e.X)
		// Downcast refinement: a synthesized object cast to a subtype is
		// re-classed so subtype members resolve — the cast documents what
		// the library expects a real caller to pass (harness heuristic).
		if obj, ok := v.(*Object); ok && in.cfg.SynthesizeObjects {
			t := in.resolveType(fr, e.Type)
			if t.Class != nil && obj.Class != nil && t.Class != obj.Class &&
				t.Class.SubtypeOf(obj.Class) && !t.Class.IsInterface {
				obj.Class = t.Class
				for k := t.Class; k != nil; k = k.Super {
					for _, f := range k.Fields {
						if f.Mods.Has(ast.ModStatic) {
							continue
						}
						if _, has := obj.Fields[f.Name]; !has {
							obj.Fields[f.Name] = in.syntheticZero(f.Type)
						}
					}
				}
			}
		}
		return v
	case *ast.InstanceOfExpr:
		v := in.eval(fr, e.X)
		t := in.resolveType(fr, e.Type)
		obj, ok := v.(*Object)
		if !ok || t.Class == nil {
			if s, isStr := v.(string); isStr {
				_ = s
				return t.Class != nil && t.Class.Simple == "String"
			}
			return false
		}
		return obj.Class.SubtypeOf(t.Class)
	case *ast.IncDecExpr:
		cur := asInt(in.eval(fr, e.X))
		next := cur + 1
		if e.Op == "--" {
			next = cur - 1
		}
		in.store(fr, e.X, next)
		return next
	}
	in.fail("cannot evaluate %T", e)
	return nil
}

func (in *Interp) binary(op string, x, y Value) Value {
	// String concatenation.
	if op == "+" {
		if xs, ok := x.(string); ok {
			return xs + stringify(y)
		}
		if ys, ok := y.(string); ok {
			return stringify(x) + ys
		}
	}
	switch op {
	case "==":
		return valueEquals(x, y)
	case "!=":
		return !valueEquals(x, y)
	}
	a, b := asInt(x), asInt(y)
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		if b == 0 {
			return int64(0) // lenient division by zero
		}
		return a / b
	case "%":
		if b == 0 {
			return int64(0)
		}
		return a % b
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case ">=":
		return a >= b
	case "&":
		if xb, ok := x.(bool); ok {
			return xb && truthy(y)
		}
		return a & b
	case "|":
		if xb, ok := x.(bool); ok {
			return xb || truthy(y)
		}
		return a | b
	case "^":
		return a ^ b
	}
	in.fail("unknown operator %s", op)
	return nil
}

func stringify(v Value) string {
	switch v := v.(type) {
	case string:
		return v
	case nil:
		return "null"
	case bool:
		if v {
			return "true"
		}
		return "false"
	case int64:
		digits := "0123456789"
		if v == 0 {
			return "0"
		}
		neg := v < 0
		if neg {
			v = -v
		}
		var buf []byte
		for v > 0 {
			buf = append([]byte{digits[v%10]}, buf...)
			v /= 10
		}
		if neg {
			return "-" + string(buf)
		}
		return string(buf)
	case *Object:
		return v.String()
	}
	return "?"
}

func (in *Interp) evalNew(fr *frame, e *ast.NewExpr) Value {
	t := in.resolveType(fr, e.Type)
	if t.Class == nil {
		in.fail("new of unresolved class %s", e.Type.Name)
	}
	obj := in.newObject(t.Class)
	var args []Value
	for _, a := range e.Args {
		args = append(args, in.eval(fr, a))
	}
	for _, ctor := range t.Class.MethodsNamed("<init>") {
		if len(ctor.Params) == len(args) {
			in.invoke(ctor, obj, args)
			break
		}
	}
	return obj
}

func (in *Interp) evalCall(fr *frame, e *ast.CallExpr) Value {
	evalArgs := func() []Value {
		var args []Value
		for _, a := range e.Args {
			args = append(args, in.eval(fr, a))
		}
		return args
	}

	// this(...) / super(...) constructor delegation.
	if e.Recv == nil && (e.Name == "this" || e.Name == "super") {
		target := fr.class
		if e.Name == "super" {
			target = fr.class.Super
		}
		args := evalArgs()
		if target != nil {
			for _, ctor := range target.MethodsNamed("<init>") {
				if len(ctor.Params) == len(args) {
					return in.invoke(ctor, fr.this, args)
				}
			}
		}
		return nil
	}

	// super.m(...): non-virtual dispatch starting at the superclass.
	if vr, ok := e.Recv.(*ast.VarRef); ok && vr.Name == "super" {
		args := evalArgs()
		if fr.class.Super != nil {
			if m := fr.class.Super.LookupMethod(e.Name, len(args)); m != nil {
				return in.invoke(m, fr.this, args)
			}
		}
		in.fail("unresolved super call %s", e.Name)
	}

	// Class-qualified static call.
	if e.Recv != nil {
		if cls := in.classQualifier(fr, e.Recv); cls != nil {
			args := evalArgs()
			if m := cls.LookupMethod(e.Name, len(args)); m != nil {
				return in.invoke(m, nil, args)
			}
			in.fail("unresolved static call %s.%s", cls.Simple, e.Name)
		}
	}

	// Unqualified call: implicit this or static of the current class.
	if e.Recv == nil {
		args := evalArgs()
		m := fr.class.LookupMethod(e.Name, len(args))
		if m == nil {
			in.fail("unresolved call %s in %s", e.Name, fr.class.Name)
		}
		if m.IsStatic() {
			return in.invoke(m, nil, args)
		}
		return in.dispatch(fr.this, m, args)
	}

	// Virtual call through an expression receiver.
	recv := in.eval(fr, e.Recv)
	args := evalArgs()
	switch recv := recv.(type) {
	case *Object:
		m := recv.Class.LookupMethod(e.Name, len(args))
		if m == nil {
			in.fail("unresolved call %s on %s", e.Name, recv.Class.Name)
		}
		return in.invoke(m, recv, args)
	case string:
		return in.stringMethod(recv, e.Name, args)
	case nil:
		in.fail("call %s on null", e.Name)
	}
	in.fail("call %s on non-object", e.Name)
	return nil
}

// dispatch performs virtual dispatch on the receiver's runtime class.
func (in *Interp) dispatch(recv Value, declared *types.Method, args []Value) Value {
	obj, ok := recv.(*Object)
	if !ok {
		return in.invoke(declared, recv, args)
	}
	if m := obj.Class.LookupMethod(declared.Name, len(args)); m != nil {
		return in.invoke(m, obj, args)
	}
	return in.invoke(declared, obj, args)
}

// stringMethod implements the String intrinsics the corpus uses.
func (in *Interp) stringMethod(s string, name string, args []Value) Value {
	switch name {
	case "length":
		return int64(len(s))
	case "isEmpty":
		return len(s) == 0
	case "charAt":
		i := asInt(args[0])
		if i < 0 || i >= int64(len(s)) {
			return int64(0)
		}
		return int64(s[i])
	case "equals":
		other, _ := args[0].(string)
		return s == other
	case "hashCode":
		var h int64
		for i := 0; i < len(s); i++ {
			h = h*31 + int64(s[i])
		}
		return h
	case "toString":
		return s
	}
	in.fail("unknown String method %s", name)
	return nil
}
