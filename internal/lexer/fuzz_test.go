package lexer_test

import (
	"testing"

	"policyoracle/internal/lang"
	"policyoracle/internal/lexer"
	"policyoracle/internal/token"
)

// FuzzLexer asserts the scanner's safety contract on arbitrary bytes: it
// never panics, terminates with exactly one trailing EOF, keeps token
// offsets nondecreasing and inside the input, stamps every token and
// every diagnostic with a 1-based line:col position, and is
// deterministic.
func FuzzLexer(f *testing.F) {
	seeds := []string{
		"",
		"package p; class C { }",
		"int x = 0x1fL; String s = \"a\\n\\\"b\"; char c = '\\t';",
		"/* block */ // line\nif (a <= b && c != d) { a += 1; }",
		"a.b.c(...); x[i] >= y ? p : q; m(--n, i++);",
		"\"unterminated",
		"'c",
		"/* never closed",
		"\x00\xff\x80 @#`~\\",
		"0x 0XG 9999999999999999999999L",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		var d lang.Diagnostics
		toks := lexer.Tokenize("fuzz.mj", src, &d)
		if len(toks) == 0 {
			t.Fatal("no tokens: Tokenize must end with EOF")
		}
		prev := -1
		for i, tk := range toks {
			last := i == len(toks)-1
			if (tk.Kind == token.EOF) != last {
				t.Fatalf("EOF placement: token %d/%d is %v", i, len(toks), tk.Kind)
			}
			if tk.Pos.Offset < prev || tk.Pos.Offset > len(src) {
				t.Fatalf("token %d offset %d out of order (prev %d, len %d)",
					i, tk.Pos.Offset, prev, len(src))
			}
			if tk.Pos.Line < 1 || tk.Pos.Col < 1 {
				t.Fatalf("token %d has unpositioned Pos %+v", i, tk.Pos)
			}
			prev = tk.Pos.Offset
		}
		for _, diag := range d.All() {
			if !diag.Pos.IsValid() || diag.Pos.Col < 1 {
				t.Errorf("diagnostic without line:col position: %v", diag)
			}
		}
		var d2 lang.Diagnostics
		again := lexer.Tokenize("fuzz.mj", src, &d2)
		if len(again) != len(toks) || d2.Len() != d.Len() {
			t.Fatalf("nondeterministic scan: %d/%d tokens, %d/%d diagnostics",
				len(toks), len(again), d.Len(), d2.Len())
		}
	})
}
