package lexer

import (
	"testing"

	"policyoracle/internal/lang"
	"policyoracle/internal/token"
)

func scan(t *testing.T, src string) []Token {
	t.Helper()
	var diags lang.Diagnostics
	toks := Tokenize("test.mj", src, &diags)
	if diags.HasErrors() {
		t.Fatalf("unexpected scan errors: %v", diags.Err())
	}
	return toks
}

func kinds(toks []Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	toks := scan(t, "public class Foo extends Bar")
	want := []token.Kind{token.KwPublic, token.KwClass, token.Ident, token.KwExtends, token.Ident, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[2].Text != "Foo" || toks[4].Text != "Bar" {
		t.Errorf("identifier text wrong: %v", toks)
	}
}

func TestOperators(t *testing.T) {
	toks := scan(t, "a == b != c <= d >= e && f || !g + h - i * j / k % l & m | n ^ o")
	var ops []token.Kind
	for _, tk := range toks {
		if tk.Kind != token.Ident && tk.Kind != token.EOF {
			ops = append(ops, tk.Kind)
		}
	}
	want := []token.Kind{token.Eq, token.NotEq, token.LtEq, token.GtEq, token.AndAnd,
		token.OrOr, token.Not, token.Plus, token.Minus, token.Star, token.Slash,
		token.Percent, token.BitAnd, token.BitOr, token.Caret}
	if len(ops) != len(want) {
		t.Fatalf("got %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d: got %s, want %s", i, ops[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks := scan(t, "0 42 0x1F 100L")
	texts := []string{"0", "42", "0x1F", "100"}
	for i, want := range texts {
		if toks[i].Kind != token.IntLit {
			t.Errorf("token %d: got kind %s, want IntLit", i, toks[i].Kind)
		}
		if toks[i].Text != want {
			t.Errorf("token %d: got text %q, want %q", i, toks[i].Text, want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	toks := scan(t, `"ISO-8859-1" "a\nb" "q\"q"`)
	want := []string{"ISO-8859-1", "a\nb", `q"q`}
	for i, w := range want {
		if toks[i].Kind != token.StringLit || toks[i].Text != w {
			t.Errorf("token %d: got %q (%s), want %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestCharLiteral(t *testing.T) {
	toks := scan(t, `'a' '\n'`)
	if toks[0].Kind != token.CharLit || toks[0].Text != "a" {
		t.Errorf("got %v", toks[0])
	}
	if toks[1].Kind != token.CharLit || toks[1].Text != "\n" {
		t.Errorf("got %v", toks[1])
	}
}

func TestComments(t *testing.T) {
	toks := scan(t, "a // line comment\n b /* block\n comment */ c")
	got := kinds(toks)
	want := []token.Kind{token.Ident, token.Ident, token.Ident, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
}

func TestPositions(t *testing.T) {
	toks := scan(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("token a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("token b at %v", toks[1].Pos)
	}
}

func TestUnterminatedString(t *testing.T) {
	var diags lang.Diagnostics
	Tokenize("t.mj", `"abc`, &diags)
	if !diags.HasErrors() {
		t.Error("expected error for unterminated string")
	}
}

func TestUnterminatedComment(t *testing.T) {
	var diags lang.Diagnostics
	Tokenize("t.mj", "/* never closed", &diags)
	if !diags.HasErrors() {
		t.Error("expected error for unterminated comment")
	}
}

func TestUnexpectedChar(t *testing.T) {
	var diags lang.Diagnostics
	toks := Tokenize("t.mj", "a # b", &diags)
	if !diags.HasErrors() {
		t.Error("expected error for '#'")
	}
	// Scanning continues past the bad character.
	var idents int
	for _, tk := range toks {
		if tk.Kind == token.Ident {
			idents++
		}
	}
	if idents != 2 {
		t.Errorf("got %d identifiers, want 2", idents)
	}
}

func TestEllipsisAndDots(t *testing.T) {
	toks := scan(t, "a.b ... c")
	got := kinds(toks)
	want := []token.Kind{token.Ident, token.Dot, token.Ident, token.Ellipsis, token.Ident, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	toks := scan(t, "a += b -= c *= d /= e ++ f --")
	var ops []token.Kind
	for _, tk := range toks {
		if tk.Kind != token.Ident && tk.Kind != token.EOF {
			ops = append(ops, tk.Kind)
		}
	}
	want := []token.Kind{token.PlusEq, token.MinusEq, token.StarEq, token.SlashEq,
		token.PlusPlus, token.MinusLess}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %s, want %s", i, ops[i], want[i])
		}
	}
}

func TestTokenStringForms(t *testing.T) {
	toks := scan(t, `name 42 "s" 'c' +`)
	for _, tk := range toks {
		if tk.String() == "" {
			t.Errorf("empty String() for %v", tk.Kind)
		}
	}
	if got := toks[0].String(); got != "identifier name" {
		t.Errorf("ident string = %q", got)
	}
	if got := toks[4].String(); got != "+" {
		t.Errorf("op string = %q", got)
	}
}

func TestKindStringCoverage(t *testing.T) {
	for k := token.Invalid; k <= token.KwCast; k++ {
		if token.Kind(k).String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if token.Kind(9999).String() != "kind(9999)" {
		t.Error("unknown kind fallback wrong")
	}
}
