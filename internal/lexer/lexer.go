// Package lexer implements a hand-written scanner for MJ source text.
package lexer

import (
	"strings"

	"policyoracle/internal/lang"
	"policyoracle/internal/token"
)

// Token is a lexical token with its source span and literal text.
type Token struct {
	Kind token.Kind
	Text string
	Pos  lang.Pos
}

func (t Token) String() string {
	switch t.Kind {
	case token.Ident, token.IntLit, token.StringLit, token.CharLit:
		return t.Kind.String() + " " + t.Text
	default:
		return t.Kind.String()
	}
}

// Lexer scans MJ source text into tokens. Create one with New.
type Lexer struct {
	src   string
	file  string
	off   int
	line  int
	col   int
	diags *lang.Diagnostics
}

// New returns a Lexer over src. file names the source for positions and
// diags receives scan errors (it must be non-nil).
func New(file, src string, diags *lang.Diagnostics) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1, diags: diags}
}

// Tokenize scans the entire input and returns all tokens, ending with EOF.
func Tokenize(file, src string, diags *lang.Diagnostics) []Token {
	lx := New(file, src, diags)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (lx *Lexer) pos() lang.Pos {
	return lang.Pos{File: lx.file, Offset: lx.off, Line: lx.line, Col: lx.col}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peekAt(1) == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekAt(1) == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.diags.Errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next scans and returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: token.EOF, Pos: pos}
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.scanIdent(pos)
	case isDigit(c):
		return lx.scanNumber(pos)
	case c == '"':
		return lx.scanString(pos)
	case c == '\'':
		return lx.scanChar(pos)
	}
	return lx.scanOperator(pos)
}

func (lx *Lexer) scanIdent(pos lang.Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := token.Keywords[text]; ok {
		return Token{Kind: kw, Text: text, Pos: pos}
	}
	return Token{Kind: token.Ident, Text: text, Pos: pos}
}

func (lx *Lexer) scanNumber(pos lang.Pos) Token {
	start := lx.off
	if lx.peek() == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
	}
	// Long suffix is accepted and dropped.
	if lx.off < len(lx.src) && (lx.peek() == 'L' || lx.peek() == 'l') {
		lx.advance()
		return Token{Kind: token.IntLit, Text: lx.src[start : lx.off-1], Pos: pos}
	}
	return Token{Kind: token.IntLit, Text: lx.src[start:lx.off], Pos: pos}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *Lexer) scanString(pos lang.Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) || lx.peek() == '\n' {
			lx.diags.Errorf(pos, "unterminated string literal")
			break
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				lx.diags.Errorf(pos, "unterminated string literal")
				break
			}
			sb.WriteByte(unescape(lx.advance()))
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: token.StringLit, Text: sb.String(), Pos: pos}
}

func (lx *Lexer) scanChar(pos lang.Pos) Token {
	lx.advance() // opening quote
	var val byte
	if lx.off < len(lx.src) {
		c := lx.advance()
		if c == '\\' && lx.off < len(lx.src) {
			val = unescape(lx.advance())
		} else {
			val = c
		}
	}
	if lx.off < len(lx.src) && lx.peek() == '\'' {
		lx.advance()
	} else {
		lx.diags.Errorf(pos, "unterminated char literal")
	}
	return Token{Kind: token.CharLit, Text: string(val), Pos: pos}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}

func (lx *Lexer) scanOperator(pos lang.Pos) Token {
	two := func(k token.Kind) Token {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Text: lx.src[pos.Offset:lx.off], Pos: pos}
	}
	one := func(k token.Kind) Token {
		lx.advance()
		return Token{Kind: k, Text: lx.src[pos.Offset:lx.off], Pos: pos}
	}
	c, d := lx.peek(), lx.peekAt(1)
	switch c {
	case '(':
		return one(token.LParen)
	case ')':
		return one(token.RParen)
	case '{':
		return one(token.LBrace)
	case '}':
		return one(token.RBrace)
	case '[':
		return one(token.LBracket)
	case ']':
		return one(token.RBracket)
	case ';':
		return one(token.Semi)
	case ',':
		return one(token.Comma)
	case '.':
		if d == '.' && lx.peekAt(2) == '.' {
			lx.advance()
			lx.advance()
			lx.advance()
			return Token{Kind: token.Ellipsis, Text: "...", Pos: pos}
		}
		return one(token.Dot)
	case '?':
		return one(token.Question)
	case ':':
		return one(token.Colon)
	case '@':
		return one(token.At)
	case '=':
		if d == '=' {
			return two(token.Eq)
		}
		return one(token.Assign)
	case '+':
		if d == '+' {
			return two(token.PlusPlus)
		}
		if d == '=' {
			return two(token.PlusEq)
		}
		return one(token.Plus)
	case '-':
		if d == '-' {
			return two(token.MinusLess)
		}
		if d == '=' {
			return two(token.MinusEq)
		}
		return one(token.Minus)
	case '*':
		if d == '=' {
			return two(token.StarEq)
		}
		return one(token.Star)
	case '/':
		if d == '=' {
			return two(token.SlashEq)
		}
		return one(token.Slash)
	case '%':
		return one(token.Percent)
	case '!':
		if d == '=' {
			return two(token.NotEq)
		}
		return one(token.Not)
	case '&':
		if d == '&' {
			return two(token.AndAnd)
		}
		return one(token.BitAnd)
	case '|':
		if d == '|' {
			return two(token.OrOr)
		}
		return one(token.BitOr)
	case '^':
		return one(token.Caret)
	case '<':
		if d == '=' {
			return two(token.LtEq)
		}
		return one(token.Lt)
	case '>':
		if d == '=' {
			return two(token.GtEq)
		}
		return one(token.Gt)
	}
	lx.diags.Errorf(pos, "unexpected character %q", string(c))
	lx.advance()
	return Token{Kind: token.Invalid, Text: string(c), Pos: pos}
}
