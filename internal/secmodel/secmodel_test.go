package secmodel

import (
	"strings"
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

func TestCheckTableHas31Entries(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumChecks; i++ {
		name := CheckName(CheckID(i))
		if name == "" || strings.HasPrefix(name, "check#") {
			t.Errorf("check %d has no name", i)
		}
		seen[name] = true
	}
	// Overloads share names, so distinct names < 31.
	if len(seen) >= NumChecks {
		t.Errorf("expected overloaded names, got %d distinct", len(seen))
	}
	if got := len(AllCheckNames()); got != len(seen) {
		t.Errorf("AllCheckNames = %d, want %d", got, len(seen))
	}
}

func TestCheckByName(t *testing.T) {
	id1, ok1 := CheckByName("checkConnect", 2)
	id2, ok2 := CheckByName("checkConnect", 3)
	if !ok1 || !ok2 || id1 == id2 {
		t.Errorf("overloads not distinct: %v/%v %v/%v", id1, ok1, id2, ok2)
	}
	if _, ok := CheckByName("checkConnect", 5); ok {
		t.Error("bogus arity resolved")
	}
	if _, ok := CheckByName("notACheck", 1); ok {
		t.Error("bogus name resolved")
	}
	if CheckName(id1) != "checkConnect" {
		t.Errorf("name roundtrip failed")
	}
}

func buildCalls(t *testing.T, src string) []*ir.Call {
	t.Helper()
	var diags lang.Diagnostics
	files := []*ast.File{parser.ParseFile("t.mj", src, &diags)}
	tp := types.Build("t", files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	var calls []*ir.Call
	for _, m := range tp.AllMethods() {
		f := p.FuncOf(m)
		if f == nil {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(*ir.Call); ok {
					calls = append(calls, c)
				}
			}
		}
	}
	return calls
}

func TestIdentifyCheck(t *testing.T) {
	calls := buildCalls(t, `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkExit(int status) { }
  public void helper() { }
}
public class MySM extends SecurityManager { }
class App {
  SecurityManager sm;
  MySM custom;
  App other;
  void m(int s) {
    sm.checkExit(s);
    custom.checkExit(s);
    sm.helper();
    other.checkExit(s);
  }
  void checkExit(int s) { }
}
`)
	var checks, nonChecks int
	for _, c := range calls {
		if _, ok := IdentifyCheck(c); ok {
			checks++
		} else {
			nonChecks++
		}
	}
	// sm.checkExit and custom.checkExit (subtype receiver) are checks;
	// sm.helper and other.checkExit (wrong class) are not.
	if checks != 2 {
		t.Errorf("got %d checks, want 2", checks)
	}
	if nonChecks != 2 {
		t.Errorf("got %d non-checks, want 2", nonChecks)
	}
}

func TestIsDoPrivilegedAndGetSecurityManager(t *testing.T) {
	calls := buildCalls(t, `
package java.security;
public class Object { }
public interface PrivilegedAction { Object run(); }
public class AccessController {
  public static Object doPrivileged(PrivilegedAction a) { return a.run(); }
}
public class SecurityManager { }
public class System {
  static SecurityManager security;
  public static SecurityManager getSecurityManager() { return security; }
}
class MyAction implements PrivilegedAction {
  public Object run() { return null; }
}
class App {
  void m() {
    AccessController.doPrivileged(new MyAction());
    SecurityManager sm = System.getSecurityManager();
  }
}
`)
	var doPriv, getSM int
	for _, c := range calls {
		if IsDoPrivileged(c) {
			doPriv++
		}
		if IsGetSecurityManager(c) {
			getSM++
		}
	}
	if doPriv != 1 {
		t.Errorf("doPrivileged detections = %d", doPriv)
	}
	if getSM != 1 {
		t.Errorf("getSecurityManager detections = %d", getSM)
	}
}

func TestIsPrivilegedScope(t *testing.T) {
	var diags lang.Diagnostics
	files := []*ast.File{parser.ParseFile("t.mj", `
package java.security;
public class Object { }
public interface PrivilegedAction { Object run(); }
public class AccessController {
  public static Object doPrivileged(PrivilegedAction a) { return a.run(); }
  public static void other() { }
}
`, &diags)}
	tp := types.Build("t", files, &diags)
	ac := tp.Classes["java.security.AccessController"]
	if !IsPrivilegedScope(ac.LookupMethod("doPrivileged", 1)) {
		t.Error("doPrivileged not privileged scope")
	}
	if IsPrivilegedScope(ac.LookupMethod("other", 0)) {
		t.Error("other wrongly privileged")
	}
}

func TestEventStringsAndKeys(t *testing.T) {
	if got := ReturnEvent().String(); got != "return" {
		t.Errorf("return event = %q", got)
	}
	ev := Event{Kind: NativeCall, Key: "connect0/2"}
	if got := ev.String(); got != "native:connect0/2" {
		t.Errorf("native event = %q", got)
	}
	if ParamAccessEvent(3).Key != "p3" {
		t.Errorf("param event = %+v", ParamAccessEvent(3))
	}
}

func TestCheckSetString(t *testing.T) {
	a, _ := CheckByName("checkWrite", 1)
	b, _ := CheckByName("checkAccept", 2)
	bits := uint64(1)<<uint(a) | uint64(1)<<uint(b)
	if got := CheckSetString(bits); got != "{checkAccept, checkWrite}" {
		t.Errorf("got %q", got)
	}
	if CheckSetString(0) != "{}" {
		t.Error("empty set render wrong")
	}
}

func TestEventModeString(t *testing.T) {
	if NarrowEvents.String() != "narrow" || BroadEvents.String() != "broad" {
		t.Error("event mode strings wrong")
	}
}
