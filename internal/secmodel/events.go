package secmodel

import "policyoracle/internal/types"

// EventID is a dense interned id for an Event within one program. IDs are
// assigned when the program model is built (after IR lowering), so the
// analysis hot path records events as small integers instead of hashing
// {kind, key} structs.
type EventID int32

// NoEvent is the id of no event (e.g. the native id of a non-native method).
const NoEvent EventID = -1

// ProgramEvents is the per-program event interning table. It is built
// once per library and is immutable afterwards, so concurrent analysis
// workers share it without locking.
//
// The table is total for one program: every event the analysis can emit —
// the API return, a native call to one of the program's methods, a
// private-field access, a parameter access — is enumerated at build time.
type ProgramEvents struct {
	events  []Event
	byEvent map[Event]EventID

	ret       EventID
	native    []EventID // by Method.ID; NoEvent for non-native methods
	privRead  map[*types.Field]EventID
	privWrite map[*types.Field]EventID
	param     []EventID // by parameter index
}

// BuildProgramEvents enumerates and interns every event the program can
// emit. Registration order (and therefore id order) is deterministic:
// the return event, native events in Method.ID order (overloads sharing
// a name/arity key share an id), private-field events in sorted class
// order, then parameter events by ascending index.
func BuildProgramEvents(p *types.Program) *ProgramEvents {
	pe := &ProgramEvents{
		byEvent:   make(map[Event]EventID),
		privRead:  make(map[*types.Field]EventID),
		privWrite: make(map[*types.Field]EventID),
	}
	pe.ret = pe.intern(ReturnEvent())

	methods := p.AllMethods()
	pe.native = make([]EventID, len(methods))
	maxArity := 0
	for i, m := range methods {
		pe.native[i] = NoEvent
		if m.IsNative() {
			pe.native[i] = pe.intern(NativeEvent(m))
		}
		if len(m.Params) > maxArity {
			maxArity = len(m.Params)
		}
	}
	for _, c := range p.AllClasses() {
		for _, f := range c.Fields {
			if !f.IsPrivate() {
				continue
			}
			pe.privRead[f] = pe.intern(PrivateReadEvent(f))
			pe.privWrite[f] = pe.intern(PrivateWriteEvent(f))
		}
	}
	pe.param = make([]EventID, maxArity)
	for i := range pe.param {
		pe.param[i] = pe.intern(ParamAccessEvent(i))
	}
	return pe
}

func (pe *ProgramEvents) intern(ev Event) EventID {
	if id, ok := pe.byEvent[ev]; ok {
		return id
	}
	id := EventID(len(pe.events))
	pe.events = append(pe.events, ev)
	pe.byEvent[ev] = id
	return id
}

// Len returns the number of interned events.
func (pe *ProgramEvents) Len() int { return len(pe.events) }

// Event returns the event for an interned id.
func (pe *ProgramEvents) Event(id EventID) Event { return pe.events[id] }

// ID returns the interned id for ev, if ev belongs to this program.
func (pe *ProgramEvents) ID(ev Event) (EventID, bool) {
	id, ok := pe.byEvent[ev]
	return id, ok
}

// ReturnID returns the id of the API-return event.
func (pe *ProgramEvents) ReturnID() EventID { return pe.ret }

// NativeID returns the id of the native-call event for m, or NoEvent when
// m is not native.
func (pe *ProgramEvents) NativeID(m *types.Method) EventID { return pe.native[m.ID] }

// PrivateReadID returns the id of the private-read event for f.
func (pe *ProgramEvents) PrivateReadID(f *types.Field) EventID { return pe.privRead[f] }

// PrivateWriteID returns the id of the private-write event for f.
func (pe *ProgramEvents) PrivateWriteID(f *types.Field) EventID { return pe.privWrite[f] }

// ParamID returns the id of the parameter-access event for index i.
func (pe *ProgramEvents) ParamID(i int) EventID { return pe.param[i] }
