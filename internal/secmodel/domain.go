package secmodel

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"policyoracle/internal/ir"
	"policyoracle/internal/types"
)

// CheckDesc describes one check method of a domain's guard class: its
// name and parameter count. Overloads of one name are distinct checks.
type CheckDesc struct {
	Name  string
	Arity int
}

// DomainSpec declares a check domain for NewDomain. A domain is the
// pluggable half of the oracle's model: which class's methods are
// security checks, which calls open privileged scope, and which call
// yields the guard state whose null test AssumeSecurityManager folds.
// The security-sensitive *events* (native calls, API returns, private
// field and parameter accesses) are domain-independent — every domain
// shares the same event definitions and ProgramEvents interning.
type DomainSpec struct {
	// ID is the stable domain identifier. It joins bundle fingerprints,
	// incremental option keys, and the policy wire format, so changing it
	// invalidates every persisted artifact of the domain. Lowercase
	// [a-z0-9-], non-empty.
	ID string
	// GuardClass is the simple name of the class whose methods (matched
	// by name+arity against Checks, on the class or any subtype) are the
	// domain's security checks.
	GuardClass string
	// Checks is the check table. CheckIDs are dense indexes into this
	// slice, so its order is part of the domain's persistent identity.
	// At most 64 checks (check sets are one machine word).
	Checks []CheckDesc
	// PrivilegedClass/PrivilegedMethod identify calls that enter
	// privileged scope (checks inside are semantic no-ops). Both empty
	// means the domain has no privileged-block semantics.
	PrivilegedClass  string
	PrivilegedMethod string
	// StateClass/StateMethod identify the zero-argument guard-state
	// accessor (System.getSecurityManager in the default domain) whose
	// result Config.AssumeSecurityManager assumes non-null. Both empty
	// means the option is inert for this domain.
	StateClass  string
	StateMethod string
}

// Domain is one instantiated check domain. Domains are immutable after
// construction and safe for concurrent use.
type Domain struct {
	id         string
	guardClass string
	checks     []CheckDesc
	index      map[CheckDesc]CheckID

	privClass, privMethod   string
	stateClass, stateMethod string
}

// NewDomain validates a spec and builds a Domain. The domain is not
// registered; call RegisterDomain to make it addressable by ID.
func NewDomain(spec DomainSpec) (*Domain, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("secmodel: domain ID must not be empty")
	}
	for _, r := range spec.ID {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return nil, fmt.Errorf("secmodel: domain ID %q must be lowercase [a-z0-9-]", spec.ID)
		}
	}
	if spec.GuardClass == "" {
		return nil, fmt.Errorf("secmodel: domain %s: guard class must not be empty", spec.ID)
	}
	if len(spec.Checks) == 0 {
		return nil, fmt.Errorf("secmodel: domain %s: check table must not be empty", spec.ID)
	}
	if len(spec.Checks) > 64 {
		return nil, fmt.Errorf("secmodel: domain %s: %d checks exceed the 64-bit check-set word", spec.ID, len(spec.Checks))
	}
	if (spec.PrivilegedClass == "") != (spec.PrivilegedMethod == "") {
		return nil, fmt.Errorf("secmodel: domain %s: privileged class and method must be set together", spec.ID)
	}
	if (spec.StateClass == "") != (spec.StateMethod == "") {
		return nil, fmt.Errorf("secmodel: domain %s: state class and method must be set together", spec.ID)
	}
	d := &Domain{
		id:          spec.ID,
		guardClass:  spec.GuardClass,
		checks:      append([]CheckDesc(nil), spec.Checks...),
		index:       make(map[CheckDesc]CheckID, len(spec.Checks)),
		privClass:   spec.PrivilegedClass,
		privMethod:  spec.PrivilegedMethod,
		stateClass:  spec.StateClass,
		stateMethod: spec.StateMethod,
	}
	for i, c := range d.checks {
		if c.Name == "" || c.Arity < 0 {
			return nil, fmt.Errorf("secmodel: domain %s: invalid check %+v", spec.ID, c)
		}
		if _, dup := d.index[c]; dup {
			return nil, fmt.Errorf("secmodel: domain %s: duplicate check %s/%d", spec.ID, c.Name, c.Arity)
		}
		d.index[c] = CheckID(i)
	}
	return d, nil
}

// ID returns the stable domain identifier.
func (d *Domain) ID() string { return d.id }

// GuardClass returns the simple name of the domain's check-owning class.
func (d *Domain) GuardClass() string { return d.guardClass }

// NumChecks returns the size of the domain's check table.
func (d *Domain) NumChecks() int { return len(d.checks) }

// Checks returns a copy of the check table in CheckID order.
func (d *Domain) Checks() []CheckDesc { return append([]CheckDesc(nil), d.checks...) }

// CheckName returns the method name of a check ID.
func (d *Domain) CheckName(id CheckID) string {
	if int(id) < 0 || int(id) >= len(d.checks) {
		return fmt.Sprintf("check#%d", int(id))
	}
	return d.checks[id].Name
}

// CheckArity returns the parameter count of a check ID, or -1 for an ID
// outside the table.
func (d *Domain) CheckArity(id CheckID) int {
	if int(id) < 0 || int(id) >= len(d.checks) {
		return -1
	}
	return d.checks[id].Arity
}

// CheckByName returns the check ID for a name and arity.
func (d *Domain) CheckByName(name string, arity int) (CheckID, bool) {
	id, ok := d.index[CheckDesc{name, arity}]
	return id, ok
}

// AllCheckNames returns the distinct check method names, sorted.
func (d *Domain) AllCheckNames() []string {
	set := map[string]bool{}
	for _, c := range d.checks {
		set[c.Name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FullMask returns the bitmask with every check of the domain set — the
// MUST lattice's ⊤ element.
func (d *Domain) FullMask() uint64 {
	if len(d.checks) == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(len(d.checks))) - 1
}

// CheckSetString renders a bitset of the domain's checks as sorted names.
func (d *Domain) CheckSetString(bits uint64) string {
	if bits == 0 {
		return "{}"
	}
	var names []string
	for i := 0; i < 64; i++ {
		if bits&(1<<uint(i)) != 0 {
			names = append(names, d.CheckName(CheckID(i)))
		}
	}
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// IdentifyCheck reports whether call invokes one of the domain's checks,
// and which. A call is a check when its resolved declaration (or,
// failing that, its static receiver type) belongs to the guard class or
// a subtype, and the name+arity matches the check table.
func (d *Domain) IdentifyCheck(call *ir.Call) (CheckID, bool) {
	owner := ownerClass(call)
	if owner == nil || !d.isGuardClass(owner) {
		return 0, false
	}
	if id, ok := d.CheckByName(call.Name, len(call.Args)); ok {
		return id, true
	}
	return 0, false
}

func (d *Domain) isGuardClass(c *types.Class) bool {
	for k := c; k != nil; k = k.Super {
		if k.Simple == d.guardClass {
			return true
		}
	}
	return false
}

// IsDoPrivileged reports whether call enters the domain's privileged
// scope. Always false for domains without privileged-block semantics.
func (d *Domain) IsDoPrivileged(call *ir.Call) bool {
	if d.privMethod == "" || call.Name != d.privMethod {
		return false
	}
	owner := ownerClass(call)
	return owner != nil && owner.Simple == d.privClass
}

// IsPrivilegedScope reports whether m's body executes in privileged
// scope (the privileged entry method itself runs with the library's own
// permissions, so checks inside are semantic no-ops).
func (d *Domain) IsPrivilegedScope(m *types.Method) bool {
	return d.privMethod != "" && m.Name == d.privMethod && m.Class.Simple == d.privClass
}

// IsGetSecurityManager reports whether call is the domain's guard-state
// accessor, whose result is assumed non-null under
// Config.AssumeSecurityManager. Always false for domains without one.
func (d *Domain) IsGetSecurityManager(call *ir.Call) bool {
	if d.stateMethod == "" || call.Name != d.stateMethod || len(call.Args) != 0 {
		return false
	}
	owner := ownerClass(call)
	return owner != nil && owner.Simple == d.stateClass
}

// BuildProgramEvents builds the per-program event interning table. Event
// definitions are domain-independent; the method lives on Domain so a
// future domain can narrow or extend them without touching callers.
func (d *Domain) BuildProgramEvents(p *types.Program) *ProgramEvents {
	return BuildProgramEvents(p)
}

// ---------------------------------------------------------------------------
// Registry

// DefaultDomainID is the ID of the registered default domain — the
// paper's SecurityManager model. An empty domain ID everywhere in the
// stack (options, wire formats, requests) resolves to it, which is what
// keeps pre-domain bundles, snapshots, and exports addressable.
const DefaultDomainID = "securitymanager"

// CryptoDomainID is the ID of the bundled crypto-API misuse domain.
const CryptoDomainID = "cryptoapi"

var (
	domainMu  sync.RWMutex
	domains   = map[string]*Domain{}
	defDomain *Domain
	cryptoDom *Domain
)

// RegisterDomain adds a domain to the registry, making it addressable by
// ID from options wires, server requests, and CLI flags. Registering a
// second domain under an existing ID is an error: IDs address persisted
// artifacts, so they must be globally unique.
func RegisterDomain(d *Domain) error {
	if d == nil {
		return fmt.Errorf("secmodel: cannot register a nil domain")
	}
	domainMu.Lock()
	defer domainMu.Unlock()
	if _, dup := domains[d.id]; dup {
		return fmt.Errorf("secmodel: domain %q already registered", d.id)
	}
	domains[d.id] = d
	return nil
}

// ErrUnknownDomain reports a domain ID with no registered domain.
// Callers wrap it so the condition stays detectable with errors.Is
// across every layer (oracle, store, server).
var ErrUnknownDomain = errors.New("unknown check domain")

// ResolveDomain resolves a registered domain by ID, wrapping
// ErrUnknownDomain for unregistered IDs. The empty ID resolves to the
// default SecurityManager domain.
func ResolveDomain(id string) (*Domain, error) {
	d, ok := DomainByID(id)
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownDomain, id, strings.Join(Domains(), ", "))
	}
	return d, nil
}

// DomainByID resolves a registered domain. The empty ID resolves to the
// default SecurityManager domain.
func DomainByID(id string) (*Domain, bool) {
	if id == "" || id == DefaultDomainID {
		return SecurityManager(), true
	}
	domainMu.RLock()
	defer domainMu.RUnlock()
	d, ok := domains[id]
	return d, ok
}

// Domains lists the registered domain IDs, sorted.
func Domains() []string {
	domainMu.RLock()
	defer domainMu.RUnlock()
	out := make([]string, 0, len(domains))
	for id := range domains {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SecurityManager returns the default domain: the paper's model of the
// 31 java.lang.SecurityManager checks, AccessController.doPrivileged
// privileged blocks, and System.getSecurityManager guard state.
func SecurityManager() *Domain { return defDomain }

// CryptoAPI returns the bundled crypto-API misuse domain: cipher, key,
// IV, and randomness hygiene checks (constant or reused IVs, ECB mode,
// short keys, unseeded RNGs, weak digests) owned by a CryptoGuard class,
// guarding the same native-call/API-return events. The domain has no
// privileged-block semantics and no guard-state accessor.
func CryptoAPI() *Domain { return cryptoDom }

func init() {
	specChecks := make([]CheckDesc, len(checkTable))
	for i, c := range checkTable {
		specChecks[i] = CheckDesc{Name: c.Name, Arity: c.Arity}
	}
	var err error
	defDomain, err = NewDomain(DomainSpec{
		ID:               DefaultDomainID,
		GuardClass:       SecurityManagerClass,
		Checks:           specChecks,
		PrivilegedClass:  AccessControllerClass,
		PrivilegedMethod: DoPrivilegedMethod,
		StateClass:       "System",
		StateMethod:      "getSecurityManager",
	})
	if err == nil {
		err = RegisterDomain(defDomain)
	}
	if err == nil {
		cryptoDom, err = NewDomain(DomainSpec{
			ID:         CryptoDomainID,
			GuardClass: CryptoGuardClass,
			Checks:     cryptoChecks,
		})
	}
	if err == nil {
		err = RegisterDomain(cryptoDom)
	}
	if err != nil {
		panic(err)
	}
}

// CryptoGuardClass is the simple name of the crypto domain's check-owning
// class, mirroring SecurityManagerClass.
const CryptoGuardClass = "CryptoGuard"

// cryptoChecks is the crypto-API misuse check table: each check is a
// MUST-precede fact a cipher-call event should be guarded by, per
// "Evaluating Cryptographic API Misuse Detectors" — IV freshness and
// length, mode/padding safety, key size and algorithm, RNG seeding and
// entropy, certificate and hostname validation, digest and tag strength.
var cryptoChecks = []CheckDesc{
	{"checkCertChain", 1},
	{"checkCipherMode", 1},
	{"checkDigestStrength", 1},
	{"checkEntropySource", 0},
	{"checkHostnameVerified", 2},
	{"checkIvFresh", 1},
	{"checkIvLength", 1},
	{"checkKeyAlgorithm", 2},
	{"checkKeySize", 1},
	{"checkPadding", 1},
	{"checkSeeded", 0},
	{"checkTagLength", 1},
}
