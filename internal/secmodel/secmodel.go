// Package secmodel encodes the Java security model as data: the 31
// SecurityManager check methods, the definitions of security-sensitive
// events (narrow: JNI calls and API returns; broad: additionally private
// field and API parameter accesses), and the semantics of privileged
// blocks (checks inside AccessController.doPrivileged are semantic no-ops).
package secmodel

import (
	"fmt"

	"policyoracle/internal/ir"
	"policyoracle/internal/types"
)

// CheckID identifies one of the SecurityManager check methods. IDs are
// dense in [0, NumChecks).
type CheckID int

// checkDesc describes one check method: its name and parameter count
// (overloads of the same name are distinct checks, as in the paper's count
// of 31).
type checkDesc struct {
	Name  string
	Arity int
}

// The 31 check methods of java.lang.SecurityManager (Java 1.6),
// distinguishing overloads.
var checkTable = []checkDesc{
	{"checkAccept", 2},
	{"checkAccess", 1},            // Thread
	{"checkAccessThreadGroup", 1}, // modeled as a distinct name
	{"checkAwtEventQueueAccess", 0},
	{"checkConnect", 2},
	{"checkConnect", 3}, // with security context
	{"checkCreateClassLoader", 0},
	{"checkDelete", 1},
	{"checkExec", 1},
	{"checkExit", 1},
	{"checkLink", 1},
	{"checkListen", 1},
	{"checkMemberAccess", 2},
	{"checkMulticast", 1},
	{"checkMulticast", 2}, // with ttl
	{"checkPackageAccess", 1},
	{"checkPackageDefinition", 1},
	{"checkPermission", 1},
	{"checkPermission", 2}, // with context
	{"checkPrintJobAccess", 0},
	{"checkPropertiesAccess", 0},
	{"checkPropertyAccess", 1},
	{"checkRead", 1},   // file name
	{"checkReadFD", 1}, // FileDescriptor overload, modeled distinctly
	{"checkRead", 2},   // with context
	{"checkSecurityAccess", 1},
	{"checkSetFactory", 0},
	{"checkSystemClipboardAccess", 0},
	{"checkTopLevelWindow", 1},
	{"checkWrite", 1},   // file name
	{"checkWriteFD", 1}, // FileDescriptor overload, modeled distinctly
}

// NumChecks is the number of distinct security checks (31, as in the paper).
const NumChecks = 31

func init() {
	if len(checkTable) != NumChecks {
		panic(fmt.Sprintf("check table has %d entries, want %d", len(checkTable), NumChecks))
	}
}

// CheckName returns the method name of a check ID in the default
// (SecurityManager) domain. Domain-generic callers use Domain.CheckName.
func CheckName(id CheckID) string { return defDomain.CheckName(id) }

// CheckArity returns the parameter count of a check ID in the default
// (SecurityManager) domain, or -1 for an ID outside the table.
// Domain-generic callers use Domain.CheckArity.
func CheckArity(id CheckID) int { return defDomain.CheckArity(id) }

// CheckByName returns the check ID for a name and arity in the default
// (SecurityManager) domain. Domain-generic callers use Domain.CheckByName.
func CheckByName(name string, arity int) (CheckID, bool) {
	return defDomain.CheckByName(name, arity)
}

// AllCheckNames returns the distinct check method names of the default
// (SecurityManager) domain, sorted.
func AllCheckNames() []string { return defDomain.AllCheckNames() }

// SecurityManagerClass is the simple name of the class whose check*
// methods are security checks.
const SecurityManagerClass = "SecurityManager"

// AccessControllerClass and DoPrivilegedMethod identify privileged blocks.
const (
	AccessControllerClass = "AccessController"
	DoPrivilegedMethod    = "doPrivileged"
)

// IdentifyCheck reports whether call invokes a default-domain security
// check, and which. A call is a check when its resolved declaration (or,
// failing that, its static receiver type) belongs to SecurityManager or
// a subtype, and the name+arity matches the check table. Domain-generic
// callers use Domain.IdentifyCheck.
func IdentifyCheck(call *ir.Call) (CheckID, bool) { return defDomain.IdentifyCheck(call) }

func ownerClass(call *ir.Call) *types.Class {
	if call.Declared != nil {
		return call.Declared.Class
	}
	return call.StaticType
}

// IsDoPrivileged reports whether call enters a privileged block in the
// default domain: AccessController.doPrivileged(action). Domain-generic
// callers use Domain.IsDoPrivileged.
func IsDoPrivileged(call *ir.Call) bool { return defDomain.IsDoPrivileged(call) }

// IsPrivilegedScope reports whether m's body executes in privileged scope:
// AccessController.doPrivileged itself (and anything it calls) runs with
// the library's own permissions, so checks inside are semantic no-ops even
// when doPrivileged is analyzed as an API entry point. Domain-generic
// callers use Domain.IsPrivilegedScope.
func IsPrivilegedScope(m *types.Method) bool { return defDomain.IsPrivilegedScope(m) }

// IsGetSecurityManager reports whether call is System.getSecurityManager(),
// whose result is assumed non-null under Config.AssumeSecurityManager.
// Domain-generic callers use Domain.IsGetSecurityManager.
func IsGetSecurityManager(call *ir.Call) bool { return defDomain.IsGetSecurityManager(call) }

// ---------------------------------------------------------------------------
// Events

// EventKind classifies security-sensitive events.
type EventKind int

// Event kinds. NativeCall and APIReturn are the narrow (default) set;
// the remaining kinds are enabled by the broad event mode (Section 3).
const (
	NativeCall EventKind = iota
	APIReturn
	PrivateRead
	PrivateWrite
	ParamAccess
)

func (k EventKind) String() string {
	switch k {
	case NativeCall:
		return "native"
	case APIReturn:
		return "return"
	case PrivateRead:
		return "private-read"
	case PrivateWrite:
		return "private-write"
	case ParamAccess:
		return "param-access"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is a security-sensitive event. Key is the cross-implementation
// matching key:
//
//   - NativeCall: the native method's simple signature, e.g. "connect0/2";
//   - APIReturn: "" (one per entry point);
//   - PrivateRead/PrivateWrite: the field's simple name;
//   - ParamAccess: the parameter index, e.g. "p0".
type Event struct {
	Kind EventKind
	Key  string
}

func (e Event) String() string {
	if e.Key == "" {
		return e.Kind.String()
	}
	return e.Kind.String() + ":" + e.Key
}

// NativeEvent builds the event for a call to native method m.
func NativeEvent(m *types.Method) Event {
	return Event{Kind: NativeCall, Key: fmt.Sprintf("%s/%d", m.Name, len(m.Params))}
}

// ReturnEvent is the API-return event.
func ReturnEvent() Event { return Event{Kind: APIReturn} }

// PrivateReadEvent builds the broad-mode event for reading private field f.
func PrivateReadEvent(f *types.Field) Event {
	return Event{Kind: PrivateRead, Key: f.Name}
}

// PrivateWriteEvent builds the broad-mode event for writing private field f.
func PrivateWriteEvent(f *types.Field) Event {
	return Event{Kind: PrivateWrite, Key: f.Name}
}

// ParamAccessEvent builds the broad-mode event for accessing entry-point
// parameter i.
func ParamAccessEvent(i int) Event {
	return Event{Kind: ParamAccess, Key: "p" + itoa(i)}
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// EventMode selects the event definition breadth.
type EventMode int

// Event modes.
const (
	NarrowEvents EventMode = iota // JNI calls + API returns (default)
	BroadEvents                   // + private field and parameter accesses
)

func (m EventMode) String() string {
	if m == BroadEvents {
		return "broad"
	}
	return "narrow"
}

// CheckSetString renders a bitset of default-domain checks as sorted
// names (for reports). Domain-generic callers use Domain.CheckSetString.
func CheckSetString(bits uint64) string { return defDomain.CheckSetString(bits) }
