// Package report renders fixed-width text tables for the experiment
// harness, in the spirit of the paper's Tables 1–3.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows of string cells and renders them aligned.
type Table struct {
	Title  string
	header []string
	rows   [][]string
	seps   map[int]bool // row indexes after which to draw a separator
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, header: header, seps: map[int]bool{}}
}

// Row appends a row; cells render with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Separator draws a horizontal rule after the current last row.
func (t *Table) Separator() { t.seps[len(t.rows)-1] = true }

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "  %*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	rule := func() {
		n := 0
		for _, w := range widths {
			n += w + 2
		}
		sb.WriteString(strings.Repeat("-", n-2))
		sb.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		rule()
	}
	for i, r := range t.rows {
		writeRow(r)
		if t.seps[i] {
			rule()
		}
	}
	return sb.String()
}

// DM renders the paper's "distinct (manifestations)" cell format.
func DM(distinct, manifestations int) string {
	return fmt.Sprintf("%d (%d)", distinct, manifestations)
}
