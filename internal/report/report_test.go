package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Title", "name", "value")
	tb.Row("short", 1)
	tb.Row("a-much-longer-name", 12345)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// All data lines align: same trailing column position.
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
	l1, l2 := lines[3], lines[4] // title, header, rule, then data rows
	if len(l1) != len(l2) {
		t.Errorf("rows not aligned:\n%q\n%q", l1, l2)
	}
	if !strings.HasSuffix(l1, "1") || !strings.HasSuffix(l2, "12345") {
		t.Errorf("right alignment wrong:\n%q\n%q", l1, l2)
	}
}

func TestSeparator(t *testing.T) {
	tb := New("", "a")
	tb.Row("x")
	tb.Separator()
	tb.Row("y")
	out := tb.String()
	rules := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && strings.Trim(line, "-") == "" {
			rules++
		}
	}
	if rules < 2 { // header rule + explicit separator
		t.Errorf("separators missing (%d rules):\n%s", rules, out)
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.Row(3.14159)
	if !strings.Contains(tb.String(), "3.14") {
		t.Errorf("float not formatted:\n%s", tb.String())
	}
}

func TestRowsWiderThanHeader(t *testing.T) {
	tb := New("", "only")
	tb.Row("a", "b", "c")
	out := tb.String()
	if !strings.Contains(out, "c") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}

func TestDM(t *testing.T) {
	if got := DM(6, 23); got != "6 (23)" {
		t.Errorf("DM = %q", got)
	}
}
