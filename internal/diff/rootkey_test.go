package diff

import (
	"fmt"
	"testing"

	"policyoracle/internal/secmodel"
)

// TestRootKeyTable pins the grouping key: the case and the root methods
// and check set distinguish errors, while the event deliberately never
// does (one missing check perturbs several events of one root cause).
func TestRootKeyTable(t *testing.T) {
	cr := check(t, "checkRead", 1)
	cw := check(t, "checkWrite", 1)
	evA := secmodel.ReturnEvent()
	evB := secmodel.Event{Kind: secmodel.NativeCall, Key: "read0/1"}

	cases := []struct {
		name   string
		c1, c2 Case
		e1, e2 secmodel.Event
		r1, r2 []string
		k1, k2 secmodel.CheckID
		same   bool
	}{
		{"identical inputs", CaseMissingPolicy, CaseMissingPolicy, evA, evA,
			[]string{"A.f()"}, []string{"A.f()"}, cr, cr, true},
		{"event ignored", CaseMissingPolicy, CaseMissingPolicy, evA, evB,
			[]string{"A.f()"}, []string{"A.f()"}, cr, cr, true},
		{"case distinguishes", CaseMissingPolicy, CaseCheckMismatch, evA, evA,
			[]string{"A.f()"}, []string{"A.f()"}, cr, cr, false},
		{"origin methods distinguish", CaseMissingPolicy, CaseMissingPolicy, evA, evA,
			[]string{"A.f()"}, []string{"A.helper()"}, cr, cr, false},
		{"check set distinguishes", CaseMissingPolicy, CaseMissingPolicy, evA, evA,
			[]string{"A.f()"}, []string{"A.f()"}, cr, cw, false},
		{"root order matters after sorting upstream", CaseMissingPolicy, CaseMissingPolicy, evA, evA,
			[]string{"A.f()", "A.g()"}, []string{"A.f()", "A.g()"}, cr, cr, true},
		{"extra root distinguishes", CaseMissingPolicy, CaseMissingPolicy, evA, evA,
			[]string{"A.f()"}, []string{"A.f()", "A.g()"}, cr, cr, false},
		{"no roots still keyed by check", CaseMissingPolicy, CaseMissingPolicy, evA, evA,
			nil, nil, cr, cw, false},
	}
	for _, tc := range cases {
		k1 := rootKey(tc.c1, tc.e1, tc.r1, set(tc.k1))
		k2 := rootKey(tc.c2, tc.e2, tc.r2, set(tc.k2))
		if (k1 == k2) != tc.same {
			t.Errorf("%s: rootKey %q vs %q, want same=%v", tc.name, k1, k2, tc.same)
		}
	}
}

func TestCategorizeTable(t *testing.T) {
	cases := []struct {
		name  string
		roots []string
		entry string
		want  Category
	}{
		{"no roots", nil, "A.f()", Interprocedural},
		{"entry only", []string{"A.f()"}, "A.f()", Intraprocedural},
		{"helper only", []string{"A.helper()"}, "A.f()", Interprocedural},
		{"entry plus helper", []string{"A.f()", "A.helper()"}, "A.f()", Interprocedural},
		{"entry twice", []string{"A.f()", "A.f()"}, "A.f()", Intraprocedural},
	}
	for _, tc := range cases {
		d := &Difference{RootMethods: tc.roots}
		if got := categorize(d, tc.entry); got != tc.want {
			t.Errorf("%s: categorize = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestGroupingSplitsOnOriginMethods is the stability check behind
// incremental splicing: two manifestations of the same missing check are
// one group only when their origin methods agree. Entries that differ
// solely in where the check originates must land in distinct groups with
// deterministic root methods.
func TestGroupingSplitsOnOriginMethods(t *testing.T) {
	c := check(t, "checkLink", 1)
	spec := map[string]map[secmodel.Event]evSpec{}
	for sig, origin := range map[string]string{
		"A.f()": "A.shared()",
		"A.g()": "A.shared()",
		"A.h()": "A.other()", // same missing check, different root cause
	} {
		spec[sig] = map[secmodel.Event]evSpec{
			ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: origin}},
		}
	}
	a := lib("a", spec)
	bSpec := map[string]map[secmodel.Event]evSpec{}
	for sig := range spec {
		bSpec[sig] = map[secmodel.Event]evSpec{ret: {}}
	}
	b := lib("b", bSpec)

	rep := Compare(a, b)
	if len(rep.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (distinct origin methods):\n%s", len(rep.Groups), rep)
	}
	byRoot := map[string]int{}
	for _, g := range rep.Groups {
		if len(g.RootMethods) != 1 {
			t.Fatalf("group root methods = %v", g.RootMethods)
		}
		byRoot[g.RootMethods[0]] = g.Manifestations()
	}
	if byRoot["A.shared()"] != 2 || byRoot["A.other()"] != 1 {
		t.Errorf("manifestations by root = %v, want A.shared():2 A.other():1", byRoot)
	}
	if rep.TotalManifestations() != 3 {
		t.Errorf("total manifestations = %d, want 3", rep.TotalManifestations())
	}

	// Repeated comparison is byte-stable: map iteration upstream must not
	// leak into group identity or ordering.
	first := fmt.Sprint(rep)
	for i := 0; i < 5; i++ {
		if again := fmt.Sprint(Compare(a, b)); again != first {
			t.Fatalf("comparison %d rendered differently:\n%s\nvs\n%s", i, again, first)
		}
	}
}
