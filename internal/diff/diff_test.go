package diff

import (
	"strings"
	"testing"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

func check(t testing.TB, name string, arity int) secmodel.CheckID {
	t.Helper()
	id, ok := secmodel.CheckByName(name, arity)
	if !ok {
		t.Fatalf("unknown check %s/%d", name, arity)
	}
	return id
}

// lib builds a ProgramPolicies from a compact spec:
// entry → event → (must, may, origins).
type evSpec struct {
	must, may policy.CheckSet
	origins   map[secmodel.CheckID]string
}

func lib(name string, entries map[string]map[secmodel.Event]evSpec) *policy.ProgramPolicies {
	pp := policy.NewProgramPolicies(name)
	for sig, events := range entries {
		ep := policy.NewEntryPolicy(sig)
		for ev, spec := range events {
			evp := ep.EventPolicyFor(ev)
			evp.Must = spec.must
			evp.May = spec.may
			for id, origin := range spec.origins {
				evp.AddOrigin(id, origin)
			}
		}
		pp.Entries[sig] = ep
	}
	return pp
}

func set(ids ...secmodel.CheckID) policy.CheckSet {
	var s policy.CheckSet
	for _, id := range ids {
		s = s.With(id)
	}
	return s
}

var ret = secmodel.ReturnEvent()

func TestIdenticalPoliciesNoDiff(t *testing.T) {
	c := check(t, "checkRead", 1)
	spec := map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}}},
		"A.g()": {ret: {}},
	}
	rep := Compare(lib("a", spec), lib("b", spec))
	if len(rep.Diffs) != 0 {
		t.Errorf("unexpected diffs: %v", rep.Diffs)
	}
	if rep.MatchingEntries != 2 {
		t.Errorf("matching = %d", rep.MatchingEntries)
	}
}

func TestCase2MissingPolicy(t *testing.T) {
	c := check(t, "checkWrite", 1)
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.helper()"}}},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {}},
	})
	rep := Compare(a, b)
	if len(rep.Diffs) != 1 {
		t.Fatalf("diffs = %v", rep.Diffs)
	}
	d := rep.Diffs[0]
	if d.Case != CaseMissingPolicy || d.MissingIn != "b" || d.DiffChecks != set(c) {
		t.Errorf("diff = %+v", d)
	}
	if !d.B.Present {
		// b's side is the empty one; Present marks the policy-less side.
		t.Log("ok: B side marked absent")
	} else {
		t.Error("B side should be marked absent")
	}
	if d.Category != Interprocedural {
		t.Errorf("category = %s (check originates in a helper)", d.Category)
	}
}

func TestCase3aCheckMismatch(t *testing.T) {
	cr := check(t, "checkRead", 1)
	cw := check(t, "checkWrite", 1)
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(cr), may: set(cr), origins: map[secmodel.CheckID]string{cr: "A.f()"}}},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(cw), may: set(cw), origins: map[secmodel.CheckID]string{cw: "A.f()"}}},
	})
	rep := Compare(a, b)
	if len(rep.Diffs) != 1 {
		t.Fatalf("diffs = %v", rep.Diffs)
	}
	d := rep.Diffs[0]
	if d.Case != CaseCheckMismatch {
		t.Errorf("case = %s", d.Case)
	}
	if d.MissingIn != "" {
		t.Errorf("both sides differ; MissingIn = %q", d.MissingIn)
	}
	if d.DiffChecks != set(cr, cw) {
		t.Errorf("diff checks = %s", d.DiffChecks)
	}
	if d.Category != Intraprocedural {
		t.Errorf("category = %s (both origins in the entry)", d.Category)
	}
}

func TestCase3bMustMay(t *testing.T) {
	c := check(t, "checkExit", 1)
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}}},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: policy.Empty, may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}}},
	})
	rep := Compare(a, b)
	if len(rep.Diffs) != 1 {
		t.Fatalf("diffs = %v", rep.Diffs)
	}
	d := rep.Diffs[0]
	if d.Case != CaseMustMayMismatch || d.Category != MustMay {
		t.Errorf("diff = %+v", d)
	}
	if d.MissingIn != "b" {
		t.Errorf("missing in = %q (check is only MAY in b)", d.MissingIn)
	}
}

func TestEventsUniqueToOneImplementationIgnored(t *testing.T) {
	c := check(t, "checkRead", 1)
	natA := secmodel.Event{Kind: secmodel.NativeCall, Key: "readA/1"}
	natB := secmodel.Event{Kind: secmodel.NativeCall, Key: "readB/1"}
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {
			ret:  {must: set(c), may: set(c)},
			natA: {must: policy.Empty, may: policy.Empty},
		},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {
			ret:  {must: set(c), may: set(c)},
			natB: {must: set(c), may: set(c)},
		},
	})
	rep := Compare(a, b)
	if len(rep.Diffs) != 0 {
		t.Errorf("unique events should be ignored: %v", rep.Diffs)
	}
}

func TestEntriesUniqueToOneImplementationIgnored(t *testing.T) {
	c := check(t, "checkRead", 1)
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.onlyA()": {ret: {must: set(c), may: set(c)}},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.onlyB()": {ret: {}},
	})
	rep := Compare(a, b)
	if rep.MatchingEntries != 0 || len(rep.Diffs) != 0 {
		t.Errorf("rep = %+v", rep)
	}
}

func TestGroupingByRootCause(t *testing.T) {
	c := check(t, "checkLink", 1)
	mk := func(origin string) map[string]map[secmodel.Event]evSpec {
		out := map[string]map[secmodel.Event]evSpec{}
		for _, sig := range []string{"A.f()", "A.g()", "A.h()"} {
			out[sig] = map[secmodel.Event]evSpec{
				ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: origin}},
			}
		}
		return out
	}
	a := lib("a", mk("A.shared()"))
	bSpec := mk("")
	for _, sig := range []string{"A.f()", "A.g()", "A.h()"} {
		bSpec[sig] = map[secmodel.Event]evSpec{ret: {}}
	}
	b := lib("b", bSpec)
	rep := Compare(a, b)
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (shared root cause)", len(rep.Groups))
	}
	if rep.Groups[0].Manifestations() != 3 {
		t.Errorf("manifestations = %d", rep.Groups[0].Manifestations())
	}
	if rep.TotalManifestations() != 3 {
		t.Errorf("total = %d", rep.TotalManifestations())
	}
}

func TestMultipleEventsOneEntryOneManifestation(t *testing.T) {
	c := check(t, "checkRead", 1)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "read0/1"}
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {
			ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}},
			nat: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}},
		},
	})
	// Give b a check on the same entry (a different one on both events) so
	// both sides "have policies" and case 3a fires per event with the SAME
	// differing check set — one root cause, two perturbed events.
	cw := check(t, "checkWrite", 1)
	a.Entries["A.f()"].EventPolicyFor(ret).May = set(c, cw)
	a.Entries["A.f()"].EventPolicyFor(ret).Must = set(c, cw)
	a.Entries["A.f()"].EventPolicyFor(ret).AddOrigin(cw, "A.f()")
	a.Entries["A.f()"].EventPolicyFor(nat).May = set(c, cw)
	a.Entries["A.f()"].EventPolicyFor(nat).Must = set(c, cw)
	a.Entries["A.f()"].EventPolicyFor(nat).AddOrigin(cw, "A.f()")
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {
			ret: {must: set(cw), may: set(cw), origins: map[secmodel.CheckID]string{cw: "A.f()"}},
			nat: {must: set(cw), may: set(cw), origins: map[secmodel.CheckID]string{cw: "A.f()"}},
		},
	})
	rep := Compare(a, b)
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1:\n%s", len(rep.Groups), rep)
	}
	if got := rep.Groups[0].Manifestations(); got != 1 {
		t.Errorf("manifestations = %d, want 1 (one entry, several events)", got)
	}
}

func TestReportString(t *testing.T) {
	c := check(t, "checkRead", 1)
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}}},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {}},
	})
	out := Compare(a, b).String()
	for _, want := range []string{"a vs b", "missing-policy", "A.f()", "checkRead"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
