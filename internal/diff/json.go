package diff

import (
	"bytes"
	"encoding/json"

	"policyoracle/internal/secmodel"
)

// JSONReport is the serializable form of a Report, for CI integration and
// archival. Check sets render as sorted name lists and events as their
// string form.
type JSONReport struct {
	LibA string `json:"libA"`
	LibB string `json:"libB"`
	// Domain is the check-domain ID of the compared policies, omitted
	// for the default (SecurityManager) domain so default-domain reports
	// keep their pre-domain bytes.
	Domain          string      `json:"domain,omitempty"`
	MatchingEntries int         `json:"matchingEntries"`
	Groups          []JSONGroup `json:"groups"`
}

// JSONGroup is one distinct error.
type JSONGroup struct {
	Case           string     `json:"case"`
	Category       string     `json:"category"`
	DiffChecks     []string   `json:"diffChecks"`
	MissingIn      string     `json:"missingIn,omitempty"`
	RootMethods    []string   `json:"rootMethods,omitempty"`
	Manifestations int        `json:"manifestations"`
	Entries        []string   `json:"entries"`
	Diffs          []JSONDiff `json:"differences"`
}

// JSONDiff is one per-entry difference.
type JSONDiff struct {
	Entry string   `json:"entry"`
	Event string   `json:"event"`
	AMust []string `json:"aMust"`
	AMay  []string `json:"aMay"`
	BMust []string `json:"bMust"`
	BMay  []string `json:"bMay"`
}

func checkNames(d *secmodel.Domain, s interface{ IDs() []secmodel.CheckID }) []string {
	ids := s.IDs()
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, d.CheckName(id))
	}
	return out
}

// ToJSON converts the report to its serializable form. Check names are
// rendered against the report's check domain.
func (r *Report) ToJSON() *JSONReport {
	dom := r.domainModel()
	jr := &JSONReport{LibA: r.LibA, LibB: r.LibB, Domain: r.Domain, MatchingEntries: r.MatchingEntries}
	for _, g := range r.Groups {
		jg := JSONGroup{
			Case:           g.Case.String(),
			Category:       g.Category.String(),
			DiffChecks:     checkNames(dom, g.DiffChecks),
			MissingIn:      g.MissingIn,
			RootMethods:    g.RootMethods,
			Manifestations: g.Manifestations(),
			Entries:        g.Entries,
		}
		for _, d := range g.Diffs {
			jg.Diffs = append(jg.Diffs, JSONDiff{
				Entry: d.Entry,
				Event: d.Event.String(),
				AMust: checkNames(dom, d.A.Must),
				AMay:  checkNames(dom, d.A.May),
				BMust: checkNames(dom, d.B.Must),
				BMay:  checkNames(dom, d.B.May),
			})
		}
		jr.Groups = append(jr.Groups, jg)
	}
	return jr
}

// MarshalJSON encodes the report via its serializable form.
func (r *Report) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.ToJSON())
}

// EncodeJSON renders the report in the canonical wire form shared by
// `polora diff -json`, POST /v1/diff, and the drift timeline: two-space
// indentation with a trailing newline. Every consumer that needs
// byte-identity encodes through here.
func (r *Report) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.ToJSON()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
