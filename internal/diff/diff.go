// Package diff implements security-policy differencing (Section 5 of the
// paper): comparing the policies extracted from two implementations of the
// same API, reporting every semantic difference, grouping manifestations by
// root cause, and categorizing each difference.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

// Case identifies which comparison rule fired (Section 5).
type Case int

// Comparison outcomes.
const (
	// CaseMissingPolicy: one implementation has no security policy while
	// the other has one or more (case 2 — most vulnerabilities).
	CaseMissingPolicy Case = iota
	// CaseCheckMismatch: the implementations guard the same event with
	// different check sets (case 3a).
	CaseCheckMismatch
	// CaseMustMayMismatch: same checks, but a check is MUST in one
	// implementation and only MAY in the other (case 3b).
	CaseMustMayMismatch
)

func (c Case) String() string {
	switch c {
	case CaseMissingPolicy:
		return "missing-policy"
	case CaseCheckMismatch:
		return "check-mismatch"
	case CaseMustMayMismatch:
		return "must-may-mismatch"
	}
	return fmt.Sprintf("case(%d)", int(c))
}

// Category is the root-cause classification used by Table 3's rows.
type Category int

// Root-cause categories.
const (
	// Intraprocedural differences are visible in the entry method alone.
	Intraprocedural Category = iota
	// Interprocedural differences require analyzing callees.
	Interprocedural
	// MustMay differences have equal check sets with differing modality.
	MustMay
)

func (c Category) String() string {
	switch c {
	case Intraprocedural:
		return "intraprocedural"
	case Interprocedural:
		return "interprocedural"
	case MustMay:
		return "MUST/MAY"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Side is one implementation's policy for the differing event.
type Side struct {
	Library string
	Must    policy.CheckSet
	May     policy.CheckSet
	Paths   policy.PathSets
	Present bool // false when the entry has no policy at all (case 2)
}

// Difference is one policy difference at one API entry point.
type Difference struct {
	Entry string
	Event secmodel.Event
	Case  Case
	A, B  Side
	// DiffChecks is the symmetric difference of the MAY sets (all of the
	// richer side's checks for case 2).
	DiffChecks policy.CheckSet
	// MissingIn names the library whose policy lacks DiffChecks ("" when
	// both sides have extra checks).
	MissingIn string
	// RootKey groups manifestations of the same underlying error: the
	// event key plus the methods whose bodies contain the differing checks.
	RootKey string
	// RootMethods are the origin methods of the differing checks.
	RootMethods []string
	Category    Category
}

// Group is a distinct error: one root cause with all its manifestations.
type Group struct {
	RootKey     string
	Case        Case
	Category    Category
	MissingIn   string
	DiffChecks  policy.CheckSet
	RootMethods []string
	// Entries are the API entry points where the error manifests.
	Entries []string
	Diffs   []*Difference
}

// Manifestations returns the number of entry points exhibiting the error.
func (g *Group) Manifestations() int { return len(g.Entries) }

// Report is the outcome of differencing two implementations.
type Report struct {
	LibA, LibB string
	// Domain is the check-domain ID the compared policies were extracted
	// under; empty means the default (SecurityManager) domain, keeping
	// default-domain reports byte-identical to the pre-domain format.
	// Check sets in the report render against this domain.
	Domain string
	// MatchingEntries is the number of entry-point signatures shared by
	// both implementations (Table 3's "Matching APIs").
	MatchingEntries int
	Diffs           []*Difference
	Groups          []*Group
}

// TotalManifestations sums manifestations over all groups.
func (r *Report) TotalManifestations() int {
	n := 0
	for _, g := range r.Groups {
		n += g.Manifestations()
	}
	return n
}

// GroupsByCategory returns the groups in the given category.
func (r *Report) GroupsByCategory(c Category) []*Group {
	var out []*Group
	for _, g := range r.Groups {
		if g.Category == c {
			out = append(out, g)
		}
	}
	return out
}

// Compare differences the policies of two implementations of one API.
// Both sides must carry policies of the same check domain — oracle.Diff
// and the store enforce that with typed errors before calling here — and
// the report renders check sets under that domain (a's, by convention).
func Compare(a, b *policy.ProgramPolicies) *Report {
	rep := &Report{LibA: a.Library, LibB: b.Library, Domain: a.Domain}
	for _, entry := range a.SortedEntries() {
		pa := a.Entries[entry]
		pb, ok := b.Entries[entry]
		if !ok {
			continue
		}
		rep.MatchingEntries++
		compareEntry(rep, entry, pa, pb, a.Library, b.Library)
	}
	rep.group()
	return rep
}

func compareEntry(rep *Report, entry string, pa, pb *policy.EntryPolicy, la, lb string) {
	aHas, bHas := pa.HasChecks(), pb.HasChecks()
	// Case 1: neither implementation has any security policy.
	if !aHas && !bHas {
		return
	}
	// Case 2: exactly one implementation has a security policy.
	if aHas != bHas {
		rich, poor := pa, pb
		richLib, poorLib := la, lb
		if bHas {
			rich, poor = pb, pa
			richLib, poorLib = lb, la
		}
		_ = poor
		// Report against the richest event of the richer side (prefer the
		// API return, which exists on both sides).
		ev := richestEvent(rich)
		ep := rich.Events[ev]
		d := &Difference{
			Entry:      entry,
			Event:      ev,
			Case:       CaseMissingPolicy,
			DiffChecks: ep.May,
			MissingIn:  poorLib,
		}
		d.A = sideOf(la, pa, ev)
		d.B = sideOf(lb, pb, ev)
		if richLib == la {
			d.B.Present = false
		} else {
			d.A.Present = false
		}
		d.RootMethods = originMethods(ep, ep.May)
		d.RootKey = rootKey(d.Case, ev, d.RootMethods, d.DiffChecks)
		d.Category = categorize(d, entry)
		rep.Diffs = append(rep.Diffs, d)
		return
	}
	// Case 3: both have policies; match events present on both sides and
	// ignore events unique to one implementation.
	for _, ev := range pa.SortedEvents() {
		epa := pa.Events[ev]
		epb, ok := pb.Events[ev]
		if !ok {
			continue
		}
		if epa.May != epb.May {
			// Case 3a: different check sets for the same event.
			diffChecks := epa.May.Minus(epb.May).Union(epb.May.Minus(epa.May))
			d := &Difference{
				Entry:      entry,
				Event:      ev,
				Case:       CaseCheckMismatch,
				A:          sideOf(la, pa, ev),
				B:          sideOf(lb, pb, ev),
				DiffChecks: diffChecks,
			}
			switch {
			case epb.May.Minus(epa.May).IsEmpty():
				d.MissingIn = lb
			case epa.May.Minus(epb.May).IsEmpty():
				d.MissingIn = la
			}
			roots := originMethods(epa, epa.May.Minus(epb.May))
			roots = append(roots, originMethods(epb, epb.May.Minus(epa.May))...)
			d.RootMethods = dedupSorted(roots)
			d.RootKey = rootKey(d.Case, ev, d.RootMethods, d.DiffChecks)
			d.Category = categorize(d, entry)
			rep.Diffs = append(rep.Diffs, d)
			continue
		}
		if epa.Must != epb.Must {
			// Case 3b: same checks, differing MUST/MAY modality.
			d := &Difference{
				Entry:      entry,
				Event:      ev,
				Case:       CaseMustMayMismatch,
				A:          sideOf(la, pa, ev),
				B:          sideOf(lb, pb, ev),
				DiffChecks: epa.Must.Minus(epb.Must).Union(epb.Must.Minus(epa.Must)),
			}
			switch {
			case epb.Must.Minus(epa.Must).IsEmpty():
				d.MissingIn = lb // check is only MAY in b
			case epa.Must.Minus(epb.Must).IsEmpty():
				d.MissingIn = la
			}
			roots := originMethods(epa, d.DiffChecks)
			roots = append(roots, originMethods(epb, d.DiffChecks)...)
			d.RootMethods = dedupSorted(roots)
			d.RootKey = rootKey(d.Case, ev, d.RootMethods, d.DiffChecks)
			d.Category = MustMay
			rep.Diffs = append(rep.Diffs, d)
		}
	}
}

// richestEvent picks the event with the largest MAY set, preferring the
// API return (present in every implementation).
func richestEvent(p *policy.EntryPolicy) secmodel.Event {
	best := secmodel.ReturnEvent()
	bestLen := -1
	if ep, ok := p.Events[best]; ok {
		bestLen = ep.May.Len()
	}
	for _, ev := range p.SortedEvents() {
		if ep := p.Events[ev]; ep.May.Len() > bestLen {
			best, bestLen = ev, ep.May.Len()
		}
	}
	return best
}

func sideOf(lib string, p *policy.EntryPolicy, ev secmodel.Event) Side {
	s := Side{Library: lib, Present: true}
	if ep, ok := p.Events[ev]; ok {
		s.Must, s.May, s.Paths = ep.Must, ep.May, ep.Paths
	}
	return s
}

// originMethods returns the sorted method signatures whose bodies contain
// the given checks on paths to the event.
func originMethods(ep *policy.EventPolicy, checks policy.CheckSet) []string {
	set := map[string]bool{}
	for _, id := range checks.IDs() {
		for _, sig := range ep.OriginsOf(id) {
			set[sig] = true
		}
	}
	var out []string
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func dedupSorted(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || s != in[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// rootKey identifies a distinct error. The event is deliberately excluded:
// one missing check typically perturbs several events (the native call and
// the API return), and the paper counts that as a single error with its
// manifestations.
func rootKey(c Case, _ secmodel.Event, roots []string, checks policy.CheckSet) string {
	return fmt.Sprintf("%s|%s|%x", c, strings.Join(roots, ";"), uint64(checks))
}

// categorize decides intraprocedural vs interprocedural: a difference is
// intraprocedural when every differing check originates in the entry-point
// method itself (visible without analyzing callees).
func categorize(d *Difference, entry string) Category {
	if len(d.RootMethods) == 0 {
		return Interprocedural
	}
	for _, m := range d.RootMethods {
		if m != entry {
			return Interprocedural
		}
	}
	return Intraprocedural
}

// group clusters the differences by root key.
func (r *Report) group() {
	byKey := map[string]*Group{}
	var order []string
	for _, d := range r.Diffs {
		g := byKey[d.RootKey]
		if g == nil {
			g = &Group{
				RootKey:     d.RootKey,
				Case:        d.Case,
				Category:    d.Category,
				MissingIn:   d.MissingIn,
				DiffChecks:  d.DiffChecks,
				RootMethods: d.RootMethods,
			}
			byKey[d.RootKey] = g
			order = append(order, d.RootKey)
		}
		g.Diffs = append(g.Diffs, d)
		dup := false
		for _, e := range g.Entries {
			if e == d.Entry {
				dup = true // several events of one entry are one manifestation
			}
		}
		if !dup {
			g.Entries = append(g.Entries, d.Entry)
		}
	}
	sort.Strings(order)
	r.Groups = r.Groups[:0]
	for _, k := range order {
		g := byKey[k]
		sort.Strings(g.Entries)
		r.Groups = append(r.Groups, g)
	}
}

// domainModel resolves the report's check domain for rendering, falling
// back to the default domain when the ID is not registered (only
// possible for hand-built reports; Compare inputs are validated).
func (r *Report) domainModel() *secmodel.Domain {
	if d, ok := secmodel.DomainByID(r.Domain); ok {
		return d
	}
	return secmodel.SecurityManager()
}

// String renders a compact human-readable report.
func (r *Report) String() string {
	dom := r.domainModel()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s vs %s: %d matching entry points, %d distinct differences (%d manifestations)\n",
		r.LibA, r.LibB, r.MatchingEntries, len(r.Groups), r.TotalManifestations())
	for _, g := range r.Groups {
		fmt.Fprintf(&sb, "  [%s/%s] event %s checks %s missing-in=%s (%d manifestations)\n",
			g.Case, g.Category, g.Diffs[0].Event, g.DiffChecks.StringIn(dom), orBoth(g.MissingIn), g.Manifestations())
		for _, e := range g.Entries {
			fmt.Fprintf(&sb, "    %s\n", e)
		}
	}
	return sb.String()
}

func orBoth(s string) string {
	if s == "" {
		return "(both)"
	}
	return s
}
