package diff

import (
	"encoding/json"
	"strings"
	"testing"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

func TestJSONRoundtrip(t *testing.T) {
	c := check(t, "checkConnect", 2)
	a := lib("a", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {must: set(c), may: set(c), origins: map[secmodel.CheckID]string{c: "A.f()"}}},
	})
	b := lib("b", map[string]map[secmodel.Event]evSpec{
		"A.f()": {ret: {}},
	})
	rep := Compare(a, b)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"libA":"a"`, `"libB":"b"`, `"matchingEntries":1`,
		`"case":"missing-policy"`, `"checkConnect"`, `"A.f()"`, `"missingIn":"b"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}

	// The JSON decodes back into the serializable form.
	var jr JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.LibA != "a" || len(jr.Groups) != 1 || jr.Groups[0].Manifestations != 1 {
		t.Errorf("decoded = %+v", jr)
	}
	if len(jr.Groups[0].Diffs) != 1 || jr.Groups[0].Diffs[0].Event != "return" {
		t.Errorf("diffs = %+v", jr.Groups[0].Diffs)
	}
}

func TestJSONEmptyReport(t *testing.T) {
	a := lib("a", map[string]map[secmodel.Event]evSpec{"A.f()": {ret: {}}})
	b := lib("b", map[string]map[secmodel.Event]evSpec{"A.f()": {ret: {}}})
	rep := Compare(a, b)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var jr JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Groups) != 0 {
		t.Errorf("groups = %+v", jr.Groups)
	}
	_ = policy.Empty
}
