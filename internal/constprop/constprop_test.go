package constprop

import (
	"testing"
	"testing/quick"

	"policyoracle/internal/ast"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/types"
)

func lowerFunc(t testing.TB, body string, params string) *ir.Func {
	t.Helper()
	src := "package p; class C { int f; void m(" + params + ") { " + body + " } void callee(Object x, int y) { } }"
	var diags lang.Diagnostics
	files := []*ast.File{parser.ParseFile("t.mj", src, &diags)}
	tp := types.Build("t", files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	c := tp.Classes["p.C"]
	for _, m := range c.Methods {
		if m.Name == "m" {
			return p.FuncOf(m)
		}
	}
	t.Fatal("m not found")
	return nil
}

// liveCount counts reachable blocks under the analysis.
func liveCount(f *ir.Func, r *Result) int {
	n := 0
	for _, b := range f.Blocks {
		if r.BlockLive(b) {
			n++
		}
	}
	return n
}

func TestConstantFoldingPrunesBranch(t *testing.T) {
	f := lowerFunc(t, `
int x = 3;
if (x > 2) { f = 1; } else { f = 2; }
`, "")
	r := Analyze(f, nil, Config{})
	if liveCount(f, r) == len(f.Blocks) {
		t.Errorf("no block pruned:\n%s", f.Dump())
	}
}

func TestUnknownConditionKeepsBothBranches(t *testing.T) {
	f := lowerFunc(t, `
if (cond) { f = 1; } else { f = 2; }
`, "boolean cond")
	r := Analyze(f, nil, Config{})
	if liveCount(f, r) != len(f.Blocks) {
		t.Errorf("block wrongly pruned:\n%s", f.Dump())
	}
}

func TestParamBindingPrunes(t *testing.T) {
	f := lowerFunc(t, `
if (handler != null) { f = 1; }
f = 2;
`, "Object handler")
	// Without binding: both branches live.
	r := Analyze(f, nil, Config{})
	all := liveCount(f, r)
	// With null binding: the guarded branch dies (Figure 4's mechanism).
	rn := Analyze(f, []Value{NullVal()}, Config{})
	if liveCount(f, rn) >= all {
		t.Errorf("null param binding pruned nothing (%d vs %d)", liveCount(f, rn), all)
	}
	// With non-null binding: the guard's false EDGE dies (the join block
	// stays live through the then-branch).
	rv := Analyze(f, []Value{NonNullVal()}, Config{})
	var ifBlock *ir.Block
	for _, b := range f.Blocks {
		if _, ok := b.Term().(*ir.If); ok {
			ifBlock = b
		}
	}
	if ifBlock == nil {
		t.Fatalf("no If block:\n%s", f.Dump())
	}
	if !rv.EdgeFeasible(ifBlock, 0) || rv.EdgeFeasible(ifBlock, 1) {
		t.Errorf("nonnull binding: want true-edge only, got (%t, %t)",
			rv.EdgeFeasible(ifBlock, 0), rv.EdgeFeasible(ifBlock, 1))
	}
}

func TestCallArgsRecorded(t *testing.T) {
	f := lowerFunc(t, `
callee(null, 3 + 4);
callee(new Object(), y);
`, "int y")
	r := Analyze(f, nil, Config{})
	var calls []*ir.Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Name == "callee" {
				calls = append(calls, c)
			}
		}
	}
	if len(calls) != 2 {
		t.Fatalf("got %d calls", len(calls))
	}
	a0 := r.CallArgs(calls[0])
	if a0[0].Kind != Null || a0[1].Kind != Int || a0[1].Int != 7 {
		t.Errorf("call 0 args = %v", a0)
	}
	a1 := r.CallArgs(calls[1])
	if a1[0].Kind != NonNull || a1[1].Kind != Varies {
		t.Errorf("call 1 args = %v", a1)
	}
}

func TestLoopWidensToVaries(t *testing.T) {
	f := lowerFunc(t, `
int i = 0;
while (i < n) { i = i + 1; }
callee(null, i);
`, "int n")
	r := Analyze(f, nil, Config{})
	var call *ir.Call
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Name == "callee" {
				call = c
			}
		}
	}
	args := r.CallArgs(call)
	if args == nil || args[1].Kind != Varies {
		t.Errorf("loop variable should be varies, got %v", args)
	}
}

func TestInstanceofNullFoldsFalse(t *testing.T) {
	f := lowerFunc(t, `
Object o = null;
if (o instanceof C) { f = 1; } else { f = 2; }
`, "")
	r := Analyze(f, nil, Config{})
	if liveCount(f, r) == len(f.Blocks) {
		t.Errorf("null instanceof not folded:\n%s", f.Dump())
	}
}

func TestStringEqualityFolds(t *testing.T) {
	f := lowerFunc(t, `
String s = "a";
if (s == null) { f = 1; } else { f = 2; }
`, "")
	r := Analyze(f, nil, Config{})
	if liveCount(f, r) == len(f.Blocks) {
		t.Errorf("string-null comparison not folded:\n%s", f.Dump())
	}
}

func TestMeetLatticeProperties(t *testing.T) {
	vals := []Value{
		UndefVal(), VariesVal(), IntVal(0), IntVal(7), BoolVal(true), BoolVal(false),
		StrVal("x"), StrVal("y"), NullVal(), NonNullVal(),
	}
	pick := func(i uint8) Value { return vals[int(i)%len(vals)] }
	cfg := &quick.Config{MaxCount: 2000}
	// Commutative and idempotent.
	if err := quick.Check(func(i, j uint8) bool {
		a, b := pick(i), pick(j)
		return Meet(a, b) == Meet(b, a) && Meet(a, a) == a
	}, cfg); err != nil {
		t.Error(err)
	}
	// Associative.
	if err := quick.Check(func(i, j, k uint8) bool {
		a, b, c := pick(i), pick(j), pick(k)
		return Meet(Meet(a, b), c) == Meet(a, Meet(b, c))
	}, cfg); err != nil {
		t.Error(err)
	}
	// Undef is identity; Varies is absorbing.
	if err := quick.Check(func(i uint8) bool {
		a := pick(i)
		return Meet(UndefVal(), a) == a && Meet(VariesVal(), a) == VariesVal()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestMeetDistinctStringsStayNonNull(t *testing.T) {
	got := Meet(StrVal("a"), StrVal("b"))
	if got.Kind != NonNull {
		t.Errorf("meet of distinct strings = %v", got)
	}
	if Meet(StrVal("a"), NullVal()).Kind != Varies {
		t.Error("string meet null should vary")
	}
}

func TestEvalIntBinary(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want Value
	}{
		{"+", 2, 3, IntVal(5)},
		{"-", 2, 3, IntVal(-1)},
		{"*", 4, 3, IntVal(12)},
		{"/", 7, 2, IntVal(3)},
		{"/", 7, 0, VariesVal()},
		{"%", 7, 2, IntVal(1)},
		{"%", 7, 0, VariesVal()},
		{"==", 2, 2, BoolVal(true)},
		{"!=", 2, 2, BoolVal(false)},
		{"<", 1, 2, BoolVal(true)},
		{">=", 2, 2, BoolVal(true)},
		{"&", 6, 3, IntVal(2)},
		{"|", 6, 3, IntVal(7)},
		{"^", 6, 3, IntVal(5)},
	}
	for _, c := range cases {
		if got := evalIntBinary(c.op, c.a, c.b); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestKeyOfDistinguishesBindings(t *testing.T) {
	a := KeyOf([]Value{IntVal(1), NullVal()})
	b := KeyOf([]Value{IntVal(1), NonNullVal()})
	c := KeyOf([]Value{IntVal(1), NullVal()})
	if a == b {
		t.Error("distinct bindings share a key")
	}
	if a != c {
		t.Error("equal bindings differ")
	}
}
