package constprop

import "testing"

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"undef":   UndefVal(),
		"varies":  VariesVal(),
		"7":       IntVal(7),
		"true":    BoolVal(true),
		`"s"`:     StrVal("s"),
		"null":    NullVal(),
		"nonnull": NonNullVal(),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestIsConst(t *testing.T) {
	if UndefVal().IsConst() || VariesVal().IsConst() {
		t.Error("top/bottom are not constants")
	}
	for _, v := range []Value{IntVal(1), BoolVal(false), StrVal(""), NullVal(), NonNullVal()} {
		if !v.IsConst() {
			t.Errorf("%v should be const", v)
		}
	}
}

func TestEvalUnaryNonConst(t *testing.T) {
	if got := evalUnary("!", VariesVal()); got.Kind != Varies {
		t.Errorf("!varies = %v", got)
	}
	if got := evalUnary("-", UndefVal()); got.Kind != Undef {
		t.Errorf("-undef = %v", got)
	}
	if got := evalUnary("-", BoolVal(true)); got.Kind != Varies {
		t.Errorf("-bool = %v", got)
	}
}

func TestEvalBinaryBoolOps(t *testing.T) {
	if got := evalBinary("&", BoolVal(true), BoolVal(false)); got != BoolVal(false) {
		t.Errorf("true & false = %v", got)
	}
	if got := evalBinary("|", BoolVal(true), BoolVal(false)); got != BoolVal(true) {
		t.Errorf("true | false = %v", got)
	}
	if got := evalBinary("^", BoolVal(true), BoolVal(true)); got != BoolVal(false) {
		t.Errorf("true ^ true = %v", got)
	}
	if got := evalBinary("+", StrVal("a"), StrVal("b")); got != StrVal("ab") {
		t.Errorf("string concat = %v", got)
	}
	if got := evalBinary("==", StrVal("a"), StrVal("a")); got != BoolVal(true) {
		t.Errorf("string eq = %v", got)
	}
	if got := evalBinary("+", VariesVal(), IntVal(1)); got.Kind != Varies {
		t.Errorf("varies + 1 = %v", got)
	}
}

func TestNewArrayAndCastTransfer(t *testing.T) {
	f := lowerFunc(t, `
int[] a = new int[2];
a[0] = 1;
int v = a[0];
Object o = (Object) null;
if (o == null) { f = 1; } else { f = 2; }
`, "")
	r := Analyze(f, nil, Config{})
	// The cast preserves null, so the else branch is dead.
	if liveCount(f, r) == len(f.Blocks) {
		t.Errorf("cast-preserved null not folded:\n%s", f.Dump())
	}
}
