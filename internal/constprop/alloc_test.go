package constprop

import (
	"fmt"
	"strings"
	"testing"
)

// loopyBody builds a function body of n sequential loops, each with a
// data-dependent branch, so the worklist revisits blocks repeatedly.
func loopyBody(n int) string {
	var sb strings.Builder
	sb.WriteString("int acc; acc = 0;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "int i%d; i%d = 0; while (i%d < k) { if (acc > %d) { acc = acc + 1; } else { acc = acc + 2; } i%d = i%d + 1; }\n", i, i, i, i, i, i)
	}
	sb.WriteString("return;")
	return sb.String()
}

// TestAnalyzeAllocationFlat is the allocation regression test for the
// arena rework: Analyze's allocation count must stay a small constant
// independent of CFG size. The former implementation allocated one map
// per block environment plus a re-grown worklist slice, so allocations
// scaled with blocks × locals.
func TestAnalyzeAllocationFlat(t *testing.T) {
	small := lowerFunc(t, loopyBody(2), "int k")
	large := lowerFunc(t, loopyBody(20), "int k")
	nSmall := testing.AllocsPerRun(50, func() { Analyze(small, nil, Config{}) })
	nLarge := testing.AllocsPerRun(50, func() { Analyze(large, nil, Config{}) })
	// The arena design allocates O(1) slices per call (result, bool
	// arena, value arena, in-table, worklist); block count must not leak
	// into the count. Allow a word of slack for map sizing of callArgs.
	if nSmall > 12 {
		t.Errorf("small function: %v allocs per Analyze, want <= 12", nSmall)
	}
	if nLarge > nSmall+4 {
		t.Errorf("allocation scales with CFG size: %v (small) -> %v (large)", nSmall, nLarge)
	}
}

// BenchmarkAnalyze measures one constant-propagation solve of a
// loop-heavy function, the analysis the ISPA hot path runs per
// (method, constant-binding) pair.
func BenchmarkAnalyze(b *testing.B) {
	f := lowerFunc(b, loopyBody(8), "int k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(f, nil, Config{})
	}
}
