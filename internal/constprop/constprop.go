// Package constprop implements conditional constant propagation over the
// IR in the style of Wegman–Zadeck: constants (including null/non-null
// reference facts) flow through assignments and fold conditional branches,
// so blocks guarded by constant conditions are excluded from the security
// policy analyses (the paper's "eliminates unexecutable statements").
//
// The interprocedural part — binding constant arguments to callee
// parameters — is driven by the ISPA analysis, which calls Analyze with
// per-context parameter values and memoizes on them.
package constprop

import (
	"fmt"
	"strings"

	"policyoracle/internal/ir"
)

// ValueKind classifies an abstract value.
type ValueKind int

// Value kinds. Undef is the lattice top (no information yet — optimistic);
// Varies is the bottom (any runtime value).
const (
	Undef ValueKind = iota
	Int
	Bool
	Str
	Null
	NonNull
	Varies
)

// Value is an abstract constant value.
type Value struct {
	Kind ValueKind
	Int  int64
	Bool bool
	Str  string
}

// Convenience constructors.
func UndefVal() Value       { return Value{Kind: Undef} }
func VariesVal() Value      { return Value{Kind: Varies} }
func IntVal(v int64) Value  { return Value{Kind: Int, Int: v} }
func BoolVal(v bool) Value  { return Value{Kind: Bool, Bool: v} }
func StrVal(s string) Value { return Value{Kind: Str, Str: s} }
func NullVal() Value        { return Value{Kind: Null} }
func NonNullVal() Value     { return Value{Kind: NonNull} }

// IsConst reports whether v carries a concrete constant or nullness fact.
func (v Value) IsConst() bool {
	switch v.Kind {
	case Int, Bool, Str, Null, NonNull:
		return true
	}
	return false
}

// Key renders a canonical encoding for memoization keys.
func (v Value) Key() string {
	switch v.Kind {
	case Undef:
		return "u"
	case Int:
		return fmt.Sprintf("i%d", v.Int)
	case Bool:
		return fmt.Sprintf("b%t", v.Bool)
	case Str:
		return "s" + v.Str
	case Null:
		return "0"
	case NonNull:
		return "n"
	default:
		return "*"
	}
}

func (v Value) String() string {
	switch v.Kind {
	case Undef:
		return "undef"
	case Int:
		return fmt.Sprintf("%d", v.Int)
	case Bool:
		return fmt.Sprintf("%t", v.Bool)
	case Str:
		return fmt.Sprintf("%q", v.Str)
	case Null:
		return "null"
	case NonNull:
		return "nonnull"
	default:
		return "varies"
	}
}

// KeyOf encodes a parameter value list for memoization.
func KeyOf(vals []Value) string {
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(v.Key())
		sb.WriteByte(';')
	}
	return sb.String()
}

// Meet combines two abstract values along control-flow joins.
func Meet(a, b Value) Value {
	if a.Kind == Undef {
		return b
	}
	if b.Kind == Undef {
		return a
	}
	if a.Kind == Varies || b.Kind == Varies {
		return VariesVal()
	}
	if a == b {
		return a
	}
	// Distinct non-null reference facts stay NonNull.
	if isRefNonNull(a) && isRefNonNull(b) {
		return NonNullVal()
	}
	return VariesVal()
}

func isRefNonNull(v Value) bool { return v.Kind == Str || v.Kind == NonNull }

// Config adjusts the abstract semantics.
type Config struct {
	// AssumeSecurityManager makes System.getSecurityManager() return a
	// non-null value, so `if (sm != null)` guards fold to the taken branch
	// and null-guarded checks participate in MUST policies.
	AssumeSecurityManager bool
	// IsGetSecurityManager identifies the getSecurityManager call; it is
	// injected to avoid a dependency cycle with secmodel.
	IsGetSecurityManager func(*ir.Call) bool
}

// Result holds the outcome of conditional constant propagation for one
// function under one parameter binding.
type Result struct {
	fn        *ir.Func
	blockLive []bool
	// edgeLive is the per-successor-edge feasibility, flattened over all
	// blocks: the i'th successor edge of block b lives at
	// succOff[b.Index]+i. A flat slice replaces the former map keyed on
	// (block, succ) pairs — edge indices are dense once block indices are.
	edgeLive []bool
	succOff  []int
	callArgs map[*ir.Call][]Value
	// argArena backs every callArgs slice; argOff is the carve cursor.
	// One allocation for all live call sites instead of one per call.
	argArena []Value
	argOff   int
}

// BlockLive reports whether b is reachable under the parameter binding.
func (r *Result) BlockLive(b *ir.Block) bool { return r.blockLive[b.Index] }

// EdgeFeasible reports whether the i'th successor edge of b can execute.
func (r *Result) EdgeFeasible(b *ir.Block, i int) bool {
	return r.edgeLive[r.succOff[b.Index]+i]
}

// CallArgs returns the abstract values of the call's arguments at the call
// site, or nil when the call is unreachable.
func (r *Result) CallArgs(c *ir.Call) []Value { return r.callArgs[c] }

// absent marks a local with no binding yet in an environment — the
// analogue of a missing map key in a map-based environment. It is
// distinct from Undef: a local can legitimately be bound to Undef while
// operands settle, whereas reading an absent local yields Varies.
const absent ValueKind = -1

// clearEnv marks every local in env absent.
func clearEnv(env []Value) {
	for i := range env {
		env[i] = Value{Kind: absent}
	}
}

// Analyze runs conditional constant propagation on f. params provides the
// abstract values of f.Params (missing entries default to Varies).
//
// Environments are flat slices indexed by Local.Index (dense per
// function), so block transfer and meet are O(locals) array walks with no
// hashing; the worklist pops with an index cursor instead of re-slicing.
func Analyze(f *ir.Func, params []Value, cfg Config) *Result {
	nb := len(f.Blocks)
	r := &Result{
		fn:        f,
		blockLive: make([]bool, nb),
		succOff:   make([]int, nb+1),
	}
	if nb == 0 {
		return r
	}
	maxSuccs := 0
	for i, b := range f.Blocks {
		r.succOff[i+1] = r.succOff[i] + len(b.Succs)
		if len(b.Succs) > maxSuccs {
			maxSuccs = len(b.Succs)
		}
	}
	// One []bool arena backs edge liveness, the in-worklist flags, and the
	// per-edge feasibility scratch; one []Value arena backs the scratch
	// environment and every block's inbound environment. Environments are
	// carved from the arena on a block's first visit, so an Analyze call
	// makes a constant number of allocations regardless of CFG size.
	ne := r.succOff[nb]
	bools := make([]bool, ne+nb+maxSuccs)
	r.edgeLive = bools[:ne:ne]
	inList := bools[ne : ne+nb]
	scratch := bools[ne+nb:]

	nl := len(f.Locals)
	arena := make([]Value, (nb+1)*nl)
	env := arena[:nl] // scratch, overwritten per block visit
	clearEnv(env)

	in := make([][]Value, nb)
	env0 := arena[nl : 2*nl]
	clearEnv(env0)
	if f.This != nil {
		env0[f.This.Index] = NonNullVal()
	}
	for i, p := range f.Params {
		v := VariesVal()
		if i < len(params) && params[i].Kind != Undef {
			v = params[i]
		}
		env0[p.Index] = v
	}
	in[0] = env0
	r.blockLive[0] = true

	worklist := make([]*ir.Block, 1, nb)
	worklist[0] = f.Blocks[0]
	head := 0
	inList[0] = true

	for head < len(worklist) {
		b := worklist[head]
		worklist[head] = nil
		head++
		if head == len(worklist) {
			worklist = worklist[:0]
			head = 0
		}
		inList[b.Index] = false

		copy(env, in[b.Index])
		feasible := transferBlock(b, env, cfg, nil, scratch)
		for i, s := range b.Succs {
			if !feasible[i] {
				continue
			}
			r.edgeLive[r.succOff[b.Index]+i] = true
			changed := false
			if in[s.Index] == nil {
				slot := arena[(1+s.Index)*nl : (2+s.Index)*nl]
				copy(slot, env)
				in[s.Index] = slot
				changed = true
			} else {
				changed = meetInto(in[s.Index], env)
			}
			if !r.blockLive[s.Index] || changed {
				r.blockLive[s.Index] = true
				if !inList[s.Index] {
					worklist = append(worklist, s)
					inList[s.Index] = true
				}
			}
		}
	}

	// Final pass: record abstract argument values at every live call site.
	// Size the argument arena and the callArgs map first so recording
	// allocates nothing per call.
	nCalls, nArgs := 0, 0
	for _, b := range f.Blocks {
		if !r.blockLive[b.Index] || in[b.Index] == nil {
			continue
		}
		for _, instr := range b.Instrs {
			if c, ok := instr.(*ir.Call); ok {
				nCalls++
				nArgs += len(c.Args)
			}
		}
	}
	if nCalls > 0 {
		r.callArgs = make(map[*ir.Call][]Value, nCalls)
		r.argArena = make([]Value, nArgs)
		for _, b := range f.Blocks {
			if !r.blockLive[b.Index] || in[b.Index] == nil {
				continue
			}
			copy(env, in[b.Index])
			transferBlock(b, env, cfg, r, scratch)
		}
	}
	return r
}

// meetInto merges src into dst pointwise, reporting whether dst changed.
// Absent locals on the destination side are treated as Undef for the
// meet (and always count as a change, mirroring map insertion); absent
// locals on the source side are skipped.
func meetInto(dst, src []Value) bool {
	changed := false
	for k := range src {
		sv := src[k]
		if sv.Kind == absent {
			continue
		}
		dv := dst[k]
		if dv.Kind == absent {
			dst[k] = sv // Meet(Undef, sv) == sv
			changed = true
			continue
		}
		nv := Meet(dv, sv)
		if nv != dv {
			dst[k] = nv
			changed = true
		}
	}
	return changed
}

// transferBlock interprets b's instructions over env, returning per-edge
// feasibility for its successors (aliasing the scratch buffer). When rec
// is non-nil, call-site argument values are carved from rec.argArena and
// stored into rec.callArgs.
func transferBlock(b *ir.Block, env []Value, cfg Config, rec *Result, scratch []bool) []bool {
	feasible := scratch[:len(b.Succs)]
	for i := range feasible {
		feasible[i] = true
	}
	for _, instr := range b.Instrs {
		switch instr := instr.(type) {
		case *ir.Assign:
			env[instr.Dst.Index] = operandVal(instr.Src, env)
		case *ir.Binary:
			env[instr.Dst.Index] = evalBinary(instr.Op, operandVal(instr.X, env), operandVal(instr.Y, env))
		case *ir.Unary:
			env[instr.Dst.Index] = evalUnary(instr.Op, operandVal(instr.X, env))
		case *ir.FieldLoad:
			env[instr.Dst.Index] = VariesVal() // not field-sensitive (Section 6.4)
		case *ir.ArrayLoad:
			env[instr.Dst.Index] = VariesVal()
		case *ir.New:
			env[instr.Dst.Index] = NonNullVal()
		case *ir.NewArray:
			env[instr.Dst.Index] = NonNullVal()
		case *ir.Cast:
			env[instr.Dst.Index] = operandVal(instr.X, env) // value-preserving
		case *ir.InstanceOf:
			v := operandVal(instr.X, env)
			if v.Kind == Null {
				env[instr.Dst.Index] = BoolVal(false) // null instanceof T == false
			} else {
				env[instr.Dst.Index] = VariesVal()
			}
		case *ir.Call:
			if rec != nil {
				args := rec.argArena[rec.argOff : rec.argOff+len(instr.Args) : rec.argOff+len(instr.Args)]
				rec.argOff += len(instr.Args)
				for i, a := range instr.Args {
					args[i] = operandVal(a, env)
				}
				rec.callArgs[instr] = args
			}
			if instr.Dst != nil {
				if cfg.AssumeSecurityManager && cfg.IsGetSecurityManager != nil && cfg.IsGetSecurityManager(instr) {
					env[instr.Dst.Index] = NonNullVal()
				} else {
					env[instr.Dst.Index] = VariesVal()
				}
			}
		case *ir.If:
			v := operandVal(instr.Cond, env)
			if v.Kind == Bool && len(feasible) == 2 {
				if v.Bool {
					feasible[1] = false
				} else {
					feasible[0] = false
				}
			}
		case *ir.FieldStore, *ir.ArrayStore, *ir.Goto, *ir.Return, *ir.Throw:
			// No effect on local constants.
		}
	}
	return feasible
}

func operandVal(op ir.Operand, env []Value) Value {
	switch op := op.(type) {
	case nil:
		return VariesVal()
	case *ir.Local:
		if v := env[op.Index]; v.Kind != absent {
			return v
		}
		return VariesVal() // use before def (should not happen in lowered IR)
	case ir.Const:
		switch op.Kind {
		case ir.ConstInt:
			return IntVal(op.Int)
		case ir.ConstBool:
			return BoolVal(op.Bool)
		case ir.ConstString:
			return StrVal(op.Str)
		case ir.ConstNull:
			return NullVal()
		}
	}
	return VariesVal()
}

func evalUnary(op string, x Value) Value {
	switch op {
	case "!":
		if x.Kind == Bool {
			return BoolVal(!x.Bool)
		}
	case "-":
		if x.Kind == Int {
			return IntVal(-x.Int)
		}
	}
	if x.Kind == Varies || x.Kind == Undef {
		return x
	}
	return VariesVal()
}

func evalBinary(op string, x, y Value) Value {
	// Equality over nullness facts.
	if op == "==" || op == "!=" {
		if eq, known := refEquality(x, y); known {
			if op == "!=" {
				eq = !eq
			}
			return BoolVal(eq)
		}
	}
	if x.Kind == Undef || y.Kind == Undef {
		return UndefVal() // optimistic until both operands settle
	}
	if x.Kind == Int && y.Kind == Int {
		return evalIntBinary(op, x.Int, y.Int)
	}
	if x.Kind == Bool && y.Kind == Bool {
		switch op {
		case "&":
			return BoolVal(x.Bool && y.Bool)
		case "|":
			return BoolVal(x.Bool || y.Bool)
		case "^":
			return BoolVal(x.Bool != y.Bool)
		}
	}
	if x.Kind == Str && y.Kind == Str && op == "+" {
		return StrVal(x.Str + y.Str)
	}
	return VariesVal()
}

// refEquality decides ==/!= when nullness facts suffice.
func refEquality(x, y Value) (eq, known bool) {
	switch {
	case x.Kind == Null && y.Kind == Null:
		return true, true
	case x.Kind == Null && isRefNonNull(y):
		return false, true
	case isRefNonNull(x) && y.Kind == Null:
		return false, true
	case x.Kind == Int && y.Kind == Int:
		return x.Int == y.Int, true
	case x.Kind == Bool && y.Kind == Bool:
		return x.Bool == y.Bool, true
	case x.Kind == Str && y.Kind == Str:
		// Reference equality of string constants is identity in our model.
		return x.Str == y.Str, true
	}
	return false, false
}

func evalIntBinary(op string, a, b int64) Value {
	switch op {
	case "+":
		return IntVal(a + b)
	case "-":
		return IntVal(a - b)
	case "*":
		return IntVal(a * b)
	case "/":
		if b == 0 {
			return VariesVal()
		}
		return IntVal(a / b)
	case "%":
		if b == 0 {
			return VariesVal()
		}
		return IntVal(a % b)
	case "&":
		return IntVal(a & b)
	case "|":
		return IntVal(a | b)
	case "^":
		return IntVal(a ^ b)
	case "==":
		return BoolVal(a == b)
	case "!=":
		return BoolVal(a != b)
	case "<":
		return BoolVal(a < b)
	case ">":
		return BoolVal(a > b)
	case "<=":
		return BoolVal(a <= b)
	case ">=":
		return BoolVal(a >= b)
	}
	return VariesVal()
}
