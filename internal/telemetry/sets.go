package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file is the system's metric surface: every instrument the
// extractor, the store, and the service record, with its canonical name,
// label schema, and buckets. DESIGN.md's Observability section documents
// the same names for operators; keep the two in sync.

// DefBuckets are the default latency buckets in seconds, spanning
// sub-millisecond intraprocedural solves to ten-second paper-scale
// extractions.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// QueueBuckets resolve queue/semaphore waits, which are usually zero and
// occasionally the full length of someone else's extraction.
var QueueBuckets = []float64{
	0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 15, 60,
}

// HTTPMetrics is the service-layer instrument set.
type HTTPMetrics struct {
	// Requests counts completed requests:
	// polorad_http_requests_total{method,route,code}.
	Requests *CounterVec
	// Duration is the request latency histogram:
	// polorad_http_request_duration_seconds{route}.
	Duration *HistogramVec
	// Inflight is the number of requests currently being served:
	// polorad_http_inflight_requests.
	Inflight *Gauge
}

// NewHTTPMetrics registers the HTTP instrument set on r (nil-safe: a nil
// registry yields no-op instruments).
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec("polorad_http_requests_total",
			"Completed HTTP requests by method, route, and status code.",
			"method", "route", "code"),
		Duration: r.HistogramVec("polorad_http_request_duration_seconds",
			"HTTP request latency in seconds by route.",
			DefBuckets, "route"),
		Inflight: r.Gauge("polorad_http_inflight_requests",
			"Requests currently being served."),
	}
}

// StoreMetrics is the policy-store instrument set.
type StoreMetrics struct {
	// CacheHits counts blob reads served without extraction:
	// polorad_store_cache_hits_total{tier="mem"|"disk"}.
	CacheHits *CounterVec
	// CacheMisses counts blob reads that required extraction.
	CacheMisses *Counter
	// Evictions counts blobs dropped from the in-memory LRU.
	Evictions *Counter
	// Coalesced counts requests that waited on an identical in-flight
	// request (single-flight dedup saves).
	Coalesced *Counter
	// Extractions counts extractions performed; ExtractFailures the
	// subset that errored (including cancellations).
	Extractions     *Counter
	ExtractFailures *Counter
	// CorruptBlobs counts persisted blobs that failed validation and
	// were re-extracted.
	CorruptBlobs *Counter
	// Bundles counts newly created bundle uploads; Diffs counts diff
	// reports computed.
	Bundles *Counter
	Diffs   *Counter
	// QueueWait is the time a cache-missing request waited for an
	// extraction slot: polorad_store_extract_queue_wait_seconds.
	QueueWait *Histogram
	// ExtractDuration is wall time of one bundle extraction:
	// polorad_store_extract_duration_seconds.
	ExtractDuration *Histogram
	// CachedBlobs is the current LRU occupancy.
	CachedBlobs *Gauge
}

// NewStoreMetrics registers the store instrument set on r (nil-safe).
func NewStoreMetrics(r *Registry) *StoreMetrics {
	return &StoreMetrics{
		CacheHits: r.CounterVec("polorad_store_cache_hits_total",
			"Policy-blob reads served from cache by tier (mem, disk).", "tier"),
		CacheMisses: r.Counter("polorad_store_cache_misses_total",
			"Policy-blob reads that required extraction."),
		Evictions: r.Counter("polorad_store_cache_evictions_total",
			"Policy blobs evicted from the in-memory LRU."),
		Coalesced: r.Counter("polorad_store_coalesced_requests_total",
			"Requests coalesced onto an identical in-flight request."),
		Extractions: r.Counter("polorad_store_extractions_total",
			"Bundle extractions performed."),
		ExtractFailures: r.Counter("polorad_store_extract_failures_total",
			"Bundle extractions that failed or were cancelled."),
		CorruptBlobs: r.Counter("polorad_store_corrupt_blobs_total",
			"Persisted blobs that failed validation and were re-extracted."),
		Bundles: r.Counter("polorad_store_bundles_created_total",
			"Newly created bundle uploads."),
		Diffs: r.Counter("polorad_store_diffs_total",
			"Diff reports computed."),
		QueueWait: r.Histogram("polorad_store_extract_queue_wait_seconds",
			"Time spent waiting for an extraction slot.", QueueBuckets),
		ExtractDuration: r.Histogram("polorad_store_extract_duration_seconds",
			"Wall time of one bundle extraction.", DefBuckets),
		CachedBlobs: r.Gauge("polorad_store_cached_blobs",
			"Policy blobs currently in the in-memory LRU."),
	}
}

// PeerMetrics is the distributed-tier peer-fetch instrument set, fed by
// the store's peer backend (polorad -peers): blob fetches attempted
// against other replicas before falling back to local extraction.
type PeerMetrics struct {
	// Fetches counts peer blob-fetch attempts by outcome:
	// polora_peer_fetch_total{outcome="hit"|"miss"|"error"}. One fetch
	// may record several attempts as it walks the ring's fallback order.
	Fetches *CounterVec
	// Duration is the wall time of one peer fetch attempt:
	// polora_peer_fetch_duration_seconds.
	Duration *Histogram
}

// NewPeerMetrics registers the peer-backend instrument set on r
// (nil-safe).
func NewPeerMetrics(r *Registry) *PeerMetrics {
	return &PeerMetrics{
		Fetches: r.CounterVec("polora_peer_fetch_total",
			"Peer blob-fetch attempts by outcome (hit, miss, error).", "outcome"),
		Duration: r.Histogram("polora_peer_fetch_duration_seconds",
			"Wall time of one peer blob-fetch attempt.", DefBuckets),
	}
}

// BatchMetrics is the batched-oracle instrument set, fed by the
// server's POST /v1/batch handler.
type BatchMetrics struct {
	// Requests counts batch requests accepted for execution:
	// polora_batch_requests_total.
	Requests *Counter
	// Items counts executed batch items by operation and outcome:
	// polora_batch_items_total{op="extract"|"diff",outcome="ok"|"error"}.
	Items *CounterVec
	// ItemDuration is the per-item execution latency:
	// polora_batch_item_duration_seconds{op}.
	ItemDuration *HistogramVec
}

// NewBatchMetrics registers the batch instrument set on r (nil-safe).
func NewBatchMetrics(r *Registry) *BatchMetrics {
	return &BatchMetrics{
		Requests: r.Counter("polora_batch_requests_total",
			"Batch requests accepted for execution."),
		Items: r.CounterVec("polora_batch_items_total",
			"Executed batch items by operation and outcome.", "op", "outcome"),
		ItemDuration: r.HistogramVec("polora_batch_item_duration_seconds",
			"Per-item batch execution latency by operation.", DefBuckets, "op"),
	}
}

// MetamorphMetrics is the metamorphic-fuzzing instrument set, fed by
// the internal/metamorph campaign runner behind `polora fuzz`.
type MetamorphMetrics struct {
	// Rounds counts completed mutation rounds:
	// polora_fuzz_rounds_total.
	Rounds *Counter
	// Mutations counts successful rewrites by mutator:
	// polora_fuzz_mutations_total{mutator}.
	Mutations *CounterVec
	// Violations counts invariant failures by invariant name:
	// polora_fuzz_violations_total{invariant}.
	Violations *CounterVec
	// RoundDuration is wall time of one mutate+extract+check round:
	// polora_fuzz_round_duration_seconds.
	RoundDuration *Histogram
}

// NewMetamorphMetrics registers the fuzzing instrument set on r
// (nil-safe).
func NewMetamorphMetrics(r *Registry) *MetamorphMetrics {
	return &MetamorphMetrics{
		Rounds: r.Counter("polora_fuzz_rounds_total",
			"Completed metamorphic mutation rounds."),
		Mutations: r.CounterVec("polora_fuzz_mutations_total",
			"Successful semantics-preserving rewrites by mutator.", "mutator"),
		Violations: r.CounterVec("polora_fuzz_violations_total",
			"Metamorphic invariant failures by invariant.", "invariant"),
		RoundDuration: r.Histogram("polora_fuzz_round_duration_seconds",
			"Wall time of one mutate+extract+check round.", DefBuckets),
	}
}

// CampaignMetrics is the coverage-guided campaign instrument set, fed by
// internal/campaign behind `polora fuzz` and polorad's /v1/campaign.
type CampaignMetrics struct {
	// Rounds counts completed campaign rounds:
	// polora_campaign_rounds_total.
	Rounds *Counter
	// NewCoverage counts rounds that produced a coverage key not seen
	// before in their shard: polora_campaign_new_coverage_total.
	NewCoverage *Counter
	// Crashers counts triaged crashers by kind:
	// polora_campaign_crashers_total{kind="unique"|"duplicate"}.
	Crashers *CounterVec
	// MinimizerSteps counts re-verification extractions spent shrinking
	// crasher traces: polora_campaign_minimizer_steps_total.
	MinimizerSteps *Counter
	// Energy is the merged per-mutator scheduling energy after a
	// campaign: polora_campaign_mutator_energy{mutator}.
	Energy *GaugeVec
}

// NewCampaignMetrics registers the campaign instrument set on r
// (nil-safe).
func NewCampaignMetrics(r *Registry) *CampaignMetrics {
	return &CampaignMetrics{
		Rounds: r.Counter("polora_campaign_rounds_total",
			"Completed coverage-guided campaign rounds."),
		NewCoverage: r.Counter("polora_campaign_new_coverage_total",
			"Campaign rounds that discovered a new coverage key in their shard."),
		Crashers: r.CounterVec("polora_campaign_crashers_total",
			"Triaged crashers by kind (unique, duplicate).", "kind"),
		MinimizerSteps: r.Counter("polora_campaign_minimizer_steps_total",
			"Re-verification extractions spent minimizing crasher traces."),
		Energy: r.GaugeVec("polora_campaign_mutator_energy",
			"Merged per-mutator scheduling energy after a campaign.", "mutator"),
	}
}

// ReconcileMetrics is the continuous-watch controller's instrument set,
// fed by internal/reconcile behind `polorad -watch`. The pair label is
// the canonical drift pair key ("a~b", names sorted), bounded by the
// number of registered library pairs.
type ReconcileMetrics struct {
	// Runs counts completed reconcile cycles (source→plan→apply):
	// polora_reconcile_runs_total.
	Runs *Counter
	// Errors counts pair reconciliations that failed (and cycle-level
	// failures such as an unreadable registry):
	// polora_reconcile_errors_total.
	Errors *Counter
	// Requeues counts enqueues coalesced onto an already-pending
	// reconciliation of the same library:
	// polora_reconcile_requeues_total.
	Requeues *Counter
	// PairsReconciled counts per-pair timeline appends:
	// polora_reconcile_pairs_total.
	PairsReconciled *Counter
	// Duration is the wall time of one reconcile cycle:
	// polora_reconcile_duration_seconds.
	Duration *Histogram
	// Pending is the number of libraries currently awaiting
	// reconciliation: polora_reconcile_pending_libraries.
	Pending *Gauge
	// Drift is the latest distinct-deviation count per pair:
	// polora_drift_deviations{pair}.
	Drift *GaugeVec
	// Alert is 1 while a pair's drift alert is firing:
	// polora_drift_alert{pair}.
	Alert *GaugeVec
	// TimelineEntries is the persisted drift-timeline length:
	// polora_drift_timeline_entries.
	TimelineEntries *Gauge
}

// NewReconcileMetrics registers the reconcile instrument set on r
// (nil-safe).
func NewReconcileMetrics(r *Registry) *ReconcileMetrics {
	return &ReconcileMetrics{
		Runs: r.Counter("polora_reconcile_runs_total",
			"Completed reconcile cycles (source, plan, apply)."),
		Errors: r.Counter("polora_reconcile_errors_total",
			"Reconcile failures (per pair, plus cycle-level errors)."),
		Requeues: r.Counter("polora_reconcile_requeues_total",
			"Enqueues coalesced onto an already-pending reconciliation."),
		PairsReconciled: r.Counter("polora_reconcile_pairs_total",
			"Pair reconciliations that appended a drift-timeline entry."),
		Duration: r.Histogram("polora_reconcile_duration_seconds",
			"Wall time of one reconcile cycle.", DefBuckets),
		Pending: r.Gauge("polora_reconcile_pending_libraries",
			"Libraries currently awaiting reconciliation."),
		Drift: r.GaugeVec("polora_drift_deviations",
			"Latest distinct policy deviations by library pair.", "pair"),
		Alert: r.GaugeVec("polora_drift_alert",
			"1 while the pair's drift alert is firing.", "pair"),
		TimelineEntries: r.Gauge("polora_drift_timeline_entries",
			"Persisted drift-timeline entries."),
	}
}

// ExtractMetrics is the extractor instrument set, fed by oracle.Extract
// and the analyzer. The mode label is "may" or "must"; the domain label
// is the ID of the check domain the extraction ran under (e.g.
// "securitymanager", "cryptoapi"), so one process serving several
// domains exposes per-domain extraction series.
type ExtractMetrics struct {
	// Extractions counts Extract calls by check domain:
	// policyoracle_extractions_total{domain}.
	Extractions *CounterVec
	// ModeDuration is the wall time of one full analysis pass:
	// policyoracle_extract_mode_duration_seconds{mode,domain}.
	ModeDuration *HistogramVec
	// EntryDuration is the per-entry-point analysis latency:
	// policyoracle_extract_entry_duration_seconds{mode,domain}.
	EntryDuration *HistogramVec
	// WorkerBusy accumulates per-entry analysis time:
	// policyoracle_extract_worker_busy_seconds_total{mode,domain}.
	// Worker-pool utilization over a window is
	// rate(worker_busy) / (rate(mode_duration_sum) * workers).
	WorkerBusy *CounterVec
	// Workers is the configured per-mode worker count:
	// policyoracle_extract_workers.
	Workers *Gauge
	// Per-phase analysis work counters, the telemetry form of
	// analysis.Stats: policyoracle_analysis_*_total{mode,domain}.
	MethodAnalyses *CounterVec
	MemoHits       *CounterVec
	CPRuns         *CounterVec
	CPHits         *CounterVec
	EntryPoints    *CounterVec
	// Incremental-extraction instruments, fed by
	// oracle.ExtractIncremental: entry policies spliced from the
	// previous extraction (polora_incremental_reused_total), entries
	// re-analyzed (polora_incremental_reanalyzed_total), methods
	// content-hashed (polora_incremental_hash_total), and the per-entry
	// dependency-set size (polora_incremental_depset_size).
	IncrementalReused     *Counter
	IncrementalReanalyzed *Counter
	IncrementalHashed     *Counter
	DepSetSize            *Histogram
	// Cross-library summary-cache instruments, fed by extraction when an
	// oracle.SummaryCache is attached: entry policies spliced from a
	// previous extraction of any library in the process
	// (polora_summary_cache_hit_total{domain}) and entries that had to be
	// analyzed (polora_summary_cache_miss_total{domain}). Cache keys
	// include the domain ID, so hits never cross domains and the label
	// attributes each lookup to the domain whose key it used.
	SummaryCacheHits   *CounterVec
	SummaryCacheMisses *CounterVec
}

// DepSetBuckets size the dependency-set histogram: most entries reach a
// handful of methods, deep API facades reach hundreds.
var DepSetBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// NewExtractMetrics registers the extractor instrument set on r
// (nil-safe).
func NewExtractMetrics(r *Registry) *ExtractMetrics {
	return &ExtractMetrics{
		Extractions: r.CounterVec("policyoracle_extractions_total",
			"Full policy extractions performed by check domain.", "domain"),
		ModeDuration: r.HistogramVec("policyoracle_extract_mode_duration_seconds",
			"Wall time of one analysis pass by mode and check domain.", DefBuckets, "mode", "domain"),
		EntryDuration: r.HistogramVec("policyoracle_extract_entry_duration_seconds",
			"Per-entry-point analysis latency by mode and check domain.", DefBuckets, "mode", "domain"),
		WorkerBusy: r.CounterVec("policyoracle_extract_worker_busy_seconds_total",
			"Cumulative per-entry analysis time by mode and check domain.", "mode", "domain"),
		Workers: r.Gauge("policyoracle_extract_workers",
			"Configured entry-point workers per analysis mode."),
		MethodAnalyses: r.CounterVec("policyoracle_analysis_method_analyses_total",
			"SPDA solves (summary-cache misses) by mode and check domain.", "mode", "domain"),
		MemoHits: r.CounterVec("policyoracle_analysis_memo_hits_total",
			"Summary-cache hits by mode and check domain.", "mode", "domain"),
		CPRuns: r.CounterVec("policyoracle_analysis_cp_runs_total",
			"Constant-propagation solves by mode and check domain.", "mode", "domain"),
		CPHits: r.CounterVec("policyoracle_analysis_cp_hits_total",
			"Constant-propagation cache hits by mode and check domain.", "mode", "domain"),
		EntryPoints: r.CounterVec("policyoracle_analysis_entry_points_total",
			"Entry points analyzed by mode and check domain.", "mode", "domain"),
		IncrementalReused: r.Counter("polora_incremental_reused_total",
			"Entry policies spliced unchanged from the previous extraction."),
		IncrementalReanalyzed: r.Counter("polora_incremental_reanalyzed_total",
			"Entry points re-analyzed by incremental extractions."),
		IncrementalHashed: r.Counter("polora_incremental_hash_total",
			"Methods content-hashed by incremental extractions."),
		DepSetSize: r.Histogram("polora_incremental_depset_size",
			"Per-entry dependency-set size (methods reached by one entry analysis).",
			DepSetBuckets),
		SummaryCacheHits: r.CounterVec("polora_summary_cache_hit_total",
			"Entry policies spliced from the cross-library summary cache, by check domain.", "domain"),
		SummaryCacheMisses: r.CounterVec("polora_summary_cache_miss_total",
			"Entry points analyzed because no valid summary-cache entry existed, by check domain.", "domain"),
	}
}

// ObserveEntry records one entry-point analysis: its latency histogram
// sample and its contribution to worker busy time. Nil-safe.
func (m *ExtractMetrics) ObserveEntry(mode, domain string, d time.Duration) {
	if m == nil {
		return
	}
	m.EntryDuration.With(mode, domain).ObserveDuration(d)
	m.WorkerBusy.With(mode, domain).Add(d.Seconds())
}

// Summary renders the collected extraction metrics as a human-readable
// phase-timing table, the body of the CLIs' -timings output. Rows are
// per mode; when passes ran under more than one check domain the mode is
// qualified as "mode@domain" so the rows stay attributable. Nil-safe
// (returns "").
func (m *ExtractMetrics) Summary() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phase timings (%.0f extraction(s)):\n", m.Extractions.Sum())
	var domains []string
	for _, ls := range m.ModeDuration.LabelSets() {
		if len(ls) == 2 && !contains(domains, ls[1]) {
			domains = append(domains, ls[1])
		}
	}
	sort.Strings(domains)
	for _, domain := range domains {
		for _, mode := range []string{"may", "must"} {
			h := m.ModeDuration.With(mode, domain)
			if h.Count() == 0 {
				continue
			}
			row := mode
			if len(domains) > 1 {
				row = mode + "@" + domain
			}
			wall := time.Duration(h.Sum() * float64(time.Second)).Round(time.Millisecond)
			busy := time.Duration(m.WorkerBusy.With(mode, domain).Value() * float64(time.Second)).Round(time.Millisecond)
			fmt.Fprintf(&b, "  %-4s passes %.0f  wall %v  busy %v  entries %.0f  solves %.0f  memo hits %.0f  cp runs %.0f  cp hits %.0f\n",
				row, h.Count(), wall, busy,
				m.EntryPoints.With(mode, domain).Value(), m.MethodAnalyses.With(mode, domain).Value(),
				m.MemoHits.With(mode, domain).Value(), m.CPRuns.With(mode, domain).Value(), m.CPHits.With(mode, domain).Value())
		}
	}
	return b.String()
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// ObserveMode records one completed analysis pass: its wall time and the
// per-phase work counters accumulated by the analyzer. Nil-safe.
func (m *ExtractMetrics) ObserveMode(mode, domain string, d time.Duration, methodAnalyses, memoHits, cpRuns, cpHits, entryPoints int) {
	if m == nil {
		return
	}
	m.ModeDuration.With(mode, domain).ObserveDuration(d)
	m.MethodAnalyses.With(mode, domain).Add(float64(methodAnalyses))
	m.MemoHits.With(mode, domain).Add(float64(memoHits))
	m.CPRuns.With(mode, domain).Add(float64(cpRuns))
	m.CPHits.With(mode, domain).Add(float64(cpHits))
	m.EntryPoints.With(mode, domain).Add(float64(entryPoints))
}
