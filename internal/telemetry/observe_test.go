package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// referenceBucket is the specification Observe must match: the index of
// the first bucket bound >= v (len(bounds) = the +Inf bucket), found by
// linear scan.
func referenceBucket(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// TestObserveMatchesLinearReference drives the binary-search bucket
// selection against the linear-scan specification over bound-straddling
// samples: below, exactly on, and above every bound, plus extremes.
func TestObserveMatchesLinearReference(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10}
	samples := []float64{-1, 0, 1e9}
	for _, b := range bounds {
		samples = append(samples, b*0.999, b, b*1.001)
	}
	for _, v := range samples {
		r := New()
		h := r.Histogram("t_total", "t", bounds)
		h.Observe(v)
		want := referenceBucket(bounds, v)
		for i := 0; i <= len(bounds); i++ {
			wantCount := 0.0
			if i == want {
				wantCount = 1
			}
			if got := h.counts[i].load(); got != wantCount {
				t.Errorf("Observe(%v): bucket[%d] = %v, want %v", v, i, got, wantCount)
			}
		}
	}
}

// TestObserveGoldenScrape locks the exposition bytes of a histogram fed a
// fixed sample stream: the bucket counts (cumulative, le-labelled), sum,
// and count must be exactly what the linear-scan reference produces.
func TestObserveGoldenScrape(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	r := New()
	h := r.Histogram("golden_seconds", "golden", bounds)
	stream := []float64{0.5, 1, 1.5, 2, 3, 4, 5, 8, 9, 100}
	cum := make([]float64, len(bounds)+1)
	sum := 0.0
	for _, v := range stream {
		h.Observe(v)
		for i := referenceBucket(bounds, v); i <= len(bounds); i++ {
			cum[i]++
		}
		sum += v
	}
	text := r.Text()
	for i, b := range bounds {
		want := fmt.Sprintf("golden_seconds_bucket{le=%q} %v", formatFloat(b), cum[i])
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
	for _, want := range []string{
		fmt.Sprintf("golden_seconds_bucket{le=\"+Inf\"} %v", cum[len(bounds)]),
		fmt.Sprintf("golden_seconds_sum %v", sum),
		fmt.Sprintf("golden_seconds_count %v", float64(len(stream))),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestObserveAllocFree asserts the Observe hot path performs no heap
// allocations.
func TestObserveAllocFree(t *testing.T) {
	r := New()
	h := r.Histogram("t_total", "t", DefBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Errorf("Observe allocates %v objects per call", n)
	}
}

// BenchmarkHistogramObserve measures bucket selection across bucket
// counts. The ns/op growth from 20 to 320 buckets should track log2(n)
// (≈4 extra probes), not n — a linear scan would grow ~16×.
func BenchmarkHistogramObserve(b *testing.B) {
	for _, n := range []int{20, 80, 320} {
		b.Run(fmt.Sprintf("buckets=%d", n), func(b *testing.B) {
			bounds := make([]float64, n)
			for i := range bounds {
				bounds[i] = float64(i + 1)
			}
			r := New()
			h := r.Histogram("t_total", "t", bounds)
			// Worst case for a linear scan: the sample lands in the
			// last finite bucket.
			v := float64(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Observe(v)
			}
		})
	}
}

var sortSearchSink int

// BenchmarkHistogramObserveSortSearch is the baseline the inline search
// replaced: the same lookup through sort.SearchFloat64s.
func BenchmarkHistogramObserveSortSearch(b *testing.B) {
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sortSearchSink = sort.SearchFloat64s(bounds, 20)
	}
}
