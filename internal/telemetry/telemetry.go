// Package telemetry is the observability layer of the policy oracle:
// a stdlib-only metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms) with a Prometheus-text-format
// exposition handler, plus slog-based structured logging constructors.
//
// The package is designed to be zero-cost when disabled. Every
// constructor and every instrument method is nil-safe: a nil *Registry
// yields nil instruments, and operating on a nil instrument is a no-op
// behind a single pointer comparison. Library-mode extraction therefore
// pays nothing unless a caller wires a registry in, and instrumented
// code never branches on a separate "enabled" flag.
//
// Metric naming follows Prometheus conventions: snake_case names,
// `_total` suffix on counters, `_seconds` unit suffixes, and labels for
// bounded dimensions only (mode, route, status code, cache tier). The
// canonical instrument sets for each subsystem live in sets.go so the
// whole system's metric surface is documented in one place.
package telemetry

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------------
// Instruments

// value is a float64 cell updated atomically via its bit pattern, the
// representation Prometheus uses for every sample.
type value struct{ bits atomic.Uint64 }

func (v *value) add(f float64) {
	for {
		old := v.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + f)
		if v.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (v *value) set(f float64) { v.bits.Store(math.Float64bits(f)) }
func (v *value) load() float64 { return math.Float64frombits(v.bits.Load()) }

// Counter is a monotonically increasing value. All methods are nil-safe
// no-ops, so disabled telemetry costs one pointer comparison.
type Counter struct{ v value }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n float64) {
	if c == nil || n < 0 {
		return
	}
	c.v.add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ v value }

// Set replaces the gauge value.
func (g *Gauge) Set(n float64) {
	if g == nil {
		return
	}
	g.v.set(n)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n float64) {
	if g == nil {
		return
	}
	g.v.add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram accumulates observations into fixed buckets. Buckets are
// chosen at registration and never reallocated, so Observe is lock-free:
// one binary search plus three atomic adds.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []value   // len(bounds)+1; last is the overflow (+Inf) bucket
	sum    value
	count  value
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Inline binary search for the first bound >= v. Equivalent to
	// sort.SearchFloat64s but without the closure call per probe, which
	// matters for instruments observed on analysis hot paths.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].add(1)
	h.sum.add(v)
	h.count.add(1)
}

// ObserveDuration records a duration in seconds, the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() float64 {
	if h == nil {
		return 0
	}
	return h.count.load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// ---------------------------------------------------------------------------
// Families and vectors

// metricKind is the TYPE line of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one labeled instrument inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	histogram   *Histogram
}

// family is one named metric with a fixed label schema and one child per
// distinct label-value tuple (a single unlabeled child when the schema
// is empty).
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		case kindHistogram:
			c.histogram = &Histogram{
				bounds: f.buckets,
				counts: make([]value, len(f.buckets)+1),
			}
		}
		f.children[key] = c
	}
	return c
}

// CounterVec is a counter family with labels; With resolves one series.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use. Nil-safe: a nil vec yields a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.childFor(values).counter
}

// Sum returns the summed value of every series in the family. Nil-safe
// (a nil vec sums to 0).
func (v *CounterVec) Sum() float64 {
	if v == nil {
		return 0
	}
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	var s float64
	for _, c := range v.fam.children {
		s += c.counter.Value()
	}
	return s
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.childFor(values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.childFor(values).histogram
}

// LabelSets returns the label-value tuple of every series observed so
// far, sorted lexicographically. Nil-safe (a nil vec has no series).
func (v *HistogramVec) LabelSets() [][]string {
	if v == nil {
		return nil
	}
	v.fam.mu.Lock()
	keys := make([]string, 0, len(v.fam.children))
	for k := range v.fam.children {
		keys = append(keys, k)
	}
	v.fam.mu.Unlock()
	sort.Strings(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, strings.Split(k, "\x00"))
	}
	return out
}

// ---------------------------------------------------------------------------
// Registry

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call New. A nil
// *Registry is the disabled state: its constructors return nil
// instruments whose methods no-op.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string // registration order; exposition sorts by name anyway
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register returns the family for name, creating it if absent. A
// re-registration with a conflicting schema panics: metric names are a
// global contract and silently forking one corrupts every scrape.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	sort.Float64s(f.buckets)
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, nil).childFor(nil).counter
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, nil).childFor(nil).gauge
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (DefBuckets if empty).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.register(name, help, kindHistogram, nil, buckets).childFor(nil).histogram
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets)}
}

// ---------------------------------------------------------------------------
// Exposition

// WriteText renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, histograms as cumulative _bucket/_sum/_count series. The
// output is deterministic, which the golden scrape tests rely on.
func (r *Registry) WriteText(w *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.writeText(w)
	}
}

// Text renders the full exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler serves the exposition over HTTP, the /metricsz endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Text())
	})
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*child, 0, len(keys))
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.Unlock()
	if len(kids) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range kids {
		switch f.kind {
		case kindCounter:
			writeSample(b, f.name, f.labels, c.labelValues, "", "", c.counter.Value())
		case kindGauge:
			writeSample(b, f.name, f.labels, c.labelValues, "", "", c.gauge.Value())
		case kindHistogram:
			h := c.histogram
			cum := 0.0
			for i, bound := range h.bounds {
				cum += h.counts[i].load()
				writeSample(b, f.name+"_bucket", f.labels, c.labelValues,
					"le", formatFloat(bound), cum)
			}
			cum += h.counts[len(h.bounds)].load()
			writeSample(b, f.name+"_bucket", f.labels, c.labelValues, "le", "+Inf", cum)
			writeSample(b, f.name+"_sum", f.labels, c.labelValues, "", "", h.Sum())
			writeSample(b, f.name+"_count", f.labels, c.labelValues, "", "", h.Count())
		}
	}
}

// writeSample emits one series line, appending an extra label pair (the
// histogram `le` bound) when extraKey is non-empty.
func writeSample(b *strings.Builder, name string, labels, values []string, extraKey, extraVal string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			// %q escapes backslash, quote, and newline — exactly the
			// Prometheus label-value escaping rules.
			fmt.Fprintf(b, "%s=%q", l, values[i])
		}
		if extraKey != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", extraKey, extraVal)
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
