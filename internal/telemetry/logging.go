package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the service's structured logger. Format is "text"
// (human-readable logfmt-style, the default) or "json" (one JSON object
// per line for log pipelines); level is parsed by ParseLevel.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library use and tests, so instrumented packages can log
// unconditionally through a non-nil *slog.Logger.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler is a slog.Handler that drops every record. (slog's own
// DiscardHandler arrived after this module's minimum Go version.)
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
