package telemetry

import (
	"bytes"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "c")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // counters reject decreases
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "g")
	g.Set(10)
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 9.5 {
		t.Errorf("gauge = %v, want 9.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "h", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 99} {
		h.Observe(v)
	}
	h.ObserveDuration(20 * time.Millisecond)
	if got := h.Count(); got != 6 {
		t.Errorf("count = %v, want 6", got)
	}
	text := r.Text()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 2`,
		`h_seconds_bucket{le="0.1"} 4`,
		`h_seconds_bucket{le="1"} 5`,
		`h_seconds_bucket{le="+Inf"} 6`,
		`h_seconds_count 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "x").Inc()
	r.Gauge("y", "y").Set(1)
	r.Histogram("z_seconds", "z", nil).Observe(1)
	r.CounterVec("v_total", "v", "l").With("a").Inc()
	r.HistogramVec("w_seconds", "w", nil, "l").With("a").Observe(1)
	r.GaugeVec("u", "u", "l").With("a").Set(1)
	if got := r.Text(); got != "" {
		t.Errorf("nil registry renders %q", got)
	}
	// The subsystem sets must be safe on a nil registry too.
	NewHTTPMetrics(nil).Requests.With("GET", "/x", "200").Inc()
	NewStoreMetrics(nil).QueueWait.Observe(1)
	m := NewExtractMetrics(nil)
	m.ObserveEntry("may", "securitymanager", time.Second)
	m.ObserveMode("may", "securitymanager", time.Second, 1, 2, 3, 4, 5)
	_ = m.Summary()
}

func TestIdempotentRegistration(t *testing.T) {
	r := New()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("same_total", "help")
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	vec := r.CounterVec("req_total", "reqs", "code")
	h := r.Histogram("lat_seconds", "lat", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes := []string{"200", "404", "500"}
			for j := 0; j < 1000; j++ {
				vec.With(codes[j%len(codes)]).Inc()
				h.Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	sum := 0.0
	for _, code := range []string{"200", "404", "500"} {
		sum += vec.With(code).Value()
	}
	if sum != 8000 {
		t.Errorf("counter sum = %v, want 8000", sum)
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %v, want 8000", h.Count())
	}
}

// TestGoldenScrape pins the exact exposition bytes: family ordering,
// HELP/TYPE lines, label rendering, histogram series. The scrape format
// is a wire contract — update this golden deliberately.
func TestGoldenScrape(t *testing.T) {
	r := New()
	reqs := r.CounterVec("polorad_http_requests_total",
		"Completed HTTP requests by method, route, and status code.",
		"method", "route", "code")
	reqs.With("POST", "/v1/extract", "200").Add(3)
	reqs.With("POST", "/v1/diff", "404").Inc()
	r.Gauge("polorad_http_inflight_requests", "Requests currently being served.").Set(2)
	h := r.Histogram("polorad_store_extract_queue_wait_seconds",
		"Time spent waiting for an extraction slot.", []float64{0.001, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(3)

	want := `# HELP polorad_http_inflight_requests Requests currently being served.
# TYPE polorad_http_inflight_requests gauge
polorad_http_inflight_requests 2
# HELP polorad_http_requests_total Completed HTTP requests by method, route, and status code.
# TYPE polorad_http_requests_total counter
polorad_http_requests_total{method="POST",route="/v1/diff",code="404"} 1
polorad_http_requests_total{method="POST",route="/v1/extract",code="200"} 3
# HELP polorad_store_extract_queue_wait_seconds Time spent waiting for an extraction slot.
# TYPE polorad_store_extract_queue_wait_seconds histogram
polorad_store_extract_queue_wait_seconds_bucket{le="0.001"} 1
polorad_store_extract_queue_wait_seconds_bucket{le="0.1"} 2
polorad_store_extract_queue_wait_seconds_bucket{le="+Inf"} 3
polorad_store_extract_queue_wait_seconds_sum 3.0505
polorad_store_extract_queue_wait_seconds_count 3
`
	if got := r.Text(); got != want {
		t.Errorf("golden scrape mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandler(t *testing.T) {
	r := New()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body %q", rec.Body.String())
	}
}

func TestLoggers(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hello", "k", "v")
	if !strings.Contains(buf.String(), `"k":"v"`) {
		t.Errorf("json log output: %q", buf.String())
	}
	if _, err := NewLogger(io.Discard, "xml", slog.LevelInfo); err == nil {
		t.Error("bad format accepted")
	}
	if _, err := ParseLevel("debug"); err != nil {
		t.Error(err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
	NopLogger().Error("dropped") // must not panic or write anywhere visible
}
