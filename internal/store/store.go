// Package store is polorad's content-addressed policy store. A library
// bundle (name + MJ sources + semantic extraction options) is addressed
// by its oracle.Fingerprint; the policy set extracted from it persists as
// a policy-wire-format JSON blob (the same bytes `polora export` writes)
// under the store directory, with an in-memory LRU in front and
// single-flight deduplication so concurrent requests for one fingerprint
// extract at most once.
//
// Layout under the store directory:
//
//	bundles/<fingerprint>.json    uploaded bundle (name, options, sources)
//	policies/<fingerprint>.json   extracted policies, policy wire format
//
// Blobs read back from disk are validated by re-importing them; a
// corrupted blob is discarded and re-extracted from its bundle, so the
// store self-heals from partial writes or bit rot.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
)

// ErrNotFound reports a fingerprint with no uploaded bundle.
var ErrNotFound = errors.New("store: no bundle with this fingerprint")

// ErrMalformed reports an address that is not a well-formed fingerprint.
var ErrMalformed = errors.New("store: malformed fingerprint")

// Bundle is the persisted form of an uploaded library.
type Bundle struct {
	Fingerprint string            `json:"fingerprint"`
	Name        string            `json:"name"`
	Options     OptionsWire       `json:"options"`
	Sources     map[string]string `json:"sources"`
}

// Config configures a Store.
type Config struct {
	// Dir is the store directory, created if absent.
	Dir string
	// CacheEntries caps the in-memory blob LRU (default 128).
	CacheEntries int
	// Parallel is the oracle worker count per extraction
	// (oracle.Options.Parallel; <= 0 means GOMAXPROCS).
	Parallel int
	// MaxInflight bounds concurrent extractions across all fingerprints
	// (default 2). Single-flight already collapses same-fingerprint
	// requests; this bounds distinct ones.
	MaxInflight int
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// MemHits served from the LRU, DiskHits from a validated persisted
	// blob, Misses required extraction.
	MemHits  uint64 `json:"memHits"`
	DiskHits uint64 `json:"diskHits"`
	Misses   uint64 `json:"misses"`
	// Coalesced requests waited on an identical in-flight request
	// instead of doing their own work.
	Coalesced uint64 `json:"coalesced"`
	// Extractions performed (== Misses unless extraction failed early).
	Extractions uint64 `json:"extractions"`
	// CorruptBlobs found on disk and re-extracted.
	CorruptBlobs uint64 `json:"corruptBlobs"`
	// Bundles uploaded (newly created, not re-uploads).
	Bundles uint64 `json:"bundles"`
	// Diffs computed.
	Diffs uint64 `json:"diffs"`
}

// Store is a content-addressed policy store. It is safe for concurrent
// use.
type Store struct {
	dir      string
	parallel int
	sem      chan struct{} // bounds concurrent extractions

	mu     sync.Mutex
	cache  *blobLRU
	flight map[string]*flightCall

	memHits, diskHits, misses, coalesced atomic.Uint64
	extractions, corruptBlobs            atomic.Uint64
	bundles, diffs                       atomic.Uint64

	// extract produces the policy blob for a bundle; tests may stub it.
	extract func(*Bundle) ([]byte, error)
}

type flightCall struct {
	done chan struct{}
	blob []byte
	err  error
}

// Open creates (if needed) and opens a store directory.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	for _, sub := range []string{"bundles", "policies"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	s := &Store{
		dir:      cfg.Dir,
		parallel: cfg.Parallel,
		sem:      make(chan struct{}, cfg.MaxInflight),
		cache:    newBlobLRU(cfg.CacheEntries),
		flight:   make(map[string]*flightCall),
	}
	s.extract = s.extractBundle
	return s, nil
}

func (s *Store) bundlePath(fp string) string {
	return filepath.Join(s.dir, "bundles", fp+".json")
}

func (s *Store) policyPath(fp string) string {
	return filepath.Join(s.dir, "policies", fp+".json")
}

// Put fingerprints and persists a bundle, returning its address. A
// re-upload of existing content is a no-op with created == false.
func (s *Store) Put(name string, sources map[string]string, w OptionsWire) (fp string, created bool, err error) {
	if name == "" {
		return "", false, errors.New("store: empty library name")
	}
	if len(sources) == 0 {
		return "", false, errors.New("store: empty source bundle")
	}
	opts, err := w.ToOracle()
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	// Reject bundles that don't load: a broken upload should fail at Put,
	// not poison every later extraction of its fingerprint.
	if _, err := oracle.LoadLibrary(name, sources); err != nil {
		return "", false, fmt.Errorf("store: bundle does not load: %w", err)
	}
	fp = oracle.Fingerprint(name, sources, opts)
	path := s.bundlePath(fp)
	if _, err := os.Stat(path); err == nil {
		return fp, false, nil
	}
	data, err := json.MarshalIndent(&Bundle{
		Fingerprint: fp, Name: name, Options: w, Sources: sources,
	}, "", "  ")
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(path, data); err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	s.bundles.Add(1)
	return fp, true, nil
}

// Bundle loads the persisted bundle addressed by fp.
func (s *Store) Bundle(fp string) (*Bundle, error) {
	if !oracle.IsFingerprint(fp) {
		return nil, fmt.Errorf("%w: %q", ErrMalformed, fp)
	}
	data, err := os.ReadFile(s.bundlePath(fp))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, fp)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: corrupt bundle %s: %w", fp, err)
	}
	return &b, nil
}

// Policies returns the policy blob for a fingerprint, extracting it from
// the bundle on a cold cache. The bytes are exactly what
// policy.ExportJSON produced (and `polora export` writes); callers must
// not mutate them.
func (s *Store) Policies(fp string) ([]byte, error) {
	if !oracle.IsFingerprint(fp) {
		return nil, fmt.Errorf("%w: %q", ErrMalformed, fp)
	}
	s.mu.Lock()
	if blob, ok := s.cache.get(fp); ok {
		s.mu.Unlock()
		s.memHits.Add(1)
		return blob, nil
	}
	if c, ok := s.flight[fp]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		<-c.done
		return c.blob, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[fp] = c
	s.mu.Unlock()

	c.blob, c.err = s.loadOrExtract(fp)
	s.mu.Lock()
	delete(s.flight, fp)
	if c.err == nil {
		s.cache.add(fp, c.blob)
	}
	s.mu.Unlock()
	close(c.done)
	return c.blob, c.err
}

// loadOrExtract serves one fingerprint from disk, falling back to
// extraction. Exactly one goroutine runs this per in-flight fingerprint.
func (s *Store) loadOrExtract(fp string) ([]byte, error) {
	path := s.policyPath(fp)
	if blob, err := os.ReadFile(path); err == nil {
		if _, err := policy.ImportJSON(blob); err == nil {
			s.diskHits.Add(1)
			return blob, nil
		}
		s.corruptBlobs.Add(1)
	}
	s.misses.Add(1)
	b, err := s.Bundle(fp)
	if err != nil {
		return nil, err
	}
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.extractions.Add(1)
	blob, err := s.extract(b)
	if err != nil {
		return nil, err
	}
	if err := writeAtomic(path, blob); err != nil {
		return nil, fmt.Errorf("store: persisting policies: %w", err)
	}
	return blob, nil
}

func (s *Store) extractBundle(b *Bundle) ([]byte, error) {
	opts, err := b.Options.ToOracle()
	if err != nil {
		return nil, fmt.Errorf("store: bundle %s: %w", b.Fingerprint, err)
	}
	opts.Parallel = s.parallel
	lib, err := oracle.LoadLibrary(b.Name, b.Sources)
	if err != nil {
		return nil, fmt.Errorf("store: bundle %s: %w", b.Fingerprint, err)
	}
	lib.Extract(opts)
	return lib.Policies.ExportJSON()
}

// PolicySet returns the parsed policies for a fingerprint.
func (s *Store) PolicySet(fp string) (*policy.ProgramPolicies, error) {
	blob, err := s.Policies(fp)
	if err != nil {
		return nil, err
	}
	return policy.ImportJSON(blob)
}

// Diff differences the policies of two fingerprints. The report is the
// same value oracle.Diff computes on in-process libraries: the policy
// wire format round-trips everything differencing consumes.
func (s *Store) Diff(fpA, fpB string) (*diff.Report, error) {
	pa, err := s.PolicySet(fpA)
	if err != nil {
		return nil, err
	}
	pb, err := s.PolicySet(fpB)
	if err != nil {
		return nil, err
	}
	s.diffs.Add(1)
	return diff.Compare(pa, pb), nil
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Coalesced:    s.coalesced.Load(),
		Extractions:  s.extractions.Load(),
		CorruptBlobs: s.corruptBlobs.Load(),
		Bundles:      s.bundles.Load(),
		Diffs:        s.diffs.Load(),
	}
}

// CachedEntries reports the current LRU occupancy.
func (s *Store) CachedEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// writeAtomic writes data via a temp file + rename so readers never see
// a partial blob.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
