// Package store is polorad's content-addressed policy store. A library
// bundle (name + MJ sources + semantic extraction options) is addressed
// by its oracle.Fingerprint; the policy set extracted from it persists as
// a policy-wire-format JSON blob (the same bytes `polora export` writes)
// under the store directory, with an in-memory LRU in front and
// single-flight deduplication so concurrent requests for one fingerprint
// extract at most once.
//
// Layout under the store directory:
//
//	bundles/<fingerprint>.json    uploaded bundle (name, options, sources)
//	policies/<fingerprint>.json   extracted policies, policy wire format
//	deps/<fingerprint>.json       incremental sidecar (oracle.Snapshot sans
//	                              policies): method hashes + entry deps
//	names.json                    library name → latest fingerprint
//
// The sidecar and name index power delta-aware updates (Update): a new
// bundle for a known library seeds an incremental extraction from the
// previous fingerprint's policies and sidecar, re-analyzing only entry
// points whose dependency set changed. The sidecar is best-effort —
// losing it costs a full extraction, never correctness. The name index
// is not: the reconcile controller treats it as the registry of watched
// libraries, so writes go through fsync + atomic rename, index-write
// failures are returned to the caller, and a corrupt index is rebuilt
// from the bundles directory instead of being discarded.
//
// Blobs read back from disk are validated by re-importing them; a
// corrupted blob is discarded and re-extracted from its bundle, so the
// store self-heals from partial writes or bit rot.
//
// Reads take a context: a caller that goes away (client disconnect,
// server drain) stops waiting immediately, and when the last waiter on
// an in-flight extraction leaves, the extraction itself is cancelled.
package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// ErrNotFound reports a fingerprint with no uploaded bundle.
var ErrNotFound = errors.New("store: no bundle with this fingerprint")

// ErrMalformed reports an address that is not a well-formed fingerprint.
var ErrMalformed = errors.New("store: malformed fingerprint")

// Bundle is the persisted form of an uploaded library.
type Bundle struct {
	Fingerprint string            `json:"fingerprint"`
	Name        string            `json:"name"`
	Options     OptionsWire       `json:"options"`
	Sources     map[string]string `json:"sources"`
}

// Config configures a Store.
type Config struct {
	// Dir is the store directory, created if absent.
	Dir string
	// CacheEntries caps the in-memory blob LRU: 0 means the default of
	// 128, and a negative value disables the in-memory cache entirely
	// (every read is served from disk or extraction).
	CacheEntries int
	// Parallel is the oracle worker count per extraction
	// (oracle.Options.Parallel; <= 0 means GOMAXPROCS).
	Parallel int
	// MaxInflight bounds concurrent extractions across all fingerprints
	// (default 2). Single-flight already collapses same-fingerprint
	// requests; this bounds distinct ones.
	MaxInflight int
	// SummaryCacheEntries caps the cross-library summary cache shared by
	// every extraction this store performs: entry policies whose full
	// dependency cone hashes identically across bundles (forks, vendored
	// copies, re-uploads under new options) are spliced instead of
	// re-analyzed. 0 uses oracle.DefaultSummaryCacheCap; a negative value
	// disables the cache.
	SummaryCacheEntries int
	// Backends are consulted in order on a mem+disk miss, before local
	// extraction: the pluggable remote tiers of a distributed store
	// (peer replicas today; an object store tomorrow). A blob served by
	// a backend is validated and persisted locally, so later reads of
	// the fingerprint are disk hits. Empty means extraction is the only
	// fallback, the single-node behavior.
	Backends []Backend
	// Registry receives the store's and the extractor's metrics. Nil
	// disables instrumentation (the instruments become no-ops).
	Registry *telemetry.Registry
	// Logger receives structured store events (extraction start/finish,
	// corruption, eviction pressure). Nil discards them.
	Logger *slog.Logger
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// MemHits served from the LRU, DiskHits from a validated persisted
	// blob, Misses required extraction.
	MemHits  uint64 `json:"memHits"`
	DiskHits uint64 `json:"diskHits"`
	Misses   uint64 `json:"misses"`
	// Coalesced requests waited on an identical in-flight request
	// instead of doing their own work.
	Coalesced uint64 `json:"coalesced"`
	// Extractions performed (== Misses unless extraction failed early).
	Extractions uint64 `json:"extractions"`
	// CorruptBlobs found on disk and re-extracted.
	CorruptBlobs uint64 `json:"corruptBlobs"`
	// Bundles uploaded (newly created, not re-uploads).
	Bundles uint64 `json:"bundles"`
	// Diffs computed.
	Diffs uint64 `json:"diffs"`
	// Evictions dropped a blob from the in-memory LRU.
	Evictions uint64 `json:"evictions"`
	// BackendHits served a blob from a configured backend (for a peer
	// backend: fetched from another replica instead of extracting).
	BackendHits uint64 `json:"backendHits"`
}

// Store is a content-addressed policy store. It is safe for concurrent
// use.
type Store struct {
	dir      string
	parallel int
	sem      chan struct{} // bounds concurrent extractions
	backends []Backend
	tm       *telemetry.StoreMetrics
	xm       *telemetry.ExtractMetrics
	sums     *oracle.SummaryCache // nil when disabled
	log      *slog.Logger

	mu     sync.Mutex
	cache  *blobLRU
	flight map[string]*flightCall

	// namesMu serializes read-modify-write cycles on names.json; it is
	// separate from mu so index writes never block cache reads.
	namesMu sync.Mutex

	// updateMu guards updateLocks, the per-library-name mutexes that
	// serialize Update so concurrent PUTs of one name cannot interleave
	// their read-previous/extract/advance-index sequences.
	updateMu    sync.Mutex
	updateLocks map[string]*sync.Mutex

	memHits, diskHits, misses, coalesced atomic.Uint64
	extractions, corruptBlobs            atomic.Uint64
	bundles, diffs, evictions            atomic.Uint64
	backendHits                          atomic.Uint64

	// extract produces the policy blob for a bundle; tests may stub it.
	extract func(context.Context, *Bundle) ([]byte, error)
}

// flightCall is one in-flight load-or-extract. Waiters are refcounted:
// each caller waiting on done holds one reference, and when the last
// waiter abandons the call (its context was cancelled), it cancels the
// extraction context so the worker stops too.
type flightCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int // guarded by Store.mu
	blob    []byte
	err     error
}

// Open creates (if needed) and opens a store directory.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: empty directory")
	}
	for _, sub := range []string{"bundles", "policies", "deps", "campaigns"} {
		if err := os.MkdirAll(filepath.Join(cfg.Dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 128
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.NopLogger()
	}
	s := &Store{
		dir:         cfg.Dir,
		parallel:    cfg.Parallel,
		sem:         make(chan struct{}, cfg.MaxInflight),
		backends:    cfg.Backends,
		tm:          telemetry.NewStoreMetrics(cfg.Registry),
		xm:          telemetry.NewExtractMetrics(cfg.Registry),
		log:         cfg.Logger,
		cache:       newBlobLRU(cfg.CacheEntries),
		flight:      make(map[string]*flightCall),
		updateLocks: make(map[string]*sync.Mutex),
	}
	if cfg.SummaryCacheEntries >= 0 {
		s.sums = oracle.NewSummaryCache(cfg.SummaryCacheEntries)
	}
	s.extract = s.extractBundle
	return s, nil
}

func (s *Store) bundlePath(fp string) string {
	return filepath.Join(s.dir, "bundles", fp+".json")
}

func (s *Store) policyPath(fp string) string {
	return filepath.Join(s.dir, "policies", fp+".json")
}

func (s *Store) depsPath(fp string) string {
	return filepath.Join(s.dir, "deps", fp+".json")
}

func (s *Store) namesPath() string {
	return filepath.Join(s.dir, "names.json")
}

// SaveCampaign persists one completed campaign shard result under
// campaigns/<id>.json, so a polorad worker's contribution to a
// distributed campaign survives the process for postmortems. IDs come
// from the server's per-process job counter; the caller guarantees
// they are path-safe.
func (s *Store) SaveCampaign(id string, result []byte) (string, error) {
	p := filepath.Join(s.dir, "campaigns", id+".json")
	// Atomic rename, not a plain write: a crash mid-save must leave
	// either the previous complete result or none, never a truncated
	// JSON document a postmortem reader would choke on.
	if err := writeAtomic(p, result); err != nil {
		return "", fmt.Errorf("store: saving campaign %s: %w", id, err)
	}
	return p, nil
}

// Put fingerprints and persists a bundle, returning its address. A
// re-upload of existing content is a no-op with created == false.
func (s *Store) Put(name string, sources map[string]string, w OptionsWire) (fp string, created bool, err error) {
	if name == "" {
		return "", false, fmt.Errorf("store: %w: empty library name", ErrInvalid)
	}
	if len(sources) == 0 {
		return "", false, fmt.Errorf("store: %w: empty source bundle", ErrInvalid)
	}
	opts, err := w.ToOracle()
	if err != nil {
		// Double-wrap so callers can match both ErrInvalid and typed
		// option errors like secmodel.ErrUnknownDomain.
		return "", false, fmt.Errorf("store: %w: %w", ErrInvalid, err)
	}
	// Reject bundles that don't load: a broken upload should fail at Put,
	// not poison every later extraction of its fingerprint.
	if _, err := oracle.LoadLibrary(name, sources); err != nil {
		return "", false, fmt.Errorf("store: %w: bundle does not load: %v", ErrInvalid, err)
	}
	fp = oracle.Fingerprint(name, sources, opts)
	path := s.bundlePath(fp)
	if _, err := os.Stat(path); err == nil {
		if err := s.setLatestFingerprint(name, fp); err != nil {
			return "", false, err
		}
		return fp, false, nil
	}
	data, err := json.MarshalIndent(&Bundle{
		Fingerprint: fp, Name: name, Options: w, Sources: sources,
	}, "", "  ")
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(path, data); err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	s.bundles.Add(1)
	s.tm.Bundles.Inc()
	if err := s.setLatestFingerprint(name, fp); err != nil {
		return "", false, err
	}
	s.log.Info("store: bundle created", "fingerprint", fp, "library", name, "files", len(sources))
	return fp, true, nil
}

// latestFingerprint returns the most recently uploaded fingerprint for a
// library name, the seed candidate for delta-aware updates.
func (s *Store) latestFingerprint(name string) (string, bool) {
	s.namesMu.Lock()
	defer s.namesMu.Unlock()
	fp, ok := s.readNames()[name]
	return fp, ok
}

// Names snapshots the library registry: every uploaded library name
// mapped to its latest fingerprint. This is the source the reconcile
// controller watches, so it never fails soft — a corrupt index is
// rebuilt from the bundles directory before returning.
func (s *Store) Names() map[string]string {
	s.namesMu.Lock()
	defer s.namesMu.Unlock()
	names := s.readNames()
	out := make(map[string]string, len(names))
	for n, fp := range names {
		out[n] = fp
	}
	return out
}

// setLatestFingerprint records name → fp in the name index. The index is
// the reconcile controller's registry, so failures surface to the caller
// instead of silently dropping the newest revision.
func (s *Store) setLatestFingerprint(name, fp string) error {
	s.namesMu.Lock()
	defer s.namesMu.Unlock()
	names := s.readNames()
	if names[name] == fp {
		return nil
	}
	names[name] = fp
	data, err := json.MarshalIndent(names, "", "  ")
	if err == nil {
		err = writeAtomic(s.namesPath(), data)
	}
	if err != nil {
		return fmt.Errorf("store: writing name index: %w", err)
	}
	return nil
}

// readNames loads the name index; callers hold namesMu. A missing file
// is an empty registry; a torn or corrupt file is rebuilt from the
// bundles on disk (latest bundle per name by mtime), so one bad write
// can never erase the registry of every other library.
func (s *Store) readNames() map[string]string {
	names := map[string]string{}
	data, err := os.ReadFile(s.namesPath())
	if errors.Is(err, os.ErrNotExist) {
		return names
	}
	if err == nil {
		err = json.Unmarshal(data, &names)
	}
	if err != nil {
		s.log.Warn("store: name index unreadable, rebuilding from bundles", "err", err)
		return s.rebuildNames()
	}
	return names
}

// rebuildNames reconstructs the name index from the persisted bundles,
// keeping the most recently written bundle per library name. Callers
// hold namesMu.
func (s *Store) rebuildNames() map[string]string {
	names := map[string]string{}
	latest := map[string]time.Time{}
	entries, err := os.ReadDir(filepath.Join(s.dir, "bundles"))
	if err != nil {
		return names
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "bundles", e.Name()))
		if err != nil {
			continue
		}
		var b Bundle
		if json.Unmarshal(data, &b) != nil || b.Name == "" || !oracle.IsFingerprint(b.Fingerprint) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		if t, ok := latest[b.Name]; !ok || info.ModTime().After(t) {
			names[b.Name] = b.Fingerprint
			latest[b.Name] = info.ModTime()
		}
	}
	if len(names) > 0 {
		if data, err := json.MarshalIndent(names, "", "  "); err == nil {
			if err := writeAtomic(s.namesPath(), data); err != nil {
				s.log.Warn("store: persisting rebuilt name index failed", "err", err)
			}
		}
	}
	s.log.Info("store: name index rebuilt", "libraries", len(names))
	return names
}

// Bundle loads the persisted bundle addressed by fp.
func (s *Store) Bundle(fp string) (*Bundle, error) {
	if !oracle.IsFingerprint(fp) {
		return nil, fmt.Errorf("%w: %q", ErrMalformed, fp)
	}
	data, err := os.ReadFile(s.bundlePath(fp))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, fp)
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("store: corrupt bundle %s: %w", fp, err)
	}
	return &b, nil
}

// Policies returns the policy blob for a fingerprint, extracting it from
// the bundle on a cold cache. It is PoliciesContext with a background
// context.
func (s *Store) Policies(fp string) ([]byte, error) {
	return s.PoliciesContext(context.Background(), fp)
}

// PoliciesContext returns the policy blob for a fingerprint, extracting
// it from the bundle on a cold cache. The bytes are exactly what
// policy.ExportJSON produced (and `polora export` writes); callers must
// not mutate them.
//
// If ctx is cancelled while the caller waits, PoliciesContext returns
// ctx.Err() immediately; if the caller was the last one waiting on an
// in-flight extraction, the extraction is cancelled too.
func (s *Store) PoliciesContext(ctx context.Context, fp string) ([]byte, error) {
	if !oracle.IsFingerprint(fp) {
		return nil, fmt.Errorf("%w: %q", ErrMalformed, fp)
	}
	s.mu.Lock()
	if blob, ok := s.cache.get(fp); ok {
		s.mu.Unlock()
		s.memHits.Add(1)
		s.tm.CacheHits.With("mem").Inc()
		return blob, nil
	}
	if c, ok := s.flight[fp]; ok {
		c.waiters++
		s.mu.Unlock()
		s.coalesced.Add(1)
		s.tm.Coalesced.Inc()
		return s.wait(ctx, fp, c)
	}
	// The extraction runs under its own context, detached from this
	// caller's: other callers may coalesce onto it, so it must outlive
	// any single one. It is cancelled only when every waiter has left.
	// Context values do not flow through the detachment, so the flight
	// leader's local-only flag is captured here explicitly. (A normal
	// read coalescing onto a local-only flight inherits its narrower
	// tier walk for that one call; failures are never cached, so the
	// next read consults the backends again.)
	localOnly := isLocalOnly(ctx)
	cctx, cancel := context.WithCancel(context.Background())
	c := &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
	s.flight[fp] = c
	s.mu.Unlock()

	go func() {
		defer cancel()
		c.blob, c.err = s.loadOrExtract(cctx, fp, localOnly)
		s.mu.Lock()
		if s.flight[fp] == c {
			delete(s.flight, fp)
		}
		if c.err == nil {
			s.noteEvictions(s.cache.add(fp, c.blob))
		}
		s.mu.Unlock()
		close(c.done)
	}()
	return s.wait(ctx, fp, c)
}

// wait blocks until the in-flight call completes or ctx is cancelled.
// An abandoning waiter drops its reference; the last one out cancels the
// extraction and unregisters the call so later requests start fresh
// rather than inheriting a cancelled result.
func (s *Store) wait(ctx context.Context, fp string, c *flightCall) ([]byte, error) {
	select {
	case <-c.done:
		return c.blob, c.err
	case <-ctx.Done():
		// When the result and the cancellation race, prefer the result:
		// callers on a non-cancellable context (the Policies/PolicySet/Diff
		// wrappers use context.Background) must always take this path, and
		// a context caller that loses this race would otherwise decrement a
		// refcount the completion path has already settled.
		select {
		case <-c.done:
			return c.blob, c.err
		default:
		}
		s.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last && s.flight[fp] == c {
			delete(s.flight, fp)
		}
		s.mu.Unlock()
		if last {
			c.cancel()
			s.log.Info("store: extraction abandoned", "fingerprint", fp, "cause", context.Cause(ctx))
		}
		return nil, ctx.Err()
	}
}

// noteEvictions records n LRU evictions and refreshes the occupancy
// gauge. Called with s.mu held.
func (s *Store) noteEvictions(n int) {
	if n > 0 {
		s.evictions.Add(uint64(n))
		s.tm.Evictions.Add(float64(n))
	}
	s.tm.CachedBlobs.Set(float64(s.cache.len()))
}

// loadOrExtract serves one fingerprint from disk, then the configured
// backends (unless the read is local-only), falling back to extraction.
// Exactly one goroutine runs this per in-flight fingerprint.
func (s *Store) loadOrExtract(ctx context.Context, fp string, localOnly bool) ([]byte, error) {
	path := s.policyPath(fp)
	if blob, err := os.ReadFile(path); err == nil {
		if _, err := policy.ImportJSON(blob); err == nil {
			s.diskHits.Add(1)
			s.tm.CacheHits.With("disk").Inc()
			return blob, nil
		}
		s.corruptBlobs.Add(1)
		s.tm.CorruptBlobs.Inc()
		s.log.Warn("store: corrupt policy blob, re-extracting", "fingerprint", fp)
	}
	s.misses.Add(1)
	s.tm.CacheMisses.Inc()
	if !localOnly {
		if blob, ok := s.fromBackends(ctx, fp, path); ok {
			return blob, nil
		}
	}
	b, err := s.Bundle(fp)
	if err != nil {
		return nil, err
	}
	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
		// Observed only here — by the flight leader, after it actually
		// acquired a slot. Coalesced joins never reach this function and a
		// leader cancelled while queueing records nothing, so the histogram
		// counts one sample per extraction slot granted, not per caller.
		s.tm.QueueWait.ObserveDuration(time.Since(queued))
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.extractions.Add(1)
	s.tm.Extractions.Inc()
	s.log.Info("store: extraction start", "fingerprint", fp, "library", b.Name)
	start := time.Now()
	blob, err := s.extract(ctx, b)
	elapsed := time.Since(start)
	s.tm.ExtractDuration.ObserveDuration(elapsed)
	if err != nil {
		s.tm.ExtractFailures.Inc()
		s.log.Warn("store: extraction failed", "fingerprint", fp, "library", b.Name,
			"duration", elapsed, "err", err)
		return nil, err
	}
	s.log.Info("store: extraction done", "fingerprint", fp, "library", b.Name,
		"duration", elapsed, "bytes", len(blob))
	if err := writeAtomic(path, blob); err != nil {
		return nil, fmt.Errorf("store: persisting policies: %w", err)
	}
	return blob, nil
}

// fromBackends asks each configured backend for fp's blob, in order.
// A hit is validated exactly like a disk blob and persisted locally so
// the next read of fp is a disk hit; a corrupt response is counted and
// skipped. ok is false when no backend could supply a valid blob — the
// caller falls back to local extraction.
func (s *Store) fromBackends(ctx context.Context, fp, path string) ([]byte, bool) {
	for _, b := range s.backends {
		blob, err := b.Fetch(ctx, fp)
		if err != nil {
			if !errors.Is(err, ErrBackendMiss) {
				s.log.Warn("store: backend fetch failed", "backend", b.Name(), "fingerprint", fp, "err", err)
			}
			continue
		}
		if _, err := policy.ImportJSON(blob); err != nil {
			s.corruptBlobs.Add(1)
			s.tm.CorruptBlobs.Inc()
			s.log.Warn("store: backend returned corrupt blob", "backend", b.Name(), "fingerprint", fp, "err", err)
			continue
		}
		if err := writeAtomic(path, blob); err != nil {
			// Serving the validated bytes still beats re-extracting; the
			// blob just won't be a disk hit next time.
			s.log.Warn("store: persisting backend blob failed", "backend", b.Name(), "fingerprint", fp, "err", err)
		}
		s.backendHits.Add(1)
		s.tm.CacheHits.With("backend").Inc()
		return blob, true
	}
	return nil, false
}

func (s *Store) extractBundle(ctx context.Context, b *Bundle) ([]byte, error) {
	opts, err := b.Options.ToOracle()
	if err != nil {
		return nil, fmt.Errorf("store: bundle %s: %w: %w", b.Fingerprint, ErrInvalid, err)
	}
	opts.Parallel = s.parallel
	opts.Telemetry = s.xm
	opts.Summaries = s.sums
	// Display-only data (paths, guards) never reaches the wire format the
	// store serves, and the incremental sidecar records a display-free
	// extraction; skip collecting it server-side.
	opts.CollectPaths, opts.CollectGuards = false, false
	lib, err := oracle.LoadLibrary(b.Name, b.Sources)
	if err != nil {
		return nil, fmt.Errorf("store: bundle %s: %w", b.Fingerprint, err)
	}
	if err := lib.ExtractContext(ctx, opts); err != nil {
		return nil, fmt.Errorf("store: bundle %s: %w", b.Fingerprint, err)
	}
	s.writeIncrementalState(lib, b.Fingerprint)
	return lib.Policies.ExportJSON()
}

// writeIncrementalState persists the deps sidecar (method hashes + entry
// dependency sets) for fp. Best-effort: the policy blob is the source of
// truth, and a missing sidecar only forces the next update of this
// library through a full extraction.
func (s *Store) writeIncrementalState(lib *oracle.Library, fp string) {
	snap, err := lib.Snapshot()
	if err == nil {
		snap.Policies = nil // the blob is persisted separately under policies/
		var data []byte
		if data, err = snap.Encode(); err == nil {
			err = writeAtomic(s.depsPath(fp), data)
		}
	}
	if err != nil {
		s.log.Warn("store: writing incremental sidecar failed", "fingerprint", fp, "err", err)
	}
}

// PolicySet returns the parsed policies for a fingerprint.
func (s *Store) PolicySet(fp string) (*policy.ProgramPolicies, error) {
	return s.PolicySetContext(context.Background(), fp)
}

// PolicySetContext returns the parsed policies for a fingerprint.
func (s *Store) PolicySetContext(ctx context.Context, fp string) (*policy.ProgramPolicies, error) {
	blob, err := s.PoliciesContext(ctx, fp)
	if err != nil {
		return nil, err
	}
	return policy.ImportJSON(blob)
}

// Diff differences the policies of two fingerprints with a background
// context.
func (s *Store) Diff(fpA, fpB string) (*diff.Report, error) {
	return s.DiffContext(context.Background(), fpA, fpB)
}

// DiffContext differences the policies of two fingerprints. The report
// is the same value oracle.Diff computes on in-process libraries: the
// policy wire format round-trips everything differencing consumes.
// Fingerprints whose policies were extracted under different check
// domains fail loudly with oracle.ErrDomainMismatch — their check sets
// index different tables and comparing them would be nonsense.
func (s *Store) DiffContext(ctx context.Context, fpA, fpB string) (*diff.Report, error) {
	pa, err := s.PolicySetContext(ctx, fpA)
	if err != nil {
		return nil, err
	}
	pb, err := s.PolicySetContext(ctx, fpB)
	if err != nil {
		return nil, err
	}
	if pa.Domain != pb.Domain {
		return nil, fmt.Errorf("%w: %s has %q, %s has %q",
			oracle.ErrDomainMismatch, fpA, domainLabel(pa.Domain), fpB, domainLabel(pb.Domain))
	}
	s.diffs.Add(1)
	s.tm.Diffs.Inc()
	return diff.Compare(pa, pb), nil
}

// domainLabel spells the default domain's canonical empty string as its
// registered ID for error messages.
func domainLabel(id string) string {
	if id == "" {
		return secmodel.DefaultDomainID
	}
	return id
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Coalesced:    s.coalesced.Load(),
		Extractions:  s.extractions.Load(),
		CorruptBlobs: s.corruptBlobs.Load(),
		Bundles:      s.bundles.Load(),
		Diffs:        s.diffs.Load(),
		Evictions:    s.evictions.Load(),
		BackendHits:  s.backendHits.Load(),
	}
}

// CachedEntries reports the current LRU occupancy.
func (s *Store) CachedEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// writeAtomic writes data via a temp file + fsync + rename so readers
// never see a partial blob, and a crash immediately after the rename
// cannot leave an empty or truncated file behind it.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
