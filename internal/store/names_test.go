package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// The name index is the reconcile controller's registry, so a torn write
// (partial JSON left behind by a crash mid-write, impossible under
// writeAtomic but possible with older stores or external tampering) must
// not erase it: readNames rebuilds from the bundles directory instead of
// starting empty.
func TestNamesTornWriteRecoversFromBundles(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	fpA, _, err := s.Put("liba", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	fpB, _, err := s.Put("libb", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a torn write: truncate names.json mid-token.
	data, err := os.ReadFile(s.namesPath())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.namesPath(), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	names := s.Names()
	if names["liba"] != fpA || names["libb"] != fpB {
		t.Errorf("Names after torn write = %v, want liba→%s libb→%s", names, fpA, fpB)
	}
	// The rebuilt index was persisted, so the next read parses cleanly.
	raw, err := os.ReadFile(s.namesPath())
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]string
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("rebuilt index does not parse: %v\n%s", err, raw)
	}
	if parsed["liba"] != fpA || parsed["libb"] != fpB {
		t.Errorf("persisted rebuilt index = %v", parsed)
	}
}

// A torn index must also not be lossy across a write: advancing one
// library's fingerprint after corruption preserves every other entry.
func TestSetLatestFingerprintAfterTornWriteKeepsOtherNames(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	fpA, _, err := s.Put("liba", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("libb", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.namesPath(), []byte(`{"liba":"`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Re-uploading libb's content routes through setLatestFingerprint.
	fpB2, _, err := s.Put("libb", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if names["liba"] != fpA {
		t.Errorf("liba lost after torn write + rewrite: %v", names)
	}
	if names["libb"] != fpB2 {
		t.Errorf("libb = %q, want %q", names["libb"], fpB2)
	}
}

// A torn deps sidecar (the incremental seed) must never fail an update:
// the store falls back to a full extraction and rewrites a valid sidecar.
func TestTornDepsSidecarFallsBackToFullExtraction(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	ctx := context.Background()
	res1, err := s.Update(ctx, "api", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	// Tear the sidecar mid-write.
	side, err := os.ReadFile(s.depsPath(res1.Fingerprint))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.depsPath(res1.Fingerprint), side[:len(side)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	res2, err := s.Update(ctx, "api", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{})
	if err != nil {
		t.Fatalf("update over torn sidecar: %v", err)
	}
	if res2.Incremental {
		t.Errorf("update seeded from a torn sidecar: %+v", res2)
	}
	if res2.Reanalyzed != res2.Entries || res2.Entries == 0 {
		t.Errorf("full-extraction fallback stats: %+v", res2)
	}
	// The new revision's sidecar is whole again.
	if _, err := os.ReadFile(s.depsPath(res2.Fingerprint)); err != nil {
		t.Errorf("new sidecar missing: %v", err)
	}
}

// An update whose extraction options differ from the previous revision's
// cannot reuse its policies (the option key no longer matches the
// sidecar): the store must fall back to a full re-extraction, never
// splice entries analyzed under different options.
func TestOptionKeyMismatchForcesFullReextract(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	ctx := context.Background()
	if _, err := s.Update(ctx, "api", testSources(), OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Update(ctx, "api",
		map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2},
		OptionsWire{NoICP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incremental {
		t.Errorf("update spliced policies across an option-key change: %+v", res)
	}
	if res.Reanalyzed != res.Entries || res.Reused != 0 || res.Entries == 0 {
		t.Errorf("full re-extract stats: %+v", res)
	}
}

// Concurrent updates of one name serialize: every update completes, the
// index ends at some completed revision, and a subsequent writer wins it
// deterministically.
func TestConcurrentUpdatesSameNameSerialize(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	ctx := context.Background()

	const writers = 4
	fps := make([]string, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each writer uploads a distinct revision (a comment makes the
			// fingerprint unique without changing semantics).
			src := map[string]string{
				"rt.mj":  runtimeMJ,
				"lib.mj": fmt.Sprintf("// rev %d\n%s", i, libMJ),
			}
			res, err := s.Update(ctx, "api", src, OptionsWire{})
			if err != nil {
				errs[i] = err
				return
			}
			fps[i] = res.Fingerprint
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	latest := s.Names()["api"]
	found := false
	for _, fp := range fps {
		if fp == latest {
			found = true
		}
	}
	if !found {
		t.Errorf("index fingerprint %q is not any writer's revision %v", latest, fps)
	}
	// The indexed revision's policies are persisted and readable.
	if _, err := s.PolicySet(latest); err != nil {
		t.Errorf("latest revision unreadable: %v", err)
	}

	// Last writer wins once the storm settles.
	res, err := s.Update(ctx, "api", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Names()["api"]; got != res.Fingerprint {
		t.Errorf("final index %q, want last writer %q", got, res.Fingerprint)
	}
	// And the index file itself parses (no torn interleaving).
	raw, err := os.ReadFile(s.namesPath())
	if err != nil || !strings.Contains(string(raw), res.Fingerprint) {
		t.Errorf("index file: err=%v raw=%s", err, raw)
	}
}
