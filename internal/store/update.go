package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
)

// ErrInvalid marks request-validation failures (empty name or sources,
// unknown options, a bundle that does not load) so the server can map
// them to 400s without string matching.
var ErrInvalid = errors.New("invalid request")

// UpdateResult describes one delta-aware library update.
type UpdateResult struct {
	Fingerprint string `json:"fingerprint"`
	// Created is false when the exact bundle content was already stored.
	Created bool `json:"created"`
	// Incremental is true when the library's previous extraction seeded
	// this one; Entries/Reused/Reanalyzed count its entry points either
	// way (an already-extracted bundle reports all entries as reused).
	Incremental bool `json:"incremental"`
	Entries     int  `json:"entries"`
	Reused      int  `json:"reused"`
	Reanalyzed  int  `json:"reanalyzed"`
}

// Update is the delta-aware counterpart of Put + Policies: it
// fingerprints and persists the new bundle, then extracts its policies
// eagerly, seeding an incremental extraction from the library's previous
// fingerprint when its policy blob and incremental sidecar are available
// — re-analyzing only entry points whose dependency set changed. The
// persisted blob is byte-identical to what a cold Policies extraction of
// the same fingerprint would produce.
func (s *Store) Update(ctx context.Context, name string, sources map[string]string, w OptionsWire) (*UpdateResult, error) {
	// Serialize updates per library name: two concurrent PUTs of one name
	// must not both seed from the same "previous" revision and then race
	// their index writes. Under the lock each update reads the latest
	// index state, extracts, and advances the index before the next one
	// starts, so the index always ends at the last writer's fingerprint.
	s.nameLock(name).Lock()
	defer s.nameLock(name).Unlock()

	prevFP, _ := s.latestFingerprint(name) // before Put moves the index
	fp, created, err := s.Put(name, sources, w)
	if err != nil {
		return nil, err
	}
	res := &UpdateResult{Fingerprint: fp, Created: created}
	if blob, err := os.ReadFile(s.policyPath(fp)); err == nil {
		if pp, err := policy.ImportJSON(blob); err == nil {
			// Content already extracted: nothing to re-analyze.
			res.Entries = len(pp.Entries)
			res.Reused = res.Entries
			return res, nil
		}
	}
	var prev *oracle.Library
	if prevFP != "" && prevFP != fp {
		prev = s.loadIncrementalSeed(prevFP)
	}
	if err := s.extractUpdate(ctx, fp, name, sources, w, prev, res); err != nil {
		return nil, err
	}
	return res, nil
}

// nameLock returns the mutex serializing updates of one library name.
// Locks are never deleted; the map is bounded by the number of distinct
// library names the process has updated.
func (s *Store) nameLock(name string) *sync.Mutex {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	mu, ok := s.updateLocks[name]
	if !ok {
		mu = &sync.Mutex{}
		s.updateLocks[name] = mu
	}
	return mu
}

// loadIncrementalSeed reconstructs the previous extraction (policies +
// hashes + dependency sets) from a fingerprint's persisted blob and
// sidecar. Nil when either is missing or corrupt — the update then falls
// back to a full extraction.
func (s *Store) loadIncrementalSeed(prevFP string) *oracle.Library {
	side, err := os.ReadFile(s.depsPath(prevFP))
	if err != nil {
		return nil
	}
	snap, err := oracle.DecodeSnapshot(side)
	if err != nil {
		s.log.Warn("store: corrupt incremental sidecar", "fingerprint", prevFP, "err", err)
		return nil
	}
	blob, err := os.ReadFile(s.policyPath(prevFP))
	if err != nil {
		return nil
	}
	snap.Policies = blob
	lib, err := snap.ToLibrary()
	if err != nil {
		s.log.Warn("store: incremental seed unusable", "fingerprint", prevFP, "err", err)
		return nil
	}
	return lib
}

// extractUpdate extracts fp's policies under the extraction semaphore,
// incrementally from prev when possible, and persists blob + sidecar.
func (s *Store) extractUpdate(ctx context.Context, fp, name string, sources map[string]string, w OptionsWire, prev *oracle.Library, res *UpdateResult) error {
	opts, err := w.ToOracle()
	if err != nil {
		return fmt.Errorf("store: %w: %w", ErrInvalid, err)
	}
	opts.Parallel = s.parallel
	opts.Telemetry = s.xm
	opts.Summaries = s.sums
	// Same reasoning as extractBundle: the store serves wire-format bytes
	// and seeds from wire-format snapshots, so display data is never
	// collected server-side (and must not be, or the option keys would
	// never match the sidecar's).
	opts.CollectPaths, opts.CollectGuards = false, false

	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.tm.QueueWait.ObserveDuration(time.Since(queued))
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-s.sem }()
	if err := ctx.Err(); err != nil {
		return err
	}
	s.extractions.Add(1)
	s.tm.Extractions.Inc()
	s.log.Info("store: update extraction start", "fingerprint", fp, "library", name,
		"incremental", prev != nil)
	start := time.Now()
	var lib *oracle.Library
	if prev != nil {
		var st *oracle.IncrementalStats
		lib, st, err = oracle.ExtractIncrementalContext(ctx, prev, sources, opts)
		if err == nil {
			res.Incremental = !st.Full
			res.Entries, res.Reused, res.Reanalyzed = st.Entries, st.Reused, st.Reanalyzed
		}
	} else {
		lib, err = oracle.LoadLibrary(name, sources)
		if err == nil {
			err = lib.ExtractContext(ctx, opts)
		}
		if err == nil {
			res.Entries = len(lib.Policies.Entries)
			res.Reanalyzed = res.Entries
		}
	}
	elapsed := time.Since(start)
	s.tm.ExtractDuration.ObserveDuration(elapsed)
	if err != nil {
		s.tm.ExtractFailures.Inc()
		s.log.Warn("store: update extraction failed", "fingerprint", fp, "library", name,
			"duration", elapsed, "err", err)
		return fmt.Errorf("store: bundle %s: %w", fp, err)
	}
	blob, err := lib.Policies.ExportJSON()
	if err != nil {
		return fmt.Errorf("store: bundle %s: %w", fp, err)
	}
	if err := writeAtomic(s.policyPath(fp), blob); err != nil {
		return fmt.Errorf("store: persisting policies: %w", err)
	}
	s.writeIncrementalState(lib, fp)
	s.mu.Lock()
	s.noteEvictions(s.cache.add(fp, blob))
	s.mu.Unlock()
	s.log.Info("store: update extraction done", "fingerprint", fp, "library", name,
		"duration", elapsed, "entries", res.Entries, "reused", res.Reused,
		"reanalyzed", res.Reanalyzed)
	return nil
}
