package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"policyoracle/internal/telemetry"
)

// A store opened with a negative cache capacity keeps no blobs in
// memory: repeat reads come from disk and nothing is ever evicted.
func TestCacheDisabled(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Parallel: 1, CacheEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Error("disabled cache returned different bytes")
	}
	st := s.Stats()
	if st.MemHits != 0 || st.DiskHits != 1 || st.Evictions != 0 {
		t.Errorf("stats with cache disabled: %+v", st)
	}
	if n := s.CachedEntries(); n != 0 {
		t.Errorf("CachedEntries = %d with cache disabled", n)
	}
}

// The queue-wait histogram records one sample per extraction slot
// granted — the flight leader's — not one per coalesced caller.
func TestQueueWaitRecordedByLeaderOnly(t *testing.T) {
	reg := telemetry.New()
	s, err := Open(Config{Dir: t.TempDir(), Parallel: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	inner := s.extract
	s.extract = func(ctx context.Context, b *Bundle) ([]byte, error) {
		time.Sleep(50 * time.Millisecond) // let every reader coalesce
		return inner(ctx, b)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Policies(fp)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := s.tm.QueueWait.Count(); got != 1 {
		t.Errorf("queue-wait samples = %v, want 1 (leader only)", got)
	}
	if text := reg.Text(); !strings.Contains(text, "polorad_store_extract_queue_wait_seconds_count 1") {
		t.Error("scrape does not show exactly one queue-wait sample")
	}
}

// When an in-flight result and a caller's cancellation race, the result
// wins: wrappers on context.Background (Policies, PolicySet, Diff) pin
// their waiter refcount on this, and a losing context caller must not
// decrement a refcount the completion path already settled.
func TestWaitPrefersCompletedResult(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	c := &flightCall{done: make(chan struct{}), cancel: func() {}, waiters: 1}
	c.blob = []byte("blob")
	close(c.done)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // both c.done and ctx.Done() are ready
	blob, err := s.wait(ctx, "deadbeef", c)
	if err != nil || string(blob) != "blob" {
		t.Errorf("wait with done+cancelled = (%q, %v), want the result", blob, err)
	}
	if c.waiters != 1 {
		t.Errorf("result path changed the refcount: waiters = %d", c.waiters)
	}
}

// Context-carrying and background waiters mix on one in-flight
// extraction: a cancelled context waiter leaves without disturbing the
// others, the survivors all see identical bytes, and the flight table
// drains once the extraction completes.
func TestMixedContextAndBackgroundWaiters(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	inner := s.extract
	entered := make(chan struct{})
	release := make(chan struct{})
	s.extract = func(ctx context.Context, b *Bundle) ([]byte, error) {
		close(entered)
		<-release
		return inner(ctx, b)
	}

	// Leader on a background context.
	leaderDone := make(chan error, 1)
	var leaderBlob []byte
	go func() {
		var err error
		leaderBlob, err = s.Policies(fp)
		leaderDone <- err
	}()
	<-entered

	// waitForWaiters blocks until n callers hold references on the
	// in-flight call, so the coalesced joins demonstrably overlap the
	// extraction instead of racing past its completion.
	waitForWaiters := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			s.mu.Lock()
			w := 0
			if c := s.flight[fp]; c != nil {
				w = c.waiters
			}
			s.mu.Unlock()
			if w >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("flight waiters = %d, want %d", w, n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// One background waiter and one live context waiter coalesce.
	bgDone := make(chan error, 1)
	var bgBlob []byte
	go func() {
		var err error
		bgBlob, err = s.Policies(fp)
		bgDone <- err
	}()
	live, cancelLive := context.WithCancel(context.Background())
	defer cancelLive()
	liveDone := make(chan error, 1)
	var liveBlob []byte
	go func() {
		var err error
		liveBlob, err = s.PoliciesContext(live, fp)
		liveDone <- err
	}()

	waitForWaiters(3) // leader + background + live

	// A third waiter joins and abandons while the extraction is running.
	doomed, cancelDoomed := context.WithCancel(context.Background())
	cancelDoomed()
	if _, err := s.PoliciesContext(doomed, fp); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}

	close(release)
	for _, ch := range []chan error{leaderDone, bgDone, liveDone} {
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(leaderBlob, bgBlob) || !bytes.Equal(leaderBlob, liveBlob) {
		t.Error("waiters saw different bytes")
	}
	s.mu.Lock()
	inflight := len(s.flight)
	s.mu.Unlock()
	if inflight != 0 {
		t.Errorf("flight table still holds %d calls after completion", inflight)
	}
	if st := s.Stats(); st.Extractions != 1 || st.Coalesced != 3 {
		t.Errorf("after mixed waiters: %+v", st)
	}
}

// TestUpdateIncrementalFlow walks the delta-aware path end to end:
// upload v1, update to v2 (incremental, seeded from v1's sidecar), and
// assert the persisted blob is byte-identical to a cold extraction.
func TestUpdateIncrementalFlow(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	ctx := context.Background()

	res1, err := s.Update(ctx, "a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Created || res1.Incremental {
		t.Fatalf("first update: %+v, want created full extraction", res1)
	}
	if res1.Entries == 0 || res1.Reanalyzed != res1.Entries || res1.Reused != 0 {
		t.Errorf("first update stats: %+v", res1)
	}
	if _, err := os.Stat(s.depsPath(res1.Fingerprint)); err != nil {
		t.Errorf("no incremental sidecar after update: %v", err)
	}

	v2 := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}
	res2, err := s.Update(ctx, "a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Created || !res2.Incremental {
		t.Fatalf("second update: %+v, want created incremental extraction", res2)
	}
	if res2.Reused == 0 || res2.Reanalyzed == 0 || res2.Reused+res2.Reanalyzed != res2.Entries {
		t.Errorf("second update stats: %+v", res2)
	}

	// The spliced blob matches what a cold store would extract from
	// scratch for the same bundle.
	blob, err := s.Policies(res2.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	cold := openTestStore(t, t.TempDir())
	coldFP, _, err := cold.Put("a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if coldFP != res2.Fingerprint {
		t.Fatalf("fingerprint drift: %s vs %s", coldFP, res2.Fingerprint)
	}
	want, err := cold.Policies(coldFP)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Errorf("incremental blob differs from cold extraction:\n%s\nvs\n%s", blob, want)
	}

	// Re-sending the same content is a no-op: everything reused, nothing
	// created, no extraction.
	before := s.Stats().Extractions
	res3, err := s.Update(ctx, "a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Created || res3.Fingerprint != res2.Fingerprint {
		t.Errorf("idempotent update: %+v", res3)
	}
	if res3.Reused != res3.Entries || res3.Reanalyzed != 0 {
		t.Errorf("idempotent update stats: %+v", res3)
	}
	if after := s.Stats().Extractions; after != before {
		t.Errorf("idempotent update extracted (%d -> %d)", before, after)
	}
}

// Updates survive across store restarts: the names index and sidecar
// persist, so a fresh Open still seeds incrementally from the previous
// fingerprint.
func TestUpdateIncrementalAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	if _, err := s.Update(context.Background(), "a", testSources(), OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	reopened := openTestStore(t, dir)
	v2 := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}
	res, err := reopened.Update(context.Background(), "a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental {
		t.Errorf("update after reopen was not incremental: %+v", res)
	}
}

// A missing or corrupt sidecar degrades to a full extraction, never an
// error — losing incremental state costs time, not correctness.
func TestUpdateFallsBackWithoutSidecar(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	res1, err := s.Update(context.Background(), "a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.depsPath(res1.Fingerprint)); err != nil {
		t.Fatal(err)
	}
	v2 := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}
	res2, err := s.Update(context.Background(), "a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Incremental {
		t.Errorf("update without a sidecar claimed to be incremental: %+v", res2)
	}
	if res2.Reanalyzed != res2.Entries {
		t.Errorf("fallback stats: %+v", res2)
	}
	if _, err := s.Policies(res2.Fingerprint); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateRejectsBadInput(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	cases := []struct {
		name    string
		sources map[string]string
		w       OptionsWire
	}{
		{"", testSources(), OptionsWire{}},
		{"a", nil, OptionsWire{}},
		{"a", testSources(), OptionsWire{Events: "bogus"}},
		{"a", map[string]string{"x.mj": "class { nonsense"}, OptionsWire{}},
	}
	for _, c := range cases {
		if _, err := s.Update(context.Background(), c.name, c.sources, c.w); !errors.Is(err, ErrInvalid) {
			t.Errorf("Update(%q, %d sources): err = %v, want ErrInvalid", c.name, len(c.sources), err)
		}
	}
}

// The Policies read path also writes the sidecar, so a library first
// seen via Put + Policies still updates incrementally afterwards.
func TestPutThenPoliciesSeedsLaterUpdate(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Policies(fp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.depsPath(fp)); err != nil {
		t.Errorf("Policies extraction wrote no sidecar: %v", err)
	}
	if got, ok := s.latestFingerprint("a"); !ok || got != fp {
		t.Errorf("latestFingerprint = (%q, %v), want %q", got, ok, fp)
	}
	v2 := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}
	res, err := s.Update(context.Background(), "a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental {
		t.Errorf("update seeded from Put+Policies was not incremental: %+v", res)
	}
}

// Incremental telemetry reaches the shared scrape surface through the
// store's extract metrics.
func TestUpdateMetrics(t *testing.T) {
	reg := telemetry.New()
	s, err := Open(Config{Dir: t.TempDir(), Parallel: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(context.Background(), "a", testSources(), OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	v2 := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}
	res, err := s.Update(context.Background(), "a", v2, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental {
		t.Fatalf("second update not incremental: %+v", res)
	}
	text := reg.Text()
	for _, want := range []string{
		"polora_incremental_reused_total",
		"polora_incremental_reanalyzed_total",
		"polora_incremental_hash_total",
		"polora_incremental_depset_size_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape misses %q", want)
		}
	}
	if got := s.xm.IncrementalReused.Value(); got != float64(res.Reused) {
		t.Errorf("reused counter = %v, want %d", got, res.Reused)
	}
}
