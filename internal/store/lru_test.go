package store

import "testing"

func TestBlobLRUEvictsOldest(t *testing.T) {
	c := newBlobLRU(2)
	if n := c.add("a", []byte("A")); n != 0 {
		t.Errorf("evicted %d on first insert", n)
	}
	c.add("b", []byte("B"))
	if n := c.add("c", []byte("C")); n != 1 {
		t.Errorf("evicted %d inserting past capacity, want 1", n)
	}
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if blob, ok := c.get("c"); !ok || string(blob) != "C" {
		t.Error("newest entry missing")
	}
	// Refreshing an existing key is not an insert and evicts nothing.
	if n := c.add("b", []byte("B2")); n != 0 || c.len() != 2 {
		t.Errorf("refresh: evicted=%d len=%d", n, c.len())
	}
	if blob, _ := c.get("b"); string(blob) != "B2" {
		t.Error("refresh did not replace the blob")
	}
}

// A disabled cache (capacity <= 0) must store nothing — and, the bug this
// pins: it must not report a phantom eviction for every add.
func TestBlobLRUDisabled(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		c := newBlobLRU(capacity)
		if n := c.add("a", []byte("A")); n != 0 {
			t.Errorf("cap=%d: add reported %d evictions, want 0", capacity, n)
		}
		if c.len() != 0 {
			t.Errorf("cap=%d: disabled cache holds %d entries", capacity, c.len())
		}
		if _, ok := c.get("a"); ok {
			t.Errorf("cap=%d: disabled cache returned a hit", capacity)
		}
	}
}
