package store

import (
	"fmt"

	"policyoracle/internal/analysis"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// OptionsWire is the JSON form of extraction options accepted by the
// service and persisted inside bundles. The zero value means
// oracle.DefaultOptions(): every field is a delta from the paper's
// default configuration, so clients that don't care send nothing.
//
// Execution strategy (worker counts, memoization) is deliberately absent:
// it belongs to the server (-parallel), never to the bundle, because it
// cannot change the extracted bytes.
type OptionsWire struct {
	// Domain is the check-domain ID the extraction runs under; empty
	// means the registered default (SecurityManager) domain. An unknown
	// ID fails with secmodel.ErrUnknownDomain, which the server maps to
	// its stable unknown_domain error code.
	Domain string `json:"domain,omitempty"`
	// Events is "narrow" (default) or "broad" (Section 3 events).
	Events string `json:"events,omitempty"`
	// NoICP disables interprocedural constant propagation.
	NoICP bool `json:"noICP,omitempty"`
	// NoAssumeSM keeps `getSecurityManager() != null` guards unfolded.
	NoAssumeSM bool `json:"noAssumeSM,omitempty"`
	// MaxDepth bounds interprocedural descent; nil means unlimited (-1).
	MaxDepth *int `json:"maxDepth,omitempty"`
	// Modes restricts extraction to "may" or "must" only; empty means both.
	Modes []string `json:"modes,omitempty"`
}

// ToOracle resolves the wire options onto oracle.DefaultOptions and
// normalizes the result.
func (w OptionsWire) ToOracle() (oracle.Options, error) {
	opts := oracle.DefaultOptions()
	dom, err := secmodel.ResolveDomain(w.Domain)
	if err != nil {
		return opts, err
	}
	opts.Domain = dom
	switch w.Events {
	case "", "narrow":
	case "broad":
		opts.Events = secmodel.BroadEvents
	default:
		return opts, fmt.Errorf("unknown events mode %q (want narrow or broad)", w.Events)
	}
	opts.ICP = !w.NoICP
	opts.AssumeSecurityManager = !w.NoAssumeSM
	if w.MaxDepth != nil {
		opts.MaxDepth = *w.MaxDepth
	}
	if len(w.Modes) > 0 {
		opts.Modes = opts.Modes[:0]
		for _, m := range w.Modes {
			switch m {
			case "may":
				opts.Modes = append(opts.Modes, analysis.May)
			case "must":
				opts.Modes = append(opts.Modes, analysis.Must)
			default:
				return opts, fmt.Errorf("unknown analysis mode %q (want may or must)", m)
			}
		}
	}
	return opts.Normalize(), nil
}
