package store

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"policyoracle/internal/telemetry"
)

// stubBackend is a scriptable Backend for store-level tests.
type stubBackend struct {
	calls atomic.Int64
	blobs map[string][]byte // fp -> blob; absent = miss
	err   error             // returned for every fetch when set
}

func (b *stubBackend) Name() string { return "stub" }

func (b *stubBackend) Fetch(ctx context.Context, fp string) ([]byte, error) {
	b.calls.Add(1)
	if b.err != nil {
		return nil, b.err
	}
	if blob, ok := b.blobs[fp]; ok {
		return blob, nil
	}
	return nil, ErrBackendMiss
}

// TestSaveCampaignAtomic pins SaveCampaign's crash consistency: readers
// racing an overwrite must only ever see a complete old or complete new
// result, never a truncated or interleaved one. The raw os.WriteFile it
// used to do truncates in place, so a concurrent reader could observe
// an empty or partial file.
func TestSaveCampaignAtomic(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	old := bytes.Repeat([]byte{'a'}, 256<<10)
	next := bytes.Repeat([]byte{'b'}, 256<<10)
	p, err := s.SaveCampaign("job-1", old)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var torn atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := os.ReadFile(p)
				if err != nil {
					// The rename window never unlinks the path; any error at
					// all means the write was not atomic.
					torn.Add(1)
					continue
				}
				if !bytes.Equal(data, old) && !bytes.Equal(data, next) {
					torn.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		content := old
		if i%2 == 1 {
			content = next
		}
		if _, err := s.SaveCampaign("job-1", content); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn or failed reads during concurrent SaveCampaign overwrites", n)
	}
}

// TestBackendServesBeforeExtraction pins the tiered read path: a store
// holding neither blob nor bundle for a fingerprint serves it from a
// configured backend, byte-identical, persists it to disk (so the next
// cold read is a disk hit), and counts the backend hit.
func TestBackendServesBeforeExtraction(t *testing.T) {
	origin := openTestStore(t, t.TempDir())
	fp, _, err := origin.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := origin.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}

	stub := &stubBackend{blobs: map[string][]byte{fp: blob}}
	dir := t.TempDir()
	edge, err := Open(Config{Dir: dir, Parallel: 1, Backends: []Backend{stub}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := edge.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("backend-served blob differs from the origin's bytes")
	}
	if st := edge.Stats(); st.BackendHits != 1 {
		t.Fatalf("BackendHits = %d, want 1", st.BackendHits)
	}
	// The blob was persisted: a fresh store over the same dir serves it
	// from disk without consulting the backend.
	reopened, err := Open(Config{Dir: dir, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := reopened.Policies(fp); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("persisted backend blob not served from disk (err %v)", err)
	}
}

// TestLocalOnlySkipsBackends pins the loop-prevention contract: a read
// under store.LocalOnly never consults backends — it fails with the
// local store's error instead. This is what keeps two replicas with
// disagreeing ring views from chasing each other's blobs forever.
func TestLocalOnlySkipsBackends(t *testing.T) {
	origin := openTestStore(t, t.TempDir())
	fp, _, err := origin.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := origin.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubBackend{blobs: map[string][]byte{fp: blob}}
	edge, err := Open(Config{Dir: t.TempDir(), Parallel: 1, Backends: []Backend{stub}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := edge.PoliciesContext(LocalOnly(context.Background()), fp); err == nil {
		t.Fatal("local-only read of an absent fingerprint succeeded")
	}
	if n := stub.calls.Load(); n != 0 {
		t.Fatalf("local-only read consulted the backend %d time(s)", n)
	}
	// The same read without the flag hits the backend.
	if got, err := edge.Policies(fp); err != nil || !bytes.Equal(got, blob) {
		t.Fatalf("normal read after local-only miss failed (err %v)", err)
	}
}

// TestCorruptBackendBlobRejected pins validation parity with the disk
// tier: a backend response that does not re-import is counted corrupt
// and skipped, falling through to the next tier instead of being served.
func TestCorruptBackendBlobRejected(t *testing.T) {
	origin := openTestStore(t, t.TempDir())
	fp, _, err := origin.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	stub := &stubBackend{blobs: map[string][]byte{fp: []byte(`{"torn":`)}}
	edge, err := Open(Config{Dir: t.TempDir(), Parallel: 1, Backends: []Backend{stub}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := edge.Policies(fp); err == nil {
		t.Fatal("corrupt backend blob was served")
	}
	if st := edge.Stats(); st.BackendHits != 0 || st.CorruptBlobs != 1 {
		t.Fatalf("BackendHits = %d CorruptBlobs = %d, want 0 and 1", st.BackendHits, st.CorruptBlobs)
	}
}

// TestPeerBackendWalksPreferenceOrder pins the peer tier's dropout
// behavior with real HTTP: the fingerprint's owner is unreachable, the
// next preferred member answers 404, and the third holds the blob — the
// fetch must degrade member by member and still come back with bytes.
func TestPeerBackendWalksPreferenceOrder(t *testing.T) {
	blob := []byte(`{"domain":"","entries":{}}`)
	var misses, hits atomic.Int64
	missing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		misses.Add(1)
		http.Error(w, `{"code":"unknown_library"}`, http.StatusNotFound)
	}))
	defer missing.Close()
	holder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write(blob)
	}))
	defer holder.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // unreachable member

	self := "self.invalid:1"
	members := []string{missing.URL, holder.URL, dead.URL, self}
	pb := NewPeerBackend(PeerConfig{Members: members, Self: self, Registry: telemetry.New()})
	got, err := pb.Fetch(context.Background(), "po1-0000")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("fetched %q, want the holder's blob", got)
	}
	if hits.Load() != 1 {
		t.Fatalf("holder served %d requests, want 1", hits.Load())
	}

	// With only itself and dead members left, the fetch is a clean miss.
	pb.SetMembers([]string{dead.URL, self}, self)
	if _, err := pb.Fetch(context.Background(), "po1-0000"); err != ErrBackendMiss {
		t.Fatalf("fetch over dead members = %v, want ErrBackendMiss", err)
	}
}

// TestConcurrentNamesRebuildWithPuts races the three writers of the
// name index — Put's setLatestFingerprint, readNames' corrupt-index
// rebuild, and backend-path reads — and asserts no latest-fingerprint
// update is lost: after the dust settles every library resolves to the
// fingerprint its Put returned.
func TestConcurrentNamesRebuildWithPuts(t *testing.T) {
	origin := openTestStore(t, t.TempDir())
	fpA, _, err := origin.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := origin.Policies(fpA)
	if err != nil {
		t.Fatal(err)
	}

	stub := &stubBackend{blobs: map[string][]byte{fpA: blob}}
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Parallel: 1, Backends: []Backend{stub}})
	if err != nil {
		t.Fatal(err)
	}

	const libs = 8
	want := make([]string, libs)
	stop := make(chan struct{})
	var churn, puts sync.WaitGroup
	// Corrupter: repeatedly tears the name index so concurrent readers
	// take the rebuild path while Puts are appending to it.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			os.WriteFile(filepath.Join(dir, "names.json"), []byte(`{"torn":`), 0o644)
			s.Names()
		}
	}()
	// Reader through the peer-fetch path, exercising the backend tier
	// concurrently with the index churn.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Policies(fpA)
		}
	}()
	for i := 0; i < libs; i++ {
		puts.Add(1)
		go func(i int) {
			defer puts.Done()
			name := fmt.Sprintf("lib-%d", i)
			sources := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ, "pad.mj": fmt.Sprintf("package p%d;", i)}
			fp, _, err := s.Put(name, sources, OptionsWire{})
			if err != nil {
				t.Error(err)
				return
			}
			want[i] = fp
		}(i)
	}
	puts.Wait()
	close(stop)
	churn.Wait()

	names := s.Names()
	for i := 0; i < libs; i++ {
		name := fmt.Sprintf("lib-%d", i)
		if names[name] != want[i] {
			t.Errorf("names[%s] = %q, want %q (latest-fingerprint update lost)", name, names[name], want[i])
		}
	}
}
