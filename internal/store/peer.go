package store

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"policyoracle/internal/ring"
	"policyoracle/internal/telemetry"
)

// maxPeerBlobBytes bounds one peer blob response; policy blobs for
// paper-scale libraries are well under a megabyte, so 64 MiB is a
// runaway guard, not a tuning knob.
const maxPeerBlobBytes = 64 << 20

// PeerConfig configures a PeerBackend.
type PeerConfig struct {
	// Members is the full replica set, including this node's own
	// address (polorad -peers). The member strings are the ring's
	// identity: every replica and every batch client must be configured
	// with the same strings (modulo order) to derive the same ownership.
	Members []string
	// Self is this replica's own address within Members; it is skipped
	// when fetching so a node never asks itself.
	Self string
	// VirtualNodes is the ring's per-member point count (<= 0 means
	// ring.DefaultVirtualNodes). All replicas and clients must agree.
	VirtualNodes int
	// Client is the HTTP client used for peer fetches; nil uses a
	// default with a 2-minute overall timeout (a peer may extract on
	// demand before responding).
	Client *http.Client
	// Registry receives polora_peer_fetch_* metrics; nil disables them.
	Registry *telemetry.Registry
	// Logger receives per-attempt fetch warnings. Nil discards them.
	Logger *slog.Logger
}

// PeerBackend fetches policy blobs from the other replicas of a
// polorad tier over GET /v1/blob/{fp}, walking the fingerprint's ring
// preference order: the owner first, then its successors, skipping this
// node itself. A member that is unreachable or does not hold the blob
// is skipped — owner dropout degrades to the next member and finally to
// local extraction, never to a failed read.
type PeerBackend struct {
	client *http.Client
	pm     *telemetry.PeerMetrics
	log    *slog.Logger

	mu   sync.Mutex
	ring *ring.Ring
	self string
}

// NewPeerBackend builds a peer backend over the configured member set.
// Members may be empty at construction and installed later with
// SetMembers (the backend misses until then), which is how a process
// that learns its own address only after binding wires itself up.
func NewPeerBackend(cfg PeerConfig) *PeerBackend {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.NopLogger()
	}
	p := &PeerBackend{
		client: client,
		pm:     telemetry.NewPeerMetrics(cfg.Registry),
		log:    log,
	}
	p.SetMembers(cfg.Members, cfg.Self)
	if cfg.VirtualNodes > 0 {
		p.mu.Lock()
		p.ring = ring.New(cfg.Members, cfg.VirtualNodes)
		p.mu.Unlock()
	}
	return p
}

// SetMembers replaces the replica set and this node's own address.
func (p *PeerBackend) SetMembers(members []string, self string) {
	r := ring.New(members, 0)
	p.mu.Lock()
	p.ring, p.self = r, self
	p.mu.Unlock()
}

// Name implements Backend.
func (p *PeerBackend) Name() string { return "peer" }

// Fetch implements Backend: it walks the fingerprint's preference order
// asking each peer for the blob, returning the first 200 response's
// bytes. Every peer skipped, missing, or unreachable ends in
// ErrBackendMiss so the store falls back to local extraction.
func (p *PeerBackend) Fetch(ctx context.Context, fp string) ([]byte, error) {
	p.mu.Lock()
	r, self := p.ring, p.self
	p.mu.Unlock()
	if r == nil || r.Len() == 0 {
		return nil, ErrBackendMiss
	}
	for _, member := range r.Owners(fp, 0) {
		if member == self {
			continue
		}
		start := time.Now()
		blob, status, err := p.get(ctx, member, fp)
		p.pm.Duration.ObserveDuration(time.Since(start))
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			p.pm.Fetches.With("error").Inc()
			p.log.Warn("store: peer fetch failed", "peer", member, "fingerprint", fp, "err", err)
		case status == http.StatusOK:
			p.pm.Fetches.With("hit").Inc()
			p.log.Info("store: peer fetch hit", "peer", member, "fingerprint", fp, "bytes", len(blob))
			return blob, nil
		default:
			// The peer answered but does not have the blob (or refuses):
			// not an error, just a miss on this member.
			p.pm.Fetches.With("miss").Inc()
		}
	}
	return nil, ErrBackendMiss
}

// get performs one GET /v1/blob/{fp} against member.
func (p *PeerBackend) get(ctx context.Context, member, fp string) ([]byte, int, error) {
	base := member
	if !hasURLScheme(base) {
		base = "http://" + base
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/blob/"+fp, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a bounded amount so the connection can be reused.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBlobBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(blob) > maxPeerBlobBytes {
		return nil, 0, fmt.Errorf("peer blob exceeds %d bytes", maxPeerBlobBytes)
	}
	return blob, resp.StatusCode, nil
}

// hasURLScheme reports whether addr already carries a URL scheme, so
// bare host:port member strings get "http://" prepended.
func hasURLScheme(addr string) bool {
	for i := 0; i < len(addr); i++ {
		switch {
		case addr[i] == ':':
			return i+2 < len(addr) && addr[i+1] == '/' && addr[i+2] == '/'
		case addr[i] == '/' || addr[i] == '.':
			return false
		}
	}
	return false
}
