package store

import (
	"context"
	"errors"
)

// Backend is a pluggable policy-blob source consulted between the local
// disk tier and extraction: on a mem+disk miss the store asks each
// configured backend for the fingerprint's blob before paying for a
// local extraction. The split mirrors external-dns's provider interface
// — the store stays the single read path while the places blobs can
// come from (disk, a peer replica, an object store) stay pluggable.
//
// A backend returns the exact policy wire bytes (`polora export`
// format) or ErrBackendMiss when it does not have them. The store
// validates whatever comes back by re-importing it, exactly as it
// validates disk blobs, so a corrupt or truncated backend response is
// discarded (and counted) rather than served.
//
// Fetch runs inside the store's single-flight: concurrent requests for
// one fingerprint perform at most one backend fetch, and when the last
// waiter leaves, ctx is cancelled.
type Backend interface {
	// Name labels the backend in logs and error messages.
	Name() string
	// Fetch returns the policy blob for fp, or ErrBackendMiss when this
	// backend cannot supply it (not an error condition: the store moves
	// on to the next tier).
	Fetch(ctx context.Context, fp string) ([]byte, error)
}

// ErrBackendMiss reports that a backend does not hold the requested
// blob. The store treats it (and any other fetch error) as "keep
// going": the next backend, then local extraction.
var ErrBackendMiss = errors.New("store: backend does not have this blob")

// localOnlyKey marks a context as local-only: the read must be served
// from this replica's cache, disk, or extraction, never from a backend.
type localOnlyKey struct{}

// LocalOnly returns a context whose store reads skip the configured
// backends. The server's GET /v1/blob handler (the supplier side of
// peer fetching) reads under it, so two replicas with disagreeing ring
// views can never chase each other's blobs in a loop.
func LocalOnly(ctx context.Context) context.Context {
	return context.WithValue(ctx, localOnlyKey{}, true)
}

func isLocalOnly(ctx context.Context) bool {
	v, _ := ctx.Value(localOnlyKey{}).(bool)
	return v
}
