package store

import (
	"encoding/json"
	"errors"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// cryptoStoreLibMJ is a minimal crypto-domain API for store tests.
const cryptoStoreLibMJ = `
package capi;
import java.lang.*;
import java.security.*;
public class Cipher {
  private CryptoGuard guard;
  public void encrypt(String iv) {
    guard.checkIvFresh(iv);
    encrypt0(iv);
  }
  native void encrypt0(String iv);
}
`

func cryptoStoreSources() map[string]string {
	srcs := corpus.CryptoRuntimeSources()
	srcs["capi/cipher.mj"] = cryptoStoreLibMJ
	return srcs
}

// TestStoreCrossDomainCollision uploads the same name and sources under
// two domains: the store must mint distinct fingerprints, keep both
// bundles, and serve each domain's own policy blob — content addressing
// is per (sources, options, domain), never per sources alone.
func TestStoreCrossDomainCollision(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	srcs := cryptoStoreSources()
	fpDef, _, err := s.Put("lib", srcs, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	fpCrypto, created, err := s.Put("lib", srcs, OptionsWire{Domain: secmodel.CryptoDomainID})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("crypto upload of identical sources reused the default-domain bundle")
	}
	if fpDef == fpCrypto {
		t.Fatalf("default and crypto bundles share a fingerprint: %s", fpDef)
	}
	for fp, want := range map[string]string{fpDef: "", fpCrypto: secmodel.CryptoDomainID} {
		blob, err := s.Policies(fp)
		if err != nil {
			t.Fatal(err)
		}
		var hdr struct {
			Domain string `json:"domain"`
		}
		if err := json.Unmarshal(blob, &hdr); err != nil {
			t.Fatal(err)
		}
		if hdr.Domain != want {
			t.Errorf("policies of %s carry domain %q, want %q", fp, hdr.Domain, want)
		}
	}
}

// TestStoreDiffDomainMismatch diffs the same sources extracted under two
// domains: the store must refuse with the typed oracle.ErrDomainMismatch
// rather than produce a report comparing unrelated check tables.
func TestStoreDiffDomainMismatch(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	srcs := cryptoStoreSources()
	fpDef, _, err := s.Put("a", srcs, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	fpCrypto, _, err := s.Put("b", srcs, OptionsWire{Domain: secmodel.CryptoDomainID})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diff(fpDef, fpCrypto); !errors.Is(err, oracle.ErrDomainMismatch) {
		t.Fatalf("cross-domain diff: err = %v, want oracle.ErrDomainMismatch", err)
	}
	// Two crypto-domain bundles diff fine.
	fpCrypto2, _, err := s.Put("c", srcs, OptionsWire{Domain: secmodel.CryptoDomainID})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Diff(fpCrypto, fpCrypto2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Domain != secmodel.CryptoDomainID {
		t.Errorf("crypto diff report domain = %q, want %q", rep.Domain, secmodel.CryptoDomainID)
	}
}

// TestStoreUnknownDomainRejected pins that a Put naming an unregistered
// domain fails with secmodel.ErrUnknownDomain before any bundle is
// persisted.
func TestStoreUnknownDomainRejected(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	_, _, err := s.Put("lib", testSources(), OptionsWire{Domain: "no-such-domain"})
	if !errors.Is(err, secmodel.ErrUnknownDomain) {
		t.Fatalf("Put with unknown domain: err = %v, want secmodel.ErrUnknownDomain", err)
	}
	if got := s.Stats().Bundles; got != 0 {
		t.Errorf("Bundles = %d after rejected upload, want 0", got)
	}
}
