package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
	"policyoracle/internal/telemetry"
)

const runtimeMJ = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkRead(String file) { }
  public void checkWrite(String file) { }
}
`

const libMJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    sm.checkWrite(key);
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

// libMJv2 drops the write check, so diffing v1 against v2 reports it.
const libMJv2 = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

func testSources() map[string]string {
	return map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ}
}

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Config{Dir: dir, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutIsContentAddressedAndIdempotent(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, created, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if !created || !oracle.IsFingerprint(fp) {
		t.Fatalf("first Put: created=%v fp=%q", created, fp)
	}
	fp2, created2, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if created2 || fp2 != fp {
		t.Errorf("re-upload: created=%v fp=%q, want existing %q", created2, fp2, fp)
	}
	if got := s.Stats().Bundles; got != 1 {
		t.Errorf("Bundles = %d, want 1", got)
	}
	b, err := s.Bundle(fp)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "a" || b.Fingerprint != fp || len(b.Sources) != 2 {
		t.Errorf("bundle round-trip: %+v", b)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	if _, _, err := s.Put("", testSources(), OptionsWire{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, _, err := s.Put("a", nil, OptionsWire{}); err == nil {
		t.Error("empty sources accepted")
	}
	if _, _, err := s.Put("a", testSources(), OptionsWire{Events: "bogus"}); err == nil {
		t.Error("bad options accepted")
	}
	if _, _, err := s.Put("a", map[string]string{"x.mj": "class { nonsense"}, OptionsWire{}); err == nil {
		t.Error("non-loading bundle accepted")
	}
}

// A warm cache serves the persisted bytes without re-extraction: the
// second in-process request hits the LRU, and a fresh Store over the
// same directory hits the disk blob — zero extractions either way.
func TestCacheHitSkipsExtraction(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Extractions != 1 || st.Misses != 1 {
		t.Fatalf("cold read: %+v", st)
	}
	// The blob is exactly what an in-process export produces.
	lib, err := oracle.LoadLibrary("a", testSources())
	if err != nil {
		t.Fatal(err)
	}
	lib.Extract(oracle.DefaultOptions())
	want, err := lib.Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, want) {
		t.Errorf("stored blob differs from in-process ExportJSON:\n%s\nvs\n%s", blob, want)
	}

	again, err := s.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Extractions != 1 || st.MemHits != 1 {
		t.Errorf("warm read: %+v", st)
	}
	if !bytes.Equal(again, blob) {
		t.Error("LRU returned different bytes")
	}

	cold := openTestStore(t, dir)
	fromDisk, err := cold.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Extractions != 0 || st.DiskHits != 1 {
		t.Errorf("disk read: %+v", st)
	}
	if !bytes.Equal(fromDisk, blob) {
		t.Error("disk blob differs from extracted blob")
	}
}

// A corrupted persisted blob is detected on read and re-extracted.
func TestCorruptBlobIsReExtracted(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir)
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.policyPath(fp), []byte(`{"library":`), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := openTestStore(t, dir)
	got, err := cold.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.CorruptBlobs != 1 || st.Extractions != 1 || st.DiskHits != 0 {
		t.Errorf("after corruption: %+v", st)
	}
	if !bytes.Equal(got, want) {
		t.Error("re-extracted blob differs from original")
	}
	// The healed blob persisted: a third store reads it straight back.
	healed := openTestStore(t, dir)
	if _, err := healed.Policies(fp); err != nil {
		t.Fatal(err)
	}
	if st := healed.Stats(); st.DiskHits != 1 || st.Extractions != 0 {
		t.Errorf("after healing: %+v", st)
	}
}

// Concurrent requests for one fingerprint extract exactly once; the rest
// coalesce onto the in-flight extraction. The stubbed extractor sleeps so
// all requests genuinely overlap (run under -race in CI).
func TestConcurrentRequestsExtractOnce(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	inner := s.extract
	s.extract = func(ctx context.Context, b *Bundle) ([]byte, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond)
		return inner(ctx, b)
	}
	const n = 16
	blobs := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blobs[i], errs[i] = s.Policies(fp)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !bytes.Equal(blobs[i], blobs[0]) {
			t.Fatalf("request %d saw different bytes", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("extractor ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.Extractions != 1 {
		t.Errorf("Extractions = %d, want 1", st.Extractions)
	}
	if st.Coalesced+st.MemHits != n-1 {
		t.Errorf("coalesced=%d memHits=%d, want %d combined", st.Coalesced, st.MemHits, n-1)
	}
}

func TestDiffReportsSeededDifference(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fpA, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	fpB, _, err := s.Put("b", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if fpA == fpB {
		t.Fatal("distinct bundles collided")
	}
	rep, err := s.Diff(fpA, fpB)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LibA != "a" || rep.LibB != "b" {
		t.Errorf("report libraries = %s, %s", rep.LibA, rep.LibB)
	}
	if len(rep.Groups) == 0 {
		t.Fatal("seeded missing checkWrite not reported")
	}
	found := false
	for _, g := range rep.Groups {
		if strings.Contains(g.DiffChecks.String(), "checkWrite") && g.MissingIn == "b" {
			found = true
		}
	}
	if !found {
		t.Errorf("no group reports checkWrite missing in b: %s", rep)
	}
	if got := s.Stats().Diffs; got != 1 {
		t.Errorf("Diffs = %d, want 1", got)
	}
}

func TestUnknownAndMalformedFingerprints(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	ghost := oracle.Fingerprint("ghost", map[string]string{"f": "x"}, oracle.DefaultOptions())
	if _, err := s.Policies(ghost); err == nil || !strings.Contains(err.Error(), "no bundle") {
		t.Errorf("unknown fingerprint error = %v", err)
	}
	for _, bad := range []string{"", "po1-zz", "../../etc/passwd"} {
		if _, err := s.Policies(bad); err == nil || !strings.Contains(err.Error(), "malformed") {
			t.Errorf("Policies(%q) error = %v", bad, err)
		}
		if _, err := s.Bundle(bad); err == nil {
			t.Errorf("Bundle(%q) accepted", bad)
		}
	}
}

// Eviction falls back to the persisted blob, never to re-extraction.
func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, CacheEntries: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	fpA, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	fpB, _, err := s.Put("b", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Policies(fpA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Policies(fpB); err != nil { // evicts fpA
		t.Fatal(err)
	}
	if got := s.CachedEntries(); got != 1 {
		t.Errorf("CachedEntries = %d, want 1", got)
	}
	if _, err := s.Policies(fpA); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Extractions != 2 || st.DiskHits != 1 {
		t.Errorf("after eviction: %+v", st)
	}
	// fpB's insert evicted fpA; fpA's disk-hit re-insert evicted fpB.
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", st.Evictions)
	}
}

// A caller that abandons its read gets ctx.Err() immediately, and as the
// last waiter it cancels the in-flight extraction. A later request must
// start a fresh extraction, not inherit the cancelled result.
func TestPoliciesContextCancellation(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	inner := s.extract
	entered := make(chan struct{})
	sawCancel := make(chan struct{})
	s.extract = func(ctx context.Context, b *Bundle) ([]byte, error) {
		close(entered)
		select {
		case <-ctx.Done():
			close(sawCancel)
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return inner(ctx, b)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.PoliciesContext(ctx, fp)
		errCh <- err
	}()
	<-entered
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned read error = %v, want context.Canceled", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("extraction context was never cancelled")
	}
	s.extract = inner
	if _, err := s.Policies(fp); err != nil {
		t.Fatalf("fresh read after abandonment: %v", err)
	}
}

// A cancelled coalesced waiter leaves without disturbing the extraction
// the remaining waiter depends on.
func TestCoalescedWaiterCancellation(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	inner := s.extract
	entered := make(chan struct{})
	release := make(chan struct{})
	s.extract = func(ctx context.Context, b *Bundle) ([]byte, error) {
		close(entered)
		<-release
		return inner(ctx, b)
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Policies(fp)
		done <- err
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PoliciesContext(ctx, fp); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled coalesced read error = %v, want context.Canceled", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	st := s.Stats()
	if st.Extractions != 1 || st.Coalesced != 1 {
		t.Errorf("after coalesced cancellation: %+v", st)
	}
}

// A store opened with a registry reports its cache, extraction, and
// per-mode analysis series on the shared scrape surface.
func TestStoreMetrics(t *testing.T) {
	reg := telemetry.New()
	s, err := Open(Config{Dir: t.TempDir(), Parallel: 1, CacheEntries: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	fpA, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	fpB, _, err := s.Put("b", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJv2}, OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diff(fpA, fpB); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Policies(fpA); err != nil { // evicted by fpB: disk hit
		t.Fatal(err)
	}
	text := reg.Text()
	for _, want := range []string{
		"polorad_store_bundles_created_total 2",
		"polorad_store_cache_misses_total 2",
		"polorad_store_extractions_total 2",
		"polorad_store_diffs_total 1",
		`polorad_store_cache_hits_total{tier="disk"} 1`,
		"polorad_store_cache_evictions_total 2",
		"polorad_store_cached_blobs 1",
		"polorad_store_extract_queue_wait_seconds_count 2",
		"polorad_store_extract_duration_seconds_count 2",
		`policyoracle_extractions_total{domain="securitymanager"} 2`,
		`policyoracle_extract_mode_duration_seconds_count{mode="may",domain="securitymanager"} 2`,
		`policyoracle_extract_mode_duration_seconds_count{mode="must",domain="securitymanager"} 2`,
		`policyoracle_analysis_entry_points_total{mode="may",domain="securitymanager"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape misses %q", want)
		}
	}
}

// The blob round-trips through the policy wire format losslessly enough
// for differencing: import of the stored bytes is re-exportable to the
// identical bytes.
func TestBlobRoundTripStability(t *testing.T) {
	s := openTestStore(t, t.TempDir())
	fp, _, err := s.Put("a", testSources(), OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.Policies(fp)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := policy.ImportJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	again, err := pp.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Errorf("wire format not a fixed point:\n%s\nvs\n%s", blob, again)
	}
}
