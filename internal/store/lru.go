package store

import "container/list"

// blobLRU is a fixed-capacity LRU over policy blobs, keyed by
// fingerprint. A capacity <= 0 disables the cache: add stores nothing
// (and reports no evictions) and get never hits. It is not safe for
// concurrent use; the Store serializes access under its mutex.
type blobLRU struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	fp   string
	blob []byte
}

func newBlobLRU(capacity int) *blobLRU {
	return &blobLRU{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *blobLRU) get(fp string) ([]byte, bool) {
	el, ok := c.items[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).blob, true
}

// add inserts or refreshes a blob and reports how many entries were
// evicted to stay within capacity.
func (c *blobLRU) add(fp string, blob []byte) (evicted int) {
	if c.cap <= 0 {
		// Disabled cache: without this guard the eviction loop below would
		// immediately evict the entry just inserted while still counting an
		// eviction, turning "no cache" into "cache with 100% miss rate plus
		// eviction noise in the metrics".
		return 0
	}
	if el, ok := c.items[fp]; ok {
		el.Value.(*lruEntry).blob = blob
		c.order.MoveToFront(el)
		return 0
	}
	c.items[fp] = c.order.PushFront(&lruEntry{fp: fp, blob: blob})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).fp)
		evicted++
	}
	return evicted
}

func (c *blobLRU) len() int { return c.order.Len() }
