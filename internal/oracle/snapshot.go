package oracle

import (
	"encoding/json"
	"fmt"
	"strings"

	"policyoracle/internal/policy"
)

// A snapshot is the persisted form of one extraction that a later
// ExtractIncremental can seed from: the policy blob in the polora-export
// wire format plus the incremental state (method hashes, entry
// dependency sets, option key). `polora extract` writes snapshots to
// disk; the store persists the same structure as a sidecar next to each
// policy blob, with Policies omitted because the blob already lives
// under policies/.

// SnapshotVersion tags the snapshot scheme; DecodeSnapshot rejects any
// other version rather than guessing at field semantics.
const SnapshotVersion = 1

// Snapshot is one extraction in seedable form.
type Snapshot struct {
	Version int    `json:"version"`
	Library string `json:"library"`
	// Options is the canonical semantic option string of the extraction.
	// The wire format carries no display data (paths, guards), so a
	// snapshot always represents a paths=false guards=false extraction
	// regardless of what the producing run collected in memory.
	Options      string              `json:"options"`
	MethodHashes map[string]string   `json:"methodHashes"`
	EntryDeps    map[string][]string `json:"entryDeps"`
	Policies     json.RawMessage     `json:"policies,omitempty"`
}

// Snapshot renders the library's last extraction as a Snapshot.
func (l *Library) Snapshot() (*Snapshot, error) {
	if l.Policies == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotExtracted, l.Name)
	}
	blob, err := l.Policies.ExportJSON()
	if err != nil {
		return nil, err
	}
	// ExtractedOpts is "<canonical> paths=<t> guards=<t>" (see
	// extractKey); strip the display flags, which the wire blob drops.
	canonical, _, ok := strings.Cut(l.ExtractedOpts, " paths=")
	if !ok {
		return nil, fmt.Errorf("oracle: library %s has no extraction option key (extracted by an older build?)", l.Name)
	}
	return &Snapshot{
		Version:      SnapshotVersion,
		Library:      l.Name,
		Options:      canonical,
		MethodHashes: l.MethodHashes,
		EntryDeps:    l.EntryDeps,
		Policies:     blob,
	}, nil
}

// ExportSnapshot is Snapshot, encoded.
func (l *Library) ExportSnapshot() ([]byte, error) {
	snap, err := l.Snapshot()
	if err != nil {
		return nil, err
	}
	return snap.Encode()
}

// Encode renders the snapshot in its stable on-disk form.
func (s *Snapshot) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSnapshot parses and validates a snapshot produced by Encode.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("oracle: decoding snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("oracle: unsupported snapshot version %d (want %d)", s.Version, SnapshotVersion)
	}
	if s.Library == "" {
		return nil, fmt.Errorf("oracle: snapshot has no library name")
	}
	return &s, nil
}

// ToLibrary reconstructs the previous-extraction view of a snapshot: a
// library carrying policies and incremental state but no program (an
// incremental extraction reloads the program from the new sources).
// s.Policies must be present — the store splices the separately-persisted
// blob back in before calling this.
func (s *Snapshot) ToLibrary() (*Library, error) {
	if len(s.Policies) == 0 {
		return nil, fmt.Errorf("oracle: snapshot for %s carries no policy blob", s.Library)
	}
	pp, err := policy.ImportJSON(s.Policies)
	if err != nil {
		return nil, fmt.Errorf("oracle: snapshot policies for %s: %w", s.Library, err)
	}
	if pp.Library != s.Library {
		return nil, fmt.Errorf("oracle: snapshot library %q does not match its policy blob %q", s.Library, pp.Library)
	}
	return &Library{
		Name:         s.Library,
		Policies:     pp,
		MethodHashes: s.MethodHashes,
		EntryDeps:    s.EntryDeps,
		// Imported policies went through the wire format, which drops
		// display data, so the restored key pins paths/guards off.
		ExtractedOpts: s.Options + " paths=false guards=false",
	}, nil
}

// ImportSnapshot decodes a snapshot and reconstructs the library view an
// incremental extraction seeds from.
func ImportSnapshot(data []byte) (*Library, error) {
	s, err := DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	return s.ToLibrary()
}
