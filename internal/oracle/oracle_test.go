package oracle

import (
	"context"
	"errors"
	"strings"
	"testing"

	"policyoracle/internal/analysis"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

const runtimeMJ = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkRead(String file) { }
  public void checkWrite(String file) { }
}
`

const libMJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    sm.checkWrite(key);
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  public int size() { return 0; }
  native void write0(String key);
  native String read0(String key);
}
`

func loadTestLib(t testing.TB, name string, srcs map[string]string) *Library {
	t.Helper()
	l, err := LoadLibrary(name, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLoadAndExtract(t *testing.T) {
	l := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	l.Extract(DefaultOptions())
	if l.Policies == nil {
		t.Fatal("no policies")
	}
	if got := len(l.EntryPoints()); got != 5 {
		t.Errorf("entry points = %d", got)
	}
	if got := l.Policies.EntriesWithChecks(); got != 2 {
		t.Errorf("entries with checks = %d", got)
	}
	ep := l.Policies.Entries["api.Store.put(String)"]
	if ep == nil {
		t.Fatal("put policy missing")
	}
	ret := ep.Events[secmodel.ReturnEvent()]
	if ret == nil || ret.Must.String() != "{checkWrite}" {
		t.Errorf("put return policy = %+v", ret)
	}
	if l.MayTime <= 0 || l.MustTime <= 0 {
		t.Error("timings not recorded")
	}
}

func TestLoadErrorOnBadSource(t *testing.T) {
	_, err := LoadLibrary("bad", map[string]string{"x.mj": "class { nonsense"})
	if err == nil {
		t.Fatal("expected load error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error lacks library name: %v", err)
	}
}

func TestDiffErrorsWithoutExtract(t *testing.T) {
	a := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	b := loadTestLib(t, "b", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	if _, err := Diff(a, b); !errors.Is(err, ErrNotExtracted) {
		t.Errorf("Diff on un-extracted libraries: err = %v, want ErrNotExtracted", err)
	}
	a.Extract(DefaultOptions())
	if _, err := Diff(a, b); !errors.Is(err, ErrNotExtracted) || !strings.Contains(err.Error(), "b") {
		t.Errorf("Diff with one side extracted: err = %v, want ErrNotExtracted naming b", err)
	}
}

func TestCompareExtractsIfNeeded(t *testing.T) {
	srcs := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ}
	a := loadTestLib(t, "a", srcs)
	b := loadTestLib(t, "b", srcs)
	a.Extract(DefaultOptions()) // pre-extracted side must not be redone
	preExtracted := a.Policies
	rep, err := Compare(a, b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diffs) != 0 {
		t.Errorf("identical libraries differ: %s", rep)
	}
	if a.Policies != preExtracted {
		t.Error("Compare re-extracted an already-extracted library")
	}
	if b.Policies == nil {
		t.Error("Compare did not extract the missing side")
	}
}

func TestExtractContextCancelled(t *testing.T) {
	l := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.ExtractContext(ctx, DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Errorf("ExtractContext on cancelled ctx: err = %v", err)
	}
	if l.Policies != nil {
		t.Error("cancelled extraction published a partial policy set")
	}
}

// TestTelemetryDoesNotPerturbExtraction asserts the tentpole invariant:
// extraction with a live metrics registry produces byte-identical
// policies to extraction without one, and the instruments record the
// analyzer's actual work.
func TestTelemetryDoesNotPerturbExtraction(t *testing.T) {
	srcs := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ}
	plain := loadTestLib(t, "lib", srcs)
	plain.Extract(DefaultOptions())
	want, err := plain.Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	instrumented := loadTestLib(t, "lib", srcs)
	opts := DefaultOptions()
	opts.Telemetry = telemetry.NewExtractMetrics(reg)
	instrumented.Extract(opts)
	got, err := instrumented.Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("telemetry-instrumented extraction is not byte-identical")
	}

	if n := opts.Telemetry.Extractions.With(secmodel.DefaultDomainID).Value(); n != 1 {
		t.Errorf("extractions counter = %v, want 1", n)
	}
	entries := float64(len(instrumented.EntryPoints()))
	for _, mode := range []string{"may", "must"} {
		if n := opts.Telemetry.EntryPoints.With(mode, secmodel.DefaultDomainID).Value(); n != entries {
			t.Errorf("entry-point counter[%s] = %v, want %v", mode, n, entries)
		}
		if n := opts.Telemetry.EntryDuration.With(mode, secmodel.DefaultDomainID).Count(); n != entries {
			t.Errorf("entry-duration samples[%s] = %v, want %v", mode, n, entries)
		}
		if n := opts.Telemetry.ModeDuration.With(mode, secmodel.DefaultDomainID).Count(); n != 1 {
			t.Errorf("mode-duration samples[%s] = %v, want 1", mode, n)
		}
	}
	if got := int(opts.Telemetry.MethodAnalyses.With("may", secmodel.DefaultDomainID).Value()); got != instrumented.MayStats.MethodAnalyses {
		t.Errorf("method-analyses counter = %d, want %d", got, instrumented.MayStats.MethodAnalyses)
	}
}

func TestMatchingEntries(t *testing.T) {
	a := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	b := loadTestLib(t, "b", map[string]string{"rt.mj": runtimeMJ})
	if got := MatchingEntries(a, b); got != 2 { // the SecurityManager checks
		t.Errorf("matching = %d", got)
	}
	if got := MatchingEntries(a, a); got != len(a.EntryPoints()) {
		t.Errorf("self-match = %d", got)
	}
}

func TestExtractMustOnlyMode(t *testing.T) {
	l := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	opts := DefaultOptions()
	opts.Modes = []analysis.Mode{analysis.Must}
	l.Extract(opts)
	ep := l.Policies.Entries["api.Store.put(String)"]
	ret := ep.Events[secmodel.ReturnEvent()]
	if ret.Must.String() != "{checkWrite}" {
		t.Errorf("must = %s", ret.Must)
	}
	// Must-only extraction mirrors must into may for display.
	if ret.May.String() != "{checkWrite}" {
		t.Errorf("may mirror = %s", ret.May)
	}
}

func TestCountNCLoC(t *testing.T) {
	src := `
// comment only
package p; // trailing

/* block
   comment */
class C {
  /* inline */ int f;
}
`
	if got := CountNCLoC(src); got != 4 {
		t.Errorf("NCLoC = %d, want 4 (package, class, field, brace)", got)
	}
	if CountNCLoC("") != 0 {
		t.Error("empty source has lines")
	}
	if CountNCLoC("a /* x */ b") != 1 {
		t.Error("inline block comment handling wrong")
	}
}

func TestDiffIdenticalLibraries(t *testing.T) {
	srcs := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ}
	a := loadTestLib(t, "a", srcs)
	b := loadTestLib(t, "b", srcs)
	a.Extract(DefaultOptions())
	b.Extract(DefaultOptions())
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diffs) != 0 {
		t.Errorf("identical libraries differ: %s", rep)
	}
}
