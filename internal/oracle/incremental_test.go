package oracle

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"policyoracle/internal/diff"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// Two single-entry classes whose policies are independent: editing one
// must not force the other through the analyzer again.
const classAMJ = `
package api;
import java.lang.*;
public class A {
  private SecurityManager sm;
  public void doA(String k) {
    sm.checkRead(k);
    a0(k);
  }
  native void a0(String k);
}
`

const classBMJ = `
package api;
import java.lang.*;
public class B {
  private SecurityManager sm;
  public void doB(String k) {
    sm.checkWrite(k);
    b0(k);
  }
  native void b0(String k);
}
`

// classBMJv2 drops doB's check — a semantic edit confined to B.doB.
const classBMJv2 = `
package api;
import java.lang.*;
public class B {
  private SecurityManager sm;
  public void doB(String k) {
    b0(k);
  }
  native void b0(String k);
}
`

func twoClassSources() map[string]string {
	return map[string]string{"rt.mj": runtimeMJ, "a.mj": classAMJ, "b.mj": classBMJ}
}

func extractClean(t *testing.T, name string, srcs map[string]string, opts Options) *Library {
	t.Helper()
	l := loadTestLib(t, name, srcs)
	l.Extract(opts)
	return l
}

func exportBytes(t *testing.T, l *Library) []byte {
	t.Helper()
	data, err := l.Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// diffJSON renders a comparison in the polora diff -json wire form, the
// second surface the incremental guarantee covers.
func diffJSON(t *testing.T, a, b *Library) []byte {
	t.Helper()
	rep := diff.Compare(a.Policies, b.Policies)
	data, err := json.Marshal(rep.ToJSON())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestIncrementalNoChangeReusesEverything(t *testing.T) {
	srcs := twoClassSources()
	prev := extractClean(t, "lib", srcs, DefaultOptions())
	want := exportBytes(t, prev)

	opts := DefaultOptions()
	opts.Telemetry = telemetry.NewExtractMetrics(telemetry.New())
	lib, st, err := ExtractIncremental(prev, srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatal("identical options fell back to a full extraction")
	}
	if st.Reanalyzed != 0 || st.Reused != st.Entries || st.Entries == 0 {
		t.Errorf("stats = %+v, want everything reused", st)
	}
	if st.ChangedMethods != 0 {
		t.Errorf("ChangedMethods = %d on untouched sources", st.ChangedMethods)
	}
	if got := exportBytes(t, lib); !bytes.Equal(got, want) {
		t.Error("no-change incremental export differs from the original")
	}
	// The analyzer never ran: per-mode entry counters stay zero while the
	// incremental instruments record the splices.
	tm := opts.Telemetry
	if n := tm.EntryPoints.With("may", secmodel.DefaultDomainID).Value(); n != 0 {
		t.Errorf("may entry-point counter = %v after pure splice", n)
	}
	if n := tm.IncrementalReused.Value(); n != float64(st.Entries) {
		t.Errorf("reused counter = %v, want %d", n, st.Entries)
	}
	if n := tm.IncrementalReanalyzed.Value(); n != 0 {
		t.Errorf("reanalyzed counter = %v, want 0", n)
	}
	if n := tm.IncrementalHashed.Value(); n != float64(st.HashedMethods) {
		t.Errorf("hash counter = %v, want %d", n, st.HashedMethods)
	}
	if n := tm.DepSetSize.Count(); n != float64(st.Entries) {
		t.Errorf("dep-set samples = %v, want one per entry (%d)", n, st.Entries)
	}
}

// TestIncrementalSingleMethodEdit is the acceptance check: after editing
// one method, only the entry points depending on it go through the
// analyzer, and the spliced result is byte-identical to a from-scratch
// extraction of the edited sources — in the export wire format and in
// diff reports from both directions.
func TestIncrementalSingleMethodEdit(t *testing.T) {
	base := twoClassSources()
	prev := extractClean(t, "lib", base, DefaultOptions())

	edited := twoClassSources()
	edited["b.mj"] = classBMJv2

	opts := DefaultOptions()
	opts.Telemetry = telemetry.NewExtractMetrics(telemetry.New())
	inc, st, err := ExtractIncremental(prev, edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatal("unexpected full fallback")
	}
	// 4 entries: A.doA, B.doB, and the two SecurityManager checks. Only
	// B.doB saw its dependency set change.
	if st.Entries != 4 || st.Reanalyzed != 1 || st.Reused != 3 {
		t.Errorf("stats = %+v, want 1 of 4 re-analyzed", st)
	}
	if st.ChangedMethods != 1 {
		t.Errorf("ChangedMethods = %d, want 1 (B.doB)", st.ChangedMethods)
	}
	for _, mode := range []string{"may", "must"} {
		if n := opts.Telemetry.EntryPoints.With(mode, secmodel.DefaultDomainID).Value(); n != float64(st.Reanalyzed) {
			t.Errorf("analyzer ran %v %s entries, want exactly the re-analyzed %d", n, mode, st.Reanalyzed)
		}
	}

	clean := extractClean(t, "lib", edited, DefaultOptions())
	if !bytes.Equal(exportBytes(t, inc), exportBytes(t, clean)) {
		t.Error("incremental export differs from from-scratch export")
	}
	if !bytes.Equal(diffJSON(t, clean, prev), diffJSON(t, inc, prev)) {
		t.Error("diff -json vs the base differs between incremental and clean")
	}
	if !bytes.Equal(diffJSON(t, prev, clean), diffJSON(t, prev, inc)) {
		t.Error("reversed diff -json differs between incremental and clean")
	}
	// The edit dropped a check, so the diff against the base must see it.
	if rep := diff.Compare(prev.Policies, inc.Policies); len(rep.Diffs) == 0 {
		t.Error("semantic edit produced no differences against the base")
	}
}

func TestIncrementalSnapshotRoundTrip(t *testing.T) {
	// Snapshots persist wire-format policies, so the extractions on both
	// sides of the round trip run without display collection.
	opts := DefaultOptions()
	opts.CollectPaths, opts.CollectGuards = false, false

	srcs := twoClassSources()
	prev := extractClean(t, "lib", srcs, opts)
	snap, err := prev.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	seed, err := ImportSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if seed.Prog != nil {
		t.Error("imported snapshot carries a program")
	}

	edited := twoClassSources()
	edited["b.mj"] = classBMJv2
	inc, st, err := ExtractIncremental(seed, edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Full {
		t.Fatal("snapshot seed fell back to a full extraction (option key mismatch)")
	}
	if st.Reanalyzed != 1 || st.Reused != 3 {
		t.Errorf("stats = %+v, want 1 of 4 re-analyzed", st)
	}
	clean := extractClean(t, "lib", edited, opts)
	if !bytes.Equal(exportBytes(t, inc), exportBytes(t, clean)) {
		t.Error("snapshot-seeded export differs from from-scratch export")
	}
	// The incremental result snapshots again, so chains of edits keep
	// seeding from the latest extraction.
	if _, err := inc.ExportSnapshot(); err != nil {
		t.Errorf("re-snapshot of incremental result: %v", err)
	}
}

func TestIncrementalOptionMismatchFallsBack(t *testing.T) {
	srcs := twoClassSources()
	prev := extractClean(t, "lib", srcs, DefaultOptions())

	opts := DefaultOptions()
	opts.ICP = false // different canonical options: prev proves nothing
	lib, st, err := ExtractIncremental(prev, srcs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Full {
		t.Fatal("option mismatch did not fall back to a full extraction")
	}
	if st.Reanalyzed != st.Entries || st.Reused != 0 {
		t.Errorf("full fallback stats = %+v", st)
	}
	clean := extractClean(t, "lib", srcs, opts)
	if !bytes.Equal(exportBytes(t, lib), exportBytes(t, clean)) {
		t.Error("fallback export differs from a clean extraction under the new options")
	}
}

func TestIncrementalRequiresPreviousPolicies(t *testing.T) {
	srcs := twoClassSources()
	if _, _, err := ExtractIncremental(nil, srcs, DefaultOptions()); !errors.Is(err, ErrNoPrevious) {
		t.Errorf("nil prev: err = %v, want ErrNoPrevious", err)
	}
	unextracted := loadTestLib(t, "lib", srcs)
	if _, _, err := ExtractIncremental(unextracted, srcs, DefaultOptions()); !errors.Is(err, ErrNoPrevious) {
		t.Errorf("unextracted prev: err = %v, want ErrNoPrevious", err)
	}
}

func TestSnapshotValidation(t *testing.T) {
	srcs := twoClassSources()
	unextracted := loadTestLib(t, "lib", srcs)
	if _, err := unextracted.Snapshot(); !errors.Is(err, ErrNotExtracted) {
		t.Errorf("snapshot of unextracted library: err = %v, want ErrNotExtracted", err)
	}

	if _, err := DecodeSnapshot([]byte(`{"version": 99, "library": "x"}`)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	if _, err := DecodeSnapshot([]byte(`{"version": 1}`)); err == nil {
		t.Error("snapshot without a library name accepted")
	}
	if _, err := (&Snapshot{Version: 1, Library: "x"}).ToLibrary(); err == nil {
		t.Error("snapshot without a policy blob accepted")
	}

	// A blob whose embedded library name disagrees with the envelope is
	// rejected rather than silently renamed.
	lib := extractClean(t, "lib", srcs, DefaultOptions())
	blob := exportBytes(t, lib)
	s := &Snapshot{Version: 1, Library: "other", Policies: blob}
	if _, err := s.ToLibrary(); err == nil || !strings.Contains(err.Error(), "other") {
		t.Errorf("name mismatch accepted: %v", err)
	}
}

// TestMethodHashesTrackEdits pins the hash layer itself: stable across
// independent loads of identical sources, and perturbed exactly at the
// edited method.
func TestMethodHashesTrackEdits(t *testing.T) {
	srcs := twoClassSources()
	a := loadTestLib(t, "lib", srcs)
	b := loadTestLib(t, "lib", srcs)
	ha := MethodHashes(a.Prog, a.Resolver, secmodel.SecurityManager())
	hb := MethodHashes(b.Prog, b.Resolver, secmodel.SecurityManager())
	if len(ha) == 0 {
		t.Fatal("no methods hashed")
	}
	for sig, h := range ha {
		if hb[sig] != h {
			t.Errorf("hash of %s unstable across loads", sig)
		}
	}

	edited := twoClassSources()
	edited["b.mj"] = classBMJv2
	c := loadTestLib(t, "lib", edited)
	hc := MethodHashes(c.Prog, c.Resolver, secmodel.SecurityManager())
	for sig, h := range ha {
		changed := hc[sig] != h
		if sig == "api.B.doB(String)" && !changed {
			t.Error("edited method kept its hash")
		}
		if sig != "api.B.doB(String)" && changed {
			t.Errorf("untouched method %s changed hash", sig)
		}
	}
}
