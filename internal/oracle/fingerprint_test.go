package oracle

import (
	"runtime"
	"strings"
	"testing"

	"policyoracle/internal/analysis"
)

func TestNormalizeResolvesDefaults(t *testing.T) {
	var o Options
	n := o.Normalize()
	if n.Parallel != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallel = %d, want GOMAXPROCS", n.Parallel)
	}
	if len(n.Modes) != 2 || n.Modes[0] != analysis.May || n.Modes[1] != analysis.Must {
		t.Errorf("Modes = %v, want [may must]", n.Modes)
	}
	// Explicit values survive.
	o = Options{Parallel: 3, Modes: []analysis.Mode{analysis.Must}}
	n = o.Normalize()
	if n.Parallel != 3 || len(n.Modes) != 1 || n.Modes[0] != analysis.Must {
		t.Errorf("explicit options rewritten: %+v", n)
	}
}

func TestCanonicalOptionsIgnoresExecutionStrategy(t *testing.T) {
	base := DefaultOptions()
	variants := []Options{
		base,
		{Events: base.Events, ICP: base.ICP, AssumeSecurityManager: base.AssumeSecurityManager,
			Memo: analysis.MemoNone, MaxDepth: base.MaxDepth, CollectPaths: false,
			CollectGuards: true, Parallel: 7},
	}
	c0 := CanonicalOptions(variants[0])
	if c1 := CanonicalOptions(variants[1]); c1 != c0 {
		t.Errorf("canonical options differ on strategy-only changes:\n%s\n%s", c0, c1)
	}
	// Semantic changes must show.
	sem := base
	sem.ICP = false
	if CanonicalOptions(sem) == c0 {
		t.Error("ICP change not reflected in canonical options")
	}
	sem = base
	sem.Modes = []analysis.Mode{analysis.Must}
	if CanonicalOptions(sem) == c0 {
		t.Error("Modes change not reflected in canonical options")
	}
	// Mode order and duplicates canonicalize away.
	a := base
	a.Modes = []analysis.Mode{analysis.Must, analysis.May, analysis.May}
	if CanonicalOptions(a) != c0 {
		t.Errorf("mode order/dup changed canonical form: %s", CanonicalOptions(a))
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	srcs := map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ}
	opts := DefaultOptions()
	fp := Fingerprint("a", srcs, opts)
	if !IsFingerprint(fp) {
		t.Fatalf("fingerprint %q is not well-formed", fp)
	}
	if got := Fingerprint("a", srcs, opts); got != fp {
		t.Errorf("fingerprint not deterministic: %s vs %s", fp, got)
	}
	// Parallelism does not perturb the address.
	par := opts
	par.Parallel = 9
	if got := Fingerprint("a", srcs, par); got != fp {
		t.Errorf("Parallel changed fingerprint: %s vs %s", fp, got)
	}
	// Name, content, file set, and semantic options all do.
	if Fingerprint("b", srcs, opts) == fp {
		t.Error("library name not part of fingerprint")
	}
	if Fingerprint("a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ + " "}, opts) == fp {
		t.Error("source content not part of fingerprint")
	}
	if Fingerprint("a", map[string]string{"rt.mj": runtimeMJ}, opts) == fp {
		t.Error("file set not part of fingerprint")
	}
	broad := opts
	broad.Events = 1 // secmodel.BroadEvents
	if Fingerprint("a", srcs, broad) == fp {
		t.Error("event mode not part of fingerprint")
	}
}

// Fingerprinting must not depend on how file boundaries fall: two bundles
// whose concatenated bytes agree but whose files differ must not collide.
func TestFingerprintFileBoundaries(t *testing.T) {
	opts := DefaultOptions()
	a := Fingerprint("x", map[string]string{"a": "bc", "d": ""}, opts)
	b := Fingerprint("x", map[string]string{"a": "b", "c": "", "d": ""}, opts)
	if a == b {
		t.Error("file boundary shift produced a collision")
	}
}

func TestIsFingerprint(t *testing.T) {
	good := Fingerprint("a", map[string]string{"f": "x"}, DefaultOptions())
	for _, bad := range []string{
		"", "po1-", strings.ToUpper(good), good + "0", good[:len(good)-1],
		"po2" + good[3:], strings.Replace(good, "a", "z", 1),
		"../../../etc/passwd",
	} {
		if bad == good {
			continue // ToUpper/Replace may be no-ops for some digests
		}
		if IsFingerprint(bad) {
			t.Errorf("IsFingerprint(%q) = true", bad)
		}
	}
}
