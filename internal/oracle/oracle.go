// Package oracle is the top-level engine of the security policy oracle: it
// loads MJ library implementations, extracts MAY and MUST security
// policies for every API entry point with the ISPA analysis, and
// differences the policies of two implementations.
package oracle

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle/internal/analysis"
	"policyoracle/internal/ast"
	"policyoracle/internal/callgraph"
	"policyoracle/internal/diff"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
	"policyoracle/internal/types"
)

// Options configures policy extraction.
type Options struct {
	// Domain selects the check domain the extraction runs under: the
	// guard class, check table, and privileged-block semantics the ISPA
	// analysis recognizes. nil means the registered default
	// (SecurityManager) domain. The domain participates in bundle
	// fingerprints and incremental option keys — as an empty suffix for
	// the default domain, so pre-domain addresses are unchanged.
	Domain                *secmodel.Domain
	Events                secmodel.EventMode
	ICP                   bool
	AssumeSecurityManager bool
	Memo                  analysis.MemoMode
	// MaxDepth bounds interprocedural descent (-1 = unlimited).
	MaxDepth int
	// CollectPaths enables Figure 2-style path alternatives in MAY
	// policies.
	CollectPaths bool
	// CollectGuards records the branch conditions dominating each check
	// occurrence (Section 6.4's MAY-policy conditions; display only).
	CollectGuards bool
	// Modes restricts extraction to MAY or MUST only (both when empty),
	// which the Table 2 harness uses to time each independently.
	Modes []analysis.Mode
	// Parallel is the entry-point worker count per analysis mode: 1 (the
	// default) extracts sequentially, N > 1 fans entry points out over N
	// workers and runs the MAY and MUST modes concurrently, and any value
	// <= 0 means GOMAXPROCS. Parallel extraction produces byte-identical
	// policies and diff reports to sequential extraction.
	Parallel int
	// Telemetry, when non-nil, receives extraction metrics: per-mode
	// wall time, per-entry analysis durations, worker-pool busy time,
	// and the analyzer's per-phase work counters. Like Parallel and
	// Memo it is execution strategy, never part of the fingerprint, and
	// it cannot perturb the extracted policy bytes.
	Telemetry *telemetry.ExtractMetrics
	// Summaries, when non-nil, is a process-wide cross-library cache of
	// per-entry results: entries whose full dependency cone hashes
	// identically to a previous extraction under the same options are
	// spliced from the cache instead of re-analyzed. Like Telemetry it is
	// execution strategy — never part of the fingerprint — and cannot
	// perturb the extracted policy bytes (cache validity is the
	// incremental-extraction soundness argument, see SummaryCache).
	Summaries *SummaryCache
}

// DefaultOptions returns the configuration used for the paper's main
// results.
func DefaultOptions() Options {
	return Options{
		Events:                secmodel.NarrowEvents,
		ICP:                   true,
		AssumeSecurityManager: true,
		Memo:                  analysis.MemoGlobal,
		MaxDepth:              -1,
		CollectPaths:          true,
		Parallel:              1,
	}
}

// Library is one loaded implementation of the API under analysis.
type Library struct {
	Name     string
	Prog     *ir.Program
	Resolver *callgraph.Resolver
	Policies *policy.ProgramPolicies

	// Incremental-extraction state, filled by every extraction:
	// MethodHashes maps each method signature to its IR-level content
	// hash, EntryDeps maps each entry-point signature to the sorted
	// signatures of the methods its analysis visited, and ExtractedOpts
	// is the option key (see extractKey) the policies were extracted
	// under. Together they are what ExtractIncremental consumes as prev.
	MethodHashes  map[string]string
	EntryDeps     map[string][]string
	ExtractedOpts string

	// NCLoC is the number of non-comment, non-blank source lines.
	NCLoC int
	// Extraction statistics and timings, per mode. After an incremental
	// extraction they describe only the re-analyzed entry subset.
	MayStats, MustStats analysis.Stats
	MayTime, MustTime   time.Duration
	Diags               *lang.Diagnostics

	// hashMu/hashCache memoize MethodHashes per domain ID: the program
	// is immutable after load, so its content hashes are computed at
	// most once per (library, domain) no matter how many extractions run
	// on it. The cache is keyed by domain because check identity,
	// guard-state and privileged-scope facts feed the digests.
	hashMu    sync.Mutex
	hashCache map[string]map[string]string

	// events is the per-program event interning table, built on first use
	// and shared by every analyzer of this library.
	eventsOnce sync.Once
	events     *secmodel.ProgramEvents
}

// methodHashes returns the library's IR content hashes under domain d,
// computing them on first use per domain.
func (l *Library) methodHashes(d *secmodel.Domain) map[string]string {
	l.hashMu.Lock()
	defer l.hashMu.Unlock()
	if l.hashCache == nil {
		l.hashCache = make(map[string]map[string]string, 1)
	}
	h, ok := l.hashCache[d.ID()]
	if !ok {
		h = MethodHashes(l.Prog, l.Resolver, d)
		l.hashCache[d.ID()] = h
	}
	return h
}

// eventInterns returns the library's event interning table, building it
// on first use.
func (l *Library) eventInterns() *secmodel.ProgramEvents {
	l.eventsOnce.Do(func() { l.events = secmodel.BuildProgramEvents(l.Prog.Types) })
	return l.events
}

// LoadLibrary parses and builds one implementation from named sources
// (file name → MJ source text).
func LoadLibrary(name string, sources map[string]string) (*Library, error) {
	diags := &lang.Diagnostics{}
	var files []*ast.File
	ncloc := 0
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		src := sources[n]
		files = append(files, parser.ParseFile(n, src, diags))
		ncloc += CountNCLoC(src)
	}
	tp := types.Build(name, files, diags)
	prog := ir.LowerProgram(tp, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("loading %s: %w", name, diags.Err())
	}
	return &Library{
		Name:     name,
		Prog:     prog,
		Resolver: callgraph.NewResolver(prog),
		NCLoC:    ncloc,
		Diags:    diags,
	}, nil
}

// CountNCLoC counts non-comment, non-blank lines of MJ source.
func CountNCLoC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		s := strings.TrimSpace(line)
		if inBlock {
			if i := strings.Index(s, "*/"); i >= 0 {
				inBlock = false
				s = strings.TrimSpace(s[i+2:])
			} else {
				continue
			}
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		for {
			i := strings.Index(s, "/*")
			if i < 0 {
				break
			}
			j := strings.Index(s[i+2:], "*/")
			if j < 0 {
				s = strings.TrimSpace(s[:i])
				inBlock = true
				break
			}
			s = strings.TrimSpace(s[:i] + s[i+2+j+2:])
		}
		if s != "" {
			n++
		}
	}
	return n
}

// EntryPoints returns the library's API entry points.
func (l *Library) EntryPoints() []*types.Method { return l.Prog.Types.EntryPoints() }

// Extract computes the security policies of every API entry point under
// opts, storing them in l.Policies.
//
// With opts.Parallel != 1 the MAY and MUST modes run concurrently and
// each mode fans its entry points out over a worker pool sharing one
// analyzer (and therefore one summary cache). Results are collected
// per-entry and merged in the same sorted entry order as the sequential
// path, so the extracted policies are byte-identical either way.
func (l *Library) Extract(opts Options) {
	// A background context never cancels, so the only error
	// ExtractContext can return is impossible here.
	_ = l.ExtractContext(context.Background(), opts)
}

// ExtractContext is Extract with cancellation: workers stop picking up
// entry points once ctx is done and the ctx error is returned, with
// l.Policies left untouched (a cancelled extraction never publishes a
// partial policy set). Cancellation is observed between entry-point
// analyses, so it takes effect within one entry analysis at worst.
func (l *Library) ExtractContext(ctx context.Context, opts Options) error {
	opts = opts.Normalize()
	if tm := opts.Telemetry; tm != nil {
		tm.Extractions.With(opts.Domain.ID()).Inc()
	}
	pp := policy.NewProgramPolicies(l.Name)
	if opts.Domain != secmodel.SecurityManager() {
		pp.Domain = opts.Domain.ID()
	}
	deps, err := l.extractEntries(ctx, opts, l.EntryPoints(), pp)
	if err != nil {
		return err
	}
	l.publish(pp, deps, opts)
	return nil
}

// publish installs one completed extraction on the library: the policies
// plus the incremental-extraction state derived from them.
func (l *Library) publish(pp *policy.ProgramPolicies, deps map[string][]string, opts Options) {
	l.Policies = pp
	l.EntryDeps = deps
	l.MethodHashes = l.methodHashes(opts.Domain)
	l.ExtractedOpts = extractKey(opts)
}

// extractEntries runs the per-mode analyses for the given entry points,
// writing the merged policies into pp and returning each entry's
// dependency set (the MAY/MUST union). opts must already be normalized.
// The library's per-mode stats and timings are overwritten and describe
// exactly this run, so after an incremental extraction they cover only
// the re-analyzed subset.
func (l *Library) extractEntries(ctx context.Context, opts Options, entries []*types.Method, pp *policy.ProgramPolicies) (map[string][]string, error) {
	modes := opts.Modes
	workers := opts.Parallel
	if tm := opts.Telemetry; tm != nil {
		tm.Workers.Set(float64(workers))
	}
	deps := make(map[string][]string, len(entries))

	// Summary-cache splice: entries whose dependency cone is pinned in the
	// cache skip analysis entirely; only the remainder reaches the
	// analyzers. extractKey and the hash table are only computed when a
	// cache is attached.
	analyzed := entries
	var sumKey string
	var sumHashes map[string]string
	if opts.Summaries != nil {
		sumKey = extractKey(opts)
		sumHashes = l.methodHashes(opts.Domain)
		analyzed = make([]*types.Method, 0, len(entries))
		hits := 0
		for _, m := range entries {
			sig := m.Qualified()
			if ep, d, ok := opts.Summaries.lookup(sumKey, sig, sumHashes); ok {
				pp.Entries[sig] = ep
				deps[sig] = d
				hits++
			} else {
				analyzed = append(analyzed, m)
			}
		}
		if tm := opts.Telemetry; tm != nil {
			tm.SummaryCacheHits.With(opts.Domain.ID()).Add(float64(hits))
			tm.SummaryCacheMisses.With(opts.Domain.ID()).Add(float64(len(analyzed)))
		}
	}

	results := make(map[analysis.Mode]map[string]*analysis.EntryResult, len(modes))
	runMode := func(mode analysis.Mode) map[string]*analysis.EntryResult {
		cfg := analysis.Config{
			Mode:                  mode,
			Domain:                opts.Domain,
			Events:                opts.Events,
			ICP:                   opts.ICP,
			AssumeSecurityManager: opts.AssumeSecurityManager,
			Memo:                  opts.Memo,
			MaxDepth:              opts.MaxDepth,
			CollectPaths:          opts.CollectPaths && mode == analysis.May,
			CollectOrigins:        mode == analysis.May,
			CollectGuards:         opts.CollectGuards && mode == analysis.May,
			Telemetry:             opts.Telemetry,
			EventInterns:          l.eventInterns(),
		}
		a := analysis.New(l.Prog, l.Resolver, cfg)
		start := time.Now()
		perEntry := analyzeEntries(ctx, a, analyzed, workers)
		elapsed := time.Since(start)
		byEntry := make(map[string]*analysis.EntryResult, len(analyzed))
		for i, m := range analyzed {
			byEntry[m.Qualified()] = perEntry[i]
		}
		stats := a.Stats()
		if mode == analysis.May {
			l.MayStats, l.MayTime = stats, elapsed
		} else {
			l.MustStats, l.MustTime = stats, elapsed
		}
		opts.Telemetry.ObserveMode(mode.String(), opts.Domain.ID(), elapsed,
			stats.MethodAnalyses, stats.MemoHits, stats.CPRuns, stats.CPHits, stats.EntryPoints)
		return byEntry
	}
	if workers > 1 && len(modes) > 1 {
		byMode := make([]map[string]*analysis.EntryResult, len(modes))
		var wg sync.WaitGroup
		for i, mode := range modes {
			wg.Add(1)
			go func(i int, mode analysis.Mode) {
				defer wg.Done()
				byMode[i] = runMode(mode)
			}(i, mode)
		}
		wg.Wait()
		for i, mode := range modes {
			results[mode] = byMode[i]
		}
	} else {
		for _, mode := range modes {
			results[mode] = runMode(mode)
			if ctx.Err() != nil {
				break
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge per-mode results into combined entry policies.
	mayRes := results[analysis.May]
	mustRes := results[analysis.Must]
	for _, m := range analyzed {
		sig := m.Qualified()
		ep := policy.NewEntryPolicy(sig)
		events := map[secmodel.Event]bool{}
		if r := mayRes[sig]; r != nil {
			for ev := range r.Events {
				events[ev] = true
			}
		}
		if r := mustRes[sig]; r != nil {
			for ev := range r.Events {
				events[ev] = true
			}
		}
		for ev := range events {
			evp := ep.EventPolicyFor(ev)
			evp.Must = policy.Empty
			if r := mustRes[sig]; r != nil {
				if er, ok := r.Events[ev]; ok {
					evp.Must = er.Checks
				}
			}
			if r := mayRes[sig]; r != nil {
				if er, ok := r.Events[ev]; ok {
					evp.May = er.Checks
					evp.Paths = er.Paths
				}
			}
			if evp.May.IsEmpty() && len(modes) == 1 && modes[0] == analysis.Must {
				// MUST-only extraction: mirror must into may for display.
				evp.May = evp.Must
			}
			if r := mayRes[sig]; r != nil {
				for _, o := range r.Origins {
					if evp.May.Has(o.Check) {
						evp.AddOrigin(o.Check, o.Sig)
					}
				}
			}
		}
		if opts.CollectGuards {
			if r := mayRes[sig]; r != nil {
				for _, o := range r.Origins {
					ep.AddGuard(o.Check, o.Guards)
				}
			}
		}
		pp.Entries[sig] = ep
		deps[sig] = mergeDeps(sig, mayRes[sig], mustRes[sig])
		if opts.Summaries != nil {
			opts.Summaries.insert(sumKey, sig, deps[sig], sumHashes, ep)
		}
	}
	return deps, nil
}

// mergeDeps unions the per-mode dependency sets of one entry. The sets
// agree in practice — reachability does not depend on the meet — but the
// union keeps reuse sound if a mode ever prunes differently. Each
// per-mode list is already sorted (see analysis.EntryResult.Deps), so
// the union is a linear two-pointer merge with no re-sort.
func mergeDeps(sig string, rs ...*analysis.EntryResult) []string {
	var a, b []string
	for _, r := range rs {
		if r == nil || len(r.Deps) == 0 {
			continue
		}
		if a == nil {
			a = r.Deps
		} else {
			b = mergeSorted(a, b)
			a = r.Deps
		}
	}
	out := mergeSorted(a, b)
	if len(out) == 0 {
		return []string{sig}
	}
	return out
}

// mergeSorted unions two sorted string lists, deduplicating. A nil second
// list returns the first unchanged (no copy — callers treat dep lists as
// immutable).
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// analyzeEntries analyzes every entry point on a shared analyzer, fanning
// the entries out over up to `workers` goroutines. The result slice is
// indexed like entries, so callers observe the same deterministic order
// regardless of scheduling; the workers share the analyzer's summary
// cache, the same structure that makes sequential global memoization pay.
// When ctx is cancelled, workers stop claiming entries; the caller
// detects the cancellation via ctx.Err and discards the partial slice.
func analyzeEntries(ctx context.Context, a *analysis.Analyzer, entries []*types.Method, workers int) []*analysis.EntryResult {
	out := make([]*analysis.EntryResult, len(entries))
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers <= 1 {
		for i, m := range entries {
			if ctx.Err() != nil {
				return out
			}
			out[i] = a.AnalyzeEntry(m)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(entries) || ctx.Err() != nil {
					return
				}
				out[i] = a.AnalyzeEntry(entries[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// ErrNotExtracted reports a Diff over a library whose policies were
// never extracted.
var ErrNotExtracted = errors.New("oracle: library has no extracted policies (call Extract first)")

// ErrDomainMismatch reports a Diff whose two policy sets were extracted
// under different check domains. Their check sets index different
// tables, so the comparison fails loudly instead of producing nonsense.
var ErrDomainMismatch = errors.New("oracle: cannot diff policies from different check domains")

// Diff differences the extracted policies of two implementations. It
// fails loudly — never an empty report — when either side was not
// Extracted first or the sides were extracted under different check
// domains; use Compare for the extract-if-needed path.
func Diff(a, b *Library) (*diff.Report, error) {
	for _, l := range []*Library{a, b} {
		if l.Policies == nil {
			return nil, fmt.Errorf("%w: %s", ErrNotExtracted, l.Name)
		}
	}
	if a.Policies.Domain != b.Policies.Domain {
		return nil, fmt.Errorf("%w: %s has %q, %s has %q", ErrDomainMismatch,
			a.Name, domainOr(a.Policies.Domain), b.Name, domainOr(b.Policies.Domain))
	}
	return diff.Compare(a.Policies, b.Policies), nil
}

// domainOr spells the default domain's canonical empty string as its
// registered ID for error messages.
func domainOr(id string) string {
	if id == "" {
		return secmodel.DefaultDomainID
	}
	return id
}

// Compare is the one-shot entry point: it extracts either library's
// policies under opts if they are missing, then differences them. A
// library that already has policies is never re-extracted, so mixing
// pre-extracted and fresh libraries works (at the caller's risk of
// having used different options).
func Compare(a, b *Library, opts Options) (*diff.Report, error) {
	for _, l := range []*Library{a, b} {
		if l.Policies == nil {
			if err := l.ExtractContext(context.Background(), opts); err != nil {
				return nil, fmt.Errorf("oracle: extracting %s: %w", l.Name, err)
			}
		}
	}
	return Diff(a, b)
}

// MatchingEntries counts entry-point signatures common to both libraries
// (Table 3's "Matching APIs").
func MatchingEntries(a, b *Library) int {
	n := 0
	bs := map[string]bool{}
	for _, m := range b.EntryPoints() {
		bs[m.Qualified()] = true
	}
	for _, m := range a.EntryPoints() {
		if bs[m.Qualified()] {
			n++
		}
	}
	return n
}
