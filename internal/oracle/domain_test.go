package oracle

import (
	"bytes"
	"errors"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// cryptoLibMJ is a tiny crypto-domain API: two entry points guarded by
// CryptoGuard checks in front of native cipher calls.
const cryptoLibMJ = `
package capi;
import java.lang.*;
import java.security.*;
public class Cipher {
  private CryptoGuard guard;
  public void encrypt(String iv) {
    guard.checkIvFresh(iv);
    encrypt0(iv);
  }
  public void setKey(int bits) {
    guard.checkKeySize(bits);
    setKey0(bits);
  }
  native void encrypt0(String iv);
  native void setKey0(int bits);
}
`

func cryptoTestSources() map[string]string {
	srcs := corpus.CryptoRuntimeSources()
	srcs["capi/cipher.mj"] = cryptoLibMJ
	return srcs
}

func cryptoTestOptions() Options {
	opts := DefaultOptions()
	opts.Domain = secmodel.CryptoAPI()
	return opts
}

// TestCrossDomainFingerprints pins that the domain ID participates in
// the bundle fingerprint: the same name and sources addressed under two
// domains must never collide (a store serving both would otherwise hand
// one domain's policies to the other), while the default domain spelled
// explicitly stays the same address as the empty spelling.
func TestCrossDomainFingerprints(t *testing.T) {
	srcs := cryptoTestSources()
	def := Fingerprint("lib", srcs, DefaultOptions())
	crypto := Fingerprint("lib", srcs, cryptoTestOptions())
	if def == crypto {
		t.Fatalf("default and crypto fingerprints collide: %s", def)
	}
	explicit := DefaultOptions()
	explicit.Domain = secmodel.SecurityManager()
	if got := Fingerprint("lib", srcs, explicit); got != def {
		t.Errorf("explicit default domain changes the fingerprint: %s vs %s", got, def)
	}
}

// TestDiffDomainMismatch diffs two policy sets extracted under
// different domains: the comparison must fail with the typed
// ErrDomainMismatch instead of silently comparing unrelated check
// tables.
func TestDiffDomainMismatch(t *testing.T) {
	srcs := cryptoTestSources()
	a := loadTestLib(t, "a", srcs)
	a.Extract(DefaultOptions())
	b := loadTestLib(t, "b", srcs)
	b.Extract(cryptoTestOptions())
	if _, err := Diff(a, b); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("Diff across domains: err = %v, want ErrDomainMismatch", err)
	}
	// Same domain on both sides diffs fine.
	c := loadTestLib(t, "c", srcs)
	c.Extract(cryptoTestOptions())
	if _, err := Diff(b, c); err != nil {
		t.Fatalf("same-domain diff: %v", err)
	}
}

// TestDomainRoundTrip exports a crypto-domain policy set and imports it
// back: the domain ID must survive the wire format and the re-export
// must be byte-identical.
func TestDomainRoundTrip(t *testing.T) {
	l := loadTestLib(t, "lib", cryptoTestSources())
	l.Extract(cryptoTestOptions())
	if got := l.Policies.Domain; got != secmodel.CryptoDomainID {
		t.Fatalf("extracted policy domain = %q, want %q", got, secmodel.CryptoDomainID)
	}
	blob, err := l.Policies.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := policy.ImportJSON(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Domain != secmodel.CryptoDomainID {
		t.Errorf("imported domain = %q, want %q", pp.Domain, secmodel.CryptoDomainID)
	}
	again, err := pp.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Error("crypto-domain export is not byte-stable across import")
	}
}

// TestSummaryCacheDomainIsolation shares one summary cache across
// extractions of the same sources under two domains: the second domain
// must see only misses (its extract key differs), while a same-domain
// re-extraction splices everything. The per-domain hit/miss counters
// attribute each lookup.
func TestSummaryCacheDomainIsolation(t *testing.T) {
	srcs := cryptoTestSources()
	cache := NewSummaryCache(0)
	tm := telemetry.NewExtractMetrics(telemetry.New())

	def := DefaultOptions()
	def.Summaries = cache
	def.Telemetry = tm
	loadTestLib(t, "x", srcs).Extract(def)

	crypto := cryptoTestOptions()
	crypto.Summaries = cache
	crypto.Telemetry = tm
	loadTestLib(t, "x", srcs).Extract(crypto)
	if n := tm.SummaryCacheHits.With(secmodel.CryptoDomainID).Value(); n != 0 {
		t.Errorf("crypto extraction spliced %v entries from the default domain's cache", n)
	}
	if n := tm.SummaryCacheMisses.With(secmodel.CryptoDomainID).Value(); n == 0 {
		t.Error("crypto extraction recorded no misses")
	}

	loadTestLib(t, "x", srcs).Extract(crypto)
	if n := tm.SummaryCacheHits.With(secmodel.CryptoDomainID).Value(); n == 0 {
		t.Error("warm same-domain extraction recorded no hits")
	}
}
