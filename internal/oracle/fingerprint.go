package oracle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"

	"policyoracle/internal/analysis"
	"policyoracle/internal/secmodel"
)

// This file defines the content addressing used by the polorad service
// and the `polora fingerprint` subcommand: a library bundle (name +
// sources + extraction options) hashes to a stable fingerprint, and the
// fingerprint addresses the persisted policy blob extracted from it.

// FingerprintPrefix tags the fingerprint scheme. Bump it together with
// fingerprintVersion when the canonical form changes, so stores never
// serve blobs extracted under an older scheme.
const FingerprintPrefix = "po1"

const fingerprintVersion = "polora/bundle/v1"

// Normalize resolves the defaulted Options fields to their effective
// values: a nil Domain becomes the registered default (SecurityManager)
// domain, Parallel <= 0 becomes the GOMAXPROCS worker count, and an
// empty Modes list becomes the explicit [May, Must] pair. Extract and
// Fingerprint both normalize first, so the options that drive extraction
// and the options that address its result never disagree.
func (o Options) Normalize() Options {
	if o.Domain == nil {
		o.Domain = secmodel.SecurityManager()
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if len(o.Modes) == 0 {
		o.Modes = []analysis.Mode{analysis.May, analysis.Must}
	}
	return o
}

// CanonicalOptions renders the semantic extraction options as a stable
// string, the options component of a bundle fingerprint.
//
// Only fields that can change the exported policy bytes participate:
// Domain, Events, ICP, AssumeSecurityManager, MaxDepth, and Modes. A
// non-default domain is rendered as a trailing " domain=<id>"; the
// default domain appends nothing, so every pre-domain fingerprint,
// option key, and snapshot option string is unchanged. Parallel,
// Memo, Telemetry, and Summaries are execution strategy — extraction is
// byte-identical across worker counts, memoization modes, and with or
// without instrumentation or summary caching — and CollectPaths/CollectGuards enrich
// display only (neither paths nor guards are part of the policy wire
// format), so including any of them would split the cache between
// identical blobs.
func CanonicalOptions(o Options) string {
	o = o.Normalize()
	modes := make([]string, len(o.Modes))
	for i, m := range o.Modes {
		modes[i] = m.String()
	}
	sort.Strings(modes)
	dedup := modes[:0]
	for i, m := range modes {
		if i == 0 || m != modes[i-1] {
			dedup = append(dedup, m)
		}
	}
	s := fmt.Sprintf("events=%s icp=%t assume-sm=%t max-depth=%d modes=%s",
		o.Events, o.ICP, o.AssumeSecurityManager, o.MaxDepth, strings.Join(dedup, ","))
	if o.Domain != secmodel.SecurityManager() {
		s += " domain=" + o.Domain.ID()
	}
	return s
}

// Fingerprint returns the content address of a library bundle: a
// SHA-256 over the library name, the canonical options, and every source
// file (sorted by name, length-prefixed so file boundaries are
// unambiguous). The name participates because the extracted policy blob
// embeds it and diff reports display it.
func Fingerprint(name string, sources map[string]string, opts Options) string {
	h := sha256.New()
	io.WriteString(h, fingerprintVersion+"\n")
	fmt.Fprintf(h, "library %d:%s\n", len(name), name)
	fmt.Fprintf(h, "options %s\n", CanonicalOptions(opts))
	files := make([]string, 0, len(sources))
	for f := range sources {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		src := sources[f]
		fmt.Fprintf(h, "file %d:%s %d\n", len(f), f, len(src))
		io.WriteString(h, src)
	}
	return FingerprintPrefix + "-" + hex.EncodeToString(h.Sum(nil))
}

// IsFingerprint reports whether s is a well-formed fingerprint of the
// current scheme. Stores validate addresses arriving over the wire with
// this before touching the filesystem.
func IsFingerprint(s string) bool {
	const want = len(FingerprintPrefix) + 1 + 2*sha256.Size
	if len(s) != want || !strings.HasPrefix(s, FingerprintPrefix+"-") {
		return false
	}
	for _, c := range s[len(FingerprintPrefix)+1:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
