package oracle

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"policyoracle/internal/callgraph"
	"policyoracle/internal/ir"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// This file implements the method-level content hashing behind
// incremental extraction. Each method hashes to a digest of everything
// the ISPA analysis can observe about it: its signature and modifiers,
// its IR body block by block, and — crucially — the post-resolution
// facts of every call and field access (check identity, doPrivileged
// run() binding, resolved target with its native/has-body status, field
// identity and privacy). Hashing after call-graph resolution means an
// edit anywhere that changes what a call site binds to (a new override,
// a hierarchy change, a field made private) changes the hash of every
// method containing such a site, so dependents are invalidated without
// tracking the class hierarchy separately. Source positions are
// excluded: they feed display-only data (guard positions), never the
// policy wire format.

// MethodHashes returns the IR-level content hash of every method in the
// program under check domain d, keyed by qualified signature. The hashes
// are domain-dependent: check identity, guard-state reads, doPrivileged
// bindings, and privileged-scope modifiers are all resolved against d's
// tables, so the same program hashes differently under different
// domains — exactly the property that keeps incremental reuse and
// summary-cache splicing from crossing domains. When two methods collide
// on signature (overloads whose parameter types share a simple name),
// their hashes are combined so a change to either invalidates dependents
// — matching how the analysis dependency sets conflate them.
func MethodHashes(prog *ir.Program, res *callgraph.Resolver, d *secmodel.Domain) map[string]string {
	methods := prog.Types.AllMethods()
	out := make(map[string]string, len(methods))
	for _, m := range methods {
		sig := m.Qualified()
		h := methodHash(prog, res, d, m)
		if prior, ok := out[sig]; ok {
			h = combineHashes(prior, h)
		}
		out[sig] = h
	}
	return out
}

func methodHash(prog *ir.Program, res *callgraph.Resolver, d *secmodel.Domain, m *types.Method) string {
	h := sha256.New()
	fmt.Fprintf(h, "method %s\n", m.Qualified())
	fmt.Fprintf(h, "mods native=%t abstract=%t static=%t entry=%t priv-scope=%t params=%d\n",
		m.IsNative(), m.IsAbstract(), m.IsStatic(), m.IsEntryPoint(),
		d.IsPrivilegedScope(m), len(m.Params))
	f := prog.FuncOf(m)
	if f == nil {
		io.WriteString(h, "nobody\n")
		return hex.EncodeToString(h.Sum(nil))
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(h, "b%d:", b.Index)
		for _, s := range b.Succs {
			fmt.Fprintf(h, " b%d", s.Index)
		}
		io.WriteString(h, "\n")
		for _, instr := range b.Instrs {
			fmt.Fprintf(h, "  %s%s\n", instr.String(), instrFacts(prog, res, d, instr))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func combineHashes(a, b string) string {
	h := sha256.New()
	fmt.Fprintf(h, "overloads %s %s", a, b)
	return hex.EncodeToString(h.Sum(nil))
}

// instrFacts renders the resolution facts of one instruction — the part
// of its analysis-visible behavior that its String() form (names only)
// does not pin down.
func instrFacts(prog *ir.Program, res *callgraph.Resolver, d *secmodel.Domain, instr ir.Instr) string {
	switch in := instr.(type) {
	case *ir.Call:
		var b strings.Builder
		if in.Declared != nil {
			fmt.Fprintf(&b, " [decl=%s]", in.Declared.Qualified())
		}
		if id, ok := d.IdentifyCheck(in); ok {
			fmt.Fprintf(&b, " [check=%d]", id)
		}
		if d.IsGetSecurityManager(in) {
			b.WriteString(" [gsm]")
		}
		if d.IsDoPrivileged(in) {
			writeRunFact(&b, prog, res, in)
		}
		if target := res.ResolveQuiet(in); target == nil {
			b.WriteString(" [target=?]")
		} else {
			fmt.Fprintf(&b, " [target=%s native=%t body=%t]",
				target.Qualified(), target.IsNative(), prog.FuncOf(target) != nil)
		}
		return b.String()
	case *ir.FieldLoad:
		return fieldFact(in.Field)
	case *ir.FieldStore:
		return fieldFact(in.Field)
	}
	return ""
}

// writeRunFact records which run() implementation a doPrivileged call
// binds to (mirroring Analyzer.resolveRun), so changing an action class
// invalidates every method that enters it via doPrivileged.
func writeRunFact(b *strings.Builder, prog *ir.Program, res *callgraph.Resolver, c *ir.Call) {
	if len(c.Args) > 0 {
		if l, ok := c.Args[0].(*ir.Local); ok && l.Type.Class != nil {
			if run := res.ResolveOn(l.Type.Class, "run", 0); run != nil {
				fmt.Fprintf(b, " [dopriv run=%s native=%t body=%t]",
					run.Qualified(), run.IsNative(), prog.FuncOf(run) != nil)
				return
			}
		}
	}
	b.WriteString(" [dopriv run=?]")
}

func fieldFact(f *types.Field) string {
	if f == nil {
		return " [field=?]"
	}
	return fmt.Sprintf(" [field=%s private=%t]", f.Qualified(), f.IsPrivate())
}
