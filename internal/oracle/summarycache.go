package oracle

import (
	"sync"

	"policyoracle/internal/policy"
)

// SummaryCache is a process-wide, cross-library cache of per-entry
// extraction results. It generalizes the incremental-extraction argument
// (see reusableEntry) from "previous version of this library" to "any
// library extracted in this process": an entry-point policy depends only
// on the extraction options and the IR of the methods its analysis
// visited, so when a target library presents an entry whose entire
// dependency cone hashes identically to a cached extraction, the cached
// policy is byte-identical to what a fresh analysis would produce and can
// be spliced in without running the analyzer.
//
// Forks and vendored copies of one API implementation share most method
// bodies verbatim, which is exactly the situation the paper's
// multi-implementation oracle creates: every library of a comparison is
// loaded into one process and extracted under one option set.
//
// A SummaryCache is safe for concurrent use and is opt-in: a nil
// *SummaryCache disables caching (DefaultOptions leaves it nil).
type SummaryCache struct {
	mu      sync.RWMutex
	entries map[cacheKey]*cachedEntry
	cap     int
	hits    uint64
	misses  uint64
}

// cacheKey identifies one cached entry extraction: the canonical option
// key (same notion as Library.ExtractedOpts) and the entry signature.
type cacheKey struct {
	opts string
	sig  string
}

// depPin records the IR content hash one dependency had when the entry
// was analyzed. A cached entry is valid for a target library iff every
// pin matches the target's own method hashes.
type depPin struct {
	sig  string
	hash string
}

// cachedEntry is one cached per-entry result. The EntryPolicy is shared
// by every library the entry is spliced into and must never be mutated —
// the same immutability contract incremental extraction relies on when
// splicing policies across library versions.
type cachedEntry struct {
	pins []depPin
	deps []string
	ep   *policy.EntryPolicy
}

// DefaultSummaryCacheCap bounds the number of cached entries. The bound
// exists to keep long-running daemons from growing without limit;
// typical comparisons hold a few thousand entries.
const DefaultSummaryCacheCap = 16384

// NewSummaryCache returns an empty cache. maxEntries <= 0 uses
// DefaultSummaryCacheCap.
func NewSummaryCache(maxEntries int) *SummaryCache {
	if maxEntries <= 0 {
		maxEntries = DefaultSummaryCacheCap
	}
	return &SummaryCache{
		entries: make(map[cacheKey]*cachedEntry),
		cap:     maxEntries,
	}
}

// lookup returns the cached policy and dependency list for (optsKey, sig)
// when every dependency pin matches hashes, the target library's own
// method-hash table.
func (c *SummaryCache) lookup(optsKey, sig string, hashes map[string]string) (*policy.EntryPolicy, []string, bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.RLock()
	e := c.entries[cacheKey{opts: optsKey, sig: sig}]
	c.mu.RUnlock()
	if e != nil {
		valid := true
		for _, p := range e.pins {
			if h, ok := hashes[p.sig]; !ok || h != p.hash {
				valid = false
				break
			}
		}
		if valid {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return e.ep, e.deps, true
		}
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, nil, false
}

// insert stores one extracted entry, pinning the hash of every
// dependency. When the cache is full it is flushed wholesale: entries
// invalidate together (a new library version changes many hashes at
// once), so coarse eviction keeps the bookkeeping off the extraction
// path.
func (c *SummaryCache) insert(optsKey, sig string, deps []string, hashes map[string]string, ep *policy.EntryPolicy) {
	if c == nil {
		return
	}
	pins := make([]depPin, 0, len(deps))
	for _, d := range deps {
		h, ok := hashes[d]
		if !ok {
			// A dependency without a hash (should not happen) can never
			// be validated; don't cache rather than risk unsound reuse.
			return
		}
		pins = append(pins, depPin{sig: d, hash: h})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) >= c.cap {
		c.entries = make(map[cacheKey]*cachedEntry)
	}
	c.entries[cacheKey{opts: optsKey, sig: sig}] = &cachedEntry{pins: pins, deps: deps, ep: ep}
}

// Len returns the number of cached entries.
func (c *SummaryCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the cumulative hit and miss counts.
func (c *SummaryCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}
