package oracle

import (
	"bytes"
	"strings"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// TestSummaryCacheByteIdentity proves the cache cannot perturb output:
// cold (populating) and warm (fully spliced) extractions produce bytes
// identical to an uncached extraction.
func TestSummaryCacheByteIdentity(t *testing.T) {
	srcs := corpus.JDKSources()
	opts := DefaultOptions()

	plain := loadTestLib(t, "jdk", srcs)
	plain.Extract(opts)
	want := exportBytes(t, plain)

	cache := NewSummaryCache(0)
	opts.Summaries = cache

	cold := loadTestLib(t, "jdk", srcs)
	cold.Extract(opts)
	if got := exportBytes(t, cold); !bytes.Equal(got, want) {
		t.Error("cold cached extraction differs from uncached")
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses == 0 {
		t.Errorf("cold stats: hits=%d misses=%d", hits, misses)
	}
	if cache.Len() == 0 {
		t.Error("cold extraction populated nothing")
	}

	warm := loadTestLib(t, "jdk", srcs)
	warm.Extract(opts)
	if got := exportBytes(t, warm); !bytes.Equal(got, want) {
		t.Error("warm cached extraction differs from uncached")
	}
	if hits, _ = cache.Stats(); hits != uint64(len(plain.Policies.Entries)) {
		t.Errorf("warm extraction hit %d of %d entries", hits, len(plain.Policies.Entries))
	}
	if warm.EntryDeps == nil || len(warm.EntryDeps) != len(plain.EntryDeps) {
		t.Errorf("warm EntryDeps size = %d, want %d", len(warm.EntryDeps), len(plain.EntryDeps))
	}
}

// TestSummaryCacheCrossLibrary extracts two different implementations of
// the same API through one cache: the second library's output must be
// byte-identical to its uncached extraction (a stale splice would show up
// here, since many signatures coincide while bodies differ).
func TestSummaryCacheCrossLibrary(t *testing.T) {
	opts := DefaultOptions()

	harmonyPlain := loadTestLib(t, "harmony", corpus.HarmonySources())
	harmonyPlain.Extract(opts)
	want := exportBytes(t, harmonyPlain)

	cache := NewSummaryCache(0)
	opts.Summaries = cache
	jdk := loadTestLib(t, "jdk", corpus.JDKSources())
	jdk.Extract(opts)

	harmony := loadTestLib(t, "harmony", corpus.HarmonySources())
	harmony.Extract(opts)
	if got := exportBytes(t, harmony); !bytes.Equal(got, want) {
		t.Error("cross-library cached extraction differs from uncached")
	}
}

// TestSummaryCacheInvalidation changes one dependency body between two
// same-signature libraries: the changed entry must be re-analyzed, not
// spliced.
func TestSummaryCacheInvalidation(t *testing.T) {
	libB := strings.Replace(libMJ, "sm.checkWrite(key);", "sm.checkRead(key);", 1)
	if libB == libMJ {
		t.Fatal("source rewrite failed")
	}
	opts := DefaultOptions()
	cache := NewSummaryCache(0)
	opts.Summaries = cache

	a := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	a.Extract(opts)

	b := loadTestLib(t, "b", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libB})
	b.Extract(opts)

	plainOpts := DefaultOptions()
	plainB := loadTestLib(t, "b", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libB})
	plainB.Extract(plainOpts)
	if !bytes.Equal(exportBytes(t, b), exportBytes(t, plainB)) {
		t.Error("cached extraction of changed library differs from uncached")
	}
}

// TestSummaryCacheTelemetry checks the hit/miss counters reach the
// Prometheus exposition.
func TestSummaryCacheTelemetry(t *testing.T) {
	reg := telemetry.New()
	opts := DefaultOptions()
	opts.Telemetry = telemetry.NewExtractMetrics(reg)
	opts.Summaries = NewSummaryCache(0)

	for i := 0; i < 2; i++ {
		l := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
		l.Extract(opts)
	}
	text := reg.Text()
	if !strings.Contains(text, "polora_summary_cache_hit_total") ||
		!strings.Contains(text, "polora_summary_cache_miss_total") {
		t.Fatalf("summary-cache counters missing from exposition:\n%s", text)
	}
	if opts.Telemetry.SummaryCacheHits.With(secmodel.DefaultDomainID).Value() == 0 {
		t.Error("warm extraction recorded no hits")
	}
	if opts.Telemetry.SummaryCacheMisses.With(secmodel.DefaultDomainID).Value() == 0 {
		t.Error("cold extraction recorded no misses")
	}
}

// TestSummaryCacheEviction fills a tiny cache past its cap and checks it
// flushes rather than grows.
func TestSummaryCacheEviction(t *testing.T) {
	opts := DefaultOptions()
	cache := NewSummaryCache(2)
	opts.Summaries = cache
	l := loadTestLib(t, "a", map[string]string{"rt.mj": runtimeMJ, "lib.mj": libMJ})
	l.Extract(opts)
	if n := cache.Len(); n > 2+1 {
		t.Errorf("cache grew past cap: %d entries", n)
	}
}
