package oracle

import (
	"context"
	"errors"
	"fmt"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
	"policyoracle/internal/types"
)

// This file implements incremental extraction: given a previous
// extraction (policies + per-entry dependency sets + method hashes, see
// Library), a changed source bundle is re-analyzed only for the entry
// points whose dependency set intersects the changed methods; every
// other entry's policy is spliced from the previous extraction
// unchanged. Because per-entry analysis is deterministic and the policy
// wire format is a byte fixed point under export/import, the spliced
// result is byte-identical to a from-scratch Extract of the new sources
// — asserted by the oracle tests and the metamorph incremental
// invariant.

// ErrNoPrevious reports an incremental extraction whose previous library
// carries no extracted policies to splice from.
var ErrNoPrevious = errors.New("oracle: previous library has no extracted policies to seed an incremental extraction")

// IncrementalStats describes how much work one incremental extraction
// reused versus redid.
type IncrementalStats struct {
	// Entries is the number of API entry points in the new program;
	// Reused of them were spliced from the previous extraction and
	// Reanalyzed were run through the full MAY/MUST analyses.
	Entries    int
	Reused     int
	Reanalyzed int
	// HashedMethods is the number of methods content-hashed in the new
	// program; ChangedMethods of them are new or hash differently from
	// the previous extraction.
	HashedMethods  int
	ChangedMethods int
	// Full marks a fallback to a from-scratch extraction: the previous
	// extraction used different options or carries no incremental state.
	Full bool
}

// ExtractIncremental reloads sources and extracts policies for them,
// reusing prev's per-entry policies wherever prev's dependency sets and
// method hashes prove the analysis inputs are unchanged. The returned
// library's policies are byte-identical (in the wire format, and in
// diff -json reports) to a from-scratch Extract of the same sources
// under the same options.
//
// prev must have been extracted under the same options (including the
// CollectPaths/CollectGuards display flags, which shape in-memory
// policies); otherwise the call transparently falls back to a full
// extraction, reported via IncrementalStats.Full.
func ExtractIncremental(prev *Library, sources map[string]string, opts Options) (*Library, *IncrementalStats, error) {
	return ExtractIncrementalContext(context.Background(), prev, sources, opts)
}

// ExtractIncrementalContext is ExtractIncremental with cancellation,
// observed between entry-point analyses exactly like ExtractContext.
func ExtractIncrementalContext(ctx context.Context, prev *Library, sources map[string]string, opts Options) (*Library, *IncrementalStats, error) {
	if prev == nil || prev.Policies == nil {
		return nil, nil, ErrNoPrevious
	}
	opts = opts.Normalize()
	lib, err := LoadLibrary(prev.Name, sources)
	if err != nil {
		return nil, nil, err
	}
	st := &IncrementalStats{}
	hashes := lib.methodHashes(opts.Domain)
	st.HashedMethods = len(hashes)

	if prev.ExtractedOpts != extractKey(opts) || len(prev.MethodHashes) == 0 || len(prev.EntryDeps) == 0 {
		// The previous extraction cannot prove anything about this one;
		// rebuild from scratch rather than guess.
		st.Full = true
		if err := lib.ExtractContext(ctx, opts); err != nil {
			return nil, nil, err
		}
		st.Entries = len(lib.Policies.Entries)
		st.Reanalyzed = st.Entries
		st.ChangedMethods = countChanged(prev.MethodHashes, hashes)
		observeIncremental(opts.Telemetry, st, lib.EntryDeps)
		return lib, st, nil
	}
	st.ChangedMethods = countChanged(prev.MethodHashes, hashes)

	if tm := opts.Telemetry; tm != nil {
		tm.Extractions.With(opts.Domain.ID()).Inc()
	}
	entries := lib.EntryPoints()
	st.Entries = len(entries)
	pp := policy.NewProgramPolicies(lib.Name)
	if opts.Domain != secmodel.SecurityManager() {
		pp.Domain = opts.Domain.ID()
	}
	deps := make(map[string][]string, len(entries))
	var fresh []*types.Method
	for _, m := range entries {
		sig := m.Qualified()
		if prevEP := prev.Policies.Entries[sig]; prevEP != nil && reusableEntry(prev, hashes, sig) {
			pp.Entries[sig] = prevEP
			deps[sig] = prev.EntryDeps[sig]
			st.Reused++
			continue
		}
		fresh = append(fresh, m)
	}
	st.Reanalyzed = len(fresh)
	if len(fresh) > 0 {
		fdeps, err := lib.extractEntries(ctx, opts, fresh, pp)
		if err != nil {
			return nil, nil, err
		}
		for sig, d := range fdeps {
			deps[sig] = d
		}
	}
	lib.Policies = pp
	lib.EntryDeps = deps
	lib.MethodHashes = hashes
	lib.ExtractedOpts = extractKey(opts)
	observeIncremental(opts.Telemetry, st, deps)
	return lib, st, nil
}

// reusableEntry reports whether sig's previous policy can be spliced:
// every method in its previous dependency set must exist in the new
// program with an identical hash. A method that disappeared, changed, or
// was never recorded forces re-analysis.
func reusableEntry(prev *Library, hashes map[string]string, sig string) bool {
	ds := prev.EntryDeps[sig]
	if len(ds) == 0 {
		return false
	}
	for _, d := range ds {
		ph, okPrev := prev.MethodHashes[d]
		nh, okNew := hashes[d]
		if !okPrev || !okNew || ph != nh {
			return false
		}
	}
	return true
}

func countChanged(prev, cur map[string]string) int {
	n := 0
	for sig, h := range cur {
		if ph, ok := prev[sig]; !ok || ph != h {
			n++
		}
	}
	return n
}

// extractKey is the option key an incremental extraction must match to
// splice from a previous one: the canonical semantic options plus the
// display-collection flags. CollectPaths/CollectGuards do not affect the
// wire format, but spliced EntryPolicy values are shared in memory, so
// mixing flags would hand callers policies whose display data is
// inconsistent across entries.
func extractKey(o Options) string {
	return fmt.Sprintf("%s paths=%t guards=%t", CanonicalOptions(o), o.CollectPaths, o.CollectGuards)
}

func observeIncremental(tm *telemetry.ExtractMetrics, st *IncrementalStats, deps map[string][]string) {
	if tm == nil {
		return
	}
	tm.IncrementalReused.Add(float64(st.Reused))
	tm.IncrementalReanalyzed.Add(float64(st.Reanalyzed))
	tm.IncrementalHashed.Add(float64(st.HashedMethods))
	for _, d := range deps {
		tm.DepSetSize.Observe(float64(len(d)))
	}
}
