// Package bitset provides a dense []uint64 bit set used by the analysis
// hot path for dependency tracking and other id-indexed sets. Elements
// are small non-negative integers (method ids, check ids, event ids);
// all set operations run in O(words), not O(elements).
//
// The zero value is an empty set. Sets grow on Add/UnionWith; they never
// shrink, so a pooled set can be Reset and reused without reallocation.
package bitset

import "math/bits"

const wordBits = 64

// Set is a bit set over small non-negative integers.
type Set []uint64

// New returns a set with capacity for elements in [0, n).
func New(n int) Set {
	if n <= 0 {
		return nil
	}
	return make(Set, (n+wordBits-1)/wordBits)
}

// Add inserts i into the set, growing it if needed. i must be >= 0.
func (s *Set) Add(i int) {
	w := i / wordBits
	if w >= len(*s) {
		grown := make(Set, w+1)
		copy(grown, *s)
		*s = grown
	}
	(*s)[w] |= 1 << uint(i%wordBits)
}

// Has reports whether i is in the set.
func (s Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s) && s[w]&(1<<uint(i%wordBits)) != 0
}

// Remove deletes i from the set if present.
func (s Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s) {
		s[w] &^= 1 << uint(i%wordBits)
	}
}

// UnionWith adds every element of t to s, growing s if needed.
func (s *Set) UnionWith(t Set) {
	if len(t) > len(*s) {
		grown := make(Set, len(t))
		copy(grown, *s)
		*s = grown
	}
	for w, word := range t {
		(*s)[w] |= word
	}
}

// IntersectWith removes from s every element not in t.
func (s Set) IntersectWith(t Set) {
	for w := range s {
		if w < len(t) {
			s[w] &= t[w]
		} else {
			s[w] = 0
		}
	}
}

// Len returns the number of elements in the set.
func (s Set) Len() int {
	n := 0
	for _, word := range s {
		n += bits.OnesCount64(word)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, word := range s {
		if word != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements, ignoring
// trailing zero words.
func (s Set) Equal(t Set) bool {
	long, short := s, t
	if len(long) < len(short) {
		long, short = short, long
	}
	for w, word := range short {
		if long[w] != word {
			return false
		}
	}
	for _, word := range long[len(short):] {
		if word != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if len(s) == 0 {
		return nil
	}
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Reset clears the set in place, keeping its capacity.
func (s Set) Reset() {
	for w := range s {
		s[w] = 0
	}
}

// ForEach calls f for each element in ascending order.
func (s Set) ForEach(f func(i int)) {
	for w, word := range s {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w*wordBits + b)
			word &= word - 1
		}
	}
}

// AppendTo appends the elements in ascending order to dst.
func (s Set) AppendTo(dst []int) []int {
	s.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}
