package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mapSet is the reference model: the obviously-correct map-based set the
// bitset must agree with under every operation sequence.
type mapSet map[int]bool

func (m mapSet) union(o mapSet) mapSet {
	out := mapSet{}
	for k := range m {
		out[k] = true
	}
	for k := range o {
		out[k] = true
	}
	return out
}

func (m mapSet) intersect(o mapSet) mapSet {
	out := mapSet{}
	for k := range m {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func fromElems(elems []uint16) (Set, mapSet) {
	var s Set
	m := mapSet{}
	for _, e := range elems {
		i := int(e % 512)
		s.Add(i)
		m[i] = true
	}
	return s, m
}

func agree(s Set, m mapSet) bool {
	if s.Len() != len(m) {
		return false
	}
	ok := true
	s.ForEach(func(i int) {
		if !m[i] {
			ok = false
		}
	})
	for k := range m {
		if !s.Has(k) {
			ok = false
		}
	}
	return ok
}

func TestPropertyUnion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		s, ms := fromElems(xs)
		o, mo := fromElems(ys)
		s.UnionWith(o)
		return agree(s, ms.union(mo)) && agree(o, mo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersect(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		s, ms := fromElems(xs)
		o, mo := fromElems(ys)
		s.IntersectWith(o)
		return agree(s, ms.intersect(mo)) && agree(o, mo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyContains(t *testing.T) {
	f := func(xs []uint16, probe uint16) bool {
		s, m := fromElems(xs)
		return s.Has(int(probe%1024)) == m[int(probe%1024)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyRemoveCloneEqual(t *testing.T) {
	f := func(xs []uint16, kill []uint16) bool {
		s, m := fromElems(xs)
		c := s.Clone()
		if !s.Equal(c) {
			return false
		}
		for _, k := range kill {
			i := int(k % 512)
			s.Remove(i)
			delete(m, i)
		}
		return agree(s, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEqualIgnoresTrailingZeros: a set that grew and was emptied again
// must equal a never-grown empty set.
func TestEqualIgnoresTrailingZeros(t *testing.T) {
	var a, b Set
	a.Add(300)
	a.Remove(300)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("empty sets with different capacity compare unequal")
	}
	b.Add(3)
	a.Add(3)
	if !a.Equal(b) {
		t.Error("equal sets with different capacity compare unequal")
	}
}

func TestForEachAscending(t *testing.T) {
	var s Set
	want := []int{0, 1, 63, 64, 65, 200, 511}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

// FuzzSetOps drives a random operation sequence over one bitset and the
// map reference, checking full agreement after every step.
func FuzzSetOps(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(42), []byte{255, 254, 7, 7, 7})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		m := mapSet{}
		var other Set
		mo := mapSet{}
		for _, op := range ops {
			i := rng.Intn(512)
			switch op % 6 {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				other.Add(i)
				mo[i] = true
			case 3:
				s.UnionWith(other)
				m = m.union(mo)
			case 4:
				s.IntersectWith(other)
				m = m.intersect(mo)
			case 5:
				s.Reset()
				m = mapSet{}
			}
			if !agree(s, m) {
				t.Fatalf("divergence after op %d (i=%d): bitset=%v ref=%v", op%6, i, s.AppendTo(nil), m)
			}
			if s.Empty() != (len(m) == 0) {
				t.Fatalf("Empty() = %v with %d reference elements", s.Empty(), len(m))
			}
		}
	})
}
