package reconcile

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

const runtimeMJ = `
package java.lang;
public class Object { }
public class String { }
public class SecurityManager {
  public void checkRead(String file) { }
  public void checkWrite(String file) { }
}
`

const libMJ = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    sm.checkWrite(key);
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

// libMJv2 drops the write check, the seeded deviation every test drifts
// toward or away from.
const libMJv2 = `
package api;
import java.lang.*;
public class Store {
  private SecurityManager sm;
  public void put(String key) {
    write0(key);
  }
  public String get(String key) {
    sm.checkRead(key);
    return read0(key);
  }
  native void write0(String key);
  native String read0(String key);
}
`

func sourcesOf(lib string) map[string]string {
	return map[string]string{"rt.mj": runtimeMJ, "lib.mj": lib}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(store.Config{Dir: dir, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newController(t *testing.T, s *store.Store, path string, reg *telemetry.Registry, threshold int) *Controller {
	t.Helper()
	c, err := New(Config{
		Store: s, Path: path, AlertThreshold: threshold,
		Verify: true, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The core drift story: a deviation appears (alert fires), the reconciled
// diff is byte-identical to a cold Compare (Verify is on throughout), a
// restart resumes without duplicating history, and fixing the deviation
// clears the alert.
func TestReconcileObservesDriftResumesAndClears(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	ctx := context.Background()
	path := filepath.Join(dir, "drift.json")

	if _, err := s.Update(ctx, "ref", sourcesOf(libMJ), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(ctx, "impl", sourcesOf(libMJv2), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}

	c := newController(t, s, path, telemetry.New(), 1)
	if err := c.RunOnce(ctx); err != nil {
		t.Fatalf("first cycle: %v", err)
	}
	wire := c.Timeline(0)
	if len(wire.Entries) != 1 {
		t.Fatalf("timeline after first cycle = %d entries, want 1", len(wire.Entries))
	}
	e := wire.Entries[0]
	if e.Pair != PairKey("ref", "impl") || e.Seq != 1 {
		t.Errorf("entry = %+v", e)
	}
	if e.Deviations == 0 || len(e.New) != e.Deviations || len(e.Resolved) != 0 {
		t.Errorf("first observation delta: %+v", e)
	}
	if e.Alert != "fired" {
		t.Errorf("alert = %q, want fired", e.Alert)
	}

	// The pair status serves the report whose digest the timeline recorded.
	st, err := c.Pair(ctx, e.Pair)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(st.Report)
	if hex.EncodeToString(sum[:]) != e.DiffSHA256 {
		t.Errorf("served report digest does not match timeline provenance")
	}
	if !st.AlertFiring || st.Deviations != e.Deviations {
		t.Errorf("pair status = %+v", st)
	}

	// Idempotence: nothing moved, nothing appended.
	if err := c.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Timeline(0).Entries); got != 1 {
		t.Fatalf("idle cycle appended: %d entries", got)
	}

	// Restart: a fresh controller over the same drift store resumes from
	// the persisted fingerprints — no duplicate observation, and the
	// recomputed report still matches the recorded digest.
	c2 := newController(t, s, path, telemetry.New(), 1)
	if err := c2.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(c2.Timeline(0).Entries); got != 1 {
		t.Fatalf("restart duplicated history: %d entries", got)
	}
	st2, err := c2.Pair(ctx, e.Pair)
	if err != nil {
		t.Fatalf("recomputing report after restart: %v", err)
	}
	if string(st2.Report) != string(st.Report) {
		t.Error("report differs across restart")
	}

	// The deviation is fixed upstream: the next cycle records the
	// resolution and clears the alert.
	if _, err := s.Update(ctx, "impl", sourcesOf(libMJ), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	c2.Enqueue("impl")
	if err := c2.RunOnce(ctx); err != nil {
		t.Fatal(err)
	}
	wire = c2.Timeline(0)
	if len(wire.Entries) != 2 {
		t.Fatalf("timeline after fix = %d entries, want 2", len(wire.Entries))
	}
	e2 := wire.Entries[1]
	if e2.Seq != 2 || e2.Deviations != 0 {
		t.Errorf("post-fix entry: %+v", e2)
	}
	if len(e2.Resolved) != e.Deviations || len(e2.New) != 0 {
		t.Errorf("post-fix delta: new=%v resolved=%v", e2.New, e2.Resolved)
	}
	if e2.Alert != "cleared" {
		t.Errorf("alert = %q, want cleared", e2.Alert)
	}
	st3, err := c2.Pair(ctx, e.Pair)
	if err != nil {
		t.Fatal(err)
	}
	if st3.AlertFiring {
		t.Error("alert still firing after clear")
	}
}

// A registry entry whose blobs vanish mid-reconcile (deleted between the
// plan and apply of a cycle, or by external cleanup) fails only its own
// pairs: every other pair still reconciles, the failure is counted, and
// re-uploading the library heals on the next cycle.
func TestReconcileEntryDeletedMidReconcile(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	ctx := context.Background()
	reg := telemetry.New()

	if _, err := s.Update(ctx, "liba", sourcesOf(libMJ), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(ctx, "libb", sourcesOf(libMJv2), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	// libc is registered via Put (lazy extraction), then its blobs are
	// deleted out from under the controller.
	fpC, _, err := s.Put("libc", sourcesOf("// variant\n"+libMJ), store.OptionsWire{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"bundles", "policies", "deps"} {
		matches, _ := filepath.Glob(filepath.Join(dir, sub, fpC+"*"))
		for _, m := range matches {
			os.Remove(m)
		}
	}

	c := newController(t, s, filepath.Join(dir, "drift.json"), reg, 0)
	err = c.RunOnce(ctx)
	if err == nil {
		t.Fatal("cycle with deleted entry succeeded, want pair errors")
	}
	// liba~libb is unaffected by libc's disappearance.
	if st, perr := c.Pair(ctx, PairKey("liba", "libb")); perr != nil || st.Deviations == 0 {
		t.Errorf("healthy pair not observed: %+v, %v", st, perr)
	}
	if _, perr := c.Pair(ctx, PairKey("liba", "libc")); perr == nil {
		t.Error("deleted pair has an observation")
	}
	if txt := reg.Text(); !strings.Contains(txt, "polora_reconcile_errors_total 2") {
		t.Errorf("errors counter:\n%s", grepLine(txt, "polora_reconcile_errors_total"))
	}

	// Healing: the library is uploaded again; the next cycle observes the
	// previously failing pairs.
	if _, err := s.Update(ctx, "libc", sourcesOf("// variant\n"+libMJ), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	if err := c.RunOnce(ctx); err != nil {
		t.Fatalf("cycle after re-upload: %v", err)
	}
	for _, pair := range []string{PairKey("liba", "libc"), PairKey("libb", "libc")} {
		if _, perr := c.Pair(ctx, pair); perr != nil {
			t.Errorf("pair %s after heal: %v", pair, perr)
		}
	}
}

// Enqueue coalesces per library and never blocks: a storm of uploads to
// one name costs one pending slot, surplus names beyond the queue cap
// degrade to a plain wakeup, and the requeue counter records both.
func TestEnqueueCoalescesAndBounds(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	reg := telemetry.New()
	c, err := New(Config{
		Store: s, Path: filepath.Join(dir, "drift.json"),
		QueueCap: 2, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Enqueue("liba")
	c.Enqueue("liba") // coalesced
	c.Enqueue("libb")
	c.Enqueue("libc") // over cap: wakeup only
	txt := reg.Text()
	if !strings.Contains(txt, "polora_reconcile_requeues_total 2") {
		t.Errorf("requeues:\n%s", grepLine(txt, "polora_reconcile_requeues_total"))
	}
	if !strings.Contains(txt, "polora_reconcile_pending_libraries 2") {
		t.Errorf("pending:\n%s", grepLine(txt, "polora_reconcile_pending_libraries"))
	}
	// The cycle drains the set regardless of how it was filled.
	if err := c.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(reg.Text(), "polora_reconcile_pending_libraries 0") {
		t.Errorf("pending after drain:\n%s", grepLine(reg.Text(), "polora_reconcile_pending_libraries"))
	}
}

// Run cycles on wakeups and stops with its context.
func TestRunWakesOnEnqueueAndStops(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if _, err := s.Update(ctx, "ref", sourcesOf(libMJ), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Store: s, Path: filepath.Join(dir, "drift.json"),
		Interval: time.Hour, // wakeups, not ticks, must drive this test
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	if _, err := s.Update(ctx, "impl", sourcesOf(libMJv2), store.OptionsWire{}); err != nil {
		t.Fatal(err)
	}
	c.Enqueue("impl")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if len(c.Timeline(0).Entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("enqueued update never reconciled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on cancel")
	}
}

// Unknown pairs are a typed error so the server can map them to 404.
func TestPairUnknown(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Store: openStore(t, dir), Path: filepath.Join(dir, "drift.json")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pair(context.Background(), "a~b"); err != ErrUnknownPair {
		t.Errorf("err = %v, want ErrUnknownPair", err)
	}
}

func grepLine(txt, needle string) string {
	for _, l := range strings.Split(txt, "\n") {
		if strings.Contains(l, needle) {
			return l
		}
	}
	return fmt.Sprintf("(no %s line)", needle)
}
