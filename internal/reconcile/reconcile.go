// Package reconcile is polorad's continuous-watch controller: the loop
// that turns the on-demand policy oracle into an always-on security-
// regression monitor. It follows the source→plan→apply reconcile shape:
//
//	source  the store's library registry (name → latest fingerprint),
//	        re-read every cycle so the loop is level-triggered — a missed
//	        wakeup is repaired by the next interval tick, never lost
//	plan    every registered library pair whose current fingerprint pair
//	        differs from the pair's latest drift-timeline entry
//	apply   diff the pair through the store (which serves the blobs the
//	        incremental update path produced), compute the deviation
//	        delta keyed by stable root keys, and append one entry to the
//	        persistent drift timeline
//
// The controller is crash-safe — the timeline is persisted via atomic
// rename before an observation becomes visible, and on restart the plan
// step resumes from the last persisted fingerprints, so a kill between
// cycles duplicates nothing and loses nothing — and backpressure-aware:
// uploads coalesce per library into a pending set and the cycle drains
// every stale pair, so a hot library cannot starve other pairs.
package reconcile

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// Config configures a Controller.
type Config struct {
	// Store is the policy store whose registry is watched. Required.
	Store *store.Store
	// Path is the drift-timeline file (created on first append).
	// Required.
	Path string
	// Interval is the full-rescan period; every upload additionally wakes
	// the loop immediately. Default 30s.
	Interval time.Duration
	// AlertThreshold fires a pair's drift alert when its distinct
	// deviation count reaches the threshold, and clears it when the count
	// drops back below. 0 disables alerting.
	AlertThreshold int
	// QueueCap bounds the pending-library set fed by Enqueue (default
	// 64). Beyond the cap an enqueue only wakes the loop — correct either
	// way, because the plan step rescans the whole registry.
	QueueCap int
	// Verify re-extracts both sides from scratch on every apply and
	// fails the pair if the reconciled diff is not byte-identical to the
	// cold one. Meant for tests and soak runs; it defeats the point of
	// incremental extraction in production.
	Verify bool
	// Registry receives the controller's metrics (nil disables them).
	Registry *telemetry.Registry
	// Logger receives structured reconcile events (nil discards them).
	Logger *slog.Logger
}

// PairStatus is the latest observed state of one library pair, the body
// of GET /v1/drift/{pair} and `polora drift -pair`.
type PairStatus struct {
	Pair           string    `json:"pair"`
	LibA           string    `json:"libA"`
	LibB           string    `json:"libB"`
	FpA            string    `json:"fpA"`
	FpB            string    `json:"fpB"`
	ObservedAt     time.Time `json:"observedAt"`
	Deviations     int       `json:"deviations"`
	Manifestations int       `json:"manifestations"`
	New            []string  `json:"new,omitempty"`
	Resolved       []string  `json:"resolved,omitempty"`
	AlertFiring    bool      `json:"alertFiring"`
	AlertThreshold int       `json:"alertThreshold"`
	TimelineLen    int       `json:"timelineEntries"`
	DiffSHA256     string    `json:"diffSHA256"`
	// Report is the latest reconciled diff report. In memory these are
	// the canonical wire bytes (diff.Report.EncodeJSON, what POST
	// /v1/diff serves and DiffSHA256 digests); an enclosing JSON encoder
	// may re-indent them, so cross-surface byte-identity is asserted via
	// DiffSHA256, not this field's framing.
	Report json.RawMessage `json:"report,omitempty"`
}

// Controller runs the continuous-watch reconcile loop. Safe for
// concurrent use: Enqueue and the read APIs may be called while Run is
// looping.
type Controller struct {
	st  *store.Store
	cfg Config
	rm  *telemetry.ReconcileMetrics
	log *slog.Logger

	mu      sync.Mutex
	tl      *timeline
	pending map[string]bool   // library names awaiting reconciliation
	reports map[string][]byte // pair key → latest diff wire bytes

	wake chan struct{}
}

// New loads (or initializes) the drift timeline at cfg.Path and returns
// a controller resuming from it.
func New(cfg Config) (*Controller, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("reconcile: nil store")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.NopLogger()
	}
	tl, err := loadTimeline(cfg.Path)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		st:      cfg.Store,
		cfg:     cfg,
		rm:      telemetry.NewReconcileMetrics(cfg.Registry),
		log:     cfg.Logger,
		tl:      tl,
		pending: map[string]bool{},
		reports: map[string][]byte{},
		wake:    make(chan struct{}, 1),
	}
	c.rm.TimelineEntries.Set(float64(len(tl.entries)))
	for pair, e := range tl.latest {
		c.rm.Drift.With(pair).Set(float64(e.Deviations))
		c.rm.Alert.With(pair).Set(boolGauge(c.firing(e)))
	}
	return c, nil
}

// Enqueue marks a library as needing reconciliation and wakes the loop.
// Calls for a library already pending coalesce (counted as requeues), so
// an upload storm against one hot library costs one cycle, not one cycle
// per upload.
func (c *Controller) Enqueue(name string) {
	c.mu.Lock()
	switch {
	case c.pending[name], len(c.pending) >= c.cfg.QueueCap:
		// Already pending, or the set is full: the next cycle rescans the
		// whole registry anyway, so dropping the name is lossless.
		c.mu.Unlock()
		c.rm.Requeues.Inc()
	default:
		c.pending[name] = true
		n := len(c.pending)
		c.mu.Unlock()
		c.rm.Pending.Set(float64(n))
	}
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// Run executes the reconcile loop until ctx is cancelled: one cycle
// immediately (resuming from the persisted timeline), then one per
// upload wakeup or interval tick, whichever comes first. Cycle errors
// are logged and counted, never fatal — the level-triggered design means
// the next cycle retries whatever failed.
func (c *Controller) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.cfg.Interval)
	defer ticker.Stop()
	c.log.Info("reconcile: watching", "interval", c.cfg.Interval,
		"driftStore", c.cfg.Path, "alertThreshold", c.cfg.AlertThreshold)
	for {
		if err := c.RunOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			c.log.Warn("reconcile: cycle failed", "err", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.wake:
		case <-ticker.C:
		}
	}
}

// RunOnce performs one source→plan→apply cycle. Pair failures are
// counted and the remaining pairs still reconcile; the first error is
// returned so callers driving cycles manually (tests, shutdown flushes)
// see it.
func (c *Controller) RunOnce(ctx context.Context) error {
	start := time.Now()
	defer func() { c.rm.Duration.ObserveDuration(time.Since(start)) }()

	// Drain the pending set: everything it named is covered by the full
	// rescan below, and any upload landing after this point re-wakes the
	// loop for the next cycle.
	c.mu.Lock()
	drained := len(c.pending)
	c.pending = map[string]bool{}
	c.mu.Unlock()
	c.rm.Pending.Set(0)

	// Source: the store registry, re-read every cycle.
	names := c.st.Names()
	libs := make([]string, 0, len(names))
	for n := range names {
		libs = append(libs, n)
	}
	sort.Strings(libs)

	// Plan: pairs whose fingerprints moved past their latest observation.
	type work struct{ la, lb, fa, fb string }
	var stale []work
	c.mu.Lock()
	for i := 0; i < len(libs); i++ {
		for j := i + 1; j < len(libs); j++ {
			la, lb := libs[i], libs[j]
			fa, fb := names[la], names[lb]
			if last := c.tl.latestFor(PairKey(la, lb)); last != nil && last.FpA == fa && last.FpB == fb {
				continue
			}
			stale = append(stale, work{la, lb, fa, fb})
		}
	}
	c.mu.Unlock()

	if drained > 0 || len(stale) > 0 {
		c.log.Info("reconcile: cycle", "libraries", len(libs),
			"stalePairs", len(stale), "drained", drained)
	}

	// Apply: reconcile each stale pair; one failure never blocks the rest.
	var firstErr error
	for _, w := range stale {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := c.applyPair(ctx, w.la, w.lb, w.fa, w.fb); err != nil {
			c.rm.Errors.Inc()
			c.log.Warn("reconcile: pair failed", "pair", PairKey(w.la, w.lb), "err", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("pair %s: %w", PairKey(w.la, w.lb), err)
			}
		}
	}
	c.rm.Runs.Inc()
	return firstErr
}

// applyPair diffs one pair at a fingerprint pair and appends the
// observation to the timeline.
func (c *Controller) applyPair(ctx context.Context, la, lb, fa, fb string) error {
	pair := PairKey(la, lb)
	rep, err := c.st.DiffContext(ctx, fa, fb)
	if err != nil {
		return err
	}
	wire, err := rep.EncodeJSON()
	if err != nil {
		return err
	}
	if c.cfg.Verify {
		if err := c.verifyCold(ctx, fa, fb, wire); err != nil {
			return err
		}
	}

	keys := make([]string, 0, len(rep.Groups))
	for _, g := range rep.Groups {
		keys = append(keys, g.RootKey)
	}
	sort.Strings(keys)
	sum := sha256.Sum256(wire)

	c.mu.Lock()
	defer c.mu.Unlock()
	prev := c.tl.latestFor(pair)
	if prev != nil && prev.FpA == fa && prev.FpB == fb {
		// Another writer observed this exact fingerprint pair since the
		// plan step (or a previous crash persisted it); appending again
		// would duplicate history.
		c.reports[pair] = wire
		return nil
	}
	e := &Entry{
		Pair: pair, LibA: la, LibB: lb, FpA: fa, FpB: fb,
		ObservedAt:     time.Now().UTC(),
		Deviations:     len(rep.Groups),
		Manifestations: rep.TotalManifestations(),
		RootKeys:       keys,
		DiffSHA256:     hex.EncodeToString(sum[:]),
	}
	var prevKeys []string
	wasFiring := false
	if prev != nil {
		prevKeys = prev.RootKeys
		wasFiring = c.firing(prev)
	}
	e.New, e.Resolved = deltaKeys(prevKeys, keys)
	nowFiring := c.firing(e)
	switch {
	case nowFiring && !wasFiring:
		e.Alert = "fired"
	case !nowFiring && wasFiring:
		e.Alert = "cleared"
	}
	if err := c.tl.append(e); err != nil {
		return err
	}
	c.reports[pair] = wire
	c.rm.PairsReconciled.Inc()
	c.rm.TimelineEntries.Set(float64(len(c.tl.entries)))
	c.rm.Drift.With(pair).Set(float64(e.Deviations))
	c.rm.Alert.With(pair).Set(boolGauge(nowFiring))
	c.log.Info("reconcile: pair observed", "pair", pair, "seq", e.Seq,
		"deviations", e.Deviations, "new", len(e.New), "resolved", len(e.Resolved),
		"alert", e.Alert)
	if e.Alert != "" {
		c.log.Warn("reconcile: drift alert "+e.Alert, "pair", pair,
			"deviations", e.Deviations, "threshold", c.cfg.AlertThreshold)
	}
	return nil
}

// verifyCold asserts the reconciled diff bytes equal a from-scratch
// Compare of the same two bundles: fresh libraries, no incremental seed,
// no summary cache.
func (c *Controller) verifyCold(ctx context.Context, fa, fb string, got []byte) error {
	pols := make([]*oracle.Library, 2)
	for i, fp := range []string{fa, fb} {
		b, err := c.st.Bundle(fp)
		if err != nil {
			return err
		}
		opts, err := b.Options.ToOracle()
		if err != nil {
			return err
		}
		// Mirror the store's server-side extraction: display data is never
		// collected, so the option key matches the persisted blobs.
		opts.CollectPaths, opts.CollectGuards = false, false
		lib, err := oracle.LoadLibrary(b.Name, b.Sources)
		if err != nil {
			return err
		}
		if err := lib.ExtractContext(ctx, opts); err != nil {
			return err
		}
		pols[i] = lib
	}
	rep := diff.Compare(pols[0].Policies, pols[1].Policies)
	want, err := rep.EncodeJSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("reconciled diff differs from cold Compare (%d vs %d bytes)", len(got), len(want))
	}
	return nil
}

// Timeline snapshots the newest limit timeline entries (all for
// limit <= 0) in the wire form.
func (c *Controller) Timeline(limit int) TimelineWire {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TimelineWire{Version: TimelineVersion, Entries: c.tl.snapshot(limit)}
}

// Pairs returns the latest status of every observed pair, sorted by
// pair key, without the (potentially large) report bytes.
func (c *Controller) Pairs() []*PairStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*PairStatus
	for _, key := range c.tl.pairs() {
		out = append(out, c.statusLocked(c.tl.latestFor(key), nil))
	}
	return out
}

// Pair returns the latest status of one pair including its reconciled
// diff report. If the report bytes are not cached (fresh restart), they
// are recomputed through the store and verified against the entry's
// digest, so what this returns is always exactly what the controller
// observed.
func (c *Controller) Pair(ctx context.Context, key string) (*PairStatus, error) {
	c.mu.Lock()
	e := c.tl.latestFor(key)
	wire := c.reports[key]
	c.mu.Unlock()
	if e == nil {
		return nil, ErrUnknownPair
	}
	if wire == nil {
		rep, err := c.st.DiffContext(ctx, e.FpA, e.FpB)
		if err != nil {
			return nil, err
		}
		if wire, err = rep.EncodeJSON(); err != nil {
			return nil, err
		}
		sum := sha256.Sum256(wire)
		if hex.EncodeToString(sum[:]) != e.DiffSHA256 {
			return nil, fmt.Errorf("reconcile: recomputed diff for %s does not match recorded digest", key)
		}
		c.mu.Lock()
		c.reports[key] = wire
		c.mu.Unlock()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked(e, wire), nil
}

// ErrUnknownPair reports a drift query for a pair the timeline has never
// observed.
var ErrUnknownPair = errors.New("reconcile: pair never observed")

// statusLocked builds a PairStatus from a timeline entry; callers hold
// c.mu.
func (c *Controller) statusLocked(e *Entry, report []byte) *PairStatus {
	n := 0
	for _, te := range c.tl.entries {
		if te.Pair == e.Pair {
			n++
		}
	}
	return &PairStatus{
		Pair: e.Pair, LibA: e.LibA, LibB: e.LibB, FpA: e.FpA, FpB: e.FpB,
		ObservedAt:     e.ObservedAt,
		Deviations:     e.Deviations,
		Manifestations: e.Manifestations,
		New:            e.New,
		Resolved:       e.Resolved,
		AlertFiring:    c.firing(e),
		AlertThreshold: c.cfg.AlertThreshold,
		TimelineLen:    n,
		DiffSHA256:     e.DiffSHA256,
		Report:         report,
	}
}

// firing reports whether an entry's deviation count trips the alert
// threshold.
func (c *Controller) firing(e *Entry) bool {
	return c.cfg.AlertThreshold > 0 && e.Deviations >= c.cfg.AlertThreshold
}

// deltaKeys computes the appeared/disappeared sets between two sorted
// root-key lists.
func deltaKeys(prev, cur []string) (added, removed []string) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
