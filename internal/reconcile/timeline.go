package reconcile

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// TimelineVersion is the drift-store schema version. Readers reject
// files written by a future schema instead of misinterpreting them.
const TimelineVersion = 1

// Entry is one observation of a library pair: a reconciled diff at a
// specific pair of fingerprints, with the delta against the pair's
// previous observation. Entries are append-only and never rewritten, so
// the timeline doubles as an audit log of policy drift.
type Entry struct {
	// Seq is the global append sequence number, contiguous from 1.
	Seq int `json:"seq"`
	// Pair is the canonical pair key (PairKey: names sorted, "~"-joined).
	Pair string `json:"pair"`
	// LibA/LibB are the pair's library names in canonical (sorted) order;
	// FpA/FpB the snapshot fingerprints this observation diffed — the
	// provenance linking the entry back to exact store content.
	LibA string `json:"libA"`
	LibB string `json:"libB"`
	FpA  string `json:"fpA"`
	FpB  string `json:"fpB"`
	// ObservedAt is when the reconcile loop recorded the observation.
	ObservedAt time.Time `json:"observedAt"`
	// Deviations is the number of distinct differences (diff groups);
	// Manifestations the number of affected entry points.
	Deviations     int `json:"deviations"`
	Manifestations int `json:"manifestations"`
	// RootKeys are the stable root-cause keys of every current deviation
	// (diff.Group.RootKey, sorted). New and Resolved are the delta against
	// the pair's previous entry: deviations that appeared and deviations
	// that disappeared.
	RootKeys []string `json:"rootKeys,omitempty"`
	New      []string `json:"new,omitempty"`
	Resolved []string `json:"resolved,omitempty"`
	// DiffSHA256 is the hex digest of the canonical diff-report wire bytes
	// (diff.Report.EncodeJSON), so any later reader can verify a
	// recomputed report against what the controller observed.
	DiffSHA256 string `json:"diffSHA256"`
	// Alert records an alert transition made by this observation:
	// "fired", "cleared", or empty for no transition.
	Alert string `json:"alert,omitempty"`
}

// TimelineWire is the drift-timeline wire format served by
// GET /v1/drift and printed by `polora drift -json`.
type TimelineWire struct {
	Version int      `json:"version"`
	Entries []*Entry `json:"entries"`
}

// PairKey returns the canonical drift key of a library pair: the two
// names sorted and joined with "~" (URL-safe, so the key can appear in
// GET /v1/drift/{pair} paths verbatim).
func PairKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "~" + b
}

// SplitPair splits a canonical pair key back into its library names.
func SplitPair(key string) (a, b string, ok bool) {
	a, b, ok = strings.Cut(key, "~")
	return a, b, ok && a != "" && b != ""
}

// timeline is the persisted drift log: an append-only entry list written
// whole via atomic rename on every append, so a crash between appends
// loses at most the observation in progress (which the next reconcile
// cycle redoes) and never tears the file.
type timeline struct {
	path    string
	entries []*Entry
	latest  map[string]*Entry // pair key → most recent entry
}

// loadTimeline reads the drift store at path, or starts an empty one if
// the file does not exist. A corrupt or future-versioned file is an
// error: the timeline is the controller's resume state, so guessing
// would risk duplicate or lost history.
func loadTimeline(path string) (*timeline, error) {
	if path == "" {
		return nil, errors.New("reconcile: empty drift-store path")
	}
	t := &timeline{path: path, latest: map[string]*Entry{}}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return t, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reconcile: reading drift store: %w", err)
	}
	var wire TimelineWire
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("reconcile: corrupt drift store %s: %w", path, err)
	}
	if wire.Version != TimelineVersion {
		return nil, fmt.Errorf("reconcile: drift store %s has version %d, this build reads %d",
			path, wire.Version, TimelineVersion)
	}
	for i, e := range wire.Entries {
		if e.Seq != i+1 {
			return nil, fmt.Errorf("reconcile: drift store %s: entry %d has seq %d, want contiguous history",
				path, i, e.Seq)
		}
		t.latest[e.Pair] = e
	}
	t.entries = wire.Entries
	return t, nil
}

// append assigns the next sequence number and persists the whole
// timeline atomically before exposing the entry in memory, so readers
// never observe an entry that would be lost by a crash.
func (t *timeline) append(e *Entry) error {
	e.Seq = len(t.entries) + 1
	wire := TimelineWire{Version: TimelineVersion, Entries: append(t.entries, e)}
	data, err := json.MarshalIndent(&wire, "", "  ")
	if err != nil {
		return fmt.Errorf("reconcile: encoding drift store: %w", err)
	}
	if err := writeAtomic(t.path, append(data, '\n')); err != nil {
		return fmt.Errorf("reconcile: persisting drift store: %w", err)
	}
	t.entries = wire.Entries
	t.latest[e.Pair] = e
	return nil
}

// latestFor returns the most recent entry for a pair key, nil if the
// pair was never observed.
func (t *timeline) latestFor(pair string) *Entry {
	return t.latest[pair]
}

// snapshot returns the newest limit entries in append order (all of them
// when limit <= 0).
func (t *timeline) snapshot(limit int) []*Entry {
	n := len(t.entries)
	if limit > 0 && limit < n {
		return append([]*Entry(nil), t.entries[n-limit:]...)
	}
	return append([]*Entry(nil), t.entries...)
}

// pairs returns the sorted pair keys the timeline has observed.
func (t *timeline) pairs() []string {
	out := make([]string, 0, len(t.latest))
	for k := range t.latest {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeAtomic writes data via a temp file + fsync + rename, the same
// discipline the store uses for its persisted state.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
