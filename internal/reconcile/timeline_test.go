package reconcile

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPairKeyCanonicalAndSplit(t *testing.T) {
	if PairKey("b", "a") != "a~b" || PairKey("a", "b") != "a~b" {
		t.Errorf("PairKey not canonical: %q %q", PairKey("b", "a"), PairKey("a", "b"))
	}
	a, b, ok := SplitPair("a~b")
	if !ok || a != "a" || b != "b" {
		t.Errorf("SplitPair = %q %q %v", a, b, ok)
	}
	for _, bad := range []string{"", "a", "~b", "a~"} {
		if _, _, ok := SplitPair(bad); ok {
			t.Errorf("SplitPair(%q) accepted", bad)
		}
	}
}

func TestTimelineAppendPersistsBeforeExposure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.json")
	tl, err := loadTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range []string{"a~b", "a~b", "a~c"} {
		e := &Entry{Pair: pair, LibA: "a", LibB: "b", FpA: "f1", FpB: "f2", Deviations: i}
		if err := tl.append(e); err != nil {
			t.Fatal(err)
		}
		// After every append the on-disk file is whole and parses: a crash
		// at any point between appends leaves a valid resume state.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var wire TimelineWire
		if err := json.Unmarshal(data, &wire); err != nil {
			t.Fatalf("after append %d: %v", i, err)
		}
		if len(wire.Entries) != i+1 || wire.Entries[i].Seq != i+1 {
			t.Fatalf("after append %d: %d entries, last seq %d", i, len(wire.Entries), wire.Entries[len(wire.Entries)-1].Seq)
		}
	}
	if tl.latestFor("a~b").Deviations != 1 {
		t.Errorf("latestFor returns stale entry")
	}
	if got := tl.pairs(); len(got) != 2 || got[0] != "a~b" || got[1] != "a~c" {
		t.Errorf("pairs = %v", got)
	}
	if got := tl.snapshot(2); len(got) != 2 || got[0].Seq != 2 {
		t.Errorf("snapshot(2) = %+v", got)
	}

	// Reload round-trips.
	tl2, err := loadTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl2.entries) != 3 || tl2.latestFor("a~c") == nil {
		t.Errorf("reload lost entries: %d", len(tl2.entries))
	}
}

// The timeline is the controller's resume state: corruption must be a
// loud error, never a silent empty start that would duplicate history.
func TestTimelineLoadRejectsBadStores(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"corrupt":       `{"version":1,"entries":[{`,
		"wrong version": `{"version":99,"entries":[]}`,
		"seq gap":       `{"version":1,"entries":[{"seq":1,"pair":"a~b"},{"seq":3,"pair":"a~b"}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "-")+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := loadTimeline(path); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
	if _, err := loadTimeline(""); err == nil {
		t.Error("empty path accepted")
	}
}
