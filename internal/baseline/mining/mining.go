// Package mining implements a code-mining baseline in the style of Engler
// et al.'s "bugs as deviant behavior" and AutoISES (Section 7.2): it mines
// frequent security-check patterns within a SINGLE implementation and flags
// deviations as candidate bugs.
//
// The baseline exists to reproduce the paper's comparison: mining
// fundamentally assumes the correct pattern occurs many times, so it misses
// vulnerabilities in rare patterns (Figure 1's checkMulticast/checkAccept
// combination occurs once in the whole library) and faces an inherent
// tradeoff — lowering the support threshold finds more bugs but flags more
// deviations from coincidental patterns.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

// Config tunes the miner's thresholds.
type Config struct {
	// MinSupport is the minimum number of entry points exhibiting a
	// pattern before it is considered a rule.
	MinSupport int
	// MinConfidence is the minimum fraction of pattern-eligible entry
	// points that must follow the rule.
	MinConfidence float64
}

// DefaultConfig mirrors typical mining settings.
func DefaultConfig() Config { return Config{MinSupport: 3, MinConfidence: 0.9} }

// RuleKind distinguishes the two mined rule families.
type RuleKind int

// Rule kinds.
const (
	// CheckImplies: entries whose MAY policy contains check A nearly
	// always also contain check B (an association rule over checks).
	CheckImplies RuleKind = iota
	// GroupProtected: entries of one package whose policies contain native
	// events are nearly always guarded by at least one check.
	GroupProtected
)

func (k RuleKind) String() string {
	if k == GroupProtected {
		return "group-protected"
	}
	return "check-implies"
}

// Rule is one mined pattern.
type Rule struct {
	Kind       RuleKind
	A, B       secmodel.CheckID // CheckImplies: A ⇒ B
	Package    string           // GroupProtected: the package
	Support    int
	Confidence float64
}

func (r Rule) String() string {
	switch r.Kind {
	case GroupProtected:
		return fmt.Sprintf("entries in %s with native events are checked (support %d, conf %.2f)",
			r.Package, r.Support, r.Confidence)
	default:
		return fmt.Sprintf("%s implies %s (support %d, conf %.2f)",
			secmodel.CheckName(r.A), secmodel.CheckName(r.B), r.Support, r.Confidence)
	}
}

// Violation is one deviation from a mined rule.
type Violation struct {
	Entry string
	Rule  Rule
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violates: %s", v.Entry, v.Rule)
}

// entryFacts summarizes one entry point for mining.
type entryFacts struct {
	sig     string
	pkg     string
	checks  policy.CheckSet
	natives bool
}

// Miner mines one implementation's extracted policies.
type Miner struct {
	cfg   Config
	facts []entryFacts
}

// New builds a miner over the library's extracted policies.
func New(pp *policy.ProgramPolicies, cfg Config) *Miner {
	m := &Miner{cfg: cfg}
	for _, sig := range pp.SortedEntries() {
		ep := pp.Entries[sig]
		f := entryFacts{sig: sig, pkg: packageOf(sig)}
		for ev, evp := range ep.Events {
			f.checks = f.checks.Union(evp.May)
			if ev.Kind == secmodel.NativeCall {
				f.natives = true
			}
		}
		m.facts = append(m.facts, f)
	}
	return m
}

func packageOf(sig string) string {
	// sig is pkg.Class.method(...): strip the last two dotted components.
	i := strings.LastIndexByte(sig, '(')
	if i < 0 {
		i = len(sig)
	}
	head := sig[:i]
	parts := strings.Split(head, ".")
	if len(parts) <= 2 {
		return ""
	}
	return strings.Join(parts[:len(parts)-2], ".")
}

// Mine extracts rules meeting the thresholds.
func (m *Miner) Mine() []Rule {
	var rules []Rule

	// Check-association rules: A ⇒ B over entry MAY sets.
	withCheck := map[secmodel.CheckID][]entryFacts{}
	for _, f := range m.facts {
		for _, id := range f.checks.IDs() {
			withCheck[id] = append(withCheck[id], f)
		}
	}
	var ids []secmodel.CheckID
	for id := range withCheck {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, a := range ids {
		base := withCheck[a]
		if len(base) < m.cfg.MinSupport {
			continue
		}
		for _, b := range ids {
			if a == b {
				continue
			}
			both := 0
			for _, f := range base {
				if f.checks.Has(b) {
					both++
				}
			}
			conf := float64(both) / float64(len(base))
			if both >= m.cfg.MinSupport && conf >= m.cfg.MinConfidence && conf < 1.0 {
				rules = append(rules, Rule{Kind: CheckImplies, A: a, B: b, Support: both, Confidence: conf})
			}
		}
	}

	// Group-protection rules: packages whose native-event entries are
	// nearly always checked.
	type groupStat struct{ total, checked int }
	groups := map[string]*groupStat{}
	for _, f := range m.facts {
		if !f.natives {
			continue
		}
		g := groups[f.pkg]
		if g == nil {
			g = &groupStat{}
			groups[f.pkg] = g
		}
		g.total++
		if !f.checks.IsEmpty() {
			g.checked++
		}
	}
	var pkgs []string
	for p := range groups {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		g := groups[p]
		conf := float64(g.checked) / float64(g.total)
		if g.checked >= m.cfg.MinSupport && conf >= m.cfg.MinConfidence && conf < 1.0 {
			rules = append(rules, Rule{Kind: GroupProtected, Package: p, Support: g.checked, Confidence: conf})
		}
	}
	return rules
}

// FindViolations returns the entries deviating from mined rules.
func (m *Miner) FindViolations() []Violation {
	rules := m.Mine()
	var out []Violation
	for _, r := range rules {
		for _, f := range m.facts {
			switch r.Kind {
			case CheckImplies:
				if f.checks.Has(r.A) && !f.checks.Has(r.B) {
					out = append(out, Violation{Entry: f.sig, Rule: r})
				}
			case GroupProtected:
				if f.pkg == r.Package && f.natives && f.checks.IsEmpty() {
					out = append(out, Violation{Entry: f.sig, Rule: r})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entry != out[j].Entry {
			return out[i].Entry < out[j].Entry
		}
		return out[i].Rule.String() < out[j].Rule.String()
	})
	return out
}
