package mining

import (
	"strings"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

func extract(t testing.TB, name string, srcs map[string]string) *oracle.Library {
	t.Helper()
	l, err := oracle.LoadLibrary(name, srcs)
	if err != nil {
		t.Fatal(err)
	}
	l.Extract(oracle.DefaultOptions())
	return l
}

// TestMinerMissesRarePattern reproduces the paper's Section 2 argument:
// Harmony's missing checkAccept is part of a pattern that occurs once in
// the library, below any reasonable support threshold, so the miner is
// silent — while the oracle reports it (see corpus tests).
func TestMinerMissesRarePattern(t *testing.T) {
	l := extract(t, "harmony", corpus.HarmonySources())
	m := New(l.Policies, DefaultConfig())
	accept, _ := secmodel.CheckByName("checkAccept", 2)
	for _, v := range m.FindViolations() {
		if strings.Contains(v.Entry, "DatagramSocket.connect") && v.Rule.B == accept {
			t.Errorf("miner unexpectedly found the rare-pattern bug: %s", v)
		}
	}
}

// TestMinerFlagsCorrectImplementation: in the JDK, the rare checkAccept
// pattern deviates from the common checkConnect-alone pattern, so with a
// low threshold the miner can flag the CORRECT implementation — the
// paper's "may even wrongly flag the JDK" scenario requires the common
// pattern to dominate, which the generated corpus provides.
func TestMinerThresholdTradeoff(t *testing.T) {
	c := gen.Generate(gen.Small())
	l := extract(t, "jdk", c.Sources["jdk"])

	strict := New(l.Policies, Config{MinSupport: 5, MinConfidence: 0.95}).FindViolations()
	loose := New(l.Policies, Config{MinSupport: 2, MinConfidence: 0.55}).FindViolations()
	if len(loose) < len(strict) {
		t.Errorf("lowering thresholds should not reduce violations: strict=%d loose=%d",
			len(strict), len(loose))
	}
	if len(loose) == len(strict) {
		t.Logf("note: thresholds did not differentiate on this corpus (strict=%d loose=%d)",
			len(strict), len(loose))
	}
}

// TestMinerSingleImplementationOnly: the miner sees one implementation and
// cannot, even in principle, detect a bug replicated consistently within
// it — only cross-implementation differencing can. Verify the miner's
// violation set on Harmony misses at least one seeded oracle-detected
// vulnerability.
func TestMinerVsOracleOnSeededCorpus(t *testing.T) {
	c := gen.Generate(gen.Small())
	libs := map[string]*oracle.Library{}
	for name, srcs := range c.Sources {
		libs[name] = extract(t, name, srcs)
	}

	// Oracle-detected: every seeded issue (validated in gen's own tests).
	// Miner: run per implementation, union violations.
	minerHits := map[string]bool{}
	for _, l := range libs {
		m := New(l.Policies, DefaultConfig())
		for _, v := range m.FindViolations() {
			minerHits[v.Entry] = true
		}
	}
	missed := 0
	for _, is := range c.Issues {
		found := false
		for e := range minerHits {
			if is.MatchesEntry(e) {
				found = true
			}
		}
		if !found {
			missed++
		}
	}
	if missed == 0 {
		t.Error("miner found every seeded issue — the corpus no longer exercises rare patterns")
	}
	t.Logf("miner missed %d of %d seeded issues; flagged %d entries total",
		missed, len(c.Issues), len(minerHits))
}

func TestMinedRulesAreDeterministic(t *testing.T) {
	l := extract(t, "jdk", corpus.JDKSources())
	a := New(l.Policies, Config{MinSupport: 1, MinConfidence: 0.5}).Mine()
	b := New(l.Policies, Config{MinSupport: 1, MinConfidence: 0.5}).Mine()
	if len(a) != len(b) {
		t.Fatalf("rule counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rule %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPackageOf(t *testing.T) {
	cases := map[string]string{
		"java.net.Socket.connect(SocketAddress,int)": "java.net",
		"gen.p01.Api007.op5(String,int)":             "gen.p01",
		"Top.m()":                                    "",
		"malformed":                                  "",
	}
	for sig, want := range cases {
		if got := packageOf(sig); got != want {
			t.Errorf("packageOf(%q) = %q, want %q", sig, got, want)
		}
	}
}
