// Package cmv implements a complete-mediation verifier in the style of
// Sistla et al.'s CMV and Koved et al.'s access-rights analysis (Section
// 7.1): it takes a MANUALLY specified policy — pairs of a security check
// and an event pattern — and reports every matching event not dominated by
// the check (i.e. the check is not in the event's MUST set).
//
// The baseline exists to reproduce the paper's comparison: correct
// security logic often enforces MAY policies (Figure 1: no single check
// dominates all paths), so a must-dominance verifier flags correct
// implementations, and the manual policy itself can silently omit rare
// check-event pairs.
package cmv

import (
	"fmt"
	"sort"
	"strings"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
)

// Requirement is one manual policy entry: events whose string rendering
// contains EventSubstr (or entry signatures containing EntrySubstr) must be
// dominated by Check.
type Requirement struct {
	Check secmodel.CheckID
	// EntrySubstr restricts the requirement to matching entry points
	// ("" matches all).
	EntrySubstr string
	// EventSubstr restricts the requirement to matching events
	// ("" matches every event of a matching entry).
	EventSubstr string
}

func (r Requirement) String() string {
	return fmt.Sprintf("%s must dominate %q events of %q entries",
		secmodel.CheckName(r.Check), r.EventSubstr, r.EntrySubstr)
}

// Violation is one event not dominated by the required check.
type Violation struct {
	Entry string
	Event secmodel.Event
	Req   Requirement
	// MayHolds reports whether the check at least MAY precede the event —
	// true for the paper's Figure 1 false-positive pattern, where correct
	// conditional logic fails must-dominance.
	MayHolds bool
}

func (v Violation) String() string {
	qualifier := "missing entirely"
	if v.MayHolds {
		qualifier = "on some paths only"
	}
	return fmt.Sprintf("%s: event %s lacks %s (%s)",
		v.Entry, v.Event, secmodel.CheckName(v.Req.Check), qualifier)
}

// Verify checks the manual policy against the extracted policies of one
// implementation.
func Verify(pp *policy.ProgramPolicies, reqs []Requirement) []Violation {
	var out []Violation
	for _, sig := range pp.SortedEntries() {
		ep := pp.Entries[sig]
		for _, req := range reqs {
			if req.EntrySubstr != "" && !strings.Contains(sig, req.EntrySubstr) {
				continue
			}
			for _, ev := range ep.SortedEvents() {
				if req.EventSubstr != "" && !strings.Contains(ev.String(), req.EventSubstr) {
					continue
				}
				evp := ep.Events[ev]
				if evp.Must.Has(req.Check) {
					continue
				}
				out = append(out, Violation{
					Entry:    sig,
					Event:    ev,
					Req:      req,
					MayHolds: evp.May.Has(req.Check),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entry != out[j].Entry {
			return out[i].Entry < out[j].Entry
		}
		return out[i].Event.String() < out[j].Event.String()
	})
	return out
}
