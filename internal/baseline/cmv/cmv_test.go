package cmv

import (
	"strings"
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

func extract(t testing.TB, name string, srcs map[string]string) *oracle.Library {
	t.Helper()
	l, err := oracle.LoadLibrary(name, srcs)
	if err != nil {
		t.Fatal(err)
	}
	l.Extract(oracle.DefaultOptions())
	return l
}

func req(t testing.TB, check string, arity int, entry, event string) Requirement {
	t.Helper()
	id, ok := secmodel.CheckByName(check, arity)
	if !ok {
		t.Fatalf("unknown check %s/%d", check, arity)
	}
	return Requirement{Check: id, EntrySubstr: entry, EventSubstr: event}
}

// TestCMVFalsePositiveOnFigure1: the manual policy "checkConnect must
// dominate DatagramSocket.connect" flags the CORRECT JDK implementation,
// because the multicast branch legitimately performs checkMulticast
// instead — the paper's core criticism of must-dominance verification.
func TestCMVFalsePositiveOnFigure1(t *testing.T) {
	l := extract(t, "jdk", corpus.JDKSources())
	reqs := []Requirement{req(t, "checkConnect", 2, "DatagramSocket.connect", "native:connect0")}
	vs := Verify(l.Policies, reqs)
	if len(vs) == 0 {
		t.Fatal("CMV did not flag the correct JDK implementation — expected the MAY-policy false positive")
	}
	for _, v := range vs {
		if !v.MayHolds {
			t.Errorf("violation should be a some-paths-only false positive: %s", v)
		}
	}
}

// TestCMVFindsRealMissingCheckWhenPolicyIsComplete: given a (laboriously
// hand-written) correct requirement, CMV does find Classpath's missing
// Socket.connect check — the approach works only as well as its manual
// policy.
func TestCMVFindsSeededBugWithCorrectPolicy(t *testing.T) {
	l := extract(t, "classpath", corpus.ClasspathSources())
	reqs := []Requirement{req(t, "checkConnect", 2, "Socket.connect", "native:socketConnect")}
	vs := Verify(l.Policies, reqs)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Entry, "java.net.Socket.connect") && !v.MayHolds {
			found = true
		}
	}
	if !found {
		t.Errorf("CMV missed Classpath's Socket.connect hole: %v", vs)
	}
}

func TestCMVIncompletePolicyMissesBug(t *testing.T) {
	// The manual policy omits the rare checkAccept requirement entirely —
	// Harmony's Figure 1 bug is invisible to CMV.
	l := extract(t, "harmony", corpus.HarmonySources())
	reqs := []Requirement{req(t, "checkConnect", 2, "DatagramSocket.connect", "native:connect0")}
	vs := Verify(l.Policies, reqs)
	for _, v := range vs {
		if secmodel.CheckName(v.Req.Check) == "checkAccept" {
			t.Errorf("impossible: policy had no checkAccept requirement: %s", v)
		}
	}
	// All reported violations are the MAY-policy kind, not the real bug.
	for _, v := range vs {
		if !v.MayHolds {
			t.Errorf("unexpected hard violation (policy doesn't cover the real bug): %s", v)
		}
	}
}

func TestCMVSatisfiedRequirementSilent(t *testing.T) {
	l := extract(t, "jdk", corpus.JDKSources())
	// JDK's Socket.connect has an unconditional checkConnect: no violation.
	reqs := []Requirement{req(t, "checkConnect", 2, "java.net.Socket.connect", "native:socketConnect")}
	if vs := Verify(l.Policies, reqs); len(vs) != 0 {
		t.Errorf("unexpected violations: %v", vs)
	}
}

func TestCMVEmptyPolicy(t *testing.T) {
	l := extract(t, "jdk", corpus.JDKSources())
	if vs := Verify(l.Policies, nil); len(vs) != 0 {
		t.Errorf("empty policy produced violations: %v", vs)
	}
}

func TestStringRenderings(t *testing.T) {
	r := req(t, "checkConnect", 2, "Socket.connect", "native:socketConnect")
	if s := r.String(); !strings.Contains(s, "checkConnect") || !strings.Contains(s, "must dominate") {
		t.Errorf("requirement string = %q", s)
	}
	l := extract(t, "jdk", corpus.JDKSources())
	vs := Verify(l.Policies, []Requirement{req(t, "checkConnect", 2, "DatagramSocket.connect", "native:connect0")})
	if len(vs) == 0 {
		t.Fatal("no violations to render")
	}
	s := vs[0].String()
	if !strings.Contains(s, "lacks checkConnect") || !strings.Contains(s, "on some paths only") {
		t.Errorf("violation string = %q", s)
	}
}

func TestHardViolationString(t *testing.T) {
	l := extract(t, "classpath", corpus.ClasspathSources())
	vs := Verify(l.Policies, []Requirement{req(t, "checkConnect", 2, "java.net.Socket.connect", "native:socketConnect")})
	found := false
	for _, v := range vs {
		if strings.Contains(v.String(), "missing entirely") {
			found = true
		}
	}
	if !found {
		t.Errorf("no hard violation rendered: %v", vs)
	}
}
