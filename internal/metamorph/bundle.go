// Package metamorph implements metamorphic fuzzing for the security
// policy oracle. It mutates MJ library implementations in ways that
// provably preserve the extracted security policy — alpha-renaming,
// helper extraction and inlining, wrapper interposition, dead code,
// reordering of independent statements, file re-sharding — and checks
// that the oracle agrees: a semantics-preserving mutant must diff clean
// against the original. This machine-checks the paper's central claim
// that policy differencing has no intrinsic false positives: if any
// mutator ever produces a diff, either the mutator or the analyzer is
// wrong, and both are bugs worth keeping.
package metamorph

import (
	"fmt"
	"sort"
	"strings"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/secmodel"
)

// runtimeClasses are the security-model classes whose structure the
// analysis keys on (check methods, doPrivileged, getSecurityManager).
// Files declaring any of them are frozen: mutating the model itself
// would change event identities, not just program structure.
var runtimeClasses = map[string]bool{
	"SecurityManager":  true,
	"AccessController": true,
	"PrivilegedAction": true,
	"System":           true,
}

// isModelClass reports whether name belongs to the security model: the
// static runtime set above or the guard class of any registered check
// domain (e.g. CryptoGuard). The registry is consulted at parse time
// rather than baked into a table, so campaigns over late-registered
// domains freeze their guard classes too.
func isModelClass(name string) bool {
	if runtimeClasses[name] {
		return true
	}
	for _, id := range secmodel.Domains() {
		if d, ok := secmodel.DomainByID(id); ok && d.GuardClass() == name {
			return true
		}
	}
	return false
}

// File is one parsed source file of a bundle.
type File struct {
	Path string
	AST  *ast.File
	// Frozen files (the java.lang/java.security runtime prelude) are
	// printed back verbatim and never mutated.
	Frozen bool
}

// Bundle is a parsed, mutable library implementation plus the
// bundle-wide name indexes the mutators consult to stay
// capture-avoiding.
type Bundle struct {
	Files []*File

	// classNames / fieldNames / methodCount index every declaration in
	// the bundle (frozen files included — a mutable class may extend or
	// call into the runtime). PrivateRead/Write events are keyed by
	// field name and NativeCall events by method name/arity, so the
	// mutators never rename fields or native methods and never reuse a
	// declared name.
	classNames  map[string]bool
	fieldNames  map[string]bool
	methodCount map[string]int
	// idents holds every identifier-like string seen anywhere, the
	// exclusion set for fresh-name generation.
	idents map[string]bool
	fresh  int
}

// ParseBundle parses every source in the bundle. It fails on any
// diagnostic error: only cleanly loading bundles are mutable (the
// invariant checker needs a well-defined baseline policy).
func ParseBundle(sources map[string]string) (*Bundle, error) {
	b := &Bundle{
		classNames:  map[string]bool{},
		fieldNames:  map[string]bool{},
		methodCount: map[string]int{},
		idents:      map[string]bool{},
	}
	paths := make([]string, 0, len(sources))
	for p := range sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		diags := &lang.Diagnostics{}
		f := parser.ParseFile(p, sources[p], diags)
		if diags.HasErrors() {
			return nil, fmt.Errorf("metamorph: parsing %s: %w", p, diags.Err())
		}
		b.Files = append(b.Files, &File{Path: p, AST: f, Frozen: frozenFile(f)})
	}
	b.reindex()
	return b, nil
}

// frozenFile reports whether f declares any security-model class.
func frozenFile(f *ast.File) bool {
	for _, td := range f.Types {
		if isModelClass(td.Name) {
			return true
		}
	}
	return false
}

// reindex rebuilds the bundle-wide name indexes from the current ASTs.
func (b *Bundle) reindex() {
	b.classNames = map[string]bool{}
	b.fieldNames = map[string]bool{}
	b.methodCount = map[string]int{}
	b.idents = map[string]bool{}
	for _, f := range b.Files {
		b.addIdent(f.AST.Package)
		for _, imp := range f.AST.Imports {
			b.addIdent(imp)
		}
		for _, td := range f.AST.Types {
			b.classNames[td.Name] = true
			b.addIdent(td.Name)
			b.addIdent(td.Extends)
			for _, i := range td.Implements {
				b.addIdent(i)
			}
			for _, fd := range td.Fields {
				b.fieldNames[fd.Name] = true
				b.addIdent(fd.Name)
				b.addIdent(fd.Type.Name)
			}
			for _, md := range td.Methods {
				b.methodCount[md.Name]++
				b.addIdent(md.Name)
				b.addIdent(md.Ret.Name)
				for _, p := range md.Params {
					b.addIdent(p.Name)
					b.addIdent(p.Type.Name)
				}
			}
			ast.Inspect(td, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.LocalVarDecl:
					b.addIdent(n.Name)
					b.addIdent(n.Type.Name)
				case *ast.CatchClause:
					b.addIdent(n.Name)
					b.addIdent(n.Type.Name)
				case *ast.VarRef:
					b.addIdent(n.Name)
				case *ast.FieldAccess:
					b.addIdent(n.Name)
				case *ast.CallExpr:
					b.addIdent(n.Name)
				case *ast.NewExpr:
					b.addIdent(n.Type.Name)
				case *ast.NewArrayExpr:
					b.addIdent(n.Type.Name)
				case *ast.CastExpr:
					b.addIdent(n.Type.Name)
				case *ast.InstanceOfExpr:
					b.addIdent(n.Type.Name)
				}
				return true
			})
		}
	}
}

// addIdent records every dot-separated component of s in the identifier
// exclusion set.
func (b *Bundle) addIdent(s string) {
	if s == "" {
		return
	}
	for _, part := range strings.Split(s, ".") {
		if part != "" {
			b.idents[part] = true
		}
	}
}

// Fresh mints an identifier not declared or referenced anywhere in the
// bundle, derived from prefix, and reserves it.
func (b *Bundle) Fresh(prefix string) string {
	for {
		cand := fmt.Sprintf("%s_mz%d", prefix, b.fresh)
		b.fresh++
		if !b.idents[cand] {
			b.idents[cand] = true
			return cand
		}
	}
}

// Sources prints the bundle back to a file → source map.
func (b *Bundle) Sources() map[string]string {
	out := make(map[string]string, len(b.Files))
	for _, f := range b.Files {
		out[f.Path] = ast.Print(f.AST)
	}
	return out
}

// methodCtx locates one method declaration inside the bundle.
type methodCtx struct {
	file   *File
	class  *ast.TypeDecl
	method *ast.MethodDecl
}

// eachClass calls f for every class (non-interface type) declared in a
// mutable (non-frozen) file.
func (b *Bundle) eachClass(f func(file *File, td *ast.TypeDecl)) {
	for _, file := range b.Files {
		if file.Frozen {
			continue
		}
		for _, td := range file.AST.Types {
			if td.IsInterface {
				continue
			}
			f(file, td)
		}
	}
}

// methodsWithBody returns every mutable concrete method, in bundle order.
func (b *Bundle) methodsWithBody() []methodCtx {
	var out []methodCtx
	b.eachClass(func(file *File, td *ast.TypeDecl) {
		for _, md := range td.Methods {
			if md.Body != nil {
				out = append(out, methodCtx{file, td, md})
			}
		}
	})
	return out
}
