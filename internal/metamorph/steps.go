package metamorph

import (
	"fmt"
	"math/rand"
)

// A Step is one recorded mutator application: the mutator's catalog name
// plus the private RNG seed it was driven by. Because every step carries
// its own seed, any subset of a recorded trace replays deterministically
// over the original sources — the primitive crash-triage minimization is
// built on. Campaign reproducer bundles serialize traces, so the field
// names are part of the artifact format.
type Step struct {
	Mutator string `json:"mutator"`
	Seed    int64  `json:"seed"`
}

// MutatorByName resolves a catalog mutator; ok is false for names not in
// Mutators().
func MutatorByName(name string) (Mutator, bool) {
	for _, m := range Mutators() {
		if m.Name == name {
			return m, true
		}
	}
	return Mutator{}, false
}

// ApplyStep applies m to b driven by a fresh RNG seeded with seed, and
// reports whether the bundle changed. Unlike sharing one RNG across a
// whole schedule, the rewrite consumes no state a later step observes,
// which is what makes recorded traces subsettable.
func ApplyStep(b *Bundle, m Mutator, seed int64) bool {
	return m.Apply(b, rand.New(rand.NewSource(seed)))
}

// ApplySteps replays a trace over fresh copies of sources and returns
// the mutated sources plus the names of the steps that changed the
// bundle. A step whose mutator finds no applicable site is skipped (the
// trace subset under test may have removed the step that created its
// site); an unknown mutator name is an error.
func ApplySteps(sources map[string]string, steps []Step) (map[string]string, []string, error) {
	b, err := ParseBundle(sources)
	if err != nil {
		return nil, nil, err
	}
	var applied []string
	for _, s := range steps {
		m, ok := MutatorByName(s.Mutator)
		if !ok {
			return nil, nil, fmt.Errorf("metamorph: unknown mutator %q in trace", s.Mutator)
		}
		if ApplyStep(b, m, s.Seed) {
			applied = append(applied, s.Mutator)
		}
	}
	return b.Sources(), applied, nil
}
