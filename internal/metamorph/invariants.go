package metamorph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// The five invariants the campaign asserts for every mutant:
//
//	(a) diff-clean      — the mutant's policies diff clean against the
//	                      original, in both directions, over an identical
//	                      entry-point set;
//	(b) must-subset-may — MUST ⊆ MAY for every entry point and event;
//	(c) parallel        — parallel extraction is byte-identical to serial;
//	(d) roundtrip       — export → import → export is byte-identical;
//	(e) incremental     — extracting the mutant incrementally from the
//	                      unmutated baseline splices and re-analyzes its
//	                      way to the same exported bytes (and the same
//	                      diff -json reports) as a clean rebuild.
//
// (a) is the paper's no-intrinsic-false-positives claim run in reverse:
// a semantics-preserving difference that produces a report is a bug in
// either the mutator catalog or the analyzer. The load step is itself an
// invariant — a mutant that fails to parse or type-check means a mutator
// emitted ill-formed MJ.

// CampaignOptions configures a metamorphic campaign.
type CampaignOptions struct {
	// Seed derives every round's mutation schedule; one (Seed, Rounds,
	// Mutations) triple replays exactly.
	Seed int64
	// Rounds is the number of independent mutants (default 100).
	Rounds int
	// Mutations is the number of mutator applications per round
	// (default 8).
	Mutations int
	// Workers fans rounds out over a worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Oracle overrides the semantic extraction options (nil means
	// oracle.DefaultOptions). Parallel/Telemetry are controlled by the
	// campaign itself. Two semantic constraints are enforced by Run:
	// narrow events (broad mode's ParamAccess tagging is entry-frame
	// relative, so helper extraction legitimately moves it) and
	// unlimited MaxDepth (mutators add call frames, which shifts where
	// a depth cutoff truncates).
	Oracle *oracle.Options
	// ParallelEvery checks invariant (c) — two extra extractions — every
	// Nth round; 0 means every 8th, < 0 disables.
	ParallelEvery int
	// IncrementalEvery checks invariant (e) — one clean rebuild plus one
	// incremental extraction — every Nth round; 0 means every 8th, < 0
	// disables.
	IncrementalEvery int
	// Metrics, when non-nil, receives per-round counters.
	Metrics *telemetry.MetamorphMetrics
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.Rounds <= 0 {
		o.Rounds = 100
	}
	if o.Mutations <= 0 {
		o.Mutations = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ParallelEvery == 0 {
		o.ParallelEvery = 8
	}
	if o.IncrementalEvery == 0 {
		o.IncrementalEvery = 8
	}
	return o
}

// Violation is one invariant failure, with the mutation schedule that
// produced it (replayable from the campaign seed and round).
type Violation struct {
	Round     int
	Invariant string // "load", "diff-clean", "must-subset-may", "parallel", "roundtrip", "incremental"
	Mutators  []string
	Detail    string
	// RootKeys identifies the diff groups behind a diff-clean violation
	// (sorted, deduplicated); empty for other invariants. Crash triage
	// fingerprints dedupe on it.
	RootKeys []string `json:",omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("round %d [%s] after %v: %s", v.Round, v.Invariant, v.Mutators, v.Detail)
}

// Report is the outcome of one campaign.
type Report struct {
	Library string
	Rounds  int
	// Applied counts successful rewrites per mutator across all rounds.
	Applied map[string]int
	// Attempted counts draws per mutator, including those that found no
	// applicable site; Applied[m] <= Attempted[m] always holds.
	Attempted  map[string]int
	Violations []Violation
	// Entries is the original library's entry-point count.
	Entries int
	Elapsed time.Duration
}

// Run executes a metamorphic campaign over one library bundle: extract
// the original's policies once, then per round derive a fresh mutant
// from the seed, re-extract, and check every invariant. Rounds fan out
// over a worker pool; results are aggregated deterministically (sorted
// by round), so the report is a pure function of (sources, options).
func Run(name string, sources map[string]string, opts CampaignOptions) (*Report, error) {
	opts = opts.withDefaults()
	start := time.Now()
	serial := opts.oracleOptions()
	if err := ValidateOracle(serial); err != nil {
		return nil, err
	}

	// Fail fast on input the mutators cannot handle; campaign callers
	// must supply a cleanly loading bundle.
	if _, err := ParseBundle(sources); err != nil {
		return nil, err
	}
	base, err := oracle.LoadLibrary(name, sources)
	if err != nil {
		return nil, fmt.Errorf("metamorph: loading baseline: %w", err)
	}
	base.Extract(serial)

	rep := &Report{
		Library:   name,
		Rounds:    opts.Rounds,
		Applied:   map[string]int{},
		Attempted: map[string]int{},
		Entries:   len(base.EntryPoints()),
	}
	if v := checkMustSubsetMay(base.Policies); v != "" {
		rep.Violations = append(rep.Violations, Violation{
			Round: -1, Invariant: "must-subset-may", Detail: "baseline: " + v,
		})
	}

	type roundResult struct {
		applied    []string
		attempted  []string
		violations []Violation
	}
	results := make([]roundResult, opts.Rounds)
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := opts.Workers
	if workers > opts.Rounds {
		workers = opts.Rounds
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= opts.Rounds {
					return
				}
				t0 := time.Now()
				applied, attempted, violations := runRound(name, sources, base, serial, opts, r)
				results[r] = roundResult{applied, attempted, violations}
				if m := opts.Metrics; m != nil {
					m.Rounds.Inc()
					m.RoundDuration.ObserveDuration(time.Since(t0))
					for _, a := range applied {
						m.Mutations.With(a).Inc()
					}
					for _, v := range violations {
						m.Violations.With(v.Invariant).Inc()
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, rr := range results {
		for _, a := range rr.applied {
			rep.Applied[a]++
		}
		for _, a := range rr.attempted {
			rep.Attempted[a]++
		}
		rep.Violations = append(rep.Violations, rr.violations...)
	}
	sort.SliceStable(rep.Violations, func(i, j int) bool {
		return rep.Violations[i].Round < rep.Violations[j].Round
	})
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// oracleOptions resolves the campaign's semantic options with serial
// extraction pinned (invariant (c) supplies its own parallel leg).
func (o CampaignOptions) oracleOptions() oracle.Options {
	opts := oracle.DefaultOptions()
	if o.Oracle != nil {
		opts = *o.Oracle
	}
	opts.Parallel = 1
	opts.Telemetry = nil
	return opts
}

// ValidateOracle rejects oracle options the mutator catalog is not sound
// under: broad events (ParamAccess tagging is entry-frame relative, so
// helper extraction legitimately moves it) and bounded MaxDepth (mutators
// add call frames, which shifts where a depth cutoff truncates).
func ValidateOracle(serial oracle.Options) error {
	if serial.Events != secmodel.NarrowEvents {
		return fmt.Errorf("metamorph: campaign requires narrow events (broad-mode ParamAccess events are entry-frame relative; helper extraction moves them)")
	}
	if serial.MaxDepth >= 0 {
		return fmt.Errorf("metamorph: campaign requires unlimited MaxDepth (mutators add call frames, shifting the cutoff)")
	}
	return nil
}

// MutateSources applies a seeded schedule of n mutations and returns the
// mutated bundle with the mutator names applied, the primitive every
// campaign round, fuzz target, and ground-truth-survival test shares.
func MutateSources(sources map[string]string, seed int64, n int) (map[string]string, []string, error) {
	b, err := ParseBundle(sources)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	applied, _ := mutate(b, rng, n)
	return b.Sources(), applied, nil
}

// mutate applies n randomly chosen mutators to b, returning the names of
// those that changed it and the names of every draw attempted. A mutator
// whose Apply finds no candidate is marked dead and excluded from later
// draws — it stays a no-op until another mutator changes the bundle, at
// which point every dead mark is cleared (the rewrite may have created
// sites). When all mutators are simultaneously dead the round ends early.
func mutate(b *Bundle, rng *rand.Rand, n int) (applied, attempted []string) {
	muts := Mutators()
	dead := make([]bool, len(muts))
	alive := len(muts)
	for i := 0; i < n && alive > 0; i++ {
		k := rng.Intn(alive)
		idx := -1
		for j := range muts {
			if dead[j] {
				continue
			}
			if k == 0 {
				idx = j
				break
			}
			k--
		}
		m := muts[idx]
		attempted = append(attempted, m.Name)
		if m.Apply(b, rng) {
			applied = append(applied, m.Name)
			if alive < len(muts) {
				for j := range dead {
					dead[j] = false
				}
				alive = len(muts)
			}
		} else {
			dead[idx] = true
			alive--
		}
	}
	return applied, attempted
}

// roundSeed decorrelates per-round schedules drawn from one campaign
// seed (splitmix64-style odd-constant spacing).
func roundSeed(seed int64, round int) int64 {
	return seed + int64(round+1)*-0x61c8864680b583eb
}

// runRound derives mutant r, extracts it, and checks every invariant.
func runRound(name string, sources map[string]string, base *oracle.Library, serial oracle.Options, opts CampaignOptions, r int) (applied, attempted []string, violations []Violation) {
	stamp := func(vs []Violation) []Violation {
		for i := range vs {
			vs[i].Round = r
			vs[i].Mutators = applied
		}
		return vs
	}
	// ParseBundle succeeded on these sources before the pool started, so
	// a failure here cannot happen; treat it as a load violation anyway
	// rather than dropping the round.
	b, err := ParseBundle(sources)
	if err != nil {
		violations = stamp([]Violation{{Invariant: "load", Detail: err.Error()}})
		return
	}
	rng := rand.New(rand.NewSource(roundSeed(opts.Seed, r)))
	applied, attempted = mutate(b, rng, opts.Mutations)
	mutated := b.Sources()

	lib, err := oracle.LoadLibrary(fmt.Sprintf("%s+r%d", name, r), mutated)
	if err != nil {
		violations = stamp([]Violation{{Invariant: "load", Detail: err.Error()}})
		return
	}
	lib.Extract(serial)
	chk := MutantChecks{
		Parallel:    opts.ParallelEvery > 0 && r%opts.ParallelEvery == 0,
		Incremental: opts.IncrementalEvery > 0 && r%opts.IncrementalEvery == 0,
	}
	violations = stamp(CheckExtracted(base, lib, mutated, serial, chk))
	return
}

// MutantChecks selects which sampled invariants CheckExtracted runs on
// top of the always-on set; parallel and incremental each cost extra
// full extractions, so campaigns sample them.
type MutantChecks struct {
	Parallel    bool
	Incremental bool
}

// CheckExtracted asserts the metamorphic invariants for one extracted
// mutant against its baseline library: (a) diff-clean both directions,
// (b) MUST ⊆ MAY, (d) export roundtrip fixed point always; (c) parallel
// byte-identity and (e) incremental == clean rebuild when selected by
// chk. Round and Mutators on the returned violations are left for the
// caller to stamp. The campaign engine shares this with runRound so a
// minimized reproducer re-verifies under exactly the campaign's checks.
func CheckExtracted(base, lib *oracle.Library, mutated map[string]string, serial oracle.Options, chk MutantChecks) (violations []Violation) {
	fail := func(invariant, detail string) {
		violations = append(violations, Violation{Invariant: invariant, Detail: detail})
	}

	// (a) Diff clean, both directions, over an unchanged entry set.
	if nb, nm := len(base.EntryPoints()), len(lib.EntryPoints()); nb != nm {
		fail("diff-clean", fmt.Sprintf("entry-point count changed: %d -> %d", nb, nm))
	} else if match := oracle.MatchingEntries(base, lib); match != nb {
		fail("diff-clean", fmt.Sprintf("only %d of %d entry points match", match, nb))
	}
	for _, dr := range []*diff.Report{
		diff.Compare(base.Policies, lib.Policies),
		diff.Compare(lib.Policies, base.Policies),
	} {
		if len(dr.Groups) > 0 {
			violations = append(violations, Violation{
				Invariant: "diff-clean",
				Detail:    describeGroups(dr),
				RootKeys:  groupRootKeys(dr),
			})
			break
		}
	}

	// (b) MUST ⊆ MAY everywhere.
	if v := checkMustSubsetMay(lib.Policies); v != "" {
		fail("must-subset-may", v)
	}

	// (d) Export → import → export byte identity.
	exp, err := lib.Policies.ExportJSON()
	if err != nil {
		fail("roundtrip", "export: "+err.Error())
	} else if imported, err := policy.ImportJSON(exp); err != nil {
		fail("roundtrip", "import: "+err.Error())
	} else if exp2, err := imported.ExportJSON(); err != nil {
		fail("roundtrip", "re-export: "+err.Error())
	} else if !bytes.Equal(exp, exp2) {
		fail("roundtrip", fmt.Sprintf("re-export differs (%d vs %d bytes)", len(exp), len(exp2)))
	}

	// (c) Parallel extraction byte-identical to serial (sampled: two
	// extra full extractions per checked round).
	if chk.Parallel && err == nil {
		par, perr := oracle.LoadLibrary(lib.Name, mutated)
		if perr != nil {
			fail("parallel", "reload: "+perr.Error())
			return
		}
		popts := serial
		popts.Parallel = 4
		popts.Summaries = nil
		par.Extract(popts)
		pexp, perr := par.Policies.ExportJSON()
		if perr != nil {
			fail("parallel", "export: "+perr.Error())
		} else if !bytes.Equal(exp, pexp) {
			fail("parallel", fmt.Sprintf("parallel export differs from serial (%d vs %d bytes)", len(pexp), len(exp)))
		}
	}

	// (e) Incremental extraction seeded from the unmutated baseline is
	// byte-identical to a clean rebuild of the mutant (sampled: one clean
	// rebuild plus one — mostly spliced — incremental extraction). Both
	// run under the baseline's name so the exports embed identical
	// metadata, isolating the splicing itself.
	if chk.Incremental {
		checkIncremental(base.Name, mutated, base, serial, fail)
	}
	return violations
}

// groupRootKeys collects the distinct root keys of a spurious diff
// report, sorted; crash-triage fingerprints and coverage keys both
// consume them.
func groupRootKeys(dr *diff.Report) []string {
	seen := map[string]bool{}
	var keys []string
	for _, g := range dr.Groups {
		if !seen[g.RootKey] {
			seen[g.RootKey] = true
			keys = append(keys, g.RootKey)
		}
	}
	sort.Strings(keys)
	return keys
}

// checkIncremental asserts invariant (e) for one mutated bundle: the
// incremental extraction's stats must cover every entry, its exported
// policies must match a clean rebuild byte for byte, and the diff
// reports both produce against the baseline must encode identically.
func checkIncremental(name string, mutated map[string]string, base *oracle.Library, serial oracle.Options, fail func(invariant, detail string)) {
	clean, err := oracle.LoadLibrary(name, mutated)
	if err != nil {
		fail("incremental", "reload: "+err.Error())
		return
	}
	clean.Extract(serial)
	inc, st, err := oracle.ExtractIncremental(base, mutated, serial)
	if err != nil {
		fail("incremental", "incremental extract: "+err.Error())
		return
	}
	if st.Full {
		fail("incremental", "fell back to a full extraction (option key mismatch)")
	}
	if st.Reused+st.Reanalyzed != st.Entries {
		fail("incremental", fmt.Sprintf("stats do not cover the entry set: %+v", *st))
	}
	cexp, cerr := clean.Policies.ExportJSON()
	iexp, ierr := inc.Policies.ExportJSON()
	if cerr != nil || ierr != nil {
		fail("incremental", fmt.Sprintf("export: clean=%v incremental=%v", cerr, ierr))
		return
	}
	if !bytes.Equal(cexp, iexp) {
		fail("incremental", fmt.Sprintf("incremental export differs from clean rebuild (%d vs %d bytes, %d/%d reused)",
			len(iexp), len(cexp), st.Reused, st.Entries))
		return
	}
	for _, dir := range []struct {
		label    string
		cleanRep *diff.Report
		incRep   *diff.Report
	}{
		{"mutant vs baseline", diff.Compare(clean.Policies, base.Policies), diff.Compare(inc.Policies, base.Policies)},
		{"baseline vs mutant", diff.Compare(base.Policies, clean.Policies), diff.Compare(base.Policies, inc.Policies)},
	} {
		cj, cerr := json.Marshal(dir.cleanRep.ToJSON())
		ij, ierr := json.Marshal(dir.incRep.ToJSON())
		if cerr != nil || ierr != nil {
			fail("incremental", fmt.Sprintf("diff encode (%s): clean=%v incremental=%v", dir.label, cerr, ierr))
			return
		}
		if !bytes.Equal(cj, ij) {
			fail("incremental", fmt.Sprintf("diff report (%s) differs between clean and incremental", dir.label))
			return
		}
	}
}

// checkMustSubsetMay returns a description of the first MUST ⊄ MAY
// violation in pp, or "".
func checkMustSubsetMay(pp *policy.ProgramPolicies) string {
	for _, sig := range pp.SortedEntries() {
		ep := pp.Entries[sig]
		for _, ev := range ep.SortedEvents() {
			evp := ep.Events[ev]
			if extra := evp.Must.Minus(evp.May); !extra.IsEmpty() {
				return fmt.Sprintf("%s %v: MUST has %s beyond MAY", sig, ev, extra)
			}
		}
	}
	return ""
}

// describeGroups renders a spurious diff report compactly for a
// violation detail.
func describeGroups(dr *diff.Report) string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%d spurious group(s) between %s and %s:", len(dr.Groups), dr.LibA, dr.LibB)
	for i, g := range dr.Groups {
		if i == 3 {
			fmt.Fprintf(&buf, " ... (%d more)", len(dr.Groups)-i)
			break
		}
		entry := ""
		if len(g.Entries) > 0 {
			entry = " at " + g.Entries[0]
		}
		fmt.Fprintf(&buf, " [%s %s checks=%s%s]", g.Case, g.Category, g.DiffChecks, entry)
	}
	return buf.String()
}
