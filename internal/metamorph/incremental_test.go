package metamorph_test

import (
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/metamorph"
)

// TestIncrementalCampaignAllCorpora is the byte-identity gate CI runs
// for incremental extraction: 25 single-rewrite rounds per builtin
// corpus, each asserting invariant (e) — an extraction seeded from the
// unmutated baseline matches a from-scratch extraction of the mutant
// byte for byte, in the export wire format and in diff reports both
// ways. Mutations stay at 1 so every round is a minimal, single-file
// edit — the workload incremental extraction exists for.
func TestIncrementalCampaignAllCorpora(t *testing.T) {
	for _, lib := range corpus.Libraries() {
		rep, err := metamorph.Run(lib, corpus.Sources(lib), metamorph.CampaignOptions{
			Seed:             4242,
			Rounds:           25,
			Mutations:        1,
			ParallelEvery:    -1, // isolate invariant (e); (c) has its own runs
			IncrementalEvery: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", lib, v)
		}
		if rep.Entries == 0 {
			t.Fatalf("%s: no entry points extracted", lib)
		}
	}
}
