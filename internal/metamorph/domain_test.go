package metamorph_test

import (
	"testing"

	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/metamorph"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// cryptoCampaignParams is campaignParams retargeted at the crypto-API
// misuse domain: same skeleton shape, CryptoGuard check pool, no
// privileged blocks.
func cryptoCampaignParams() gen.Params {
	p := campaignParams()
	p.Domain = secmodel.CryptoDomainID
	p.PrivWrap = 0
	return p
}

func cryptoOracleOptions() oracle.Options {
	opts := oracle.DefaultOptions()
	opts.Domain = secmodel.CryptoAPI()
	return opts
}

// TestMetamorphicCryptoCampaign runs the 25-round campaign over the
// crypto-domain corpus: every invariant (a)-(e) — clean diff, MUST ⊆
// MAY, parallel = serial, export round-trip, incremental splice — must
// hold domain-generically, with extraction, diffing, and the snapshot
// machinery all running under the crypto domain.
func TestMetamorphicCryptoCampaign(t *testing.T) {
	c := gen.Generate(cryptoCampaignParams())
	opts := cryptoOracleOptions()
	rep, err := metamorph.Run("jdk", c.Sources["jdk"], metamorph.CampaignOptions{
		Seed:      2525,
		Rounds:    25,
		Mutations: 8,
		Oracle:    &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("crypto campaign: %s", v)
	}
	if rep.Entries == 0 {
		t.Fatal("no entry points extracted from the crypto corpus")
	}
	t.Logf("crypto: %d rounds over %d entries in %v, rewrites %v",
		rep.Rounds, rep.Entries, rep.Elapsed.Round(1e6), rep.Applied)
}

// TestMetamorphicCryptoGroundTruthSurvival mirrors
// TestMetamorphicGroundTruthSurvival for the crypto domain: after
// independently mutating all three implementations, every seeded misuse
// (dropped IV-freshness, swapped cipher-mode checks, weakened key-size
// MUSTs, ...) must still be reported and nothing spurious may appear.
func TestMetamorphicCryptoGroundTruthSurvival(t *testing.T) {
	c := gen.Generate(gen.CryptoSmall())
	opts := cryptoOracleOptions()
	libs := map[string]*oracle.Library{}
	for i, lib := range []string{"jdk", "harmony", "classpath"} {
		mutated, applied, err := metamorph.MutateSources(c.Sources[lib], int64(300+i), 20)
		if err != nil {
			t.Fatalf("mutating %s: %v", lib, err)
		}
		if len(applied) == 0 {
			t.Fatalf("no mutations applied to %s", lib)
		}
		l, err := oracle.LoadLibrary(lib, mutated)
		if err != nil {
			t.Fatalf("loading mutated %s (after %v): %v", lib, applied, err)
		}
		l.Extract(opts)
		libs[lib] = l
		t.Logf("%s mutated by %v", lib, applied)
	}
	for _, pair := range c.Pairs() {
		rep, err := oracle.Diff(libs[pair[0]], libs[pair[1]])
		if err != nil {
			t.Fatal(err)
		}
		if rep.Domain != secmodel.CryptoDomainID {
			t.Errorf("%v: report domain = %q, want %q", pair, rep.Domain, secmodel.CryptoDomainID)
		}
		for _, problem := range c.VerifyReport(pair, rep) {
			t.Error(problem)
		}
	}
}

// TestGuardClassFrozen pins that the bundle freezes every registered
// domain's guard class, not just the static SecurityManager set: a
// mutator renaming or restructuring CryptoGuard would silently change
// check identities instead of program structure.
func TestGuardClassFrozen(t *testing.T) {
	c := gen.Generate(gen.CryptoSmall())
	b, err := metamorph.ParseBundle(c.Sources["jdk"])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range b.Files {
		if f.Path != "java/security/cryptoguard.mj" {
			continue
		}
		found = true
		if !f.Frozen {
			t.Error("CryptoGuard prelude file is mutable; guard classes must be frozen")
		}
	}
	if !found {
		t.Fatal("crypto corpus bundle has no CryptoGuard prelude file")
	}
}
