package metamorph_test

import (
	"testing"

	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/metamorph"
)

// FuzzMetamorphicDiff fuzzes the campaign's input space — the mutation
// seed and schedule length — over a fixed tiny generated corpus. Every
// execution is one full metamorphic round: mutate, extract, and check all
// four invariants (clean diff, MUST ⊆ MAY, parallel = serial, export
// round-trip). Any violation the fuzzer finds is a minimized, replayable
// (seed, n) pair.
func FuzzMetamorphicDiff(f *testing.F) {
	src := gen.Generate(gen.Params{
		Seed: 7, Classes: 4, MethodsPerClass: 3, CheckFraction: 0.5,
		MaxDepth: 2, WrapperFanout: 1,
		DropCheck: 1, WeakenMust: 1, ConstGuards: 1, PolymorphicNoise: 1,
	}).Sources["jdk"]
	f.Add(int64(1), uint64(4))
	f.Add(int64(-9000), uint64(1))
	f.Add(int64(1723), uint64(16))
	f.Add(int64(0), uint64(0))
	f.Fuzz(func(t *testing.T, seed int64, n uint64) {
		rep, err := metamorph.Run("jdk", src, metamorph.CampaignOptions{
			Seed:          seed,
			Rounds:        1,
			Mutations:     int(n%24) + 1,
			Workers:       1,
			ParallelEvery: 1, // check the parallel-equivalence invariant every round
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Error(v)
		}
	})
}
