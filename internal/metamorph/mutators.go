package metamorph

import (
	"math/rand"

	"policyoracle/internal/ast"
)

// A Mutator is one semantics-preserving program transformation. Apply
// attempts a single rewrite driven by rng and reports whether it changed
// the bundle (false when no safe candidate exists).
//
// Soundness contract: a mutation must never change any extracted policy.
// The analysis keys NativeCall events on method name/arity, field events
// on field name, and parameter events on position — so mutators never
// rename fields, native methods, parameters, or any public/protected
// method (entry-point identity), never move a check across an event, and
// never add or remove API entry points (new methods are always private).
type Mutator struct {
	Name  string
	Apply func(b *Bundle, rng *rand.Rand) bool
}

// Mutators returns the full mutator catalog. The order is fixed: a
// (seed, round) pair identifies one schedule forever.
func Mutators() []Mutator {
	return []Mutator{
		{"rename-local", renameLocal},
		{"rename-helper", renameHelper},
		{"extract-helper", extractHelper},
		{"inline-helper", inlineHelper},
		{"insert-wrapper", insertWrapper},
		{"dead-stmt", deadStatements},
		{"dead-branch", deadBranch},
		{"reorder-stmts", reorderStatements},
		{"reshard-files", reshardFiles},
	}
}

// pick returns a uniformly random element index, or -1 for an empty set.
func pick(rng *rand.Rand, n int) int {
	if n == 0 {
		return -1
	}
	return rng.Intn(n)
}

// ---------------------------------------------------------------------------
// rename-local: alpha-rename one local variable (or catch variable) of
// one method. Locals are invisible to the policy; the only hazard is
// capture, so the new name is bundle-fresh and the old name must not
// shadow or be shadowed ambiguously — we skip names that are also
// fields, classes, or parameters.

func renameLocal(b *Bundle, rng *rand.Rand) bool {
	type cand struct {
		m    methodCtx
		name string
	}
	var cands []cand
	for _, m := range b.methodsWithBody() {
		params := map[string]bool{}
		for _, p := range m.method.Params {
			params[p.Name] = true
		}
		seen := map[string]bool{}
		ast.Inspect(m.method.Body, func(n ast.Node) bool {
			var name string
			switch n := n.(type) {
			case *ast.LocalVarDecl:
				name = n.Name
			case *ast.CatchClause:
				name = n.Name
			default:
				return true
			}
			if seen[name] || params[name] || b.fieldNames[name] || b.classNames[name] ||
				name == "this" || name == "super" {
				return true
			}
			seen[name] = true
			cands = append(cands, cand{m, name})
			return true
		})
	}
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	c := cands[i]
	fresh := b.Fresh(c.name)
	ast.Inspect(c.m.method.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.LocalVarDecl:
			if n.Name == c.name {
				n.Name = fresh
			}
		case *ast.CatchClause:
			if n.Name == c.name {
				n.Name = fresh
			}
		case *ast.VarRef:
			if n.Name == c.name {
				n.Name = fresh
			}
		}
		return true
	})
	return true
}

// ---------------------------------------------------------------------------
// rename-helper: alpha-rename one private concrete method. Method
// resolution is name+arity, class-then-super, and the resolver ignores
// visibility — so soundness needs three class-local facts rather than
// bundle-wide name uniqueness: the class declares the name exactly once;
// every call to the name anywhere resolves inside its own class (never
// walking a super chain that could reach this declaration); and no
// inheritance-related class or interface declares the name (a subclass
// "override" of a private helper would change dynamic dispatch when the
// declaration disappears from the hierarchy). Native methods are
// excluded by construction (no body): their name IS the event identity.

func renameHelper(b *Bundle, rng *rand.Rand) bool {
	var cands []methodCtx
	b.eachClass(func(file *File, td *ast.TypeDecl) {
		for _, md := range td.Methods {
			if !md.Mods.Has(ast.ModPrivate) || md.IsCtor || md.Body == nil {
				continue
			}
			if declsNamed(td, md.Name) != 1 || b.hierarchyShares(td, md.Name) ||
				!callsResolveLocally(b, md.Name) {
				continue
			}
			cands = append(cands, methodCtx{file, td, md})
		}
	})
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	c := cands[i]
	old := c.method.Name
	fresh := b.Fresh(old)
	c.method.Name = fresh
	for _, md := range c.class.Methods {
		if md.Body == nil {
			continue
		}
		ast.Inspect(md.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && call.Name == old {
				call.Name = fresh
			}
			return true
		})
	}
	b.methodCount[old]--
	b.methodCount[fresh]++
	return true
}

// callsResolveLocally reports whether every call to name in the bundle
// (a) uses a nil, this, or own-class receiver and (b) sits in a class
// declaring a method of that name with the call's arity — so name+arity
// class-first resolution stops at the enclosing class, and rewriting the
// name inside one class cannot affect any other. Field-initializer calls
// are included.
func callsResolveLocally(b *Bundle, name string) bool {
	ok := true
	for _, f := range b.Files {
		for _, cls := range f.AST.Types {
			check := func(n ast.Node) bool {
				call, isCall := n.(*ast.CallExpr)
				if !isCall || call.Name != name {
					return true
				}
				if !ownReceiver(call.Recv, cls.Name) ||
					!declaresArity(cls, name, len(call.Args)) {
					ok = false
				}
				return true
			}
			for _, md := range cls.Methods {
				if md.Body != nil {
					ast.Inspect(md.Body, check)
				}
			}
			for _, fd := range cls.Fields {
				if fd.Init != nil {
					ast.Inspect(fd.Init, check)
				}
			}
		}
	}
	return ok
}

// declsNamed counts declarations of name in td.
func declsNamed(td *ast.TypeDecl, name string) int {
	n := 0
	for _, md := range td.Methods {
		if md.Name == name {
			n++
		}
	}
	return n
}

// declaresArity reports whether td declares a method name/arity.
func declaresArity(td *ast.TypeDecl, name string, arity int) bool {
	for _, md := range td.Methods {
		if md.Name == name && len(md.Params) == arity {
			return true
		}
	}
	return false
}

// hierarchyShares reports whether any interface, ancestor, or descendant
// of td (transitively, by simple name, across the whole bundle) also
// declares a method called name — the configurations where changing td's
// declaration of name could change dispatch elsewhere.
func (b *Bundle) hierarchyShares(td *ast.TypeDecl, name string) bool {
	decls := map[string]*ast.TypeDecl{}
	for _, f := range b.Files {
		for _, t := range f.AST.Types {
			if t.IsInterface {
				if declsNamed(t, name) > 0 {
					return true
				}
				continue
			}
			decls[t.Name] = t
		}
	}
	// chain reports whether walking extends-links from start reaches goal.
	chain := func(start, goal string) bool {
		seen := map[string]bool{}
		for cur := start; cur != "" && !seen[cur]; {
			seen[cur] = true
			if cur == goal {
				return true
			}
			t := decls[cur]
			if t == nil {
				return false
			}
			cur = t.Extends
		}
		return false
	}
	for _, t := range decls {
		if t == td || declsNamed(t, name) == 0 {
			continue
		}
		if chain(t.Name, td.Name) || chain(td.Name, t.Name) {
			return true
		}
	}
	return false
}

// ownReceiver reports whether recv is nil, `this`, or the class's own
// simple name (a static qualifier).
func ownReceiver(recv ast.Expr, class string) bool {
	if recv == nil {
		return true
	}
	v, ok := recv.(*ast.VarRef)
	return ok && (v.Name == "this" || v.Name == class)
}

// ---------------------------------------------------------------------------
// extract-helper: move a concrete method's whole body into a fresh
// private helper with identical parameters, return type, and throws; the
// original becomes a one-line delegation. Adds one call edge under every
// policy the method had — check placement relative to events is
// unchanged, and privileged scope propagates to callees, so extracting
// inside doPrivileged run() bodies is equally sound.

func extractHelper(b *Bundle, rng *rand.Rand) bool {
	var cands []methodCtx
	b.eachClass(func(file *File, td *ast.TypeDecl) {
		for _, md := range td.Methods {
			if md.IsCtor || md.Body == nil {
				continue
			}
			// An always-throwing body has no Return in its lowered form,
			// so the original entry records no APIReturn event; the
			// delegation stub's return would add one. Skip those.
			if !hasReturn(md.Body) && alwaysAbrupt(md.Body.Stmts) {
				continue
			}
			cands = append(cands, methodCtx{file, td, md})
		}
	})
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	c := cands[i]
	m := c.method
	fresh := b.Fresh(m.Name)
	mods := ast.ModPrivate
	if m.Mods.Has(ast.ModStatic) {
		mods |= ast.ModStatic
	}
	helper := &ast.MethodDecl{
		Mods:   mods,
		Ret:    m.Ret,
		Name:   fresh,
		Params: append([]ast.Param(nil), m.Params...),
		Throws: append([]string(nil), m.Throws...),
		Body:   m.Body,
	}
	call := &ast.CallExpr{Name: fresh}
	for _, p := range m.Params {
		call.Args = append(call.Args, &ast.VarRef{Name: p.Name})
	}
	var stub ast.Stmt
	if m.Ret.IsVoid() {
		stub = &ast.ExprStmt{X: call}
	} else {
		stub = &ast.ReturnStmt{Value: call}
	}
	m.Body = &ast.Block{Stmts: []ast.Stmt{stub}}
	c.class.Methods = append(c.class.Methods, helper)
	b.methodCount[fresh]++
	return true
}

// ---------------------------------------------------------------------------
// inline-helper: the inverse. A private method h whose body is exactly
// `return g(params...)` (identity forwarding, in order) is bypassed:
// intra-class calls to it are retargeted straight at g. The helper
// declaration stays — dead but well-formed. The h-side conditions mirror
// rename-helper (class-locally unique, all calls resolve locally, no
// hierarchy sharing). The g-side needs less: the retargeted site and h's
// old body sit in the same class, so name+arity resolution walks the
// identical chain and dynamic dispatch sees the identical receiver — we
// only require g to be declared once in the class with matching arity
// and staticness, so the forwarding shape is reproduced exactly.

func inlineHelper(b *Bundle, rng *rand.Rand) bool {
	type cand struct {
		m      methodCtx
		target string
	}
	var cands []cand
	b.eachClass(func(file *File, td *ast.TypeDecl) {
		for _, md := range td.Methods {
			target, ok := forwardTarget(md)
			if !ok || !md.Mods.Has(ast.ModPrivate) {
				continue
			}
			if declsNamed(td, md.Name) != 1 || b.hierarchyShares(td, md.Name) ||
				!callsResolveLocally(b, md.Name) {
				continue
			}
			td2 := methodNamed(td, target)
			if declsNamed(td, target) != 1 || td2 == nil ||
				len(td2.Params) != len(md.Params) ||
				td2.Mods.Has(ast.ModStatic) != md.Mods.Has(ast.ModStatic) {
				continue
			}
			cands = append(cands, cand{methodCtx{file, td, md}, target})
		}
	})
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	c := cands[i]
	name := c.m.method.Name
	changed := false
	for _, md := range c.m.class.Methods {
		if md.Body == nil || md == c.m.method {
			continue
		}
		ast.Inspect(md.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && call.Name == name {
				call.Name = c.target
				changed = true
			}
			return true
		})
	}
	return changed
}

// forwardTarget matches the identity-delegation shape: a body of exactly
// one statement forwarding every parameter, in order, to an unqualified
// call of some other method.
func forwardTarget(md *ast.MethodDecl) (string, bool) {
	if md.IsCtor || md.Body == nil || len(md.Body.Stmts) != 1 {
		return "", false
	}
	var call *ast.CallExpr
	switch s := md.Body.Stmts[0].(type) {
	case *ast.ReturnStmt:
		call, _ = s.Value.(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	}
	if call == nil || call.Recv != nil || call.Name == md.Name ||
		call.Name == "this" || call.Name == "super" ||
		len(call.Args) != len(md.Params) {
		return "", false
	}
	for i, a := range call.Args {
		v, ok := a.(*ast.VarRef)
		if !ok || v.Name != md.Params[i].Name {
			return "", false
		}
	}
	return call.Name, true
}

// hasReturn reports whether any ReturnStmt appears under n.
func hasReturn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// alwaysAbrupt reports whether the statement list definitely never
// completes normally (every path returns or throws). Conservative:
// false when unsure.
func alwaysAbrupt(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if stmtAlwaysAbrupt(s) {
			return true
		}
	}
	return false
}

func stmtAlwaysAbrupt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.ThrowStmt:
		return true
	case *ast.Block:
		return alwaysAbrupt(s.Stmts)
	case *ast.IfStmt:
		return s.Else != nil && stmtAlwaysAbrupt(s.Then) && stmtAlwaysAbrupt(s.Else)
	case *ast.SyncStmt:
		return alwaysAbrupt(s.Body.Stmts)
	case *ast.DoWhileStmt:
		return stmtAlwaysAbrupt(s.Body)
	}
	return false
}

// methodNamed returns td's first declaration of name, or nil.
func methodNamed(td *ast.TypeDecl, name string) *ast.MethodDecl {
	for _, md := range td.Methods {
		if md.Name == name {
			return md
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// insert-wrapper: interpose a fresh private delegator between one
// unqualified call site and its same-class callee. The wrapper forwards
// every argument unchanged, so the call chain grows one private frame —
// invisible to entry-point identity and to event keys (wrapping a call
// to a native method moves the NativeCall one frame down; its name/arity
// key and dominating checks are untouched).

func insertWrapper(b *Bundle, rng *rand.Rand) bool {
	type cand struct {
		class  *ast.TypeDecl
		call   *ast.CallExpr
		callee *ast.MethodDecl
	}
	var cands []cand
	b.eachClass(func(file *File, td *ast.TypeDecl) {
		byName := map[string][]*ast.MethodDecl{}
		for _, md := range td.Methods {
			byName[md.Name] = append(byName[md.Name], md)
		}
		for _, md := range td.Methods {
			if md.Body == nil {
				continue
			}
			ast.Inspect(md.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Recv != nil || call.Name == "this" || call.Name == "super" {
					return true
				}
				decls := byName[call.Name]
				if len(decls) != 1 {
					return true
				}
				callee := decls[0]
				if callee.IsCtor || len(callee.Params) != len(call.Args) {
					return true
				}
				cands = append(cands, cand{td, call, callee})
				return true
			})
		}
	})
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	c := cands[i]
	fresh := b.Fresh(c.callee.Name)
	mods := ast.ModPrivate
	if c.callee.Mods.Has(ast.ModStatic) {
		mods |= ast.ModStatic
	}
	wrapper := &ast.MethodDecl{
		Mods:   mods,
		Ret:    c.callee.Ret,
		Name:   fresh,
		Throws: append([]string(nil), c.callee.Throws...),
	}
	inner := &ast.CallExpr{Name: c.callee.Name}
	for _, p := range c.callee.Params {
		pn := b.Fresh("a")
		wrapper.Params = append(wrapper.Params, ast.Param{Type: p.Type, Name: pn})
		inner.Args = append(inner.Args, &ast.VarRef{Name: pn})
	}
	var body ast.Stmt
	if c.callee.Ret.IsVoid() && !c.callee.IsCtor {
		body = &ast.ExprStmt{X: inner}
	} else {
		body = &ast.ReturnStmt{Value: inner}
	}
	wrapper.Body = &ast.Block{Stmts: []ast.Stmt{body}}
	c.class.Methods = append(c.class.Methods, wrapper)
	c.call.Name = fresh
	b.methodCount[fresh]++
	return true
}

// ---------------------------------------------------------------------------
// dead-stmt: insert a fresh, pure local computation at a reachable point
// of a statement list. No calls, no events, no conditions: nothing the
// analysis tracks.

func deadStatements(b *Bundle, rng *rand.Rand) bool {
	list, idx, ok := randomInsertionPoint(b, rng)
	if !ok {
		return false
	}
	fresh := b.Fresh("v")
	decl := &ast.LocalVarDecl{
		Type: ast.TypeRef{Name: "int"},
		Name: fresh,
		Init: &ast.Literal{Kind: ast.LitInt, Int: int64(rng.Intn(1000))},
	}
	bump := &ast.AssignStmt{
		Target: &ast.VarRef{Name: fresh},
		Op:     "=",
		Value: &ast.BinaryExpr{
			Op: "+",
			X:  &ast.VarRef{Name: fresh},
			Y:  &ast.Literal{Kind: ast.LitInt, Int: 1},
		},
	}
	insertStmts(list, idx, decl, bump)
	return true
}

// dead-branch: insert `if (k < k') { ... }` with a constant-false
// comparison. With ICP the branch folds away; without it the analysis
// joins an empty then-path against the fallthrough path — identical
// check sets either way, so MAY, MUST, and path policies are unchanged.

func deadBranch(b *Bundle, rng *rand.Rand) bool {
	list, idx, ok := randomInsertionPoint(b, rng)
	if !ok {
		return false
	}
	lo := int64(rng.Intn(50))
	fresh := b.Fresh("d")
	branch := &ast.IfStmt{
		Cond: &ast.BinaryExpr{
			Op: "<",
			X:  &ast.Literal{Kind: ast.LitInt, Int: lo + 1 + int64(rng.Intn(50))},
			Y:  &ast.Literal{Kind: ast.LitInt, Int: lo},
		},
		Then: &ast.Block{Stmts: []ast.Stmt{
			&ast.LocalVarDecl{
				Type: ast.TypeRef{Name: "int"},
				Name: fresh,
				Init: &ast.Literal{Kind: ast.LitInt, Int: int64(rng.Intn(1000))},
			},
		}},
	}
	insertStmts(list, idx, branch)
	return true
}

// randomInsertionPoint picks a uniformly random (statement list, index)
// over all mutable method bodies, with the index bounded by the list's
// first terminator so inserted code stays reachable.
func randomInsertionPoint(b *Bundle, rng *rand.Rand) (*[]ast.Stmt, int, bool) {
	type point struct {
		list *[]ast.Stmt
		idx  int
	}
	var points []point
	for _, m := range b.methodsWithBody() {
		ast.StmtLists(m.method.Body, func(list *[]ast.Stmt) {
			limit := len(*list)
			for i, s := range *list {
				if isTerminator(s) {
					limit = i
					break
				}
			}
			for i := 0; i <= limit; i++ {
				points = append(points, point{list, i})
			}
		})
	}
	i := pick(rng, len(points))
	if i < 0 {
		return nil, 0, false
	}
	return points[i].list, points[i].idx, true
}

// isTerminator reports whether s unconditionally leaves the enclosing
// statement list.
func isTerminator(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ReturnStmt, *ast.ThrowStmt, *ast.BreakStmt, *ast.ContinueStmt:
		return true
	}
	return false
}

// insertStmts splices stmts into *list at idx.
func insertStmts(list *[]ast.Stmt, idx int, stmts ...ast.Stmt) {
	l := *list
	out := make([]ast.Stmt, 0, len(l)+len(stmts))
	out = append(out, l[:idx]...)
	out = append(out, stmts...)
	out = append(out, l[idx:]...)
	*list = out
}

// ---------------------------------------------------------------------------
// reorder-stmts: swap two adjacent statements that are both pure (no
// calls, allocations, array accesses, casts, or division — nothing that
// raises an event or can throw) and touch disjoint names. Name-based
// independence is sound here because two occurrences of one name inside
// one method body denote the same storage unless a declaration sits
// between them — and a declaration involved in the swap always conflicts
// on the declared name itself.

func reorderStatements(b *Bundle, rng *rand.Rand) bool {
	type swap struct {
		list *[]ast.Stmt
		idx  int
	}
	var cands []swap
	for _, m := range b.methodsWithBody() {
		ast.StmtLists(m.method.Body, func(list *[]ast.Stmt) {
			l := *list
			for i := 0; i+1 < len(l); i++ {
				r1, w1, ok1 := stmtEffects(l[i])
				r2, w2, ok2 := stmtEffects(l[i+1])
				if !ok1 || !ok2 {
					continue
				}
				if intersects(w1, r2) || intersects(w1, w2) || intersects(w2, r1) {
					continue
				}
				cands = append(cands, swap{list, i})
			}
		})
	}
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	c := cands[i]
	l := *c.list
	l[c.idx], l[c.idx+1] = l[c.idx+1], l[c.idx]
	return true
}

// stmtEffects classifies s as reorderable, returning the names it reads
// and writes. Only assignment-shaped statements over pure expressions
// qualify.
func stmtEffects(s ast.Stmt) (reads, writes map[string]bool, ok bool) {
	reads, writes = map[string]bool{}, map[string]bool{}
	switch s := s.(type) {
	case *ast.LocalVarDecl:
		if !pureExpr(s.Init, reads) {
			return nil, nil, false
		}
		writes[s.Name] = true
	case *ast.AssignStmt:
		v, isVar := s.Target.(*ast.VarRef)
		if !isVar || v.Name == "this" || opCanThrow(s.Op) || !pureExpr(s.Value, reads) {
			return nil, nil, false
		}
		if s.Op != "=" {
			reads[v.Name] = true
		}
		writes[v.Name] = true
	case *ast.ExprStmt:
		inc, isInc := s.X.(*ast.IncDecExpr)
		if !isInc {
			return nil, nil, false
		}
		v, isVar := inc.X.(*ast.VarRef)
		if !isVar {
			return nil, nil, false
		}
		reads[v.Name] = true
		writes[v.Name] = true
	default:
		return nil, nil, false
	}
	return reads, writes, true
}

// opCanThrow reports whether the compound assignment op can throw
// (integer division by zero).
func opCanThrow(op string) bool { return op == "/=" || op == "%=" }

// pureExpr reports whether e is side-effect- and exception-free,
// accumulating the variable names it reads. Division, casts, calls,
// allocations, field and array accesses are all excluded: they can
// throw, raise events, or alias state the name-based check cannot see.
func pureExpr(e ast.Expr, reads map[string]bool) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.Literal:
		return true
	case *ast.VarRef:
		if e.Name != "this" {
			reads[e.Name] = true
		}
		return true
	case *ast.UnaryExpr:
		return pureExpr(e.X, reads)
	case *ast.BinaryExpr:
		if e.Op == "/" || e.Op == "%" {
			return false
		}
		return pureExpr(e.X, reads) && pureExpr(e.Y, reads)
	case *ast.InstanceOfExpr:
		return pureExpr(e.X, reads)
	default:
		return false
	}
}

// intersects reports whether two name sets share an element.
func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// reshard-files: regroup type declarations across files — split a
// multi-class file into one file per class, or merge all mutable files
// of one package into one. File boundaries carry no semantics (policies
// key on qualified signatures), so only the loader's file ordering is
// exercised — exactly the determinism the byte-identity invariants pin.

func reshardFiles(b *Bundle, rng *rand.Rand) bool {
	if rng.Intn(2) == 0 && splitFile(b, rng) {
		return true
	}
	return mergePackage(b, rng)
}

func splitFile(b *Bundle, rng *rand.Rand) bool {
	var cands []int
	for i, f := range b.Files {
		if !f.Frozen && len(f.AST.Types) > 1 {
			cands = append(cands, i)
		}
	}
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	src := b.Files[cands[i]]
	dir := pathDir(src.Path)
	if dir != "" {
		dir += "/"
	}
	var out []*File
	for _, f := range b.Files {
		if f != src {
			out = append(out, f)
		}
	}
	for _, td := range src.AST.Types {
		path := b.freshPath(dir + "mzsplit_" + td.Name)
		out = append(out, &File{
			Path: path,
			AST: &ast.File{
				Package: src.AST.Package,
				Imports: append([]string(nil), src.AST.Imports...),
				Types:   []*ast.TypeDecl{td},
				Name:    path,
			},
		})
	}
	b.setFiles(out)
	return true
}

func mergePackage(b *Bundle, rng *rand.Rand) bool {
	byPkg := map[string][]*File{}
	var pkgs []string
	for _, f := range b.Files {
		if f.Frozen {
			continue
		}
		if len(byPkg[f.AST.Package]) == 0 {
			pkgs = append(pkgs, f.AST.Package)
		}
		byPkg[f.AST.Package] = append(byPkg[f.AST.Package], f)
	}
	var cands []string
	for _, p := range pkgs {
		if len(byPkg[p]) > 1 {
			cands = append(cands, p)
		}
	}
	i := pick(rng, len(cands))
	if i < 0 {
		return false
	}
	group := byPkg[cands[i]]
	merged := &ast.File{Package: group[0].AST.Package}
	seen := map[string]bool{}
	for _, f := range group {
		for _, imp := range f.AST.Imports {
			if !seen[imp] {
				seen[imp] = true
				merged.Imports = append(merged.Imports, imp)
			}
		}
		merged.Types = append(merged.Types, f.AST.Types...)
	}
	dir := pathDir(group[0].Path)
	if dir != "" {
		dir += "/"
	}
	path := b.freshPath(dir + "mzmerge")
	merged.Name = path
	inGroup := map[*File]bool{}
	for _, f := range group {
		inGroup[f] = true
	}
	var out []*File
	for _, f := range b.Files {
		if !inGroup[f] {
			out = append(out, f)
		}
	}
	out = append(out, &File{Path: path, AST: merged})
	b.setFiles(out)
	return true
}

// pathDir is the directory part of a slash path ("" for a bare name).
func pathDir(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return ""
}

// freshPath mints a source path not used by any current file.
func (b *Bundle) freshPath(prefix string) string {
	for {
		cand := prefix + "_" + itoa(b.fresh) + ".mj"
		b.fresh++
		taken := false
		for _, f := range b.Files {
			if f.Path == cand {
				taken = true
				break
			}
		}
		if !taken {
			return cand
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// setFiles replaces the file set, keeping deterministic path order so
// candidate enumeration stays a pure function of (seed, round).
func (b *Bundle) setFiles(files []*File) {
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && files[j-1].Path > files[j].Path; j-- {
			files[j-1], files[j] = files[j], files[j-1]
		}
	}
	b.Files = files
}
