package metamorph_test

import (
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/metamorph"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
)

// campaignParams sizes a generated corpus small enough for hundreds of
// mutate+extract rounds in unit-test time but with every structural
// feature the mutators must handle: helper nesting, wrappers, privileged
// blocks, guards, loops, and seeded deviations.
func campaignParams() gen.Params {
	return gen.Params{
		Seed: 1723, Classes: 8, MethodsPerClass: 4, CheckFraction: 0.5,
		MaxDepth: 3, WrapperFanout: 1,
		DropCheck: 1, WeakenMust: 1, SwapCheck: 1, PrivWrap: 1,
		ExtraCheck: 1, ConstGuards: 1, UniquePerLib: 1, PolymorphicNoise: 2,
		FNConditionDivergence: 1, FNAllWrong: 1,
	}
}

// TestMetamorphicCampaignGeneratedCorpus is the tentpole invariant run:
// 200+ seeded mutation rounds over the generated corpus, each asserting
// the mutant diffs clean against its original, MUST ⊆ MAY everywhere,
// export round-trips byte-identically, and (sampled) parallel extraction
// matches serial byte-for-byte.
func TestMetamorphicCampaignGeneratedCorpus(t *testing.T) {
	c := gen.Generate(campaignParams())
	const roundsPerLib = 70 // 3 libs x 70 = 210 rounds total
	applied := map[string]int{}
	for _, lib := range []string{"jdk", "harmony", "classpath"} {
		rep, err := metamorph.Run(lib, c.Sources[lib], metamorph.CampaignOptions{
			Seed:      9000,
			Rounds:    roundsPerLib,
			Mutations: 8,
		})
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", lib, v)
		}
		if rep.Entries == 0 {
			t.Fatalf("%s: no entry points extracted", lib)
		}
		for m, n := range rep.Applied {
			applied[m] += n
		}
		t.Logf("%s: %d rounds over %d entries in %v, rewrites %v",
			lib, rep.Rounds, rep.Entries, rep.Elapsed.Round(1e6), rep.Applied)
	}
	// Every mutator in the catalog must have fired: a mutator that never
	// finds a candidate is dead weight and tests nothing.
	for _, m := range metamorph.Mutators() {
		if applied[m.Name] == 0 {
			t.Errorf("mutator %s never applied in %d rounds", m.Name, 3*roundsPerLib)
		}
	}
}

// TestMetamorphicBuiltinCorpora runs a short campaign over the three
// hand-written corpus implementations — code the generator did not
// shape, with its own idioms (interfaces, inheritance, switch guards).
func TestMetamorphicBuiltinCorpora(t *testing.T) {
	for _, lib := range corpus.Libraries() {
		rep, err := metamorph.Run(lib, corpus.Sources(lib), metamorph.CampaignOptions{
			Seed:   1234,
			Rounds: 12,
		})
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", lib, v)
		}
	}
}

// TestMetamorphicSummaryCacheCampaign is the summary-cache leg of the
// campaign: 25 rounds where every extraction — baseline, mutants, and
// the parallel/incremental invariant re-extractions — shares one
// cross-library summary cache. Mutants change method bodies, so the
// cache serves a mix of valid splices (untouched entries) and
// invalidated pins every round; any unsound reuse surfaces as an
// invariant (a)-(e) violation, since those all compare extraction
// outputs byte-for-byte.
func TestMetamorphicSummaryCacheCampaign(t *testing.T) {
	c := gen.Generate(campaignParams())
	opts := oracle.DefaultOptions()
	opts.Summaries = oracle.NewSummaryCache(0)
	rep, err := metamorph.Run("jdk", c.Sources["jdk"], metamorph.CampaignOptions{
		Seed:      4321,
		Rounds:    25,
		Mutations: 8,
		Oracle:    &opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("summary-cache campaign: %s", v)
	}
	if hits, misses := opts.Summaries.Stats(); hits == 0 || misses == 0 {
		t.Errorf("campaign exercised no cache mix: hits=%d misses=%d", hits, misses)
	}
}

// TestMetamorphicGroundTruthSurvival asserts mutations never mask real
// bugs: after independently mutating all three implementations, every
// seeded ground-truth deviation must still be reported, and nothing
// spurious may appear — gen's VerifyReport hook run on mutated sources.
func TestMetamorphicGroundTruthSurvival(t *testing.T) {
	c := gen.Generate(gen.Small())
	libs := map[string]*oracle.Library{}
	for i, lib := range []string{"jdk", "harmony", "classpath"} {
		mutated, applied, err := metamorph.MutateSources(c.Sources[lib], int64(100+i), 20)
		if err != nil {
			t.Fatalf("mutating %s: %v", lib, err)
		}
		if len(applied) == 0 {
			t.Fatalf("no mutations applied to %s", lib)
		}
		l, err := oracle.LoadLibrary(lib, mutated)
		if err != nil {
			t.Fatalf("loading mutated %s (after %v): %v", lib, applied, err)
		}
		l.Extract(oracle.DefaultOptions())
		libs[lib] = l
		t.Logf("%s mutated by %v", lib, applied)
	}
	for _, pair := range c.Pairs() {
		rep, err := oracle.Diff(libs[pair[0]], libs[pair[1]])
		if err != nil {
			t.Fatal(err)
		}
		for _, problem := range c.VerifyReport(pair, rep) {
			t.Error(problem)
		}
	}
}

// TestMutateSourcesDeterministic pins replayability: one (seed, n) pair
// must always produce the identical mutant.
func TestMutateSourcesDeterministic(t *testing.T) {
	c := gen.Generate(campaignParams())
	a, appA, err := metamorph.MutateSources(c.Sources["jdk"], 77, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, appB, err := metamorph.MutateSources(c.Sources["jdk"], 77, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(appA) != len(appB) {
		t.Fatalf("schedules differ: %v vs %v", appA, appB)
	}
	if len(a) != len(b) {
		t.Fatalf("file sets differ: %d vs %d files", len(a), len(b))
	}
	for f, src := range a {
		if b[f] != src {
			t.Errorf("file %s differs between identical seeds", f)
		}
	}
	// And a different seed must (overwhelmingly) differ somewhere.
	d, _, err := metamorph.MutateSources(c.Sources["jdk"], 78, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := len(d) == len(a)
	if same {
		for f, src := range a {
			if d[f] != src {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 77 and 78 produced byte-identical mutants")
	}
}

// TestCampaignMetrics checks the polora-fuzz telemetry wiring: rounds,
// per-mutator rewrites, and round latency all land in the registry.
func TestCampaignMetrics(t *testing.T) {
	c := gen.Generate(campaignParams())
	reg := telemetry.New()
	m := telemetry.NewMetamorphMetrics(reg)
	rep, err := metamorph.Run("jdk", c.Sources["jdk"], metamorph.CampaignOptions{
		Seed: 5, Rounds: 4, Mutations: 6, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Rounds.Value(); got != 4 {
		t.Errorf("rounds counter = %v, want 4", got)
	}
	if m.RoundDuration.Count() != 4 {
		t.Errorf("round duration observations = %v, want 4", m.RoundDuration.Count())
	}
	total := 0.0
	for _, mu := range metamorph.Mutators() {
		total += m.Mutations.With(mu.Name).Value()
	}
	if want := 0; len(rep.Applied) > 0 && total == float64(want) {
		t.Errorf("no mutation counters recorded despite %v", rep.Applied)
	}
}

// TestCampaignRejectsUnsoundOptions pins the two semantic constraints
// the mutator catalog depends on.
func TestCampaignRejectsUnsoundOptions(t *testing.T) {
	c := gen.Generate(campaignParams())
	broad := oracle.DefaultOptions()
	broad.Events = secmodel.BroadEvents
	if _, err := metamorph.Run("jdk", c.Sources["jdk"], metamorph.CampaignOptions{
		Rounds: 1, Oracle: &broad,
	}); err == nil {
		t.Error("broad-events campaign accepted; ParamAccess events are entry-frame relative")
	}
	depth := oracle.DefaultOptions()
	depth.MaxDepth = 3
	if _, err := metamorph.Run("jdk", c.Sources["jdk"], metamorph.CampaignOptions{
		Rounds: 1, Oracle: &depth,
	}); err == nil {
		t.Error("bounded-depth campaign accepted; mutators add call frames")
	}
}
