package metamorph_test

import (
	"testing"

	"policyoracle/internal/corpus"
	"policyoracle/internal/metamorph"
)

// TestApplyStepsDeterministic pins the replay primitive crash triage
// is built on: the same trace over the same sources renders identical
// mutated sources, and each step's private seed means a subset of the
// trace replays without disturbing the surviving steps.
func TestApplyStepsDeterministic(t *testing.T) {
	src := corpus.Sources("jdk")
	trace := []metamorph.Step{
		{Mutator: "dead-stmt", Seed: 101},
		{Mutator: "rename-local", Seed: 202},
		{Mutator: "dead-branch", Seed: 303},
	}
	a, appliedA, err := metamorph.ApplySteps(src, trace)
	if err != nil {
		t.Fatal(err)
	}
	b, appliedB, err := metamorph.ApplySteps(src, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("file counts differ: %d vs %d", len(a), len(b))
	}
	for p, s := range a {
		if b[p] != s {
			t.Fatalf("replay diverged in %s", p)
		}
	}
	if len(appliedA) == 0 {
		t.Fatal("no step applied")
	}
	if len(appliedA) != len(appliedB) {
		t.Fatalf("applied lists differ: %v vs %v", appliedA, appliedB)
	}

	// Dropping the middle step must not change what the remaining
	// steps do: their seeds are private, so the subset still applies.
	subset := []metamorph.Step{trace[0], trace[2]}
	c, appliedC, err := metamorph.ApplySteps(src, subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(appliedC) == 0 {
		t.Fatal("subset applied nothing")
	}
	same := 0
	for p, s := range c {
		if a[p] == s {
			same++
		}
	}
	if same == 0 {
		t.Error("subset shares no files with the full replay; seeds are not private")
	}
}

// TestApplyStepsUnknownMutator pins the error contract for corrupt
// reproducer bundles.
func TestApplyStepsUnknownMutator(t *testing.T) {
	src := corpus.Sources("jdk")
	if _, _, err := metamorph.ApplySteps(src, []metamorph.Step{{Mutator: "no-such", Seed: 1}}); err == nil {
		t.Fatal("unknown mutator in trace did not error")
	}
}

// TestMutatorByName covers the catalog lookup both ways.
func TestMutatorByName(t *testing.T) {
	for _, m := range metamorph.Mutators() {
		got, ok := metamorph.MutatorByName(m.Name)
		if !ok || got.Name != m.Name {
			t.Errorf("MutatorByName(%q) = %q, %v", m.Name, got.Name, ok)
		}
	}
	if _, ok := metamorph.MutatorByName("bogus"); ok {
		t.Error("MutatorByName accepted a bogus name")
	}
}

// TestRunReportsAttempted pins the applied-vs-attempted split on the
// classic runner: every mutator draw is counted, failed applications
// included, and applied never exceeds attempted. Before the redraw fix
// a mutator with no applicable site silently burned its draw without
// being recorded, hiding schedule starvation.
func TestRunReportsAttempted(t *testing.T) {
	rep, err := metamorph.Run("jdk", corpus.Sources("jdk"), metamorph.CampaignOptions{
		Seed: 77, Rounds: 6, Mutations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Attempted) == 0 {
		t.Fatal("report carries no attempted counts")
	}
	var attempted int
	for m, n := range rep.Attempted {
		attempted += n
		if rep.Applied[m] > n {
			t.Errorf("%s: applied %d > attempted %d", m, rep.Applied[m], n)
		}
	}
	if attempted > 6*5 {
		t.Errorf("attempted %d exceeds rounds x mutations = 30", attempted)
	}
	for m := range rep.Applied {
		if rep.Attempted[m] == 0 {
			t.Errorf("%s applied without an attempted count", m)
		}
	}
}
