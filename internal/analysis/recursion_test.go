package analysis

import (
	"strings"
	"testing"

	"policyoracle/internal/secmodel"
)

const mutualRecSrc = `
package java.lang;
public class MR {
  SecurityManager sm;
  public void a(int n) {
    sm.checkWrite("x");
    if (n > 0) {
      b(n - 1);
    }
    op0();
  }
  void b(int n) {
    if (n > 0) {
      a(n - 1);
    }
  }
  native void op0();
}
`

// TestRecursionBoundConsistency: the bounded-traversal alternative of
// Section 4.2 must converge and agree with the cutoff implementation on
// policies whose fixed point is reached within the bound.
func TestRecursionBoundConsistency(t *testing.T) {
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	var results []string
	for _, bound := range []int{0, 1, 3} {
		cfg := DefaultConfig(Must)
		cfg.RecursionBound = bound
		r := analyzeOne(t, cfg, "java.lang.MR", "a", mutualRecSrc)
		results = append(results, eventResult(t, r, nat).Checks.String())
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("bound sweep disagrees: %v", results)
		}
	}
	if results[0] != setOf(t, "checkWrite", 1).String() {
		t.Errorf("policy = %s", results[0])
	}
}

// TestRecursionBoundExtraTraversals verifies the bound actually re-enters
// recursive methods (more method analyses with a higher bound).
func TestRecursionBoundExtraTraversals(t *testing.T) {
	run := func(bound int) int {
		p, res := buildProgram(t, mutualRecSrc)
		cfg := DefaultConfig(Must)
		cfg.RecursionBound = bound
		cfg.Memo = MemoNone
		a := New(p, res, cfg)
		for _, m := range p.Types.EntryPoints() {
			a.AnalyzeEntry(m)
		}
		return a.Stats().MethodAnalyses
	}
	if base, deep := run(0), run(2); deep <= base {
		t.Errorf("bound 2 (%d analyses) should exceed bound 0 (%d)", deep, base)
	}
}

// memoPollutionSrc has two entry points sharing helper h, which sits on
// the call cycle a→h→a. Analyzing entry a first cuts the cycle at the
// nested a, so h's summary computed there is missing a's op0 event; that
// summary must not be memoized, or entry b (which reaches h outside the
// cycle) silently inherits the truncation.
const memoPollutionSrc = `
package java.lang;
public class MP {
  SecurityManager sm;
  public void a(int n) {
    if (n > 0) {
      h(n - 1);
    }
    op0();
  }
  void h(int n) {
    sm.checkRead("f");
    if (n > 0) {
      a(n - 1);
    }
    op1();
  }
  public void b(int n) {
    h(n);
    op2();
  }
  native void op0();
  native void op1();
  native void op2();
}
`

// TestMemoNotPollutedByRecursionCutoff: under MemoGlobal, every entry
// point's MUST policy must match a MemoNone run — in particular the
// second entry (b), which previously hit a cached helper summary that
// had been computed beneath entry a's recursion cutoff.
func TestMemoNotPollutedByRecursionCutoff(t *testing.T) {
	run := func(memo MemoMode) map[string]*EntryResult {
		p, res := buildProgram(t, memoPollutionSrc)
		cfg := DefaultConfig(Must)
		cfg.Memo = memo
		a := New(p, res, cfg)
		out := make(map[string]*EntryResult)
		for _, m := range p.Types.EntryPoints() { // sorted: a(int) before b(int)
			out[m.Qualified()] = a.AnalyzeEntry(m)
		}
		return out
	}
	got := run(MemoGlobal)
	want := run(MemoNone)
	for sig, w := range want {
		g := got[sig]
		if g == nil {
			t.Fatalf("entry %s missing under MemoGlobal", sig)
		}
		if len(g.Events) != len(w.Events) {
			t.Errorf("%s: MemoGlobal has %d events (%v), MemoNone has %d (%v)",
				sig, len(g.Events), g.SortedEvents(), len(w.Events), w.SortedEvents())
		}
		for ev, wer := range w.Events {
			ger := g.Events[ev]
			if ger == nil {
				t.Errorf("%s: event %s dropped under MemoGlobal", sig, ev)
				continue
			}
			if ger.Checks != wer.Checks {
				t.Errorf("%s/%s: MemoGlobal checks = %s, MemoNone = %s",
					sig, ev, ger.Checks, wer.Checks)
			}
		}
	}
	// The concrete symptom: b must still see a's op0 event, guarded by h's
	// checkRead, exactly as in the unmemoized run.
	var bRes *EntryResult
	for sig, r := range got {
		if strings.Contains(sig, ".b(") {
			bRes = r
		}
	}
	if bRes == nil {
		t.Fatal("entry b not analyzed")
	}
	op0 := eventResult(t, bRes, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
	if op0.Checks != setOf(t, "checkRead", 1) {
		t.Errorf("b's op0 checks = %s, want %s", op0.Checks, setOf(t, "checkRead", 1))
	}
}

// TestSelfRecursionWithCheckAfterCall: events after the recursive call see
// the check regardless of bound.
func TestSelfRecursionWithCheckAfterCall(t *testing.T) {
	src := `
package java.lang;
public class SR {
  SecurityManager sm;
  public void walk(int n) {
    if (n > 0) {
      walk(n - 1);
    }
    sm.checkRead("f");
    op0();
  }
  native void op0();
}
`
	for _, bound := range []int{0, 2} {
		cfg := DefaultConfig(Must)
		cfg.RecursionBound = bound
		r := analyzeOne(t, cfg, "java.lang.SR", "walk", src)
		nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
		if nat.Checks != setOf(t, "checkRead", 1) {
			t.Errorf("bound %d: checks = %s", bound, nat.Checks)
		}
	}
}
