package analysis

import (
	"testing"

	"policyoracle/internal/secmodel"
)

const mutualRecSrc = `
package java.lang;
public class MR {
  SecurityManager sm;
  public void a(int n) {
    sm.checkWrite("x");
    if (n > 0) {
      b(n - 1);
    }
    op0();
  }
  void b(int n) {
    if (n > 0) {
      a(n - 1);
    }
  }
  native void op0();
}
`

// TestRecursionBoundConsistency: the bounded-traversal alternative of
// Section 4.2 must converge and agree with the cutoff implementation on
// policies whose fixed point is reached within the bound.
func TestRecursionBoundConsistency(t *testing.T) {
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	var results []string
	for _, bound := range []int{0, 1, 3} {
		cfg := DefaultConfig(Must)
		cfg.RecursionBound = bound
		r := analyzeOne(t, cfg, "java.lang.MR", "a", mutualRecSrc)
		results = append(results, eventResult(t, r, nat).Checks.String())
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("bound sweep disagrees: %v", results)
		}
	}
	if results[0] != setOf(t, "checkWrite", 1).String() {
		t.Errorf("policy = %s", results[0])
	}
}

// TestRecursionBoundExtraTraversals verifies the bound actually re-enters
// recursive methods (more method analyses with a higher bound).
func TestRecursionBoundExtraTraversals(t *testing.T) {
	run := func(bound int) int {
		p, res := buildProgram(t, mutualRecSrc)
		cfg := DefaultConfig(Must)
		cfg.RecursionBound = bound
		cfg.Memo = MemoNone
		a := New(p, res, cfg)
		for _, m := range p.Types.EntryPoints() {
			a.AnalyzeEntry(m)
		}
		return a.Stats().MethodAnalyses
	}
	if base, deep := run(0), run(2); deep <= base {
		t.Errorf("bound 2 (%d analyses) should exceed bound 0 (%d)", deep, base)
	}
}

// TestSelfRecursionWithCheckAfterCall: events after the recursive call see
// the check regardless of bound.
func TestSelfRecursionWithCheckAfterCall(t *testing.T) {
	src := `
package java.lang;
public class SR {
  SecurityManager sm;
  public void walk(int n) {
    if (n > 0) {
      walk(n - 1);
    }
    sm.checkRead("f");
    op0();
  }
  native void op0();
}
`
	for _, bound := range []int{0, 2} {
		cfg := DefaultConfig(Must)
		cfg.RecursionBound = bound
		r := analyzeOne(t, cfg, "java.lang.SR", "walk", src)
		nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
		if nat.Checks != setOf(t, "checkRead", 1) {
			t.Errorf("bound %d: checks = %s", bound, nat.Checks)
		}
	}
}
