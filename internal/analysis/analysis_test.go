package analysis

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/callgraph"
	"policyoracle/internal/ir"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// prelude is a minimal java.lang/java.security runtime shared by tests.
const prelude = `
package java.lang;
public class Object { }
public class String { }
public class Exception { }
public class SecurityManager {
  public void checkPermission(Object perm) { }
  public void checkConnect(String host, int port) { }
  public void checkAccept(String host, int port) { }
  public void checkMulticast(Object addr) { }
  public void checkExit(int status) { }
  public void checkLink(String lib) { }
  public void checkRead(String file) { }
  public void checkWrite(String file) { }
  public void checkListen(int port) { }
}
public class System {
  private static SecurityManager security;
  public static SecurityManager getSecurityManager() { return security; }
  public static void exit(int status) {
    SecurityManager sm = getSecurityManager();
    sm.checkExit(status);
    halt0(status);
  }
  static native void halt0(int status);
}
public class AccessController {
  public static Object doPrivileged(PrivilegedAction action) {
    return action.run();
  }
}
public interface PrivilegedAction {
  Object run();
}
`

func buildProgram(t testing.TB, srcs ...string) (*ir.Program, *callgraph.Resolver) {
	t.Helper()
	var diags lang.Diagnostics
	var files []*ast.File
	for _, src := range append([]string{prelude}, srcs...) {
		files = append(files, parser.ParseFile("t.mj", src, &diags))
	}
	tp := types.Build("test", files, &diags)
	p := ir.LowerProgram(tp, &diags)
	if diags.HasErrors() {
		t.Fatalf("errors: %v", diags.Err())
	}
	return p, callgraph.NewResolver(p)
}

func analyzeOne(t testing.TB, cfg Config, class, method string, srcs ...string) *EntryResult {
	t.Helper()
	p, res := buildProgram(t, srcs...)
	a := New(p, res, cfg)
	c := p.Types.Classes[class]
	if c == nil {
		t.Fatalf("class %s not found", class)
	}
	for _, m := range c.Methods {
		if m.Name == method || (method == "<init>" && m.IsCtor) {
			return a.AnalyzeEntry(m)
		}
	}
	t.Fatalf("method %s.%s not found", class, method)
	return nil
}

func checkID(t testing.TB, name string, arity int) secmodel.CheckID {
	t.Helper()
	id, ok := secmodel.CheckByName(name, arity)
	if !ok {
		t.Fatalf("unknown check %s/%d", name, arity)
	}
	return id
}

func setOf(t testing.TB, pairs ...any) policy.CheckSet {
	t.Helper()
	var s policy.CheckSet
	for i := 0; i < len(pairs); i += 2 {
		s = s.With(checkID(t, pairs[i].(string), pairs[i+1].(int)))
	}
	return s
}

func eventResult(t testing.TB, r *EntryResult, ev secmodel.Event) *EventResult {
	t.Helper()
	er := r.Events[ev]
	if er == nil {
		t.Fatalf("event %s missing from %s; have %v", ev, r.Entry, r.SortedEvents())
	}
	return er
}

const simpleSrc = `
package java.net;
import java.lang.*;
public class Conn {
  SecurityManager sm;
  public void open(String host, int port) {
    sm.checkConnect(host, port);
    connect0(host, port);
  }
  native void connect0(String host, int port);
}
`

func TestUnconditionalCheckMustAndMay(t *testing.T) {
	for _, mode := range []Mode{May, Must} {
		r := analyzeOne(t, DefaultConfig(mode), "java.net.Conn", "open", simpleSrc)
		want := setOf(t, "checkConnect", 2)
		nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "connect0/2"})
		if nat.Checks != want {
			t.Errorf("%s native checks = %s, want %s", mode, nat.Checks, want)
		}
		ret := eventResult(t, r, secmodel.ReturnEvent())
		if ret.Checks != want {
			t.Errorf("%s return checks = %s, want %s", mode, ret.Checks, want)
		}
	}
}

const conditionalSrc = `
package java.net;
import java.lang.*;
public class Conn {
  SecurityManager sm;
  public void open(String host, int port, boolean secure) {
    if (secure) {
      sm.checkConnect(host, port);
    }
    connect0(host, port);
  }
  native void connect0(String host, int port);
}
`

func TestConditionalCheckIsMayNotMust(t *testing.T) {
	may := analyzeOne(t, DefaultConfig(May), "java.net.Conn", "open", conditionalSrc)
	must := analyzeOne(t, DefaultConfig(Must), "java.net.Conn", "open", conditionalSrc)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "connect0/2"}
	if got := eventResult(t, may, nat).Checks; got != setOf(t, "checkConnect", 2) {
		t.Errorf("may = %s", got)
	}
	if got := eventResult(t, must, nat).Checks; !got.IsEmpty() {
		t.Errorf("must = %s, want empty", got)
	}
}

// figure1JDK reproduces the paper's Figure 1(a): DatagramSocket.connect in
// the JDK performs checkMulticast on one branch and checkConnect +
// checkAccept on the other.
const figure1JDK = `
package java.net;
import java.lang.*;
public class InetAddress {
  public boolean isMulticastAddress() { return false; }
  public String getHostAddress() { return null; }
}
public class DatagramSocketImpl {
  public void connect(InetAddress address, int port) {
    connect0(address, port);
  }
  native void connect0(InetAddress address, int port);
}
public class DatagramSocket {
  private SecurityManager securityManager;
  private DatagramSocketImpl impl;
  private InetAddress connectedAddress;
  private int connectedPort;
  public void connect(InetAddress address, int port) {
    connectInternal(address, port);
  }
  private synchronized void connectInternal(InetAddress address, int port) {
    if (address.isMulticastAddress()) {
      securityManager.checkMulticast(address);
    } else {
      securityManager.checkConnect(address.getHostAddress(), port);
      securityManager.checkAccept(address.getHostAddress(), port);
    }
    impl.connect(address, port);
    connectedAddress = address;
    connectedPort = port;
  }
}
`

func TestFigure1JDKPolicies(t *testing.T) {
	cfg := DefaultConfig(May)
	r := analyzeOne(t, cfg, "java.net.DatagramSocket", "connect", figure1JDK)
	ret := eventResult(t, r, secmodel.ReturnEvent())
	wantMay := setOf(t, "checkMulticast", 1, "checkConnect", 2, "checkAccept", 2)
	if ret.Checks != wantMay {
		t.Errorf("may = %s, want %s", ret.Checks, wantMay)
	}
	// Figure 2's path alternatives: {{checkMulticast}, {checkConnect, checkAccept}}.
	wantPaths := []policy.CheckSet{
		setOf(t, "checkMulticast", 1),
		setOf(t, "checkConnect", 2, "checkAccept", 2),
	}
	if len(ret.Paths.Sets) != 2 {
		t.Fatalf("paths = %s", ret.Paths)
	}
	for _, w := range wantPaths {
		found := false
		for _, g := range ret.Paths.Sets {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("path %s missing from %s", w, ret.Paths)
		}
	}

	must := analyzeOne(t, DefaultConfig(Must), "java.net.DatagramSocket", "connect", figure1JDK)
	if got := eventResult(t, must, secmodel.ReturnEvent()).Checks; !got.IsEmpty() {
		t.Errorf("must = %s, want {} (Figure 2)", got)
	}

	// The native event deep in impl.connect carries the same policy.
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "connect0/2"})
	if nat.Checks != wantMay {
		t.Errorf("native may = %s, want %s", nat.Checks, wantMay)
	}
}

// figure4Harmony reproduces Figure 4: the URL(String) constructor passes a
// constant null handler, so the guarded checkPermission must not leak into
// its policy — but only when interprocedural constant propagation is on.
const figure4Harmony = `
package java.net;
import java.lang.*;
public class URLStreamHandler { }
public class URL {
  private URLStreamHandler strmHandler;
  private SecurityManager securityManager;
  private Object specifyStreamHandlerPermission;
  public URL(String spec) {
    this((URL) null, spec, (URLStreamHandler) null);
  }
  public URL(URL context, String spec, URLStreamHandler handler) {
    if (handler != null) {
      securityManager.checkPermission(specifyStreamHandlerPermission);
      strmHandler = handler;
    }
  }
}
`

func TestFigure4ICPPreventsFalsePositive(t *testing.T) {
	cfg := DefaultConfig(May)
	p, res := buildProgram(t, figure4Harmony)
	a := New(p, res, cfg)
	url := p.Types.Classes["java.net.URL"]
	var oneArg, threeArg *types.Method
	for _, m := range url.Methods {
		if m.IsCtor && len(m.Params) == 1 {
			oneArg = m
		}
		if m.IsCtor && len(m.Params) == 3 {
			threeArg = m
		}
	}
	r1 := a.AnalyzeEntry(oneArg)
	if got := eventResult(t, r1, secmodel.ReturnEvent()).Checks; !got.IsEmpty() {
		t.Errorf("URL(String) with ICP: may = %s, want empty", got)
	}
	r3 := a.AnalyzeEntry(threeArg)
	if got := eventResult(t, r3, secmodel.ReturnEvent()).Checks; got != setOf(t, "checkPermission", 1) {
		t.Errorf("URL(ctx,spec,handler): may = %s", got)
	}

	// Without ICP the one-arg constructor spuriously reports the check.
	cfgNoICP := cfg
	cfgNoICP.ICP = false
	a2 := New(p, res, cfgNoICP)
	r1n := a2.AnalyzeEntry(oneArg)
	if got := eventResult(t, r1n, secmodel.ReturnEvent()).Checks; got.IsEmpty() {
		t.Errorf("URL(String) without ICP: expected spurious checkPermission, got empty")
	}
}

const privilegedSrc = `
package java.lang;
public class LoadAction implements PrivilegedAction {
  public Object run() {
    SecurityManager sm = System.getSecurityManager();
    sm.checkRead("lib");
    load0();
    return null;
  }
  native void load0();
}
public class Runtime {
  private SecurityManager securityManager;
  public void load(String lib) {
    securityManager.checkLink(lib);
    AccessController.doPrivileged(new LoadAction());
  }
}
`

func TestPrivilegedChecksAreNoOps(t *testing.T) {
	r := analyzeOne(t, DefaultConfig(May), "java.lang.Runtime", "load", privilegedSrc)
	// checkRead happens inside doPrivileged: a semantic no-op. Only
	// checkLink protects the native load0.
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "load0/0"})
	want := setOf(t, "checkLink", 1)
	if nat.Checks != want {
		t.Errorf("native checks = %s, want %s", nat.Checks, want)
	}
	ret := eventResult(t, r, secmodel.ReturnEvent())
	if ret.Checks != want {
		t.Errorf("return checks = %s, want %s", ret.Checks, want)
	}
}

const nullGuardSrc = `
package java.lang;
public class Runtime {
  public void exitVM(int status) {
    SecurityManager sm = System.getSecurityManager();
    if (sm != null) {
      sm.checkExit(status);
    }
    halt1(status);
  }
  native void halt1(int status);
}
`

func TestAssumeSecurityManagerFoldsNullGuard(t *testing.T) {
	cfg := DefaultConfig(Must)
	r := analyzeOne(t, cfg, "java.lang.Runtime", "exitVM", nullGuardSrc)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "halt1/1"})
	if nat.Checks != setOf(t, "checkExit", 1) {
		t.Errorf("must with guard folding = %s", nat.Checks)
	}

	cfg.AssumeSecurityManager = false
	r2 := analyzeOne(t, cfg, "java.lang.Runtime", "exitVM", nullGuardSrc)
	nat2 := eventResult(t, r2, secmodel.Event{Kind: secmodel.NativeCall, Key: "halt1/1"})
	if !nat2.Checks.IsEmpty() {
		t.Errorf("must without guard folding = %s, want empty", nat2.Checks)
	}
}

const interprocSrc = `
package java.lang;
public class ClassLoader {
  static void loadLibrary(String name) {
    loadLibrary0(name);
  }
  private static void loadLibrary0(String name) {
    nativeLoad(name);
  }
  static native void nativeLoad(String name);
}
public class Runtime {
  private SecurityManager securityManager;
  public void loadLibrary(String libname) {
    securityManager.checkLink(libname);
    ClassLoader.loadLibrary(libname);
  }
}
`

func TestInterproceduralPropagation(t *testing.T) {
	r := analyzeOne(t, DefaultConfig(Must), "java.lang.Runtime", "loadLibrary", interprocSrc)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "nativeLoad/1"})
	if nat.Checks != setOf(t, "checkLink", 1) {
		t.Errorf("native checks = %s", nat.Checks)
	}
}

func TestMaxDepthZeroIsIntraprocedural(t *testing.T) {
	cfg := DefaultConfig(Must)
	cfg.MaxDepth = 0
	r := analyzeOne(t, cfg, "java.lang.Runtime", "loadLibrary", interprocSrc)
	// The native call is inside a callee, invisible intraprocedurally.
	if _, ok := r.Events[secmodel.Event{Kind: secmodel.NativeCall, Key: "nativeLoad/1"}]; ok {
		t.Error("native event visible at depth 0")
	}
	ret := eventResult(t, r, secmodel.ReturnEvent())
	if ret.Checks != setOf(t, "checkLink", 1) {
		t.Errorf("return checks = %s", ret.Checks)
	}
}

const recursiveSrc = `
package java.lang;
public class Rec {
  SecurityManager sm;
  public void walk(int depth) {
    sm.checkRead("f");
    if (depth > 0) {
      walk(depth - 1);
    }
    read0();
  }
  native void read0();
}
`

func TestRecursionConverges(t *testing.T) {
	r := analyzeOne(t, DefaultConfig(Must), "java.lang.Rec", "walk", recursiveSrc)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "read0/0"})
	if nat.Checks != setOf(t, "checkRead", 1) {
		t.Errorf("native checks = %s", nat.Checks)
	}
}

const loopSrc = `
package java.lang;
public class Loop {
  SecurityManager sm;
  public void spin(int n) {
    int i = 0;
    while (i < n) {
      sm.checkWrite("x");
      i = i + 1;
    }
    write0();
  }
  native void write0();
}
`

func TestLoopMayVsMust(t *testing.T) {
	may := analyzeOne(t, DefaultConfig(May), "java.lang.Loop", "spin", loopSrc)
	must := analyzeOne(t, DefaultConfig(Must), "java.lang.Loop", "spin", loopSrc)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "write0/0"}
	if got := eventResult(t, may, nat).Checks; got != setOf(t, "checkWrite", 1) {
		t.Errorf("may = %s", got)
	}
	// The loop may execute zero times: checkWrite is not a must check.
	if got := eventResult(t, must, nat).Checks; !got.IsEmpty() {
		t.Errorf("must = %s, want empty", got)
	}
}

func TestMemoizationEquivalenceAndSavings(t *testing.T) {
	// A diamond of helpers sharing a common callee: memoization must not
	// change results but must reduce method analyses.
	src := `
package java.lang;
public class Diamond {
  SecurityManager sm;
  public void top(boolean b) {
    sm.checkRead("f");
    if (b) { left(); } else { right(); }
  }
  void left() { shared(); }
  void right() { shared(); }
  void shared() { op0(); }
  native void op0();
}
`
	var results []policy.CheckSet
	var analyses []int
	for _, memo := range []MemoMode{MemoGlobal, MemoPerEntry, MemoNone} {
		cfg := DefaultConfig(May)
		cfg.Memo = memo
		p, res := buildProgram(t, src)
		a := New(p, res, cfg)
		c := p.Types.Classes["java.lang.Diamond"]
		var top *types.Method
		for _, m := range c.Methods {
			if m.Name == "top" {
				top = m
			}
		}
		r := a.AnalyzeEntry(top)
		nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
		results = append(results, nat.Checks)
		analyses = append(analyses, a.Stats().MethodAnalyses)
	}
	if results[0] != results[1] || results[1] != results[2] {
		t.Errorf("results differ across memo modes: %v", results)
	}
	if analyses[0] >= analyses[2] {
		t.Errorf("memoization did not reduce analyses: global=%d none=%d", analyses[0], analyses[2])
	}
}

func TestGlobalMemoSharedAcrossEntries(t *testing.T) {
	src := `
package java.lang;
public class Multi {
  SecurityManager sm;
  public void a() { shared(); }
  public void b() { shared(); }
  void shared() { op0(); }
  native void op0();
}
`
	run := func(memo MemoMode) int {
		cfg := DefaultConfig(May)
		cfg.Memo = memo
		p, res := buildProgram(t, src)
		a := New(p, res, cfg)
		for _, m := range p.Types.Classes["java.lang.Multi"].Methods {
			if m.IsEntryPoint() {
				a.AnalyzeEntry(m)
			}
		}
		return a.Stats().MethodAnalyses
	}
	global, perEntry := run(MemoGlobal), run(MemoPerEntry)
	if global >= perEntry {
		t.Errorf("global memo (%d analyses) should beat per-entry (%d)", global, perEntry)
	}
}

// figure3 reproduces the hypothetical broad-events example: both
// implementations have the same narrow policies, but the private reads of
// data1/data2 differ in their MUST checks.
const figure3A = `
package java.lang;
public class Holder {
  private Object data1;
  private Object data2;
  SecurityManager sm;
  public Object a(boolean condition) {
    if (condition) {
      sm.checkRead("d");
      Object r = data1;
      return r;
    }
    sm.checkRead("d");
    Object s = data2;
    return s;
  }
}
`

func TestBroadEventsFindPrivateReads(t *testing.T) {
	cfg := DefaultConfig(Must)
	cfg.Events = secmodel.BroadEvents
	r := analyzeOne(t, cfg, "java.lang.Holder", "a", figure3A)
	d1 := eventResult(t, r, secmodel.Event{Kind: secmodel.PrivateRead, Key: "data1"})
	if d1.Checks != setOf(t, "checkRead", 1) {
		t.Errorf("data1 must = %s", d1.Checks)
	}
	// Narrow mode must not contain private-read events.
	cfg.Events = secmodel.NarrowEvents
	r2 := analyzeOne(t, cfg, "java.lang.Holder", "a", figure3A)
	if _, ok := r2.Events[secmodel.Event{Kind: secmodel.PrivateRead, Key: "data1"}]; ok {
		t.Error("private-read event present in narrow mode")
	}
}

func TestBroadEventsParamAccess(t *testing.T) {
	src := `
package java.lang;
public class P {
  SecurityManager sm;
  public void use(Object obj) {
    sm.checkWrite("x");
    obj.hashCode();
  }
}
`
	cfg := DefaultConfig(Must)
	cfg.Events = secmodel.BroadEvents
	r := analyzeOne(t, cfg, "java.lang.P", "use", src)
	pa := eventResult(t, r, secmodel.Event{Kind: secmodel.ParamAccess, Key: "p0"})
	if pa.Checks != setOf(t, "checkWrite", 1) {
		t.Errorf("param access must = %s", pa.Checks)
	}
}

func TestOriginsRecorded(t *testing.T) {
	r := analyzeOne(t, DefaultConfig(May), "java.net.DatagramSocket", "connect", figure1JDK)
	if len(r.Origins) == 0 {
		t.Fatal("no origins recorded")
	}
	found := false
	for _, o := range r.Origins {
		if o.Check == checkID(t, "checkAccept", 2) &&
			o.Sig == "java.net.DatagramSocket.connectInternal(InetAddress,int)" {
			found = true
		}
	}
	if !found {
		t.Errorf("checkAccept origin missing: %+v", r.Origins)
	}
}

func TestMultipleReturnsCombine(t *testing.T) {
	src := `
package java.lang;
public class Two {
  SecurityManager sm;
  public int f(boolean b) {
    if (b) {
      sm.checkExit(1);
      return 1;
    }
    sm.checkExit(1);
    sm.checkWrite("w");
    return 2;
  }
}
`
	must := analyzeOne(t, DefaultConfig(Must), "java.lang.Two", "f", src)
	ret := eventResult(t, must, secmodel.ReturnEvent())
	// Occurrence 1 has {checkExit}; occurrence 2 {checkExit, checkWrite};
	// combining with intersection yields {checkExit}.
	if ret.Checks != setOf(t, "checkExit", 1) {
		t.Errorf("combined must = %s", ret.Checks)
	}
	may := analyzeOne(t, DefaultConfig(May), "java.lang.Two", "f", src)
	if got := eventResult(t, may, secmodel.ReturnEvent()).Checks; got != setOf(t, "checkExit", 1, "checkWrite", 1) {
		t.Errorf("combined may = %s", got)
	}
}

func TestNativeEntryPoint(t *testing.T) {
	src := `
package java.lang;
public class N {
  public native void raw();
}
`
	r := analyzeOne(t, DefaultConfig(May), "java.lang.N", "raw", src)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "raw/0"})
	if !nat.Checks.IsEmpty() {
		t.Errorf("native entry checks = %s", nat.Checks)
	}
}

func TestUnresolvedCallSkipped(t *testing.T) {
	// Two concrete subclasses allocated: the virtual call cannot resolve
	// to a unique target and is skipped (no events from either body).
	src := `
package java.lang;
public class Base {
  public void op() { }
}
public class Sub1 extends Base {
  public void op() { op1(); }
  native void op1();
}
public class Sub2 extends Base {
  public void op() { op2(); }
  native void op2();
}
public class Driver {
  private Base b;
  public void drive(boolean x) {
    Base l = b;
    if (x) { l = new Sub1(); } else { l = new Sub2(); }
    keep(l);
    b.op();
  }
  void keep(Base l) { }
}
`
	r := analyzeOne(t, DefaultConfig(May), "java.lang.Driver", "drive", src)
	for ev := range r.Events {
		if ev.Kind == secmodel.NativeCall {
			t.Errorf("unexpected native event %s from unresolved call", ev)
		}
	}
}

func TestSystemExitCarriesCheckExit(t *testing.T) {
	// Figure 8's mechanism: calling System.exit implies a checkExit.
	src := `
package java.lang;
public class StringCoding {
  public byte[] encode(String cs) {
    System.exit(1);
    return null;
  }
}
`
	r := analyzeOne(t, DefaultConfig(May), "java.lang.StringCoding", "encode", src)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "halt0/1"})
	if nat.Checks != setOf(t, "checkExit", 1) {
		t.Errorf("halt0 checks = %s", nat.Checks)
	}
	ret := eventResult(t, r, secmodel.ReturnEvent())
	if !ret.Checks.Has(checkID(t, "checkExit", 1)) {
		t.Errorf("return checks = %s", ret.Checks)
	}
}
