package analysis

import (
	"testing"

	"policyoracle/internal/types"
)

// BenchmarkISPAFigure1 measures one entry-point analysis over the Figure 1
// workload (MAY mode with path policies, the most expensive configuration).
func BenchmarkISPAFigure1(b *testing.B) {
	p, res := buildProgram(b, figure1JDK)
	var entry *types.Method
	for _, m := range p.Types.EntryPoints() {
		if m.Qualified() == "java.net.DatagramSocket.connect(InetAddress,int)" {
			entry = m
		}
	}
	if entry == nil {
		b.Fatal("entry not found")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(p, res, DefaultConfig(May))
		r := a.AnalyzeEntry(entry)
		if len(r.Events) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkISPAMemoized measures the memoized steady state: repeated
// analyses of the same entry under one analyzer instance.
func BenchmarkISPAMemoized(b *testing.B) {
	p, res := buildProgram(b, figure1JDK)
	var entry *types.Method
	for _, m := range p.Types.EntryPoints() {
		if m.Qualified() == "java.net.DatagramSocket.connect(InetAddress,int)" {
			entry = m
		}
	}
	a := New(p, res, DefaultConfig(May))
	a.AnalyzeEntry(entry) // warm the caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AnalyzeEntry(entry)
	}
}
