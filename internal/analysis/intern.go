package analysis

import (
	"sync"

	"policyoracle/internal/constprop"
	"policyoracle/internal/policy"
)

// The memoization hot path used to build string keys — a hex rendering of
// the flow value plus a canonical encoding of the constant parameter
// binding — on every ISPA call. The interners below replace those strings
// with dense uint32 ids: values are hashed structurally into buckets and
// compared exactly on collision, so an id equality is exactly a value
// equality and the memo key becomes a small comparable struct with no
// per-probe allocation.
//
// Id 0 is reserved for "none" (no paths collected / no constant binding);
// interned ids start at 1. Interners are per-Analyzer: ids are only ever
// compared against ids minted by the same interner.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mixUint64(h, v uint64) uint64 {
	h ^= v
	h *= fnvPrime
	return h
}

func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

// pathsInterner assigns dense ids to PathSets values. Stored values are
// treated as immutable (PathSets ops return fresh values).
type pathsInterner struct {
	mu      sync.RWMutex
	buckets map[uint64][]uint32 // structural hash → candidate ids
	vals    []policy.PathSets   // id-1 → value
}

func hashPaths(ps policy.PathSets) uint64 {
	h := uint64(fnvOffset)
	for _, s := range ps.Sets {
		h = mixUint64(h, uint64(s))
	}
	if ps.Overflow {
		h = mixUint64(h, 1)
	}
	return h
}

// id interns ps, returning its dense id (>= 1).
func (in *pathsInterner) id(ps policy.PathSets) uint32 {
	h := hashPaths(ps)
	in.mu.RLock()
	for _, id := range in.buckets[h] {
		if in.vals[id-1].Equal(ps) {
			in.mu.RUnlock()
			return id
		}
	}
	in.mu.RUnlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	for _, id := range in.buckets[h] {
		if in.vals[id-1].Equal(ps) {
			return id
		}
	}
	if in.buckets == nil {
		in.buckets = make(map[uint64][]uint32)
	}
	in.vals = append(in.vals, ps)
	id := uint32(len(in.vals))
	in.buckets[h] = append(in.buckets[h], id)
	return id
}

// constsInterner assigns dense ids to constant parameter bindings
// (constprop value lists). Stored slices are treated as immutable; the
// bindings come from constprop results, which never mutate after Analyze.
type constsInterner struct {
	mu      sync.RWMutex
	buckets map[uint64][]uint32
	vals    [][]constprop.Value
}

func hashConsts(vals []constprop.Value) uint64 {
	h := uint64(fnvOffset)
	for _, v := range vals {
		h = mixUint64(h, uint64(v.Kind))
		switch v.Kind {
		case constprop.Int:
			h = mixUint64(h, uint64(v.Int))
		case constprop.Bool:
			if v.Bool {
				h = mixUint64(h, 1)
			}
		case constprop.Str:
			h = mixString(h, v.Str)
		}
	}
	return h
}

func constsEqual(a, b []constprop.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// id interns vals, returning its dense id. Nil and empty bindings map to
// 0, matching the "no constant binding" encoding of the former string key.
func (in *constsInterner) id(vals []constprop.Value) uint32 {
	if len(vals) == 0 {
		return 0
	}
	h := hashConsts(vals)
	in.mu.RLock()
	for _, id := range in.buckets[h] {
		if constsEqual(in.vals[id-1], vals) {
			in.mu.RUnlock()
			return id
		}
	}
	in.mu.RUnlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	for _, id := range in.buckets[h] {
		if constsEqual(in.vals[id-1], vals) {
			return id
		}
	}
	if in.buckets == nil {
		in.buckets = make(map[uint64][]uint32)
	}
	in.vals = append(in.vals, vals)
	id := uint32(len(in.vals))
	in.buckets[h] = append(in.buckets[h], id)
	return id
}
