// Package analysis implements the paper's core contribution: the flow- and
// context-sensitive interprocedural security policy analysis.
//
// SPDA (Algorithm 1) is the intraprocedural worklist dataflow over the
// powerset-of-checks lattice; ISPA (Algorithm 2) extends it across calls
// with context sensitivity and memoizes summaries keyed on the method, the
// inbound policy flow value, and the constant parameter values.
// Interprocedural constant propagation binds constant arguments into
// callees so that constant-guarded checks (the paper's Figure 4) are
// analyzed precisely; checks inside AccessController.doPrivileged blocks
// are semantic no-ops (Section 6.2).
package analysis

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle/internal/bitset"
	"policyoracle/internal/callgraph"
	"policyoracle/internal/cfg"
	"policyoracle/internal/constprop"
	"policyoracle/internal/dataflow"
	"policyoracle/internal/ir"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
	"policyoracle/internal/types"
)

// Mode selects the dataflow meet: MAY (union) or MUST (intersection).
type Mode int

// Analysis modes.
const (
	May Mode = iota
	Must
)

func (m Mode) String() string {
	if m == Must {
		return "must"
	}
	return "may"
}

// MemoMode selects summary reuse, the swept parameter of Table 2.
type MemoMode int

// Memoization modes.
const (
	MemoGlobal   MemoMode = iota // summaries reused across all entry points
	MemoPerEntry                 // summaries reused within one entry point
	MemoNone                     // every call re-analyzed
)

func (m MemoMode) String() string {
	switch m {
	case MemoGlobal:
		return "global"
	case MemoPerEntry:
		return "per-entry"
	default:
		return "none"
	}
}

// Config controls one analysis run.
type Config struct {
	Mode   Mode
	Events secmodel.EventMode
	// Domain is the check domain analyzed: which class owns the security
	// checks, which calls enter privileged scope, and which call is the
	// guard-state accessor. Nil means the default SecurityManager domain
	// (secmodel.SecurityManager()).
	Domain *secmodel.Domain
	// ICP enables interprocedural constant propagation (binding constant
	// arguments into callees). Intraprocedural constant propagation is
	// always on, as in Soot.
	ICP bool
	// AssumeSecurityManager folds `System.getSecurityManager() != null`
	// guards to the taken branch, so guarded checks participate in MUST
	// policies (the library is analyzed as if a manager is installed).
	AssumeSecurityManager bool
	Memo                  MemoMode
	// MaxDepth bounds interprocedural descent; 0 analyzes entry-point
	// bodies only (used to classify intraprocedural root causes) and -1 is
	// unlimited.
	MaxDepth int
	// CollectPaths tracks bounded per-path check conjunctions (Figure 2
	// style); valid in May mode only.
	CollectPaths bool
	// CollectOrigins records, per check, the methods whose bodies invoke
	// it (for root-cause grouping of report manifestations).
	CollectOrigins bool
	// RecursionBound allows re-analyzing a method already on the call
	// stack up to this many times before cutting off. 0 is the paper's
	// main implementation (recursive calls are not re-analyzed); Section
	// 4.2 notes the bounded-traversal alternative this option implements.
	RecursionBound int
	// CollectGuards records, per check occurrence, the source positions of
	// the branch conditions dominating it — the MAY-policy conditions
	// Section 6.4 says are easy to report (and overwhelming to read, which
	// is why this is opt-in display data rather than comparison input).
	CollectGuards bool
	// Telemetry, when non-nil, receives a per-entry-point analysis
	// duration sample from every AnalyzeEntry call (the mode label is
	// Mode.String()). Nil — the default — costs one pointer comparison
	// per entry and never perturbs analysis results: telemetry observes
	// the analyzer, it cannot steer it.
	Telemetry *telemetry.ExtractMetrics
	// EventInterns, when non-nil, supplies the per-program event
	// interning table. Analyzers of one library should share one table
	// (the oracle builds it at load time); New builds a private table
	// when nil. Interned event ids are an internal encoding — results
	// are reported as secmodel.Event values either way.
	EventInterns *secmodel.ProgramEvents
}

// DefaultConfig returns the configuration used for the paper's main
// results: MAY or MUST, narrow events, ICP on, global memoization.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                  mode,
		Events:                secmodel.NarrowEvents,
		ICP:                   true,
		AssumeSecurityManager: true,
		Memo:                  MemoGlobal,
		MaxDepth:              -1,
		CollectPaths:          mode == May,
		CollectOrigins:        true,
	}
}

// Stats counts analysis work for the Table 2 reproduction.
//
// Under concurrent extraction with global memoization, two workers may
// race to a cold memo key and both solve it; MethodAnalyses then counts
// both solves, so it can exceed the sequential count by the number of
// such races. The analysis results themselves are unaffected (summaries
// are pure functions of their key), and all other counters merge exactly.
type Stats struct {
	MethodAnalyses int // SPDA solves (memo misses)
	MemoHits       int
	CPRuns         int // constant propagation solves
	CPHits         int
	EntryPoints    int
}

// atomicStats is the analyzer-internal accumulator behind Stats: plain
// atomic counters so concurrent entry analyses merge without locks.
type atomicStats struct {
	methodAnalyses atomic.Int64
	memoHits       atomic.Int64
	cpRuns         atomic.Int64
	cpHits         atomic.Int64
	entryPoints    atomic.Int64
}

// cacheStripes is the number of lock stripes in the shared summary and
// constant-propagation caches. A power of two well above typical core
// counts keeps contention negligible without bloating the analyzer.
const cacheStripes = 64

// memoStripe is one lock-striped shard of the global summary cache.
// Stored summaries are immutable, so readers share them freely.
type memoStripe struct {
	mu sync.RWMutex
	m  map[memoKey]*summary
}

// cpStripe is one lock-striped shard of the global constant-propagation
// cache; constprop.Result is read-only after Analyze returns.
type cpStripe struct {
	mu sync.RWMutex
	m  map[cpKey]*constprop.Result
}

// Analyzer runs ISPA over one program under one configuration.
//
// An Analyzer is safe for concurrent use: AnalyzeEntry may be called from
// many goroutines at once. All mutable state is either striped behind
// locks here (the summary/CP/taint/dominator caches and the call-site
// resolution cache, all holding immutable values) or private to one
// AnalyzeEntry invocation (the recursion stack and recorder, see task).
type Analyzer struct {
	prog *ir.Program
	res  *callgraph.Resolver
	cfg  Config
	ev   *secmodel.ProgramEvents

	memo     [cacheStripes]memoStripe
	cp       [cacheStripes]cpStripe
	paths    pathsInterner
	consts   constsInterner
	taskPool sync.Pool
	taintMu  sync.RWMutex
	taints   map[*ir.Func][]uint64          // per-local param-taint masks, by Local.Index
	sites    []atomic.Pointer[types.Method] // by Call.Site; unresolvedSite = resolved to nothing
	domMu    sync.Mutex
	doms     map[*ir.Func]*cfg.Dominators
	stats    atomicStats
}

// memoKey is the ISPA summary key: the method, the privileged flag, the
// entry flag, the inbound flow value, and interned ids for the path sets
// and the constant parameter binding. All fields are fixed-size integers —
// building a key allocates nothing, and the former string rendering of
// the flow value is gone from the hot path.
type memoKey struct {
	method int32
	flags  uint8 // keyPriv | keyEntry
	bits   policy.CheckSet
	paths  uint32 // interned PathSets id; 0 when paths are not collected
	consts uint32 // interned constant-binding id; 0 when none
}

const (
	keyPriv  = 1 << iota // analyzed under privileged execution
	keyEntry             // entry analyses also record return events
)

// stripe maps the key onto a cache stripe with an FNV-1a style mix of its
// fields, spreading keys that share a method across stripes.
func (k memoKey) stripe() int {
	h := mixUint64(fnvOffset, uint64(k.method)<<8|uint64(k.flags))
	h = mixUint64(h, uint64(k.bits))
	h = mixUint64(h, uint64(k.paths)<<32|uint64(k.consts))
	return int(h % cacheStripes)
}

type cpKey struct {
	method int32
	consts uint32
}

func (k cpKey) stripe() int {
	return int(mixUint64(fnvOffset, uint64(k.method)<<32|uint64(k.consts)) % cacheStripes)
}

// New returns an analyzer for p.
func New(p *ir.Program, res *callgraph.Resolver, cfg Config) *Analyzer {
	if cfg.CollectPaths && cfg.Mode != May {
		cfg.CollectPaths = false
	}
	if cfg.Domain == nil {
		cfg.Domain = secmodel.SecurityManager()
	}
	ev := cfg.EventInterns
	if ev == nil {
		ev = secmodel.BuildProgramEvents(p.Types)
	}
	a := &Analyzer{
		prog:   p,
		res:    res,
		cfg:    cfg,
		ev:     ev,
		sites:  make([]atomic.Pointer[types.Method], p.NumSites),
		taints: make(map[*ir.Func][]uint64),
	}
	for i := range a.memo {
		a.memo[i].m = make(map[memoKey]*summary)
	}
	for i := range a.cp {
		a.cp[i].m = make(map[cpKey]*constprop.Result)
	}
	return a
}

// Stats returns the accumulated work counters.
func (a *Analyzer) Stats() Stats {
	return Stats{
		MethodAnalyses: int(a.stats.methodAnalyses.Load()),
		MemoHits:       int(a.stats.memoHits.Load()),
		CPRuns:         int(a.stats.cpRuns.Load()),
		CPHits:         int(a.stats.cpHits.Load()),
		EntryPoints:    int(a.stats.entryPoints.Load()),
	}
}

// Resolver exposes the analyzer's call-site resolver.
func (a *Analyzer) Resolver() *callgraph.Resolver { return a.res }

// OriginRec records that a check is invoked in a method's body. With
// Config.CollectGuards, Guards lists the source positions of the branch
// conditions that dominate the check (empty for unconditional checks).
type OriginRec struct {
	Check  secmodel.CheckID
	Sig    string
	Guards string // comma-joined guard positions, "" when unconditional
}

// EventResult is the per-event outcome of one entry-point analysis in one
// mode: the combined check set (∩ across occurrences for MUST, ∪ for MAY)
// and the path alternatives.
type EventResult struct {
	Checks      policy.CheckSet
	Paths       policy.PathSets
	Occurrences int
}

// EntryResult is the outcome of analyzing one API entry point.
type EntryResult struct {
	Entry   string
	Method  *types.Method
	Events  map[secmodel.Event]*EventResult
	Origins []OriginRec
	// Deps lists the sorted qualified signatures of every method whose
	// body the analysis visited for this entry, the entry itself included —
	// the entry's dependency set for incremental extraction.
	Deps []string
}

// task is the state private to one AnalyzeEntry invocation: the recursion
// stack of the ISPA descent, a freelist of dataflow frames (each active
// ispa nesting level holds one solver), a freelist of dependency bitsets,
// and, under MemoPerEntry/MemoNone, the entry-scoped caches. Concurrent
// entry analyses each run on their own task and share only the Analyzer's
// striped caches.
//
// Tasks are pooled on the Analyzer: steady-state extraction reuses the
// recursion-stack slice, the solver buffers, and the entry-local maps of
// a previous entry instead of reallocating them.
type task struct {
	a      *Analyzer
	active []int32                     // recursion counts, by Method.ID
	memo   map[memoKey]*summary        // entry-local summaries (MemoPerEntry)
	cp     map[cpKey]*constprop.Result // entry-local CP results (MemoPerEntry/MemoNone)
	frames []*frame                    // freelist of solver frames
	sets   []bitset.Set                // freelist of dependency-set scratch
}

// frame is the per-ispa-nesting-level dataflow machinery: a reusable
// solver plus a Problem whose closures are bound once to the frame's
// mutable call context. ISPA recurses during Solve (Transfer descends
// into callees), so each active nesting level needs its own frame; the
// task freelist reuses frames across sibling calls.
type frame struct {
	t       *task
	solver  dataflow.Solver[state]
	prob    dataflow.Problem[state]
	m       *types.Method
	f       *ir.Func
	cp      *constprop.Result
	priv    bool
	depth   int
	isEntry bool
}

func (t *task) getFrame() *frame {
	if n := len(t.frames); n > 0 {
		fr := t.frames[n-1]
		t.frames = t.frames[:n-1]
		return fr
	}
	fr := &frame{t: t}
	fr.prob.Meet = t.a.meet
	fr.prob.Equal = t.a.stateEqual
	fr.prob.Transfer = func(b *ir.Block, st state) state {
		return fr.t.transferBlock(fr.m, fr.f, b, st, fr.cp, fr.priv, fr.depth, fr.isEntry, nil)
	}
	fr.prob.EdgeFeasible = func(b *ir.Block, i int) bool {
		return fr.cp.EdgeFeasible(b, i)
	}
	return fr
}

func (t *task) putFrame(fr *frame) {
	fr.m, fr.f, fr.cp = nil, nil, nil
	t.frames = append(t.frames, fr)
}

// getSet returns a cleared dependency-set scratch buffer.
func (t *task) getSet() bitset.Set {
	if n := len(t.sets); n > 0 {
		s := t.sets[n-1]
		t.sets = t.sets[:n-1]
		s.Reset()
		return s
	}
	return bitset.New(len(t.a.prog.Types.AllMethods()))
}

func (t *task) putSet(s bitset.Set) {
	if s != nil {
		t.sets = append(t.sets, s)
	}
}

func (a *Analyzer) getTask() *task {
	if v := a.taskPool.Get(); v != nil {
		return v.(*task)
	}
	t := &task{a: a, active: make([]int32, len(a.prog.Types.AllMethods()))}
	if a.cfg.Memo != MemoGlobal {
		t.memo = make(map[memoKey]*summary)
		t.cp = make(map[cpKey]*constprop.Result)
	}
	return t
}

func (a *Analyzer) putTask(t *task) {
	// active is balanced by ispa's defer, so it is all-zero here. The
	// entry-local caches must not leak into the next entry.
	if t.memo != nil {
		clear(t.memo)
	}
	if t.cp != nil {
		clear(t.cp)
	}
	a.taskPool.Put(t)
}

// AnalyzeEntry runs ISPA rooted at entry point m. It is safe to call from
// multiple goroutines concurrently.
func (a *Analyzer) AnalyzeEntry(m *types.Method) *EntryResult {
	if tm := a.cfg.Telemetry; tm != nil {
		start := time.Now()
		defer func() { tm.ObserveEntry(a.cfg.Mode.String(), a.cfg.Domain.ID(), time.Since(start)) }()
	}
	a.stats.entryPoints.Add(1)
	res := &EntryResult{
		Entry:  m.Qualified(),
		Method: m,
		Events: make(map[secmodel.Event]*EventResult),
	}
	f := a.prog.FuncOf(m)
	if f == nil {
		// Native entry point: the native body itself is the event, with no
		// preceding checks.
		if m.IsNative() {
			res.addEvent(secmodel.NativeEvent(m), a.entryState(), a.cfg.Mode)
			res.addEvent(secmodel.ReturnEvent(), a.entryState(), a.cfg.Mode)
		}
		res.Deps = []string{m.Qualified()}
		return res
	}
	t := a.getTask()
	sum := t.ispa(m, a.entryState(), nil, false, 0, true)
	for _, er := range sum.events {
		res.addEvent(a.ev.Event(er.id), er.st, a.cfg.Mode)
	}
	if a.cfg.CollectOrigins {
		res.Origins = append([]OriginRec(nil), sum.origins...)
	}
	res.Deps = a.depSigs(sum.deps)
	a.putTask(t)
	return res
}

// depSigs converts a summary's dependency set to sorted qualified
// signatures (overloads that collide on signature conflate — the IR hash
// layer combines their hashes the same way, so reuse stays sound).
func (a *Analyzer) depSigs(deps bitset.Set) []string {
	methods := a.prog.Types.AllMethods()
	out := make([]string, 0, deps.Len())
	deps.ForEach(func(id int) {
		out = append(out, methods[id].Qualified())
	})
	sort.Strings(out)
	return out
}

// lookupMemo consults the summary cache appropriate to the memo mode.
func (t *task) lookupMemo(key memoKey) (*summary, bool) {
	switch t.a.cfg.Memo {
	case MemoNone:
		return nil, false
	case MemoPerEntry:
		s, ok := t.memo[key]
		return s, ok
	}
	sh := &t.a.memo[key.stripe()]
	sh.mu.RLock()
	s, ok := sh.m[key]
	sh.mu.RUnlock()
	return s, ok
}

// storeMemo publishes an immutable summary under the memo mode's cache.
func (t *task) storeMemo(key memoKey, s *summary) {
	switch t.a.cfg.Memo {
	case MemoNone:
		return
	case MemoPerEntry:
		t.memo[key] = s
		return
	}
	sh := &t.a.memo[key.stripe()]
	sh.mu.Lock()
	sh.m[key] = s
	sh.mu.Unlock()
}

func (a *Analyzer) entryState() state {
	st := state{}
	if a.cfg.Mode == Must {
		st.bits = policy.Empty // no checks performed yet on entry
	}
	if a.cfg.CollectPaths {
		st.paths = policy.PathEmpty()
	}
	return st
}

func (r *EntryResult) addEvent(ev secmodel.Event, st state, mode Mode) {
	er := r.Events[ev]
	if er == nil {
		er = &EventResult{}
		if mode == Must {
			// ⊤ of the MUST lattice in any domain: all 64 bits, immediately
			// intersected with the first occurrence's state below.
			er.Checks = ^policy.CheckSet(0)
		}
		r.Events[ev] = er
	}
	if mode == Must {
		er.Checks = er.Checks.Intersect(st.bits)
	} else {
		er.Checks = er.Checks.Union(st.bits)
	}
	if er.Occurrences == 0 {
		er.Paths = st.paths
	} else {
		er.Paths = er.Paths.Join(st.paths)
	}
	er.Occurrences++
}

// SortedEvents returns the entry's events in deterministic order.
func (r *EntryResult) SortedEvents() []secmodel.Event {
	out := make([]secmodel.Event, 0, len(r.Events))
	for ev := range r.Events {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ---------------------------------------------------------------------------
// Analysis state

// state is the dataflow value of SPDA: the set of checks that may/must
// have executed, plus optional bounded path alternatives.
type state struct {
	bits  policy.CheckSet
	paths policy.PathSets
}

func (a *Analyzer) meet(x, y state) state {
	out := state{}
	if a.cfg.Mode == Must {
		out.bits = x.bits.Intersect(y.bits)
	} else {
		out.bits = x.bits.Union(y.bits)
	}
	if a.cfg.CollectPaths {
		out.paths = x.paths.Join(y.paths)
	}
	return out
}

func (a *Analyzer) stateEqual(x, y state) bool {
	if x.bits != y.bits {
		return false
	}
	if a.cfg.CollectPaths && !x.paths.Equal(y.paths) {
		return false
	}
	return true
}

func (st state) withCheck(id secmodel.CheckID, paths bool) state {
	out := state{bits: st.bits.With(id)}
	if paths {
		out.paths = st.paths.AddCheck(id)
	} else {
		out.paths = st.paths
	}
	return out
}
