// Package analysis implements the paper's core contribution: the flow- and
// context-sensitive interprocedural security policy analysis.
//
// SPDA (Algorithm 1) is the intraprocedural worklist dataflow over the
// powerset-of-checks lattice; ISPA (Algorithm 2) extends it across calls
// with context sensitivity and memoizes summaries keyed on the method, the
// inbound policy flow value, and the constant parameter values.
// Interprocedural constant propagation binds constant arguments into
// callees so that constant-guarded checks (the paper's Figure 4) are
// analyzed precisely; checks inside AccessController.doPrivileged blocks
// are semantic no-ops (Section 6.2).
package analysis

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle/internal/callgraph"
	"policyoracle/internal/cfg"
	"policyoracle/internal/constprop"
	"policyoracle/internal/ir"
	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/telemetry"
	"policyoracle/internal/types"
)

// Mode selects the dataflow meet: MAY (union) or MUST (intersection).
type Mode int

// Analysis modes.
const (
	May Mode = iota
	Must
)

func (m Mode) String() string {
	if m == Must {
		return "must"
	}
	return "may"
}

// MemoMode selects summary reuse, the swept parameter of Table 2.
type MemoMode int

// Memoization modes.
const (
	MemoGlobal   MemoMode = iota // summaries reused across all entry points
	MemoPerEntry                 // summaries reused within one entry point
	MemoNone                     // every call re-analyzed
)

func (m MemoMode) String() string {
	switch m {
	case MemoGlobal:
		return "global"
	case MemoPerEntry:
		return "per-entry"
	default:
		return "none"
	}
}

// Config controls one analysis run.
type Config struct {
	Mode   Mode
	Events secmodel.EventMode
	// ICP enables interprocedural constant propagation (binding constant
	// arguments into callees). Intraprocedural constant propagation is
	// always on, as in Soot.
	ICP bool
	// AssumeSecurityManager folds `System.getSecurityManager() != null`
	// guards to the taken branch, so guarded checks participate in MUST
	// policies (the library is analyzed as if a manager is installed).
	AssumeSecurityManager bool
	Memo                  MemoMode
	// MaxDepth bounds interprocedural descent; 0 analyzes entry-point
	// bodies only (used to classify intraprocedural root causes) and -1 is
	// unlimited.
	MaxDepth int
	// CollectPaths tracks bounded per-path check conjunctions (Figure 2
	// style); valid in May mode only.
	CollectPaths bool
	// CollectOrigins records, per check, the methods whose bodies invoke
	// it (for root-cause grouping of report manifestations).
	CollectOrigins bool
	// RecursionBound allows re-analyzing a method already on the call
	// stack up to this many times before cutting off. 0 is the paper's
	// main implementation (recursive calls are not re-analyzed); Section
	// 4.2 notes the bounded-traversal alternative this option implements.
	RecursionBound int
	// CollectGuards records, per check occurrence, the source positions of
	// the branch conditions dominating it — the MAY-policy conditions
	// Section 6.4 says are easy to report (and overwhelming to read, which
	// is why this is opt-in display data rather than comparison input).
	CollectGuards bool
	// Telemetry, when non-nil, receives a per-entry-point analysis
	// duration sample from every AnalyzeEntry call (the mode label is
	// Mode.String()). Nil — the default — costs one pointer comparison
	// per entry and never perturbs analysis results: telemetry observes
	// the analyzer, it cannot steer it.
	Telemetry *telemetry.ExtractMetrics
}

// DefaultConfig returns the configuration used for the paper's main
// results: MAY or MUST, narrow events, ICP on, global memoization.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:                  mode,
		Events:                secmodel.NarrowEvents,
		ICP:                   true,
		AssumeSecurityManager: true,
		Memo:                  MemoGlobal,
		MaxDepth:              -1,
		CollectPaths:          mode == May,
		CollectOrigins:        true,
	}
}

// Stats counts analysis work for the Table 2 reproduction.
//
// Under concurrent extraction with global memoization, two workers may
// race to a cold memo key and both solve it; MethodAnalyses then counts
// both solves, so it can exceed the sequential count by the number of
// such races. The analysis results themselves are unaffected (summaries
// are pure functions of their key), and all other counters merge exactly.
type Stats struct {
	MethodAnalyses int // SPDA solves (memo misses)
	MemoHits       int
	CPRuns         int // constant propagation solves
	CPHits         int
	EntryPoints    int
}

// atomicStats is the analyzer-internal accumulator behind Stats: plain
// atomic counters so concurrent entry analyses merge without locks.
type atomicStats struct {
	methodAnalyses atomic.Int64
	memoHits       atomic.Int64
	cpRuns         atomic.Int64
	cpHits         atomic.Int64
	entryPoints    atomic.Int64
}

// cacheStripes is the number of lock stripes in the shared summary and
// constant-propagation caches. A power of two well above typical core
// counts keeps contention negligible without bloating the analyzer.
const cacheStripes = 64

// memoStripe is one lock-striped shard of the global summary cache.
// Stored summaries are immutable, so readers share them freely.
type memoStripe struct {
	mu sync.RWMutex
	m  map[memoKey]*summary
}

// cpStripe is one lock-striped shard of the global constant-propagation
// cache; constprop.Result is read-only after Analyze returns.
type cpStripe struct {
	mu sync.RWMutex
	m  map[cpKey]*constprop.Result
}

// Analyzer runs ISPA over one program under one configuration.
//
// An Analyzer is safe for concurrent use: AnalyzeEntry may be called from
// many goroutines at once. All mutable state is either striped behind
// locks here (the summary/CP/taint/dominator caches and the call-site
// resolution cache, all holding immutable values) or private to one
// AnalyzeEntry invocation (the recursion stack and recorder, see task).
type Analyzer struct {
	prog *ir.Program
	res  *callgraph.Resolver
	cfg  Config

	memo    [cacheStripes]memoStripe
	cp      [cacheStripes]cpStripe
	taintMu sync.RWMutex
	taints  map[*ir.Func]map[*ir.Local]uint64
	sites   sync.Map // *ir.Call → siteEntry
	domMu   sync.Mutex
	doms    map[*ir.Func]*cfg.Dominators
	stats   atomicStats
}

type memoKey struct {
	method int
	priv   bool
	in     string
	consts string
}

// stripe maps the key onto a cache stripe with an FNV-1a mix of its
// fields, spreading keys that share a method across stripes.
func (k memoKey) stripe() int {
	h := fnvMix(uint64(k.method)*2+boolBit(k.priv), k.in)
	h = fnvMix(h, k.consts)
	return int(h % cacheStripes)
}

type cpKey struct {
	method int
	consts string
}

func (k cpKey) stripe() int {
	return int(fnvMix(uint64(k.method), k.consts) % cacheStripes)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func fnvMix(seed uint64, s string) uint64 {
	const prime = 1099511628211
	h := (14695981039346656037 ^ seed) * prime
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime
	}
	return h
}

// New returns an analyzer for p.
func New(p *ir.Program, res *callgraph.Resolver, cfg Config) *Analyzer {
	if cfg.CollectPaths && cfg.Mode != May {
		cfg.CollectPaths = false
	}
	a := &Analyzer{
		prog:   p,
		res:    res,
		cfg:    cfg,
		taints: make(map[*ir.Func]map[*ir.Local]uint64),
	}
	for i := range a.memo {
		a.memo[i].m = make(map[memoKey]*summary)
	}
	for i := range a.cp {
		a.cp[i].m = make(map[cpKey]*constprop.Result)
	}
	return a
}

// Stats returns the accumulated work counters.
func (a *Analyzer) Stats() Stats {
	return Stats{
		MethodAnalyses: int(a.stats.methodAnalyses.Load()),
		MemoHits:       int(a.stats.memoHits.Load()),
		CPRuns:         int(a.stats.cpRuns.Load()),
		CPHits:         int(a.stats.cpHits.Load()),
		EntryPoints:    int(a.stats.entryPoints.Load()),
	}
}

// Resolver exposes the analyzer's call-site resolver.
func (a *Analyzer) Resolver() *callgraph.Resolver { return a.res }

// OriginRec records that a check is invoked in a method's body. With
// Config.CollectGuards, Guards lists the source positions of the branch
// conditions that dominate the check (empty for unconditional checks).
type OriginRec struct {
	Check  secmodel.CheckID
	Sig    string
	Guards string // comma-joined guard positions, "" when unconditional
}

// EventResult is the per-event outcome of one entry-point analysis in one
// mode: the combined check set (∩ across occurrences for MUST, ∪ for MAY)
// and the path alternatives.
type EventResult struct {
	Checks      policy.CheckSet
	Paths       policy.PathSets
	Occurrences int
}

// EntryResult is the outcome of analyzing one API entry point.
type EntryResult struct {
	Entry   string
	Method  *types.Method
	Events  map[secmodel.Event]*EventResult
	Origins []OriginRec
	// Deps lists the sorted qualified signatures of every method whose
	// body the analysis visited for this entry, the entry itself included —
	// the entry's dependency set for incremental extraction.
	Deps []string
}

// task is the state private to one AnalyzeEntry invocation: the recursion
// stack of the ISPA descent and, under MemoPerEntry/MemoNone, the
// entry-scoped caches. Concurrent entry analyses each run on their own
// task and share only the Analyzer's striped caches.
type task struct {
	a      *Analyzer
	active map[*types.Method]int
	memo   map[memoKey]*summary        // entry-local summaries (MemoPerEntry)
	cp     map[cpKey]*constprop.Result // entry-local CP results (MemoPerEntry/MemoNone)
}

// AnalyzeEntry runs ISPA rooted at entry point m. It is safe to call from
// multiple goroutines concurrently.
func (a *Analyzer) AnalyzeEntry(m *types.Method) *EntryResult {
	if tm := a.cfg.Telemetry; tm != nil {
		start := time.Now()
		defer func() { tm.ObserveEntry(a.cfg.Mode.String(), time.Since(start)) }()
	}
	a.stats.entryPoints.Add(1)
	t := &task{a: a, active: make(map[*types.Method]int)}
	if a.cfg.Memo != MemoGlobal {
		t.memo = make(map[memoKey]*summary)
		t.cp = make(map[cpKey]*constprop.Result)
	}
	res := &EntryResult{
		Entry:  m.Qualified(),
		Method: m,
		Events: make(map[secmodel.Event]*EventResult),
	}
	f := a.prog.FuncOf(m)
	if f == nil {
		// Native entry point: the native body itself is the event, with no
		// preceding checks.
		if m.IsNative() {
			res.addEvent(secmodel.NativeEvent(m), a.entryState(), a.cfg.Mode)
			res.addEvent(secmodel.ReturnEvent(), a.entryState(), a.cfg.Mode)
		}
		res.Deps = []string{m.Qualified()}
		return res
	}
	sum := t.ispa(m, a.entryState(), nil, false, 0, true)
	for _, er := range sum.events {
		res.addEvent(er.ev, er.st, a.cfg.Mode)
	}
	if a.cfg.CollectOrigins {
		res.Origins = append([]OriginRec(nil), sum.origins...)
	}
	res.Deps = depSigs(sum.deps)
	return res
}

// depSigs converts a summary's dependency set to sorted qualified
// signatures (overloads that collide on signature conflate — the IR hash
// layer combines their hashes the same way, so reuse stays sound).
func depSigs(deps []*types.Method) []string {
	out := make([]string, 0, len(deps))
	for _, d := range deps {
		out = append(out, d.Qualified())
	}
	sort.Strings(out)
	return out
}

// lookupMemo consults the summary cache appropriate to the memo mode.
func (t *task) lookupMemo(key memoKey) (*summary, bool) {
	switch t.a.cfg.Memo {
	case MemoNone:
		return nil, false
	case MemoPerEntry:
		s, ok := t.memo[key]
		return s, ok
	}
	sh := &t.a.memo[key.stripe()]
	sh.mu.RLock()
	s, ok := sh.m[key]
	sh.mu.RUnlock()
	return s, ok
}

// storeMemo publishes an immutable summary under the memo mode's cache.
func (t *task) storeMemo(key memoKey, s *summary) {
	switch t.a.cfg.Memo {
	case MemoNone:
		return
	case MemoPerEntry:
		t.memo[key] = s
		return
	}
	sh := &t.a.memo[key.stripe()]
	sh.mu.Lock()
	sh.m[key] = s
	sh.mu.Unlock()
}

func (a *Analyzer) entryState() state {
	st := state{}
	if a.cfg.Mode == Must {
		st.bits = policy.Empty // no checks performed yet on entry
	}
	if a.cfg.CollectPaths {
		st.paths = policy.PathEmpty()
	}
	return st
}

func (r *EntryResult) addEvent(ev secmodel.Event, st state, mode Mode) {
	er := r.Events[ev]
	if er == nil {
		er = &EventResult{}
		if mode == Must {
			er.Checks = policy.Full
		}
		r.Events[ev] = er
	}
	if mode == Must {
		er.Checks = er.Checks.Intersect(st.bits)
	} else {
		er.Checks = er.Checks.Union(st.bits)
	}
	if er.Occurrences == 0 {
		er.Paths = st.paths
	} else {
		er.Paths = er.Paths.Join(st.paths)
	}
	er.Occurrences++
}

// SortedEvents returns the entry's events in deterministic order.
func (r *EntryResult) SortedEvents() []secmodel.Event {
	out := make([]secmodel.Event, 0, len(r.Events))
	for ev := range r.Events {
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// ---------------------------------------------------------------------------
// Analysis state

// state is the dataflow value of SPDA: the set of checks that may/must
// have executed, plus optional bounded path alternatives.
type state struct {
	bits  policy.CheckSet
	paths policy.PathSets
}

func (a *Analyzer) meet(x, y state) state {
	out := state{}
	if a.cfg.Mode == Must {
		out.bits = x.bits.Intersect(y.bits)
	} else {
		out.bits = x.bits.Union(y.bits)
	}
	if a.cfg.CollectPaths {
		out.paths = x.paths.Join(y.paths)
	}
	return out
}

func (a *Analyzer) stateEqual(x, y state) bool {
	if x.bits != y.bits {
		return false
	}
	if a.cfg.CollectPaths && !x.paths.Equal(y.paths) {
		return false
	}
	return true
}

func (st state) key(paths bool) string {
	if !paths {
		return fmt.Sprintf("%x", uint64(st.bits))
	}
	return fmt.Sprintf("%x|%s", uint64(st.bits), st.paths.Key())
}

func (st state) withCheck(id secmodel.CheckID, paths bool) state {
	out := state{bits: st.bits.With(id)}
	if paths {
		out.paths = st.paths.AddCheck(id)
	} else {
		out.paths = st.paths
	}
	return out
}
