package analysis

import (
	"testing"

	"policyoracle/internal/policy"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// Edge-case coverage for the analysis: switch policies, exception-flow
// conservatism, deep constant delegation, unresolvable privileged actions,
// and check identification subtleties.

func TestSwitchPolicies(t *testing.T) {
	src := `
package java.lang;
public class Sw {
  SecurityManager sm;
  public void m(int k) {
    switch (k) {
    case 1:
      sm.checkRead("a");
      break;
    case 2:
      sm.checkWrite("b");
      break;
    default:
      sm.checkRead("a");
    }
    op0();
  }
  native void op0();
}
`
	may := analyzeOne(t, DefaultConfig(May), "java.lang.Sw", "m", src)
	must := analyzeOne(t, DefaultConfig(Must), "java.lang.Sw", "m", src)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	if got := eventResult(t, may, nat).Checks; got != setOf(t, "checkRead", 1, "checkWrite", 1) {
		t.Errorf("may = %s", got)
	}
	// No single check dominates (case 2 performs only checkWrite).
	if got := eventResult(t, must, nat).Checks; !got.IsEmpty() {
		t.Errorf("must = %s, want empty", got)
	}
}

func TestSwitchFallthroughPolicies(t *testing.T) {
	src := `
package java.lang;
public class Sw {
  SecurityManager sm;
  public void m(int k) {
    switch (k) {
    case 1:
      sm.checkRead("a");
    default:
      sm.checkWrite("b");
    }
    op0();
  }
  native void op0();
}
`
	must := analyzeOne(t, DefaultConfig(Must), "java.lang.Sw", "m", src)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	// checkWrite executes on every path (case 1 falls through; default).
	if got := eventResult(t, must, nat).Checks; got != setOf(t, "checkWrite", 1) {
		t.Errorf("must = %s, want {checkWrite}", got)
	}
}

func TestTryCatchMustConservatism(t *testing.T) {
	// A check inside try must not count as MUST at an event inside catch:
	// the exception may fire before the check.
	src := `
package java.lang;
public class TC {
  SecurityManager sm;
  public void m() {
    try {
      sm.checkRead("f");
      risky();
    } catch (Exception e) {
      op0();
    }
  }
  void risky() { }
  native void op0();
}
`
	must := analyzeOne(t, DefaultConfig(Must), "java.lang.TC", "m", src)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	if got := eventResult(t, must, nat).Checks; !got.IsEmpty() {
		t.Errorf("must in catch = %s, want empty (exception may precede check)", got)
	}
	may := analyzeOne(t, DefaultConfig(May), "java.lang.TC", "m", src)
	if got := eventResult(t, may, nat).Checks; !got.IsEmpty() {
		t.Errorf("may in catch = %s (handler modeled from try entry)", got)
	}
}

func TestCheckAfterEventDoesNotCount(t *testing.T) {
	src := `
package java.lang;
public class Late {
  SecurityManager sm;
  public void m() {
    op0();
    sm.checkRead("f");
  }
  native void op0();
}
`
	may := analyzeOne(t, DefaultConfig(May), "java.lang.Late", "m", src)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	if got := eventResult(t, may, nat).Checks; !got.IsEmpty() {
		t.Errorf("check after event counted: %s", got)
	}
	// But it does reach the API return.
	if got := eventResult(t, may, secmodel.ReturnEvent()).Checks; got != setOf(t, "checkRead", 1) {
		t.Errorf("return checks = %s", got)
	}
}

func TestDeepConstantDelegation(t *testing.T) {
	// Constants must flow through two delegation levels (ICP memo keys
	// include the constant binding at each level).
	src := `
package java.lang;
public class Deep {
  SecurityManager sm;
  public void top() {
    mid(null);
  }
  public void mid(Object h) {
    bottom(h);
  }
  void bottom(Object h) {
    if (h != null) {
      sm.checkRead("f");
    }
    op0();
  }
  native void op0();
}
`
	may := analyzeOne(t, DefaultConfig(May), "java.lang.Deep", "top", src)
	nat := secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"}
	if got := eventResult(t, may, nat).Checks; !got.IsEmpty() {
		t.Errorf("null did not propagate two levels: %s", got)
	}
	// The mid entry itself (unknown h) keeps the check as MAY.
	mayMid := analyzeOne(t, DefaultConfig(May), "java.lang.Deep", "mid", src)
	if got := eventResult(t, mayMid, nat).Checks; got != setOf(t, "checkRead", 1) {
		t.Errorf("mid may = %s", got)
	}
}

func TestDoPrivilegedWithUnresolvableAction(t *testing.T) {
	// Two allocated actions: run() cannot resolve; the analysis must skip
	// the privileged body rather than guess.
	src := `
package java.lang;
public class A1 implements PrivilegedAction {
  public Object run() { op1(); return null; }
  native void op1();
}
public class A2 implements PrivilegedAction {
  public Object run() { op2(); return null; }
  native void op2();
}
public class App {
  public void m(boolean k) {
    PrivilegedAction a = null;
    if (k) { a = new A1(); } else { a = new A2(); }
    AccessController.doPrivileged(a);
  }
}
`
	r := analyzeOne(t, DefaultConfig(May), "java.lang.App", "m", src)
	for ev := range r.Events {
		if ev.Kind == secmodel.NativeCall {
			t.Errorf("event %s leaked from unresolvable privileged action", ev)
		}
	}
}

func TestProtectedEntryPointAnalyzed(t *testing.T) {
	src := `
package java.lang;
public class P {
  SecurityManager sm;
  protected void guard() {
    sm.checkExit(1);
    op0();
  }
  native void op0();
}
`
	p, res := buildProgram(t, src)
	var guard *types.Method
	for _, m := range p.Types.EntryPoints() {
		if m.Name == "guard" {
			guard = m
		}
	}
	if guard == nil {
		t.Fatal("protected method not an entry point")
	}
	a := New(p, res, DefaultConfig(Must))
	r := a.AnalyzeEntry(guard)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
	if nat.Checks != setOf(t, "checkExit", 1) {
		t.Errorf("protected entry checks = %s", nat.Checks)
	}
}

func TestCheckOnOwnClassNotConfused(t *testing.T) {
	// A method named like a check on a non-SecurityManager class is not a
	// security check.
	src := `
package java.lang;
public class Fake {
  public void checkRead(String f) { }
  public void m() {
    checkRead("f");
    op0();
  }
  native void op0();
}
`
	r := analyzeOne(t, DefaultConfig(May), "java.lang.Fake", "m", src)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
	if !nat.Checks.IsEmpty() {
		t.Errorf("fake check counted: %s", nat.Checks)
	}
}

func TestPathsCapOverflowStillSound(t *testing.T) {
	// More conditional checks than PathCap: the path sets collapse to the
	// union but the flat MAY set stays exact.
	src := `
package java.lang;
public class Many {
  SecurityManager sm;
  public void m(int k) {
    if (k > 0) { sm.checkRead("a"); }
    if (k > 1) { sm.checkWrite("a"); }
    if (k > 2) { sm.checkExit(k); }
    if (k > 3) { sm.checkLink("a"); }
    op0();
  }
  native void op0();
}
`
	cfg := DefaultConfig(May)
	r := analyzeOne(t, cfg, "java.lang.Many", "m", src)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
	want := setOf(t, "checkRead", 1, "checkWrite", 1, "checkExit", 1, "checkLink", 1)
	if nat.Checks != want {
		t.Errorf("may = %s", nat.Checks)
	}
	if nat.Paths.Union() != want {
		t.Errorf("paths union = %s, want %s", nat.Paths.Union(), want)
	}
}

func TestGuardCollection(t *testing.T) {
	cfg := DefaultConfig(May)
	cfg.CollectGuards = true
	r := analyzeOne(t, cfg, "java.net.DatagramSocket", "connect", figure1JDK)
	accept := checkID(t, "checkAccept", 2)
	var acceptGuards []string
	for _, o := range r.Origins {
		if o.Check == accept {
			acceptGuards = append(acceptGuards, o.Guards)
		}
	}
	if len(acceptGuards) == 0 {
		t.Fatal("no guard records for checkAccept")
	}
	for _, g := range acceptGuards {
		if g == "" {
			t.Error("checkAccept recorded as unconditional; it is branch-guarded")
		}
	}

	// An unconditional check records an empty guard list.
	r2cfg := DefaultConfig(May)
	r2cfg.CollectGuards = true
	r2 := analyzeOne(t, r2cfg, "java.net.Conn", "open", simpleSrc)
	for _, o := range r2.Origins {
		if o.Guards != "" {
			t.Errorf("unconditional check has guards %q", o.Guards)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	p, res := buildProgram(t, simpleSrc)
	a := New(p, res, DefaultConfig(May))
	for _, m := range p.Types.EntryPoints() {
		a.AnalyzeEntry(m)
	}
	st := a.Stats()
	if st.EntryPoints == 0 || st.MethodAnalyses == 0 || st.CPRuns == 0 {
		t.Errorf("stats degenerate: %+v", st)
	}
}

func TestEventOccurrenceCounting(t *testing.T) {
	src := `
package java.lang;
public class Twice {
  SecurityManager sm;
  public void m(boolean k) {
    if (k) {
      sm.checkRead("a");
      op0();
    } else {
      op0();
    }
  }
  native void op0();
}
`
	r := analyzeOne(t, DefaultConfig(Must), "java.lang.Twice", "m", src)
	nat := eventResult(t, r, secmodel.Event{Kind: secmodel.NativeCall, Key: "op0/0"})
	if nat.Occurrences != 2 {
		t.Errorf("occurrences = %d", nat.Occurrences)
	}
	// Combining: one occurrence has the check, the other does not → ∩ = ∅.
	if !nat.Checks.IsEmpty() {
		t.Errorf("combined must = %s", nat.Checks)
	}
	if nat.Checks != policy.Empty {
		t.Errorf("combined must not empty: %s", nat.Checks)
	}
}
