package analysis

import (
	"sort"
	"strings"

	"policyoracle/internal/bitset"
	"policyoracle/internal/cfg"
	"policyoracle/internal/constprop"
	"policyoracle/internal/ir"
	"policyoracle/internal/secmodel"
	"policyoracle/internal/types"
)

// eventRec is one security-sensitive event occurrence with the analysis
// state (checks performed) at that point. Events are recorded as interned
// per-program ids (see secmodel.ProgramEvents) and rendered back to
// secmodel.Event values only when an entry result is assembled.
type eventRec struct {
	id secmodel.EventID
	st state
}

// summary is the memoized result of analyzing one method in one context:
// the exit state (meet over its returns) and every event occurring within
// the method or its callees. Summaries are immutable once stored.
//
// truncated marks a summary whose computation hit the recursion cutoff —
// either the cutoff's own placeholder result or any summary derived from
// one. Truncated summaries are valid for the call tree that produced them
// (the cutoff is exactly the paper's Section 4.2 treatment of recursion)
// but depend on which methods were on the stack at the time, so they are
// never memoized: caching one would let a later analysis that reaches the
// same method outside the cycle silently drop the checks and events cut
// off here.
type summary struct {
	out     state
	events  []eventRec
	origins []OriginRec
	// deps is the set of methods (by Method.ID) whose analyzed bodies this
	// summary was computed from: the method itself plus the dependency
	// sets of every callee summary merged during the recording pass, as a
	// bitset so callee merges are O(words) unions. Incremental extraction
	// re-analyzes an entry point iff any method in its dependency set
	// changed; methods resolved but skipped (no body, unresolved, beyond
	// MaxDepth) are covered by the caller's own IR hash, which records the
	// resolution facts of each call site.
	deps      bitset.Set
	truncated bool
}

// recorder accumulates events during the post-convergence recording pass.
// deps is task-owned scratch (see task.getSet), released after the
// summary snapshots it.
type recorder struct {
	events    []eventRec
	origins   []OriginRec
	deps      bitset.Set
	exit      state
	haveExit  bool
	truncated bool
}

func (r *recorder) event(id secmodel.EventID, st state) {
	r.events = append(r.events, eventRec{id, st})
}

func (r *recorder) merge(s *summary) {
	r.events = append(r.events, s.events...)
	r.origins = append(r.origins, s.origins...)
	r.truncated = r.truncated || s.truncated
	r.deps.UnionWith(s.deps)
}

func (r *recorder) exitAt(a *Analyzer, st state) {
	if !r.haveExit {
		r.exit = st
		r.haveExit = true
	} else {
		r.exit = a.meet(r.exit, st)
	}
}

// ispa analyzes method m with inbound state in and abstract argument
// values argConsts (Algorithm 2). priv marks privileged execution; depth
// is the interprocedural nesting level; isEntry marks the API entry point
// whose returns are security-sensitive events.
func (t *task) ispa(m *types.Method, in state, argConsts []constprop.Value, priv bool, depth int, isEntry bool) *summary {
	a := t.a
	f := a.prog.FuncOf(m)
	if f == nil {
		return &summary{out: in}
	}
	priv = priv || a.cfg.Domain.IsPrivilegedScope(m)

	var constsID uint32
	if a.cfg.ICP {
		constsID = a.consts.id(argConsts)
	}
	key := memoKey{method: int32(m.ID), bits: in.bits, consts: constsID}
	if a.cfg.CollectPaths {
		key.paths = a.paths.id(in.paths)
	}
	if priv {
		key.flags |= keyPriv
	}
	if isEntry {
		key.flags |= keyEntry // entry analyses also record return events
	}
	if s, ok := t.lookupMemo(key); ok {
		a.stats.memoHits.Add(1)
		return s
	}
	if t.active[m.ID] > int32(a.cfg.RecursionBound) {
		// Recursive call beyond the bound: do not re-analyze (Section 4.2;
		// the default bound of 0 matches the paper's implementation). The
		// placeholder is truncated so that no summary computed from it is
		// ever memoized.
		return &summary{out: in, truncated: true}
	}
	t.active[m.ID]++
	defer func() { t.active[m.ID]-- }()
	a.stats.methodAnalyses.Add(1)

	cp := t.constants(m, f, argConsts)

	fr := t.getFrame()
	fr.m, fr.f, fr.cp = m, f, cp
	fr.priv, fr.depth, fr.isEntry = priv, depth, isEntry
	fr.prob.Blocks = f.Blocks
	fr.prob.EntryIn = in
	// The solution aliases the frame's solver buffers. Nested ispa calls
	// made by the recording pass below run on their own frames, so the
	// buffers stay valid until putFrame.
	sol := fr.solver.Solve(&fr.prob)

	// Recording pass over the converged solution.
	rec := &recorder{deps: t.getSet()}
	for _, b := range f.Blocks {
		if !sol.Reached[b.Index] {
			continue
		}
		t.transferBlock(m, f, b, sol.In[b.Index], cp, priv, depth, isEntry, rec)
	}
	out := in
	if rec.haveExit {
		out = rec.exit
	}
	rec.deps.Add(m.ID)
	s := &summary{out: out, events: rec.events, origins: dedupOrigins(rec.origins), deps: rec.deps.Clone(), truncated: rec.truncated}
	t.putSet(rec.deps)
	t.putFrame(fr)
	if !s.truncated {
		// A summary computed beneath an active recursion cutoff reflects
		// that cutoff, not the method's full behavior; memoizing it would
		// poison later analyses that reach this method outside the cycle.
		t.storeMemo(key, s)
	}
	return s
}

func dedupOrigins(in []OriginRec) []OriginRec {
	if len(in) <= 1 {
		return in
	}
	seen := make(map[OriginRec]bool, len(in))
	out := in[:0]
	for _, o := range in {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// constants runs (and caches) conditional constant propagation for f
// under the given parameter binding. The cache is entry-local under
// MemoPerEntry/MemoNone and lock-striped globally under MemoGlobal.
func (t *task) constants(m *types.Method, f *ir.Func, argConsts []constprop.Value) *constprop.Result {
	a := t.a
	key := cpKey{method: int32(m.ID)}
	if a.cfg.ICP {
		key.consts = a.consts.id(argConsts)
	} else {
		argConsts = nil
	}
	var sh *cpStripe
	if t.cp != nil {
		if r, ok := t.cp[key]; ok {
			a.stats.cpHits.Add(1)
			return r
		}
	} else {
		sh = &a.cp[key.stripe()]
		sh.mu.RLock()
		r, ok := sh.m[key]
		sh.mu.RUnlock()
		if ok {
			a.stats.cpHits.Add(1)
			return r
		}
	}
	a.stats.cpRuns.Add(1)
	r := constprop.Analyze(f, argConsts, constprop.Config{
		AssumeSecurityManager: a.cfg.AssumeSecurityManager,
		IsGetSecurityManager:  a.cfg.Domain.IsGetSecurityManager,
	})
	if t.cp != nil {
		t.cp[key] = r
	} else {
		sh.mu.Lock()
		sh.m[key] = r
		sh.mu.Unlock()
	}
	return r
}

// unresolvedSite marks a call site that resolved to no target, so the
// cache can distinguish "resolved to nothing" from "not yet resolved".
var unresolvedSite = new(types.Method)

// resolveSite resolves a call site once, caching the result and counting
// it in the resolver statistics exactly once. The cache is a flat slice
// of atomic pointers indexed by the site id interned at lowering, so the
// warm path (the overwhelming majority of lookups) is one lock-free array
// load; on a racing cold miss both goroutines resolve (resolution is
// pure) but only the one that publishes the entry records the statistics
// outcome.
func (a *Analyzer) resolveSite(c *ir.Call) *types.Method {
	slot := &a.sites[c.Site]
	if t := slot.Load(); t != nil {
		if t == unresolvedSite {
			return nil
		}
		return t
	}
	t := a.res.ResolveQuiet(c)
	stored := t
	if stored == nil {
		stored = unresolvedSite
	}
	if slot.CompareAndSwap(nil, stored) {
		a.res.RecordOutcome(t != nil)
	}
	return t
}

// transferBlock interprets one block: checks extend the state, resolved
// calls are analyzed recursively (ISPA), native calls and — in broad mode —
// private field and parameter accesses are security-sensitive events.
// When rec is nil the pass only computes the state transformation.
func (t *task) transferBlock(m *types.Method, f *ir.Func, b *ir.Block, st state, cp *constprop.Result, priv bool, depth int, isEntry bool, rec *recorder) state {
	a := t.a
	broad := a.cfg.Events == secmodel.BroadEvents
	var taint []uint64
	if broad && isEntry && rec != nil {
		taint = a.taintOf(f)
	}
	for _, instr := range b.Instrs {
		switch instr := instr.(type) {
		case *ir.Call:
			st = t.transferCall(m, f, b, instr, st, cp, priv, depth, rec, taint)
		case *ir.Return:
			if rec != nil {
				rec.exitAt(a, st)
				if isEntry {
					rec.event(a.ev.ReturnID(), st)
				}
			}
		case *ir.FieldLoad:
			if rec != nil && broad {
				if instr.Field != nil && instr.Field.IsPrivate() {
					rec.event(a.ev.PrivateReadID(instr.Field), st)
				}
				a.paramEvents(rec, taint, st, instr.Obj)
			}
		case *ir.FieldStore:
			if rec != nil && broad {
				if instr.Field != nil && instr.Field.IsPrivate() {
					rec.event(a.ev.PrivateWriteID(instr.Field), st)
				}
				a.paramEvents(rec, taint, st, instr.Obj, instr.Val)
			}
		}
	}
	return st
}

// transferCall handles one call site.
func (t *task) transferCall(m *types.Method, f *ir.Func, b *ir.Block, c *ir.Call, st state, cp *constprop.Result, priv bool, depth int, rec *recorder, taint []uint64) state {
	a := t.a
	// Security check invocation (Section 3): extends the flow value unless
	// executing inside a privileged block, where checks always succeed and
	// are semantic no-ops (Section 6.2).
	if id, ok := a.cfg.Domain.IdentifyCheck(c); ok {
		if priv {
			return st
		}
		if rec != nil && a.cfg.CollectOrigins {
			guards := ""
			if a.cfg.CollectGuards {
				guards = a.guardsOf(f, b)
			}
			rec.origins = append(rec.origins, OriginRec{Check: id, Sig: m.Qualified(), Guards: guards})
		}
		return st.withCheck(id, a.cfg.CollectPaths)
	}

	// Broad mode: method invocation on a parameter-derived receiver, and
	// parameter-derived data flowing out as arguments (reads of the
	// parameter, per Section 3's data-dependence tagging).
	if rec != nil && taint != nil {
		a.paramEvents(rec, taint, st, c.Recv)
		a.paramEvents(rec, taint, st, c.Args...)
	}

	// Privileged block entry: analyze the action's run() with checks
	// suppressed; events inside remain observable.
	if a.cfg.Domain.IsDoPrivileged(c) {
		run := a.resolveRun(c)
		if run != nil && a.prog.FuncOf(run) != nil && !a.depthExceeded(depth) {
			sum := t.ispa(run, st, nil, true, depth+1, false)
			if rec != nil {
				rec.merge(sum)
			}
			return sum.out
		}
		return st
	}

	target := a.resolveSite(c)
	if target == nil {
		return st // unresolved: skipped (Section 4, a source of inaccuracy)
	}
	if target.IsNative() {
		if rec != nil {
			rec.event(a.ev.NativeID(target), st)
		}
		return st
	}
	if a.prog.FuncOf(target) == nil || a.depthExceeded(depth) {
		return st
	}
	var argVals []constprop.Value
	if a.cfg.ICP {
		argVals = cp.CallArgs(c)
	}
	sum := t.ispa(target, st, argVals, priv, depth+1, false)
	if rec != nil {
		rec.merge(sum)
	}
	return sum.out
}

func (a *Analyzer) depthExceeded(depth int) bool {
	return a.cfg.MaxDepth >= 0 && depth >= a.cfg.MaxDepth
}

// paramEvents emits ParamAccess events for operands derived from entry
// parameters (broad event mode).
func (a *Analyzer) paramEvents(rec *recorder, taint []uint64, st state, ops ...ir.Operand) {
	if taint == nil {
		return
	}
	for _, op := range ops {
		l, ok := op.(*ir.Local)
		if !ok || l == nil {
			continue
		}
		mask := taint[l.Index]
		for i := 0; mask != 0; i++ {
			if mask&1 != 0 {
				rec.event(a.ev.ParamID(i), st)
			}
			mask >>= 1
		}
	}
}

// guardsOf returns the comma-joined source positions of the If conditions
// dominating block b in f — the conditions under which a check in b
// executes (Section 6.4's MAY-policy conditions).
func (a *Analyzer) guardsOf(f *ir.Func, b *ir.Block) string {
	a.domMu.Lock()
	dom := a.doms[f]
	if dom == nil {
		dom = cfg.ComputeDominators(f)
		if a.doms == nil {
			a.doms = make(map[*ir.Func]*cfg.Dominators)
		}
		a.doms[f] = dom
	}
	a.domMu.Unlock()
	var parts []string
	for _, blk := range f.Blocks {
		ifInstr, ok := blk.Term().(*ir.If)
		if !ok || blk == b {
			continue
		}
		if dom.Dominates(blk, b) {
			parts = append(parts, ifInstr.Pos().String())
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// resolveRun finds the concrete run() implementation of the action passed
// to doPrivileged.
func (a *Analyzer) resolveRun(c *ir.Call) *types.Method {
	if len(c.Args) == 0 {
		return nil
	}
	l, ok := c.Args[0].(*ir.Local)
	if !ok || l.Type.Class == nil {
		return nil
	}
	return a.res.ResolveOn(l.Type.Class, "run", 0)
}

// taintOf computes, per local of f (indexed by Local.Index), the bitmask
// of entry parameters it is data-dependent on (flow-insensitive closure
// over copies, arithmetic, casts, and array loads — the "event tag"
// propagation of Section 3).
func (a *Analyzer) taintOf(f *ir.Func) []uint64 {
	a.taintMu.RLock()
	t, ok := a.taints[f]
	a.taintMu.RUnlock()
	if ok {
		return t
	}
	taint := make([]uint64, len(f.Locals))
	for i, p := range f.Params {
		if i < 64 {
			taint[p.Index] = 1 << uint(i)
		}
	}
	maskOf := func(op ir.Operand) uint64 {
		if l, ok := op.(*ir.Local); ok && l != nil {
			return taint[l.Index]
		}
		return 0
	}
	changed := true
	for changed {
		changed = false
		add := func(dst *ir.Local, mask uint64) {
			if dst == nil || mask == 0 {
				return
			}
			if taint[dst.Index]&mask != mask {
				taint[dst.Index] |= mask
				changed = true
			}
		}
		for _, b := range f.Blocks {
			for _, instr := range b.Instrs {
				switch instr := instr.(type) {
				case *ir.Assign:
					add(instr.Dst, maskOf(instr.Src))
				case *ir.Binary:
					add(instr.Dst, maskOf(instr.X)|maskOf(instr.Y))
				case *ir.Unary:
					add(instr.Dst, maskOf(instr.X))
				case *ir.Cast:
					add(instr.Dst, maskOf(instr.X))
				case *ir.ArrayLoad:
					add(instr.Dst, maskOf(instr.Arr))
				case *ir.FieldLoad:
					add(instr.Dst, maskOf(instr.Obj))
				}
			}
		}
	}
	a.taintMu.Lock()
	if prior, ok := a.taints[f]; ok {
		taint = prior // another goroutine computed it first; share that copy
	} else {
		a.taints[f] = taint
	}
	a.taintMu.Unlock()
	return taint
}
