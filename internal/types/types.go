// Package types builds the program model for one MJ library implementation:
// the class table, the inheritance hierarchy, field and method resolution,
// and API entry-point enumeration.
//
// One Program corresponds to one library implementation (e.g. the "jdk"
// corpus). The security policy oracle builds one Program per implementation
// and matches their entry points by signature.
package types

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
)

// Program is the class table for one library implementation.
type Program struct {
	Name    string
	Classes map[string]*Class // by fully qualified name
	simple  map[string][]*Class
	methods []*Method // all methods, indexed by Method.ID
	Diags   *lang.Diagnostics

	// Sorted views are computed once: the class set is fixed after Build's
	// registration pass and entry-point status never changes, so repeated
	// AllClasses/EntryPoints calls share one slice. Callers must not
	// mutate the returned slices.
	classOnce sync.Once
	classList []*Class
	epOnce    sync.Once
	eps       []*Method
}

// Class is one class or interface.
type Class struct {
	Program     *Program
	Name        string // fully qualified, e.g. "java.net.Socket"
	Simple      string
	Package     string
	Mods        ast.Modifiers
	IsInterface bool
	Super       *Class
	Interfaces  []*Class
	Fields      []*Field
	Methods     []*Method
	Subclasses  []*Class // direct subclasses and implementors
	Decl        *ast.TypeDecl
	File        *ast.File

	fieldsByName map[string]*Field
	subsOnce     sync.Once
	subs         []*Class
}

// Field is one declared field.
type Field struct {
	Class *Class
	Name  string
	Type  Type
	Mods  ast.Modifiers
	Decl  *ast.FieldDecl
}

// Qualified returns the field's fully qualified name.
func (f *Field) Qualified() string { return f.Class.Name + "." + f.Name }

// IsPrivate reports whether the field is private.
func (f *Field) IsPrivate() bool { return f.Mods.Has(ast.ModPrivate) }

// Method is one declared method or constructor.
type Method struct {
	Class      *Class
	Name       string
	Mods       ast.Modifiers
	Params     []Type
	ParamNames []string
	Ret        Type
	IsCtor     bool
	Decl       *ast.MethodDecl
	ID         int // dense program-wide index

	// sig and qualified are cached by Build once parameter types are
	// resolved; the analysis hot path reads them on every memo probe and
	// dependency record, so they must not be rebuilt per call.
	sig       string
	qualified string
}

// Type is a resolved MJ type: a primitive (Prim != ""), a class reference
// (Class != nil), or an unresolved named type (Named != ""), each with an
// array dimension count.
type Type struct {
	Prim  string // "int", "boolean", "void", ...
	Class *Class
	Named string // unresolved reference type's source name
	Dims  int
}

// IsRef reports whether the type is a reference type (class, unresolved
// name, or any array).
func (t Type) IsRef() bool { return t.Dims > 0 || t.Class != nil || t.Named != "" }

// SimpleName returns the type's simple name plus array suffixes; it is the
// cross-implementation matching key for parameter types.
func (t Type) SimpleName() string {
	var base string
	switch {
	case t.Prim != "":
		base = t.Prim
	case t.Class != nil:
		base = t.Class.Simple
	default:
		base = simpleOf(t.Named)
	}
	return base + strings.Repeat("[]", t.Dims)
}

func (t Type) String() string { return t.SimpleName() }

func simpleOf(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// Sig returns the method's matching signature: name(paramSimpleNames).
// Constructors use the name "<init>".
func (m *Method) Sig() string {
	if m.sig != "" {
		return m.sig
	}
	return m.computeSig()
}

func (m *Method) computeSig() string {
	name := m.Name
	if m.IsCtor {
		name = "<init>"
	}
	parts := make([]string, len(m.Params))
	for i, p := range m.Params {
		parts[i] = p.SimpleName()
	}
	return name + "(" + strings.Join(parts, ",") + ")"
}

// cacheNames memoizes Sig and Qualified. Build calls it once per method
// after parameter types resolve; hand-built Methods that skip Build fall
// back to recomputing on every call.
func (m *Method) cacheNames() {
	m.sig = m.computeSig()
	m.qualified = m.Class.Name + "." + m.sig
}

// Qualified returns ClassFQN.Sig — the entry-point key.
func (m *Method) Qualified() string {
	if m.qualified != "" {
		return m.qualified
	}
	return m.Class.Name + "." + m.Sig()
}

func (m *Method) String() string { return m.Qualified() }

// IsNative reports whether the method is a native (JNI) method.
func (m *Method) IsNative() bool { return m.Mods.Has(ast.ModNative) }

// IsAbstract reports whether the method has no body because it is abstract
// or declared on an interface.
func (m *Method) IsAbstract() bool {
	return m.Mods.Has(ast.ModAbstract) || (m.Class.IsInterface && m.Decl != nil && m.Decl.Body == nil)
}

// IsStatic reports whether the method is static.
func (m *Method) IsStatic() bool { return m.Mods.Has(ast.ModStatic) }

// IsEntryPoint reports whether the method is an API entry point per the
// paper: public and protected methods (including constructors) of public
// classes are analyzed, because applications can call them directly or via
// a derived class. Methods of package-private classes are unreachable from
// application code.
func (m *Method) IsEntryPoint() bool {
	if m.Class.IsInterface || !m.Class.Mods.Has(ast.ModPublic) {
		return false
	}
	return m.Mods.Has(ast.ModPublic) || m.Mods.Has(ast.ModProtected)
}

// Build constructs the Program for the given parsed files. Resolution
// errors are reported to diags; the model contains whatever resolved.
func Build(name string, files []*ast.File, diags *lang.Diagnostics) *Program {
	p := &Program{
		Name:    name,
		Classes: make(map[string]*Class),
		simple:  make(map[string][]*Class),
		Diags:   diags,
	}
	// Pass 1: register classes.
	for _, f := range files {
		for _, td := range f.Types {
			fqn := td.Name
			if f.Package != "" {
				fqn = f.Package + "." + td.Name
			}
			if _, dup := p.Classes[fqn]; dup {
				diags.Errorf(td.Start, "duplicate class %s", fqn)
				continue
			}
			c := &Class{
				Program:      p,
				Name:         fqn,
				Simple:       td.Name,
				Package:      f.Package,
				Mods:         td.Mods,
				IsInterface:  td.IsInterface,
				Decl:         td,
				File:         f,
				fieldsByName: make(map[string]*Field),
			}
			p.Classes[fqn] = c
			p.simple[td.Name] = append(p.simple[td.Name], c)
		}
	}
	// Pass 2: resolve hierarchy and members.
	for _, c := range p.sortedClasses() {
		p.resolveClass(c)
	}
	// Pass 3: link subclasses.
	for _, c := range p.sortedClasses() {
		if c.Super != nil {
			c.Super.Subclasses = append(c.Super.Subclasses, c)
		}
		for _, i := range c.Interfaces {
			i.Subclasses = append(i.Subclasses, c)
		}
	}
	// Pass 4: memoize signature strings now that parameter types resolved.
	for _, m := range p.methods {
		m.cacheNames()
	}
	return p
}

func (p *Program) sortedClasses() []*Class {
	p.classOnce.Do(func() {
		out := make([]*Class, 0, len(p.Classes))
		for _, c := range p.Classes {
			out = append(out, c)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		p.classList = out
	})
	return p.classList
}

// AllClasses returns the classes sorted by fully qualified name.
func (p *Program) AllClasses() []*Class { return p.sortedClasses() }

// AllMethods returns every method in the program, indexed by Method.ID.
func (p *Program) AllMethods() []*Method { return p.methods }

// MethodByID returns the method with the given dense ID.
func (p *Program) MethodByID(id int) *Method { return p.methods[id] }

func (p *Program) resolveClass(c *Class) {
	td := c.Decl
	if td.Extends != "" {
		if s := p.Lookup(td.Extends, c.File); s != nil {
			if s.IsInterface {
				p.Diags.Errorf(td.Start, "class %s extends interface %s", c.Name, s.Name)
			} else {
				c.Super = s
			}
		} else {
			p.Diags.Warnf(td.Start, "unresolved superclass %s of %s", td.Extends, c.Name)
		}
	}
	for _, in := range td.Implements {
		if s := p.Lookup(in, c.File); s != nil {
			c.Interfaces = append(c.Interfaces, s)
		} else {
			p.Diags.Warnf(td.Start, "unresolved interface %s of %s", in, c.Name)
		}
	}
	for _, fd := range td.Fields {
		f := &Field{Class: c, Name: fd.Name, Type: p.resolveType(fd.Type, c.File), Mods: fd.Mods, Decl: fd}
		if _, dup := c.fieldsByName[fd.Name]; dup {
			p.Diags.Errorf(fd.Start, "duplicate field %s.%s", c.Name, fd.Name)
			continue
		}
		c.Fields = append(c.Fields, f)
		c.fieldsByName[fd.Name] = f
	}
	for _, md := range td.Methods {
		m := &Method{
			Class:  c,
			Name:   md.Name,
			Mods:   md.Mods,
			Ret:    p.resolveType(md.Ret, c.File),
			IsCtor: md.IsCtor,
			Decl:   md,
			ID:     len(p.methods),
		}
		for _, prm := range md.Params {
			m.Params = append(m.Params, p.resolveType(prm.Type, c.File))
			m.ParamNames = append(m.ParamNames, prm.Name)
		}
		c.Methods = append(c.Methods, m)
		p.methods = append(p.methods, m)
	}
}

func (p *Program) resolveType(tr ast.TypeRef, f *ast.File) Type {
	switch tr.Name {
	case "":
		return Type{Prim: "void"}
	case "void", "boolean", "int", "long", "char", "byte", "short", "float", "double":
		return Type{Prim: tr.Name, Dims: tr.Dims}
	}
	if c := p.Lookup(tr.Name, f); c != nil {
		return Type{Class: c, Dims: tr.Dims}
	}
	return Type{Named: tr.Name, Dims: tr.Dims}
}

// Lookup resolves a (possibly qualified) class name in the context of file
// f (which may be nil). Resolution order: fully qualified name, same
// package, explicit import, wildcard import, globally unique simple name.
func (p *Program) Lookup(name string, f *ast.File) *Class {
	if c, ok := p.Classes[name]; ok {
		return c
	}
	if strings.Contains(name, ".") {
		return nil // qualified but unknown
	}
	if f != nil {
		if f.Package != "" {
			if c, ok := p.Classes[f.Package+"."+name]; ok {
				return c
			}
		}
		for _, imp := range f.Imports {
			if strings.HasSuffix(imp, ".*") {
				if c, ok := p.Classes[imp[:len(imp)-1]+name]; ok {
					return c
				}
			} else if simpleOf(imp) == name {
				if c, ok := p.Classes[imp]; ok {
					return c
				}
			}
		}
	}
	if cs := p.simple[name]; len(cs) == 1 {
		return cs[0]
	}
	return nil
}

// FieldOf resolves a field by name on c or its superclasses.
func (c *Class) FieldOf(name string) *Field {
	for k := c; k != nil; k = k.Super {
		if f, ok := k.fieldsByName[name]; ok {
			return f
		}
	}
	return nil
}

// MethodsNamed returns methods declared directly on c with the given name
// (or constructors when name is "<init>").
func (c *Class) MethodsNamed(name string) []*Method {
	var out []*Method
	for _, m := range c.Methods {
		if name == "<init>" {
			if m.IsCtor {
				out = append(out, m)
			}
		} else if !m.IsCtor && m.Name == name {
			out = append(out, m)
		}
	}
	return out
}

// LookupMethod resolves a method by name and argument count starting at c
// and walking up the superclass chain, then interfaces; it prefers an
// exact arity match. Returns nil if nothing matches.
func (c *Class) LookupMethod(name string, nargs int) *Method {
	for k := c; k != nil; k = k.Super {
		for _, m := range k.MethodsNamed(name) {
			if len(m.Params) == nargs {
				return m
			}
		}
	}
	// Interface default resolution (declaration only, for dispatch roots).
	seen := map[*Class]bool{}
	var walk func(*Class) *Method
	walk = func(k *Class) *Method {
		if k == nil || seen[k] {
			return nil
		}
		seen[k] = true
		for _, m := range k.MethodsNamed(name) {
			if len(m.Params) == nargs {
				return m
			}
		}
		for _, i := range k.Interfaces {
			if m := walk(i); m != nil {
				return m
			}
		}
		return walk(k.Super)
	}
	return walk(c)
}

// SubtypeOf reports whether c is t or a subclass/implementor of t.
func (c *Class) SubtypeOf(t *Class) bool {
	if t == nil {
		return false
	}
	seen := map[*Class]bool{}
	var walk func(*Class) bool
	walk = func(k *Class) bool {
		if k == nil || seen[k] {
			return false
		}
		seen[k] = true
		if k == t {
			return true
		}
		for _, i := range k.Interfaces {
			if walk(i) {
				return true
			}
		}
		return walk(k.Super)
	}
	return walk(c)
}

// AllSubtypes returns c plus every transitive subclass/implementor,
// sorted by name. The hierarchy is immutable once Build returns, so the
// slice is computed once and shared; callers must not mutate it.
func (c *Class) AllSubtypes() []*Class {
	c.subsOnce.Do(func() {
		seen := map[*Class]bool{}
		var out []*Class
		var walk func(*Class)
		walk = func(k *Class) {
			if seen[k] {
				return
			}
			seen[k] = true
			out = append(out, k)
			for _, s := range k.Subclasses {
				walk(s)
			}
		}
		walk(c)
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		c.subs = out
	})
	return c.subs
}

// EntryPoints returns all API entry points of the program, sorted by
// qualified signature. The slice is computed once and shared; callers
// must not mutate it.
func (p *Program) EntryPoints() []*Method {
	p.epOnce.Do(func() {
		var out []*Method
		for _, c := range p.sortedClasses() {
			for _, m := range c.Methods {
				if m.IsEntryPoint() {
					out = append(out, m)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Qualified() < out[j].Qualified() })
		p.eps = out
	})
	return p.eps
}

// String summarizes the program.
func (p *Program) String() string {
	return fmt.Sprintf("program %s: %d classes, %d methods", p.Name, len(p.Classes), len(p.methods))
}
