package types

import (
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
)

func build(t *testing.T, srcs ...string) *Program {
	t.Helper()
	var diags lang.Diagnostics
	var files []*ast.File
	for i, src := range srcs {
		files = append(files, parser.ParseFile("t.mj", src, &diags))
		_ = i
	}
	if diags.HasErrors() {
		t.Fatalf("parse errors: %v", diags.Err())
	}
	p := Build("test", files, &diags)
	if diags.HasErrors() {
		t.Fatalf("build errors: %v", diags.Err())
	}
	return p
}

const hierarchySrc = `
package java.net;
public class SocketAddress { }
public class InetSocketAddress extends SocketAddress {
  public String getHostName() { return null; }
}
public class Socket {
  private SocketImpl impl;
  public void connect(SocketAddress endpoint, int timeout) { }
  protected void bind(int port) { }
  void packagePrivate() { }
  private void hidden() { }
}
class SocketImpl {
  native void connect0(SocketAddress a, int t);
}
public class SSLSocket extends Socket {
  public void connect(SocketAddress endpoint, int timeout) { }
}
`

func TestHierarchy(t *testing.T) {
	p := build(t, hierarchySrc)
	isa := p.Classes["java.net.InetSocketAddress"]
	sa := p.Classes["java.net.SocketAddress"]
	if isa == nil || sa == nil {
		t.Fatal("classes missing")
	}
	if isa.Super != sa {
		t.Errorf("super = %v", isa.Super)
	}
	if !isa.SubtypeOf(sa) || sa.SubtypeOf(isa) {
		t.Error("subtype relation wrong")
	}
	ssl := p.Classes["java.net.SSLSocket"]
	sock := p.Classes["java.net.Socket"]
	subs := sock.AllSubtypes()
	if len(subs) != 2 || subs[0] != ssl && subs[1] != ssl {
		t.Errorf("subtypes of Socket = %v", subs)
	}
}

func TestEntryPoints(t *testing.T) {
	p := build(t, hierarchySrc)
	eps := p.EntryPoints()
	var sigs []string
	for _, m := range eps {
		sigs = append(sigs, m.Qualified())
	}
	want := map[string]bool{
		"java.net.InetSocketAddress.getHostName()":      true,
		"java.net.Socket.connect(SocketAddress,int)":    true,
		"java.net.Socket.bind(int)":                     true,
		"java.net.SSLSocket.connect(SocketAddress,int)": true,
	}
	for _, s := range sigs {
		if !want[s] {
			t.Errorf("unexpected entry point %s", s)
		}
		delete(want, s)
	}
	for s := range want {
		t.Errorf("missing entry point %s", s)
	}
}

func TestMethodSignatures(t *testing.T) {
	p := build(t, hierarchySrc)
	sock := p.Classes["java.net.Socket"]
	m := sock.LookupMethod("connect", 2)
	if m == nil {
		t.Fatal("connect not found")
	}
	if got := m.Sig(); got != "connect(SocketAddress,int)" {
		t.Errorf("sig = %q", got)
	}
}

func TestLookupMethodWalksSuper(t *testing.T) {
	p := build(t, hierarchySrc)
	ssl := p.Classes["java.net.SSLSocket"]
	if m := ssl.LookupMethod("bind", 1); m == nil || m.Class.Simple != "Socket" {
		t.Errorf("bind lookup = %v", m)
	}
	// Overridden method resolves to the subclass copy.
	if m := ssl.LookupMethod("connect", 2); m == nil || m.Class.Simple != "SSLSocket" {
		t.Errorf("connect lookup = %v", m)
	}
}

func TestFieldResolution(t *testing.T) {
	p := build(t, hierarchySrc)
	sock := p.Classes["java.net.Socket"]
	f := sock.FieldOf("impl")
	if f == nil || !f.IsPrivate() {
		t.Fatalf("impl = %+v", f)
	}
	if f.Type.Class == nil || f.Type.Class.Simple != "SocketImpl" {
		t.Errorf("impl type = %v", f.Type)
	}
	ssl := p.Classes["java.net.SSLSocket"]
	if ssl.FieldOf("impl") != f {
		t.Error("field lookup does not walk superclass")
	}
}

func TestNativeDetection(t *testing.T) {
	p := build(t, hierarchySrc)
	impl := p.Classes["java.net.SocketImpl"]
	m := impl.LookupMethod("connect0", 2)
	if m == nil || !m.IsNative() {
		t.Errorf("connect0 = %+v", m)
	}
}

func TestInterfaces(t *testing.T) {
	p := build(t, `
package java.security;
public interface PrivilegedAction {
  Object run();
}
public class LoadAction implements PrivilegedAction {
  public Object run() { return null; }
}
class Object { }
`)
	pa := p.Classes["java.security.PrivilegedAction"]
	la := p.Classes["java.security.LoadAction"]
	if !la.SubtypeOf(pa) {
		t.Error("implementor not subtype of interface")
	}
	if pa.Methods[0].IsEntryPoint() {
		t.Error("interface methods are not entry points")
	}
	subs := pa.AllSubtypes()
	if len(subs) != 2 {
		t.Errorf("subtypes = %v", subs)
	}
}

func TestImportsResolution(t *testing.T) {
	p := build(t,
		`package java.lang; public class SecurityManager { public void checkExit(int s) { } }`,
		`package java.util; public class SecurityManager { }`,
		`package app;
import java.lang.SecurityManager;
public class Main {
  SecurityManager sm;
}`)
	main := p.Classes["app.Main"]
	f := main.FieldOf("sm")
	if f.Type.Class == nil || f.Type.Class.Name != "java.lang.SecurityManager" {
		t.Errorf("sm resolved to %v", f.Type)
	}
}

func TestWildcardImport(t *testing.T) {
	p := build(t,
		`package java.io; public class File { }`,
		`package app; import java.io.*; public class Main { File f; }`)
	f := p.Classes["app.Main"].FieldOf("f")
	if f.Type.Class == nil || f.Type.Class.Name != "java.io.File" {
		t.Errorf("f resolved to %v", f.Type)
	}
}

func TestGloballyUniqueSimpleName(t *testing.T) {
	p := build(t,
		`package java.net; public class InetAddress { }`,
		`package app; public class Main { InetAddress a; }`)
	f := p.Classes["app.Main"].FieldOf("a")
	if f.Type.Class == nil {
		t.Errorf("a unresolved: %v", f.Type)
	}
}

func TestAmbiguousSimpleNameUnresolved(t *testing.T) {
	p := build(t,
		`package a; public class Dup { }`,
		`package b; public class Dup { }`,
		`package app; public class Main { Dup d; }`)
	f := p.Classes["app.Main"].FieldOf("d")
	if f.Type.Class != nil {
		t.Errorf("ambiguous name resolved to %v", f.Type.Class)
	}
	if f.Type.Named != "Dup" {
		t.Errorf("named = %q", f.Type.Named)
	}
}

func TestDuplicateClassError(t *testing.T) {
	var diags lang.Diagnostics
	f1 := parser.ParseFile("a.mj", `package p; class C { }`, &diags)
	f2 := parser.ParseFile("b.mj", `package p; class C { }`, &diags)
	Build("t", []*ast.File{f1, f2}, &diags)
	if !diags.HasErrors() {
		t.Error("expected duplicate class error")
	}
}

func TestCtorSignature(t *testing.T) {
	p := build(t, `
package java.net;
public class URL {
  public URL(String spec) { }
  public URL(URL context, String spec, URLStreamHandler handler) { }
}
public class URLStreamHandler { }
class String { }
`)
	url := p.Classes["java.net.URL"]
	ctors := url.MethodsNamed("<init>")
	if len(ctors) != 2 {
		t.Fatalf("got %d ctors", len(ctors))
	}
	if got := ctors[1].Sig(); got != "<init>(URL,String,URLStreamHandler)" {
		t.Errorf("sig = %q", got)
	}
	if !ctors[0].IsEntryPoint() {
		t.Error("public ctor should be an entry point")
	}
}

func TestMethodIDsDense(t *testing.T) {
	p := build(t, hierarchySrc)
	for i, m := range p.AllMethods() {
		if m.ID != i {
			t.Fatalf("method %s has ID %d at index %d", m, m.ID, i)
		}
		if p.MethodByID(m.ID) != m {
			t.Fatalf("MethodByID roundtrip failed for %s", m)
		}
	}
}
