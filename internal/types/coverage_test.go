package types

import (
	"strings"
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/lang"
	"policyoracle/internal/parser"
)

func TestExtendsInterfaceIsError(t *testing.T) {
	var diags lang.Diagnostics
	f := parser.ParseFile("t.mj", `
package p;
interface I { }
class C extends I { }
`, &diags)
	Build("t", []*ast.File{f}, &diags)
	if !diags.HasErrors() {
		t.Error("extending an interface should be an error")
	}
}

func TestUnresolvedSuperclassWarns(t *testing.T) {
	var diags lang.Diagnostics
	f := parser.ParseFile("t.mj", `package p; class C extends Missing { }`, &diags)
	Build("t", []*ast.File{f}, &diags)
	if diags.HasErrors() {
		t.Error("unresolved superclass should warn, not error")
	}
	if diags.Len() == 0 {
		t.Error("no warning for unresolved superclass")
	}
}

func TestDuplicateFieldError(t *testing.T) {
	var diags lang.Diagnostics
	f := parser.ParseFile("t.mj", `package p; class C { int x; int x; }`, &diags)
	Build("t", []*ast.File{f}, &diags)
	if !diags.HasErrors() {
		t.Error("duplicate field should be an error")
	}
}

func TestTypeStringsAndIsRef(t *testing.T) {
	p := build(t, `package p; public class Box { }`)
	box := p.Classes["p.Box"]
	cases := []struct {
		t     Type
		s     string
		isRef bool
	}{
		{Type{Prim: "int"}, "int", false},
		{Type{Prim: "int", Dims: 2}, "int[][]", true},
		{Type{Class: box}, "Box", true},
		{Type{Named: "a.b.Missing"}, "Missing", true},
		{Type{Prim: "void"}, "void", false},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.s {
			t.Errorf("String() = %q, want %q", got, c.s)
		}
		if got := c.t.IsRef(); got != c.isRef {
			t.Errorf("%s.IsRef() = %t", c.s, got)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := build(t, `package p; public class A { void m() { } }`)
	s := p.String()
	if !strings.Contains(s, "1 classes") || !strings.Contains(s, "1 methods") {
		t.Errorf("String = %q", s)
	}
}

func TestAllClassesSorted(t *testing.T) {
	p := build(t, `package p; class B { } class A { } class C { }`)
	names := []string{}
	for _, c := range p.AllClasses() {
		names = append(names, c.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

func TestLookupQualifiedUnknown(t *testing.T) {
	p := build(t, `package p; class A { }`)
	if c := p.Lookup("x.y.Unknown", nil); c != nil {
		t.Errorf("resolved bogus qualified name: %v", c)
	}
}

func TestInterfaceMethodLookupThroughHierarchy(t *testing.T) {
	p := build(t, `
package p;
interface Base { int op(); }
interface Ext extends Base { }
class Impl implements Ext {
  public int op() { return 1; }
}
`)
	ext := p.Classes["p.Ext"]
	if m := ext.LookupMethod("op", 0); m == nil {
		t.Error("interface method not found through extended interface")
	}
}
