package dataflow

import (
	"testing"
	"testing/quick"

	"policyoracle/internal/ir"
)

// graph builds a CFG skeleton from an adjacency list.
func graph(adj [][]int) []*ir.Block {
	blocks := make([]*ir.Block, len(adj))
	for i := range blocks {
		blocks[i] = &ir.Block{Index: i}
	}
	for i, succs := range adj {
		for _, s := range succs {
			blocks[i].Succs = append(blocks[i].Succs, blocks[s])
			blocks[s].Preds = append(blocks[s].Preds, blocks[i])
		}
	}
	return blocks
}

// bits is a simple gen-set problem: each block generates the bit of its
// index (for indexes < 64).
func genProblem(blocks []*ir.Block, meet func(a, b uint64) uint64, entryIn uint64) *Problem[uint64] {
	return &Problem[uint64]{
		Blocks:  blocks,
		EntryIn: entryIn,
		Meet:    meet,
		Equal:   func(a, b uint64) bool { return a == b },
		Transfer: func(b *ir.Block, in uint64) uint64 {
			return in | 1<<uint(b.Index)
		},
	}
}

func union(a, b uint64) uint64     { return a | b }
func intersect(a, b uint64) uint64 { return a & b }

func TestDiamondMayMust(t *testing.T) {
	// 0 -> 1, 2; 1 -> 3; 2 -> 3
	blocks := graph([][]int{{1, 2}, {3}, {3}, {}})

	may := Solve(genProblem(blocks, union, 0))
	if may.In[3] != 0b0111 {
		t.Errorf("may IN(3) = %b", may.In[3])
	}
	must := Solve(genProblem(blocks, intersect, 0))
	// Only block 0's bit survives the intersection at the join.
	if must.In[3] != 0b0001 {
		t.Errorf("must IN(3) = %b", must.In[3])
	}
}

func TestLoopConverges(t *testing.T) {
	// 0 -> 1; 1 -> 2, 3; 2 -> 1 (back edge); 3 exit
	blocks := graph([][]int{{1}, {2, 3}, {1}, {}})
	may := Solve(genProblem(blocks, union, 0))
	if may.In[3] != 0b0111 {
		t.Errorf("may IN(3) = %b", may.In[3])
	}
	must := Solve(genProblem(blocks, intersect, 0))
	// The loop may be skipped... it cannot: 1 is on every path. 2 may be.
	if must.In[3]&0b0010 == 0 || must.In[3]&0b0100 != 0 {
		t.Errorf("must IN(3) = %b", must.In[3])
	}
}

func TestUnreachableBlocks(t *testing.T) {
	// Block 2 has no in-edges.
	blocks := graph([][]int{{1}, {}, {1}})
	sol := Solve(genProblem(blocks, union, 0))
	if sol.Reached[2] {
		t.Error("unreachable block marked reached")
	}
	if !sol.Reached[0] || !sol.Reached[1] {
		t.Error("reachable blocks not marked")
	}
	// Unreachable predecessors must not pollute the meet.
	if sol.In[1] != 0b001 {
		t.Errorf("IN(1) = %b", sol.In[1])
	}
}

func TestInfeasibleEdges(t *testing.T) {
	// Diamond, but the 0->2 edge is infeasible (constant-folded).
	blocks := graph([][]int{{1, 2}, {3}, {3}, {}})
	p := genProblem(blocks, intersect, 0)
	p.EdgeFeasible = func(b *ir.Block, i int) bool {
		return !(b.Index == 0 && i == 1)
	}
	sol := Solve(p)
	if sol.Reached[2] {
		t.Error("block behind infeasible edge reached")
	}
	// With the false path dead, block 1's bit becomes a MUST fact at 3.
	if sol.In[3] != 0b0011 {
		t.Errorf("must IN(3) = %b", sol.In[3])
	}
}

func TestEntryIn(t *testing.T) {
	blocks := graph([][]int{{1}, {}})
	sol := Solve(genProblem(blocks, union, 0b1000000))
	if sol.In[1]&0b1000000 == 0 {
		t.Errorf("entry seed lost: IN(1) = %b", sol.In[1])
	}
}

func TestEmptyFunction(t *testing.T) {
	sol := Solve(genProblem(nil, union, 0))
	if len(sol.In) != 0 {
		t.Error("non-empty solution for empty graph")
	}
}

// Property: on random DAGs, the MAY solution at every reached block equals
// the union of all blocks on some path — which for gen-bit transfer means
// IN(b) ⊇ bit(p) for every reached pred p, and the solution is a fixed
// point of the equations.
func TestRandomDAGFixedPoint(t *testing.T) {
	f := func(edges [][2]uint8, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		adj := make([][]int, n)
		for _, e := range edges {
			from, to := int(e[0])%n, int(e[1])%n
			if from < to { // forward edges only: a DAG
				adj[from] = append(adj[from], to)
			}
		}
		blocks := graph(adj)
		for _, meet := range []func(a, b uint64) uint64{union, intersect} {
			sol := Solve(genProblem(blocks, meet, 0))
			for _, b := range blocks {
				if !sol.Reached[b.Index] {
					continue
				}
				// OUT = IN | bit (transfer consistency).
				if sol.Out[b.Index] != sol.In[b.Index]|1<<uint(b.Index) {
					return false
				}
				// IN = meet over reached preds' OUT (fixed-point check).
				var in uint64
				have := false
				for _, p := range b.Preds {
					if !sol.Reached[p.Index] {
						continue
					}
					if !have {
						in = sol.Out[p.Index]
						have = true
					} else {
						in = meet(in, sol.Out[p.Index])
					}
				}
				if have && in != sol.In[b.Index] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
