// Package dataflow provides a generic forward worklist solver over IR
// control-flow graphs. The security policy dataflow analysis (SPDA,
// Algorithm 1 in the paper) instantiates it twice — MAY (union meet) and
// MUST (intersection meet) — over the powerset-of-checks lattice, and a
// third time over bounded path-set states for Figure 2-style reporting.
package dataflow

import "policyoracle/internal/ir"

// Problem describes one forward dataflow instance over a function's CFG.
type Problem[T any] struct {
	Blocks  []*ir.Block
	EntryIn T

	// Meet combines the OUT values of multiple feasible predecessors
	// (union for MAY, intersection for MUST).
	Meet func(a, b T) T
	// Equal detects convergence.
	Equal func(a, b T) bool
	// Transfer computes OUT from IN for one block.
	Transfer func(b *ir.Block, in T) T
	// EdgeFeasible reports whether the i'th successor edge of b can
	// execute; nil means all edges are feasible. Infeasible edges are the
	// product of conditional constant propagation.
	EdgeFeasible func(b *ir.Block, i int) bool
}

// Solution holds per-block dataflow values after convergence.
type Solution[T any] struct {
	In      []T
	Out     []T
	Reached []bool
}

// Solve runs the worklist algorithm to a fixed point. Blocks with no
// feasible path from the entry are left unreached; their In/Out values are
// meaningless and Reached reports false.
func Solve[T any](p *Problem[T]) *Solution[T] {
	n := len(p.Blocks)
	sol := &Solution[T]{In: make([]T, n), Out: make([]T, n), Reached: make([]bool, n)}
	if n == 0 {
		return sol
	}
	feasible := p.EdgeFeasible
	if feasible == nil {
		feasible = func(*ir.Block, int) bool { return true }
	}

	entry := p.Blocks[0]
	sol.In[entry.Index] = p.EntryIn
	sol.Out[entry.Index] = p.Transfer(entry, p.EntryIn)
	sol.Reached[entry.Index] = true

	worklist := make([]*ir.Block, 0, n)
	inList := make([]bool, n)
	push := func(b *ir.Block) {
		if !inList[b.Index] {
			worklist = append(worklist, b)
			inList[b.Index] = true
		}
	}
	for i, s := range entry.Succs {
		if feasible(entry, i) {
			push(s)
		}
	}

	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		inList[b.Index] = false

		// IN(b) = meet over feasible, reached predecessor edges.
		var in T
		have := false
		for _, pred := range b.Preds {
			if !sol.Reached[pred.Index] {
				continue
			}
			for i, s := range pred.Succs {
				if s != b || !feasible(pred, i) {
					continue
				}
				if !have {
					in = sol.Out[pred.Index]
					have = true
				} else {
					in = p.Meet(in, sol.Out[pred.Index])
				}
				break // one edge from this pred suffices for the meet
			}
		}
		if !have {
			continue // no feasible path here yet
		}

		out := p.Transfer(b, in)
		first := !sol.Reached[b.Index]
		if first || !p.Equal(sol.Out[b.Index], out) || !p.Equal(sol.In[b.Index], in) {
			sol.In[b.Index] = in
			sol.Out[b.Index] = out
			sol.Reached[b.Index] = true
			for i, s := range b.Succs {
				if feasible(b, i) {
					push(s)
				}
			}
		}
	}
	return sol
}
