// Package dataflow provides a generic forward worklist solver over IR
// control-flow graphs. The security policy dataflow analysis (SPDA,
// Algorithm 1 in the paper) instantiates it twice — MAY (union meet) and
// MUST (intersection meet) — over the powerset-of-checks lattice, and a
// third time over bounded path-set states for Figure 2-style reporting.
package dataflow

import "policyoracle/internal/ir"

// Problem describes one forward dataflow instance over a function's CFG.
type Problem[T any] struct {
	Blocks  []*ir.Block
	EntryIn T

	// Meet combines the OUT values of multiple feasible predecessors
	// (union for MAY, intersection for MUST).
	Meet func(a, b T) T
	// Equal detects convergence.
	Equal func(a, b T) bool
	// Transfer computes OUT from IN for one block.
	Transfer func(b *ir.Block, in T) T
	// EdgeFeasible reports whether the i'th successor edge of b can
	// execute; nil means all edges are feasible. Infeasible edges are the
	// product of conditional constant propagation.
	EdgeFeasible func(b *ir.Block, i int) bool
}

// Solution holds per-block dataflow values after convergence.
type Solution[T any] struct {
	In      []T
	Out     []T
	Reached []bool
}

// Solver is a reusable worklist solver. Its buffers are retained between
// calls, so a Solver amortises all per-Solve allocations across the many
// functions an interprocedural analysis visits. The Solution returned by
// Solve aliases the solver's internal buffers: it is valid only until the
// next Solve call on the same Solver.
//
// The zero value is ready to use. A Solver is not safe for concurrent use.
type Solver[T any] struct {
	sol      Solution[T]
	worklist []*ir.Block
	inList   []bool
}

// Solve runs the worklist algorithm to a fixed point, reusing the
// solver's buffers. Blocks with no feasible path from the entry are left
// unreached; their In/Out values are meaningless and Reached reports
// false. Worklist order is FIFO, identical to the one-shot Solve.
func (s *Solver[T]) Solve(p *Problem[T]) *Solution[T] {
	n := len(p.Blocks)
	if cap(s.sol.In) < n {
		s.sol.In = make([]T, n)
		s.sol.Out = make([]T, n)
		s.sol.Reached = make([]bool, n)
		s.inList = make([]bool, n)
	}
	sol := &s.sol
	sol.In = sol.In[:n]
	sol.Out = sol.Out[:n]
	sol.Reached = sol.Reached[:n]
	inList := s.inList[:n]
	var zero T
	for i := 0; i < n; i++ {
		sol.In[i] = zero
		sol.Out[i] = zero
		sol.Reached[i] = false
		inList[i] = false
	}
	if n == 0 {
		return sol
	}
	feasible := p.EdgeFeasible

	entry := p.Blocks[0]
	sol.In[entry.Index] = p.EntryIn
	sol.Out[entry.Index] = p.Transfer(entry, p.EntryIn)
	sol.Reached[entry.Index] = true

	// FIFO worklist with an index-cursor pop: popping advances head
	// instead of re-slicing, which would pin the backing array's head and
	// force a re-grow on every push cycle. The buffer is compacted once
	// drained and reused across Solve calls.
	worklist := s.worklist[:0]
	head := 0
	push := func(b *ir.Block) {
		if !inList[b.Index] {
			worklist = append(worklist, b)
			inList[b.Index] = true
		}
	}
	for i, succ := range entry.Succs {
		if feasible == nil || feasible(entry, i) {
			push(succ)
		}
	}

	for head < len(worklist) {
		b := worklist[head]
		worklist[head] = nil
		head++
		if head == len(worklist) {
			worklist = worklist[:0]
			head = 0
		}
		inList[b.Index] = false

		// IN(b) = meet over feasible, reached predecessor edges.
		var in T
		have := false
		for _, pred := range b.Preds {
			if !sol.Reached[pred.Index] {
				continue
			}
			for i, succ := range pred.Succs {
				if succ != b || !(feasible == nil || feasible(pred, i)) {
					continue
				}
				if !have {
					in = sol.Out[pred.Index]
					have = true
				} else {
					in = p.Meet(in, sol.Out[pred.Index])
				}
				break // one edge from this pred suffices for the meet
			}
		}
		if !have {
			continue // no feasible path here yet
		}

		out := p.Transfer(b, in)
		first := !sol.Reached[b.Index]
		if first || !p.Equal(sol.Out[b.Index], out) || !p.Equal(sol.In[b.Index], in) {
			sol.In[b.Index] = in
			sol.Out[b.Index] = out
			sol.Reached[b.Index] = true
			for i, succ := range b.Succs {
				if feasible == nil || feasible(b, i) {
					push(succ)
				}
			}
		}
	}
	s.worklist = worklist[:0]
	return sol
}

// Solve runs the worklist algorithm to a fixed point with fresh buffers.
// The returned Solution is independently owned by the caller. Long-lived
// analyses should prefer a reused Solver.
func Solve[T any](p *Problem[T]) *Solution[T] {
	var s Solver[T]
	sol := s.Solve(p)
	return &Solution[T]{In: sol.In, Out: sol.Out, Reached: sol.Reached}
}
