package dataflow

import (
	"testing"

	"policyoracle/internal/ir"
)

// TestSolverReuseAllocFree is the allocation regression test for the
// index-cursor worklist rework: a reused Solver must reach the fixed
// point of a CFG with loops without any steady-state heap allocation.
// The former `worklist = worklist[1:]` pop combined with append re-grew
// the backing array on every revisit wave.
func TestSolverReuseAllocFree(t *testing.T) {
	// Two nested loops: 0 -> 1; 1 -> 2, 4; 2 -> 3; 3 -> 1, 2; 4 exit.
	blocks := graph([][]int{{1}, {2, 4}, {3}, {1, 2}, {}})
	p := genProblem(blocks, union, 0)
	var s Solver[uint64]
	s.Solve(p) // warm-up sizes the solver's buffers
	if n := testing.AllocsPerRun(100, func() { s.Solve(p) }); n != 0 {
		t.Errorf("warm Solver.Solve allocates %v objects per run", n)
	}
}

// TestSolverReuseMatchesFresh checks buffer reuse cannot leak state
// between solves: a warm solver and a fresh Solve must agree exactly.
func TestSolverReuseMatchesFresh(t *testing.T) {
	blocks := graph([][]int{{1, 2}, {3}, {3}, {1}})
	var s Solver[uint64]
	for i := 0; i < 3; i++ {
		meet := union
		if i%2 == 1 {
			meet = intersect
		}
		warm := s.Solve(genProblem(blocks, meet, 0))
		fresh := Solve(genProblem(blocks, meet, 0))
		for b := range blocks {
			if warm.In[b] != fresh.In[b] || warm.Out[b] != fresh.Out[b] || warm.Reached[b] != fresh.Reached[b] {
				t.Fatalf("solve %d: warm and fresh disagree at block %d", i, b)
			}
		}
	}
}

// BenchmarkSolverReused measures the steady-state solve cost with pooled
// buffers; BenchmarkSolverFresh is the old behavior (new solver state
// every call) for comparison.
func BenchmarkSolverReused(b *testing.B) {
	blocks := ladderCFG(64)
	p := genProblem(blocks, union, 0)
	var s Solver[uint64]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(p)
	}
}

func BenchmarkSolverFresh(b *testing.B) {
	blocks := ladderCFG(64)
	p := genProblem(blocks, union, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(p)
	}
}

// ladderCFG builds a chain of diamonds with back edges, the shape that
// maximizes worklist churn: each rung i is a diamond (head, two arms,
// tail) whose tail feeds the next rung's head and jumps back to its own
// head.
func ladderCFG(rungs int) []*ir.Block {
	adj := make([][]int, rungs*4)
	for r := 0; r < rungs; r++ {
		head, a, b, tail := r*4, r*4+1, r*4+2, r*4+3
		adj[head] = []int{a, b}
		adj[a] = []int{tail}
		adj[b] = []int{tail}
		adj[tail] = []int{head}
		if r+1 < rungs {
			adj[tail] = append(adj[tail], (r+1)*4)
		}
	}
	return graph(adj)
}
