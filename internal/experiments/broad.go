package experiments

import (
	"policyoracle/internal/corpus"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// BroadRow summarizes one library under both event definitions
// (Section 3: broad events generate many more policies — >90k vs ≤16.7k in
// the paper — without finding additional bugs on the Java Class Library,
// but are required for Figure 3-style holes).
type BroadRow struct {
	Library        string
	NarrowPolicies int
	BroadPolicies  int
}

// BroadResult is the broad-events experiment outcome.
type BroadResult struct {
	Rows []BroadRow
	// NarrowGroups and BroadGroups count distinct differences summed over
	// all pairs under each event definition.
	NarrowGroups int
	BroadGroups  int
	// BroadOnlyEntries lists entries reported only under broad events
	// (the Figure 3 population).
	BroadOnlyEntries []string
}

// Broad runs the Section 3 experiment.
func Broad(w *Workload) (*BroadResult, error) {
	narrowLibs, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		return nil, err
	}
	broadOpts := oracle.DefaultOptions()
	broadOpts.Events = secmodel.BroadEvents
	broadLibs, err := w.LoadAll(broadOpts)
	if err != nil {
		return nil, err
	}

	res := &BroadResult{}
	for _, name := range corpus.Libraries() {
		res.Rows = append(res.Rows, BroadRow{
			Library:        name,
			NarrowPolicies: narrowLibs[name].Policies.CountPolicies(),
			BroadPolicies:  broadLibs[name].Policies.CountPolicies(),
		})
	}
	narrowFlagged := map[string]bool{}
	broadOnly := map[string]bool{}
	for _, pair := range corpus.Pairs() {
		nrep, err := oracle.Diff(narrowLibs[pair[0]], narrowLibs[pair[1]])
		if err != nil {
			return nil, err
		}
		brep, err := oracle.Diff(broadLibs[pair[0]], broadLibs[pair[1]])
		if err != nil {
			return nil, err
		}
		res.NarrowGroups += len(nrep.Groups)
		res.BroadGroups += len(brep.Groups)
		for _, g := range nrep.Groups {
			for _, e := range g.Entries {
				narrowFlagged[e] = true
			}
		}
		for _, g := range brep.Groups {
			for _, e := range g.Entries {
				if !narrowFlagged[e] && !broadOnly[e] {
					broadOnly[e] = true
					res.BroadOnlyEntries = append(res.BroadOnlyEntries, e)
				}
			}
		}
	}
	return res, nil
}
