package experiments

import (
	"fmt"
	"strings"

	"policyoracle/internal/analysis"
	"policyoracle/internal/corpus"
	"policyoracle/internal/diff"
	"policyoracle/internal/report"
)

// RenderTable1 renders Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	t := report.New("Table 1: Library characteristics")
	header := []any{""}
	ncloc := []any{"Non-comment lines of code"}
	eps := []any{"Entry points"}
	checks := []any{"Entry points w/ security checks"}
	may := []any{"may security policies"}
	must := []any{"must security policies"}
	res := []any{"Call sites resolved"}
	for _, r := range rows {
		header = append(header, r.Library)
		ncloc = append(ncloc, r.NCLoC)
		eps = append(eps, r.EntryPoints)
		checks = append(checks, r.EntriesWithChecks)
		may = append(may, r.MayPolicies)
		must = append(must, r.MustPolicies)
		res = append(res, fmt.Sprintf("%.0f%%", r.ResolutionRate*100))
	}
	t.Row(header...)
	t.Separator()
	t.Row(ncloc...)
	t.Row(eps...)
	t.Row(checks...)
	t.Row(may...)
	t.Row(must...)
	t.Row(res...)
	return t.String()
}

// RenderTable2 renders the memoization sweep in the paper's layout
// (times per library for MAY and MUST × summary modes, plus speedups).
func RenderTable2(r *Table2Result) string {
	var sb strings.Builder
	t := report.New("Table 2: Analysis time (memoization sweep)",
		append([]string{"", ""}, corpus.Libraries()...)...)
	memoLabel := map[analysis.MemoMode]string{
		analysis.MemoNone:     "No summaries",
		analysis.MemoPerEntry: "Summaries (per entry point)",
		analysis.MemoGlobal:   "Summaries (global)",
	}
	for _, mode := range []analysis.Mode{analysis.May, analysis.Must} {
		modeName := strings.ToUpper(mode.String())
		for _, memo := range []analysis.MemoMode{analysis.MemoNone, analysis.MemoPerEntry, analysis.MemoGlobal} {
			row := []any{modeName, memoLabel[memo]}
			any := false
			for _, lib := range corpus.Libraries() {
				cell, ok := r.Cells[lib][mode][memo]
				if !ok {
					row = append(row, "-")
					continue
				}
				any = true
				row = append(row, cell.Time.Round(cell.Time/100+1).String())
			}
			if any {
				t.Row(row...)
			}
			modeName = ""
		}
		t.Separator()
	}
	sb.WriteString(t.String())

	// Speedup summary (the paper reports 1.5–13× for per-entry reuse and
	// an overall 15–65× for global reuse).
	sp := report.New("Memoization speedups (time ratios)",
		append([]string{"", ""}, corpus.Libraries()...)...)
	for _, mode := range []analysis.Mode{analysis.May, analysis.Must} {
		rows := []struct {
			label      string
			slow, fast analysis.MemoMode
		}{
			{"none / per-entry", analysis.MemoNone, analysis.MemoPerEntry},
			{"per-entry / global", analysis.MemoPerEntry, analysis.MemoGlobal},
			{"none / global (overall)", analysis.MemoNone, analysis.MemoGlobal},
		}
		modeName := strings.ToUpper(mode.String())
		for _, rr := range rows {
			row := []any{modeName, rr.label}
			ok := true
			for _, lib := range corpus.Libraries() {
				v := r.Speedup(lib, mode, rr.slow, rr.fast)
				if v == 0 {
					ok = false
					break
				}
				row = append(row, fmt.Sprintf("%.1fx", v))
			}
			if ok {
				sp.Row(row...)
			}
			modeName = ""
		}
		sp.Separator()
	}
	sb.WriteByte('\n')
	sb.WriteString(sp.String())
	return sb.String()
}

// RenderTable3 renders the differencing results in the paper's layout.
func RenderTable3(r *Table3Result) string {
	var sb strings.Builder
	header := []string{""}
	for _, pr := range r.Pairs {
		header = append(header, pr.Pair[0]+" v "+pr.Pair[1])
	}
	t := report.New("Table 3: Security vulnerabilities and interoperability errors", header...)

	row := func(label string, cell func(*PairResult) any) {
		cells := []any{label}
		for _, pr := range r.Pairs {
			cells = append(cells, cell(pr))
		}
		t.Row(cells...)
	}
	row("Matching APIs", func(p *PairResult) any { return p.MatchingAPIs })
	row("False positives eliminated by ICP", func(p *PairResult) any { return p.ICPEliminated })
	row("False positives", func(p *PairResult) any { return p.FalsePositives })
	t.Separator()
	row("Root cause: intraprocedural", func(p *PairResult) any { return p.ByCategory[diff.Intraprocedural] })
	row("Root cause: interprocedural", func(p *PairResult) any { return p.ByCategory[diff.Interprocedural] })
	row("Root cause: MUST/MAY difference", func(p *PairResult) any { return p.ByCategory[diff.MustMay] })
	t.Separator()
	row("Total differences", func(p *PairResult) any { return p.TotalDiffs })
	row("Total interoperability bugs", func(p *PairResult) any { return p.InteropBugs })
	for _, lib := range corpus.Libraries() {
		lib := lib
		row("Security vulnerabilities in "+lib, func(p *PairResult) any {
			if d, ok := p.VulnsIn[lib]; ok {
				return d
			}
			return DM{}
		})
	}
	sb.WriteString(t.String())

	tot := report.New("Total security vulnerabilities", "library", "distinct (manifestations)")
	for _, v := range r.TotalVulnsSorted() {
		tot.Row(v.Library, v.Count)
	}
	sb.WriteByte('\n')
	sb.WriteString(tot.String())

	unclassified := 0
	for _, pr := range r.Pairs {
		unclassified += len(pr.UnclassifiedGroups)
	}
	fmt.Fprintf(&sb, "\nUnclassified difference groups: %d (expected 0; any entry here lacks ground truth)\n", unclassified)
	return sb.String()
}

// RenderBroad renders the Section 3 broad-events experiment.
func RenderBroad(r *BroadResult) string {
	t := report.New("Broad vs narrow security-sensitive events (Section 3)",
		"library", "narrow policies", "broad policies", "ratio")
	for _, row := range r.Rows {
		ratio := 0.0
		if row.NarrowPolicies > 0 {
			ratio = float64(row.BroadPolicies) / float64(row.NarrowPolicies)
		}
		t.Row(row.Library, row.NarrowPolicies, row.BroadPolicies, fmt.Sprintf("%.1fx", ratio))
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	fmt.Fprintf(&sb, "\nDistinct differences: narrow %d, broad %d\n", r.NarrowGroups, r.BroadGroups)
	fmt.Fprintf(&sb, "Entries reported only under broad events (Figure 3 population): %d\n", len(r.BroadOnlyEntries))
	for _, e := range r.BroadOnlyEntries {
		fmt.Fprintf(&sb, "  %s\n", e)
	}
	return sb.String()
}

// RenderBaselines renders the oracle vs code-mining comparison.
func RenderBaselines(r *BaselineRowSet) string {
	t := report.New("Code-mining baseline vs the policy oracle (Sections 2, 7)",
		"detector", "support", "confidence", "flagged entries", "seeded issues found", "spurious entries")
	t.Row("policy oracle", "-", "-", "-",
		fmt.Sprintf("%d/%d", r.OracleFound, r.OracleTotal), 0)
	t.Separator()
	for _, row := range r.Rows {
		t.Row("mining ("+row.Setting+")", row.MinSupport, row.MinConfidence,
			row.FlaggedEntries, fmt.Sprintf("%d/%d", row.SeededFound, row.SeededTotal),
			row.SpuriousEntries)
	}
	return t.String()
}
