// Package experiments implements the evaluation harness that regenerates
// every table and figure of the paper's evaluation (Section 6) over the
// corpus workloads: Table 1 (library characteristics), Table 2 (analysis
// time vs memoization), Table 3 (security-policy differencing results),
// the broad-events experiment (Section 3), and the baseline comparisons
// (Sections 2 and 7).
package experiments

import (
	"fmt"
	"sort"
	"time"

	"policyoracle/internal/analysis"
	"policyoracle/internal/corpus"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/diff"
	"policyoracle/internal/oracle"
	"policyoracle/internal/telemetry"
)

// Workload is one three-implementation corpus: the hand-written figure
// classes optionally merged with a generated paper-scale bulk.
type Workload struct {
	Gen     *gen.Corpus
	Sources map[string]map[string]string
	// Parallel, when non-zero, overrides oracle.Options.Parallel for every
	// extraction the harness runs (same semantics: <= 0 is GOMAXPROCS).
	Parallel int
	// Telemetry, when non-nil, instruments every extraction the harness
	// runs (the -timings flag of cmd/experiments).
	Telemetry *telemetry.ExtractMetrics
}

// withParallel overlays the workload's execution settings onto opts.
func (w *Workload) withParallel(opts oracle.Options) oracle.Options {
	if w.Parallel != 0 {
		opts.Parallel = w.Parallel
	}
	if w.Telemetry != nil {
		opts.Telemetry = w.Telemetry
	}
	return opts
}

// NewWorkload builds a workload. p sizes the generated bulk (zero Classes
// disables generation); handwritten includes the figure classes.
func NewWorkload(p gen.Params, handwritten bool) *Workload {
	w := &Workload{Sources: make(map[string]map[string]string)}
	for _, lib := range corpus.Libraries() {
		w.Sources[lib] = make(map[string]string)
		if handwritten {
			for f, src := range corpus.Sources(lib) {
				w.Sources[lib][f] = src
			}
		}
	}
	if p.Classes > 0 {
		w.Gen = gen.Generate(p)
		for _, lib := range corpus.Libraries() {
			for f, src := range w.Gen.Sources[lib] {
				w.Sources[lib][f] = src
			}
		}
	}
	return w
}

// Load parses and builds one implementation.
func (w *Workload) Load(lib string) (*oracle.Library, error) {
	return oracle.LoadLibrary(lib, w.Sources[lib])
}

// LoadAll loads every implementation and extracts policies under opts
// (with the workload's parallelism overlay applied).
func (w *Workload) LoadAll(opts oracle.Options) (map[string]*oracle.Library, error) {
	opts = w.withParallel(opts)
	libs := make(map[string]*oracle.Library)
	for _, name := range corpus.Libraries() {
		l, err := w.Load(name)
		if err != nil {
			return nil, err
		}
		l.Extract(opts)
		libs[name] = l
	}
	return libs, nil
}

// ---------------------------------------------------------------------------
// Table 1: library characteristics

// Table1Row is one implementation's row of Table 1.
type Table1Row struct {
	Library           string
	NCLoC             int
	EntryPoints       int
	EntriesWithChecks int
	MayPolicies       int
	MustPolicies      int
	ResolutionRate    float64
}

// Table1 computes library characteristics from extracted libraries.
func Table1(libs map[string]*oracle.Library) []Table1Row {
	var rows []Table1Row
	for _, name := range corpus.Libraries() {
		l := libs[name]
		n := l.Policies.CountPolicies()
		rows = append(rows, Table1Row{
			Library:           name,
			NCLoC:             l.NCLoC,
			EntryPoints:       len(l.EntryPoints()),
			EntriesWithChecks: l.Policies.EntriesWithChecks(),
			// One may and one must policy per security-sensitive event.
			MayPolicies:    n,
			MustPolicies:   n,
			ResolutionRate: l.Resolver.ResolutionRate(),
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table 2: analysis time vs memoization

// Table2Cell is one (library, mode, memo) measurement.
type Table2Cell struct {
	Time           time.Duration
	MethodAnalyses int
	MemoHits       int
}

// Table2Result holds the full sweep.
type Table2Result struct {
	// Cells[lib][mode][memo]
	Cells map[string]map[analysis.Mode]map[analysis.MemoMode]Table2Cell
}

// Speedup returns the time ratio of the slower memo mode over the faster.
func (r *Table2Result) Speedup(lib string, mode analysis.Mode, slow, fast analysis.MemoMode) float64 {
	s := r.Cells[lib][mode][slow].Time
	f := r.Cells[lib][mode][fast].Time
	if f <= 0 {
		return 0
	}
	return float64(s) / float64(f)
}

// Table2 sweeps memoization modes for each library and analysis mode,
// reloading the library for each cell so caches never leak across cells.
func Table2(w *Workload, memos []analysis.MemoMode) (*Table2Result, error) {
	res := &Table2Result{Cells: make(map[string]map[analysis.Mode]map[analysis.MemoMode]Table2Cell)}
	for _, lib := range corpus.Libraries() {
		res.Cells[lib] = make(map[analysis.Mode]map[analysis.MemoMode]Table2Cell)
		for _, mode := range []analysis.Mode{analysis.May, analysis.Must} {
			res.Cells[lib][mode] = make(map[analysis.MemoMode]Table2Cell)
			for _, memo := range memos {
				l, err := w.Load(lib)
				if err != nil {
					return nil, err
				}
				opts := w.withParallel(oracle.DefaultOptions())
				opts.Memo = memo
				opts.Modes = []analysis.Mode{mode}
				opts.CollectPaths = false
				l.Extract(opts)
				stats, dur := l.MayStats, l.MayTime
				if mode == analysis.Must {
					stats, dur = l.MustStats, l.MustTime
				}
				res.Cells[lib][mode][memo] = Table2Cell{
					Time:           dur,
					MethodAnalyses: stats.MethodAnalyses,
					MemoHits:       stats.MemoHits,
				}
			}
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Table 3: differencing results

// Label classifies a reported difference group.
type Label int

// Group labels.
const (
	Vulnerability Label = iota
	Interoperability
	FalsePositive
	Unclassified
)

func (l Label) String() string {
	switch l {
	case Vulnerability:
		return "vulnerability"
	case Interoperability:
		return "interoperability"
	case FalsePositive:
		return "false-positive"
	}
	return "unclassified"
}

// DM is a distinct (manifestations) pair, the cell format of Table 3.
type DM struct {
	Distinct       int
	Manifestations int
}

func (d DM) String() string { return fmt.Sprintf("%d (%d)", d.Distinct, d.Manifestations) }

func (d *DM) add(g *diff.Group) {
	d.Distinct++
	d.Manifestations += g.Manifestations()
}

// PairResult is one pairwise comparison of Table 3.
type PairResult struct {
	Pair           [2]string
	MatchingAPIs   int
	Report         *diff.Report
	ICPEliminated  DM
	FalsePositives DM
	ByCategory     map[diff.Category]DM
	TotalDiffs     DM
	InteropBugs    DM
	// VulnsIn maps the responsible library to its vulnerability count.
	VulnsIn map[string]DM
	// UnclassifiedGroups should be empty; anything here is a difference
	// with no ground-truth label.
	UnclassifiedGroups []*diff.Group
}

// Table3Result aggregates all pairs plus per-library vulnerability totals,
// deduplicated across pairs (the same bug detected against two partner
// implementations counts once).
type Table3Result struct {
	Pairs      []*PairResult
	TotalVulns map[string]DM
}

// Table3 runs the pairwise differencing with ICP on, classifies every
// group against ground truth, and measures the false positives that ICP
// eliminates by re-running with ICP off.
func Table3(w *Workload) (*Table3Result, error) {
	libsICP, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		return nil, err
	}
	noICPOpts := oracle.DefaultOptions()
	noICPOpts.ICP = false
	libsNoICP, err := w.LoadAll(noICPOpts)
	if err != nil {
		return nil, err
	}

	res := &Table3Result{TotalVulns: map[string]DM{}}
	// vulnSeen dedupes vulnerabilities across pairs: lib → issue key →
	// largest manifestation count observed.
	vulnSeen := map[string]map[string]int{}
	for _, pair := range corpus.Pairs() {
		pr := &PairResult{
			Pair:       pair,
			ByCategory: map[diff.Category]DM{},
			VulnsIn:    map[string]DM{},
		}
		pr.MatchingAPIs = oracle.MatchingEntries(libsICP[pair[0]], libsICP[pair[1]])
		pr.Report, err = oracle.Diff(libsICP[pair[0]], libsICP[pair[1]])
		if err != nil {
			return nil, err
		}

		// ICP row: groups reported without ICP whose entries are all
		// absent from the ICP-on report.
		flagged := map[string]bool{}
		for _, g := range pr.Report.Groups {
			for _, e := range g.Entries {
				flagged[e] = true
			}
		}
		noICPRep, err := oracle.Diff(libsNoICP[pair[0]], libsNoICP[pair[1]])
		if err != nil {
			return nil, err
		}
		for _, g := range noICPRep.Groups {
			spurious := true
			for _, e := range g.Entries {
				if flagged[e] {
					spurious = false
				}
			}
			if spurious {
				pr.ICPEliminated.add(g)
			}
		}

		for _, g := range pr.Report.Groups {
			label, responsible, key := w.classify(g, pair)
			switch label {
			case Vulnerability:
				d := pr.VulnsIn[responsible]
				d.add(g)
				pr.VulnsIn[responsible] = d
				if vulnSeen[responsible] == nil {
					vulnSeen[responsible] = map[string]int{}
				}
				if m := g.Manifestations(); m > vulnSeen[responsible][key] {
					vulnSeen[responsible][key] = m
				}
				c := pr.ByCategory[g.Category]
				c.add(g)
				pr.ByCategory[g.Category] = c
				pr.TotalDiffs.add(g)
			case Interoperability:
				pr.InteropBugs.add(g)
				c := pr.ByCategory[g.Category]
				c.add(g)
				pr.ByCategory[g.Category] = c
				pr.TotalDiffs.add(g)
			case FalsePositive:
				pr.FalsePositives.add(g)
			default:
				pr.UnclassifiedGroups = append(pr.UnclassifiedGroups, g)
				pr.TotalDiffs.add(g)
			}
		}
		res.Pairs = append(res.Pairs, pr)
	}
	for lib, byKey := range vulnSeen {
		var d DM
		for _, m := range byKey {
			d.Distinct++
			d.Manifestations += m
		}
		res.TotalVulns[lib] = d
	}
	return res, nil
}

// classify labels a group using the hand-written and generated ground
// truth. The returned key identifies the underlying issue stably across
// pairs, for cross-pair deduplication.
func (w *Workload) classify(g *diff.Group, pair [2]string) (Label, string, string) {
	if is := corpus.ClassifyGroup(g, pair, false); is != nil {
		switch is.Kind {
		case corpus.Vulnerability:
			return Vulnerability, is.Responsible, is.ID
		case corpus.Interoperability:
			return Interoperability, is.Responsible, is.ID
		default:
			return FalsePositive, is.Responsible, is.ID
		}
	}
	if w.Gen != nil {
		for i := range w.Gen.Issues {
			is := &w.Gen.Issues[i]
			if is.Responsible != pair[0] && is.Responsible != pair[1] {
				continue
			}
			for _, e := range g.Entries {
				if is.MatchesEntry(e) {
					if is.Kind.IsVulnerability() {
						return Vulnerability, is.Responsible, is.ID
					}
					return Interoperability, is.Responsible, is.ID
				}
			}
		}
	}
	return Unclassified, "", g.RootKey
}

// TotalVulnsSorted returns (library, DM) pairs sorted by library name.
func (r *Table3Result) TotalVulnsSorted() []struct {
	Library string
	Count   DM
} {
	var out []struct {
		Library string
		Count   DM
	}
	var names []string
	for n := range r.TotalVulns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = append(out, struct {
			Library string
			Count   DM
		}{n, r.TotalVulns[n]})
	}
	return out
}
