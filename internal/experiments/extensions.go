package experiments

import (
	"fmt"
	"strings"

	"policyoracle/internal/corpus"
	"policyoracle/internal/exceptions"
	"policyoracle/internal/oracle"
	"policyoracle/internal/report"
	"policyoracle/internal/witness"
)

// WitnessRow summarizes dynamic confirmation for one pair.
type WitnessRow struct {
	Pair [2]string
	// VulnGroups is the number of vulnerability-classified groups.
	VulnGroups int
	// Confirmed counts groups with at least one dynamic confirmation
	// blaming the ground-truth library.
	Confirmed int
	// Misattributed counts confirmations blaming the wrong library.
	Misattributed int
}

// WitnessResult is the dynamic-confirmation experiment outcome (the
// paper's "developers recognized all of them as bugs", mechanized).
type WitnessResult struct {
	Rows []WitnessRow
}

// Witness runs the interpreter-based confirmation over every
// vulnerability group of every pair.
func Witness(w *Workload) (*WitnessResult, error) {
	libs, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		return nil, err
	}
	res := &WitnessResult{}
	for _, pair := range corpus.Pairs() {
		a, b := libs[pair[0]], libs[pair[1]]
		rep, err := oracle.Diff(a, b)
		if err != nil {
			return nil, err
		}
		row := WitnessRow{Pair: pair}
		for _, g := range rep.Groups {
			label, responsible, _ := w.classify(g, pair)
			if label != Vulnerability {
				continue
			}
			row.VulnGroups++
			confirmed := false
			for _, r := range witness.Confirm(a.Prog.Types, b.Prog.Types, a.Name, b.Name, g) {
				if !r.Confirmed {
					continue
				}
				if r.VulnerableLib == responsible {
					confirmed = true
				} else {
					row.Misattributed++
				}
			}
			if confirmed {
				row.Confirmed++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderWitness renders the confirmation table.
func RenderWitness(r *WitnessResult) string {
	t := report.New("Dynamic confirmation of reported vulnerabilities (interpreter witness)",
		"pair", "vulnerability groups", "confirmed", "misattributed")
	for _, row := range r.Rows {
		t.Row(row.Pair[0]+" v "+row.Pair[1], row.VulnGroups, row.Confirmed, row.Misattributed)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	sb.WriteString("\nUnconfirmed groups are MAY/MUST weakenings whose guarding condition the\nsynthesized inputs do not trigger — differences, not directly drivable holes.\n")
	return sb.String()
}

// ExceptionRow is one pair's §8 exception-semantics comparison.
type ExceptionRow struct {
	Pair        [2]string
	Differences int
	Entries     []string
}

// ExceptionsResult aggregates the §8 extension over all pairs.
type ExceptionsResult struct {
	Rows []ExceptionRow
}

// Exceptions runs the thrown-exception differencing over all pairs.
func Exceptions(w *Workload) (*ExceptionsResult, error) {
	res := &ExceptionsResult{}
	analyzers := map[string]*exceptions.Analyzer{}
	for _, name := range corpus.Libraries() {
		l, err := w.Load(name)
		if err != nil {
			return nil, err
		}
		analyzers[name] = exceptions.New(l.Prog, l.Resolver)
	}
	for _, pair := range corpus.Pairs() {
		diffs := exceptions.Compare(analyzers[pair[0]], analyzers[pair[1]])
		row := ExceptionRow{Pair: pair, Differences: len(diffs)}
		for _, d := range diffs {
			row.Entries = append(row.Entries, fmt.Sprintf("%s: %s vs %s", d.Entry, d.A, d.B))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderExceptions renders the §8 comparison.
func RenderExceptions(r *ExceptionsResult) string {
	t := report.New("Exception-semantics differencing (Section 8 generalization)",
		"pair", "differing entry points")
	for _, row := range r.Rows {
		t.Row(row.Pair[0]+" v "+row.Pair[1], row.Differences)
	}
	var sb strings.Builder
	sb.WriteString(t.String())
	for _, row := range r.Rows {
		for _, e := range row.Entries {
			fmt.Fprintf(&sb, "  [%s v %s] %s\n", row.Pair[0], row.Pair[1], e)
		}
	}
	return sb.String()
}
