package experiments

import (
	"strings"
	"testing"

	"policyoracle/internal/analysis"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/oracle"
)

func smallWorkload() *Workload {
	p := gen.Small()
	return NewWorkload(p, true)
}

func TestTable1(t *testing.T) {
	w := smallWorkload()
	libs, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := Table1(libs)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.EntryPoints == 0 || r.NCLoC == 0 || r.MayPolicies == 0 {
			t.Errorf("degenerate row: %+v", r)
		}
		if r.EntriesWithChecks == 0 || r.EntriesWithChecks >= r.EntryPoints {
			t.Errorf("checking entries implausible: %+v", r)
		}
		if r.ResolutionRate < 0.9 {
			t.Errorf("%s resolution rate %.2f", r.Library, r.ResolutionRate)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "jdk") || !strings.Contains(out, "Entry points") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	// A small workload suffices: the memoization ordering must hold.
	p := gen.Params{
		Seed: 5, Classes: 10, MethodsPerClass: 5, CheckFraction: 0.3,
		MaxDepth: 3, WrapperFanout: 1, DropCheck: 1, ConstGuards: 1,
	}
	w := NewWorkload(p, false)
	res, err := Table2(w, []analysis.MemoMode{analysis.MemoNone, analysis.MemoPerEntry, analysis.MemoGlobal})
	if err != nil {
		t.Fatal(err)
	}
	for lib, byMode := range res.Cells {
		for mode, byMemo := range byMode {
			none := byMemo[analysis.MemoNone].MethodAnalyses
			per := byMemo[analysis.MemoPerEntry].MethodAnalyses
			global := byMemo[analysis.MemoGlobal].MethodAnalyses
			if !(global <= per && per <= none) {
				t.Errorf("%s/%s: analyses not ordered: none=%d per=%d global=%d",
					lib, mode, none, per, global)
			}
			if none <= global {
				t.Errorf("%s/%s: no memoization benefit: none=%d global=%d", lib, mode, none, global)
			}
		}
	}
	out := RenderTable2(res)
	if !strings.Contains(out, "No summaries") || !strings.Contains(out, "overall") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTable3ClassifiesEverything(t *testing.T) {
	w := smallWorkload()
	res, err := Table3(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("got %d pairs", len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if len(pr.UnclassifiedGroups) != 0 {
			for _, g := range pr.UnclassifiedGroups {
				t.Errorf("%v: unclassified group: %s %s %v", pr.Pair, g.Case, g.DiffChecks, g.Entries)
			}
		}
		if pr.MatchingAPIs == 0 {
			t.Errorf("%v: no matching APIs", pr.Pair)
		}
		if pr.TotalDiffs.Distinct == 0 {
			t.Errorf("%v: no differences found", pr.Pair)
		}
		if pr.FalsePositives.Distinct == 0 && (pr.Pair[0] == "harmony" || pr.Pair[1] == "harmony") {
			t.Errorf("%v: expected the hand-written false positives", pr.Pair)
		}
		if pr.ICPEliminated.Distinct == 0 {
			t.Errorf("%v: ICP row empty — constant-guard twins not exercised", pr.Pair)
		}
	}
	// Every library must have at least one vulnerability (hand-written set
	// guarantees this).
	for _, lib := range []string{"jdk", "harmony", "classpath"} {
		if res.TotalVulns[lib].Distinct == 0 {
			t.Errorf("no vulnerabilities attributed to %s", lib)
		}
	}
	out := RenderTable3(res)
	for _, want := range []string{"Matching APIs", "eliminated by ICP", "interoperability", "vulnerabilities in jdk"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBroadExperiment(t *testing.T) {
	w := smallWorkload()
	res, err := Broad(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.BroadPolicies <= r.NarrowPolicies {
			t.Errorf("%s: broad (%d) should exceed narrow (%d)", r.Library, r.BroadPolicies, r.NarrowPolicies)
		}
	}
	// The Figure 3 Bag entry must appear among broad-only findings.
	found := false
	for _, e := range res.BroadOnlyEntries {
		if strings.Contains(e, "Bag.a") {
			found = true
		}
	}
	if !found {
		t.Errorf("Figure 3 Bag entry missing from broad-only findings: %v", res.BroadOnlyEntries)
	}
	out := RenderBroad(res)
	if !strings.Contains(out, "ratio") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestWitnessExperiment(t *testing.T) {
	w := smallWorkload()
	res, err := Witness(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.VulnGroups == 0 {
			t.Errorf("%v: no vulnerability groups", row.Pair)
		}
		if row.Confirmed == 0 {
			t.Errorf("%v: nothing dynamically confirmed", row.Pair)
		}
		if row.Misattributed != 0 {
			t.Errorf("%v: %d misattributed confirmations", row.Pair, row.Misattributed)
		}
		if row.Confirmed > row.VulnGroups {
			t.Errorf("%v: confirmed %d > groups %d", row.Pair, row.Confirmed, row.VulnGroups)
		}
	}
	out := RenderWitness(res)
	if !strings.Contains(out, "confirmed") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestExceptionsExperiment(t *testing.T) {
	w := smallWorkload()
	res, err := Exceptions(w)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		for _, e := range row.Entries {
			if strings.Contains(e, "UnsupportedEncodingException") {
				found = true
			}
		}
	}
	if !found {
		t.Error("Figure 8 exception difference missing")
	}
	out := RenderExceptions(res)
	if !strings.Contains(out, "Section 8") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestBaselinesExperiment(t *testing.T) {
	w := smallWorkload()
	res, err := Baselines(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleFound < res.OracleTotal {
		t.Errorf("oracle found %d of %d seeded issues", res.OracleFound, res.OracleTotal)
	}
	for _, row := range res.Rows {
		if row.SeededFound >= row.SeededTotal {
			t.Errorf("miner (%s) should miss some seeded issues: %d/%d",
				row.Setting, row.SeededFound, row.SeededTotal)
		}
	}
	// Loosening thresholds must not reduce coverage.
	if len(res.Rows) >= 2 {
		strict, loose := res.Rows[0], res.Rows[len(res.Rows)-1]
		if loose.FlaggedEntries < strict.FlaggedEntries {
			t.Errorf("loose flagged fewer entries than strict: %d < %d",
				loose.FlaggedEntries, strict.FlaggedEntries)
		}
	}
	out := RenderBaselines(res)
	if !strings.Contains(out, "policy oracle") {
		t.Errorf("render missing content:\n%s", out)
	}
}
