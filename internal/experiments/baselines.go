package experiments

import (
	"strings"

	"policyoracle/internal/baseline/mining"
	"policyoracle/internal/corpus"
	"policyoracle/internal/oracle"
)

// BaselineRow compares the oracle with the code-mining baseline at one
// mining threshold setting.
type BaselineRow struct {
	Setting        string
	MinSupport     int
	MinConfidence  float64
	FlaggedEntries int
	// SeededFound counts seeded (generated) issues the miner's flagged
	// entries cover; SeededTotal is the seeded population visible to it.
	SeededFound int
	SeededTotal int
	// SpuriousEntries counts flagged entries that manifest no seeded or
	// hand-written issue (the miner's false positives).
	SpuriousEntries int
}

// BaselineResult is the Sections 2/7 comparison: the oracle's recall is
// measured by Table 3; this table shows the miner's threshold tradeoff.
type BaselineRowSet struct {
	Rows []BaselineRow
	// OracleFound/OracleTotal restate the oracle's recall on the same
	// seeded population for side-by-side display.
	OracleFound int
	OracleTotal int
}

// Baselines runs the miner at several thresholds over every implementation
// and scores it against the seeded ground truth.
func Baselines(w *Workload) (*BaselineRowSet, error) {
	libs, err := w.LoadAll(oracle.DefaultOptions())
	if err != nil {
		return nil, err
	}

	// issueKey maps a manifesting entry to the stable identifier of the
	// seeded or hand-written (non-FP, non-broad-only) issue it exposes.
	issueKey := func(entry string) (string, bool) {
		if w.Gen != nil {
			for i := range w.Gen.Issues {
				if w.Gen.Issues[i].MatchesEntry(entry) {
					return w.Gen.Issues[i].ID, true
				}
			}
		}
		for _, is := range corpus.KnownIssues() {
			if is.BroadOnly || is.Kind == corpus.FalsePositive {
				continue
			}
			if containsSub(entry, is.MatchEntry) {
				return is.ID, true
			}
		}
		return "", false
	}

	totalSeeded := 0
	if w.Gen != nil {
		totalSeeded += len(w.Gen.Issues)
	}
	for _, is := range corpus.KnownIssues() {
		if !is.BroadOnly && is.Kind != corpus.FalsePositive {
			totalSeeded++
		}
	}

	settings := []struct {
		name string
		cfg  mining.Config
	}{
		{"strict", mining.Config{MinSupport: 5, MinConfidence: 0.95}},
		{"default", mining.DefaultConfig()},
		{"loose", mining.Config{MinSupport: 2, MinConfidence: 0.6}},
	}

	res := &BaselineRowSet{OracleTotal: totalSeeded}
	// The oracle's recall: every seeded issue detected (validated by the
	// corpus test suites); recount here against the actual reports.
	oracleFound := map[string]bool{}
	for _, pair := range corpus.Pairs() {
		rep, err := oracle.Diff(libs[pair[0]], libs[pair[1]])
		if err != nil {
			return nil, err
		}
		for _, g := range rep.Groups {
			for _, e := range g.Entries {
				if key, ok := issueKey(e); ok {
					oracleFound[key] = true
				}
			}
		}
	}
	res.OracleFound = len(oracleFound)

	for _, s := range settings {
		row := BaselineRow{
			Setting:       s.name,
			MinSupport:    s.cfg.MinSupport,
			MinConfidence: s.cfg.MinConfidence,
			SeededTotal:   totalSeeded,
		}
		flagged := map[string]bool{}
		for _, name := range corpus.Libraries() {
			m := mining.New(libs[name].Policies, s.cfg)
			for _, v := range m.FindViolations() {
				flagged[v.Entry] = true
			}
		}
		row.FlaggedEntries = len(flagged)
		seen := map[string]bool{}
		for e := range flagged {
			if key, ok := issueKey(e); ok {
				seen[key] = true
			} else {
				row.SpuriousEntries++
			}
		}
		row.SeededFound = len(seen)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func containsSub(s, sub string) bool {
	return sub != "" && strings.Contains(s, sub)
}
