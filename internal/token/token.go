// Package token defines the lexical tokens of MJ, the Java-subset input
// language of the security policy oracle.
package token

import "strconv"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	Invalid Kind = iota
	EOF

	// Literals and identifiers.
	Ident     // connect
	IntLit    // 123
	StringLit // "abc"
	CharLit   // 'a'

	// Punctuation.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Semi      // ;
	Comma     // ,
	Dot       // .
	Question  // ?
	Colon     // :
	At        // @
	Ellipsis  // ...
	Assign    // =
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PlusPlus  // ++
	MinusLess // --

	// Operators.
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Not     // !
	BitAnd  // &
	BitOr   // |
	Caret   // ^
	AndAnd  // &&
	OrOr    // ||
	Eq      // ==
	NotEq   // !=
	Lt      // <
	Gt      // >
	LtEq    // <=
	GtEq    // >=

	// Keywords.
	KwPackage
	KwImport
	KwClass
	KwInterface
	KwExtends
	KwImplements
	KwPublic
	KwProtected
	KwPrivate
	KwStatic
	KwFinal
	KwAbstract
	KwNative
	KwSynchronized
	KwTransient
	KwVolatile
	KwVoid
	KwBoolean
	KwInt
	KwLong
	KwChar
	KwByte
	KwShort
	KwFloat
	KwDouble
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwNew
	KwNull
	KwTrue
	KwFalse
	KwThis
	KwSuper
	KwInstanceof
	KwThrow
	KwThrows
	KwTry
	KwCatch
	KwFinally
	KwSwitch
	KwCase
	KwDefault
	KwCast // explicit marker kind; casts are parsed structurally
)

var kindNames = map[Kind]string{
	Invalid: "invalid", EOF: "EOF",
	Ident: "identifier", IntLit: "int literal", StringLit: "string literal", CharLit: "char literal",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBracket: "[", RBracket: "]",
	Semi: ";", Comma: ",", Dot: ".", Question: "?", Colon: ":", At: "@", Ellipsis: "...",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=",
	PlusPlus: "++", MinusLess: "--",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Not: "!",
	BitAnd: "&", BitOr: "|", Caret: "^", AndAnd: "&&", OrOr: "||",
	Eq: "==", NotEq: "!=", Lt: "<", Gt: ">", LtEq: "<=", GtEq: ">=",
	KwPackage: "package", KwImport: "import", KwClass: "class", KwInterface: "interface",
	KwExtends: "extends", KwImplements: "implements",
	KwPublic: "public", KwProtected: "protected", KwPrivate: "private",
	KwStatic: "static", KwFinal: "final", KwAbstract: "abstract", KwNative: "native",
	KwSynchronized: "synchronized", KwTransient: "transient", KwVolatile: "volatile",
	KwVoid: "void", KwBoolean: "boolean", KwInt: "int", KwLong: "long",
	KwChar: "char", KwByte: "byte", KwShort: "short", KwFloat: "float", KwDouble: "double",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for", KwDo: "do",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue",
	KwNew: "new", KwNull: "null", KwTrue: "true", KwFalse: "false",
	KwThis: "this", KwSuper: "super", KwInstanceof: "instanceof",
	KwThrow: "throw", KwThrows: "throws", KwTry: "try", KwCatch: "catch", KwFinally: "finally",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"package": KwPackage, "import": KwImport, "class": KwClass, "interface": KwInterface,
	"extends": KwExtends, "implements": KwImplements,
	"public": KwPublic, "protected": KwProtected, "private": KwPrivate,
	"static": KwStatic, "final": KwFinal, "abstract": KwAbstract, "native": KwNative,
	"synchronized": KwSynchronized, "transient": KwTransient, "volatile": KwVolatile,
	"void": KwVoid, "boolean": KwBoolean, "int": KwInt, "long": KwLong,
	"char": KwChar, "byte": KwByte, "short": KwShort, "float": KwFloat, "double": KwDouble,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor, "do": KwDo,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"new": KwNew, "null": KwNull, "true": KwTrue, "false": KwFalse,
	"this": KwThis, "super": KwSuper, "instanceof": KwInstanceof,
	"throw": KwThrow, "throws": KwThrows, "try": KwTry, "catch": KwCatch, "finally": KwFinally,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
}

// IsModifier reports whether k is a declaration modifier keyword.
func (k Kind) IsModifier() bool {
	switch k {
	case KwPublic, KwProtected, KwPrivate, KwStatic, KwFinal, KwAbstract,
		KwNative, KwSynchronized, KwTransient, KwVolatile:
		return true
	}
	return false
}

// IsPrimitiveType reports whether k names a primitive type.
func (k Kind) IsPrimitiveType() bool {
	switch k {
	case KwVoid, KwBoolean, KwInt, KwLong, KwChar, KwByte, KwShort, KwFloat, KwDouble:
		return true
	}
	return false
}
