package campaign

import (
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"policyoracle/internal/analysis"
	"policyoracle/internal/metamorph"
	"policyoracle/internal/oracle"
	"policyoracle/internal/secmodel"
)

// The coverage key is the campaign's cheap behavioral signature of one
// round, built entirely from data the round already produced — no
// instrumentation pass. Its components:
//
//	mut=...    the distinct mutators applied, sorted;
//	inv=...    which sampled invariants were stressed (p/i flags);
//	may=/must= per-mode analysis-shape deltas vs the baseline
//	           (MethodAnalyses, MemoHits, CPRuns, CPHits), each
//	           log2-bucketed so magnitudes, not exact counts, define
//	           novelty;
//	sc=...     summary-cache hit/miss counts around the round's main
//	           extraction, log2-bucketed — how much of the mutant's
//	           entry cone re-derived vs spliced;
//	viol=...   violated invariant names, sorted;
//	roots=...  diff root keys touched by violations, sorted.
//
// Two rounds share a key iff the analysis did the same shape of work on
// them, so "new key" approximates "exercised a new analysis path" at
// zero extra cost.

// libShape carries the per-round inputs to coverageKey that come from
// the mutant's extraction.
type libShape struct {
	may, must      analysis.Stats
	scHits, scMiss uint64
	checked        metamorph.MutantChecks
}

// coverageKey renders the round signature. It must be a pure function
// of deterministic round state: it feeds both novelty detection and the
// cross-shard merged key set.
func coverageKey(applied []string, shape libShape, base *oracle.Library, violations []metamorph.Violation) string {
	var b strings.Builder

	b.WriteString("mut=")
	b.WriteString(strings.Join(sortedDistinct(applied), "+"))

	b.WriteString(";inv=")
	if shape.checked.Parallel {
		b.WriteByte('p')
	}
	if shape.checked.Incremental {
		b.WriteByte('i')
	}

	b.WriteString(";may=")
	writeStatsDelta(&b, shape.may, base.MayStats)
	b.WriteString(";must=")
	writeStatsDelta(&b, shape.must, base.MustStats)

	b.WriteString(";sc=")
	b.WriteString(bucketU(shape.scHits))
	b.WriteByte('.')
	b.WriteString(bucketU(shape.scMiss))

	var names, roots []string
	for _, v := range violations {
		names = append(names, v.Invariant)
		roots = append(roots, v.RootKeys...)
	}
	b.WriteString(";viol=")
	b.WriteString(strings.Join(sortedDistinct(names), "+"))
	b.WriteString(";roots=")
	b.WriteString(strings.Join(sortedDistinct(roots), "+"))

	return b.String()
}

// writeStatsDelta renders one mode's bucketed counter deltas as
// "a.b.c.d" (method analyses, memo hits, CP runs, CP hits).
func writeStatsDelta(b *strings.Builder, got, base analysis.Stats) {
	b.WriteString(bucket(got.MethodAnalyses - base.MethodAnalyses))
	b.WriteByte('.')
	b.WriteString(bucket(got.MemoHits - base.MemoHits))
	b.WriteByte('.')
	b.WriteString(bucket(got.CPRuns - base.CPRuns))
	b.WriteByte('.')
	b.WriteString(bucket(got.CPHits - base.CPHits))
}

// bucket maps a signed delta to its log2 magnitude class ("0", "3",
// "-2", ...): exact counts jitter with every rename, magnitudes track
// actual shape changes.
func bucket(d int) string {
	sign := ""
	if d < 0 {
		sign = "-"
		d = -d
	}
	return sign + strconv.Itoa(bits.Len(uint(d)))
}

func bucketU(v uint64) string {
	return strconv.Itoa(bits.Len64(v))
}

func sortedDistinct(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// domainID resolves the effective check-domain ID (nil means the
// registered default, SecurityManager).
func domainID(d *secmodel.Domain) string {
	if d == nil {
		return secmodel.SecurityManager().ID()
	}
	return d.ID()
}
