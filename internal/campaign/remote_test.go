package campaign_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"policyoracle/internal/campaign"
	"policyoracle/internal/server"
	"policyoracle/internal/store"
	"policyoracle/internal/telemetry"
)

// startWorker boots a polorad-equivalent campaign worker: a real
// server.New over a fresh store with -campaigns on.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(store.Config{Dir: t.TempDir(), MaxInflight: 2, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(st, server.Options{Campaigns: true}))
	t.Cleanup(ts.Close)
	return ts
}

func remoteOpts(seed int64) campaign.Options {
	return campaign.Options{
		Seed: seed, Rounds: 10, Mutations: 4, ShardRounds: 4,
		Poll: 10 * time.Millisecond,
	}
}

// TestRemoteMatchesLocal is the distribution acceptance test: a
// campaign sharded across two polorad workers must merge to
// byte-identical results as the same campaign run locally.
func TestRemoteMatchesLocal(t *testing.T) {
	src := testSources(t)
	local, err := campaign.Run("jdk", src, remoteOpts(31))
	if err != nil {
		t.Fatal(err)
	}
	w1, w2 := startWorker(t), startWorker(t)
	remote, err := campaign.RunRemote(context.Background(), "jdk", src, remoteOpts(31),
		[]string{w1.URL, w2.URL})
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(local)
	rj, _ := json.Marshal(remote)
	if string(lj) != string(rj) {
		t.Fatalf("remote merge != local run:\nlocal:  %s\nremote: %s", lj, rj)
	}
}

// TestRemoteSurvivesWorkerDropout runs the same campaign against one
// healthy worker and one that fails every request: the healthy worker
// must absorb the requeued shards and the merged result must still
// equal the local run.
func TestRemoteSurvivesWorkerDropout(t *testing.T) {
	src := testSources(t)
	local, err := campaign.Run("jdk", src, remoteOpts(37))
	if err != nil {
		t.Fatal(err)
	}
	var broken atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		broken.Add(1)
		http.Error(w, "worker melted", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	good := startWorker(t)
	remote, err := campaign.RunRemote(context.Background(), "jdk", src, remoteOpts(37),
		[]string{bad.URL, good.URL})
	if err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(local)
	rj, _ := json.Marshal(remote)
	if string(lj) != string(rj) {
		t.Fatalf("dropout changed the merged result:\nlocal:  %s\nremote: %s", lj, rj)
	}
	if broken.Load() == 0 {
		t.Fatal("broken worker was never offered a shard")
	}
}

// TestRemoteSurvivesFlakyStatusPolls pins the poll retry budget: a
// worker whose status GETs fail intermittently (every other poll) must
// not be declared dead — the poller retries with backoff, and no shard
// is requeued, so each shard is POSTed exactly once and the merged
// result still equals the local run. Before the budget existed, one
// dropped GET requeued a shard that was still running remotely.
func TestRemoteSurvivesFlakyStatusPolls(t *testing.T) {
	src := testSources(t)
	opts := remoteOpts(41)
	local, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := campaign.NewEngine("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Config{Dir: t.TempDir(), MaxInflight: 2, Registry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	inner := server.New(st, server.Options{Campaigns: true})
	var posts, polls, dropped atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
		}
		if r.Method == http.MethodGet {
			if polls.Add(1)%2 == 1 {
				dropped.Add(1)
				http.Error(w, "bad gateway", http.StatusBadGateway)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)
	remote, err := campaign.RunRemote(context.Background(), "jdk", src, opts, []string{flaky.URL})
	if err != nil {
		t.Fatalf("flaky status polls killed the campaign: %v", err)
	}
	if dropped.Load() == 0 {
		t.Fatal("no status poll was dropped; test is vacuous")
	}
	if got, want := posts.Load(), int64(e.Shards()); got != want {
		t.Fatalf("%d shard POSTs for %d shards: transient poll failures requeued running shards", got, want)
	}
	lj, _ := json.Marshal(local)
	rj, _ := json.Marshal(remote)
	if string(lj) != string(rj) {
		t.Fatalf("flaky polls changed the merged result:\nlocal:  %s\nremote: %s", lj, rj)
	}
}

// TestRemoteAllWorkersFail pins the terminal error: when every worker
// has been dropped with shards still pending, RunRemote reports it
// instead of hanging.
func TestRemoteAllWorkersFail(t *testing.T) {
	src := testSources(t)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	_, err := campaign.RunRemote(context.Background(), "jdk", src, remoteOpts(1), []string{bad.URL})
	if err == nil {
		t.Fatal("RunRemote succeeded against a dead worker pool")
	}
}

// TestRemoteHonorsContext pins cancellation: a cancelled context stops
// the campaign promptly with ctx.Err.
func TestRemoteHonorsContext(t *testing.T) {
	src := testSources(t)
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	t.Cleanup(hang.Close)
	t.Cleanup(func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := campaign.RunRemote(ctx, "jdk", src, remoteOpts(1), []string{hang.URL})
	if err == nil {
		t.Fatal("RunRemote ignored context cancellation")
	}
}
