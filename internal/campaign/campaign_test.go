package campaign_test

import (
	"encoding/json"
	"strings"
	"testing"

	"policyoracle/internal/campaign"
	"policyoracle/internal/corpus/gen"
	"policyoracle/internal/telemetry"
)

// testParams sizes a generated corpus small enough that a campaign
// round (parse + mutate + extract + diff) stays in the low-millisecond
// range, but with helpers, wrappers, and privileged blocks so every
// catalog mutator finds sites.
func testParams() gen.Params {
	return gen.Params{
		Seed: 401, Classes: 4, MethodsPerClass: 3, CheckFraction: 0.5,
		MaxDepth: 2, WrapperFanout: 1, ConstGuards: 1, PolymorphicNoise: 1,
	}
}

func testSources(t *testing.T) map[string]string {
	t.Helper()
	c := gen.Generate(testParams())
	src := c.Sources["jdk"]
	if len(src) == 0 {
		t.Fatal("generated corpus has no jdk sources")
	}
	return src
}

// TestCampaignDeterministic pins the scheduler-determinism contract:
// the same seed produces byte-identical merged results regardless of
// worker count, because every shard is a self-contained sequential
// feedback unit. Elapsed is excluded from the JSON encoding, so the
// comparison is over everything the campaign reports.
func TestCampaignDeterministic(t *testing.T) {
	src := testSources(t)
	opts := campaign.Options{Seed: 11, Rounds: 12, Mutations: 4, ShardRounds: 4}

	opts.Workers = 1
	a, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	b, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same seed, different results:\n1 worker:  %s\n4 workers: %s", aj, bj)
	}
	if a.Rounds != 12 || a.Entries == 0 {
		t.Fatalf("bad result shape: rounds=%d entries=%d", a.Rounds, a.Entries)
	}
	if a.RawViolations != 0 || len(a.Crashers) != 0 {
		t.Fatalf("clean corpus produced violations: %s", aj)
	}
	if len(a.CoverageKeys) == 0 || a.NewCoverageRounds == 0 {
		t.Fatal("campaign discovered no coverage")
	}
}

// TestManualShardsMergeLikeRun pins that Merge over out-of-order,
// individually-run shards equals a whole local Run — the property the
// remote path depends on.
func TestManualShardsMergeLikeRun(t *testing.T) {
	src := testSources(t)
	opts := campaign.Options{Seed: 23, Rounds: 10, Mutations: 4, ShardRounds: 4}

	whole, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	e, err := campaign.NewEngine("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 3 {
		t.Fatalf("10 rounds / 4 per shard = 3 shards, got %d", e.Shards())
	}
	var shards []*campaign.ShardResult
	for s := e.Shards() - 1; s >= 0; s-- { // reverse order on purpose
		sr, err := e.RunShard(s)
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sr)
	}
	// The last shard covers only the tail of the round range.
	if last := shards[0]; last.Rounds != 2 || last.StartRound != 8 {
		t.Fatalf("tail shard: rounds=%d start=%d", last.Rounds, last.StartRound)
	}
	merged := e.Merge(shards)
	wj, _ := json.Marshal(whole)
	mj, _ := json.Marshal(merged)
	if string(wj) != string(mj) {
		t.Fatalf("manual merge != Run:\nrun:   %s\nmerge: %s", wj, mj)
	}
}

// TestCoverageKeyShape asserts every reported key carries all six
// signature components in order, so downstream consumers (CI jq
// queries, the nightly summary) can parse them positionally.
func TestCoverageKeyShape(t *testing.T) {
	src := testSources(t)
	res, err := campaign.Run("jdk", src, campaign.Options{Seed: 3, Rounds: 6, Mutations: 3, ShardRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.CoverageKeys {
		idx := -1
		for _, part := range []string{"mut=", ";inv=", ";may=", ";must=", ";sc=", ";viol=", ";roots="} {
			at := strings.Index(k, part)
			if at <= idx {
				t.Fatalf("key %q: missing or out-of-order component %q", k, part)
			}
			idx = at
		}
	}
}

// TestAppliedAttemptedAccounting pins the applied-vs-attempted split:
// every draw is attempted, only successful rewrites count as applied,
// and the totals obey attempted >= applied with attempted bounded by
// rounds x mutations.
func TestAppliedAttemptedAccounting(t *testing.T) {
	src := testSources(t)
	res, err := campaign.Run("jdk", src, campaign.Options{Seed: 7, Rounds: 8, Mutations: 5, ShardRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	var applied, attempted int
	for m, n := range res.Attempted {
		attempted += n
		if res.Applied[m] > n {
			t.Errorf("%s: applied %d > attempted %d", m, res.Applied[m], n)
		}
	}
	for _, n := range res.Applied {
		applied += n
	}
	if applied == 0 || attempted == 0 {
		t.Fatalf("no rewrites recorded: applied=%d attempted=%d", applied, attempted)
	}
	if attempted > 8*5 {
		t.Fatalf("attempted %d exceeds rounds x mutations = 40", attempted)
	}
	if applied > attempted {
		t.Fatalf("applied %d > attempted %d", applied, attempted)
	}
}

// TestCampaignMetrics wires a real registry through a run and asserts
// the polora_campaign_* series account for every round and discovery.
func TestCampaignMetrics(t *testing.T) {
	src := testSources(t)
	reg := telemetry.New()
	m := telemetry.NewCampaignMetrics(reg)
	res, err := campaign.Run("jdk", src, campaign.Options{
		Seed: 5, Rounds: 8, Mutations: 4, ShardRounds: 4, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Rounds.Value(); got != 8 {
		t.Errorf("rounds counter = %v, want 8", got)
	}
	if got := m.NewCoverage.Value(); got != float64(res.NewCoverageRounds) {
		t.Errorf("new-coverage counter = %v, want %d", got, res.NewCoverageRounds)
	}
	if got := m.Crashers.Sum(); got != 0 {
		t.Errorf("crashers counter = %v on a clean corpus", got)
	}
	for name, e := range res.Energy {
		if got := m.Energy.With(name).Value(); got != e {
			t.Errorf("energy gauge %s = %v, want %v", name, got, e)
		}
	}
}
