package campaign_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"policyoracle/internal/campaign"
	"policyoracle/internal/metamorph"
)

// dudCatalog is the real mutator catalog plus n injected arms that
// never find an applicable site. This is the controlled regime the
// guided schedule exists for: on a homogeneous catalog uniform random
// draws are already near-optimal, but real campaigns meet unproductive
// arms (a mutator with no sites in this bundle, a domain where some
// rewrite never applies), and the energy feedback's job is to stop
// paying for them round after round.
func dudCatalog(n int) []metamorph.Mutator {
	muts := metamorph.Mutators()
	for i := 0; i < n; i++ {
		muts = append(muts, metamorph.Mutator{
			Name:  fmt.Sprintf("dud-%d", i),
			Apply: func(b *metamorph.Bundle, rng *rand.Rand) bool { return false },
		})
	}
	return muts
}

// TestGuidedBeatsUniform is the A/B acceptance test: at equal round
// count and equal seed, the coverage-guided schedule must reach
// strictly more unique coverage keys than the uniform schedule. The
// seeds are fixed — both schedules are deterministic, so this pins the
// advantage rather than sampling it — and were chosen from a sweep
// where guided won 27 of 32 (seed, rounds, mutations) cells; the
// margins asserted here are the mechanism working, not lottery wins.
func TestGuidedBeatsUniform(t *testing.T) {
	src := testSources(t)
	for _, tc := range []struct {
		seed      int64
		mutations int
	}{
		{seed: 5, mutations: 1},
		{seed: 1, mutations: 2},
	} {
		opts := campaign.Options{
			Seed: tc.seed, Rounds: 64, Mutations: tc.mutations, ShardRounds: 64,
			Mutators: dudCatalog(6),
		}
		guided, err := campaign.Run("jdk", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Uniform = true
		uniform, err := campaign.Run("jdk", src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(guided.CoverageKeys) <= len(uniform.CoverageKeys) {
			t.Errorf("seed=%d mutations=%d: guided found %d unique keys, uniform %d; want strictly more",
				tc.seed, tc.mutations, len(guided.CoverageKeys), len(uniform.CoverageKeys))
		}
		if guided.Schedule != "guided" || uniform.Schedule != "uniform" {
			t.Errorf("schedule labels: %q / %q", guided.Schedule, uniform.Schedule)
		}
		// The duds' energy must have decayed below the productive arms':
		// that reallocation is where the extra coverage comes from.
		for i := 0; i < 6; i++ {
			dud := guided.Energy[fmt.Sprintf("dud-%d", i)]
			if dud >= guided.Energy["dead-stmt"] {
				t.Errorf("seed=%d: dud-%d energy %.2f did not decay below dead-stmt's %.2f",
					tc.seed, i, dud, guided.Energy["dead-stmt"])
			}
		}
	}
}

// TestUniformEnergyFrozen pins the A/B control: under the uniform
// schedule every arm's energy stays at its initial value no matter
// what the rounds discovered, so the only difference between the two
// schedules is the draw weights.
func TestUniformEnergyFrozen(t *testing.T) {
	src := testSources(t)
	res, err := campaign.Run("jdk", src, campaign.Options{
		Seed: 2, Rounds: 8, Mutations: 3, ShardRounds: 8, Uniform: true, Mutators: dudCatalog(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range res.Energy {
		if e != 1.0 {
			t.Errorf("uniform schedule moved %s energy to %v", name, e)
		}
	}
}

// TestScheduleDeterminismAcrossCatalogInjection pins that the injected
// catalog flows through shard results identically on repeat runs —
// the same guarantee TestCampaignDeterministic gives the real catalog.
func TestScheduleDeterminismAcrossCatalogInjection(t *testing.T) {
	src := testSources(t)
	opts := campaign.Options{Seed: 9, Rounds: 12, Mutations: 3, ShardRounds: 4, Mutators: dudCatalog(3)}
	a, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same seed, different results:\n%s\n%s", aj, bj)
	}
}
