package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"policyoracle/internal/metamorph"
)

// Reproducer bundles are the campaign's durable output: one directory
// per unique crasher, self-contained — original sources, the minimized
// seeded mutation trace, and the domain — so a bundle reproduces with
// no access to the campaign that found it. CI uploads these (and only
// these) as artifacts.
//
// Layout under dir:
//
//	<library>/summary.json             the merged Result
//	<library>/<fingerprint>/repro.json crasher + trace + original sources
//	<library>/<fingerprint>/mutant/    the minimized mutant, one file per source
type reproBundle struct {
	Library  string            `json:"library"`
	Domain   string            `json:"domain"`
	Seed     int64             `json:"seed"`
	Schedule string            `json:"schedule"`
	Crasher  *Crasher          `json:"crasher"`
	Sources  map[string]string `json:"sources"`
}

// WriteArtifacts persists one reproducer bundle per crasher in res plus
// the campaign summary, and stamps each crasher's Bundle path. Mutant
// sources are replayed through the public mutator catalog; a trace
// using injected (test-only) mutators still gets its repro.json, just
// no rendered mutant directory.
func WriteArtifacts(dir string, sources map[string]string, res *Result) error {
	libDir := filepath.Join(dir, res.Library)
	if err := os.MkdirAll(libDir, 0o755); err != nil {
		return fmt.Errorf("campaign: artifacts: %w", err)
	}
	for _, c := range res.Crashers {
		cdir := filepath.Join(libDir, c.Fingerprint)
		if err := os.MkdirAll(cdir, 0o755); err != nil {
			return fmt.Errorf("campaign: artifacts: %w", err)
		}
		c.Bundle = cdir
		if mutated, _, err := metamorph.ApplySteps(sources, c.Trace); err == nil {
			mdir := filepath.Join(cdir, "mutant")
			if err := os.MkdirAll(mdir, 0o755); err != nil {
				return fmt.Errorf("campaign: artifacts: %w", err)
			}
			for name, src := range mutated {
				if err := os.WriteFile(filepath.Join(mdir, filepath.Base(name)), []byte(src), 0o644); err != nil {
					return fmt.Errorf("campaign: artifacts: %w", err)
				}
			}
		}
		rb := reproBundle{
			Library:  res.Library,
			Domain:   res.Domain,
			Seed:     res.Seed,
			Schedule: res.Schedule,
			Crasher:  c,
			Sources:  sources,
		}
		buf, err := json.MarshalIndent(rb, "", "  ")
		if err != nil {
			return fmt.Errorf("campaign: artifacts: %w", err)
		}
		if err := os.WriteFile(filepath.Join(cdir, "repro.json"), append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("campaign: artifacts: %w", err)
		}
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: artifacts: %w", err)
	}
	if err := os.WriteFile(filepath.Join(libDir, "summary.json"), append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: artifacts: %w", err)
	}
	return nil
}
