package campaign_test

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"policyoracle/internal/ast"
	"policyoracle/internal/campaign"
	"policyoracle/internal/metamorph"
)

// The triage tests seed a known deviation with a deliberately unsound
// mutator: dropCheck removes the first security-check call statement in
// the bundle. Every application deviates the extracted policy the same
// way — the entry points flowing through that check lose a MUST/MAY
// permission — so a campaign that hits it in many rounds, under
// different co-applied sound mutators, must fold every raw violation
// into exactly one fingerprint and minimize its trace to the one step
// that matters.

// countChecks walks the bundle's mutable files and counts ExprStmt
// security-check calls (method name starting "check").
func countChecks(b *metamorph.Bundle) int {
	n := 0
	walkCheckStmts(b, func(stmts []ast.Stmt, i int) bool {
		n++
		return false
	})
	return n
}

// dropFirstCheck removes the first check-call statement, reporting
// whether one was found.
func dropFirstCheck(b *metamorph.Bundle) bool {
	return walkCheckStmts(b, func(stmts []ast.Stmt, i int) bool { return true })
}

// walkCheckStmts visits every statement list in bundle order and calls
// found at each check-call ExprStmt; found returning true removes that
// statement and stops the walk. Reports whether the walk was stopped.
func walkCheckStmts(b *metamorph.Bundle, found func([]ast.Stmt, int) bool) bool {
	var inList func(stmts *[]ast.Stmt) bool
	var inStmt func(s ast.Stmt) bool
	inList = func(stmts *[]ast.Stmt) bool {
		for i, s := range *stmts {
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && strings.HasPrefix(call.Name, "check") {
					if found(*stmts, i) {
						*stmts = append((*stmts)[:i], (*stmts)[i+1:]...)
						return true
					}
					continue
				}
			}
			if inStmt(s) {
				return true
			}
		}
		return false
	}
	inStmt = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.Block:
			return inList(&s.Stmts)
		case *ast.IfStmt:
			return inStmt(s.Then) || (s.Else != nil && inStmt(s.Else))
		case *ast.WhileStmt:
			return inStmt(s.Body)
		case *ast.DoWhileStmt:
			return inStmt(s.Body)
		case *ast.ForStmt:
			return s.Body != nil && inStmt(s.Body)
		case *ast.SyncStmt:
			return inList(&s.Body.Stmts)
		case *ast.TryStmt:
			if inList(&s.Body.Stmts) {
				return true
			}
			for _, c := range s.Catches {
				if inList(&c.Body.Stmts) {
					return true
				}
			}
			return s.Finally != nil && inList(&s.Finally.Stmts)
		case *ast.SwitchStmt:
			for _, c := range s.Cases {
				if inList(&c.Stmts) {
					return true
				}
			}
		}
		return false
	}
	for _, f := range b.Files {
		if f.Frozen {
			continue
		}
		for _, td := range f.AST.Types {
			for _, md := range td.Methods {
				if md.Body != nil && inList(&md.Body.Stmts) {
					return true
				}
			}
		}
	}
	return false
}

// dropCheckCatalog is the real catalog plus the unsound drop-check
// mutator. total is the bundle's original check count: drop-check
// refuses to fire twice on one bundle, so every violating round misses
// exactly the same one check and fingerprints identically.
func dropCheckCatalog(total int) []metamorph.Mutator {
	muts := metamorph.Mutators()
	return append(muts, metamorph.Mutator{
		Name: "drop-check",
		Apply: func(b *metamorph.Bundle, rng *rand.Rand) bool {
			if countChecks(b) < total {
				return false
			}
			return dropFirstCheck(b)
		},
	})
}

func checkTotal(t *testing.T, src map[string]string) int {
	t.Helper()
	b, err := metamorph.ParseBundle(src)
	if err != nil {
		t.Fatal(err)
	}
	total := countChecks(b)
	if total == 0 {
		t.Fatal("generated corpus has no check calls")
	}
	return total
}

// TestTriageEndToEnd is the acceptance path: a campaign over a catalog
// with one seeded deviation must hit it in several rounds (raw
// violations), dedupe them all to one crasher, and minimize that
// crasher's trace to the single unsound step.
func TestTriageEndToEnd(t *testing.T) {
	src := testSources(t)
	opts := campaign.Options{
		Seed: 42, Rounds: 12, Mutations: 6, ShardRounds: 12,
		Mutators: dropCheckCatalog(checkTotal(t, src)),
	}
	res, err := campaign.Run("jdk", src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawViolations < 3 {
		t.Fatalf("campaign hit the seeded deviation %d times, want >= 3", res.RawViolations)
	}
	if len(res.Crashers) != 1 {
		buf, _ := json.MarshalIndent(res.Crashers, "", "  ")
		t.Fatalf("want exactly 1 deduped crasher, got %d:\n%s", len(res.Crashers), buf)
	}
	c := res.Crashers[0]
	if c.Invariant != "diff-clean" {
		t.Errorf("crasher invariant %q, want diff-clean", c.Invariant)
	}
	if len(c.RootKeys) == 0 {
		t.Error("crasher carries no diff root keys")
	}
	if c.Seen != res.RawViolations {
		t.Errorf("crasher seen %d != raw violations %d", c.Seen, res.RawViolations)
	}
	if !c.Minimized {
		t.Fatal("crasher trace did not re-verify during minimization")
	}
	if len(c.Trace) != 1 || c.Trace[0].Mutator != "drop-check" {
		t.Fatalf("minimized trace = %+v, want the single drop-check step", c.Trace)
	}
	if c.MinimizerSteps == 0 {
		t.Error("minimizer reported zero verification steps")
	}
	if strings.ContainsAny(c.Detail, "0123456789") {
		t.Errorf("crasher detail not normalized: %q", c.Detail)
	}
}

// TestFingerprintStableAcrossSeeds reruns the seeded-deviation
// campaign under a different seed — different rounds, different
// co-applied mutators, different mutant names — and requires the same
// single fingerprint: the identity CI allowlists depend on.
func TestFingerprintStableAcrossSeeds(t *testing.T) {
	src := testSources(t)
	muts := dropCheckCatalog(checkTotal(t, src))
	var fps []string
	for _, seed := range []int64{42, 1001} {
		res, err := campaign.Run("jdk", src, campaign.Options{
			Seed: seed, Rounds: 12, Mutations: 6, ShardRounds: 12, Mutators: muts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Crashers) != 1 {
			t.Fatalf("seed %d: %d crashers, want 1", seed, len(res.Crashers))
		}
		fps = append(fps, res.Crashers[0].Fingerprint)
	}
	if fps[0] != fps[1] {
		t.Fatalf("same root cause fingerprinted differently across seeds: %s vs %s", fps[0], fps[1])
	}
}

// TestFingerprintIdentity pins the fingerprint function itself:
// insensitive to digits (round numbers, counts, mutant-name suffixes),
// sensitive to invariant and root keys.
func TestFingerprintIdentity(t *testing.T) {
	base := metamorph.Violation{
		Invariant: "diff-clean",
		RootKeys:  []string{"jdk+r3/FileIn.read:may"},
		Detail:    "entry FileIn.read lost may perm in round 3 (12 bytes)",
	}
	same := base
	same.Detail = "entry FileIn.read lost may perm in round 7 (99 bytes)"
	if campaign.Fingerprint(base) != campaign.Fingerprint(same) {
		t.Error("digit-only detail change altered the fingerprint")
	}
	diffInv := base
	diffInv.Invariant = "parallel"
	if campaign.Fingerprint(base) == campaign.Fingerprint(diffInv) {
		t.Error("different invariants share a fingerprint")
	}
	diffRoots := base
	diffRoots.RootKeys = []string{"jdk+r3/FileIn.close:may"}
	if campaign.Fingerprint(base) == campaign.Fingerprint(diffRoots) {
		t.Error("different root keys share a fingerprint")
	}
}

func TestNormalizeDetail(t *testing.T) {
	for in, want := range map[string]string{
		"round 42: 3 of 17 entries":  "round #: # of # entries",
		"no digits here":             "no digits here",
		"jdk+r1234/Class9.m2 drifts": "jdk+r#/Class#.m# drifts",
	} {
		if got := campaign.NormalizeDetail(in); got != want {
			t.Errorf("NormalizeDetail(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestArtifactsWriteReproBundles runs the seeded-deviation campaign
// with an output directory and checks the self-contained reproducer
// layout: per-library summary.json, one directory per fingerprint with
// repro.json carrying the original sources and minimized trace. The
// mutant/ render is skipped here — drop-check is not in the public
// catalog — which must not fail the campaign.
func TestArtifactsWriteReproBundles(t *testing.T) {
	src := testSources(t)
	dir := t.TempDir()
	res, err := campaign.Run("jdk", src, campaign.Options{
		Seed: 42, Rounds: 12, Mutations: 6, ShardRounds: 12,
		Mutators: dropCheckCatalog(checkTotal(t, src)),
		OutDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var summary campaign.Result
	buf, err := os.ReadFile(filepath.Join(dir, "jdk", "summary.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &summary); err != nil {
		t.Fatal(err)
	}
	if summary.RawViolations != res.RawViolations || len(summary.Crashers) != 1 {
		t.Fatalf("summary diverges from result: %s", buf)
	}
	c := res.Crashers[0]
	if c.Bundle == "" {
		t.Fatal("crasher bundle path not stamped")
	}
	var repro struct {
		Library string                 `json:"library"`
		Seed    int64                  `json:"seed"`
		Crasher *campaign.Crasher      `json:"crasher"`
		Sources map[string]string      `json:"sources"`
		Rest    map[string]interface{} `json:"-"`
	}
	buf, err = os.ReadFile(filepath.Join(c.Bundle, "repro.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &repro); err != nil {
		t.Fatal(err)
	}
	if repro.Library != "jdk" || repro.Seed != 42 || repro.Crasher == nil || len(repro.Sources) != len(src) {
		t.Fatalf("repro bundle incomplete: library=%q seed=%d crasher=%v sources=%d",
			repro.Library, repro.Seed, repro.Crasher != nil, len(repro.Sources))
	}
	if repro.Crasher.Fingerprint != c.Fingerprint {
		t.Errorf("repro fingerprint %s != crasher %s", repro.Crasher.Fingerprint, c.Fingerprint)
	}
	if _, err := os.Stat(filepath.Join(c.Bundle, "mutant")); !os.IsNotExist(err) {
		t.Errorf("mutant/ should be skipped for a non-catalog trace, stat err = %v", err)
	}
}
