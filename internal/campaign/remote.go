package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Remote campaigns shard by round range: the client derives the same
// shard set a local run would, posts one /v1/campaign job per shard to
// a pool of polorad workers, and folds the returned ShardResults with
// the same Merge a local run uses. Because every shard is a
// self-contained deterministic unit (seeded RNG, private energy state),
// placement is irrelevant — a 2-worker remote campaign merges to
// byte-identical results as a local one. A worker that fails mid-shard
// gets its shard requeued for the surviving pool; a worker failing
// twice in a row is dropped.

// ShardRequest is the POST /v1/campaign body: the deterministic
// identity of one campaign plus the shard index this worker should run.
// Execution-strategy options (workers, output dir, metrics) stay
// client-side; remote extraction runs under the named domain's default
// oracle options.
type ShardRequest struct {
	Name        string            `json:"name"`
	Sources     map[string]string `json:"sources"`
	Domain      string            `json:"domain,omitempty"`
	Seed        int64             `json:"seed"`
	Rounds      int               `json:"rounds"`
	Mutations   int               `json:"mutations"`
	ShardRounds int               `json:"shard_rounds"`
	Uniform     bool              `json:"uniform"`
	Shard       int               `json:"shard"`
}

// Status values for campaign jobs.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// StatusResponse is the GET /v1/campaign/{id} body (POST returns the
// same shape with Status == "running" and no result yet).
type StatusResponse struct {
	ID     string       `json:"id"`
	Status string       `json:"status"`
	Result *ShardResult `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// shardRequest renders the wire request for one of this engine's
// shards.
func (e *Engine) shardRequest(shard int) *ShardRequest {
	return &ShardRequest{
		Name:        e.name,
		Sources:     e.sources,
		Domain:      domainID(e.serial.Domain),
		Seed:        e.opts.Seed,
		Rounds:      e.opts.Rounds,
		Mutations:   e.opts.Mutations,
		ShardRounds: e.opts.ShardRounds,
		Uniform:     e.opts.Uniform,
		Shard:       shard,
	}
}

// RunRemote executes a campaign by sharding it across polorad workers
// (each running with -campaigns) and merging client-side. The baseline
// is still extracted locally — Merge and artifact writing need it — but
// every round runs remotely. Worker dropout is survived by requeuing
// the failed shard; the campaign errors only when every worker has been
// dropped with shards still pending.
func RunRemote(ctx context.Context, name string, sources map[string]string, opts Options, workers []string) (*Result, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("campaign: remote run needs at least one worker")
	}
	e, err := NewEngine(name, sources, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	nshards := e.Shards()
	jobs := make(chan int, nshards)
	for s := 0; s < nshards; s++ {
		jobs <- s
	}
	results := make([]*ShardResult, nshards)
	done := make(chan struct{})
	var (
		mu        sync.Mutex
		remaining = nshards
		alive     = len(workers)
		runErr    error
	)
	finish := func(err error) {
		if runErr == nil {
			runErr = err
		}
		close(done)
	}
	for _, addr := range workers {
		go func(addr string) {
			client := &http.Client{}
			consecutive := 0
			for {
				select {
				case <-done:
					return
				case <-ctx.Done():
					return
				case s := <-jobs:
					res, err := runShardOn(ctx, client, addr, e, s)
					mu.Lock()
					if err != nil {
						jobs <- s
						consecutive++
						if consecutive >= 2 {
							alive--
							if alive == 0 {
								finish(fmt.Errorf("campaign: all workers dropped with %d shard(s) pending (last error from %s: %v)", remaining, addr, err))
							}
							mu.Unlock()
							return
						}
						mu.Unlock()
						continue
					}
					consecutive = 0
					results[s] = res
					remaining--
					if remaining == 0 {
						finish(nil)
					}
					mu.Unlock()
				}
			}
		}(addr)
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-done:
	}
	mu.Lock()
	err = runErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	res := e.Merge(results)
	res.Elapsed = time.Since(start)
	if e.opts.OutDir != "" {
		if err := WriteArtifacts(e.opts.OutDir, sources, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// pollRetryBudget is how many consecutive status-poll failures a worker
// is forgiven before runShardOn declares it gone. A shard that was
// POSTed is already running remotely: requeueing it over one dropped
// GET would re-run minutes of work (and double-run the shard), so
// transient errors back off and retry instead.
const pollRetryBudget = 3

// runShardOn submits one shard to a worker and polls its status to
// completion. Transient poll failures retry with exponential backoff up
// to pollRetryBudget consecutive misses; only an exhausted budget (or a
// failed/malformed job) reports the worker as dropped.
func runShardOn(ctx context.Context, client *http.Client, addr string, e *Engine, shard int) (*ShardResult, error) {
	base := addr
	if !hasScheme(base) {
		base = "http://" + base
	}
	body, err := json.Marshal(e.shardRequest(shard))
	if err != nil {
		return nil, err
	}
	var st StatusResponse
	if err := doJSON(ctx, client, http.MethodPost, base+"/v1/campaign", bytes.NewReader(body), &st); err != nil {
		return nil, err
	}
	failures := 0
	timer := time.NewTimer(e.opts.Poll)
	defer timer.Stop()
	for {
		switch st.Status {
		case StatusDone:
			if st.Result == nil {
				return nil, fmt.Errorf("campaign: worker %s reported done without a result", addr)
			}
			return st.Result, nil
		case StatusFailed:
			return nil, fmt.Errorf("campaign: worker %s failed shard %d: %s", addr, shard, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timer.C:
		}
		delay := e.opts.Poll
		if err := doJSON(ctx, client, http.MethodGet, base+"/v1/campaign/"+st.ID, nil, &st); err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			failures++
			if failures > pollRetryBudget {
				return nil, fmt.Errorf("campaign: worker %s unreachable after %d status retries: %w",
					addr, pollRetryBudget, err)
			}
			// Exponential backoff over the poll period: Poll, 2*Poll,
			// 4*Poll... while the failure streak lasts.
			delay = e.opts.Poll << failures
		} else {
			failures = 0
		}
		timer.Reset(delay)
	}
}

// doJSON performs one request and decodes a JSON response, folding
// non-2xx statuses (including the server's error envelope) into errors.
func doJSON(ctx context.Context, client *http.Client, method, url string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: %s: %s", method, url, resp.Status, truncate(string(data), 200))
	}
	return json.Unmarshal(data, out)
}

func hasScheme(addr string) bool {
	for i := 0; i < len(addr); i++ {
		switch {
		case addr[i] == ':':
			return i+2 < len(addr) && addr[i+1] == '/' && addr[i+2] == '/'
		case addr[i] == '/' || addr[i] == '.':
			return false
		}
	}
	return false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
