package campaign

import (
	"math/rand"

	"policyoracle/internal/metamorph"
)

// Energy constants: every mutator starts at initialEnergy. Each
// new-coverage round adds energyBoost to every distinct mutator it
// applied, capped at energyCap; each round that discovers nothing
// halves its applied mutators' energy (energyDecay), floored at
// energyFloor, as does every draw whose application fails outright.
// The decay half is what makes guidance beat uniform draws: a mutator
// whose reachable coverage is exhausted — or that rarely finds an
// applicable site at all — keeps drawing under a uniform schedule but
// fades here, shifting rounds toward mutators that still produce
// novelty. The cap and floor bound the ratio (40:1) so no mutator is
// ever starved outright — a decayed mutator that becomes productive
// again (rewrites compose, so new sites appear) earns its energy back.
const (
	initialEnergy = 1.0
	energyBoost   = 0.75
	energyCap     = 8.0
	energyDecay   = 0.5
	energyFloor   = 0.2
)

// scheduler holds per-mutator energy and draws mutators with
// probability proportional to it. In uniform mode the weights are
// frozen at initialEnergy and reward is a no-op, so guided and uniform
// schedules consume RNG state identically — an A/B pair differs only in
// the weights, never in the draw mechanics.
type scheduler struct {
	guided bool
	names  []string
	energy []float64
}

func newScheduler(muts []metamorph.Mutator, guided bool) *scheduler {
	s := &scheduler{
		guided: guided,
		names:  make([]string, len(muts)),
		energy: make([]float64, len(muts)),
	}
	for i, m := range muts {
		s.names[i] = m.Name
		s.energy[i] = initialEnergy
	}
	return s
}

// pick draws one alive mutator index, energy-weighted; -1 when every
// mutator is dead.
func (s *scheduler) pick(rng *rand.Rand, dead []bool) int {
	total := 0.0
	for i, e := range s.energy {
		if !dead[i] {
			total += e
		}
	}
	if total == 0 {
		return -1
	}
	x := rng.Float64() * total
	for i, e := range s.energy {
		if dead[i] {
			continue
		}
		x -= e
		if x < 0 {
			return i
		}
	}
	// Float underflow put x exactly at the boundary; return the last
	// alive index.
	for i := len(s.energy) - 1; i >= 0; i-- {
		if !dead[i] {
			return i
		}
	}
	return -1
}

// reward boosts every distinct mutator in applied after a new-coverage
// round; no-op for the uniform schedule.
func (s *scheduler) reward(applied []string) {
	s.update(applied, func(e float64) float64 {
		if e += energyBoost; e > energyCap {
			return energyCap
		}
		return e
	})
}

// penalize decays every distinct mutator in applied after a round that
// discovered no new key; no-op for the uniform schedule.
func (s *scheduler) penalize(applied []string) {
	s.update(applied, func(e float64) float64 {
		if e *= energyDecay; e < energyFloor {
			return energyFloor
		}
		return e
	})
}

func (s *scheduler) update(applied []string, f func(float64) float64) {
	if !s.guided {
		return
	}
	seen := map[string]bool{}
	for _, name := range applied {
		if seen[name] {
			continue
		}
		seen[name] = true
		for i, n := range s.names {
			if n == name {
				s.energy[i] = f(s.energy[i])
				break
			}
		}
	}
}

// snapshot returns the current energy table keyed by mutator name.
func (s *scheduler) snapshot() map[string]float64 {
	out := make(map[string]float64, len(s.names))
	for i, n := range s.names {
		out[n] = s.energy[i]
	}
	return out
}
