package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"policyoracle/internal/metamorph"
	"policyoracle/internal/oracle"
)

// Crash triage: every raw violation is reduced to a root-cause identity
// (Fingerprint) and its recorded trace to a smallest reproducing subset
// (minimize). Fingerprints dedupe within a shard, across shards in
// Merge, and across campaign runs in CI's known-crasher allowlist, so
// they must be stable against everything that legitimately varies
// between two hits of the same bug: the round number, the mutant's
// library name suffix, and incidental counts embedded in detail text.
// NormalizeDetail erases exactly that class of variation (digit runs),
// while the diff root keys — which carry the semantic identity of what
// deviated — are hashed verbatim.

// Fingerprint derives the stable identity of one violation: invariant
// id + sorted diff root keys + normalized detail, hashed to 16 hex
// digits.
func Fingerprint(v metamorph.Violation) string {
	h := sha256.New()
	h.Write([]byte(v.Invariant))
	h.Write([]byte{0})
	for _, k := range v.RootKeys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	h.Write([]byte{0})
	h.Write([]byte(NormalizeDetail(v.Detail)))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// NormalizeDetail replaces every maximal digit run with '#', erasing
// round numbers, byte counts, and entry tallies while keeping the
// sentence structure that distinguishes genuinely different failures.
func NormalizeDetail(detail string) string {
	var b strings.Builder
	inDigits := false
	for _, r := range detail {
		if r >= '0' && r <= '9' {
			if !inDigits {
				b.WriteByte('#')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(r)
	}
	return b.String()
}

// minimize greedily shrinks c.Trace to a smallest subset that still
// reproduces c.Fingerprint, re-verifying after every removal. Passes
// repeat until a fixed point (removing a later step can unlock removing
// an earlier one). Minimized stays false when even the full trace fails
// to re-verify — a schedule- or sampling-dependent violation worth
// flagging loudly rather than shrinking into a non-reproducer.
func (e *Engine) minimize(c *Crasher) {
	// Only the violated invariant's sampled leg runs during
	// re-verification; the always-on invariants are cheap.
	chk := metamorph.MutantChecks{
		Parallel:    c.Invariant == "parallel",
		Incremental: c.Invariant == "incremental",
	}
	verify := func(trace []metamorph.Step) bool {
		c.MinimizerSteps++
		mutated, err := e.applyTrace(trace)
		if err != nil {
			return false
		}
		// "+r0" keeps the mutant-name shape of campaign rounds so
		// normalized details (and therefore fingerprints) line up.
		lib, err := oracle.LoadLibrary(e.name+"+r0", mutated)
		if err != nil {
			return Fingerprint(metamorph.Violation{Invariant: "load", Detail: err.Error()}) == c.Fingerprint
		}
		lib.Extract(e.serial)
		for _, v := range metamorph.CheckExtracted(e.base, lib, mutated, e.serial, chk) {
			if Fingerprint(v) == c.Fingerprint {
				return true
			}
		}
		return false
	}

	cur := c.Trace
	if !verify(cur) {
		return
	}
	for improved := true; improved; {
		improved = false
		for i := len(cur) - 1; i >= 0 && len(cur) > 1; i-- {
			cand := make([]metamorph.Step, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			if verify(cand) {
				cur = cand
				improved = true
			}
		}
	}
	c.Trace = cur
	c.Minimized = true
}
