// Package campaign is the coverage-guided, distributed metamorphic
// campaign engine layered on internal/metamorph. Where metamorph.Run
// draws mutators uniformly and reports raw invariant violations, a
// campaign closes the loop the way coverage-guided fuzzers do: each
// round is summarized into a cheap coverage key (mutators applied ×
// invariants stressed × analysis-shape counter deltas × diff root keys),
// rounds that discover new keys boost the energy of the mutators that
// produced them (barren rounds decay it), and every violation is triaged — minimized to its
// smallest reproducing mutation trace and deduplicated by a stable
// fingerprint — instead of dumped raw.
//
// Determinism is structural: a campaign is divided into fixed-size
// shards, and each shard is an independent, fully sequential feedback
// unit with its own RNG, energy state, and summary cache, all derived
// from (Seed, shard index). Shards therefore parallelize — across local
// workers or across polorad processes via /v1/campaign — and merging
// shard results is a pure function, so a remote N-worker campaign
// produces byte-identical results to a local run of the same options.
package campaign

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"policyoracle/internal/metamorph"
	"policyoracle/internal/oracle"
	"policyoracle/internal/telemetry"
)

// Options configures a campaign. The deterministic identity of a
// campaign — what must match for two runs to produce identical results —
// is (sources, Seed, Rounds, Mutations, ShardRounds, Uniform, Oracle
// semantics, ParallelEvery, IncrementalEvery); Workers, OutDir, Metrics,
// and Poll are execution strategy.
type Options struct {
	// Seed derives every shard's RNG and energy trajectory.
	Seed int64
	// Rounds is the campaign's total round count (default 100).
	Rounds int
	// Mutations is the number of mutator draws per round (default 8).
	Mutations int
	// Workers bounds concurrently running shards in a local Run; <= 0
	// means GOMAXPROCS.
	Workers int
	// ShardRounds is the size of one deterministic feedback unit
	// (default 32). Energy feedback and coverage novelty are scoped to a
	// shard, which is what makes shards order-independent and therefore
	// distributable.
	ShardRounds int
	// Uniform disables coverage feedback: every alive mutator keeps
	// weight 1, discoveries earn no boost and barren rounds no decay.
	// The A/B fallback the guided schedule is measured against.
	Uniform bool
	// Oracle overrides extraction semantics (nil means
	// oracle.DefaultOptions); the same soundness constraints as
	// metamorph.CampaignOptions apply (narrow events, unlimited depth).
	Oracle *oracle.Options
	// ParallelEvery / IncrementalEvery sample invariants (c)/(e) every
	// Nth round, as in metamorph.CampaignOptions; 0 means every 8th,
	// < 0 disables.
	ParallelEvery    int
	IncrementalEvery int
	// OutDir, when non-empty, receives one self-contained reproducer
	// bundle per unique crasher (see WriteArtifacts).
	OutDir string
	// Metrics, when non-nil, receives polora_campaign_* counters.
	Metrics *telemetry.CampaignMetrics
	// Poll is the remote campaign status poll interval (default 200ms);
	// only RunRemote reads it.
	Poll time.Duration
	// Mutators overrides the mutator catalog (default
	// metamorph.Mutators()). A test hook: triage tests inject a
	// deliberately unsound mutator to seed known violations.
	Mutators []metamorph.Mutator
}

func (o Options) withDefaults() Options {
	if o.Rounds <= 0 {
		o.Rounds = 100
	}
	if o.Mutations <= 0 {
		o.Mutations = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ShardRounds <= 0 {
		o.ShardRounds = 32
	}
	if o.ParallelEvery == 0 {
		o.ParallelEvery = 8
	}
	if o.IncrementalEvery == 0 {
		o.IncrementalEvery = 8
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	return o
}

// Schedule names the active scheduling mode for reports.
func (o Options) Schedule() string {
	if o.Uniform {
		return "uniform"
	}
	return "guided"
}

// A Crasher is one triaged, deduplicated invariant violation: the
// root-cause identity (fingerprint over invariant + diff root keys +
// normalized detail), the minimized mutation trace that reproduces it,
// and how often the campaign hit it.
type Crasher struct {
	Fingerprint string   `json:"fingerprint"`
	Invariant   string   `json:"invariant"`
	RootKeys    []string `json:"root_keys,omitempty"`
	// Detail is the normalized violation detail the fingerprint hashes.
	Detail string `json:"detail"`
	// FirstRound is the campaign round that first hit this fingerprint.
	FirstRound int `json:"first_round"`
	// Seen counts raw violations folded into this crasher.
	Seen int `json:"seen"`
	// Trace replays the crasher over the original sources via
	// metamorph.ApplySteps; after successful minimization it is the
	// smallest reproducing subset found.
	Trace []metamorph.Step `json:"trace"`
	// Minimized reports whether the trace re-verified during greedy
	// reduction; false flags an unstable (e.g. schedule-dependent)
	// violation the minimizer could not reproduce.
	Minimized bool `json:"minimized"`
	// MinimizerSteps counts re-verification extractions spent on this
	// crasher.
	MinimizerSteps int `json:"minimizer_steps"`
	// Bundle is the reproducer-bundle directory, when artifacts were
	// written.
	Bundle string `json:"bundle,omitempty"`
}

// ShardResult is the outcome of one deterministic feedback unit — the
// value /v1/campaign workers compute and Merge folds together.
type ShardResult struct {
	Shard      int `json:"shard"`
	StartRound int `json:"start_round"`
	Rounds     int `json:"rounds"`
	// Keys holds the shard's distinct coverage keys in first-seen order;
	// len(Keys) is the shard's new-coverage round count.
	Keys          []string           `json:"keys"`
	RawViolations int                `json:"raw_violations"`
	Crashers      []*Crasher         `json:"crashers,omitempty"`
	Applied       map[string]int     `json:"applied"`
	Attempted     map[string]int     `json:"attempted"`
	Energy        map[string]float64 `json:"energy"`
}

// Result is a merged campaign report: a pure function of (sources,
// deterministic options), independent of worker count or shard
// placement. Elapsed is excluded from the JSON encoding so two runs of
// the same campaign marshal byte-identically.
type Result struct {
	Library  string `json:"library"`
	Domain   string `json:"domain"`
	Schedule string `json:"schedule"`
	Seed     int64  `json:"seed"`
	Rounds   int    `json:"rounds"`
	// Entries is the baseline library's entry-point count.
	Entries int `json:"entries"`
	// CoverageKeys is the campaign-wide distinct key set, sorted.
	CoverageKeys []string `json:"coverage_keys"`
	// NewCoverageRounds counts rounds that discovered a key new to their
	// shard (the feedback events that earned energy boosts).
	NewCoverageRounds int                `json:"new_coverage_rounds"`
	RawViolations     int                `json:"raw_violations"`
	Crashers          []*Crasher         `json:"crashers,omitempty"`
	Applied           map[string]int     `json:"applied"`
	Attempted         map[string]int     `json:"attempted"`
	Energy            map[string]float64 `json:"energy"`
	Elapsed           time.Duration      `json:"-"`
}

// An Engine holds the immutable per-campaign state — parsed options,
// the extracted baseline — and runs shards against it. polorad keeps
// engines cached across shard requests so one baseline extraction
// serves a whole remote campaign.
type Engine struct {
	name    string
	sources map[string]string
	opts    Options
	serial  oracle.Options
	base    *oracle.Library
	muts    []metamorph.Mutator
}

// NewEngine validates options, parses the bundle, and extracts the
// baseline once.
func NewEngine(name string, sources map[string]string, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	serial := oracle.DefaultOptions()
	if opts.Oracle != nil {
		serial = *opts.Oracle
	}
	serial.Parallel = 1
	serial.Telemetry = nil
	serial.Summaries = nil
	if err := metamorph.ValidateOracle(serial); err != nil {
		return nil, err
	}
	if _, err := metamorph.ParseBundle(sources); err != nil {
		return nil, err
	}
	base, err := oracle.LoadLibrary(name, sources)
	if err != nil {
		return nil, fmt.Errorf("campaign: loading baseline: %w", err)
	}
	base.Extract(serial)
	muts := opts.Mutators
	if muts == nil {
		muts = metamorph.Mutators()
	}
	return &Engine{
		name:    name,
		sources: sources,
		opts:    opts,
		serial:  serial,
		base:    base,
		muts:    muts,
	}, nil
}

// Options returns the engine's resolved options.
func (e *Engine) Options() Options { return e.opts }

// Shards returns the campaign's shard count.
func (e *Engine) Shards() int {
	return (e.opts.Rounds + e.opts.ShardRounds - 1) / e.opts.ShardRounds
}

// shardSeed decorrelates per-shard RNG streams drawn from one campaign
// seed (odd-constant spacing, like metamorph's roundSeed but with a
// distinct multiplier so shard streams never alias round streams).
func shardSeed(seed int64, shard int) int64 {
	return seed + int64(shard+1)*0x2545f4914f6cdd1d
}

// mutatorByName resolves a name against the engine's catalog (which may
// include injected test mutators the global catalog lacks).
func (e *Engine) mutatorByName(name string) (metamorph.Mutator, bool) {
	for _, m := range e.muts {
		if m.Name == name {
			return m, true
		}
	}
	return metamorph.Mutator{}, false
}

// applyTrace replays steps over the original sources using the engine's
// catalog; ok is false when the trace names an unknown mutator.
func (e *Engine) applyTrace(steps []metamorph.Step) (map[string]string, error) {
	b, err := metamorph.ParseBundle(e.sources)
	if err != nil {
		return nil, err
	}
	for _, s := range steps {
		m, ok := e.mutatorByName(s.Mutator)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown mutator %q in trace", s.Mutator)
		}
		metamorph.ApplyStep(b, m, s.Seed)
	}
	return b.Sources(), nil
}

// RunShard executes one feedback unit: ShardRounds sequential rounds
// with a private RNG, scheduler, and summary cache, then triages the
// shard's violations into minimized, deduplicated crashers.
func (e *Engine) RunShard(shard int) (*ShardResult, error) {
	if shard < 0 || shard >= e.Shards() {
		return nil, fmt.Errorf("campaign: shard %d out of range [0,%d)", shard, e.Shards())
	}
	start := shard * e.opts.ShardRounds
	n := e.opts.ShardRounds
	if start+n > e.opts.Rounds {
		n = e.opts.Rounds - start
	}
	rng := rand.New(rand.NewSource(shardSeed(e.opts.Seed, shard)))
	sched := newScheduler(e.muts, !e.opts.Uniform)
	serial := e.serial
	serial.Summaries = oracle.NewSummaryCache(0)

	res := &ShardResult{
		Shard:      shard,
		StartRound: start,
		Rounds:     n,
		Applied:    map[string]int{},
		Attempted:  map[string]int{},
	}
	seen := map[string]bool{}
	crashers := map[string]*Crasher{}
	var order []string
	m := e.opts.Metrics

	for i := 0; i < n; i++ {
		r := start + i
		trace, applied := e.mutateRound(rng, sched, res)
		mutated, err := e.applyTrace(trace)
		if err != nil {
			// The original sources parsed in NewEngine and mutators keep
			// bundles well-formed, so this is itself invariant-worthy.
			return nil, err
		}

		var violations []metamorph.Violation
		var libStats libShape
		h0, m0 := serial.Summaries.Stats()
		lib, lerr := oracle.LoadLibrary(fmt.Sprintf("%s+r%d", e.name, r), mutated)
		if lerr != nil {
			violations = []metamorph.Violation{{Invariant: "load", Detail: lerr.Error()}}
		} else {
			lib.Extract(serial)
			chk := metamorph.MutantChecks{
				Parallel:    e.opts.ParallelEvery > 0 && r%e.opts.ParallelEvery == 0,
				Incremental: e.opts.IncrementalEvery > 0 && r%e.opts.IncrementalEvery == 0,
			}
			h1, m1 := serial.Summaries.Stats()
			libStats = libShape{
				may:     lib.MayStats,
				must:    lib.MustStats,
				scHits:  h1 - h0,
				scMiss:  m1 - m0,
				checked: chk,
			}
			violations = metamorph.CheckExtracted(e.base, lib, mutated, e.serial, chk)
		}
		for vi := range violations {
			violations[vi].Round = r
			violations[vi].Mutators = applied
		}

		key := coverageKey(applied, libStats, e.base, violations)
		if !seen[key] {
			seen[key] = true
			res.Keys = append(res.Keys, key)
			sched.reward(applied)
			if m != nil {
				m.NewCoverage.Inc()
			}
		} else {
			sched.penalize(applied)
		}
		if m != nil {
			m.Rounds.Inc()
		}

		res.RawViolations += len(violations)
		for _, v := range violations {
			fp := Fingerprint(v)
			if c := crashers[fp]; c != nil {
				c.Seen++
				continue
			}
			crashers[fp] = &Crasher{
				Fingerprint: fp,
				Invariant:   v.Invariant,
				RootKeys:    v.RootKeys,
				Detail:      NormalizeDetail(v.Detail),
				FirstRound:  r,
				Seen:        1,
				Trace:       append([]metamorph.Step(nil), trace...),
			}
			order = append(order, fp)
		}
	}

	for _, fp := range order {
		c := crashers[fp]
		e.minimize(c)
		if m != nil {
			m.MinimizerSteps.Add(float64(c.MinimizerSteps))
		}
		res.Crashers = append(res.Crashers, c)
	}
	res.Energy = sched.snapshot()
	return res, nil
}

// mutateRound draws up to Mutations mutators through the scheduler,
// applying each with a private per-step seed so the resulting trace is
// subsettable. Dead-mutator tracking mirrors metamorph.mutate: a
// mutator with no applicable site leaves the draw pool until another
// rewrite changes the bundle.
func (e *Engine) mutateRound(rng *rand.Rand, sched *scheduler, res *ShardResult) (trace []metamorph.Step, applied []string) {
	b, err := metamorph.ParseBundle(e.sources)
	if err != nil {
		// NewEngine already parsed these sources.
		panic("campaign: baseline sources stopped parsing: " + err.Error())
	}
	dead := make([]bool, len(e.muts))
	alive := len(e.muts)
	for k := 0; k < e.opts.Mutations && alive > 0; k++ {
		idx := sched.pick(rng, dead)
		seed := rng.Int63()
		mut := e.muts[idx]
		res.Attempted[mut.Name]++
		if metamorph.ApplyStep(b, mut, seed) {
			trace = append(trace, metamorph.Step{Mutator: mut.Name, Seed: seed})
			applied = append(applied, mut.Name)
			res.Applied[mut.Name]++
			if alive < len(e.muts) {
				for j := range dead {
					dead[j] = false
				}
				alive = len(e.muts)
			}
		} else {
			dead[idx] = true
			alive--
			// A failed application is wasted budget the applied-set
			// feedback below never sees; decay it immediately so arms
			// with no applicable sites fade instead of draining every
			// round's draws.
			sched.penalize([]string{mut.Name})
		}
	}
	return trace, applied
}

// Merge folds shard results into one campaign Result. It is pure and
// order-insensitive (shards are sorted by index first), which is the
// property that makes a distributed campaign equal a local one.
func (e *Engine) Merge(shards []*ShardResult) *Result {
	sorted := append([]*ShardResult(nil), shards...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })

	res := &Result{
		Library:   e.name,
		Domain:    domainID(e.serial.Domain),
		Schedule:  e.opts.Schedule(),
		Seed:      e.opts.Seed,
		Entries:   len(e.base.EntryPoints()),
		Applied:   map[string]int{},
		Attempted: map[string]int{},
		Energy:    map[string]float64{},
	}
	keys := map[string]bool{}
	crashers := map[string]*Crasher{}
	for _, s := range sorted {
		res.Rounds += s.Rounds
		res.NewCoverageRounds += len(s.Keys)
		res.RawViolations += s.RawViolations
		for _, k := range s.Keys {
			if !keys[k] {
				keys[k] = true
				res.CoverageKeys = append(res.CoverageKeys, k)
			}
		}
		for mname, c := range s.Applied {
			res.Applied[mname] += c
		}
		for mname, c := range s.Attempted {
			res.Attempted[mname] += c
		}
		for mname, v := range s.Energy {
			res.Energy[mname] += v
		}
		for _, c := range s.Crashers {
			if prev := crashers[c.Fingerprint]; prev != nil {
				prev.Seen += c.Seen
				continue
			}
			cc := *c
			crashers[c.Fingerprint] = &cc
			res.Crashers = append(res.Crashers, &cc)
		}
	}
	if len(sorted) > 0 {
		for mname := range res.Energy {
			res.Energy[mname] /= float64(len(sorted))
		}
	}
	sort.Strings(res.CoverageKeys)
	sort.Slice(res.Crashers, func(i, j int) bool {
		return res.Crashers[i].FirstRound < res.Crashers[j].FirstRound
	})
	if m := e.opts.Metrics; m != nil {
		m.Crashers.With("unique").Add(float64(len(res.Crashers)))
		m.Crashers.With("duplicate").Add(float64(res.RawViolations - len(res.Crashers)))
		for mname, v := range res.Energy {
			m.Energy.With(mname).Set(v)
		}
	}
	return res
}

// Run executes a full local campaign: all shards over a worker pool,
// merged, with reproducer bundles written when OutDir is set.
func Run(name string, sources map[string]string, opts Options) (*Result, error) {
	e, err := NewEngine(name, sources, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	nshards := e.Shards()
	results := make([]*ShardResult, nshards)
	errs := make([]error, nshards)
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.opts.Workers
	if workers > nshards {
		workers = nshards
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= nshards {
					return
				}
				results[s], errs[s] = e.RunShard(s)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := e.Merge(results)
	res.Elapsed = time.Since(start)
	if e.opts.OutDir != "" {
		if err := WriteArtifacts(e.opts.OutDir, sources, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}
